// Benchmarks regenerating the paper's evaluation workloads. One benchmark
// per table/figure drives the same code path as the corresponding cmd/
// binary; the BenchmarkNative* group measures the golden Go ciphers on the
// host CPU, standing in for the paper's real-Alpha validation bar in
// Figure 4 (report MB/s via the custom metric).
package cryptoarch_test

import (
	"fmt"
	"testing"

	"cryptoarch"
	"cryptoarch/internal/ciphers"
	"cryptoarch/internal/experiments"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
	"cryptoarch/internal/pubkey"
)

// benchReport runs one experiment generator per benchmark iteration.
func benchReport(b *testing.B, run func() (*experiments.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchReport(b, experiments.Table1) }
func BenchmarkTable2(b *testing.B) { benchReport(b, experiments.Table2) }
func BenchmarkFig2(b *testing.B)   { benchReport(b, experiments.Fig2) }
func BenchmarkFig4(b *testing.B)   { benchReport(b, experiments.Fig4) }
func BenchmarkFig5(b *testing.B)   { benchReport(b, experiments.Fig5) }
func BenchmarkFig6(b *testing.B)   { benchReport(b, experiments.Fig6) }
func BenchmarkFig7(b *testing.B)   { benchReport(b, experiments.Fig7) }
func BenchmarkFig10(b *testing.B)  { benchReport(b, experiments.Fig10) }
func BenchmarkValuePred(b *testing.B) {
	benchReport(b, experiments.ValuePred)
}

// BenchmarkSimulator measures timing-model throughput (simulated
// instructions per second) on the baseline machine.
func BenchmarkSimulator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := cryptoarch.Time("blowfish", cryptoarch.ISARotate, cryptoarch.FourWide, 4096)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(st.Instructions))
	}
}

// BenchmarkKernelEmulation measures functional-emulator throughput.
func BenchmarkKernelEmulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n, err := cryptoarch.InstructionCount("rijndael", cryptoarch.ISAExtended, 4096)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(n))
	}
}

// Native cipher throughput: the host-CPU analogue of Figure 4's
// real-machine bar.
func BenchmarkNative(b *testing.B) {
	const session = 64 << 10
	for _, name := range ciphers.Names() {
		b.Run(name, func(b *testing.B) {
			c, err := ciphers.Lookup(name)
			if err != nil {
				b.Fatal(err)
			}
			key := make([]byte, c.KeyBytes())
			for i := range key {
				key[i] = byte(i + 1)
			}
			src := make([]byte, session)
			dst := make([]byte, session)
			b.SetBytes(session)
			if c.Info.Stream {
				s, err := c.NewStream(key)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.XORKeyStream(dst, src)
				}
				return
			}
			blk, err := c.NewBlock(key)
			if err != nil {
				b.Fatal(err)
			}
			iv := make([]byte, blk.BlockSize())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ciphers.CBCEncrypt(blk, iv, dst, src)
			}
		})
	}
}

// BenchmarkNativeSetup measures key-schedule cost on the host (the
// Figure 6 quantity, natively).
func BenchmarkNativeSetup(b *testing.B) {
	for _, name := range ciphers.Names() {
		b.Run(name, func(b *testing.B) {
			c, err := ciphers.Lookup(name)
			if err != nil {
				b.Fatal(err)
			}
			key := make([]byte, c.KeyBytes())
			for i := range key {
				key[i] = byte(i + 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c.Info.Stream {
					if _, err := c.NewStream(key); err != nil {
						b.Fatal(err)
					}
				} else if _, err := c.NewBlock(key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMontgomery measures the public-key substrate natively.
func BenchmarkMontgomery(b *testing.B) {
	w := pubkey.NewWorkload(1)
	b.Run("montmul-1024", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = pubkey.MontMul(&w.Base, &w.RMod, &w.M, w.N0)
		}
	})
	b.Run("modexp-1024", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = pubkey.ModExp(&w.Base, &w.Exp, &w.M, &w.RMod, &w.R2, w.N0)
		}
	})
}

// BenchmarkModelSweep times each machine model on one representative
// kernel, exercising every engine configuration path.
func BenchmarkModelSweep(b *testing.B) {
	for _, cfg := range []ooo.Config{ooo.FourWide, ooo.FourWidePlus, ooo.EightWidePlus, ooo.Dataflow} {
		b.Run(cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cryptoarch.Time("twofish", isa.FeatOpt, cfg, 2048); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Example-style smoke check so `go test .` exercises the façade.
func TestPublicAPISurface(t *testing.T) {
	names := cryptoarch.CipherNames()
	if len(names) != 8 {
		t.Fatalf("expected 8 ciphers, got %v", names)
	}
	for _, n := range names {
		info, err := cryptoarch.Info(n)
		if err != nil {
			t.Fatal(err)
		}
		if info.KeyBytes == 0 || info.Rounds == 0 {
			t.Fatalf("%s: incomplete info %+v", n, info)
		}
	}
	if _, err := cryptoarch.NewCipher("rc4", make([]byte, 16)); err == nil {
		t.Fatal("rc4 must be rejected by NewCipher")
	}
	if _, err := cryptoarch.NewStream("3des", make([]byte, 24)); err == nil {
		t.Fatal("3des must be rejected by NewStream")
	}
	st, err := cryptoarch.Time("idea", cryptoarch.ISAExtended, cryptoarch.FourWide, 512)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles == 0 || st.Instructions == 0 {
		t.Fatal("empty timing run")
	}
	fmt.Println("public API smoke:", st.Config, st.Cycles, "cycles")
}
