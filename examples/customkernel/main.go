// Customkernel: author a brand-new cipher kernel against the AXP64
// builder and measure how the paper's ISA extensions would serve a
// yet-to-be-invented algorithm — the generality argument of Section 7.
//
// The toy cipher is a 24-round ARX (add/rotate/xor) Feistel over a 64-bit
// block; it is not cryptographically reviewed and exists only to show the
// workflow: write a Go golden model, emit the kernel once against the
// macro layer, validate functionally, then time on the machine models.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/bits"

	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
	"cryptoarch/internal/simmem"
)

const rounds = 24

// golden is the reference model: l += k; r ^= rotl(l, 7); swap.
func golden(key [rounds]uint32, l, r uint32) (uint32, uint32) {
	for i := 0; i < rounds; i++ {
		l += key[i]
		r ^= bits.RotateLeft32(l, 7)
		l, r = r, l
	}
	return l, r
}

// build emits the kernel: encrypt len bytes from in to out with the round
// keys at ctx. One source, three ISA levels.
func build(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("arx-"+feat.String(), feat)
	kp, l, r, t, t2 := isa.R8, isa.R9, isa.R10, isa.R11, isa.R12
	b.MOV(isa.RA3, kp)
	b.BEQ(isa.RA2, "done")
	b.Label("loop")
	b.LDL(l, 0, isa.RA0)
	b.LDL(r, 4, isa.RA0)
	for i := 0; i < rounds; i++ {
		b.LDL(t, int64(4*i), kp)
		b.ADDL(l, t, l)
		// r ^= rotl(l, 7): one ROLX at the extended level, a rotate+XOR
		// with hardware rotates, four instructions otherwise.
		b.XorRotL32I(l, 7, r, t2)
		l, r = r, l
	}
	b.STL(l, 0, isa.RA1)
	b.STL(r, 4, isa.RA1)
	b.ADDQI(isa.RA0, 8, isa.RA0)
	b.ADDQI(isa.RA1, 8, isa.RA1)
	b.SUBQI(isa.RA2, 8, isa.RA2)
	b.BGT(isa.RA2, "loop")
	b.Label("done")
	b.HALT()
	return b.Build()
}

func main() {
	var key [rounds]uint32
	for i := range key {
		key[i] = 0x9e3779b9 * uint32(i+1)
	}
	const session = 4096
	plain := make([]byte, session)
	for i := range plain {
		plain[i] = byte(i * 31)
	}

	// Golden ciphertext.
	want := make([]byte, session)
	for off := 0; off < session; off += 8 {
		l := binary.LittleEndian.Uint32(plain[off:])
		r := binary.LittleEndian.Uint32(plain[off+4:])
		l, r = golden(key, l, r)
		binary.LittleEndian.PutUint32(want[off:], l)
		binary.LittleEndian.PutUint32(want[off+4:], r)
	}

	for _, feat := range []isa.Feature{isa.FeatNoRot, isa.FeatRot, isa.FeatOpt} {
		prog := build(feat)
		mem := simmem.New(0)
		const ctx, in, out = 0x20000, 0x100000, 0x300000
		for i, k := range key {
			mem.Store(ctx+uint64(4*i), 4, uint64(k))
		}
		mem.WriteBytes(in, plain)
		m := emu.New(prog, mem, 0x80000)
		m.SetArgs(in, out, session, ctx)
		insts := m.Run(nil)
		if got := mem.ReadBytes(out, session); string(got) != string(want) {
			log.Fatalf("%s: kernel does not match the golden model", feat)
		}

		// Fresh machine for the timing run (the emulator is single-shot).
		m = emu.New(build(feat), mem, 0x80000)
		m.SetArgs(in, out, session, ctx)
		eng := ooo.NewEngine(ooo.FourWide, ooo.MachineStream{M: m})
		eng.WarmData(ctx, 4*rounds)
		eng.WarmCode(len(prog.Code))
		st, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("arx/%-6s validated; %6d insts, %6d cycles on 4W (%.2f bytes/1000 cycles)\n",
			feat, insts, st.Cycles, float64(session)*1000/float64(st.Cycles))
	}
}
