// Archlab: sweep every cipher kernel across the paper's machine models
// and instruction-set levels, reproducing the headline comparison of
// Figure 10 interactively — the workflow of a computer architect using
// this repository as a laboratory.
package main

import (
	"fmt"
	"log"

	"cryptoarch"
)

func main() {
	const session = 2048
	levels := []struct {
		name string
		isa  cryptoarch.ISA
	}{
		{"norot", cryptoarch.ISABase},
		{"rot", cryptoarch.ISARotate},
		{"opt", cryptoarch.ISAExtended},
	}
	machines := []cryptoarch.Machine{
		cryptoarch.FourWide, cryptoarch.FourWidePlus,
		cryptoarch.EightWidePlus, cryptoarch.Dataflow,
	}

	fmt.Printf("%-9s %-6s", "cipher", "code")
	for _, m := range machines {
		fmt.Printf(" %10s", m.Name)
	}
	fmt.Println("   (bytes / 1000 cycles)")

	for _, cipher := range cryptoarch.CipherNames() {
		base, err := cryptoarch.Time(cipher, cryptoarch.ISARotate, cryptoarch.FourWide, session)
		if err != nil {
			log.Fatal(err)
		}
		for _, lv := range levels {
			fmt.Printf("%-9s %-6s", cipher, lv.name)
			for _, m := range machines {
				st, err := cryptoarch.Time(cipher, lv.isa, m, session)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(" %10.1f", float64(session)*1000/float64(st.Cycles))
			}
			fmt.Println()
		}
		opt, err := cryptoarch.Time(cipher, cryptoarch.ISAExtended, cryptoarch.FourWide, session)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s speedup of opt over rot on 4W: %.2fx\n\n",
			cipher, float64(base.Cycles)/float64(opt.Cycles))
	}
}
