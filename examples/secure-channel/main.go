// Secure-channel: the session-management strategy the paper's
// introduction describes, end to end. A client and server exchange a
// private key under a 1024-bit Diffie-Hellman-style handshake built on
// this repository's from-scratch Montgomery exponentiation (the expensive
// public-key step), then switch to a fast symmetric cipher (Twofish-CBC)
// for the bulk of the session — exactly why the paper optimizes the
// symmetric kernels.
package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"log"

	"cryptoarch"
	"cryptoarch/internal/pubkey"
)

// handshake derives a shared secret: g^a, g^b exchanged, both sides
// compute g^(ab) mod p with the Montgomery exponentiator.
func handshake() (client, server []byte) {
	// Deterministic demo parameters (p odd, 1024-bit).
	w := pubkey.NewWorkload(2026)
	p := w.M
	g := w.Base

	var a, b pubkey.Num
	a[0], a[1] = 0xdeadbeefcafef00d, 0x0123456789abcdef
	b[0], b[1] = 0xfeedfacec0ffee00, 0xfedcba9876543210

	ga := pubkey.ModExp(&g, &a, &p, &w.RMod, &w.R2, w.N0)  // client -> server
	gb := pubkey.ModExp(&g, &b, &p, &w.RMod, &w.R2, w.N0)  // server -> client
	kc := pubkey.ModExp(&gb, &a, &p, &w.RMod, &w.R2, w.N0) // client side
	ks := pubkey.ModExp(&ga, &b, &p, &w.RMod, &w.R2, w.N0) // server side

	hc := sha256.Sum256([]byte(kc.Big().Text(16)))
	hs := sha256.Sum256([]byte(ks.Big().Text(16)))
	return hc[:16], hs[:16]
}

type record struct{ payload []byte }

func main() {
	ck, sk := handshake()
	if !bytes.Equal(ck, sk) {
		log.Fatal("handshake: shared secrets differ")
	}
	fmt.Printf("handshake complete; 128-bit session key %x\n", ck)

	// Bulk transfer: client encrypts records, server decrypts.
	wire := make(chan record)
	const blocks = 4
	go func() { // client
		enc, err := cryptoarch.NewCipher("twofish", ck)
		if err != nil {
			log.Fatal(err)
		}
		iv := make([]byte, enc.BlockSize())
		for i := 0; i < blocks; i++ {
			msg := []byte(fmt.Sprintf("record %d: the quick brown fox jumps over..", i))
			msg = msg[:enc.BlockSize()*2]
			ct := make([]byte, len(msg))
			cryptoarch.EncryptCBC(enc, iv, ct, msg)
			wire <- record{payload: ct}
		}
		close(wire)
	}()

	dec, err := cryptoarch.NewCipher("twofish", sk)
	if err != nil {
		log.Fatal(err)
	}
	iv := make([]byte, dec.BlockSize())
	n := 0
	for rec := range wire { // server
		pt := make([]byte, len(rec.payload))
		cryptoarch.DecryptCBC(dec, iv, pt, rec.payload)
		fmt.Printf("server received: %q\n", pt)
		n++
	}
	fmt.Printf("session closed after %d records; CBC state chained across records\n", n)
}
