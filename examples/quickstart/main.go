// Quickstart: encrypt and decrypt a message with each of the paper's
// eight ciphers through the public API, then time one of them on the
// simulated baseline machine.
package main

import (
	"bytes"
	"fmt"
	"log"

	"cryptoarch"
)

func main() {
	msg := []byte("ASPLOS 2000: architectural support for fast symmetric-key crypto!!")

	for _, name := range cryptoarch.CipherNames() {
		info, err := cryptoarch.Info(name)
		if err != nil {
			log.Fatal(err)
		}
		key := make([]byte, info.KeyBytes)
		for i := range key {
			key[i] = byte(3 * i)
		}

		if info.Stream {
			enc, _ := cryptoarch.NewStream(name, key)
			dec, _ := cryptoarch.NewStream(name, key)
			ct := make([]byte, len(msg))
			back := make([]byte, len(msg))
			enc.XORKeyStream(ct, msg)
			dec.XORKeyStream(back, ct)
			check(name, msg, back)
			fmt.Printf("%-9s stream            ct[0:8]=%x\n", name, ct[:8])
			continue
		}

		b, err := cryptoarch.NewCipher(name, key)
		if err != nil {
			log.Fatal(err)
		}
		// Pad to whole blocks for the demo.
		padded := append(bytes.Clone(msg), make([]byte, b.BlockSize()-len(msg)%b.BlockSize())...)
		iv := make([]byte, b.BlockSize())
		ivDec := make([]byte, b.BlockSize())
		ct := make([]byte, len(padded))
		back := make([]byte, len(padded))
		cryptoarch.EncryptCBC(b, iv, ct, padded)
		cryptoarch.DecryptCBC(b, ivDec, back, ct)
		check(name, padded, back)
		fmt.Printf("%-9s %3d-bit blocks    ct[0:8]=%x\n", name, b.BlockSize()*8, ct[:8])
	}

	// Cycle-accurate timing of the Rijndael kernel on the baseline model.
	st, err := cryptoarch.Time("rijndael", cryptoarch.ISARotate, cryptoarch.FourWide, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrijndael on the 4W model: %d cycles for 4KB (%.2f bytes/1000 cycles, IPC %.2f)\n",
		st.Cycles, 4096*1000/float64(st.Cycles), st.IPC())
}

func check(name string, want, got []byte) {
	if !bytes.Equal(want, got) {
		log.Fatalf("%s: roundtrip failed", name)
	}
}
