package experiments

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
)

func checkpointGrid() []Cell {
	return []Cell{phantomCell(1), phantomCell(2), phantomCell(3)}
}

func TestCheckpointRoundTrip(t *testing.T) {
	withOverride(t, func(c Cell, r *cellResult) bool { r.n = 1; return true })
	cells := checkpointGrid()
	out := SweepObservedCtx(context.Background(), cells, nil)
	cp := NewCheckpoint(cells, out, "complete")
	if cp.Total != 3 || cp.Done != 3 || len(cp.Outstanding) != 0 || len(cp.Poisoned) != 0 {
		t.Fatalf("checkpoint accounting: %+v", cp)
	}
	b, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.GridKey != cp.GridKey || got.Done != cp.Done || got.Reason != "complete" {
		t.Fatalf("round trip: %+v vs %+v", got, cp)
	}
	if err := got.Matches(cells); err != nil {
		t.Fatalf("checkpoint rejects its own grid: %v", err)
	}
}

func TestCheckpointInterruptAccounting(t *testing.T) {
	prev := SetParallelism(1)
	defer SetParallelism(prev)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	withOverride(t, func(c Cell, r *cellResult) bool {
		n++
		if n == 1 {
			cancel()
		}
		r.n = 1
		return true
	})
	cells := checkpointGrid()
	out := SweepObservedCtx(ctx, cells, nil)
	cp := NewCheckpoint(cells, out, "interrupt")
	if cp.Done != 1 || len(cp.Outstanding) != 2 || cp.Total != 3 {
		t.Fatalf("interrupt accounting: %+v", cp)
	}
	// The outstanding keys identify exactly the unexecuted cells.
	want := map[string]bool{cells[1].key(): true, cells[2].key(): true}
	for _, k := range cp.Outstanding {
		if !want[k] {
			t.Fatalf("unexpected outstanding key %q", k)
		}
	}
}

func TestCheckpointGridKeySensitivity(t *testing.T) {
	cells := checkpointGrid()
	base := GridKey(cells)
	// Dedup: duplicates do not change the identity.
	if got := GridKey(append([]Cell{cells[0]}, cells...)); got != base {
		t.Fatalf("duplicate cell changed grid key: %s vs %s", got, base)
	}
	// Any grid change misses.
	if got := GridKey(cells[:2]); got == base {
		t.Fatal("shrunk grid collided")
	}
	changed := append([]Cell{}, cells...)
	changed[0].Seed++
	if got := GridKey(changed); got == base {
		t.Fatal("reseeded grid collided")
	}
}

func TestCheckpointMismatchRefuses(t *testing.T) {
	cells := checkpointGrid()
	out := &SweepOutcome{Cells: []CellOutcome{
		{Cell: cells[0], State: CellDone},
		{Cell: cells[1], State: CellDone},
		{Cell: cells[2], State: CellDone},
	}}
	cp := NewCheckpoint(cells, out, "complete")
	other := checkpointGrid()
	other[0].Session = 999
	if err := cp.Matches(other); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("mismatched grid accepted: %v", err)
	}
}

func TestCheckpointDecodeRejectsBrokenInput(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"not json":       "put-123-garbage",
		"wrong version":  `{"version":99,"grid_key":"0123456789abcdef","total_cells":0,"done_cells":0,"reason":"x"}`,
		"short key":      `{"version":1,"grid_key":"abc","total_cells":0,"done_cells":0,"reason":"x"}`,
		"non-hex key":    `{"version":1,"grid_key":"zzzzzzzzzzzzzzzz","total_cells":0,"done_cells":0,"reason":"x"}`,
		"done > total":   `{"version":1,"grid_key":"0123456789abcdef","total_cells":1,"done_cells":2,"reason":"x"}`,
		"negative total": `{"version":1,"grid_key":"0123456789abcdef","total_cells":-1,"done_cells":0,"reason":"x"}`,
		"bad accounting": `{"version":1,"grid_key":"0123456789abcdef","total_cells":5,"done_cells":1,"outstanding":["a"],"reason":"x"}`,
	}
	for name, in := range cases {
		if _, err := DecodeCheckpoint([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestCheckpointWriteLoad(t *testing.T) {
	cells := checkpointGrid()
	out := &SweepOutcome{Cells: []CellOutcome{
		{Cell: cells[0], State: CellDone},
		{Cell: cells[1], State: CellSkipped},
		{Cell: cells[2], State: CellSkipped},
	}}
	cp := NewCheckpoint(cells, out, "interrupt")
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := WriteCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GridKey != cp.GridKey || got.Done != 1 || len(got.Outstanding) != 2 {
		t.Fatalf("loaded checkpoint %+v", got)
	}
	// No temp residue from the atomic write.
	if m, _ := filepath.Glob(filepath.Join(filepath.Dir(path), ".ckpt-*")); len(m) != 0 {
		t.Fatalf("checkpoint temp residue: %v", m)
	}
}

// FuzzCheckpointDecode holds DecodeCheckpoint to the decoder contract:
// arbitrary input either yields a checkpoint that re-encodes and passes
// validation again, or an error — never a panic, never a half-valid
// checkpoint.
func FuzzCheckpointDecode(f *testing.F) {
	cells := []Cell{phantomCell(1), phantomCell(2)}
	out := &SweepOutcome{Cells: []CellOutcome{
		{Cell: cells[0], State: CellDone},
		{Cell: cells[1], State: CellSkipped},
	}}
	if b, err := NewCheckpoint(cells, out, "interrupt").Encode(); err == nil {
		f.Add(b)
		f.Add(b[:len(b)/2])    // truncated
		f.Add(append(b, b...)) // trailing garbage
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		// Accepted checkpoints must survive a re-encode/re-decode cycle.
		b, err := cp.Encode()
		if err != nil {
			t.Fatalf("accepted checkpoint fails to encode: %v", err)
		}
		if _, err := DecodeCheckpoint(b); err != nil {
			t.Fatalf("re-encoded checkpoint rejected: %v", err)
		}
	})
}
