package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Supervision tests run on phantom cells: grid points whose execution is
// intercepted by the test override before the unknown cipher could error,
// so forcing a panic, a hang or a cancellation costs microseconds instead
// of a simulation.

func phantomCell(i int) Cell {
	return Cell{Kind: CellCount, Cipher: fmt.Sprintf("phantom-%d", i), Session: 1, Seed: int64(i)}
}

// withOverride installs the exec override around a clean cell cache and
// tears both down with the test.
func withOverride(t *testing.T, f func(c Cell, r *cellResult) bool) {
	t.Helper()
	ResetCache()
	execOverride = f
	t.Cleanup(func() {
		execOverride = nil
		ResetCache()
	})
}

func TestSweepPanicIsolation(t *testing.T) {
	withOverride(t, func(c Cell, r *cellResult) bool {
		if c.Cipher == "phantom-2" {
			panic("forced cell panic")
		}
		r.n = uint64(c.Seed)
		return true
	})
	cells := []Cell{phantomCell(1), phantomCell(2), phantomCell(3)}
	out := SweepObservedCtx(context.Background(), cells, nil)
	if out.Cancelled != nil {
		t.Fatalf("uncancelled sweep reported Cancelled=%v", out.Cancelled)
	}
	if done, panicked := out.Count(CellDone), out.Count(CellPanicked); done != 2 || panicked != 1 {
		t.Fatalf("done=%d panicked=%d, want 2/1 (%+v)", done, panicked, out.Cells)
	}
	po := out.Poisoned()
	var pe *CellPanicError
	if len(po) != 1 || !errors.As(po[0].Err, &pe) {
		t.Fatalf("poisoned = %+v, want one CellPanicError", po)
	}
	if pe.Value != "forced cell panic" || pe.Cell.Cipher != "phantom-2" {
		t.Fatalf("panic error carries value %v / cell %s", pe.Value, pe.Cell.Cipher)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatalf("panic error captured no stack: %q", pe.Stack)
	}
	// The panic resurfaces deterministically wherever the cell is consumed.
	r := getCell(cells[1])
	if !errors.As(r.err, &pe) {
		t.Fatalf("cached cell error = %v, want the recovered panic", r.err)
	}
	// The healthy cells were unharmed.
	if r := getCell(cells[2]); r.err != nil || r.n != 3 {
		t.Fatalf("neighbour cell: n=%d err=%v", r.n, r.err)
	}
}

func TestSweepCellTimeout(t *testing.T) {
	withOverride(t, func(c Cell, r *cellResult) bool {
		if c.Cipher == "phantom-1" {
			time.Sleep(300 * time.Millisecond)
		}
		r.n = 7
		return true
	})
	defer SetCellDeadline(SetCellDeadline(25 * time.Millisecond))
	out := SweepObservedCtx(context.Background(), []Cell{phantomCell(1), phantomCell(2)}, nil)
	if timedOut, done := out.Count(CellTimedOut), out.Count(CellDone); timedOut != 1 || done != 1 {
		t.Fatalf("timed-out=%d done=%d, want 1/1 (%+v)", timedOut, done, out.Cells)
	}
	var te *CellTimeoutError
	if po := out.Poisoned(); len(po) != 1 || !errors.As(po[0].Err, &te) {
		t.Fatalf("poisoned = %+v, want one CellTimeoutError", po)
	} else if te.Limit != 25*time.Millisecond {
		t.Fatalf("timeout limit = %v", te.Limit)
	}
}

func TestSweepCancellationAndResume(t *testing.T) {
	prev := SetParallelism(1) // serial path: deterministic dispatch order
	defer SetParallelism(prev)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	withOverride(t, func(c Cell, r *cellResult) bool {
		if ran.Add(1) == 2 {
			cancel() // interrupt while the second cell is "executing"
		}
		r.n = 1
		return true
	})
	cells := []Cell{phantomCell(1), phantomCell(2), phantomCell(3), phantomCell(4), phantomCell(5)}
	out := SweepObservedCtx(ctx, cells, nil)
	if !errors.Is(out.Cancelled, context.Canceled) {
		t.Fatalf("Cancelled = %v, want context.Canceled", out.Cancelled)
	}
	if done, skipped := out.Count(CellDone), out.Count(CellSkipped); done != 2 || skipped != 3 {
		t.Fatalf("done=%d skipped=%d, want 2/3 (%+v)", done, skipped, out.Cells)
	}
	if n := len(out.Outstanding()); n != 3 {
		t.Fatalf("outstanding = %d, want 3", n)
	}
	// Resume under a fresh context: the two completed cells are recalled
	// from cache (no re-execution), the three outstanding ones run now.
	out2 := SweepObservedCtx(context.Background(), cells, nil)
	if !out2.Clean() || out2.Count(CellDone) != 5 {
		t.Fatalf("resumed sweep: clean=%v done=%d (%+v)", out2.Clean(), out2.Count(CellDone), out2.Cells)
	}
	if got := ran.Load(); got != 5 {
		t.Fatalf("executions across interrupt+resume = %d, want 5 (no redo)", got)
	}
}

func TestCancellationErrorNotCached(t *testing.T) {
	var calls atomic.Int32
	withOverride(t, func(c Cell, r *cellResult) bool {
		if calls.Add(1) == 1 {
			r.err = context.Canceled // a chunk boundary saw the cancelled context
		} else {
			r.n = 9
		}
		return true
	})
	c := phantomCell(1)
	r1 := getCell(c)
	if st, _ := classifyCell(r1); st != CellCancelled {
		t.Fatalf("state = %v, want cancelled (err %v)", st, r1.err)
	}
	// The interrupt artifact must not be memoized: the next request
	// re-executes and succeeds.
	r2 := getCell(c)
	if r2.err != nil || r2.n != 9 {
		t.Fatalf("retried cell: n=%d err=%v", r2.n, r2.err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}
