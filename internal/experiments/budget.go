package experiments

import (
	"sync/atomic"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/ooo"
)

// Per-cell simulation budget. The sweep's default is the exact serial
// path — every published table and figure is regenerated bit-identically.
// A budget switches CellKernel timing cells (the bulk of sweep work) to
// one of the approximate execution modes from the harness: time-parallel
// chunked replay (exact instruction counts, seam-bounded cycles) or
// interval sampling (extrapolated cycles with a reported dispersion
// bound). Cells that have no trace to address fall back to exact runs on
// their own; ApproxCellCount says how many cells actually took an
// approximate path, so front-ends can refuse to write golden outputs
// produced under a budget.

// BudgetMode selects how CellKernel cells execute.
type BudgetMode int

const (
	// BudgetExact is the golden serial path (the default).
	BudgetExact BudgetMode = iota
	// BudgetChunked runs time-parallel chunked replay.
	BudgetChunked
	// BudgetSampled runs interval sampling.
	BudgetSampled
)

// CellBudget configures the approximate execution of CellKernel cells.
// Zero-valued fields take the harness defaults.
type CellBudget struct {
	Mode BudgetMode
	// Chunks is the chunk count for BudgetChunked.
	Chunks int
	// SampleIntervals and SampleIntervalInsts are K and L for
	// BudgetSampled.
	SampleIntervals     int
	SampleIntervalInsts int
	// WarmupInsts overrides the per-chunk / per-interval warmup prefix.
	WarmupInsts int
}

var (
	cellBudget  atomic.Pointer[CellBudget]
	approxCells atomic.Int64
)

// SetCellBudget installs the budget for subsequent cell executions and
// returns the previous one (nil means exact). It does not invalidate the
// cell cache: cells already executed keep their results, so front-ends
// set the budget before the first sweep (or call ResetCache).
func SetCellBudget(b *CellBudget) *CellBudget {
	return cellBudget.Swap(b)
}

// GetCellBudget returns the installed budget (nil means exact).
func GetCellBudget() *CellBudget { return cellBudget.Load() }

// ApproxCellCount returns how many cells have executed through an
// approximate path (chunked or genuinely sampled) since process start.
// Serial and exact fallbacks under a budget do not count.
func ApproxCellCount() int64 { return approxCells.Load() }

// timeKernelCell executes a CellKernel cell, honoring the installed
// budget. The returned stats are exact when the budget is nil (or the
// harness fell back); otherwise they carry the mode's documented error
// semantics.
func timeKernelCell(c Cell) (*ooo.Stats, error) {
	b := cellBudget.Load()
	if b == nil || b.Mode == BudgetExact {
		return harness.TimeKernel(c.Cipher, c.Feat, c.Cfg, c.Session, c.Seed)
	}
	switch b.Mode {
	case BudgetChunked:
		st, rep, err := harness.TimeKernelChunked(c.Cipher, c.Feat, c.Cfg, c.Session, c.Seed,
			harness.ChunkOptions{Chunks: b.Chunks, WarmupInsts: b.WarmupInsts})
		if err == nil && !rep.Serial {
			approxCells.Add(1)
		}
		return st, err
	case BudgetSampled:
		st, rep, err := harness.TimeKernelSampled(c.Cipher, c.Feat, c.Cfg, c.Session, c.Seed,
			harness.SampleOptions{Intervals: b.SampleIntervals, IntervalInsts: b.SampleIntervalInsts, WarmupInsts: b.WarmupInsts})
		if err == nil && !rep.Exact {
			approxCells.Add(1)
		}
		return st, err
	}
	return harness.TimeKernel(c.Cipher, c.Feat, c.Cfg, c.Session, c.Seed)
}
