package experiments

import (
	"fmt"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// DecryptParityCells declares the footnote-1 grid: per cipher, one timed
// session in each direction.
func DecryptParityCells() []Cell {
	var cells []Cell
	for _, name := range Ciphers {
		cells = append(cells,
			Cell{Kind: CellKernel, Cipher: name, Feat: isa.FeatOpt, Cfg: ooo.FourWide, Session: SessionBytes, Seed: DefaultSeed},
			Cell{Kind: CellDecrypt, Cipher: name, Feat: isa.FeatOpt, Cfg: ooo.FourWide, Session: SessionBytes, Seed: DefaultSeed},
		)
	}
	return cells
}

// DecryptParity verifies the paper's footnote 1: "Because of the symmetry
// between the encryption and decryption algorithms, performance was
// comparable for these codes for all experiments." It times both
// directions of every kernel on the baseline machine and reports the
// ratio.
func DecryptParity() (*Report, error) {
	r := &Report{
		ID:    "footnote-1-decrypt",
		Title: "Decryption vs encryption performance (4W, optimized kernels, 4KB)",
		Note:  "Paper footnote 1: symmetry makes the two directions perform comparably.",
		Columns: []string{
			"Cipher", "Encrypt cycles", "Decrypt cycles", "Dec/Enc",
		},
	}
	for _, name := range Ciphers {
		enc, err := timed(name, isa.FeatOpt, ooo.FourWide, SessionBytes, DefaultSeed)
		if err != nil {
			return nil, err
		}
		dec, err := timedDecrypt(name, isa.FeatOpt, ooo.FourWide, SessionBytes, DefaultSeed)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{
			name,
			fmt.Sprint(enc.Cycles),
			fmt.Sprint(dec.Cycles),
			fmt.Sprintf("%.2f", float64(dec.Cycles)/float64(enc.Cycles)),
		})
	}
	return r, nil
}
