package experiments

import (
	"fmt"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// PipeStats runs one cipher session at a kernel-variant level on a
// machine model and reports the per-cause commit-slot stall attribution —
// the single-run, always-on counterpart of Figure 5's bottleneck
// re-insertion study. The optional observer can attach a pipeline-event
// tracer to the run.
func PipeStats(cipher string, feat isa.Feature, cfg ooo.Config, sessionBytes int, obs harness.RunObserver) (*Report, *ooo.Stats, error) {
	st, err := harness.TimeKernelObserved(cipher, feat, cfg, sessionBytes, DefaultSeed, obs)
	if err != nil {
		return nil, nil, err
	}
	r := &Report{
		ID: "pipestats",
		Title: fmt.Sprintf("Commit-slot stall attribution: %s/%s on %s, %d-byte session",
			cipher, feat, cfg.Name, sessionBytes),
		Columns: []string{"Cause", "Slots", "Share"},
	}
	total := st.Stalls.Slots()
	if total == 0 {
		r.Note = fmt.Sprintf("cycles=%d insts=%d IPC=%.2f — slot attribution is undefined "+
			"for infinite-issue machines (no commit-slot budget)", st.Cycles, st.Instructions, st.IPC())
		return r, st, nil
	}
	for c := ooo.StallCause(0); c < ooo.NumStallCauses; c++ {
		r.Rows = append(r.Rows, []string{
			c.String(),
			fmt.Sprint(st.Stalls[c]),
			fmt.Sprintf("%.2f%%", 100*st.Stalls.Share(c)),
		})
	}
	r.Rows = append(r.Rows, []string{"total", fmt.Sprint(total), "100.00%"})
	r.Note = fmt.Sprintf(
		"cycles=%d insts=%d IPC=%.2f mispredict=%.2f%% sbox-hit=%.1f%% | "+
			"slots=%d = cycles x width %d | grouped shares: issue+res=%.1f%% branch=%.1f%% mem=%.1f%% alias=%.1f%%",
		st.Cycles, st.Instructions, st.IPC(),
		100*st.MispredictRate(), 100*st.SboxHitRate(),
		total, cfg.IssueWidth,
		100*float64(st.Stalls.IssueResSlots())/float64(total),
		100*float64(st.Stalls.BranchSlots())/float64(total),
		100*float64(st.Stalls.MemSlots())/float64(total),
		100*st.Stalls.Share(ooo.StallAlias))
	return r, st, nil
}
