package experiments

import (
	"fmt"
	"sort"

	"cryptoarch/internal/emu"
	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
)

// vpRow is the value-predictability summary of one cipher kernel.
type vpRow struct {
	best, mean float64
	edges      int
}

// measureValuePred applies an infinite last-value predictor to every
// instruction of one cipher kernel and summarizes accuracy over the
// diffusion-path instruction classes.
func measureValuePred(cipher string, feat isa.Feature, session int, seed int64) (vpRow, error) {
	diffusion := map[isa.Class]bool{
		isa.ClassLogic: true, isa.ClassRotate: true, isa.ClassMult: true,
		isa.ClassSubst: true, isa.ClassPerm: true,
	}
	const minExec = 64
	w, err := harness.NewWorkload(cipher, session, seed)
	if err != nil {
		return vpRow{}, err
	}
	m, err := harness.Prepare(w, feat)
	if err != nil {
		return vpRow{}, err
	}
	type stat struct {
		last           uint64
		first          uint64
		seen, varied   bool
		execs, correct uint64
	}
	stats := map[int]*stat{}
	// Compares and conditional moves produce 1-bit carry/select
	// helpers (e.g. the software MULMOD's correction bit), not
	// diffusion values; a biased carry is "predictable" without
	// breaking any ciphertext dependence.
	helper := map[isa.Op]bool{
		isa.OpCMPEQ: true, isa.OpCMPULT: true, isa.OpCMPULE: true,
		isa.OpCMPLT: true, isa.OpCMPLE: true,
		isa.OpCMOVEQ: true, isa.OpCMOVNE: true,
	}
	m.Run(func(rec *emu.Rec) {
		if !diffusion[rec.Inst.Class] || rec.Inst.Dest() == isa.RZ || helper[rec.Inst.Op] {
			return
		}
		s := stats[rec.Idx]
		if s == nil {
			s = &stat{}
			stats[rec.Idx] = s
		}
		if s.seen {
			s.execs++
			if rec.Val == s.last {
				s.correct++
			}
			if rec.Val != s.first {
				s.varied = true
			}
		} else {
			s.first = rec.Val
		}
		s.seen = true
		s.last = rec.Val
	})
	// Accumulate in sorted instruction-index order: float summation is
	// not associative, so map-iteration order would make the mean differ
	// in the last bits between otherwise identical runs.
	idxs := make([]int, 0, len(stats))
	for i := range stats {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var row vpRow
	var sum float64
	for _, i := range idxs {
		s := stats[i]
		// Constant-valued instructions (key-derived loop invariants)
		// carry no ciphertext dependence: predicting them breaks
		// nothing, so they are excluded, as is any edge executed too
		// rarely to measure.
		if s.execs < minExec || !s.varied {
			continue
		}
		acc := float64(s.correct) / float64(s.execs)
		if acc > row.best {
			row.best = acc
		}
		sum += acc
		row.edges++
	}
	if row.edges > 0 {
		row.mean = sum / float64(row.edges)
	}
	return row, nil
}

// ValuePredCells declares the Section 4.3 grid: one predictability
// measurement per cipher.
func ValuePredCells() []Cell {
	var cells []Cell
	for _, name := range Ciphers {
		cells = append(cells, Cell{Kind: CellValuePred, Cipher: name, Feat: isa.FeatRot, Session: SessionBytes, Seed: DefaultSeed})
	}
	return cells
}

// ValuePred reproduces the Section 4.3 value-prediction study: an
// infinite last-value predictor applied to every instruction of each
// cipher kernel. The paper reports the most predictable dependence edge at
// only 6.3% — diffusion destroys value locality. We report the best
// accuracy over the diffusion-path instruction classes (logic, rotate,
// multiply, substitution, permutation); bookkeeping instructions (loop
// counters, key reloads) are trivially predictable and excluded, as they
// carry no ciphertext dependence.
func ValuePred() (*Report, error) {
	r := &Report{
		ID:    "sec-4.3-valuepred",
		Title: "Last-value predictability of cipher-kernel dataflow",
		Columns: []string{
			"Cipher", "Best edge accuracy", "Mean accuracy", "Edges measured",
		},
	}
	for _, name := range Ciphers {
		row, err := valuePredFor(name, isa.FeatRot, SessionBytes, DefaultSeed)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{
			name,
			fmt.Sprintf("%.1f%%", 100*row.best),
			fmt.Sprintf("%.2f%%", 100*row.mean),
			fmt.Sprint(row.edges),
		})
	}
	return r, nil
}
