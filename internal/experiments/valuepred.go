package experiments

import (
	"fmt"

	"cryptoarch/internal/emu"
	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
)

// ValuePred reproduces the Section 4.3 value-prediction study: an
// infinite last-value predictor applied to every instruction of each
// cipher kernel. The paper reports the most predictable dependence edge at
// only 6.3% — diffusion destroys value locality. We report the best
// accuracy over the diffusion-path instruction classes (logic, rotate,
// multiply, substitution, permutation); bookkeeping instructions (loop
// counters, key reloads) are trivially predictable and excluded, as they
// carry no ciphertext dependence.
func ValuePred() (*Report, error) {
	r := &Report{
		ID:    "sec-4.3-valuepred",
		Title: "Last-value predictability of cipher-kernel dataflow",
		Columns: []string{
			"Cipher", "Best edge accuracy", "Mean accuracy", "Edges measured",
		},
	}
	diffusion := map[isa.Class]bool{
		isa.ClassLogic: true, isa.ClassRotate: true, isa.ClassMult: true,
		isa.ClassSubst: true, isa.ClassPerm: true,
	}
	const minExec = 64
	for _, name := range Ciphers {
		w, err := harness.NewWorkload(name, SessionBytes, 12345)
		if err != nil {
			return nil, err
		}
		m, err := harness.Prepare(w, isa.FeatRot)
		if err != nil {
			return nil, err
		}
		type stat struct {
			last           uint64
			first          uint64
			seen, varied   bool
			execs, correct uint64
		}
		stats := map[int]*stat{}
		// Compares and conditional moves produce 1-bit carry/select
		// helpers (e.g. the software MULMOD's correction bit), not
		// diffusion values; a biased carry is "predictable" without
		// breaking any ciphertext dependence.
		helper := map[isa.Op]bool{
			isa.OpCMPEQ: true, isa.OpCMPULT: true, isa.OpCMPULE: true,
			isa.OpCMPLT: true, isa.OpCMPLE: true,
			isa.OpCMOVEQ: true, isa.OpCMOVNE: true,
		}
		m.Run(func(rec *emu.Rec) {
			if !diffusion[rec.Inst.Class] || rec.Inst.Dest() == isa.RZ || helper[rec.Inst.Op] {
				return
			}
			s := stats[rec.Idx]
			if s == nil {
				s = &stat{}
				stats[rec.Idx] = s
			}
			if s.seen {
				s.execs++
				if rec.Val == s.last {
					s.correct++
				}
				if rec.Val != s.first {
					s.varied = true
				}
			} else {
				s.first = rec.Val
			}
			s.seen = true
			s.last = rec.Val
		})
		best, sum, edges := 0.0, 0.0, 0
		for _, s := range stats {
			// Constant-valued instructions (key-derived loop invariants)
			// carry no ciphertext dependence: predicting them breaks
			// nothing, so they are excluded, as is any edge executed too
			// rarely to measure.
			if s.execs < minExec || !s.varied {
				continue
			}
			acc := float64(s.correct) / float64(s.execs)
			if acc > best {
				best = acc
			}
			sum += acc
			edges++
		}
		mean := 0.0
		if edges > 0 {
			mean = sum / float64(edges)
		}
		r.Rows = append(r.Rows, []string{
			name,
			fmt.Sprintf("%.1f%%", 100*best),
			fmt.Sprintf("%.2f%%", 100*mean),
			fmt.Sprint(edges),
		})
	}
	return r, nil
}
