package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"cryptoarch/internal/emu"
	"cryptoarch/internal/metrics"
	"cryptoarch/internal/ooo"
)

// Sweep checkpoints. An interrupted sweep's durable state lives in the
// persistent store — every completed cell is already on disk under its
// content-derived key — so the checkpoint does not carry results. What it
// carries is identity and accounting: a content hash of the exact grid
// (engine version, emulator version, every unique cell key) that a resume
// validates before trusting the store, plus the ledger of what was done,
// what was poisoned, and what remains. Resuming is then simply re-running
// the same grid: done cells warm-hit the store, outstanding cells execute,
// and the assembled report is byte-identical to an uninterrupted run.

// CheckpointVersion stamps the checkpoint JSON shape; bump on any change
// so stale files are rejected rather than misread.
const CheckpointVersion = 1

// Checkpoint is the resumable state of one sweep over one grid.
type Checkpoint struct {
	Version int    `json:"version"`
	GridKey string `json:"grid_key"` // identity: hash of versions + cell keys
	Engine  string `json:"engine_version"`
	Emu     string `json:"emu_version"`
	Total   int    `json:"total_cells"`
	Done    int    `json:"done_cells"`
	// Poisoned and Outstanding list the cell keys that failed (error,
	// panic, timeout) and that never completed (cancelled or skipped).
	// Done + len(Poisoned) + len(Outstanding) == Total, always.
	Poisoned    []string `json:"poisoned,omitempty"`
	Outstanding []string `json:"outstanding,omitempty"`
	// Reason records why the checkpoint was written: "interrupt" from a
	// signal handler, "complete" at the end of a clean run.
	Reason string `json:"reason"`
}

// GridKey derives the content identity of a cell grid: the same grid (same
// unique cells, same engine and emulator versions) always hashes to the
// same key, and any change to either provably misses.
func GridKey(cells []Cell) string {
	seen := make(map[string]bool, len(cells))
	fields := make([]string, 0, len(cells)+2)
	fields = append(fields, ooo.EngineVersion, emu.Version)
	for _, c := range cells {
		if k := c.key(); !seen[k] {
			seen[k] = true
			fields = append(fields, k)
		}
	}
	return metrics.HashKey(fields...)
}

// NewCheckpoint assembles a checkpoint from a supervised sweep's outcome.
func NewCheckpoint(cells []Cell, out *SweepOutcome, reason string) *Checkpoint {
	cp := &Checkpoint{
		Version: CheckpointVersion,
		GridKey: GridKey(cells),
		Engine:  ooo.EngineVersion,
		Emu:     emu.Version,
		Total:   len(out.Cells),
		Done:    out.Count(CellDone),
		Reason:  reason,
	}
	for _, co := range out.Poisoned() {
		cp.Poisoned = append(cp.Poisoned, co.Cell.key())
	}
	for _, co := range out.Outstanding() {
		cp.Outstanding = append(cp.Outstanding, co.Cell.key())
	}
	return cp
}

// Encode renders the checkpoint as indented JSON with a trailing newline.
func (cp *Checkpoint) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeCheckpoint parses and validates checkpoint bytes. Corrupt,
// truncated, or internally inconsistent input returns an error — never a
// panic, and never a half-trusted checkpoint (the fuzz target holds this
// to arbitrary input).
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		return nil, fmt.Errorf("experiments: undecodable checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("experiments: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	if len(cp.GridKey) != 16 {
		return nil, fmt.Errorf("experiments: malformed checkpoint grid key %q", cp.GridKey)
	}
	for _, r := range cp.GridKey {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return nil, fmt.Errorf("experiments: malformed checkpoint grid key %q", cp.GridKey)
		}
	}
	if cp.Total < 0 || cp.Done < 0 || cp.Done > cp.Total {
		return nil, fmt.Errorf("experiments: checkpoint counts out of range: done %d of %d", cp.Done, cp.Total)
	}
	if cp.Done+len(cp.Poisoned)+len(cp.Outstanding) != cp.Total {
		return nil, fmt.Errorf("experiments: checkpoint accounting broken: %d done + %d poisoned + %d outstanding != %d total",
			cp.Done, len(cp.Poisoned), len(cp.Outstanding), cp.Total)
	}
	return &cp, nil
}

// Matches validates that the checkpoint was written for exactly this grid
// under exactly this tree. A mismatch means the store cannot be assumed
// warm for these cells and the resume flag is refusing, not resuming.
func (cp *Checkpoint) Matches(cells []Cell) error {
	if k := GridKey(cells); k != cp.GridKey {
		return fmt.Errorf("experiments: checkpoint grid %s does not match current grid %s (engine %s/%s vs %s/%s)",
			cp.GridKey, k, cp.Engine, cp.Emu, ooo.EngineVersion, emu.Version)
	}
	return nil
}

// WriteCheckpoint persists a checkpoint atomically (temp + rename in the
// destination directory), so a crash mid-write leaves either the previous
// checkpoint or none — never a torn one.
func WriteCheckpoint(path string, cp *Checkpoint) error {
	b, err := cp.Encode()
	if err != nil {
		return err
	}
	tmp := filepath.Join(filepath.Dir(path), fmt.Sprintf(".ckpt-%d", os.Getpid()))
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(b)
}
