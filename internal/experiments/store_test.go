package experiments

import (
	"testing"
	"time"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
	"cryptoarch/internal/store"
)

// installTempStore opens a fresh persistent store in a temp directory,
// installs it, and restores the previous store and clean caches when the
// test ends.
func installTempStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	ResetCache()
	prev := harness.SetStore(s)
	t.Cleanup(func() {
		harness.SetStore(prev)
		ResetCache()
	})
	return s
}

// TestStoreWarmSweepEquivalence is the golden incremental-sweep gate: the
// full experiment suite is regenerated cold (populating the store), the
// in-process caches are dropped, and the suite is regenerated warm purely
// from stored results. The warm rendering must be byte-identical to the
// cold one, re-simulate nothing, and finish far faster — the PR's
// acceptance bar is 5x; real warm passes are orders of magnitude beyond
// it.
func TestStoreWarmSweepEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full experiment suite twice")
	}
	installTempStore(t)
	defer SetParallelism(SetParallelism(1)) // evaluated now: restores the entry value
	SetParallelism(1)

	render := func() map[string]string {
		out := map[string]string{}
		for _, g := range All() {
			r, err := g.Run()
			if err != nil {
				t.Fatalf("%s: %v", g.Name, err)
			}
			out[g.Name] = r.Text()
		}
		return out
	}

	coldStart := time.Now()
	cold := render()
	coldTime := time.Since(coldStart)
	cst := store.ReadStats()
	if cst.Writes == 0 || cst.ResultMisses == 0 {
		t.Fatalf("cold pass did not populate the store: %+v", cst)
	}

	// Drop every in-process cache; only the disk store survives.
	ResetCache()
	warmStart := time.Now()
	warm := render()
	warmTime := time.Since(warmStart)

	for _, g := range All() {
		if cold[g.Name] != warm[g.Name] {
			t.Errorf("%s: store-warm rendering differs from cold\n--- cold ---\n%s\n--- warm ---\n%s",
				g.Name, cold[g.Name], warm[g.Name])
		}
	}
	wst := store.ReadStats()
	if wst.ResultMisses != 0 {
		t.Errorf("warm pass re-simulated %d cells, want 0 (stats %+v)", wst.ResultMisses, wst)
	}
	if wst.ResultHits == 0 {
		t.Errorf("warm pass never consulted the store: %+v", wst)
	}
	if tc := harness.ReadTraceCacheStats(); tc.Records != 0 {
		t.Errorf("warm pass paid %d functional recordings, want 0", tc.Records)
	}
	t.Logf("cold %v, warm %v (%.0fx)", coldTime, warmTime, float64(coldTime)/float64(warmTime))
	if warmTime*5 > coldTime {
		t.Errorf("warm sweep not 5x faster than cold: cold %v, warm %v", coldTime, warmTime)
	}
}

// TestCellStoreKeySensitivity pins that every identity field of a cell
// reaches its result-tier store key, so editing any of them provably
// misses. Engine/emulator version and kernel-digest sensitivity are pinned
// at the store layer (TestResultKeySensitivity, TestProgramDigestSensitivity);
// here the cell-level plumbing is under test.
func TestCellStoreKeySensitivity(t *testing.T) {
	base := Cell{Kind: CellKernel, Cipher: "blowfish", Feat: isa.FeatRot, Cfg: ooo.FourWide, Session: 4096, Seed: DefaultSeed}
	baseKey, ok := cellStoreKey(base)
	if !ok {
		t.Fatal("no key for a plain kernel cell")
	}
	cfgEdit := ooo.FourWide
	cfgEdit.IssueWidth++
	mutants := map[string]Cell{
		"Kind":    {Kind: CellDecrypt, Cipher: base.Cipher, Feat: base.Feat, Cfg: base.Cfg, Session: base.Session, Seed: base.Seed},
		"Cipher":  {Kind: base.Kind, Cipher: "rc4", Feat: base.Feat, Cfg: base.Cfg, Session: base.Session, Seed: base.Seed},
		"Feat":    {Kind: base.Kind, Cipher: base.Cipher, Feat: isa.FeatNoRot, Cfg: base.Cfg, Session: base.Session, Seed: base.Seed},
		"Cfg":     {Kind: base.Kind, Cipher: base.Cipher, Feat: base.Feat, Cfg: cfgEdit, Session: base.Session, Seed: base.Seed},
		"Session": {Kind: base.Kind, Cipher: base.Cipher, Feat: base.Feat, Cfg: base.Cfg, Session: 8192, Seed: base.Seed},
		"Seed":    {Kind: base.Kind, Cipher: base.Cipher, Feat: base.Feat, Cfg: base.Cfg, Session: base.Session, Seed: base.Seed + 1},
	}
	for field, c := range mutants {
		key, ok := cellStoreKey(c)
		if !ok {
			t.Fatalf("%s: no key", field)
		}
		if key == baseKey {
			t.Errorf("changing %s did not change the result store key", field)
		}
	}
	// The handshake cell has a derivable identity too, and an unknown
	// cipher has none.
	if _, ok := cellStoreKey(Cell{Kind: CellHandshake}); !ok {
		t.Error("handshake cell has no store key")
	}
	if _, ok := cellStoreKey(Cell{Kind: CellKernel, Cipher: "nonesuch", Feat: isa.FeatRot, Cfg: ooo.FourWide, Session: 64, Seed: 1}); ok {
		t.Error("unknown cipher produced a store key")
	}
}

// TestStoreBudgetBypass pins the honesty rule: cells executed under an
// approximate CellBudget neither read from nor write to the store, so
// approximate results can never be served where exact ones are expected.
func TestStoreBudgetBypass(t *testing.T) {
	installTempStore(t)
	c := Cell{Kind: CellKernel, Cipher: "rc4", Feat: isa.FeatRot, Cfg: ooo.FourWide, Session: 1024, Seed: DefaultSeed}

	// Populate the store with the exact result.
	if r := getCell(c); r.err != nil {
		t.Fatal(r.err)
	}
	if st := store.ReadStats(); st.Writes == 0 {
		t.Fatalf("exact cell was not persisted: %+v", st)
	}

	// Under a budget the same cell must not touch the store.
	defer SetCellBudget(SetCellBudget(&CellBudget{Mode: BudgetChunked, Chunks: 2}))
	ResetCache()
	r := getCell(c)
	if r.err != nil {
		t.Fatal(r.err)
	}
	st := store.ReadStats()
	if st.ResultHits != 0 || st.ResultMisses != 0 || st.Writes != 0 {
		t.Fatalf("budgeted cell touched the store: %+v", st)
	}
}

// TestErroredCellsNotStored pins that failed executions are never
// persisted: an error must re-execute (and possibly resolve) on the next
// run instead of being replayed from disk.
func TestErroredCellsNotStored(t *testing.T) {
	installTempStore(t)
	c := Cell{Kind: CellKernel, Cipher: "blowfish", Feat: isa.FeatRot, Cfg: ooo.FourWide, Session: -1, Seed: DefaultSeed}
	if r := getCell(c); r.err == nil {
		t.Fatal("negative session did not error")
	}
	if st := store.ReadStats(); st.Writes != 0 {
		t.Fatalf("errored cell was persisted: %+v", st)
	}
}
