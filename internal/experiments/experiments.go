// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (cipher suite), Figure 2 (SSL characterization),
// Figure 4 (cipher throughput), Figure 5 (bottleneck analysis), Figure 6
// (setup cost), Figure 7 (operation mix), the Section 4.3 value-prediction
// study, Table 2 (machine models) and Figure 10 (optimized-kernel
// speedups).
package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
)

// SessionBytes is the paper's standard session length for all kernel
// measurements (Section 4.2: "for all remaining experiments, we use a
// session length of 4k bytes").
const SessionBytes = 4096

// Ciphers lists the suite in the paper's presentation order.
var Ciphers = []string{"3des", "blowfish", "idea", "mars", "rc4", "rc6", "rijndael", "twofish"}

// ReportSchemaVersion stamps every JSON-rendered report so downstream
// scrapers can detect layout changes. Bump it when a field is renamed,
// removed, or changes meaning — not when rows or notes change.
const ReportSchemaVersion = 1

// Report is a rendered experiment: a title, column headers, and rows.
type Report struct {
	ID      string     `json:"id"` // e.g. "figure-4"
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON stamps schema_version onto every JSON rendering of a
// report, whether marshaled alone or inside the asplos2000 -json array.
func (r Report) MarshalJSON() ([]byte, error) {
	type alias Report // drops the method, avoiding recursion
	return json.Marshal(struct {
		SchemaVersion int `json:"schema_version"`
		alias
	}{ReportSchemaVersion, alias(r)})
}

// JSON renders the report as machine-readable JSON, so benchmark
// trajectories can be scraped (e.g. with jq) instead of parsed from the
// aligned text tables.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Text renders the report as an aligned plain-text table.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	if r.Note != "" {
		fmt.Fprintf(&b, "%s\n", r.Note)
	}
	width := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		width[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	for _, row := range r.Rows {
		line(row)
	}
	return b.String()
}

// Markdown renders the report as a GitHub-flavored table.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", r.ID, r.Title)
	if r.Note != "" {
		fmt.Fprintf(&b, "%s\n\n", r.Note)
	}
	b.WriteString("| " + strings.Join(r.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(r.Columns)) + "\n")
	for _, row := range r.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// rate converts a session measurement to the paper's Figure 4 metric,
// bytes encrypted per 1000 cycles. A zero-cycle run (empty session) rates
// 0 rather than +Inf, matching the other zero-guarded derived metrics.
func rate(bytes int, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(bytes) * 1000 / float64(cycles)
}
