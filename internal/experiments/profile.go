package experiments

import (
	"fmt"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
	"cryptoarch/internal/profview"
)

// String names a cell kind for progress lines and reports.
func (k CellKind) String() string {
	switch k {
	case CellKernel:
		return "kernel"
	case CellSetup:
		return "setup"
	case CellDecrypt:
		return "decrypt"
	case CellCount:
		return "count"
	case CellMix:
		return "mix"
	case CellValuePred:
		return "valuepred"
	case CellHandshake:
		return "handshake"
	}
	return fmt.Sprintf("cell(%d)", uint8(k))
}

// String renders a cell compactly for sweep progress lines.
func (c Cell) String() string {
	s := fmt.Sprintf("%s %s/%s", c.Kind, c.Cipher, c.Feat)
	if c.Cfg.Name != "" {
		s += "/" + c.Cfg.Name
	}
	if c.Session > 0 {
		s += fmt.Sprintf(" %dB", c.Session)
	}
	return s
}

// profileGrid is the cipher-profiling grid of `asplos2000 -profile`: the
// Figure 10 bars plus the rotate baseline — the same cells whose
// comparison the profiler exists to explain.
func profileGrid() []struct {
	feat isa.Feature
	cfg  ooo.Config
} {
	grid := []struct {
		feat isa.Feature
		cfg  ooo.Config
	}{{isa.FeatRot, ooo.FourWide}}
	return append(grid, fig10Bars...)
}

// HotSpots profiles every cell of the Figure 10 grid (through the trace
// cache, so an earlier sweep makes the emulation free) and reports the
// top-n hot PCs of each: the per-instruction view of where the slot
// budget went, ranked like `go tool pprof -top` would rank it.
func HotSpots(topN int) (*Report, error) {
	r := &Report{
		ID:    "profile-hotspots",
		Title: fmt.Sprintf("top %d hot PCs per cipher/variant/model (per-PC commit-slot profile)", topN),
		Note: "weight is commit slots charged to the PC (execute-occupancy " +
			"cycles on DF, which has no slot budget); share is the fraction " +
			"of the run's total budget.",
		Columns: []string{"cipher", "variant", "model", "rank", "pc", "instruction", "retired", "weight", "share", "top stall"},
	}
	for _, cipher := range Ciphers {
		for _, bar := range profileGrid() {
			pr, err := harness.ProfileKernel(cipher, bar.feat, bar.cfg, SessionBytes, DefaultSeed)
			if err != nil {
				return nil, err
			}
			src := &profview.Source{
				Root:  fmt.Sprintf("%s/%s/%s", cipher, bar.feat, bar.cfg.Name),
				Prog:  pr.Prog,
				Prof:  pr.Profile,
				Stats: pr.Stats,
			}
			rep := profview.BuildReport(src, topN)
			for rank, h := range rep.Hot {
				stall := h.TopStall
				if stall == "" {
					stall = "-"
				}
				r.Rows = append(r.Rows, []string{
					cipher, bar.feat.String(), bar.cfg.Name,
					fmt.Sprintf("%d", rank+1),
					fmt.Sprintf("%d", h.PC),
					h.Disasm,
					fmt.Sprintf("%d", h.Retired),
					fmt.Sprintf("%d", h.Weight),
					fmt.Sprintf("%.2f%%", h.Share*100),
					stall,
				})
			}
		}
	}
	return r, nil
}

// TraceCacheReport renders the harness trace-cache counters as a report,
// so `asplos2000 -json` output carries the cache traffic of the run that
// produced it.
func TraceCacheReport() *Report {
	st := harness.ReadTraceCacheStats()
	return &Report{
		ID:      "trace-cache",
		Title:   "trace record/replay cache counters for this invocation",
		Columns: []string{"counter", "value"},
		Rows: [][]string{
			{"hits", fmt.Sprintf("%d", st.Hits)},
			{"misses", fmt.Sprintf("%d", st.Misses)},
			{"records", fmt.Sprintf("%d", st.Records)},
			{"replays", fmt.Sprintf("%d", st.Replays)},
			{"resumes", fmt.Sprintf("%d", st.Resumes)},
			{"live_fallbacks", fmt.Sprintf("%d", st.LiveFallbacks)},
			{"evictions", fmt.Sprintf("%d", st.Evictions)},
			{"record_seconds", fmt.Sprintf("%.3f", st.RecordTime.Seconds())},
		},
	}
}
