package experiments

import (
	"fmt"

	"cryptoarch/internal/emu"
	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
)

// kernelsGet indirection keeps the kernels import local to this package's
// helpers.
func kernelsGet(name string) (*kernels.Kernel, error) { return kernels.Get(name) }

// Fig7 reproduces Figure 7: the dynamic operation mix of each cipher
// kernel, as fractions of all committed instructions, bucketed into the
// paper's eight categories.
func Fig7() (*Report, error) {
	r := &Report{
		ID:    "figure-7",
		Title: "Characterization of cipher kernel operations (fraction of dynamic instructions)",
		Note:  "Original kernels with rotates, 4KB sessions.",
	}
	r.Columns = []string{"Cipher", "Arith", "Logic", "Rotate", "Mult", "Subst", "Perm", "Ld/St", "Control"}
	order := []isa.Class{
		isa.ClassArith, isa.ClassLogic, isa.ClassRotate, isa.ClassMult,
		isa.ClassSubst, isa.ClassPerm, isa.ClassMem, isa.ClassControl,
	}
	for _, name := range Ciphers {
		w, err := harness.NewWorkload(name, SessionBytes, 12345)
		if err != nil {
			return nil, err
		}
		m, err := harness.Prepare(w, isa.FeatRot)
		if err != nil {
			return nil, err
		}
		var counts [isa.NumClasses]uint64
		var total uint64
		m.Run(func(rec *emu.Rec) {
			counts[rec.Inst.Class]++
			total++
		})
		row := []string{name}
		for _, c := range order {
			row = append(row, fmt.Sprintf("%.1f%%", 100*float64(counts[c])/float64(total)))
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}
