package experiments

import (
	"fmt"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
)

// kernelsGet indirection keeps the kernels import local to this package's
// helpers.
func kernelsGet(name string) (*kernels.Kernel, error) { return kernels.Get(name) }

// opMix is the dynamic instruction-class histogram of one kernel session.
type opMix struct {
	counts [isa.NumClasses]uint64
	total  uint64
}

// measureOpMix buckets every committed instruction of one cipher session
// by class. The stream comes from the harness trace cache, so the mix
// measurement shares (or seeds) the recording the timing models replay.
func measureOpMix(cipher string, feat isa.Feature, session int, seed int64) (opMix, error) {
	var mix opMix
	src, _, err := harness.StreamKernel(cipher, feat, session, seed)
	if err != nil {
		return mix, err
	}
	for {
		rec, ok := src.Next()
		if !ok {
			return mix, nil
		}
		mix.counts[rec.Inst.Class]++
		mix.total++
	}
}

// Fig7Cells declares the Figure 7 grid: one class-mix measurement per
// cipher.
func Fig7Cells() []Cell {
	var cells []Cell
	for _, name := range Ciphers {
		cells = append(cells, Cell{Kind: CellMix, Cipher: name, Feat: isa.FeatRot, Session: SessionBytes, Seed: DefaultSeed})
	}
	return cells
}

// Fig7 reproduces Figure 7: the dynamic operation mix of each cipher
// kernel, as fractions of all committed instructions, bucketed into the
// paper's eight categories.
func Fig7() (*Report, error) {
	r := &Report{
		ID:    "figure-7",
		Title: "Characterization of cipher kernel operations (fraction of dynamic instructions)",
		Note:  "Original kernels with rotates, 4KB sessions.",
	}
	r.Columns = []string{"Cipher", "Arith", "Logic", "Rotate", "Mult", "Subst", "Perm", "Ld/St", "Control"}
	order := []isa.Class{
		isa.ClassArith, isa.ClassLogic, isa.ClassRotate, isa.ClassMult,
		isa.ClassSubst, isa.ClassPerm, isa.ClassMem, isa.ClassControl,
	}
	for _, name := range Ciphers {
		mix, err := mixFor(name, isa.FeatRot, SessionBytes, DefaultSeed)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, c := range order {
			row = append(row, fmt.Sprintf("%.1f%%", 100*float64(mix.counts[c])/float64(mix.total)))
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}
