package experiments

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/store"
)

// Interruption soak: a small real sweep (emulation-only cells over a
// persistent store) survives rounds of cancellation at varying points and
// forced panics without corrupting anything. After the chaos, one clean
// sweep completes every cell, and a final pass over a fresh process-state
// (cache dropped, counters zeroed) warm-hits the store for the entire
// grid — proving every entry the interrupted rounds persisted is intact
// and nothing poisoned leaked to disk.

func soakGrid() []Cell {
	var cells []Cell
	for _, cipher := range []string{"blowfish", "rc4"} {
		cells = append(cells,
			Cell{Kind: CellCount, Cipher: cipher, Feat: isa.FeatRot, Session: 512, Seed: DefaultSeed},
			Cell{Kind: CellMix, Cipher: cipher, Feat: isa.FeatRot, Session: 512, Seed: DefaultSeed},
		)
	}
	return cells
}

func TestSweepInterruptionSoak(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	prevStore := harness.SetStore(s)
	t.Cleanup(func() {
		harness.SetStore(prevStore)
		ResetCache()
	})
	prevPar := SetParallelism(2)
	t.Cleanup(func() { SetParallelism(prevPar) })

	cells := soakGrid()
	panicTarget := cells[0].key()

	// Chaos rounds: the first few also panic one cell (so that cell never
	// stores), and every round is cancelled after a staggered delay — from
	// "immediately" through "mid-sweep" to "probably finished".
	for round := 0; round < 8; round++ {
		ResetCache() // forget memo state; disk survives, like a new process
		if round < 3 {
			execOverride = func(c Cell, r *cellResult) bool {
				if c.key() == panicTarget {
					panic("soak: forced cell panic")
				}
				return false // everything else executes for real
			}
		} else {
			execOverride = nil
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(round)*2*time.Millisecond)
		out := SweepObservedCtx(ctx, cells, nil)
		cancel()
		execOverride = nil
		// Invariants that must hold after every interrupted round: no
		// temp-file residue in the store, and no interrupt artifact
		// classified as a cell failure (panics are the only poison here).
		if m, _ := filepath.Glob(filepath.Join(dir, "put-*")); len(m) != 0 {
			t.Fatalf("round %d: temp residue %v", round, m)
		}
		for _, co := range out.Poisoned() {
			if _, ok := co.Err.(*CellPanicError); !ok {
				t.Fatalf("round %d: non-panic poison %v: %v", round, co.Cell, co.Err)
			}
		}
	}

	// The store must reopen cleanly after all that (manifest intact, every
	// entry checksum-verified lazily on load).
	s2, err := store.Open(dir, 1<<30)
	if err != nil {
		t.Fatalf("store did not survive the soak: %v", err)
	}
	harness.SetStore(s2)

	// Clean run: everything completes, including the cell the chaos rounds
	// kept panicking (its failures were never persisted).
	ResetCache()
	out := SweepObservedCtx(context.Background(), cells, nil)
	if !out.Clean() {
		t.Fatalf("clean run not clean: cancelled=%v poisoned=%v", out.Cancelled, out.Poisoned())
	}
	if got := out.Count(CellDone); got != len(cells) {
		t.Fatalf("clean run: %d of %d done", got, len(cells))
	}

	// Final pass from zeroed counters: the whole grid must warm-hit the
	// store — zero executions, zero misses, zero corrupt entries.
	ResetCache()
	out = SweepObservedCtx(context.Background(), cells, nil)
	if !out.Clean() {
		t.Fatalf("warm run not clean: %+v", out)
	}
	st := store.ReadStats()
	if st.ResultHits != len(cells) || st.ResultMisses != 0 {
		t.Fatalf("warm run: %d hits / %d misses, want %d / 0", st.ResultHits, st.ResultMisses, len(cells))
	}
	if st.Corrupt != 0 {
		t.Fatalf("soak left %d corrupt entries", st.Corrupt)
	}
}
