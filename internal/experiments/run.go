package experiments

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Generator is one experiment entry point. Cells declares the grid of
// simulation runs the experiment consumes (nil for experiments that only
// render static configuration); Run assembles the report, resolving every
// measurement through the cell cache.
type Generator struct {
	Name  string
	Cells func() []Cell
	Run   func() (*Report, error)
}

// All lists every experiment in paper order.
func All() []Generator {
	return []Generator{
		{"table-1", nil, Table1},
		{"figure-2", Fig2Cells, Fig2},
		{"figure-4", Fig4Cells, Fig4},
		{"figure-5", Fig5Cells, Fig5},
		{"figure-6", Fig6Cells, Fig6},
		{"figure-7", Fig7Cells, Fig7},
		{"sec-4.3-valuepred", ValuePredCells, ValuePred},
		{"table-2", nil, Table2},
		{"figure-10", Fig10Cells, Fig10},
		{"footnote-1-decrypt", DecryptParityCells, DecryptParity},
	}
}

// AllCells flattens the declared grids of every experiment, in paper
// order. Feeding the result to Sweep prefetches the entire suite; the
// generators then assemble their reports from cache hits alone.
func AllCells() []Cell {
	var cells []Cell
	for _, g := range All() {
		if g.Cells != nil {
			cells = append(cells, g.Cells()...)
		}
	}
	return cells
}

// Main is the shared entry point of the per-experiment commands: it runs
// the generator and prints the report — plain text, markdown with -md, or
// JSON with -json. The flag set is named after the experiment so that an
// unknown flag produces a usage message identifying which experiment the
// command regenerates.
func Main(name string, run func() (*Report, error)) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	md := fs.Bool("md", false, "emit a markdown table")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage of %s (regenerates experiment %q):\n", filepath.Base(os.Args[0]), name)
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	r, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if err := Emit(os.Stdout, r, *md, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// Emit writes a report in the selected rendering (text by default; JSON
// wins over markdown when both are requested).
func Emit(w io.Writer, r *Report, md, asJSON bool) error {
	switch {
	case asJSON:
		b, err := r.JSON()
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, string(b))
		return err
	case md:
		_, err := fmt.Fprint(w, r.Markdown())
		return err
	default:
		_, err := fmt.Fprint(w, r.Text())
		return err
	}
}
