package experiments

import (
	"flag"
	"fmt"
	"os"
)

// Generator is one experiment entry point.
type Generator struct {
	Name string
	Run  func() (*Report, error)
}

// All lists every experiment in paper order.
func All() []Generator {
	return []Generator{
		{"table-1", Table1},
		{"figure-2", Fig2},
		{"figure-4", Fig4},
		{"figure-5", Fig5},
		{"figure-6", Fig6},
		{"figure-7", Fig7},
		{"sec-4.3-valuepred", ValuePred},
		{"table-2", Table2},
		{"figure-10", Fig10},
		{"footnote-1-decrypt", DecryptParity},
	}
}

// Main is the shared entry point of the per-experiment commands: it runs
// the generator and prints the report (plain text, or markdown with -md).
func Main(run func() (*Report, error)) {
	md := flag.Bool("md", false, "emit a markdown table")
	flag.Parse()
	r, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *md {
		fmt.Print(r.Markdown())
	} else {
		fmt.Print(r.Text())
	}
}
