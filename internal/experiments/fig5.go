package experiments

import (
	"fmt"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// Fig5Cells declares the Figure 5 grid: per cipher, the dataflow machine
// and every single-bottleneck configuration. (A bottleneck whose config
// cannot be built is omitted here; Fig5 itself surfaces the error.)
func Fig5Cells() []Cell {
	var cells []Cell
	for _, name := range Ciphers {
		cells = append(cells, Cell{Kind: CellKernel, Cipher: name, Feat: isa.FeatRot, Cfg: ooo.Dataflow, Session: SessionBytes, Seed: DefaultSeed})
		for _, bn := range ooo.Bottlenecks {
			cfg, err := ooo.BottleneckConfig(bn)
			if err != nil {
				continue
			}
			cells = append(cells, Cell{Kind: CellKernel, Cipher: name, Feat: isa.FeatRot, Cfg: cfg, Session: SessionBytes, Seed: DefaultSeed})
		}
	}
	return cells
}

// Fig5 reproduces Figure 5: for each cipher, the performance of the
// dataflow machine with a single bottleneck re-inserted, relative to the
// unconstrained dataflow machine (1.00 = no impact). The "All" column is
// the full baseline.
func Fig5() (*Report, error) {
	r := &Report{
		ID:    "figure-5",
		Title: "Bottleneck analysis: performance relative to the dataflow machine",
		Note:  "Original kernels with rotates, 4KB sessions. 1.00 means the bottleneck does not bind.",
	}
	r.Columns = append([]string{"Cipher"}, ooo.Bottlenecks...)
	for _, name := range Ciphers {
		df, err := timed(name, isa.FeatRot, ooo.Dataflow, SessionBytes, DefaultSeed)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, bn := range ooo.Bottlenecks {
			cfg, err := ooo.BottleneckConfig(bn)
			if err != nil {
				return nil, err
			}
			st, err := timed(name, isa.FeatRot, cfg, SessionBytes, DefaultSeed)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", float64(df.Cycles)/float64(st.Cycles)))
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}
