package experiments

import (
	"fmt"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// Ablation sweeps quantify each design choice in isolation, extending the
// paper's Section 6 discussion: starting from the 4W+ machine running the
// fully optimized kernels, one parameter is varied while everything else
// is held fixed.
type ablation struct {
	name   string
	values []int
	apply  func(c *ooo.Config, v int)
}

var ablations = []ablation{
	{"issue-width", []int{1, 2, 4, 8, 16}, func(c *ooo.Config, v int) {
		c.IssueWidth = v
	}},
	{"window", []int{16, 32, 64, 128, 256, 512}, func(c *ooo.Config, v int) {
		c.WindowSize = v
	}},
	{"sbox-caches", []int{0, 1, 2, 4}, func(c *ooo.Config, v int) {
		c.NumSboxCaches = v
		if v == 0 {
			c.SboxCachePorts = 0
		}
	}},
	{"rotators", []int{1, 2, 4, 8}, func(c *ooo.Config, v int) {
		c.NumRot = v
	}},
	{"mul-lanes", []int{1, 2, 4, 8}, func(c *ooo.Config, v int) {
		c.MulLanes = v
	}},
	{"dcache-ports", []int{1, 2, 4}, func(c *ooo.Config, v int) {
		c.DCachePorts = v
	}},
}

// AblationNames lists the available sweeps.
func AblationNames() []string {
	var out []string
	for _, a := range ablations {
		out = append(out, a.name)
	}
	return out
}

// Ablate sweeps one parameter for one cipher (or all ciphers when cipher
// is empty), reporting bytes/1000 cycles at each setting.
func Ablate(param, cipher string) (*Report, error) {
	var ab *ablation
	for i := range ablations {
		if ablations[i].name == param {
			ab = &ablations[i]
		}
	}
	if ab == nil {
		return nil, fmt.Errorf("experiments: unknown ablation %q (have %v)", param, AblationNames())
	}
	suite := Ciphers
	if cipher != "" {
		suite = []string{cipher}
	}
	r := &Report{
		ID:    "ablation-" + param,
		Title: fmt.Sprintf("Sweep of %s on the 4W+ machine, optimized kernels (bytes/1000 cycles)", param),
	}
	r.Columns = []string{"Cipher"}
	for _, v := range ab.values {
		r.Columns = append(r.Columns, fmt.Sprint(v))
	}
	for _, name := range suite {
		row := []string{name}
		for _, v := range ab.values {
			cfg := ooo.FourWidePlus
			ab.apply(&cfg, v)
			cfg.Name = fmt.Sprintf("4W+%s=%d", param, v)
			st, err := timed(name, isa.FeatOpt, cfg, SessionBytes, DefaultSeed)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", rate(SessionBytes, st.Cycles)))
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}
