package experiments

import (
	"fmt"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// Fig6Sessions are the session lengths swept in Figure 6.
var Fig6Sessions = []int{16, 64, 256, 1024, 4096, 16384, 65536}

// fig6Session rounds a swept session length up to the cipher's block
// granule (sessions must cover whole blocks; only the tiny sizes round).
func fig6Session(name string, s int) (int, error) {
	k, err := kernelBlock(name)
	if err != nil {
		return 0, err
	}
	if rem := s % k; rem != 0 {
		s += k - rem
	}
	return s, nil
}

// Fig6Cells declares the Figure 6 grid: per cipher, one key-setup run and
// one timed session per swept length.
func Fig6Cells() []Cell {
	var cells []Cell
	for _, name := range Ciphers {
		cells = append(cells, Cell{Kind: CellSetup, Cipher: name, Feat: isa.FeatRot, Cfg: ooo.FourWide, Seed: DefaultSeed})
		for _, s := range Fig6Sessions {
			sess, err := fig6Session(name, s)
			if err != nil {
				continue
			}
			cells = append(cells, Cell{Kind: CellKernel, Cipher: name, Feat: isa.FeatRot, Cfg: ooo.FourWide, Session: sess, Seed: DefaultSeed})
		}
	}
	return cells
}

// Fig6 reproduces Figure 6: key-setup cost as a fraction of total session
// time (setup plus encryption) for increasing session lengths, on the
// baseline machine with the original (rotate) kernels.
func Fig6() (*Report, error) {
	r := &Report{
		ID:    "figure-6",
		Title: "Setup cost as a fraction of session run time (4W, original kernels)",
	}
	r.Columns = append([]string{"Cipher", "Setup cycles"}, func() []string {
		var c []string
		for _, s := range Fig6Sessions {
			c = append(c, fmt.Sprintf("%dB", s))
		}
		return c
	}()...)
	for _, name := range Ciphers {
		setup, err := timedSetup(name, isa.FeatRot, ooo.FourWide, DefaultSeed)
		if err != nil {
			return nil, err
		}
		row := []string{name, fmt.Sprint(setup.Cycles)}
		for _, s := range Fig6Sessions {
			sess, err := fig6Session(name, s)
			if err != nil {
				return nil, err
			}
			st, err := timed(name, isa.FeatRot, ooo.FourWide, sess, DefaultSeed)
			if err != nil {
				return nil, err
			}
			frac := float64(setup.Cycles) / float64(setup.Cycles+st.Cycles)
			row = append(row, fmt.Sprintf("%.1f%%", 100*frac))
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

func kernelBlock(name string) (int, error) {
	k, err := kernelsGet(name)
	if err != nil {
		return 0, err
	}
	if k.BlockBytes < 1 {
		return 1, nil
	}
	return k.BlockBytes, nil
}
