package experiments

import (
	"fmt"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// Fig6Sessions are the session lengths swept in Figure 6.
var Fig6Sessions = []int{16, 64, 256, 1024, 4096, 16384, 65536}

// Fig6 reproduces Figure 6: key-setup cost as a fraction of total session
// time (setup plus encryption) for increasing session lengths, on the
// baseline machine with the original (rotate) kernels.
func Fig6() (*Report, error) {
	r := &Report{
		ID:    "figure-6",
		Title: "Setup cost as a fraction of session run time (4W, original kernels)",
	}
	r.Columns = append([]string{"Cipher", "Setup cycles"}, func() []string {
		var c []string
		for _, s := range Fig6Sessions {
			c = append(c, fmt.Sprintf("%dB", s))
		}
		return c
	}()...)
	for _, name := range Ciphers {
		setup, err := harness.TimeSetup(name, isa.FeatRot, ooo.FourWide, 12345)
		if err != nil {
			return nil, err
		}
		row := []string{name, fmt.Sprint(setup.Cycles)}
		for _, s := range Fig6Sessions {
			// Sessions must cover whole blocks; round up to the kernel
			// granule for the tiny sizes.
			k, err := kernelBlock(name)
			if err != nil {
				return nil, err
			}
			sess := s
			if rem := sess % k; rem != 0 {
				sess += k - rem
			}
			st, err := timed(name, isa.FeatRot, ooo.FourWide, sess)
			if err != nil {
				return nil, err
			}
			frac := float64(setup.Cycles) / float64(setup.Cycles+st.Cycles)
			row = append(row, fmt.Sprintf("%.1f%%", 100*frac))
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

func kernelBlock(name string) (int, error) {
	k, err := kernelsGet(name)
	if err != nil {
		return 0, err
	}
	if k.BlockBytes < 1 {
		return 1, nil
	}
	return k.BlockBytes, nil
}
