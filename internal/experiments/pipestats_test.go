package experiments

import (
	"encoding/json"
	"testing"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// TestPipeStatsReport checks the report structure and the slot invariant
// on one cheap session.
func TestPipeStatsReport(t *testing.T) {
	r, st, err := PipeStats("rc4", isa.FeatRot, ooo.FourWide, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := int(ooo.NumStallCauses) + 1; len(r.Rows) != want {
		t.Fatalf("report has %d rows, want %d (one per cause + total)", len(r.Rows), want)
	}
	if got, want := st.Stalls.Slots(), st.Cycles*uint64(ooo.FourWide.IssueWidth); got != want {
		t.Errorf("slots %d != cycles*width %d", got, want)
	}
}

// TestPipeStatsDataflow: infinite-issue machines get a report without an
// attribution table instead of a division by zero.
func TestPipeStatsDataflow(t *testing.T) {
	r, st, err := PipeStats("rc4", isa.FeatRot, ooo.Dataflow, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 0 {
		t.Errorf("dataflow report has %d attribution rows, want 0", len(r.Rows))
	}
	if st.Stalls.Slots() != 0 {
		t.Errorf("dataflow charged %d slots", st.Stalls.Slots())
	}
}

// TestReportJSON round-trips a report through its JSON form.
func TestReportJSON(t *testing.T) {
	r, _, err := PipeStats("rc4", isa.FeatRot, ooo.FourWide, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != r.ID || back.Title != r.Title || len(back.Rows) != len(r.Rows) {
		t.Errorf("JSON round-trip lost data: %+v", back)
	}
}

// TestStallSharesMatchFigure5 cross-checks the cycle-level stall
// attribution against the paper's Figure 5 bottleneck study: on the 4W
// baseline, issue width and functional-unit supply bind while branch
// prediction and memory do not. RC4 is the paper's documented exception
// (window/alias-bound), so we require the concordance on at least 6 of
// the 8 ciphers.
func TestStallSharesMatchFigure5(t *testing.T) {
	if testing.Short() {
		t.Skip("full cipher sweep")
	}
	agree := 0
	for _, cipher := range Ciphers {
		_, st, err := PipeStats(cipher, isa.FeatRot, ooo.FourWide, SessionBytes, nil)
		if err != nil {
			t.Fatal(err)
		}
		total := float64(st.Stalls.Slots())
		issueRes := float64(st.Stalls.IssueResSlots()) / total
		branch := float64(st.Stalls.BranchSlots()) / total
		mem := float64(st.Stalls.MemSlots()) / total
		if issueRes > branch && issueRes > mem {
			agree++
		} else {
			t.Logf("%s: issue+res=%.3f branch=%.3f mem=%.3f (discordant)", cipher, issueRes, branch, mem)
		}
	}
	if agree < 6 {
		t.Errorf("issue+res share dominates on only %d/8 ciphers, want >=6", agree)
	}
}
