package experiments

import (
	"fmt"
	"strings"

	"cryptoarch/internal/diff"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// This file implements the `asplos2000 -diff` report: a Figure-5-style
// bottleneck-shift table built from the differential cycle-accounting
// layer. Where Figure 5 ranks bottlenecks one run at a time, this report
// explains a *pair* of runs — base vs featured ISA — by attributing the
// cycle delta of every cipher×model cell to stall causes, with the
// conservation law (per-cause slot deltas sum exactly to the slot-budget
// move) enforced on every row. Like the profiler and trace-cache views,
// the report describes an invocation and never enters EXPERIMENTS.md.

// diffSide is one parsed half of a -diff spec: an ISA variant with an
// optional machine model.
type diffSide struct {
	feat isa.Feature
	cfg  *ooo.Config // nil = sweep the finite models
}

// parseDiffSide parses "variant" or "variant/model" (model matching is
// case-insensitive, like simprof).
func parseDiffSide(s string) (diffSide, error) {
	variant, model, hasModel := strings.Cut(s, "/")
	feat, err := isa.ParseFeature(variant)
	if err != nil {
		return diffSide{}, err
	}
	if !hasModel {
		return diffSide{feat: feat}, nil
	}
	cfg, err := ooo.ModelByNameFold(model)
	if err != nil {
		return diffSide{}, err
	}
	return diffSide{feat: feat, cfg: &cfg}, nil
}

// diffPair is one base→next cell pairing of the report grid.
type diffPair struct {
	baseFeat, nextFeat isa.Feature
	baseCfg, nextCfg   ooo.Config
}

// diffGrid expands a spec pair into the cells to compare. With explicit
// models on both sides there is one pairing; otherwise each finite
// machine model is paired with itself (the Figure 5/10 reading: what did
// the ISA feature change on this machine), with an explicit single-side
// model held fixed.
func diffGrid(base, next diffSide) []diffPair {
	if base.cfg != nil && next.cfg != nil {
		return []diffPair{{base.feat, next.feat, *base.cfg, *next.cfg}}
	}
	var pairs []diffPair
	for _, cfg := range []ooo.Config{ooo.FourWide, ooo.FourWidePlus, ooo.EightWidePlus} {
		p := diffPair{baseFeat: base.feat, nextFeat: next.feat, baseCfg: cfg, nextCfg: cfg}
		if base.cfg != nil {
			p.baseCfg = *base.cfg
		}
		if next.cfg != nil {
			p.nextCfg = *next.cfg
		}
		pairs = append(pairs, p)
	}
	return pairs
}

// BottleneckShiftCells declares the grid a -diff report consumes, so the
// parallel sweep can prefetch it.
func BottleneckShiftCells(spec string) ([]Cell, error) {
	baseSpec, nextSpec, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("experiments: -diff wants base:next (e.g. rot:opt or rot/4W:opt/4W+), got %q", spec)
	}
	base, err := parseDiffSide(baseSpec)
	if err != nil {
		return nil, err
	}
	next, err := parseDiffSide(nextSpec)
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for _, cipher := range Ciphers {
		for _, p := range diffGrid(base, next) {
			cells = append(cells,
				Cell{Kind: CellKernel, Cipher: cipher, Feat: p.baseFeat, Cfg: p.baseCfg, Session: SessionBytes, Seed: DefaultSeed},
				Cell{Kind: CellKernel, Cipher: cipher, Feat: p.nextFeat, Cfg: p.nextCfg, Session: SessionBytes, Seed: DefaultSeed})
		}
	}
	return cells, nil
}

// shiftGroups aggregates the per-cause slot deltas the way Figure 5
// groups its bars, so the table reads in the paper's vocabulary.
var shiftGroups = []struct {
	name   string
	causes []ooo.StallCause
}{
	{"Δcommit", []ooo.StallCause{ooo.StallCommit}},
	{"Δissue+res", []ooo.StallCause{ooo.StallIssue, ooo.StallIALU, ooo.StallMult, ooo.StallRot, ooo.StallSboxPort, ooo.StallDPort}},
	{"Δmem", []ooo.StallCause{ooo.StallICache, ooo.StallDL1Miss, ooo.StallL2Miss, ooo.StallTLBMiss}},
	{"Δbranch", []ooo.StallCause{ooo.StallBranch}},
	{"Δwindow", []ooo.StallCause{ooo.StallWindow}},
	{"Δalias", []ooo.StallCause{ooo.StallAlias}},
	{"Δother", []ooo.StallCause{ooo.StallIFetch, ooo.StallExec, ooo.StallDrain}},
}

// BottleneckShift builds the differential report for a "base:next" spec.
// Every row is conservation-checked: the grouped columns are an exact
// partition of the row's slot delta, and a violation fails the report
// rather than printing an approximation.
func BottleneckShift(spec string) (*Report, error) {
	baseSpec, nextSpec, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("experiments: -diff wants base:next (e.g. rot:opt or rot/4W:opt/4W+), got %q", spec)
	}
	base, err := parseDiffSide(baseSpec)
	if err != nil {
		return nil, err
	}
	next, err := parseDiffSide(nextSpec)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:    "diff-" + baseSpec + ":" + nextSpec,
		Title: fmt.Sprintf("bottleneck shift %s → %s (differential commit-slot accounting)", baseSpec, nextSpec),
		Note: "Δ columns are signed slot deltas as % of the base slot budget " +
			"(negative = cause released slots); they sum to Δslots exactly " +
			"(conservation law). top shift names the largest loser → gainer cause.",
		Columns: append([]string{"cipher", "pair", "speedup", "Δcycles"},
			append(groupNames(), "top shift")...),
	}
	for _, cipher := range Ciphers {
		for _, p := range diffGrid(base, next) {
			baseStats, err := timed(cipher, p.baseFeat, p.baseCfg, SessionBytes, DefaultSeed)
			if err != nil {
				return nil, err
			}
			nextStats, err := timed(cipher, p.nextFeat, p.nextCfg, SessionBytes, DefaultSeed)
			if err != nil {
				return nil, err
			}
			baseLabel := fmt.Sprintf("%s/%s", p.baseFeat, p.baseCfg.Name)
			nextLabel := fmt.Sprintf("%s/%s", p.nextFeat, p.nextCfg.Name)
			rd, err := diff.New(
				&diff.Run{Label: cipher + "/" + baseLabel, Stats: baseStats},
				&diff.Run{Label: cipher + "/" + nextLabel, Stats: nextStats})
			if err != nil {
				return nil, err
			}
			r.Rows = append(r.Rows, shiftRow(cipher, baseLabel+":"+nextLabel, rd))
		}
	}
	return r, nil
}

func groupNames() []string {
	names := make([]string, len(shiftGroups))
	for i, g := range shiftGroups {
		names[i] = g.name
	}
	return names
}

// shiftRow renders one cell pair. Group deltas are expressed as signed
// percentages of the base slot budget; with no base budget (a DF side)
// the raw slot deltas are shown instead.
func shiftRow(cipher, pair string, rd *diff.RunDiff) []string {
	d := rd.Delta
	row := []string{
		cipher, pair,
		fmt.Sprintf("%.2fx", d.Speedup()),
		fmt.Sprintf("%+d", d.DeltaCycles()),
	}
	baseSlots := d.BaseSlots()
	for _, g := range shiftGroups {
		var sum int64
		for _, c := range g.causes {
			sum += d.Causes[c]
		}
		if baseSlots == 0 {
			row = append(row, fmt.Sprintf("%+d", sum))
		} else {
			row = append(row, fmt.Sprintf("%+.1f%%", 100*float64(sum)/float64(baseSlots)))
		}
	}
	return append(row, d.ShiftLabel())
}
