package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"cryptoarch/internal/harness"
)

// Supervised cell execution. A sweep is a long-lived batch job over an
// untrusted grid: any one cell can error, panic (a kernel or model bug),
// or wedge (a pathological configuration). Supervision isolates each of
// those to the cell that caused it — a recovered panic or an expired
// wall-clock watchdog becomes a typed error on that cell's slot, exactly
// like an ordinary execution error, and every other cell proceeds. The
// sweep itself never dies; the damage report rides out on SweepOutcome.

// CellPanicError is a panic recovered from one cell's execution, converted
// into that cell's error. The stack is captured at the recovery site.
type CellPanicError struct {
	Cell  Cell
	Value any
	Stack []byte
}

func (e *CellPanicError) Error() string {
	return fmt.Sprintf("experiments: cell %s panicked: %v", e.Cell.label(), e.Value)
}

// CellTimeoutError marks a cell that exceeded the per-cell wall-clock
// deadline. It layers real-time supervision over the simulated-time
// CellBudget: the budget bounds how much the simulator measures, the
// deadline bounds how long the host is allowed to take doing it.
type CellTimeoutError struct {
	Cell  Cell
	Limit time.Duration
}

func (e *CellTimeoutError) Error() string {
	return fmt.Sprintf("experiments: cell %s exceeded the %v wall-clock deadline", e.Cell.label(), e.Limit)
}

// cellDeadlineNS holds the per-cell wall-clock watchdog (0 = disabled).
var cellDeadlineNS atomic.Int64

// SetCellDeadline installs a per-cell wall-clock deadline (0 disables,
// the default) and returns the previous value. A cell that runs past the
// deadline is abandoned — its goroutine's eventual result is discarded —
// and its slot carries a CellTimeoutError.
func SetCellDeadline(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	return time.Duration(cellDeadlineNS.Swap(int64(d)))
}

// CellDeadline returns the current per-cell wall-clock deadline.
func CellDeadline() time.Duration { return time.Duration(cellDeadlineNS.Load()) }

// execOverride, when non-nil, may replace a cell's execution entirely —
// the test seam for forcing panics and hangs without a genuinely broken
// kernel. Set it only while no sweep is running.
var execOverride func(c Cell, r *cellResult) bool

// execBody runs the cell's real work (or the test override).
func (r *cellResult) execBody(c Cell) {
	if h := execOverride; h != nil && h(c, r) {
		return
	}
	r.exec(c)
}

// execRecovered is execBody with panic isolation: a panic anywhere under
// the cell — kernel build, trace recording, the engine's cycle loop —
// lands on this cell's error slot with its stack, and the worker lives on.
func (r *cellResult) execRecovered(c Cell) {
	defer func() {
		if v := recover(); v != nil {
			r.err = &CellPanicError{Cell: c, Value: v, Stack: debug.Stack()}
			if reg := harness.Metrics(); reg != nil {
				reg.Counter("sweep.panics").Inc()
			}
		}
	}()
	r.execBody(c)
}

// execSupervised adds the wall-clock watchdog around execRecovered. The
// simulator has no preemption points, so an expired deadline cannot stop
// the run mid-cycle; instead the cell executes into a private result and
// is abandoned on timeout — its late writes land in a struct nothing else
// reads, so there is no race, and the published slot carries the timeout.
func (r *cellResult) execSupervised(c Cell) {
	d := CellDeadline()
	if d <= 0 {
		r.execRecovered(c)
		return
	}
	tmp := &cellResult{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		tmp.execRecovered(c)
	}()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		r.stats, r.n, r.mix, r.vp, r.err = tmp.stats, tmp.n, tmp.mix, tmp.vp, tmp.err
	case <-t.C:
		r.err = &CellTimeoutError{Cell: c, Limit: d}
		if reg := harness.Metrics(); reg != nil {
			reg.Counter("sweep.timeouts").Inc()
		}
	}
}

// cancelErr reports whether err is a run-interruption artifact (context
// cancellation or deadline) rather than a property of the cell.
func cancelErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// CellState classifies how one unique cell of a supervised sweep ended.
type CellState uint8

const (
	// CellDone: executed (or recalled from cache/store) without error.
	CellDone CellState = iota
	// CellFailed: executed and returned an ordinary error.
	CellFailed
	// CellPanicked: execution panicked; the recovered CellPanicError is on Err.
	CellPanicked
	// CellTimedOut: execution exceeded the wall-clock deadline.
	CellTimedOut
	// CellCancelled: execution started but was interrupted at a cooperative
	// cancellation point; nothing durable was produced and a resumed sweep
	// re-executes the cell.
	CellCancelled
	// CellSkipped: never dispatched — the sweep was cancelled first.
	CellSkipped
)

func (s CellState) String() string {
	switch s {
	case CellDone:
		return "done"
	case CellFailed:
		return "failed"
	case CellPanicked:
		return "panicked"
	case CellTimedOut:
		return "timed-out"
	case CellCancelled:
		return "cancelled"
	case CellSkipped:
		return "skipped"
	}
	return "unknown"
}

// CellOutcome is one unique cell's supervised result.
type CellOutcome struct {
	Cell  Cell
	State CellState
	Err   error
	Wall  time.Duration
}

// SweepOutcome is the damage report of a supervised sweep: one outcome per
// unique cell in dispatch order, plus the cancellation cause when the
// sweep stopped early.
type SweepOutcome struct {
	Cells []CellOutcome
	// Cancelled is the run context's error when the sweep was interrupted,
	// nil for a run-to-completion sweep.
	Cancelled error
}

// Count returns how many cells ended in the given state.
func (o *SweepOutcome) Count(s CellState) int {
	n := 0
	for i := range o.Cells {
		if o.Cells[i].State == s {
			n++
		}
	}
	return n
}

// Poisoned returns the cells whose failures are properties of the cell —
// errors, panics, timeouts — as opposed to interruption artifacts.
func (o *SweepOutcome) Poisoned() []CellOutcome {
	var p []CellOutcome
	for _, co := range o.Cells {
		switch co.State {
		case CellFailed, CellPanicked, CellTimedOut:
			p = append(p, co)
		}
	}
	return p
}

// Outstanding returns the cells a resumed sweep still has to execute:
// everything that was skipped or interrupted mid-flight.
func (o *SweepOutcome) Outstanding() []CellOutcome {
	var p []CellOutcome
	for _, co := range o.Cells {
		switch co.State {
		case CellCancelled, CellSkipped:
			p = append(p, co)
		}
	}
	return p
}

// Clean reports a fully completed sweep with no poisoned cells.
func (o *SweepOutcome) Clean() bool {
	return o.Cancelled == nil && len(o.Poisoned()) == 0
}

// classifyCell maps a completed cell slot to its outcome state.
func classifyCell(r *cellResult) (CellState, error) {
	var pe *CellPanicError
	var te *CellTimeoutError
	switch {
	case r.err == nil:
		return CellDone, nil
	case errors.As(r.err, &pe):
		return CellPanicked, r.err
	case errors.As(r.err, &te):
		return CellTimedOut, r.err
	case cancelErr(r.err):
		return CellCancelled, r.err
	}
	return CellFailed, r.err
}
