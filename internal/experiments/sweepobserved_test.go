package experiments

import (
	"sync"
	"testing"
	"time"

	"cryptoarch/internal/isa"
)

// TestSweepObservedProgress pins the progress contract: every unique cell
// is reported exactly once, done climbs monotonically to the unique-cell
// total (duplicates are deduped before counting), and callbacks are
// serialized. Runs under -race with forced parallelism to exercise the
// worker path.
func TestSweepObservedProgress(t *testing.T) {
	cells := []Cell{
		{Kind: CellCount, Cipher: "rc4", Feat: isa.FeatRot, Session: 64, Seed: 91},
		{Kind: CellCount, Cipher: "blowfish", Feat: isa.FeatRot, Session: 64, Seed: 91},
		{Kind: CellCount, Cipher: "rc4", Feat: isa.FeatRot, Session: 64, Seed: 91}, // duplicate
		{Kind: CellCount, Cipher: "idea", Feat: isa.FeatOpt, Session: 64, Seed: 91},
	}
	const uniq = 3
	prev := SetParallelism(4)
	defer SetParallelism(prev)

	var mu sync.Mutex
	seen := map[string]int{}
	last := 0
	SweepObserved(cells, func(done, total int, c Cell, d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if total != uniq {
			t.Errorf("total = %d, want %d (duplicates must not count)", total, uniq)
		}
		if done != last+1 {
			t.Errorf("done jumped from %d to %d", last, done)
		}
		last = done
		seen[c.key()]++
		if d < 0 {
			t.Errorf("negative cell duration %v", d)
		}
	})
	if last != uniq {
		t.Fatalf("progress ended at %d/%d", last, uniq)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("cell %s reported %d times", k, n)
		}
	}
}
