package experiments

import (
	"fmt"

	"cryptoarch/internal/ciphers"
	"cryptoarch/internal/ooo"
)

// Table1 reproduces the paper's Table 1: the analyzed cipher suite.
func Table1() (*Report, error) {
	r := &Report{
		ID:      "table-1",
		Title:   "Private key symmetric ciphers analyzed",
		Columns: []string{"Cipher", "Key bits", "Block bits", "Rounds/blk", "Author", "Example application"},
	}
	for _, name := range Ciphers {
		c, err := ciphers.Lookup(name)
		if err != nil {
			return nil, err
		}
		i := c.Info
		r.Rows = append(r.Rows, []string{
			i.Name, fmt.Sprint(i.KeyBits), fmt.Sprint(i.BlockBits),
			fmt.Sprint(i.Rounds), i.Author, i.Example,
		})
	}
	return r, nil
}

// Table2 reproduces the paper's Table 2: the machine models.
func Table2() (*Report, error) {
	r := &Report{
		ID:      "table-2",
		Title:   "Microarchitecture models",
		Columns: []string{"Parameter", "4W", "4W+", "8W+", "DF"},
	}
	cfgs := []ooo.Config{ooo.FourWide, ooo.FourWidePlus, ooo.EightWidePlus, ooo.Dataflow}
	get := func(f func(ooo.Config) string) []string {
		out := make([]string, len(cfgs))
		for i, c := range cfgs {
			out[i] = f(c)
		}
		return out
	}
	num := func(n int) string {
		if n <= 0 {
			return "inf"
		}
		return fmt.Sprint(n)
	}
	add := func(name string, f func(ooo.Config) string) {
		r.Rows = append(r.Rows, append([]string{name}, get(f)...))
	}
	add("Fetch (blocks/cycle)", func(c ooo.Config) string { return num(c.FetchBlocksPerCycle) })
	add("Window size", func(c ooo.Config) string { return num(c.WindowSize) })
	add("Issue width", func(c ooo.Config) string { return num(c.IssueWidth) })
	add("Integer ALUs", func(c ooo.Config) string { return num(c.NumIALU) })
	add("Multiplier lanes (32-bit)", func(c ooo.Config) string { return num(c.MulLanes) })
	add("D-cache ports", func(c ooo.Config) string { return num(c.DCachePorts) })
	add("SBox caches", func(c ooo.Config) string { return num(c.NumSboxCaches) })
	add("SBox cache ports", func(c ooo.Config) string {
		if c.NumSboxCaches == 0 {
			return "-"
		}
		return num(c.SboxCachePorts)
	})
	add("Rotator/XBOX units", func(c ooo.Config) string { return num(c.NumRot) })
	add("Perfect memory", func(c ooo.Config) string { return fmt.Sprint(c.PerfectMem) })
	add("Perfect branch prediction", func(c ooo.Config) string { return fmt.Sprint(c.PerfectBpred) })
	add("Perfect alias detection", func(c ooo.Config) string { return fmt.Sprint(c.PerfectAlias) })
	return r, nil
}
