package experiments

import (
	"fmt"
	"math"
	"testing"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

func budgetRelErr(got, want uint64) float64 {
	return math.Abs(float64(got)-float64(want)) / float64(want)
}

// TestCellBudgetModes pins the budget dispatch: the default is the exact
// serial path, a chunked budget keeps instruction counts exact with
// seam-bounded cycles, a sampled budget keeps instruction counts exact
// with bounded extrapolation error, and each approximate execution is
// counted for the front-ends' refuse-to-write check.
func TestCellBudgetModes(t *testing.T) {
	prev := SetCellBudget(nil)
	defer SetCellBudget(prev)
	ResetCache()
	exact, err := timed("blowfish", isa.FeatRot, ooo.FourWide, 2048, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}

	SetCellBudget(&CellBudget{Mode: BudgetChunked, Chunks: 8})
	ResetCache()
	before := ApproxCellCount()
	ch, err := timed("blowfish", isa.FeatRot, ooo.FourWide, 2048, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Instructions != exact.Instructions {
		t.Fatalf("chunked budget: %d insts, exact %d", ch.Instructions, exact.Instructions)
	}
	if e := budgetRelErr(ch.Cycles, exact.Cycles); e > 0.05 {
		t.Fatalf("chunked budget: cycle error %.4f beyond seam bound", e)
	}
	if ApproxCellCount() != before+1 {
		t.Fatalf("chunked cell not counted as approximate (%d -> %d)", before, ApproxCellCount())
	}

	SetCellBudget(&CellBudget{Mode: BudgetSampled, SampleIntervals: 8, SampleIntervalInsts: 1024, WarmupInsts: 2048})
	ResetCache()
	before = ApproxCellCount()
	sa, err := timed("blowfish", isa.FeatRot, ooo.FourWide, 2048, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Instructions != exact.Instructions {
		t.Fatalf("sampled budget: %d insts, exact %d", sa.Instructions, exact.Instructions)
	}
	if e := budgetRelErr(sa.Cycles, exact.Cycles); e > 0.15 {
		t.Fatalf("sampled budget: cycle error %.4f beyond bound", e)
	}
	if ApproxCellCount() != before+1 {
		t.Fatalf("sampled cell not counted as approximate (%d -> %d)", before, ApproxCellCount())
	}

	// Clearing the budget restores the exact path bit-identically.
	SetCellBudget(nil)
	ResetCache()
	before = ApproxCellCount()
	again, err := timed("blowfish", isa.FeatRot, ooo.FourWide, 2048, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", *again) != fmt.Sprintf("%+v", *exact) {
		t.Fatal("exact path after budget clear differs from golden")
	}
	if ApproxCellCount() != before {
		t.Fatal("exact cell counted as approximate")
	}
}

// TestSweepUnderWorkerBudget pins S1's deadlock-freedom: a parallel sweep
// whose worker count exceeds the shared budget still completes (workers
// serialize on the token pool), and its cached results match a serial
// regeneration exactly.
func TestSweepUnderWorkerBudget(t *testing.T) {
	prevB := harness.SetWorkerBudget(1)
	defer harness.SetWorkerBudget(prevB)
	prevP := SetParallelism(4)
	defer SetParallelism(prevP)

	cells := []Cell{
		{Kind: CellKernel, Cipher: "blowfish", Feat: isa.FeatRot, Cfg: ooo.FourWide, Session: 512, Seed: DefaultSeed},
		{Kind: CellKernel, Cipher: "rc6", Feat: isa.FeatRot, Cfg: ooo.FourWide, Session: 512, Seed: DefaultSeed},
		{Kind: CellKernel, Cipher: "idea", Feat: isa.FeatRot, Cfg: ooo.FourWide, Session: 512, Seed: DefaultSeed},
		{Kind: CellCount, Cipher: "rc4", Feat: isa.FeatRot, Session: 512, Seed: DefaultSeed},
	}
	ResetCache()
	Sweep(cells)
	if lastSweepWorkers != 4 {
		t.Fatalf("sweep took %d workers, want 4", lastSweepWorkers)
	}
	parallel := make([]*ooo.Stats, 3)
	for i, c := range cells[:3] {
		st, err := timed(c.Cipher, c.Feat, c.Cfg, c.Session, c.Seed)
		if err != nil {
			t.Fatal(err)
		}
		parallel[i] = st
	}

	SetParallelism(1)
	ResetCache()
	Sweep(cells)
	for i, c := range cells[:3] {
		st, err := timed(c.Cipher, c.Feat, c.Cfg, c.Session, c.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", *st) != fmt.Sprintf("%+v", *parallel[i]) {
			t.Fatalf("cell %d differs between budget-serialized and serial sweeps", i)
		}
	}
}
