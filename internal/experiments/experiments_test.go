package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestTable1Content(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("Table 1 must list 8 ciphers, got %d", len(r.Rows))
	}
	// Spot-check the paper's configuration.
	for _, row := range r.Rows {
		switch row[0] {
		case "3des":
			if row[1] != "168" || row[3] != "48" {
				t.Errorf("3des row wrong: %v", row)
			}
		case "rijndael":
			if row[2] != "128" || row[3] != "10" {
				t.Errorf("rijndael row wrong: %v", row)
			}
		}
	}
}

func TestTable2Content(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Columns) != 5 {
		t.Fatalf("Table 2 must have 4 machine columns: %v", r.Columns)
	}
	text := r.Text()
	for _, want := range []string{"Issue width", "SBox caches", "Rotator/XBOX units", "inf"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{
		ID: "x", Title: "T", Note: "n",
		Columns: []string{"A", "B"},
		Rows:    [][]string{{"1", "22"}, {"333", "4"}},
	}
	txt := r.Text()
	if !strings.Contains(txt, "x — T") || !strings.Contains(txt, "333") {
		t.Fatalf("text render wrong:\n%s", txt)
	}
	md := r.Markdown()
	if !strings.Contains(md, "| A | B |") || !strings.Contains(md, "| 1 | 22 |") {
		t.Fatalf("markdown render wrong:\n%s", md)
	}
}

func TestAllRegistered(t *testing.T) {
	gens := All()
	if len(gens) != 10 {
		t.Fatalf("expected 10 experiments, got %d", len(gens))
	}
	seen := map[string]bool{}
	for _, g := range gens {
		if g.Run == nil || g.Name == "" || seen[g.Name] {
			t.Fatalf("bad generator %+v", g)
		}
		seen[g.Name] = true
	}
}

// The figure generators are exercised end-to-end by cmd/asplos2000 and the
// benchmarks; here we run the cheaper ones as smoke tests and gate the
// expensive sweeps behind -short.

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is expensive")
	}
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for _, row := range r.Rows {
		var v float64
		if _, err := fmtSscan(row[2], &v); err != nil {
			t.Fatal(err)
		}
		rates[row[0]] = v
	}
	// The paper's ordering claims: 3DES slowest, RC4 fastest.
	for name, v := range rates {
		if name != "3des" && v <= rates["3des"] {
			t.Errorf("%s (%f) not faster than 3des (%f)", name, v, rates["3des"])
		}
		if name != "rc4" && v >= rates["rc4"] {
			t.Errorf("%s (%f) not slower than rc4 (%f)", name, v, rates["rc4"])
		}
	}
}

func TestValuePredDiffusion(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is expensive")
	}
	r, err := ValuePred()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		var best float64
		if _, err := fmtSscan(strings.TrimSuffix(row[1], "%"), &best); err != nil {
			t.Fatal(err)
		}
		if best > 25 {
			t.Errorf("%s: best last-value accuracy %.1f%% — diffusion should destroy value locality", row[0], best)
		}
	}
}

func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(strings.TrimSuffix(s, "%"), v)
}
