package experiments

import (
	"math"
	"testing"
)

// TestRateZeroCycles pins the divide-by-zero audit for the Figure 4
// metric: a zero-cycle measurement (empty session, drained run) rates 0,
// not +Inf or NaN.
func TestRateZeroCycles(t *testing.T) {
	if got := rate(4096, 0); got != 0 {
		t.Fatalf("rate(4096, 0) = %v, want 0", got)
	}
	if got := rate(0, 0); math.IsNaN(got) || got != 0 {
		t.Fatalf("rate(0, 0) = %v, want 0", got)
	}
	if got := rate(4096, 1000); got != 4096 {
		t.Fatalf("rate(4096, 1000) = %v, want 4096", got)
	}
}
