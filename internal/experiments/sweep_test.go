package experiments

import (
	"testing"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// TestTimedCacheKeyIncludesSeed guards against a cache-key regression:
// measurements at different workload seeds must occupy different cache
// slots, while repeated requests at one seed must share a single run.
func TestTimedCacheKeyIncludesSeed(t *testing.T) {
	a1, err := timed("blowfish", isa.FeatRot, ooo.FourWide, 1024, 12345)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := timed("blowfish", isa.FeatRot, ooo.FourWide, 1024, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("same cell requested twice returned distinct Stats: cache miss on identical key")
	}
	b, err := timed("blowfish", isa.FeatRot, ooo.FourWide, 1024, 54321)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == b {
		t.Error("different seeds returned the same cached Stats: seed missing from the cache key")
	}
}

// TestSweepDedup checks that a grid with repeated cells executes each
// measurement once: every duplicate must resolve to the same result slot.
func TestSweepDedup(t *testing.T) {
	c := Cell{Kind: CellKernel, Cipher: "rc4", Feat: isa.FeatRot, Cfg: ooo.FourWide, Session: 1024, Seed: DefaultSeed}
	Sweep([]Cell{c, c, c})
	r1 := getCell(c)
	r2 := getCell(c)
	if r1 != r2 || r1.err != nil {
		t.Fatalf("duplicate cells not coalesced: %p vs %p (err %v)", r1, r2, r1.err)
	}
}

// TestEffectiveWorkers pins the worker-count clamp: parallelism bounded
// by the unique cell count, never below one.
func TestEffectiveWorkers(t *testing.T) {
	defer SetParallelism(SetParallelism(1)) // restores the entry value
	SetParallelism(1)
	if n := effectiveWorkers(10); n != 1 {
		t.Errorf("parallelism 1, 10 cells: got %d workers, want 1", n)
	}
	SetParallelism(8)
	if n := effectiveWorkers(3); n != 3 {
		t.Errorf("parallelism 8, 3 cells: got %d workers, want 3", n)
	}
	if n := effectiveWorkers(0); n != 1 {
		t.Errorf("0 cells: got %d workers, want 1 (clamped)", n)
	}
	SetParallelism(4)
	if n := effectiveWorkers(100); n != 4 {
		t.Errorf("parallelism 4, 100 cells: got %d workers, want 4", n)
	}
}

// TestSweepSerialFallback asserts a one-worker sweep takes the serial
// path (no worker pool): the PR2 benchmark measured the one-worker pool
// 33% slower than plain iteration on a single-CPU host.
func TestSweepSerialFallback(t *testing.T) {
	defer SetParallelism(SetParallelism(1))
	c := Cell{Kind: CellCount, Cipher: "rc4", Feat: isa.FeatRot, Session: 64, Seed: DefaultSeed}

	SetParallelism(1)
	Sweep([]Cell{c, c})
	if lastSweepWorkers != 1 {
		t.Errorf("parallelism 1: sweep used %d workers, want serial path (1)", lastSweepWorkers)
	}

	// Many workers but one unique cell still degenerates to serial.
	SetParallelism(6)
	Sweep([]Cell{c, c, c})
	if lastSweepWorkers != 1 {
		t.Errorf("1 unique cell: sweep used %d workers, want serial path (1)", lastSweepWorkers)
	}

	if r := getCell(c); r.err != nil || r.n == 0 {
		t.Fatalf("serial-path sweep did not execute the cell: n=%d err=%v", r.n, r.err)
	}
}

// TestSerialParallelEquivalence regenerates every report of the suite
// twice — once with a single worker, once with four (forced, so the test
// exercises real concurrency even on single-CPU machines) — and asserts
// the rendered text is byte-identical. The parallel pass prefetches the
// declared grid with Sweep first, exactly as cmd/asplos2000 -parallel
// does, so this also pins that assembly order, not execution order,
// determines report content.
func TestSerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full experiment suite twice")
	}
	render := func() map[string]string {
		out := map[string]string{}
		for _, g := range All() {
			r, err := g.Run()
			if err != nil {
				t.Fatalf("%s: %v", g.Name, err)
			}
			out[g.Name] = r.Text()
		}
		return out
	}
	defer ResetCache()
	defer SetParallelism(SetParallelism(1)) // evaluated now: restores the entry value

	ResetCache()
	SetParallelism(1)
	serial := render()

	ResetCache()
	SetParallelism(4)
	Sweep(AllCells())
	parallel := render()

	for _, g := range All() {
		if serial[g.Name] != parallel[g.Name] {
			t.Errorf("%s: serial and parallel renderings differ\n--- serial ---\n%s\n--- parallel ---\n%s",
				g.Name, serial[g.Name], parallel[g.Name])
		}
	}
}
