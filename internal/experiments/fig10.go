package experiments

import (
	"fmt"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// fig10Bars lists the figure's machine/kernel combinations in bar order.
var fig10Bars = []struct {
	feat isa.Feature
	cfg  ooo.Config
}{
	{isa.FeatNoRot, ooo.FourWide},
	{isa.FeatOpt, ooo.FourWide},
	{isa.FeatOpt, ooo.FourWidePlus},
	{isa.FeatOpt, ooo.EightWidePlus},
	{isa.FeatOpt, ooo.Dataflow},
}

// Fig10Cells declares the Figure 10 grid: per cipher, the rotate baseline,
// the no-rotate original, and every bar.
func Fig10Cells() []Cell {
	var cells []Cell
	for _, name := range Ciphers {
		cells = append(cells, Cell{Kind: CellKernel, Cipher: name, Feat: isa.FeatRot, Cfg: ooo.FourWide, Session: SessionBytes, Seed: DefaultSeed})
		for _, bar := range fig10Bars {
			cells = append(cells, Cell{Kind: CellKernel, Cipher: name, Feat: bar.feat, Cfg: bar.cfg, Session: SessionBytes, Seed: DefaultSeed})
		}
	}
	return cells
}

// Fig10 reproduces Figure 10: speedups of the kernels over the baseline
// machine running the original code *with rotates* (the paper's
// normalization target). Orig/4W shows the penalty of lacking rotate
// instructions; the remaining bars run the fully optimized kernels on
// progressively larger machines.
func Fig10() (*Report, error) {
	r := &Report{
		ID:    "figure-10",
		Title: "Relative performance of the optimized kernels (speedup vs original-with-rotates on 4W)",
		Columns: []string{
			"Cipher", "Orig(norot)/4W", "Opt/4W", "Opt/4W+", "Opt/8W+", "Opt/DF",
		},
	}
	sums := make([]float64, len(fig10Bars))
	var sumNoRotGain float64
	for _, name := range Ciphers {
		base, err := timed(name, isa.FeatRot, ooo.FourWide, SessionBytes, DefaultSeed)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for i, bar := range fig10Bars {
			st, err := timed(name, bar.feat, bar.cfg, SessionBytes, DefaultSeed)
			if err != nil {
				return nil, err
			}
			sp := float64(base.Cycles) / float64(st.Cycles)
			sums[i] += sp
			row = append(row, fmt.Sprintf("%.2f", sp))
			if i == 1 { // Opt/4W vs the no-rotate original
				noRot, err := timed(name, isa.FeatNoRot, ooo.FourWide, SessionBytes, DefaultSeed)
				if err != nil {
					return nil, err
				}
				sumNoRotGain += float64(noRot.Cycles) / float64(st.Cycles)
			}
		}
		r.Rows = append(r.Rows, row)
	}
	avg := []string{"average"}
	for _, s := range sums {
		avg = append(avg, fmt.Sprintf("%.2f", s/float64(len(Ciphers))))
	}
	r.Rows = append(r.Rows, avg)
	r.Note = fmt.Sprintf(
		"Headline: Opt/4W average speedup %.0f%% over the rotate baseline, %.0f%% over a baseline without rotates (paper: 59%% and 74%%).",
		100*(sums[1]/float64(len(Ciphers))-1),
		100*(sumNoRotGain/float64(len(Ciphers))-1))
	return r, nil
}
