package experiments

import (
	"encoding/json"
	"fmt"
	"sync"

	"cryptoarch/internal/emu"
	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
	"cryptoarch/internal/pubkey"
	"cryptoarch/internal/store"
)

// This file threads the persistent store's result tier under the sweep's
// run cache: getCell consults the store before dispatching a cell and
// persists every successfully executed one, so a warm sweep re-simulates
// only cells whose identity — engine version, emulator version, kernel
// bytes, session parameters, machine configuration — the current tree
// changed. Cells running under an approximate CellBudget bypass the store
// in both directions: chunked and sampled results carry error bounds and
// must never be served where exact results are expected (the same honesty
// rule as the -write refusal under a budget).

// cellStoreKey derives the result-tier store key of a cell, or ok=false
// for cells whose identity cannot be derived (unknown cipher, kind without
// a program). The key embeds the digest of the exact program the cell
// executes, so any kernel edit provably misses.
func cellStoreKey(c Cell) (string, bool) {
	var digest string
	var err error
	id := store.ResultIdentity{
		EngineVersion: ooo.EngineVersion,
		EmuVersion:    emu.Version,
		Kind:          c.Kind.kindName(),
		Cipher:        c.Cipher,
		Feat:          c.Feat.String(),
		Session:       c.Session,
		Seed:          c.Seed,
		// %#v, not %+v: Config implements Stringer (just its name), and
		// %+v would collapse the identity to that — two configs sharing a
		// name but differing in a knob would collide. The Go-syntax form
		// renders every field and ignores Stringer.
		Config: fmt.Sprintf("%#v", c.Cfg),
	}
	switch c.Kind {
	case CellKernel, CellCount, CellMix, CellValuePred:
		digest, err = harness.KernelDigest(c.Cipher, c.Feat, "encrypt")
	case CellDecrypt:
		digest, err = harness.KernelDigest(c.Cipher, c.Feat, "decrypt")
	case CellSetup:
		digest, err = harness.KernelDigest(c.Cipher, c.Feat, "setup")
	case CellHandshake:
		// The handshake cell's parameters are fixed in fig2.go rather than
		// carried on the Cell; fold them into the identity explicitly so
		// editing them (or the modexp kernel) invalidates stored results.
		digest = handshakeDigest()
		id.Feat = handshakeFeat.String()
		id.Seed = handshakeSeed
		id.Config = fmt.Sprintf("crt=%d", handshakeCRTSpeedup)
	default:
		return "", false
	}
	if err != nil || digest == "" {
		return "", false
	}
	id.ProgDigest = digest
	return id.Key(), true
}

// handshakeDig memoizes the modexp program digest (programs are immutable
// within a process).
var handshakeDig struct {
	once sync.Once
	d    string
}

func handshakeDigest() string {
	handshakeDig.once.Do(func() {
		handshakeDig.d = store.ProgramDigest(pubkey.BuildModExp(handshakeFeat))
	})
	return handshakeDig.d
}

// storedMix is the on-disk form of opMix.
type storedMix struct {
	Counts []uint64 `json:"counts"`
	Total  uint64   `json:"total"`
}

// storedVP is the on-disk form of vpRow. Go's float64 JSON encoding
// round-trips exactly, so a store-warm report renders bit-identical
// percentages.
type storedVP struct {
	Best  float64 `json:"best"`
	Mean  float64 `json:"mean"`
	Edges int     `json:"edges"`
}

// storedCell is the result-tier payload: exactly one field group is set,
// matching the cell kind (the same discipline as cellResult itself).
type storedCell struct {
	Stats *ooo.Stats `json:"stats,omitempty"`
	N     uint64     `json:"n,omitempty"`
	Mix   *storedMix `json:"mix,omitempty"`
	VP    *storedVP  `json:"vp,omitempty"`
}

// loadCellFromStore tries to fill r from the persistent store. Any
// failure — no store, budget active, key underivable, miss, undecodable
// or shape-mismatched payload — returns false and the cell executes
// normally.
func loadCellFromStore(c Cell, r *cellResult) bool {
	s := harness.CurrentStore()
	if s == nil || GetCellBudget() != nil {
		return false
	}
	key, ok := cellStoreKey(c)
	if !ok {
		return false
	}
	payload, _, ok := s.Get(store.TierResult, key)
	if !ok {
		return false
	}
	var sc storedCell
	if json.Unmarshal(payload, &sc) != nil {
		return false
	}
	switch c.Kind {
	case CellKernel, CellSetup, CellDecrypt:
		if sc.Stats == nil {
			return false
		}
		r.stats = sc.Stats
	case CellCount, CellHandshake:
		r.n = sc.N
	case CellMix:
		if sc.Mix == nil || len(sc.Mix.Counts) != int(isa.NumClasses) {
			return false
		}
		copy(r.mix.counts[:], sc.Mix.Counts)
		r.mix.total = sc.Mix.Total
	case CellValuePred:
		if sc.VP == nil {
			return false
		}
		r.vp = vpRow{best: sc.VP.Best, mean: sc.VP.Mean, edges: sc.VP.Edges}
	default:
		return false
	}
	return true
}

// StoreReport renders the persistent-store counters as a report — a view
// of this invocation, like TraceCacheReport: it joins asplos2000 -json
// output but never EXPERIMENTS.md.
func StoreReport() *Report {
	st := store.ReadStats()
	return &Report{
		ID:      "result-store",
		Title:   "persistent content-addressed store counters for this invocation",
		Columns: []string{"counter", "value"},
		Rows: [][]string{
			{"trace_hits", fmt.Sprintf("%d", st.TraceHits)},
			{"trace_misses", fmt.Sprintf("%d", st.TraceMisses)},
			{"result_hits", fmt.Sprintf("%d", st.ResultHits)},
			{"result_misses", fmt.Sprintf("%d", st.ResultMisses)},
			{"writes", fmt.Sprintf("%d", st.Writes)},
			{"evictions", fmt.Sprintf("%d", st.Evictions)},
			{"corrupt", fmt.Sprintf("%d", st.Corrupt)},
			{"load_seconds", fmt.Sprintf("%.3f", st.LoadTime.Seconds())},
			{"write_seconds", fmt.Sprintf("%.3f", st.WriteTime.Seconds())},
		},
	}
}

// saveCellToStore persists a freshly executed cell result (write-through).
// Errored cells are never stored — an error must re-execute, and possibly
// resolve, on the next run — and budgeted (approximate) results are
// excluded entirely.
func saveCellToStore(c Cell, r *cellResult) {
	s := harness.CurrentStore()
	if s == nil || GetCellBudget() != nil || r.err != nil {
		return
	}
	key, ok := cellStoreKey(c)
	if !ok {
		return
	}
	sc := storedCell{}
	switch c.Kind {
	case CellKernel, CellSetup, CellDecrypt:
		sc.Stats = r.stats
	case CellCount, CellHandshake:
		sc.N = r.n
	case CellMix:
		sc.Mix = &storedMix{Counts: r.mix.counts[:], Total: r.mix.total}
	case CellValuePred:
		sc.VP = &storedVP{Best: r.vp.best, Mean: r.vp.mean, Edges: r.vp.edges}
	default:
		return
	}
	payload, err := json.Marshal(&sc)
	if err != nil {
		return
	}
	s.Put(store.TierResult, key, payload)
}
