package experiments

import (
	"fmt"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// Fig4Cells declares the Figure 4 grid: per cipher, an instruction count
// and two timed sessions (baseline and dataflow).
func Fig4Cells() []Cell {
	var cells []Cell
	for _, name := range Ciphers {
		cells = append(cells,
			Cell{Kind: CellCount, Cipher: name, Feat: isa.FeatRot, Session: SessionBytes, Seed: DefaultSeed},
			Cell{Kind: CellKernel, Cipher: name, Feat: isa.FeatRot, Cfg: ooo.FourWide, Session: SessionBytes, Seed: DefaultSeed},
			Cell{Kind: CellKernel, Cipher: name, Feat: isa.FeatRot, Cfg: ooo.Dataflow, Session: SessionBytes, Seed: DefaultSeed},
		)
	}
	return cells
}

// Fig4 reproduces Figure 4: encryption throughput in bytes per 1000
// cycles for the 1-CPI machine (pure instruction count), the baseline
// 4-wide model, and the dataflow upper bound, using the original kernels
// with rotate instructions. (The paper's fourth bar, a real 600 MHz Alpha
// 21264, is substituted by the native-Go throughput benchmarks in
// bench_test.go — see DESIGN.md.)
func Fig4() (*Report, error) {
	r := &Report{
		ID:    "figure-4",
		Title: "Cipher encryption performance (bytes/1000 cycles, 4KB CBC session)",
		Note:  "Original kernels with hardware rotates; DF = dataflow upper bound.",
		Columns: []string{
			"Cipher", "1 CPI", "4W", "DF", "4W IPC", "Insts/byte",
		},
	}
	for _, name := range Ciphers {
		insts, err := counted(name, isa.FeatRot, SessionBytes, DefaultSeed)
		if err != nil {
			return nil, err
		}
		st4, err := timed(name, isa.FeatRot, ooo.FourWide, SessionBytes, DefaultSeed)
		if err != nil {
			return nil, err
		}
		stDF, err := timed(name, isa.FeatRot, ooo.Dataflow, SessionBytes, DefaultSeed)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{
			name,
			fmt.Sprintf("%.2f", rate(SessionBytes, insts)),
			fmt.Sprintf("%.2f", rate(SessionBytes, st4.Cycles)),
			fmt.Sprintf("%.2f", rate(SessionBytes, stDF.Cycles)),
			fmt.Sprintf("%.2f", st4.IPC()),
			fmt.Sprintf("%.1f", float64(insts)/SessionBytes),
		})
	}
	return r, nil
}
