package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/metrics"
	"cryptoarch/internal/ooo"
)

// DefaultSeed is the workload seed used by every published experiment.
// It is part of each cell's cache key, so measurements at different seeds
// never collide.
const DefaultSeed = 12345

// CellKind identifies what a sweep cell measures.
type CellKind uint8

const (
	// CellKernel times an encryption session (harness.TimeKernel).
	CellKernel CellKind = iota
	// CellSetup times the key-setup program (harness.TimeSetup).
	CellSetup
	// CellDecrypt times a decryption session (harness.TimeDecrypt).
	CellDecrypt
	// CellCount counts committed instructions (harness.CountKernel).
	CellCount
	// CellMix measures the dynamic instruction-class mix (Figure 7).
	CellMix
	// CellValuePred measures last-value predictability (Section 4.3).
	CellValuePred
	// CellHandshake times the RSA handshake operation (Figure 2).
	CellHandshake
)

// Cell is one point of an experiment grid: a single simulation or
// emulation run, identified by everything that determines its result.
// Experiments declare the cells they will consume; the scheduler dedups
// and executes them, and the generators then assemble rows from the cache
// in paper order.
type Cell struct {
	Kind    CellKind
	Cipher  string
	Feat    isa.Feature
	Cfg     ooo.Config
	Session int
	Seed    int64
}

func (c Cell) key() string {
	return fmt.Sprintf("%d|%s|%s|%s|%d|%d", c.Kind, c.Cipher, c.Feat, c.Cfg.Name, c.Session, c.Seed)
}

// kindName is the human-readable cell kind, used in span labels.
func (k CellKind) kindName() string {
	switch k {
	case CellKernel:
		return "kernel"
	case CellSetup:
		return "setup"
	case CellDecrypt:
		return "decrypt"
	case CellCount:
		return "count"
	case CellMix:
		return "mix"
	case CellValuePred:
		return "valuepred"
	case CellHandshake:
		return "handshake"
	}
	return "unknown"
}

// label is the span name of a cell: kind, cipher/feature and — when the
// cell runs a timing model — the machine configuration.
func (c Cell) label() string {
	if c.Cfg.Name != "" {
		return fmt.Sprintf("%s %s/%s %s", c.Kind.kindName(), c.Cipher, c.Feat, c.Cfg.Name)
	}
	return fmt.Sprintf("%s %s/%s", c.Kind.kindName(), c.Cipher, c.Feat)
}

// cellResult is a singleflight slot: the first goroutine to need the cell
// executes it inside once; everyone else blocks on once and reads the
// same immutable result. Which field is populated depends on Kind.
type cellResult struct {
	once  sync.Once
	stats *ooo.Stats // kernel, setup, decrypt
	n     uint64     // count, handshake
	mix   opMix      // mix
	vp    vpRow      // valuepred
	err   error
}

func (r *cellResult) exec(c Cell) {
	switch c.Kind {
	case CellKernel:
		r.stats, r.err = timeKernelCell(c)
	case CellSetup:
		r.stats, r.err = harness.TimeSetup(c.Cipher, c.Feat, c.Cfg, c.Seed)
	case CellDecrypt:
		r.stats, r.err = harness.TimeDecrypt(c.Cipher, c.Feat, c.Cfg, c.Session, c.Seed)
	case CellCount:
		r.n, r.err = harness.CountKernel(c.Cipher, c.Feat, c.Session, c.Seed)
	case CellMix:
		r.mix, r.err = measureOpMix(c.Cipher, c.Feat, c.Session, c.Seed)
	case CellValuePred:
		r.vp, r.err = measureValuePred(c.Cipher, c.Feat, c.Session, c.Seed)
	case CellHandshake:
		r.n, r.err = measureHandshake()
	default:
		r.err = fmt.Errorf("experiments: unknown cell kind %d", c.Kind)
	}
}

var (
	runMu    sync.Mutex
	runCache = map[string]*cellResult{}
	workers  = runtime.GOMAXPROCS(0)

	// lastSweepWorkers records the worker count of the most recent Sweep,
	// so tests can assert which execution path it took.
	lastSweepWorkers int
)

// getCell returns the completed result for c, executing it if this is the
// first request. Concurrent requests for the same key share one execution.
// With a persistent store installed, the singleflight body consults the
// result tier before executing and write-through persists what it
// executed, so a warm process re-simulates only cells the store missed.
func getCell(c Cell) *cellResult {
	k := c.key()
	runMu.Lock()
	r := runCache[k]
	if r == nil {
		r = &cellResult{}
		runCache[k] = r
	}
	runMu.Unlock()
	r.once.Do(func() {
		if loadCellFromStore(c, r) {
			return
		}
		r.execSupervised(c)
		saveCellToStore(c, r)
	})
	// A cancellation error is an artifact of this run's interruption, not a
	// property of the cell: drop the slot from the memo cache so a later
	// sweep in the same process (or a resumed run) re-executes the cell
	// instead of replaying the stale interrupt.
	if r.err != nil && cancelErr(r.err) {
		runMu.Lock()
		if runCache[k] == r {
			delete(runCache, k)
		}
		runMu.Unlock()
	}
	return r
}

// SetParallelism fixes the sweep worker count (minimum 1) and returns the
// previous value. The default is GOMAXPROCS.
func SetParallelism(n int) int {
	runMu.Lock()
	defer runMu.Unlock()
	prev := workers
	if n < 1 {
		n = 1
	}
	workers = n
	return prev
}

// Parallelism returns the current sweep worker count.
func Parallelism() int {
	runMu.Lock()
	defer runMu.Unlock()
	return workers
}

// ResetCache drops every memoized cell result and the harness trace
// cache beneath it, and (via ResetTraceCache) zeroes both the trace-cache
// and persistent-store counters, so equivalence loops that regenerate the
// suite per worker count start every pass from identical counter state.
// The persistent store's on-disk entries survive: a reset forgets memory,
// not disk.
func ResetCache() {
	runMu.Lock()
	runCache = map[string]*cellResult{}
	runMu.Unlock()
	harness.ResetTraceCache()
}

// effectiveWorkers is the worker count a sweep of nCells unique cells
// actually uses: the configured parallelism, clamped to the cell count
// and to a minimum of one.
func effectiveWorkers(nCells int) int {
	n := Parallelism()
	if n > nCells {
		n = nCells
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SweepProgress observes sweep execution: done of total unique cells
// finished, the cell that just completed, and its wall time (for a cell
// that waited on a concurrent duplicate execution, the wait is included —
// it is that request's wall cost either way). Callbacks are serialized;
// implementations may print without locking.
type SweepProgress func(done, total int, c Cell, d time.Duration)

// Sweep executes a grid of cells across the configured worker count.
// Duplicate cells are executed once; cells already cached cost nothing.
// Sweep never fails: a cell's error is cached with its slot and
// resurfaces, deterministically, when a generator assembles the row that
// consumes it — so report output is identical whether or not a sweep ran
// first, and regardless of worker count.
func Sweep(cells []Cell) { SweepObserved(cells, nil) }

// sweepTelemetry bundles the metric handles one sweep updates. Built from
// a nil registry every handle is nil and every update a no-op, so the
// scheduler is instrumented unconditionally.
type sweepTelemetry struct {
	sweeps  *metrics.Counter   // sweeps executed
	cells   *metrics.Counter   // unique cells dispatched
	workers *metrics.Gauge     // effective worker count of the last sweep
	cellNS  *metrics.Histogram // per-cell wall time
	queueNS *metrics.Histogram // time a cell waited for a free worker
}

func newSweepTelemetry(r *metrics.Registry) sweepTelemetry {
	return sweepTelemetry{
		sweeps:  r.Counter("sweep.sweeps"),
		cells:   r.Counter("sweep.cells"),
		workers: r.Gauge("sweep.workers"),
		cellNS:  r.Histogram("sweep.cell_ns"),
		queueNS: r.Histogram("sweep.queue_wait_ns"),
	}
}

// queuedCell stamps a cell with its index in the unique grid and its
// enqueue time, so the receiving worker can record the outcome slot and
// observe how long the cell sat waiting for a free worker.
type queuedCell struct {
	idx int
	c   Cell
	at  time.Time
}

// SweepObserved is Sweep with a per-cell progress callback (nil behaves
// exactly like Sweep). Timing the callback observes is observation only:
// cell results and report bytes are identical with or without it.
func SweepObserved(cells []Cell, progress SweepProgress) {
	SweepObservedCtx(context.Background(), cells, progress)
}

// SweepObservedCtx is the supervised sweep: SweepObserved under a context.
// Cancelling ctx stops the sweep at the next cooperative boundary — no new
// cell is dispatched, and harness orchestrators (chunked replay, interval
// sampling) stop between chunks — while cells already inside the engine's
// cycle loop finish and land normally, so every completed cell is exact
// and storable. The returned outcome reports every unique cell's fate:
// done, failed, panicked, timed out, cancelled mid-flight, or never
// started. A cancelled sweep's partial outcome is the input to checkpoint
// assembly; re-running the same grid resumes from whatever the store and
// cache already hold.
func SweepObservedCtx(ctx context.Context, cells []Cell, progress SweepProgress) *SweepOutcome {
	if ctx == nil {
		ctx = context.Background()
	}
	// Relax GC pacing for the duration of the sweep: recording buffers and
	// retained traces create a large transient heap, and the default
	// target makes the collector chase it with frequent cycles that eat
	// measurable wall time on a single-CPU host.
	defer debug.SetGCPercent(debug.SetGCPercent(300))
	// Install the run context for the harness's cooperative cancellation
	// points; restore whatever was there so nested sweeps compose.
	defer harness.SetRunContext(harness.SetRunContext(ctx))
	seen := make(map[string]bool, len(cells))
	uniq := cells[:0:0]
	for _, c := range cells {
		if k := c.key(); !seen[k] {
			seen[k] = true
			uniq = append(uniq, c)
		}
	}
	// One effective worker takes the serial path: no channel, no
	// goroutines, no scheduler handoffs — measurably cheaper on a
	// single-CPU host than a one-worker pool.
	n := effectiveWorkers(len(uniq))
	lastSweepWorkers = n

	// Telemetry: counters/histograms on the process registry, and — when a
	// timeline is installed — a sweep span that every cell span parents to,
	// regardless of which worker goroutine executes it.
	reg := harness.Metrics()
	tl := harness.CurrentTimeline()
	tele := newSweepTelemetry(reg)
	tele.sweeps.Inc()
	tele.cells.Add(int64(len(uniq)))
	tele.workers.Set(float64(n))
	sweepSpan := metrics.NoSpan
	if tl != nil {
		sweepSpan = tl.Begin("sweep", fmt.Sprintf("sweep %d cells / %d workers", len(uniq), n))
	}
	defer tl.End(sweepSpan)

	// done counts completed cells under progressMu, which also serializes
	// the callback so progress lines never interleave.
	var progressMu sync.Mutex
	done := 0
	finish := func(c Cell, d time.Duration) {
		if progress == nil {
			return
		}
		progressMu.Lock()
		done++
		progress(done, len(uniq), c, d)
		progressMu.Unlock()
	}

	// Every unique cell gets an outcome slot; cells the sweep never reaches
	// keep the zero-value state overwritten here to CellSkipped. Workers
	// write disjoint slots (by index), so no lock is needed.
	outcomes := make([]CellOutcome, len(uniq))
	for i := range outcomes {
		outcomes[i] = CellOutcome{Cell: uniq[i], State: CellSkipped}
	}
	runOne := func(idx int, c Cell) time.Duration {
		start := time.Now()
		sp := tl.BeginOn(sweepSpan, "cell", c.label())
		r := getCell(c)
		tl.End(sp)
		d := time.Since(start)
		st, err := classifyCell(r)
		outcomes[idx] = CellOutcome{Cell: c, State: st, Err: err, Wall: d}
		tele.cellNS.Observe(d.Nanoseconds())
		finish(c, d)
		return d
	}
	wrapUp := func() *SweepOutcome {
		out := &SweepOutcome{Cells: outcomes, Cancelled: ctx.Err()}
		if out.Cancelled != nil {
			reg.Counter("sweep.cancelled").Inc()
		}
		return out
	}

	if n <= 1 {
		for i, c := range uniq {
			// Cell boundary: a cancelled sweep dispatches nothing further.
			if ctx.Err() != nil {
				break
			}
			runOne(i, c)
		}
		return wrapUp()
	}
	ch := make(chan queuedCell)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Hold a token from the process-wide worker budget for the
			// goroutine's lifetime, so nested orchestrators (chunked replay,
			// interval sampling) see the machine as busy and degrade to fewer
			// workers instead of oversubscribing it quadratically. The
			// blocking acquire is safe at this level: sweep workers hold no
			// other tokens, so they only ever wait on each other.
			harness.AcquireWorker()
			defer harness.ReleaseWorker()
			tl.BindTrack(w)
			defer tl.ReleaseTrack()
			busy := reg.Counter(fmt.Sprintf("sweep.worker.%02d.busy_ns", w))
			for q := range ch {
				tele.queueNS.Observe(time.Since(q.at).Nanoseconds())
				// Cell boundary: a cell still queued when the sweep is
				// cancelled stays skipped instead of starting.
				if ctx.Err() != nil {
					continue
				}
				busy.Add(runOne(q.idx, q.c).Nanoseconds())
			}
		}(i + 1)
	}
dispatch:
	for i, c := range uniq {
		select {
		case ch <- queuedCell{idx: i, c: c, at: time.Now()}:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(ch)
	wg.Wait()
	return wrapUp()
}

// Cached accessors used by the report generators. Each resolves through
// the cell cache, so a prior Sweep makes assembly a pure lookup.

// timed runs (or recalls) one kernel session measurement.
func timed(cipher string, feat isa.Feature, cfg ooo.Config, session int, seed int64) (*ooo.Stats, error) {
	r := getCell(Cell{Kind: CellKernel, Cipher: cipher, Feat: feat, Cfg: cfg, Session: session, Seed: seed})
	return r.stats, r.err
}

// timedSetup runs (or recalls) one key-setup measurement.
func timedSetup(cipher string, feat isa.Feature, cfg ooo.Config, seed int64) (*ooo.Stats, error) {
	r := getCell(Cell{Kind: CellSetup, Cipher: cipher, Feat: feat, Cfg: cfg, Seed: seed})
	return r.stats, r.err
}

// timedDecrypt runs (or recalls) one decryption session measurement.
func timedDecrypt(cipher string, feat isa.Feature, cfg ooo.Config, session int, seed int64) (*ooo.Stats, error) {
	r := getCell(Cell{Kind: CellDecrypt, Cipher: cipher, Feat: feat, Cfg: cfg, Session: session, Seed: seed})
	return r.stats, r.err
}

// counted runs (or recalls) one committed-instruction count.
func counted(cipher string, feat isa.Feature, session int, seed int64) (uint64, error) {
	r := getCell(Cell{Kind: CellCount, Cipher: cipher, Feat: feat, Session: session, Seed: seed})
	return r.n, r.err
}

// mixFor runs (or recalls) one instruction-class-mix measurement.
func mixFor(cipher string, feat isa.Feature, session int, seed int64) (opMix, error) {
	r := getCell(Cell{Kind: CellMix, Cipher: cipher, Feat: feat, Session: session, Seed: seed})
	return r.mix, r.err
}

// valuePredFor runs (or recalls) one value-predictability measurement.
func valuePredFor(cipher string, feat isa.Feature, session int, seed int64) (vpRow, error) {
	r := getCell(Cell{Kind: CellValuePred, Cipher: cipher, Feat: feat, Session: session, Seed: seed})
	return r.vp, r.err
}
