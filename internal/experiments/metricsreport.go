package experiments

import (
	"fmt"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/metrics"
)

// MetricsReport renders the process telemetry registry — sweep scheduler
// counters, trace-cache traffic, engine run totals, and a fresh Go
// runtime sample — as a report. Like the trace-cache report it is a view
// of this invocation, not a paper experiment: it joins asplos2000 -json
// output but never EXPERIMENTS.md.
func MetricsReport() *Report {
	reg := harness.Metrics()
	metrics.SampleRuntime(reg)
	snap := reg.Snapshot()
	r := &Report{
		ID:      "telemetry",
		Title:   "process telemetry registry snapshot for this invocation",
		Columns: []string{"metric", "kind", "value"},
		Rows:    [][]string{},
	}
	for _, c := range snap.Counters {
		r.Rows = append(r.Rows, []string{c.Name, "counter", fmt.Sprintf("%d", c.Value)})
	}
	for _, g := range snap.Gauges {
		r.Rows = append(r.Rows, []string{g.Name, "gauge", fmt.Sprintf("%g", g.Value)})
	}
	for _, h := range snap.Histograms {
		val := fmt.Sprintf("count=%d sum=%d", h.Count, h.Sum)
		if h.Count > 0 {
			val += fmt.Sprintf(" min=%d max=%d", h.Min, h.Max)
		}
		r.Rows = append(r.Rows, []string{h.Name, "histogram", val})
	}
	return r
}
