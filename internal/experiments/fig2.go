package experiments

import (
	"fmt"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
	"cryptoarch/internal/pubkey"
)

// Fig2Sessions are the session lengths swept in Figure 2.
var Fig2Sessions = []int{1024, 2048, 4096, 8192, 16384, 32768, 65536}

// Non-crypto web-server/OS cost model for Figure 2. The paper's figure is
// Intel's measurement of a loaded iA32 web server; we model the non-crypto
// share as a fixed per-session cost plus a per-byte cost (documented
// substitution in DESIGN.md).
const (
	fig2OtherPerByte = 25.0    // cycles/byte of server+OS work
	fig2OtherPerSess = 250_000 // connection handling, fixed
)

// The handshake measurement's fixed parameters. They are hoisted to
// package level because the persistent result store folds them into the
// handshake cell's identity key (store.go): editing any of them must
// invalidate stored handshake results.
const (
	handshakeSeed       = 99
	handshakeCRTSpeedup = 4
)

// handshakeFeat is the ISA level the handshake kernel is assembled at.
var handshakeFeat = isa.FeatRot

// measureHandshake times one 1024-bit private-key modular exponentiation
// — the RSA operation that dominates SSL session establishment — on the
// baseline 4W model. Production RSA implementations use the Chinese
// Remainder Theorem (two half-size exponentiations), which is very close
// to 4x faster than the straight 1024-bit exponentiation our kernel
// performs, so the measured cycle count is scaled by that factor.
func measureHandshake() (uint64, error) {
	const crtSpeedup = handshakeCRTSpeedup
	w := pubkey.NewWorkload(handshakeSeed)
	m, _ := pubkey.NewRun(w, handshakeFeat, 0x20000, 0x80000)
	eng := ooo.NewEngine(ooo.FourWide, ooo.MachineStream{M: m})
	eng.WarmData(0x20000, pubkey.CtxBytes)
	eng.WarmCode(len(m.Prog.Code))
	st, err := eng.Run()
	if err != nil {
		return 0, err
	}
	return st.Cycles / crtSpeedup, nil
}

// HandshakeCycles returns (running at most once per cache generation) the
// Figure 2 handshake cost.
func HandshakeCycles() (uint64, error) {
	r := getCell(Cell{Kind: CellHandshake})
	return r.n, r.err
}

// fig2Bulk lists the bulk ciphers modeled in Figure 2: 3DES (the SSL
// specification default) and RC4 (the fastest in the suite).
var fig2Bulk = []string{"3des", "rc4"}

// Fig2Cells declares the Figure 2 grid: the RSA handshake plus one timed
// session per bulk cipher.
func Fig2Cells() []Cell {
	cells := []Cell{{Kind: CellHandshake}}
	for _, cipher := range fig2Bulk {
		cells = append(cells, Cell{Kind: CellKernel, Cipher: cipher, Feat: isa.FeatRot, Cfg: ooo.FourWide, Session: SessionBytes, Seed: DefaultSeed})
	}
	return cells
}

// Fig2 reproduces Figure 2: the share of session time spent in public-key
// cipher code, private-key cipher code, and everything else, as a function
// of session length.
func Fig2() (*Report, error) {
	h, err := HandshakeCycles()
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:    "figure-2",
		Title: "SSL characterization by session length (4W model)",
		Note: fmt.Sprintf("Handshake = one simulated 1024-bit RSA private op with CRT (%d cycles); other = %.0f cyc/B + %d cyc/session.",
			h, fig2OtherPerByte, fig2OtherPerSess),
		Columns: []string{"Bulk cipher", "Session", "Public key", "Private key", "Other"},
	}
	for _, cipher := range fig2Bulk {
		st, err := timed(cipher, isa.FeatRot, ooo.FourWide, SessionBytes, DefaultSeed)
		if err != nil {
			return nil, err
		}
		cyclesPerByte := float64(st.Cycles) / SessionBytes
		for _, sess := range Fig2Sessions {
			priv := cyclesPerByte * float64(sess)
			other := fig2OtherPerByte*float64(sess) + fig2OtherPerSess
			total := float64(h) + priv + other
			r.Rows = append(r.Rows, []string{
				cipher,
				fmt.Sprintf("%dB", sess),
				fmt.Sprintf("%.1f%%", 100*float64(h)/total),
				fmt.Sprintf("%.1f%%", 100*priv/total),
				fmt.Sprintf("%.1f%%", 100*other/total),
			})
		}
	}
	return r, nil
}
