package experiments

import (
	"reflect"
	"testing"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/metrics"
	"cryptoarch/internal/ooo"
)

// telemetryCells is a small sweep grid exercising both the record path
// (first config of each cipher) and the replay path (second config).
func telemetryCells() []Cell {
	var cells []Cell
	for _, cipher := range []string{"blowfish", "rc4"} {
		for _, cfg := range []ooo.Config{ooo.FourWide, ooo.EightWidePlus} {
			cells = append(cells, Cell{Kind: CellKernel, Cipher: cipher, Feat: isa.FeatRot, Cfg: cfg, Session: 512, Seed: DefaultSeed})
		}
	}
	return cells
}

// TestSpanNestingTiling pins the structural invariants of the span
// timeline a sweep emits: one sweep span; one cell span per unique cell,
// each parented to the sweep span and contained in it; cell spans on the
// same worker track tile (never overlap); record/replay phase spans nest
// inside cell spans; and everything is closed when Sweep returns.
func TestSpanNestingTiling(t *testing.T) {
	tl := metrics.NewTimeline()
	prevTL := harness.SetTimeline(tl)
	prevPar := SetParallelism(3)
	ResetCache()
	defer func() {
		harness.SetTimeline(prevTL)
		SetParallelism(prevPar)
		ResetCache()
	}()

	cells := telemetryCells()
	Sweep(cells)

	spans := tl.Spans()
	byCat := map[string][]metrics.SpanID{}
	for i, s := range spans {
		if s.End < 0 {
			t.Fatalf("span %d (%s %q) still open after Sweep returned", i, s.Cat, s.Name)
		}
		if s.End < s.Start {
			t.Fatalf("span %d (%s %q) ends before it starts", i, s.Cat, s.Name)
		}
		byCat[s.Cat] = append(byCat[s.Cat], metrics.SpanID(i))
	}

	if n := len(byCat["sweep"]); n != 1 {
		t.Fatalf("got %d sweep spans, want 1", n)
	}
	sweepID := byCat["sweep"][0]
	sweep := spans[sweepID]

	if n := len(byCat["cell"]); n != len(cells) {
		t.Fatalf("got %d cell spans, want %d (one per unique cell)", n, len(cells))
	}
	contains := func(outer, inner metrics.Span) bool {
		return inner.Start >= outer.Start && inner.End <= outer.End
	}
	cellIDs := map[metrics.SpanID]bool{}
	for _, id := range byCat["cell"] {
		s := spans[id]
		cellIDs[id] = true
		if s.Parent != sweepID {
			t.Fatalf("cell span %q parented to %d, want sweep span %d", s.Name, s.Parent, sweepID)
		}
		if !contains(sweep, s) {
			t.Fatalf("cell span %q [%v,%v] not contained in sweep [%v,%v]", s.Name, s.Start, s.End, sweep.Start, sweep.End)
		}
	}

	// Tiling: cell spans sharing a display track must not overlap — each
	// worker executes one cell at a time.
	byTrack := map[int][]metrics.Span{}
	for _, id := range byCat["cell"] {
		byTrack[spans[id].Track] = append(byTrack[spans[id].Track], spans[id])
	}
	for track, ss := range byTrack {
		for i := range ss {
			for j := i + 1; j < len(ss); j++ {
				a, b := ss[i], ss[j]
				if a.Start < b.End && b.Start < a.End {
					t.Fatalf("track %d: cell spans %q and %q overlap", track, a.Name, b.Name)
				}
			}
		}
	}

	// Phase spans (trace recording, engine replay) nest inside cells.
	for _, cat := range []string{"record", "replay"} {
		if len(byCat[cat]) == 0 {
			t.Fatalf("no %s spans recorded; expected at least one", cat)
		}
		for _, id := range byCat[cat] {
			s := spans[id]
			if !cellIDs[s.Parent] {
				t.Fatalf("%s span %q parented to span %d, want a cell span", cat, s.Name, s.Parent)
			}
			if !contains(spans[s.Parent], s) {
				t.Fatalf("%s span %q not contained in its parent cell %q", cat, s.Name, spans[s.Parent].Name)
			}
		}
	}
}

// TestSweepCountersDeterministic pins that the schedule-independent
// counters — trace-cache traffic, engine run totals, cells dispatched —
// are identical whatever the worker count: parallelism changes wall
// clock, never what was measured.
func TestSweepCountersDeterministic(t *testing.T) {
	deterministic := []string{
		"sweep.sweeps", "sweep.cells",
		"tracecache.hits", "tracecache.misses", "tracecache.records", "tracecache.replays",
		"ooo.runs", "ooo.insts", "ooo.cycles",
	}
	counters := func(workers int) map[string]int64 {
		reg := metrics.NewRegistry()
		prevReg := harness.SetMetrics(reg)
		prevPar := SetParallelism(workers)
		ResetCache()
		defer func() {
			harness.SetMetrics(prevReg)
			SetParallelism(prevPar)
			ResetCache()
		}()
		Sweep(telemetryCells())
		out := map[string]int64{}
		snap := reg.Snapshot()
		for _, name := range deterministic {
			for _, c := range snap.Counters {
				if c.Name == name {
					out[name] = c.Value
				}
			}
		}
		return out
	}
	serial := counters(1)
	parallel := counters(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("schedule-dependent counters:\n1 worker:  %v\n4 workers: %v", serial, parallel)
	}
	if serial["sweep.cells"] != int64(len(telemetryCells())) {
		t.Fatalf("sweep.cells = %d, want %d", serial["sweep.cells"], len(telemetryCells()))
	}
	if serial["tracecache.misses"] == 0 || serial["tracecache.hits"] == 0 {
		t.Fatalf("expected both miss and hit traffic, got %v", serial)
	}
}

// TestMetricsReport pins the telemetry report: after a sweep it carries
// the scheduler counters and a fresh Go runtime sample, in snapshot
// (sorted) order.
func TestMetricsReport(t *testing.T) {
	reg := metrics.NewRegistry()
	prevReg := harness.SetMetrics(reg)
	ResetCache()
	defer func() {
		harness.SetMetrics(prevReg)
		ResetCache()
	}()
	Sweep(telemetryCells())
	r := MetricsReport()
	if r.ID != "telemetry" {
		t.Fatalf("report id %q", r.ID)
	}
	names := map[string]bool{}
	for _, row := range r.Rows {
		names[row[0]] = true
	}
	for _, want := range []string{"sweep.cells", "tracecache.hits", "ooo.runs", "go.gc.cycles", "sweep.cell_ns"} {
		if !names[want] {
			t.Fatalf("telemetry report missing %q; rows: %v", want, rowNames(r))
		}
	}
}

func rowNames(r *Report) []string {
	var out []string
	for _, row := range r.Rows {
		out = append(out, row[0])
	}
	return out
}
