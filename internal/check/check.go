// Package check is the robustness layer shared by the emulator, the
// timing engine and the harness: structured invariant-violation and
// budget-exceeded errors, a deterministic seed-driven fault injector used
// by the detection-coverage tests, and small input-validation helpers.
//
// The package is a leaf — it imports nothing from the rest of the tree —
// so every layer (emu, ooo, harness, kernels, cmd) can report through it
// without import cycles. The paper's numbers are only meaningful if the
// kernels are functionally correct and the cycle accounting is internally
// consistent; this package gives every internal consistency failure one
// typed, grep-able shape instead of a corrupted Stats struct or a panic.
package check

import (
	"errors"
	"fmt"
)

// Violation is a structured invariant-violation error produced by checked
// mode (ooo.Config.Checked) and the harness self-checks. Check names are
// stable identifiers (e.g. "rob-entry", "slot-accounting"): tests assert
// on them to prove each injected fault class is caught by the checker
// that owns it.
type Violation struct {
	Check  string // which checker fired (stable identifier)
	Cycle  uint64 // simulated cycle at detection (0 if not cycle-driven)
	Detail string // human-readable specifics
}

// Error implements error.
func (v *Violation) Error() string {
	if v.Cycle != 0 {
		return fmt.Sprintf("check: %s invariant violated at cycle %d: %s", v.Check, v.Cycle, v.Detail)
	}
	return fmt.Sprintf("check: %s invariant violated: %s", v.Check, v.Detail)
}

// Violationf builds a Violation with a formatted detail string.
func Violationf(checkName string, cycle uint64, format string, args ...any) *Violation {
	return &Violation{Check: checkName, Cycle: cycle, Detail: fmt.Sprintf(format, args...)}
}

// AsViolation unwraps err to a Violation if one is in its chain.
func AsViolation(err error) (*Violation, bool) {
	var v *Violation
	if errors.As(err, &v) {
		return v, true
	}
	return nil, false
}

// BudgetError reports that a run exceeded its resource budget — the
// runaway guard that turns a mis-built kernel (an infinite loop, a
// corrupted branch target) into a diagnosable error instead of a hung
// sweep.
type BudgetError struct {
	Resource string // "instructions" or "cycles"
	Subject  string // program or machine-model name
	Limit    uint64
	Used     uint64
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("check: %s exceeded its %s budget (%d used, limit %d)",
		e.Subject, e.Resource, e.Used, e.Limit)
}

// IsBudget reports whether err's chain contains a BudgetError.
func IsBudget(err error) bool {
	var b *BudgetError
	return errors.As(err, &b)
}
