package check

import (
	"fmt"
	"strings"
)

// Suggest formats an unknown-name error suffix with a did-you-mean hint:
// the closest valid name by edit distance (when it is close enough to be
// a plausible typo) plus the sorted list of valid names. It returns, e.g.:
//
//	` (did you mean "blowfish"? valid: 3des, blowfish, ...)`
//
// so callers can append it directly to their error message.
func Suggest(name string, valid []string) string {
	best, bestDist := "", int(^uint(0)>>1)
	for _, v := range valid {
		if d := editDistance(strings.ToLower(name), strings.ToLower(v)); d < bestDist {
			best, bestDist = v, d
		}
	}
	list := strings.Join(valid, ", ")
	// A suggestion further than 1/2 the name length away is noise.
	if best != "" && bestDist <= max(2, len(name)/2) {
		return fmt.Sprintf(" (did you mean %q? valid: %s)", best, list)
	}
	return fmt.Sprintf(" (valid: %s)", list)
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
