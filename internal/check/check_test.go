package check

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestViolationError(t *testing.T) {
	v := Violationf("rob-entry", 42, "seq %d mismatch", 7)
	if got := v.Error(); !strings.Contains(got, "rob-entry") || !strings.Contains(got, "cycle 42") {
		t.Fatalf("unexpected message %q", got)
	}
	wrapped := fmt.Errorf("run failed: %w", v)
	got, ok := AsViolation(wrapped)
	if !ok || got.Check != "rob-entry" {
		t.Fatalf("AsViolation(%v) = %v, %v", wrapped, got, ok)
	}
	if _, ok := AsViolation(errors.New("plain")); ok {
		t.Fatal("AsViolation matched a plain error")
	}
	v0 := Violationf("slot-accounting", 0, "x")
	if strings.Contains(v0.Error(), "cycle") {
		t.Fatalf("cycle-less violation mentions a cycle: %q", v0.Error())
	}
}

func TestBudgetError(t *testing.T) {
	b := &BudgetError{Resource: "instructions", Subject: "loop", Limit: 10, Used: 11}
	if !IsBudget(fmt.Errorf("emu: %w", b)) {
		t.Fatal("IsBudget failed to match a wrapped BudgetError")
	}
	if IsBudget(errors.New("other")) {
		t.Fatal("IsBudget matched a plain error")
	}
	for _, want := range []string{"instructions", "loop", "10", "11"} {
		if !strings.Contains(b.Error(), want) {
			t.Fatalf("message %q missing %q", b.Error(), want)
		}
	}
}

// TestInjectorDeterminism pins that the same seed produces the same fault
// plan — the property every detection-coverage test depends on.
func TestInjectorDeterminism(t *testing.T) {
	a, b := NewInjector(99), NewInjector(99)
	bufA, bufB := make([]byte, 64), make([]byte, 64)
	for i := 0; i < 32; i++ {
		ia, ba := a.FlipBit(bufA)
		ib, bb := b.FlipBit(bufB)
		if ia != ib || ba != bb {
			t.Fatalf("iteration %d: (%d,%d) != (%d,%d)", i, ia, ba, ib, bb)
		}
		if a.Point(1000) != b.Point(1000) || a.Uint64() != b.Uint64() {
			t.Fatalf("iteration %d: diverged on Point/Uint64", i)
		}
	}
	if string(bufA) != string(bufB) {
		t.Fatal("corrupted buffers differ across equal seeds")
	}
}

func TestInjectorFlipBitChangesExactlyOneBit(t *testing.T) {
	in := NewInjector(7)
	buf := make([]byte, 16)
	idx, bit := in.FlipBit(buf)
	for i, v := range buf {
		want := byte(0)
		if i == idx {
			want = 1 << bit
		}
		if v != want {
			t.Fatalf("byte %d = %#x, want %#x", i, v, want)
		}
	}
	v, b := in.FlipBit64(0)
	if v != 1<<b {
		t.Fatalf("FlipBit64(0) = %#x with bit %d", v, b)
	}
}

func TestInjectorLog(t *testing.T) {
	in := NewInjector(1)
	in.Note(FaultTraceBit)
	in.Note(FaultROBEntry)
	got := in.Injected()
	if len(got) != 2 || got[0] != FaultTraceBit || got[1] != FaultROBEntry {
		t.Fatalf("Injected() = %v", got)
	}
}

func TestSuggest(t *testing.T) {
	valid := []string{"3des", "blowfish", "idea", "rc4"}
	got := Suggest("blowfsh", valid)
	if !strings.Contains(got, `did you mean "blowfish"`) {
		t.Fatalf("Suggest(blowfsh) = %q, want a blowfish hint", got)
	}
	if !strings.Contains(got, "3des, blowfish, idea, rc4") {
		t.Fatalf("Suggest missing valid list: %q", got)
	}
	// Nothing close: list only, no hint.
	got = Suggest("zzzzzzzzzzzz", valid)
	if strings.Contains(got, "did you mean") {
		t.Fatalf("Suggest(zzzz...) offered a hint: %q", got)
	}
	if d := editDistance("kitten", "sitting"); d != 3 {
		t.Fatalf("editDistance(kitten, sitting) = %d, want 3", d)
	}
	if d := editDistance("", "abc"); d != 3 {
		t.Fatalf("editDistance(empty, abc) = %d, want 3", d)
	}
}
