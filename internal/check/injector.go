package check

import "math/rand"

// FaultClass names one corruption mechanism the injector can apply. Each
// class maps to the checker (or checksum) that must detect it; the
// detection-coverage tests in internal/ooo and internal/harness walk this
// mapping so no class is silently undetectable.
type FaultClass string

const (
	// FaultTraceBit flips one bit of a packed trace record — detected by
	// the trace checksum (emu.ChecksumRecs / harness trace cache).
	FaultTraceBit FaultClass = "trace-bit"
	// FaultSboxCache perturbs SBox-cache state (valid bits without a tag,
	// misaligned tag) — detected by the "sbox-cache" checker.
	FaultSboxCache FaultClass = "sbox-cache"
	// FaultROBEntry corrupts an in-flight reorder-buffer entry — detected
	// by the "rob-entry" / "scoreboard" checkers.
	FaultROBEntry FaultClass = "rob-entry"
	// FaultCachedTrace corrupts a retained trace-cache entry in place —
	// detected by the checksum-on-replay path, which evicts and
	// re-records (TraceCacheStats.ChecksumEvictions).
	FaultCachedTrace FaultClass = "cached-trace"
)

// Injector is a deterministic, seed-driven fault injector. It does not
// reach into other packages' state itself; it makes every random choice
// (which record, which bit, which cycle) reproducible, and the tests of
// the target package apply the corruption it picks. Injected faults are
// logged so a test can assert exactly what was planted.
type Injector struct {
	Seed int64
	rng  *rand.Rand
	log  []FaultClass
}

// NewInjector returns an injector whose choices are fully determined by
// seed.
func NewInjector(seed int64) *Injector {
	return &Injector{Seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Intn returns a deterministic value in [0, n).
func (in *Injector) Intn(n int) int { return in.rng.Intn(n) }

// Uint64 returns a deterministic 64-bit value.
func (in *Injector) Uint64() uint64 { return in.rng.Uint64() }

// Point picks a deterministic trigger point in [1, limit] — e.g. the
// cycle or record index at which to apply a fault.
func (in *Injector) Point(limit uint64) uint64 {
	if limit == 0 {
		return 0
	}
	return 1 + uint64(in.rng.Int63n(int64(limit)))
}

// FlipBit flips one pseudo-randomly chosen bit of buf in place and
// returns its location. buf must be non-empty.
func (in *Injector) FlipBit(buf []byte) (idx int, bit uint) {
	idx = in.rng.Intn(len(buf))
	bit = uint(in.rng.Intn(8))
	buf[idx] ^= 1 << bit
	return idx, bit
}

// FlipBit64 returns v with one pseudo-randomly chosen bit flipped, plus
// the bit position.
func (in *Injector) FlipBit64(v uint64) (uint64, uint) {
	bit := uint(in.rng.Intn(64))
	return v ^ 1<<bit, bit
}

// Note records that a fault of class c was planted.
func (in *Injector) Note(c FaultClass) { in.log = append(in.log, c) }

// Injected returns the classes of every fault planted so far, in order.
func (in *Injector) Injected() []FaultClass { return in.log }
