package check

import (
	"os"
	"sync"
	"syscall"
	"time"
)

// Filesystem fault injection. The persistent store runs on a narrow
// filesystem interface; FaultFS implements the same method set (check is
// a leaf, so the interface is mirrored structurally rather than imported)
// over a delegate filesystem and injects faults at deterministic points:
// read/write/rename errors, torn writes that persist only a prefix, and
// ENOSPC. Each planted fault is Noted on the owning Injector, so chaos
// tests can assert exactly which fault classes fired and map each to the
// mechanism that must detect or absorb it.

const (
	// FaultFSRead fails ReadFile calls — detected by the store's
	// retry/backoff path, degrading to recompute when persistent.
	FaultFSRead FaultClass = "fs-read"
	// FaultFSWrite fails WriteFile calls — write-through persistence is
	// retried, then dropped (the store degrades; simulation continues).
	FaultFSWrite FaultClass = "fs-write"
	// FaultFSRename fails the rename into place — the atomic-write path
	// must remove its temp file immediately and leave no residue.
	FaultFSRename FaultClass = "fs-rename"
	// FaultFSTorn makes WriteFile persist only a prefix while reporting
	// success — detected by the entry header/checksum on the next load,
	// which deletes the entry and re-records once.
	FaultFSTorn FaultClass = "fs-torn-write"
	// FaultFSFull makes WriteFile fail with ENOSPC — classified as a
	// deterministic fault: no retry, immediate graceful degradation.
	FaultFSFull FaultClass = "fs-enospc"
)

// FSOps is the filesystem surface FaultFS wraps: the store's FS interface,
// mirrored here field-for-field so the two stay structurally identical
// without an import edge from this leaf package.
type FSOps interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Chtimes(name string, atime, mtime time.Time) error
}

// fsPlan schedules one fault class: skip the first `after` matching calls,
// then fire on the next `times` of them (-1 = every one from then on).
type fsPlan struct {
	after int
	times int
	err   error
	calls int
}

// FaultFS is a fault-injecting filesystem. All methods are safe for
// concurrent use; un-faulted operations pass straight through to the
// delegate.
type FaultFS struct {
	in *Injector
	fs FSOps

	mu    sync.Mutex
	plans map[FaultClass]*fsPlan
}

// NewFaultFS wraps fs with fault injection owned by in (which logs every
// fired fault via Note). With no plans armed it is a transparent proxy.
func (in *Injector) NewFaultFS(fs FSOps) *FaultFS {
	return &FaultFS{in: in, fs: fs, plans: make(map[FaultClass]*fsPlan)}
}

// Plan arms a fault class: the first `after` matching operations succeed,
// the following `times` fail with err (times = -1 means forever). err is
// ignored for FaultFSTorn (a torn write reports success); nil defaults to
// ENOSPC for FaultFSFull and EIO for the error-returning classes.
func (f *FaultFS) Plan(class FaultClass, after, times int, err error) {
	if err == nil {
		if class == FaultFSFull {
			err = syscall.ENOSPC
		} else if class != FaultFSTorn {
			err = syscall.EIO
		}
	}
	f.mu.Lock()
	f.plans[class] = &fsPlan{after: after, times: times, err: err}
	f.mu.Unlock()
}

// fire consumes one matching call of the class: (true, err) when the
// fault triggers on this call.
func (f *FaultFS) fire(class FaultClass) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.plans[class]
	if p == nil {
		return false, nil
	}
	p.calls++
	if p.calls <= p.after || p.times == 0 {
		return false, nil
	}
	if p.times > 0 {
		p.times--
	}
	f.in.Note(class)
	return true, p.err
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error { return f.fs.MkdirAll(path, perm) }
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error)   { return f.fs.ReadDir(name) }
func (f *FaultFS) Remove(name string) error                     { return f.fs.Remove(name) }
func (f *FaultFS) Chtimes(name string, atime, mtime time.Time) error {
	return f.fs.Chtimes(name, atime, mtime)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if hit, err := f.fire(FaultFSRead); hit {
		return nil, err
	}
	return f.fs.ReadFile(name)
}

func (f *FaultFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if hit, _ := f.fire(FaultFSTorn); hit {
		// Persist only the first half and report success: the torn entry
		// must be caught by the reader's header/checksum verification.
		return f.fs.WriteFile(name, data[:len(data)/2], perm)
	}
	if hit, err := f.fire(FaultFSFull); hit {
		return err
	}
	if hit, err := f.fire(FaultFSWrite); hit {
		return err
	}
	return f.fs.WriteFile(name, data, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if hit, err := f.fire(FaultFSRename); hit {
		return err
	}
	return f.fs.Rename(oldpath, newpath)
}
