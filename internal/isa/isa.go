// Package isa defines AXP64, the Alpha-like 64-bit RISC instruction set used
// by this reproduction of "Architectural Support for Fast Symmetric-Key
// Cryptography" (ASPLOS 2000), including the paper's cryptographic
// instruction-set extensions (ROL/ROR, ROLX/RORX, MULMOD, SBOX, SBOXSYNC,
// XBOX).
//
// Programs are sequences of Inst values. The functional semantics live in
// internal/emu; cycle-level timing lives in internal/ooo. Instruction
// addresses are modeled as CodeBase + 4*index so that instruction-cache
// behaviour is meaningful.
package isa

import "fmt"

// Reg names an architectural integer register, r0..r31. R31 reads as zero
// and discards writes, as on Alpha.
type Reg uint8

// Architectural register assignments follow a simplified Alpha calling
// convention; see the constants below.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31

	RA0  = R16 // first argument: input buffer address
	RA1  = R17 // second argument: output buffer address
	RA2  = R18 // third argument: byte length
	RA3  = R19 // fourth argument: cipher context address
	RLNK = R26 // subroutine link register
	RGP  = R29 // global pointer: program rodata segment
	RSP  = R30 // stack pointer
	RZ   = R31 // hardwired zero
)

// NumRegs is the architectural integer register count.
const NumRegs = 32

// Op enumerates AXP64 opcodes.
type Op uint8

const (
	OpInvalid Op = iota

	// Memory operations: Ra is the destination (loads) or the store data
	// register (stores); the effective address is REG[Rb] + Lit.
	// All loads zero-extend.
	OpLDQ // 64-bit load
	OpLDL // 32-bit load, zero-extended
	OpLDW // 16-bit load, zero-extended
	OpLDB // 8-bit load, zero-extended
	OpSTQ // 64-bit store
	OpSTL // 32-bit store
	OpSTW // 16-bit store
	OpSTB // 8-bit store

	// Constant construction: Rc = REG[Rb] + Lit, Rc = REG[Rb] + Lit<<16.
	OpLDA
	OpLDAH

	// Integer arithmetic. L-suffixed operations compute on the low 32 bits
	// and zero-extend the result (a deliberate simplification of Alpha's
	// sign-extending longword convention that keeps 32-bit cipher state
	// canonical in registers).
	OpADDQ
	OpSUBQ
	OpADDL
	OpSUBL
	OpS4ADDQ // Rc = 4*REG[Ra] + src2 (S-box address scaling)
	OpS8ADDQ // Rc = 8*REG[Ra] + src2
	OpMULQ   // 64-bit multiply, low word
	OpMULL   // 32-bit multiply, zero-extended
	OpUMULH  // 64-bit multiply, high word

	// Comparisons produce 0 or 1.
	OpCMPEQ
	OpCMPULT
	OpCMPULE
	OpCMPLT // signed 64-bit
	OpCMPLE

	// Logic.
	OpAND
	OpBIC // a &^ b
	OpOR
	OpORNOT // a | ^b
	OpXOR
	OpEQV // a ^ ^b

	// Shifts. Q-forms are 64-bit (amount mod 64); L-forms shift within the
	// low 32 bits and zero-extend (amount mod 32).
	OpSLL
	OpSRL
	OpSRA
	OpSLLL
	OpSRLL

	// Byte manipulation (Alpha EXTBL/INSBL analogues).
	OpEXTB  // Rc = (REG[Ra] >> 8*src2) & 0xff  (src2: literal or register, mod 8)
	OpINSB  // Rc = (REG[Ra] & 0xff) << 8*src2
	OpZEXTB // Rc = REG[Ra] & 0xff
	OpZEXTW // Rc = REG[Ra] & 0xffff
	OpZEXTL // Rc = REG[Ra] & 0xffffffff
	OpSEXTL // Rc = sign-extend low 32 bits

	// Conditional moves. Rc is both read and written (as on Alpha, where
	// CMOV is cracked into two operations internally).
	OpCMOVEQ // if REG[Ra] == 0 { Rc = src2 }
	OpCMOVNE // if REG[Ra] != 0 { Rc = src2 }

	// Control. Conditional branches test Ra against zero (signed).
	// Branch targets are instruction indices held in Lit.
	OpBR  // unconditional
	OpBSR // branch subroutine: RLNK = return index, jump
	OpRET // jump to REG[Rb] (conventionally RLNK)
	OpBEQ
	OpBNE
	OpBLT
	OpBLE
	OpBGT
	OpBGE

	OpHALT // terminate program
	OpNOP

	// --- Cryptographic ISA extensions (the paper's contribution) ---

	// Rotates: Rc = REG[Ra] rotated by src2 (register amount masked to the
	// data width, or an instruction literal).
	OpROLQ
	OpRORQ
	OpROLL // 32-bit rotate, result zero-extended
	OpRORL

	// Rotate-and-XOR: Rc = (REG[Ra] <<< Lit) ^ REG[Rc]. Two register reads
	// (Ra and the old Rc) plus an instruction literal, as in the paper.
	OpROLXL
	OpRORXL
	OpROLXQ
	OpRORXQ

	// MULMOD: Rc = (REG[Ra] * src2) mod 0x10001 in the IDEA convention
	// (a 16-bit operand value of 0 denotes 2^16; a result of 2^16 is
	// stored as 0).
	OpMULMOD

	// SBOX: Rc = MEM32[(REG[Rb] & ^0x3ff) | (byte Sel2 of REG[Ra]) << 2].
	// Sel1 names the architectural S-box table (scheduling hint for the
	// S-box caches); Aliased marks RC4-style tables that observe stores.
	OpSBOX
	// SBOXSYNC: publish stores to S-box storage; invalidates S-box caches.
	// Sel1 names the table (or SboxAll).
	OpSBOXSYNC

	// XBOX: partial general permutation. REG[Rb] packs eight 6-bit source
	// bit indices; byte Sel1 of Rc receives the selected bits of REG[Ra],
	// all other result bits are zero.
	OpXBOX

	opMax
)

// SboxAll as an SBOXSYNC table selector synchronizes every table.
const SboxAll = 0xff

// Class buckets dynamic instructions for the paper's Figure 7 operation
// characterization.
type Class uint8

const (
	ClassArith   Class = iota // additions, compares, address arithmetic
	ClassLogic                // XOR and friends
	ClassRotate               // rotates, incl. instructions synthesizing one
	ClassMult                 // integer multiplies, MULMOD
	ClassSubst                // S-box lookups (however implemented)
	ClassPerm                 // general bit permutations
	ClassMem                  // loads/stores not part of a substitution
	ClassControl              // branches, jumps
	NumClasses
)

var classNames = [NumClasses]string{
	"arith", "logic", "rotate", "mult", "subst", "perm", "ldst", "control",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Inst is one AXP64 instruction.
//
// Operand conventions:
//   - operate format: Rc = Ra op src2, where src2 is REG[Rb] or, when
//     UseLit is set, the literal Lit;
//   - memory format: Ra = data/destination, address = REG[Rb] + Lit;
//   - branch format: test Ra, target instruction index in Lit.
type Inst struct {
	Op      Op
	Ra, Rb  Reg
	Rc      Reg
	UseLit  bool
	Lit     int64
	Sel1    uint8 // SBOX/SBOXSYNC table number, XBOX destination byte
	Sel2    uint8 // SBOX index-byte selector
	Aliased bool  // SBOX aliased flag (stores visible)
	Class   Class
}

// Program is an assembled AXP64 routine plus its read-only data segment.
type Program struct {
	Name   string
	Code   []Inst
	Labels map[string]int
	// Rodata is mapped at the address passed to the program in RGP.
	// XBOX permutation maps and wide constants live here.
	Rodata []byte
}

// MustLabel returns the instruction index of a label, panicking if absent.
func (p *Program) MustLabel(name string) int {
	i, ok := p.Labels[name]
	if !ok {
		panic(fmt.Sprintf("program %s: no label %q", p.Name, name))
	}
	return i
}

// Props describes static properties of an opcode used by the emulator,
// timing model, and assembler.
type Props struct {
	Name    string
	Load    bool
	Store   bool
	Branch  bool // any control transfer
	CondBr  bool
	Uncond  bool // BR/BSR/RET
	WritesC bool // writes Rc
	ReadsA  bool
	ReadsB  bool // reads Rb when !UseLit (operate) or always (memory base, RET)
	ReadsC  bool // CMOV and ROLX forms read old Rc
	Mem     bool
	Size    uint8 // memory access size in bytes
	Class   Class // default classification
}

var props [opMax]Props

// P returns the static properties of op.
func P(op Op) *Props { return &props[op] }

func def(op Op, p Props) { props[op] = p }

func init() {
	mem := func(op Op, name string, size uint8, store bool) {
		p := Props{Name: name, Mem: true, Size: size, Class: ClassMem}
		if store {
			p.Store = true
			p.ReadsA = true
			p.ReadsB = true
		} else {
			p.Load = true
			p.WritesC = false
			p.ReadsB = true
			// loads write Ra by convention
		}
		def(op, p)
	}
	mem(OpLDQ, "ldq", 8, false)
	mem(OpLDL, "ldl", 4, false)
	mem(OpLDW, "ldw", 2, false)
	mem(OpLDB, "ldb", 1, false)
	mem(OpSTQ, "stq", 8, true)
	mem(OpSTL, "stl", 4, true)
	mem(OpSTW, "stw", 2, true)
	mem(OpSTB, "stb", 1, true)

	opr := func(op Op, name string, class Class) {
		def(op, Props{Name: name, WritesC: true, ReadsA: true, ReadsB: true, Class: class})
	}
	def(OpLDA, Props{Name: "lda", WritesC: true, ReadsB: true, Class: ClassArith})
	def(OpLDAH, Props{Name: "ldah", WritesC: true, ReadsB: true, Class: ClassArith})

	opr(OpADDQ, "addq", ClassArith)
	opr(OpSUBQ, "subq", ClassArith)
	opr(OpADDL, "addl", ClassArith)
	opr(OpSUBL, "subl", ClassArith)
	opr(OpS4ADDQ, "s4addq", ClassArith)
	opr(OpS8ADDQ, "s8addq", ClassArith)
	opr(OpMULQ, "mulq", ClassMult)
	opr(OpMULL, "mull", ClassMult)
	opr(OpUMULH, "umulh", ClassMult)
	opr(OpCMPEQ, "cmpeq", ClassArith)
	opr(OpCMPULT, "cmpult", ClassArith)
	opr(OpCMPULE, "cmpule", ClassArith)
	opr(OpCMPLT, "cmplt", ClassArith)
	opr(OpCMPLE, "cmple", ClassArith)
	opr(OpAND, "and", ClassLogic)
	opr(OpBIC, "bic", ClassLogic)
	opr(OpOR, "or", ClassLogic)
	opr(OpORNOT, "ornot", ClassLogic)
	opr(OpXOR, "xor", ClassLogic)
	opr(OpEQV, "eqv", ClassLogic)
	opr(OpSLL, "sll", ClassLogic)
	opr(OpSRL, "srl", ClassLogic)
	opr(OpSRA, "sra", ClassLogic)
	opr(OpSLLL, "slll", ClassLogic)
	opr(OpSRLL, "srll", ClassLogic)
	opr(OpEXTB, "extb", ClassLogic)
	opr(OpINSB, "insb", ClassLogic)

	un := func(op Op, name string, class Class) {
		def(op, Props{Name: name, WritesC: true, ReadsA: true, Class: class})
	}
	un(OpZEXTB, "zextb", ClassLogic)
	un(OpZEXTW, "zextw", ClassLogic)
	un(OpZEXTL, "zextl", ClassLogic)
	un(OpSEXTL, "sextl", ClassLogic)

	cmov := func(op Op, name string) {
		def(op, Props{Name: name, WritesC: true, ReadsA: true, ReadsB: true, ReadsC: true, Class: ClassArith})
	}
	cmov(OpCMOVEQ, "cmoveq")
	cmov(OpCMOVNE, "cmovne")

	def(OpBR, Props{Name: "br", Branch: true, Uncond: true, Class: ClassControl})
	def(OpBSR, Props{Name: "bsr", Branch: true, Uncond: true, Class: ClassControl})
	def(OpRET, Props{Name: "ret", Branch: true, Uncond: true, ReadsB: true, Class: ClassControl})
	cbr := func(op Op, name string) {
		def(op, Props{Name: name, Branch: true, CondBr: true, ReadsA: true, Class: ClassControl})
	}
	cbr(OpBEQ, "beq")
	cbr(OpBNE, "bne")
	cbr(OpBLT, "blt")
	cbr(OpBLE, "ble")
	cbr(OpBGT, "bgt")
	cbr(OpBGE, "bge")

	def(OpHALT, Props{Name: "halt", Class: ClassControl})
	def(OpNOP, Props{Name: "nop", Class: ClassArith})

	opr(OpROLQ, "rolq", ClassRotate)
	opr(OpRORQ, "rorq", ClassRotate)
	opr(OpROLL, "roll", ClassRotate)
	opr(OpRORL, "rorl", ClassRotate)

	rx := func(op Op, name string) {
		def(op, Props{Name: name, WritesC: true, ReadsA: true, ReadsC: true, Class: ClassRotate})
	}
	rx(OpROLXL, "rolxl")
	rx(OpRORXL, "rorxl")
	rx(OpROLXQ, "rolxq")
	rx(OpRORXQ, "rorxq")

	opr(OpMULMOD, "mulmod", ClassMult)

	def(OpSBOX, Props{Name: "sbox", WritesC: true, ReadsA: true, ReadsB: true, Load: true, Mem: true, Size: 4, Class: ClassSubst})
	def(OpSBOXSYNC, Props{Name: "sboxsync", Class: ClassSubst})
	def(OpXBOX, Props{Name: "xbox", WritesC: true, ReadsA: true, ReadsB: true, Class: ClassPerm})
}

func (op Op) String() string {
	if op < opMax && props[op].Name != "" {
		return props[op].Name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}
