package isa

import (
	"strings"
	"testing"
)

// buildBranchy assembles a tiny program with a loop and a subroutine so
// the block analysis has real structure to find.
func buildBranchy(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("branchy", FeatRot)
	b.LoadImm32(R1, 4)
	b.Label("loop")
	b.ADDQI(R2, 1, R2)
	b.SUBQI(R1, 1, R1)
	b.BNE(R1, "loop")
	b.XOR(R2, R2, R2)
	b.HALT()
	return b.Build()
}

// TestListingToNilAnnotateMatchesListing pins the shared-formatter
// contract: Listing and ListingTo(nil) are the same bytes, and each code
// line keeps the historical "%5d:  %s" shape cmd/disasm prints.
func TestListingToNilAnnotateMatchesListing(t *testing.T) {
	p := buildBranchy(t)
	var b strings.Builder
	ListingTo(&b, p, nil)
	if b.String() != Listing(p) {
		t.Fatalf("ListingTo(nil) differs from Listing:\n%q\n%q", b.String(), Listing(p))
	}
	lines := strings.Split(Listing(p), "\n")
	if !strings.HasPrefix(lines[0], "; program branchy: ") {
		t.Fatalf("missing header: %q", lines[0])
	}
	found := false
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, "    0:  ") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no instruction line in listing:\n%s", Listing(p))
	}
}

// TestListingToAnnotate checks annotations land between index and
// disassembly on every code line.
func TestListingToAnnotate(t *testing.T) {
	p := buildBranchy(t)
	var b strings.Builder
	ListingTo(&b, p, func(idx int) string { return "<A>" })
	n := 0
	for _, l := range strings.Split(b.String(), "\n") {
		if strings.Contains(l, "<A>  ") {
			n++
		}
	}
	if n != len(p.Code) {
		t.Fatalf("annotated %d lines, want %d:\n%s", n, len(p.Code), b.String())
	}
}

// TestBasicBlocks checks leaders, block lookup and naming on the loop
// program.
func TestBasicBlocks(t *testing.T) {
	p := buildBranchy(t)
	starts := BasicBlockStarts(p)
	if len(starts) == 0 || starts[0] != 0 {
		t.Fatalf("leaders must start at 0: %v", starts)
	}
	loop := p.MustLabel("loop")
	hasLoop := false
	for _, s := range starts {
		if s == loop {
			hasLoop = true
		}
	}
	if !hasLoop {
		t.Fatalf("branch target %d (loop) is not a leader: %v", loop, starts)
	}
	// Every PC maps into a block whose leader is <= PC.
	for pc := range p.Code {
		b := BlockOf(starts, pc)
		if b > pc {
			t.Fatalf("BlockOf(%d) = %d, beyond the PC", pc, b)
		}
	}
	if got := BlockOf(starts, loop); got != loop {
		t.Fatalf("BlockOf(leader) = %d, want %d", got, loop)
	}
	if name := BlockName(p, loop); name != "loop" {
		t.Fatalf("BlockName(loop leader) = %q", name)
	}
	if name := BlockName(p, 0); !strings.HasPrefix(name, "bb_") && p.Labels["start"] == 0 {
		t.Fatalf("unexpected block-0 name %q", name)
	}
}
