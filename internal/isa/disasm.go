package isa

import (
	"fmt"
	"strings"
)

// Disasm renders one instruction in a readable assembly syntax.
func Disasm(i *Inst) string {
	p := P(i.Op)
	src2 := func() string {
		if i.UseLit {
			return fmt.Sprintf("#%d", i.Lit)
		}
		return regName(i.Rb)
	}
	switch {
	case i.Op == OpHALT || i.Op == OpNOP:
		return p.Name
	case i.Op == OpSBOXSYNC:
		if i.Sel1 == SboxAll {
			return "sboxsync.all"
		}
		return fmt.Sprintf("sboxsync.%d", i.Sel1)
	case i.Op == OpSBOX:
		al := ""
		if i.Aliased {
			al = ".a"
		}
		return fmt.Sprintf("sbox.%d.%d%s %s, %s, %s",
			i.Sel1, i.Sel2, al, regName(i.Rb), regName(i.Ra), regName(i.Rc))
	case i.Op == OpXBOX:
		return fmt.Sprintf("xbox.%d %s, %s, %s",
			i.Sel1, regName(i.Ra), regName(i.Rb), regName(i.Rc))
	case p.Load:
		return fmt.Sprintf("%s %s, %d(%s)", p.Name, regName(i.Ra), i.Lit, regName(i.Rb))
	case p.Store:
		return fmt.Sprintf("%s %s, %d(%s)", p.Name, regName(i.Ra), i.Lit, regName(i.Rb))
	case i.Op == OpLDA || i.Op == OpLDAH:
		return fmt.Sprintf("%s %s, %d(%s)", p.Name, regName(i.Rc), i.Lit, regName(i.Rb))
	case i.Op == OpBR || i.Op == OpBSR:
		return fmt.Sprintf("%s @%d", p.Name, i.Lit)
	case i.Op == OpRET:
		return fmt.Sprintf("ret (%s)", regName(i.Rb))
	case p.CondBr:
		return fmt.Sprintf("%s %s, @%d", p.Name, regName(i.Ra), i.Lit)
	case i.Op == OpZEXTB || i.Op == OpZEXTW || i.Op == OpZEXTL || i.Op == OpSEXTL:
		return fmt.Sprintf("%s %s, %s", p.Name, regName(i.Ra), regName(i.Rc))
	default:
		return fmt.Sprintf("%s %s, %s, %s", p.Name, regName(i.Ra), src2(), regName(i.Rc))
	}
}

func regName(r Reg) string {
	switch r {
	case RZ:
		return "rz"
	case RGP:
		return "gp"
	case RSP:
		return "sp"
	case RLNK:
		return "ra"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Listing renders a whole program with labels and instruction indices.
func Listing(p *Program) string {
	byIdx := map[int][]string{}
	for name, idx := range p.Labels {
		byIdx[idx] = append(byIdx[idx], name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s: %d instructions, %d bytes rodata\n",
		p.Name, len(p.Code), len(p.Rodata))
	for i := range p.Code {
		for _, l := range byIdx[i] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "%5d:  %s\n", i, Disasm(&p.Code[i]))
	}
	return b.String()
}
