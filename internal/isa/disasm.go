package isa

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Disasm renders one instruction in a readable assembly syntax.
func Disasm(i *Inst) string {
	p := P(i.Op)
	src2 := func() string {
		if i.UseLit {
			return fmt.Sprintf("#%d", i.Lit)
		}
		return regName(i.Rb)
	}
	switch {
	case i.Op == OpHALT || i.Op == OpNOP:
		return p.Name
	case i.Op == OpSBOXSYNC:
		if i.Sel1 == SboxAll {
			return "sboxsync.all"
		}
		return fmt.Sprintf("sboxsync.%d", i.Sel1)
	case i.Op == OpSBOX:
		al := ""
		if i.Aliased {
			al = ".a"
		}
		return fmt.Sprintf("sbox.%d.%d%s %s, %s, %s",
			i.Sel1, i.Sel2, al, regName(i.Rb), regName(i.Ra), regName(i.Rc))
	case i.Op == OpXBOX:
		return fmt.Sprintf("xbox.%d %s, %s, %s",
			i.Sel1, regName(i.Ra), regName(i.Rb), regName(i.Rc))
	case p.Load:
		return fmt.Sprintf("%s %s, %d(%s)", p.Name, regName(i.Ra), i.Lit, regName(i.Rb))
	case p.Store:
		return fmt.Sprintf("%s %s, %d(%s)", p.Name, regName(i.Ra), i.Lit, regName(i.Rb))
	case i.Op == OpLDA || i.Op == OpLDAH:
		return fmt.Sprintf("%s %s, %d(%s)", p.Name, regName(i.Rc), i.Lit, regName(i.Rb))
	case i.Op == OpBR || i.Op == OpBSR:
		return fmt.Sprintf("%s @%d", p.Name, i.Lit)
	case i.Op == OpRET:
		return fmt.Sprintf("ret (%s)", regName(i.Rb))
	case p.CondBr:
		return fmt.Sprintf("%s %s, @%d", p.Name, regName(i.Ra), i.Lit)
	case i.Op == OpZEXTB || i.Op == OpZEXTW || i.Op == OpZEXTL || i.Op == OpSEXTL:
		return fmt.Sprintf("%s %s, %s", p.Name, regName(i.Ra), regName(i.Rc))
	default:
		return fmt.Sprintf("%s %s, %s, %s", p.Name, regName(i.Ra), src2(), regName(i.Rc))
	}
}

func regName(r Reg) string {
	switch r {
	case RZ:
		return "rz"
	case RGP:
		return "gp"
	case RSP:
		return "sp"
	case RLNK:
		return "ra"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Listing renders a whole program with labels and instruction indices.
func Listing(p *Program) string {
	var b strings.Builder
	ListingTo(&b, p, nil)
	return b.String()
}

// ListingTo writes the listing of a program to w. When annotate is
// non-nil, its result for each instruction index is inserted between the
// index and the disassembly — the shared formatter behind cmd/disasm
// (annotate == nil, whose output this function preserves byte for byte)
// and the profiler's annotated-disassembly view. Annotations should be
// fixed-width so the instruction column stays aligned.
func ListingTo(w io.Writer, p *Program, annotate func(idx int) string) {
	byIdx := map[int][]string{}
	for name, idx := range p.Labels {
		byIdx[idx] = append(byIdx[idx], name)
	}
	for _, ls := range byIdx {
		sort.Strings(ls)
	}
	fmt.Fprintf(w, "; program %s: %d instructions, %d bytes rodata\n",
		p.Name, len(p.Code), len(p.Rodata))
	for i := range p.Code {
		for _, l := range byIdx[i] {
			fmt.Fprintf(w, "%s:\n", l)
		}
		if annotate != nil {
			fmt.Fprintf(w, "%5d: %s  %s\n", i, annotate(i), Disasm(&p.Code[i]))
		} else {
			fmt.Fprintf(w, "%5d:  %s\n", i, Disasm(&p.Code[i]))
		}
	}
}

// BasicBlockStarts returns the sorted leader indices of the program's
// basic blocks: instruction 0, every branch target, and every
// fall-through successor of a control transfer. RET targets are dynamic
// and contribute no leader beyond the fall-through.
func BasicBlockStarts(p *Program) []int {
	leaders := map[int]bool{0: true}
	for i := range p.Code {
		in := &p.Code[i]
		if !P(in.Op).Branch {
			continue
		}
		if in.Op != OpRET {
			if t := int(in.Lit); t >= 0 && t < len(p.Code) {
				leaders[t] = true
			}
		}
		if i+1 < len(p.Code) {
			leaders[i+1] = true
		}
	}
	out := make([]int, 0, len(leaders))
	for i := range leaders {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// BlockOf returns the leader of the basic block containing idx, given the
// sorted leader list from BasicBlockStarts.
func BlockOf(starts []int, idx int) int {
	i := sort.SearchInts(starts, idx)
	if i < len(starts) && starts[i] == idx {
		return idx
	}
	if i == 0 {
		return 0
	}
	return starts[i-1]
}

// BlockName names a basic block by its leader: the program label at the
// leader when one exists (alphabetically first on ties), else bb_<leader>.
func BlockName(p *Program, leader int) string {
	var best string
	for name, idx := range p.Labels {
		if idx == leader && (best == "" || name < best) {
			best = name
		}
	}
	if best != "" {
		return best
	}
	return fmt.Sprintf("bb_%d", leader)
}
