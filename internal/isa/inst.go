package isa

// Dest returns the register written by i, or RZ if none. Loads write Ra
// (memory format); operate-format instructions (including SBOX and XBOX)
// write Rc.
func (i *Inst) Dest() Reg {
	p := P(i.Op)
	switch {
	case p.Load && i.Op != OpSBOX:
		return i.Ra
	case p.WritesC:
		return i.Rc
	case i.Op == OpBSR:
		return RLNK
	}
	return RZ
}

// Sources appends the registers read by i to dst and returns it. RZ is
// omitted (it is always ready and always zero).
func (i *Inst) Sources(dst []Reg) []Reg {
	p := P(i.Op)
	add := func(r Reg) {
		if r != RZ {
			dst = append(dst, r)
		}
	}
	if p.Load && i.Op != OpSBOX {
		add(i.Rb)
		return dst
	}
	if p.Store {
		add(i.Ra)
		add(i.Rb)
		return dst
	}
	if p.ReadsA {
		add(i.Ra)
	}
	if p.ReadsB && !i.UseLit {
		add(i.Rb)
	}
	if p.ReadsC {
		add(i.Rc)
	}
	return dst
}

// IsSboxLoad reports whether i is an SBOX table access.
func (i *Inst) IsSboxLoad() bool { return i.Op == OpSBOX }
