package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpProperties(t *testing.T) {
	if !P(OpLDQ).Load || P(OpLDQ).Size != 8 {
		t.Fatal("LDQ properties wrong")
	}
	if !P(OpSTB).Store || P(OpSTB).Size != 1 {
		t.Fatal("STB properties wrong")
	}
	if !P(OpBEQ).CondBr || !P(OpBEQ).Branch {
		t.Fatal("BEQ properties wrong")
	}
	if P(OpXBOX).Class != ClassPerm || P(OpMULMOD).Class != ClassMult {
		t.Fatal("crypto op classes wrong")
	}
	for op := OpLDQ; op < opMax; op++ {
		if P(op).Name == "" {
			t.Fatalf("opcode %d has no name", op)
		}
	}
}

func TestDestAndSources(t *testing.T) {
	ld := Inst{Op: OpLDL, Ra: R5, Rb: R6, Lit: 8}
	if ld.Dest() != R5 {
		t.Fatal("load dest must be Ra")
	}
	if src := ld.Sources(nil); len(src) != 1 || src[0] != R6 {
		t.Fatalf("load sources: %v", src)
	}
	st := Inst{Op: OpSTL, Ra: R5, Rb: R6}
	if st.Dest() != RZ {
		t.Fatal("store writes nothing")
	}
	if src := st.Sources(nil); len(src) != 2 {
		t.Fatalf("store sources: %v", src)
	}
	add := Inst{Op: OpADDQ, Ra: R1, Rb: R2, Rc: R3}
	if add.Dest() != R3 || len(add.Sources(nil)) != 2 {
		t.Fatal("operate format wrong")
	}
	addi := Inst{Op: OpADDQ, Ra: R1, UseLit: true, Lit: 5, Rc: R3}
	if len(addi.Sources(nil)) != 1 {
		t.Fatal("literal operand must not read Rb")
	}
	cmov := Inst{Op: OpCMOVEQ, Ra: R1, Rb: R2, Rc: R3}
	if len(cmov.Sources(nil)) != 3 {
		t.Fatal("CMOV reads the old destination")
	}
	rolx := Inst{Op: OpROLXL, Ra: R1, UseLit: true, Lit: 3, Rc: R3}
	if len(rolx.Sources(nil)) != 2 {
		t.Fatal("ROLX reads source and old destination")
	}
	// RZ never appears as a source or destination.
	z := Inst{Op: OpADDQ, Ra: RZ, Rb: RZ, Rc: RZ}
	if z.Dest() != RZ || len(z.Sources(nil)) != 0 {
		t.Fatal("RZ filtering broken")
	}
}

func TestBuilderLabels(t *testing.T) {
	b := NewBuilder("p", FeatRot)
	b.Label("start")
	b.BR("end")
	b.NOP()
	b.Label("end")
	b.HALT()
	p := b.Build()
	if p.MustLabel("end") != 2 || p.Code[0].Lit != 2 {
		t.Fatalf("label resolution: %+v", p.Code[0])
	}
}

func TestBuilderUndefinedLabelPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "undefined label") {
			t.Fatalf("expected undefined-label panic, got %v", r)
		}
	}()
	b := NewBuilder("p", FeatRot)
	b.BR("nowhere")
	b.Build()
}

func TestFeatureGating(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ROL without HWRotate must panic")
		}
	}()
	b := NewBuilder("p", FeatNoRot)
	b.ROLLI(R1, 3, R2)
}

func TestMacroExpansionCounts(t *testing.T) {
	// The paper's stated costs: constant rotate = 1/1/3 instructions at
	// opt/rot/norot; variable rotate = 1/1/4; S-box lookup = 1/3/3.
	count := func(feat Feature, emit func(b *Builder)) int {
		b := NewBuilder("c", feat)
		emit(b)
		return b.Len()
	}
	rotI := func(b *Builder) { b.RotL32I(R1, 5, R2, R3) }
	if n := count(FeatOpt, rotI); n != 1 {
		t.Errorf("opt const rotate: %d instructions", n)
	}
	if n := count(FeatNoRot, rotI); n != 3 {
		t.Errorf("norot const rotate: %d instructions (paper: 3)", n)
	}
	rotV := func(b *Builder) { b.RotL32V(R1, R2, R4, R5) }
	if n := count(FeatNoRot, rotV); n != 4 {
		t.Errorf("norot variable rotate: %d instructions (paper: 4)", n)
	}
	sbox := func(b *Builder) { b.SBoxLookup(0, 1, R1, R2, R3, R4, false) }
	if n := count(FeatOpt, sbox); n != 1 {
		t.Errorf("opt sbox: %d instructions (paper: 1)", n)
	}
	if n := count(FeatRot, sbox); n != 3 {
		t.Errorf("baseline sbox: %d instructions (paper: 3)", n)
	}
	xr := func(b *Builder) { b.XorRotL32I(R1, 5, R2, R3) }
	if n := count(FeatOpt, xr); n != 1 {
		t.Errorf("ROLX: %d instructions", n)
	}
	if n := count(FeatRot, xr); n != 2 {
		t.Errorf("rot rotate-xor: %d instructions", n)
	}
	mm := func(b *Builder) { b.MulMod16(R1, R2, R3, R4, R5, R6, R7) }
	if n := count(FeatOpt, mm); n != 1 {
		t.Errorf("MULMOD: %d instructions", n)
	}
}

func TestRodataPool(t *testing.T) {
	b := NewBuilder("p", FeatRot)
	off1 := b.Const64(0xdeadbeefcafebabe)
	off2 := b.Const64(0xdeadbeefcafebabe)
	if off1 != off2 {
		t.Fatal("pool must deduplicate")
	}
	off3 := b.Const64(42)
	if off3 == off1 {
		t.Fatal("distinct constants share an offset")
	}
	w := b.DataWords32([]uint32{1, 2, 3})
	if w%4 != 0 {
		t.Fatal("word data misaligned")
	}
}

func TestXboxMapPacking(t *testing.T) {
	prop := func(raw [8]uint8) bool {
		var bits [8]uint8
		for i, v := range raw {
			bits[i] = v & 63
		}
		m := XboxMap(bits)
		for j := uint(0); j < 8; j++ {
			if uint8(m>>(6*j))&63 != bits[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLiteralRangeChecked(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized operate literal must panic")
		}
	}()
	b := NewBuilder("p", FeatRot)
	b.ADDQI(R1, 256, R2)
}
