package isa

import (
	"encoding/binary"
	"fmt"
)

// Feature selects the instruction-set level a program is assembled for.
// The builder macros expand differently per level, mirroring the paper's
// three code versions: original without rotates, original with rotates,
// and fully optimized.
type Feature struct {
	// HWRotate enables the ROL/ROR rotate instructions. Without it,
	// rotates are synthesized from shifts and OR (3 instructions for a
	// constant amount, 4 for a variable amount).
	HWRotate bool
	// CryptoExt enables the full extension set: ROLX/RORX, MULMOD, SBOX,
	// SBOXSYNC and XBOX. Implies hardware rotates.
	CryptoExt bool
}

// The three kernel variants studied in the paper.
var (
	FeatNoRot = Feature{}
	FeatRot   = Feature{HWRotate: true}
	FeatOpt   = Feature{HWRotate: true, CryptoExt: true}
)

// ParseFeature resolves a kernel-variant name (norot, rot, opt) to its
// Feature level — the inverse of Feature.String.
func ParseFeature(name string) (Feature, error) {
	switch name {
	case "norot":
		return FeatNoRot, nil
	case "rot":
		return FeatRot, nil
	case "opt":
		return FeatOpt, nil
	}
	return Feature{}, fmt.Errorf("isa: unknown feature level %q (want norot, rot or opt)", name)
}

func (f Feature) String() string {
	switch f {
	case FeatNoRot:
		return "norot"
	case FeatRot:
		return "rot"
	case FeatOpt:
		return "opt"
	}
	return fmt.Sprintf("feature(%v,%v)", f.HWRotate, f.CryptoExt)
}

type fixup struct {
	inst  int
	label string
}

// Builder assembles an AXP64 program. Emit methods append instructions;
// Label marks positions; branch emitters reference labels which are
// resolved by Build. Macro methods (RotL32, SBoxXor, MulMod, ...) expand
// according to the builder's Feature level.
type Builder struct {
	Feat   Feature
	name   string
	code   []Inst
	labels map[string]int
	fixups []fixup
	rodata []byte
	pool   map[uint64]int64 // constant -> rodata offset
	class  *Class           // active class override
	err    error
}

// NewBuilder returns a Builder for a program with the given name and
// feature level.
func NewBuilder(name string, feat Feature) *Builder {
	return &Builder{
		Feat:   feat,
		name:   name,
		labels: make(map[string]int),
		pool:   make(map[uint64]int64),
	}
}

// Build resolves labels and returns the finished program.
func (b *Builder) Build() *Program {
	if b.err != nil {
		panic(b.err)
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			panic(fmt.Sprintf("program %s: undefined label %q", b.name, f.label))
		}
		b.code[f.inst].Lit = int64(target)
	}
	return &Program{Name: b.name, Code: b.code, Labels: b.labels, Rodata: b.rodata}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.code) }

// Label marks the next emitted instruction with name.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("program %s: duplicate label %q", b.name, name))
	}
	b.labels[name] = len(b.code)
}

// WithClass runs fn with all emitted instructions re-classified as c.
// Kernels use it to tag, e.g., the XORs of a synthesized permutation as
// ClassPerm for the Figure 7 operation breakdown.
func (b *Builder) WithClass(c Class, fn func()) {
	prev := b.class
	b.class = &c
	fn()
	b.class = prev
}

func (b *Builder) emit(i Inst) {
	if b.class != nil {
		i.Class = *b.class
	}
	b.code = append(b.code, i)
}

func (b *Builder) op3(op Op, ra, rb, rc Reg) {
	b.emit(Inst{Op: op, Ra: ra, Rb: rb, Rc: rc, Class: P(op).Class})
}

func (b *Builder) op3i(op Op, ra Reg, lit int64, rc Reg) {
	if lit < 0 || lit > 255 {
		panic(fmt.Sprintf("program %s: operate literal %d out of range [0,255] for %s", b.name, lit, op))
	}
	b.emit(Inst{Op: op, Ra: ra, UseLit: true, Lit: lit, Rc: rc, Class: P(op).Class})
}

// --- memory ---

func (b *Builder) mem(op Op, data Reg, disp int64, base Reg) {
	if disp < -32768 || disp > 32767 {
		panic(fmt.Sprintf("program %s: displacement %d out of range for %s", b.name, disp, op))
	}
	b.emit(Inst{Op: op, Ra: data, Rb: base, Lit: disp, Class: P(op).Class})
}

func (b *Builder) LDQ(dst Reg, disp int64, base Reg) { b.mem(OpLDQ, dst, disp, base) }
func (b *Builder) LDL(dst Reg, disp int64, base Reg) { b.mem(OpLDL, dst, disp, base) }
func (b *Builder) LDW(dst Reg, disp int64, base Reg) { b.mem(OpLDW, dst, disp, base) }
func (b *Builder) LDB(dst Reg, disp int64, base Reg) { b.mem(OpLDB, dst, disp, base) }
func (b *Builder) STQ(src Reg, disp int64, base Reg) { b.mem(OpSTQ, src, disp, base) }
func (b *Builder) STL(src Reg, disp int64, base Reg) { b.mem(OpSTL, src, disp, base) }
func (b *Builder) STW(src Reg, disp int64, base Reg) { b.mem(OpSTW, src, disp, base) }
func (b *Builder) STB(src Reg, disp int64, base Reg) { b.mem(OpSTB, src, disp, base) }

// LDA computes dst = base + disp (disp in [-32768, 32767]).
func (b *Builder) LDA(dst Reg, disp int64, base Reg) {
	if disp < -32768 || disp > 32767 {
		panic(fmt.Sprintf("program %s: LDA displacement %d out of range", b.name, disp))
	}
	b.emit(Inst{Op: OpLDA, Rb: base, Lit: disp, Rc: dst, Class: ClassArith})
}

// LDAH computes dst = base + disp*65536.
func (b *Builder) LDAH(dst Reg, disp int64, base Reg) {
	if disp < -32768 || disp > 32767 {
		panic(fmt.Sprintf("program %s: LDAH displacement %d out of range", b.name, disp))
	}
	b.emit(Inst{Op: OpLDAH, Rb: base, Lit: disp, Rc: dst, Class: ClassArith})
}

// --- operate: register and literal forms ---

func (b *Builder) ADDQ(ra, rb, rc Reg)           { b.op3(OpADDQ, ra, rb, rc) }
func (b *Builder) ADDQI(ra Reg, l int64, rc Reg) { b.op3i(OpADDQ, ra, l, rc) }
func (b *Builder) SUBQ(ra, rb, rc Reg)           { b.op3(OpSUBQ, ra, rb, rc) }
func (b *Builder) SUBQI(ra Reg, l int64, rc Reg) { b.op3i(OpSUBQ, ra, l, rc) }
func (b *Builder) ADDL(ra, rb, rc Reg)           { b.op3(OpADDL, ra, rb, rc) }
func (b *Builder) ADDLI(ra Reg, l int64, rc Reg) { b.op3i(OpADDL, ra, l, rc) }
func (b *Builder) SUBL(ra, rb, rc Reg)           { b.op3(OpSUBL, ra, rb, rc) }
func (b *Builder) SUBLI(ra Reg, l int64, rc Reg) { b.op3i(OpSUBL, ra, l, rc) }
func (b *Builder) S4ADDQ(ra, rb, rc Reg)         { b.op3(OpS4ADDQ, ra, rb, rc) }
func (b *Builder) S8ADDQ(ra, rb, rc Reg)         { b.op3(OpS8ADDQ, ra, rb, rc) }
func (b *Builder) MULQ(ra, rb, rc Reg)           { b.op3(OpMULQ, ra, rb, rc) }
func (b *Builder) MULL(ra, rb, rc Reg)           { b.op3(OpMULL, ra, rb, rc) }
func (b *Builder) UMULH(ra, rb, rc Reg)          { b.op3(OpUMULH, ra, rb, rc) }

func (b *Builder) CMPEQ(ra, rb, rc Reg)           { b.op3(OpCMPEQ, ra, rb, rc) }
func (b *Builder) CMPEQI(ra Reg, l int64, rc Reg) { b.op3i(OpCMPEQ, ra, l, rc) }
func (b *Builder) CMPULT(ra, rb, rc Reg)          { b.op3(OpCMPULT, ra, rb, rc) }
func (b *Builder) CMPULTI(ra Reg, l int64, rc Reg) {
	b.op3i(OpCMPULT, ra, l, rc)
}
func (b *Builder) CMPULE(ra, rb, rc Reg) { b.op3(OpCMPULE, ra, rb, rc) }
func (b *Builder) CMPLT(ra, rb, rc Reg)  { b.op3(OpCMPLT, ra, rb, rc) }
func (b *Builder) CMPLE(ra, rb, rc Reg)  { b.op3(OpCMPLE, ra, rb, rc) }

func (b *Builder) AND(ra, rb, rc Reg)            { b.op3(OpAND, ra, rb, rc) }
func (b *Builder) ANDI(ra Reg, l int64, rc Reg)  { b.op3i(OpAND, ra, l, rc) }
func (b *Builder) BIC(ra, rb, rc Reg)            { b.op3(OpBIC, ra, rb, rc) }
func (b *Builder) OR(ra, rb, rc Reg)             { b.op3(OpOR, ra, rb, rc) }
func (b *Builder) ORI(ra Reg, l int64, rc Reg)   { b.op3i(OpOR, ra, l, rc) }
func (b *Builder) ORNOT(ra, rb, rc Reg)          { b.op3(OpORNOT, ra, rb, rc) }
func (b *Builder) XOR(ra, rb, rc Reg)            { b.op3(OpXOR, ra, rb, rc) }
func (b *Builder) XORI(ra Reg, l int64, rc Reg)  { b.op3i(OpXOR, ra, l, rc) }
func (b *Builder) EQV(ra, rb, rc Reg)            { b.op3(OpEQV, ra, rb, rc) }
func (b *Builder) SLL(ra, rb, rc Reg)            { b.op3(OpSLL, ra, rb, rc) }
func (b *Builder) SLLI(ra Reg, l int64, rc Reg)  { b.op3i(OpSLL, ra, l, rc) }
func (b *Builder) SRL(ra, rb, rc Reg)            { b.op3(OpSRL, ra, rb, rc) }
func (b *Builder) SRLI(ra Reg, l int64, rc Reg)  { b.op3i(OpSRL, ra, l, rc) }
func (b *Builder) SRAI(ra Reg, l int64, rc Reg)  { b.op3i(OpSRA, ra, l, rc) }
func (b *Builder) SLLL(ra, rb, rc Reg)           { b.op3(OpSLLL, ra, rb, rc) }
func (b *Builder) SLLLI(ra Reg, l int64, rc Reg) { b.op3i(OpSLLL, ra, l, rc) }
func (b *Builder) SRLL(ra, rb, rc Reg)           { b.op3(OpSRLL, ra, rb, rc) }
func (b *Builder) SRLLI(ra Reg, l int64, rc Reg) { b.op3i(OpSRLL, ra, l, rc) }

// EXTBI extracts byte #n of ra into rc.
func (b *Builder) EXTBI(ra Reg, n int64, rc Reg) { b.op3i(OpEXTB, ra, n, rc) }

// EXTB extracts the byte of ra selected by the low 3 bits of rb.
func (b *Builder) EXTB(ra, rb, rc Reg)           { b.op3(OpEXTB, ra, rb, rc) }
func (b *Builder) INSBI(ra Reg, n int64, rc Reg) { b.op3i(OpINSB, ra, n, rc) }

func (b *Builder) un(op Op, ra, rc Reg) {
	b.emit(Inst{Op: op, Ra: ra, Rc: rc, Class: P(op).Class})
}

func (b *Builder) ZEXTB(ra, rc Reg) { b.un(OpZEXTB, ra, rc) }
func (b *Builder) ZEXTW(ra, rc Reg) { b.un(OpZEXTW, ra, rc) }
func (b *Builder) ZEXTL(ra, rc Reg) { b.un(OpZEXTL, ra, rc) }
func (b *Builder) SEXTL(ra, rc Reg) { b.un(OpSEXTL, ra, rc) }

func (b *Builder) CMOVEQ(ra, rb, rc Reg) { b.op3(OpCMOVEQ, ra, rb, rc) }
func (b *Builder) CMOVNE(ra, rb, rc Reg) { b.op3(OpCMOVNE, ra, rb, rc) }

// MOV copies ra to rc (assembles as OR ra, rz, rc).
func (b *Builder) MOV(ra, rc Reg) { b.op3(OpOR, ra, RZ, rc) }

// --- control ---

func (b *Builder) br(op Op, ra Reg, label string) {
	b.fixups = append(b.fixups, fixup{inst: len(b.code), label: label})
	b.emit(Inst{Op: op, Ra: ra, Class: ClassControl})
}

func (b *Builder) BR(label string)          { b.br(OpBR, RZ, label) }
func (b *Builder) BSR(label string)         { b.br(OpBSR, RZ, label) }
func (b *Builder) RET()                     { b.emit(Inst{Op: OpRET, Rb: RLNK, Class: ClassControl}) }
func (b *Builder) BEQ(ra Reg, label string) { b.br(OpBEQ, ra, label) }
func (b *Builder) BNE(ra Reg, label string) { b.br(OpBNE, ra, label) }
func (b *Builder) BLT(ra Reg, label string) { b.br(OpBLT, ra, label) }
func (b *Builder) BLE(ra Reg, label string) { b.br(OpBLE, ra, label) }
func (b *Builder) BGT(ra Reg, label string) { b.br(OpBGT, ra, label) }
func (b *Builder) BGE(ra Reg, label string) { b.br(OpBGE, ra, label) }
func (b *Builder) HALT()                    { b.emit(Inst{Op: OpHALT, Class: ClassControl}) }
func (b *Builder) NOP()                     { b.emit(Inst{Op: OpNOP, Class: ClassArith}) }

// --- crypto extension primitives (panic if the feature level lacks them) ---

func (b *Builder) needRot() {
	if !b.Feat.HWRotate {
		panic(fmt.Sprintf("program %s: rotate instruction used without HWRotate", b.name))
	}
}

func (b *Builder) needExt() {
	if !b.Feat.CryptoExt {
		panic(fmt.Sprintf("program %s: crypto extension used without CryptoExt", b.name))
	}
}

func (b *Builder) ROLL(ra, rb, rc Reg) { b.needRot(); b.op3(OpROLL, ra, rb, rc) }
func (b *Builder) RORL(ra, rb, rc Reg) { b.needRot(); b.op3(OpRORL, ra, rb, rc) }
func (b *Builder) ROLLI(ra Reg, l int64, rc Reg) {
	b.needRot()
	b.op3i(OpROLL, ra, l&31, rc)
}
func (b *Builder) RORLI(ra Reg, l int64, rc Reg) {
	b.needRot()
	b.op3i(OpRORL, ra, l&31, rc)
}
func (b *Builder) ROLQI(ra Reg, l int64, rc Reg) {
	b.needRot()
	b.op3i(OpROLQ, ra, l&63, rc)
}
func (b *Builder) RORQI(ra Reg, l int64, rc Reg) {
	b.needRot()
	b.op3i(OpRORQ, ra, l&63, rc)
}

// ROLXL computes rc = (ra <<< l) ^ rc (32-bit).
func (b *Builder) ROLXL(ra Reg, l int64, rc Reg) {
	b.needExt()
	b.emit(Inst{Op: OpROLXL, Ra: ra, UseLit: true, Lit: l & 31, Rc: rc, Class: ClassRotate})
}

// RORXL computes rc = (ra >>> l) ^ rc (32-bit).
func (b *Builder) RORXL(ra Reg, l int64, rc Reg) {
	b.needExt()
	b.emit(Inst{Op: OpRORXL, Ra: ra, UseLit: true, Lit: l & 31, Rc: rc, Class: ClassRotate})
}

// MULMODR computes rc = ra (*) rb mod 2^16+1 in the IDEA convention.
func (b *Builder) MULMODR(ra, rb, rc Reg) { b.needExt(); b.op3(OpMULMOD, ra, rb, rc) }

// SBOX emits the S-box lookup instruction: rc = table[byte #byteSel of idx].
func (b *Builder) SBOX(tbl, byteSel int, base, idx, rc Reg, aliased bool) {
	b.needExt()
	if tbl < 0 || tbl > 15 || byteSel < 0 || byteSel > 7 {
		panic(fmt.Sprintf("program %s: SBOX selectors out of range (%d,%d)", b.name, tbl, byteSel))
	}
	cl := ClassSubst
	if b.class != nil {
		cl = *b.class
	}
	b.emit(Inst{Op: OpSBOX, Ra: idx, Rb: base, Rc: rc,
		Sel1: uint8(tbl), Sel2: uint8(byteSel), Aliased: aliased, Class: cl})
}

// SBOXSYNC publishes S-box stores; tbl may be SboxAll.
func (b *Builder) SBOXSYNC(tbl int) {
	b.needExt()
	b.emit(Inst{Op: OpSBOXSYNC, Sel1: uint8(tbl), Class: ClassSubst})
}

// XBOX emits the partial-permutation instruction writing byte #dstByte of rc.
func (b *Builder) XBOX(dstByte int, src, pmap, rc Reg) {
	b.needExt()
	if dstByte < 0 || dstByte > 7 {
		panic(fmt.Sprintf("program %s: XBOX byte %d out of range", b.name, dstByte))
	}
	b.emit(Inst{Op: OpXBOX, Ra: src, Rb: pmap, Rc: rc, Sel1: uint8(dstByte), Class: ClassPerm})
}

// --- rodata / constants ---

// Const64 interns v in the program's read-only data segment and returns its
// RGP-relative offset.
func (b *Builder) Const64(v uint64) int64 {
	if off, ok := b.pool[v]; ok {
		return off
	}
	for len(b.rodata)%8 != 0 {
		b.rodata = append(b.rodata, 0)
	}
	off := int64(len(b.rodata))
	b.rodata = binary.LittleEndian.AppendUint64(b.rodata, v)
	b.pool[v] = off
	return off
}

// DataWords32 appends a static 32-bit word table to the program rodata
// (4-byte aligned) and returns its RGP-relative offset.
func (b *Builder) DataWords32(words []uint32) int64 {
	for len(b.rodata)%4 != 0 {
		b.rodata = append(b.rodata, 0)
	}
	off := int64(len(b.rodata))
	for _, w := range words {
		b.rodata = binary.LittleEndian.AppendUint32(b.rodata, w)
	}
	return off
}

// DataBytes appends raw bytes to the program rodata and returns the
// RGP-relative offset.
func (b *Builder) DataBytes(p []byte) int64 {
	off := int64(len(b.rodata))
	b.rodata = append(b.rodata, p...)
	return off
}

// LoadConst64 loads the 64-bit constant v into dst via the literal pool.
func (b *Builder) LoadConst64(dst Reg, v uint64) {
	off := b.Const64(v)
	if off > 32767 {
		panic(fmt.Sprintf("program %s: rodata pool overflow", b.name))
	}
	b.LDQ(dst, off, RGP)
}

// LoadImm materializes an immediate into dst using the cheapest encoding:
// one LDA, an LDAH/LDA pair, or a pool load.
func (b *Builder) LoadImm(dst Reg, v int64) {
	if v >= -32768 && v <= 32767 {
		b.LDA(dst, v, RZ)
		return
	}
	lo := int64(int16(v))
	hi := (v - lo) >> 16
	if hi >= -32768 && hi <= 32767 && hi<<16+lo == v {
		b.LDAH(dst, hi, RZ)
		if lo != 0 {
			b.LDA(dst, lo, dst)
		}
		return
	}
	b.LoadConst64(dst, uint64(v))
}

// LoadImm32 materializes a 32-bit constant zero-extended into dst.
func (b *Builder) LoadImm32(dst Reg, v uint32) {
	if v <= 32767 {
		b.LDA(dst, int64(v), RZ)
		return
	}
	s := int64(int32(v))
	if s >= 0 {
		b.LoadImm(dst, s)
		return
	}
	// Negative when sign-extended: build then zero-extend, or pool it.
	b.LoadConst64(dst, uint64(v))
}

// --- macros ---

// RotL32I sets dst = src <<< k (32-bit, k constant). Uses ROL when
// available, otherwise the paper's 3-instruction shift synthesis
// (2 cycles). src and dst must differ in the synthesized form; tmp must
// differ from src.
func (b *Builder) RotL32I(src Reg, k int64, dst, tmp Reg) {
	k &= 31
	if b.Feat.HWRotate {
		b.ROLLI(src, k, dst)
		return
	}
	if k == 0 {
		b.MOV(src, dst)
		return
	}
	if tmp == src || tmp == dst {
		panic(fmt.Sprintf("program %s: RotL32I synthesis needs a distinct tmp", b.name))
	}
	b.WithClass(ClassRotate, func() {
		b.SLLLI(src, k, tmp)
		b.SRLLI(src, 32-k, dst) // safe when dst == src: single instruction
		b.OR(dst, tmp, dst)
	})
}

// RotR32I sets dst = src >>> k.
func (b *Builder) RotR32I(src Reg, k int64, dst, tmp Reg) {
	k &= 31
	if b.Feat.HWRotate {
		b.RORLI(src, k, dst)
		return
	}
	b.RotL32I(src, (32-k)&31, dst, tmp)
}

// RotL32V sets dst = src <<< amt (32-bit, register amount). Uses ROL when
// available, otherwise the paper's 4-instruction synthesis (3 cycles):
// the complement amount is computed with SUBL, then two shifts and an OR.
// dst must differ from src and amt in the synthesized form.
func (b *Builder) RotL32V(src, amt Reg, dst, tmp Reg) {
	if b.Feat.HWRotate {
		b.ROLL(src, amt, dst)
		return
	}
	if dst == src || dst == amt || tmp == src || tmp == amt || tmp == dst {
		panic(fmt.Sprintf("program %s: RotL32V register conflict", b.name))
	}
	b.WithClass(ClassRotate, func() {
		b.SUBL(RZ, amt, tmp) // -amt; SRLL masks the amount to mod 32
		b.SRLL(src, tmp, tmp)
		b.SLLL(src, amt, dst)
		b.OR(dst, tmp, dst)
	})
}

// RotR32V sets dst = src >>> amt (32-bit, register amount).
func (b *Builder) RotR32V(src, amt Reg, dst, tmp Reg) {
	if b.Feat.HWRotate {
		b.RORL(src, amt, dst)
		return
	}
	if dst == src || dst == amt || tmp == src || tmp == amt || tmp == dst {
		panic(fmt.Sprintf("program %s: RotR32V register conflict", b.name))
	}
	b.WithClass(ClassRotate, func() {
		b.SUBL(RZ, amt, tmp)
		b.SLLL(src, tmp, tmp)
		b.SRLL(src, amt, dst)
		b.OR(dst, tmp, dst)
	})
}

// XorRotL32I sets acc ^= (src <<< k). One ROLX instruction at the full
// extension level, ROL+XOR with hardware rotates, and otherwise four
// instructions that fold the two rotate halves into the accumulator
// separately (acc ^= src<<k; acc ^= src>>(32-k)). tmp must differ from acc
// and src.
func (b *Builder) XorRotL32I(src Reg, k int64, acc, tmp Reg) {
	k &= 31
	if b.Feat.CryptoExt {
		b.ROLXL(src, k, acc)
		return
	}
	if b.Feat.HWRotate {
		b.ROLLI(src, k, tmp)
		b.WithClass(ClassRotate, func() { b.XOR(acc, tmp, acc) })
		return
	}
	if k == 0 {
		b.WithClass(ClassRotate, func() { b.XOR(acc, src, acc) })
		return
	}
	if tmp == acc || tmp == src {
		panic(fmt.Sprintf("program %s: XorRotL32I register conflict", b.name))
	}
	b.WithClass(ClassRotate, func() {
		b.SLLLI(src, k, tmp)
		b.XOR(acc, tmp, acc)
		b.SRLLI(src, 32-k, tmp)
		b.XOR(acc, tmp, acc)
	})
}

// XorRotR32I sets acc ^= (src >>> k); see XorRotL32I.
func (b *Builder) XorRotR32I(src Reg, k int64, acc, tmp Reg) {
	b.XorRotL32I(src, (32-k)&31, acc, tmp)
}

// SBoxLookup loads dst = table[byte #byteSel of idx] where table is a
// 256-entry, 1KB-aligned table of 32-bit words based at base. With the
// extensions this is one 2-cycle SBOX; without, the paper's 3-instruction
// load sequence (EXTB, S4ADDQ, LDL; 5 cycles). tmp must differ from base
// and idx.
func (b *Builder) SBoxLookup(tbl, byteSel int, base, idx, dst, tmp Reg, aliased bool) {
	if b.Feat.CryptoExt {
		b.SBOX(tbl, byteSel, base, idx, dst, aliased)
		return
	}
	b.WithClass(ClassSubst, func() {
		b.EXTBI(idx, int64(byteSel), tmp)
		b.S4ADDQ(tmp, base, tmp)
		b.LDL(dst, 0, tmp)
	})
}

// SBoxXor sets acc ^= table[byte #byteSel of idx]; see SBoxLookup.
// tmp1 receives the loaded value and must differ from acc.
func (b *Builder) SBoxXor(tbl, byteSel int, base, idx, acc, tmp1 Reg) {
	b.SBoxLookup(tbl, byteSel, base, idx, tmp1, tmp1, false)
	b.WithClass(ClassSubst, func() { b.XOR(acc, tmp1, acc) })
}

// MulMod16 sets dst = a (*) bsrc, IDEA multiplication modulo 2^16+1 where a
// 16-bit zero denotes 2^16. With the extensions this is one 4-cycle MULMOD.
// Otherwise it expands to the branch-free low-high decomposition
// (Lai [18]) with CMOV-based zero-operand handling:
//
//	t  = a*b; r = lo16(t) - hi16(t) + (lo<hi)
//	if a == 0 { r = 1 - b }; if b == 0 { r = 1 - a }
//
// a and bsrc must already be canonical 16-bit values. one must hold the
// constant 1. t1..t3 are scratch and must be distinct from a, bsrc, one
// and each other; dst may alias a or bsrc.
func (b *Builder) MulMod16(a, bsrc, dst, one, t1, t2, t3 Reg) {
	if b.Feat.CryptoExt {
		b.MULMODR(a, bsrc, dst)
		return
	}
	for _, t := range []Reg{t1, t2, t3} {
		if t == a || t == bsrc || t == one {
			panic(fmt.Sprintf("program %s: MulMod16 scratch aliases an input", b.name))
		}
	}
	b.WithClass(ClassMult, func() {
		b.MULL(a, bsrc, t1)   // 32-bit product
		b.SRLLI(t1, 16, t2)   // hi
		b.ZEXTW(t1, t1)       // lo
		b.CMPULT(t1, t2, t3)  // lo < hi
		b.SUBL(t1, t2, t1)    // lo - hi
		b.ADDL(t1, t3, t1)    // + carry
		b.ZEXTW(t1, t1)       // canonical 16-bit
		b.SUBL(one, bsrc, t2) // 1 - b
		b.ZEXTW(t2, t2)
		b.CMOVEQ(a, t2, t1) // a == 0
		b.SUBL(one, a, t2)  // 1 - a
		b.ZEXTW(t2, t2)
		b.CMOVEQ(bsrc, t2, t1) // b == 0
		b.MOV(t1, dst)
	})
}

// XboxMap packs eight 6-bit source bit indices (destination bit j of the
// selected byte takes source bit bits[j]) into an XBOX permutation-map
// register value.
func XboxMap(bits [8]uint8) uint64 {
	var m uint64
	for j, idx := range bits {
		if idx > 63 {
			panic("XboxMap: bit index out of range")
		}
		m |= uint64(idx) << (6 * j)
	}
	return m
}
