package kernels

import (
	"fmt"

	"cryptoarch/internal/ciphers/rijndael"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

// Rijndael (AES-128) context layout. The four T-tables and the S-box are
// key-independent static data (present for both full-context and
// setup-only runs); only the 44 round-key words are key material.
const (
	aesTe0    = 0
	aesTe1    = 1024
	aesTe2    = 2048
	aesTe3    = 3072
	aesSbox   = 4096 // 256 x 32-bit zero-extended S-box entries
	aesRK     = 5120 // 44 words
	aesIV     = 5296 // 16 bytes
	aesKey    = 5312 // 16 bytes
	aesCtxLen = 5328
)

func init() {
	register(&Kernel{
		Name:        "rijndael",
		BlockBytes:  16,
		Build:       buildRijndael,
		BuildDec:    buildRijndaelDec,
		BuildSetup:  buildRijndaelSetup,
		InitCtx:     initRijndaelCtx,
		InitDecCtx:  initRijndaelDecCtx,
		InitKeyOnly: initRijndaelKey,
		CtxBytes:    aesCtxLen,
		KeyBytes:    16,
		SetupOff:    aesRK,
		SetupLen:    44 * 4,
		IVOff:       aesIV,
	})
}

func initRijndaelKey(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if len(key) != 16 {
		return fmt.Errorf("rijndael kernel: key must be 16 bytes, got %d", len(key))
	}
	te := rijndael.Tables()
	for t := 0; t < 4; t++ {
		mem.WriteUint32s(ctx+uint64(1024*t), te[t][:])
	}
	sb := rijndael.Sbox()
	words := make([]uint32, 256)
	for i, v := range sb {
		words[i] = uint32(v)
	}
	mem.WriteUint32s(ctx+aesSbox, words)
	mem.WriteBytes(ctx+aesKey, key)
	if iv != nil {
		mem.WriteBytes(ctx+aesIV, iv)
	}
	return nil
}

func initRijndaelCtx(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if err := initRijndaelKey(mem, ctx, key, iv); err != nil {
		return err
	}
	r, err := rijndael.New(key)
	if err != nil {
		return err
	}
	mem.WriteUint32s(ctx+aesRK, r.RoundKeys())
	return nil
}

// initRijndaelDecCtx writes the equivalent-inverse-cipher context: the
// same layout as encryption but with the Td tables, the inverse S-box and
// the InvMixColumns-adjusted round keys.
func initRijndaelDecCtx(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if len(key) != 16 {
		return fmt.Errorf("rijndael kernel: key must be 16 bytes, got %d", len(key))
	}
	td := rijndael.DecTables()
	for t := 0; t < 4; t++ {
		mem.WriteUint32s(ctx+uint64(1024*t), td[t][:])
	}
	is := rijndael.InvSbox()
	words := make([]uint32, 256)
	for i, v := range is {
		words[i] = uint32(v)
	}
	mem.WriteUint32s(ctx+aesSbox, words)
	r, err := rijndael.New(key)
	if err != nil {
		return err
	}
	mem.WriteUint32s(ctx+aesRK, r.DecRoundKeys())
	mem.WriteBytes(ctx+aesKey, key)
	if iv != nil {
		mem.WriteBytes(ctx+aesIV, iv)
	}
	return nil
}

// buildRijndaelDec mirrors the encryption kernel with the inverse
// ShiftRows byte sourcing (word j takes lanes from j, j+3, j+2, j+1) and
// CBC unchaining.
func buildRijndaelDec(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("rijndael-dec-"+feat.String(), feat)
	td := [4]isa.Reg{isa.R4, isa.R5, isa.R6, isa.R7}
	sb := isa.R8
	s := [4]isa.Reg{isa.R9, isa.R10, isa.R11, isa.R12}
	u := [4]isa.Reg{isa.R13, isa.R14, isa.R15, isa.R22}
	iv := [4]isa.Reg{isa.R23, isa.R24, isa.R25, isa.R27}
	acc, t, rk := isa.R0, isa.R1, isa.R2

	for i, r := range td {
		b.LDA(r, int64(1024*i), isa.RA3)
	}
	b.LDA(sb, aesSbox, isa.RA3)
	b.LDA(rk, aesRK, isa.RA3)
	for i, r := range iv {
		b.LDL(r, aesIV+int64(4*i), isa.RA3)
	}
	b.BEQ(isa.RA2, "done")

	b.Label("loop")
	for i := 0; i < 4; i++ {
		b.LDL(s[i], int64(4*i), isa.RA0)
		b.LDL(t, int64(4*i), rk)
		b.XOR(s[i], t, s[i])
	}
	cur, nxt := s, u
	for round := 1; round < 10; round++ {
		for w := 0; w < 4; w++ {
			b.SBoxLookup(0, 0, td[0], cur[w], acc, acc, false)
			b.SBoxLookup(1, 1, td[1], cur[(w+3)%4], t, t, false)
			b.XOR(acc, t, acc)
			b.SBoxLookup(2, 2, td[2], cur[(w+2)%4], t, t, false)
			b.XOR(acc, t, acc)
			b.SBoxLookup(3, 3, td[3], cur[(w+1)%4], t, t, false)
			b.XOR(acc, t, acc)
			b.LDL(t, int64(16*round+4*w), rk)
			b.XOR(acc, t, nxt[w])
		}
		cur, nxt = nxt, cur
	}
	// Final round: inverse S-box, inverse ShiftRows, last round key, then
	// the CBC unchain; the IV becomes this ciphertext block.
	for w := 0; w < 4; w++ {
		b.SBoxLookup(4, 0, sb, cur[w], acc, acc, false)
		b.SBoxLookup(4, 1, sb, cur[(w+3)%4], t, t, false)
		b.SLLLI(t, 8, t)
		b.OR(acc, t, acc)
		b.SBoxLookup(4, 2, sb, cur[(w+2)%4], t, t, false)
		b.SLLLI(t, 16, t)
		b.OR(acc, t, acc)
		b.SBoxLookup(4, 3, sb, cur[(w+1)%4], t, t, false)
		b.SLLLI(t, 24, t)
		b.OR(acc, t, acc)
		b.LDL(t, int64(160+4*w), rk)
		b.XOR(acc, t, acc)
		b.XOR(acc, iv[w], acc)
		b.STL(acc, int64(4*w), isa.RA1)
		b.LDL(iv[w], int64(4*w), isa.RA0)
	}

	b.ADDQI(isa.RA0, 16, isa.RA0)
	b.ADDQI(isa.RA1, 16, isa.RA1)
	b.SUBQI(isa.RA2, 16, isa.RA2)
	b.BGT(isa.RA2, "loop")

	b.Label("done")
	for i, r := range iv {
		b.STL(r, aesIV+int64(4*i), isa.RA3)
	}
	b.HALT()
	return b.Build()
}

func buildRijndael(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("rijndael-"+feat.String(), feat)
	// Register plan.
	te := [4]isa.Reg{isa.R4, isa.R5, isa.R6, isa.R7}
	sb := isa.R8
	s := [4]isa.Reg{isa.R9, isa.R10, isa.R11, isa.R12}  // state
	u := [4]isa.Reg{isa.R13, isa.R14, isa.R15, isa.R22} // next state
	iv := [4]isa.Reg{isa.R23, isa.R24, isa.R25, isa.R27}
	acc, t, rk := isa.R0, isa.R1, isa.R2

	for i, r := range te {
		b.LDA(r, int64(1024*i), isa.RA3)
	}
	b.LDA(sb, aesSbox, isa.RA3)
	b.LDA(rk, aesRK, isa.RA3)
	for i, r := range iv {
		b.LDL(r, aesIV+int64(4*i), isa.RA3)
	}
	b.BEQ(isa.RA2, "done")

	b.Label("loop")
	// Load plaintext, fold in the IV (CBC) and round key 0.
	for i := 0; i < 4; i++ {
		b.LDL(s[i], int64(4*i), isa.RA0)
		b.XOR(s[i], iv[i], s[i])
		b.LDL(t, int64(4*i), rk)
		b.XOR(s[i], t, s[i])
	}

	// Nine T-table rounds. Roles alternate between s and u.
	cur, nxt := s, u
	for round := 1; round < 10; round++ {
		for w := 0; w < 4; w++ {
			b.SBoxLookup(0, 0, te[0], cur[w], acc, acc, false)
			b.SBoxLookup(1, 1, te[1], cur[(w+1)%4], t, t, false)
			b.XOR(acc, t, acc)
			b.SBoxLookup(2, 2, te[2], cur[(w+2)%4], t, t, false)
			b.XOR(acc, t, acc)
			b.SBoxLookup(3, 3, te[3], cur[(w+3)%4], t, t, false)
			b.XOR(acc, t, acc)
			b.LDL(t, int64(16*round+4*w), rk)
			b.XOR(acc, t, nxt[w])
		}
		cur, nxt = nxt, cur
	}

	// Final round: S-box, ShiftRows, round key; result becomes the new IV
	// and the stored ciphertext.
	for w := 0; w < 4; w++ {
		// Byte lanes 0..3 come from words w, w+1, w+2, w+3.
		b.SBoxLookup(4, 0, sb, cur[w], acc, acc, false)
		b.SBoxLookup(4, 1, sb, cur[(w+1)%4], t, t, false)
		b.SLLLI(t, 8, t)
		b.OR(acc, t, acc)
		b.SBoxLookup(4, 2, sb, cur[(w+2)%4], t, t, false)
		b.SLLLI(t, 16, t)
		b.OR(acc, t, acc)
		b.SBoxLookup(4, 3, sb, cur[(w+3)%4], t, t, false)
		b.SLLLI(t, 24, t)
		b.OR(acc, t, acc)
		b.LDL(t, int64(160+4*w), rk)
		b.XOR(acc, t, iv[w])
		b.STL(iv[w], int64(4*w), isa.RA1)
	}

	b.ADDQI(isa.RA0, 16, isa.RA0)
	b.ADDQI(isa.RA1, 16, isa.RA1)
	b.SUBQI(isa.RA2, 16, isa.RA2)
	b.BGT(isa.RA2, "loop")

	b.Label("done")
	for i, r := range iv {
		b.STL(r, aesIV+int64(4*i), isa.RA3)
	}
	b.HALT()
	return b.Build()
}

// buildRijndaelSetup expands the 16-byte key into 44 round-key words using
// the S-box table (SubWord), RotWord and the round constants.
func buildRijndaelSetup(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("rijndael-setup-"+feat.String(), feat)
	sb, rk := isa.R8, isa.R2
	tcur, t, t2, acc := isa.R9, isa.R1, isa.R10, isa.R0
	rcon, cnt, i4 := isa.R11, isa.R12, isa.R13
	prev4 := isa.R14
	x1b := isa.R15

	b.LDA(sb, aesSbox, isa.RA3)
	b.LDA(rk, aesRK, isa.RA3)
	// rk[0..3] = raw key words.
	for i := 0; i < 4; i++ {
		b.LDL(t, aesKey+int64(4*i), isa.RA3)
		b.STL(t, int64(4*i), rk)
	}
	b.LDL(tcur, aesKey+12, isa.RA3) // t = rk[3]
	b.LDA(rcon, 1, isa.RZ)
	b.LoadImm32(x1b, 0x11b)
	b.LoadImm(cnt, 40)
	b.LDA(i4, 16, rk) // address of rk[i]
	b.LDA(prev4, 0, rk)

	b.Label("expand")
	// If i % 4 == 0: t = SubWord(RotWord(t)) ^ rcon; rcon = xtime(rcon).
	// i4 is a byte address; (i4 - rk) % 16 == 0 detects word group starts.
	b.SUBQ(i4, rk, t2)
	b.ANDI(t2, 15, t2)
	b.BNE(t2, "noRot")
	// RotWord in the little-endian layout: t = t>>8 | t<<24.
	b.SRLLI(tcur, 8, t2)
	b.SLLLI(tcur, 24, t)
	b.OR(t2, t, tcur)
	// SubWord: four S-box lookups reassembled.
	b.SBoxLookup(4, 0, sb, tcur, acc, acc, false)
	b.SBoxLookup(4, 1, sb, tcur, t, t, false)
	b.SLLLI(t, 8, t)
	b.OR(acc, t, acc)
	b.SBoxLookup(4, 2, sb, tcur, t, t, false)
	b.SLLLI(t, 16, t)
	b.OR(acc, t, acc)
	b.SBoxLookup(4, 3, sb, tcur, t, t, false)
	b.SLLLI(t, 24, t)
	b.OR(acc, t, tcur)
	b.XOR(tcur, rcon, tcur)
	// rcon = xtime(rcon) in GF(2^8).
	b.ADDL(rcon, rcon, rcon)
	b.SRLLI(rcon, 8, t)
	b.BEQ(t, "noRed")
	b.XOR(rcon, x1b, rcon)
	b.ZEXTB(rcon, rcon)
	b.Label("noRed")
	b.Label("noRot")
	// rk[i] = rk[i-4] ^ t.
	b.LDL(t, 0, prev4)
	b.XOR(t, tcur, tcur)
	b.STL(tcur, 0, i4)
	b.ADDQI(i4, 4, i4)
	b.ADDQI(prev4, 4, prev4)
	b.SUBQI(cnt, 1, cnt)
	b.BGT(cnt, "expand")
	if feat.CryptoExt {
		b.SBOXSYNC(isa.SboxAll)
	}
	b.HALT()
	return b.Build()
}
