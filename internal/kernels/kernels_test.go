package kernels

import (
	"bytes"
	"math/rand"
	"testing"

	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("expected 8 kernels, got %v", names)
	}
	for _, n := range names {
		k, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if k.Build == nil || k.InitCtx == nil || k.InitKeyOnly == nil || k.BuildSetup == nil {
			t.Errorf("%s: incomplete kernel registration", n)
		}
		if k.CtxBytes <= 0 || k.KeyBytes <= 0 || k.SetupLen <= 0 {
			t.Errorf("%s: missing sizes", n)
		}
	}
}

// TestKernelSessionChaining verifies that running a kernel twice over two
// half-sessions produces the same ciphertext as one whole session — the
// context carries the CBC state (or RC4 state) across calls, exactly how a
// server encrypts a connection.
func TestKernelSessionChaining(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, name := range Names() {
		k, _ := Get(name)
		unit := max(k.BlockBytes, 8)
		total := 16 * unit
		key := make([]byte, k.KeyBytes)
		rng.Read(key)
		var iv []byte
		if k.BlockBytes > 1 {
			iv = make([]byte, k.BlockBytes)
			rng.Read(iv)
		}
		pt := make([]byte, total)
		rng.Read(pt)

		m, mem, err := NewRun(k, isa.FeatOpt, key, iv, pt)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(nil)
		whole := mem.ReadBytes(OutAddr, total)

		// Two halves against a fresh context, reusing the same memory
		// arena and program between calls.
		mem2 := simmem.New(0)
		if err := k.InitCtx(mem2, CtxAddr, key, iv); err != nil {
			t.Fatal(err)
		}
		mem2.WriteBytes(InAddr, pt)
		prog := k.Build(isa.FeatOpt)
		for half := 0; half < 2; half++ {
			m2 := emu.New(prog, mem2, RodataAddr)
			off := uint64(half * total / 2)
			m2.SetArgs(InAddr+off, OutAddr+off, uint64(total/2), CtxAddr)
			m2.Run(nil)
		}
		split := mem2.ReadBytes(OutAddr, total)
		if !bytes.Equal(whole, split) {
			t.Errorf("%s: split session diverges from whole session", name)
		}
	}
}

// TestOperationMixShape checks the Figure 7 class structure: IDEA and RC6
// are multiply-heavy, the substitution ciphers S-box heavy, and only 3DES
// performs general permutations.
func TestOperationMixShape(t *testing.T) {
	counts := func(name string) (frac map[isa.Class]float64) {
		k, _ := Get(name)
		key := make([]byte, k.KeyBytes)
		iv := make([]byte, k.BlockBytes)
		if k.BlockBytes == 1 {
			iv = nil
		}
		pt := make([]byte, 64*max(k.BlockBytes, 8))
		m, _, err := NewRun(k, isa.FeatRot, key, iv, pt)
		if err != nil {
			t.Fatal(err)
		}
		var c [isa.NumClasses]uint64
		var total uint64
		m.Run(func(r *emu.Rec) { c[r.Inst.Class]++; total++ })
		frac = map[isa.Class]float64{}
		for cl := isa.Class(0); cl < isa.NumClasses; cl++ {
			frac[cl] = float64(c[cl]) / float64(total)
		}
		return frac
	}
	for _, name := range []string{"idea", "rc6"} {
		if f := counts(name); f[isa.ClassMult] < 0.05 {
			t.Errorf("%s: expected multiply-heavy kernel, got %.3f", name, f[isa.ClassMult])
		}
	}
	for _, name := range []string{"blowfish", "3des", "rijndael", "twofish"} {
		if f := counts(name); f[isa.ClassSubst] < 0.25 {
			t.Errorf("%s: expected substitution-heavy kernel, got %.3f", name, f[isa.ClassSubst])
		}
	}
	for _, name := range Names() {
		f := counts(name)
		if name == "3des" {
			if f[isa.ClassPerm] == 0 {
				t.Error("3des: expected permutation work")
			}
		} else if f[isa.ClassPerm] > 0 {
			t.Errorf("%s: unexpected permutation class work", name)
		}
	}
}

// TestProgramsAreReasonablySized guards against macro blowups: kernels
// must stay within an I-cache-friendly footprint.
func TestProgramsAreReasonablySized(t *testing.T) {
	for _, name := range Names() {
		k, _ := Get(name)
		for _, feat := range allFeats {
			p := k.Build(feat)
			if len(p.Code) == 0 || len(p.Code) > 8192 {
				t.Errorf("%s/%s: %d instructions", name, feat, len(p.Code))
			}
			s := k.BuildSetup(feat)
			if len(s.Code) == 0 || len(s.Code) > 8192 {
				t.Errorf("%s-setup/%s: %d instructions", name, feat, len(s.Code))
			}
		}
	}
}

// TestRC4StateAdvances checks the stream kernel's persistent i/j state.
func TestRC4StateAdvances(t *testing.T) {
	k, _ := Get("rc4")
	key := make([]byte, 16)
	pt := make([]byte, 100)
	m, mem, err := NewRun(k, isa.FeatOpt, key, nil, pt)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(nil)
	i := mem.Load(CtxAddr+rc4I, 4)
	if i != 100 {
		t.Fatalf("i after 100 bytes = %d, want 100", i)
	}
}
