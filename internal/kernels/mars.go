package kernels

import (
	"fmt"

	"cryptoarch/internal/ciphers/mars"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

// MARS context layout: the 512-word S-box spans two 1KB-aligned
// architectural tables (S0, S1); the core E-function's 9-bit lookup is
// striped across them and selected by bit 8 of the index, as the paper
// suggests for larger S-boxes.
const (
	marsS0     = 0    // S[0..255]
	marsS1     = 1024 // S[256..511]
	marsK      = 2048 // 40 expanded key words
	marsIV     = 2208
	marsKey    = 2224
	marsT      = 2240 // 15-word key-expansion scratch
	marsCtxLen = 2304
)

func init() {
	register(&Kernel{
		Name:        "mars",
		BlockBytes:  16,
		Build:       buildMARS,
		BuildDec:    buildMARSDec,
		BuildSetup:  buildMARSSetup,
		InitCtx:     initMARSCtx,
		InitKeyOnly: initMARSKey,
		CtxBytes:    marsCtxLen,
		KeyBytes:    16,
		SetupOff:    marsK,
		SetupLen:    40 * 4,
		IVOff:       marsIV,
	})
}

func initMARSKey(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if len(key) != 16 {
		return fmt.Errorf("mars kernel: key must be 16 bytes, got %d", len(key))
	}
	s := mars.Sbox()
	mem.WriteUint32s(ctx+marsS0, s[:])
	mem.WriteBytes(ctx+marsKey, key)
	if iv != nil {
		mem.WriteBytes(ctx+marsIV, iv)
	}
	return nil
}

func initMARSCtx(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if err := initMARSKey(mem, ctx, key, iv); err != nil {
		return err
	}
	m, err := mars.New(key)
	if err != nil {
		return err
	}
	k := m.Keys()
	mem.WriteUint32s(ctx+marsK, k[:])
	return nil
}

// marsRegs is the shared register plan.
type marsRegs struct {
	s0b, s1b, kp       isa.Reg
	t, t2, t3, el, erR isa.Reg
}

// emitMarsS512 emits dst = S[idx & 0x1ff]: a striped two-table SBOX pair
// with a CMOV select at the extension level, a masked load otherwise.
// mask9 must hold 0x1ff in the baseline (pass RZ with CryptoExt).
func emitMarsS512(b *isa.Builder, r marsRegs, idx, dst, mask9 isa.Reg) {
	if b.Feat.CryptoExt {
		b.SBOX(0, 0, r.s0b, idx, dst, false)
		b.SBOX(1, 0, r.s1b, idx, r.t3, false)
		b.WithClass(isa.ClassSubst, func() {
			b.SRLLI(idx, 8, r.t2)
			b.ANDI(r.t2, 1, r.t2)
			b.CMOVNE(r.t2, r.t3, dst)
		})
		return
	}
	b.WithClass(isa.ClassSubst, func() {
		b.AND(idx, mask9, r.t2)
		b.S4ADDQ(r.t2, r.s0b, r.t2)
		b.LDL(dst, 0, r.t2)
	})
}

// emitMarsE emits the E-function: (el, md, er) = E(in, K[k1], K[k2]).
// md is returned in register mdR.
func emitMarsE(b *isa.Builder, r marsRegs, in isa.Reg, k1off, k2off int64, mdR, mask9 isa.Reg) {
	b.LDL(r.t, k1off, r.kp)
	b.ADDL(in, r.t, mdR) // m = in + k1
	b.RotL32I(in, 13, r.erR, r.t)
	b.LDL(r.t, k2off, r.kp)
	b.MULL(r.erR, r.t, r.erR)
	b.RotL32I(r.erR, 10, r.erR, r.t)
	emitMarsS512(b, r, mdR, r.el, mask9)
	b.RotL32V(mdR, r.erR, r.t, r.t2) // m <<<= low5(r)
	b.MOV(r.t, mdR)
	b.XOR(r.el, r.erR, r.el)
	b.RotL32I(r.erR, 5, r.erR, r.t)
	b.XOR(r.el, r.erR, r.el)
	b.RotL32V(r.el, r.erR, r.t, r.t2) // l <<<= low5(r)
	b.MOV(r.t, r.el)
}

func buildMARS(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("mars-"+feat.String(), feat)
	r := marsRegs{
		s0b: isa.R4, s1b: isa.R5, kp: isa.R8,
		t: isa.R13, t2: isa.R14, t3: isa.R15, el: isa.R22, erR: isa.R25,
	}
	st := [4]isa.Reg{isa.R9, isa.R10, isa.R11, isa.R12}
	iv := [4]isa.Reg{isa.R23, isa.R24, isa.R27, isa.R28}
	md, mask9 := isa.R21, isa.R20

	b.LDA(r.s0b, marsS0, isa.RA3)
	b.LDA(r.s1b, marsS1, isa.RA3)
	b.LDA(r.kp, marsK, isa.RA3)
	if !feat.CryptoExt {
		b.LoadImm32(mask9, 0x1ff)
	}
	for i, reg := range iv {
		b.LDL(reg, marsIV+int64(4*i), isa.RA3)
	}
	b.BEQ(isa.RA2, "done")

	// sbox8 emits dst = S0/S1[byte sel of x].
	sbox8 := func(tbl int, sel int, x, dst isa.Reg) {
		base := r.s0b
		if tbl == 1 {
			base = r.s1b
		}
		b.SBoxLookup(tbl, sel, base, x, dst, dst, false)
	}

	b.Label("loop")
	for i := 0; i < 4; i++ {
		b.LDL(st[i], int64(4*i), isa.RA0)
		b.XOR(st[i], iv[i], st[i])
		b.LDL(r.t, int64(4*i), r.kp)
		b.ADDL(st[i], r.t, st[i])
	}

	cur := [4]int{0, 1, 2, 3}
	// Forward mixing.
	for i := 0; i < 8; i++ {
		a, bb, c, d := st[cur[0]], st[cur[1]], st[cur[2]], st[cur[3]]
		sbox8(0, 0, a, r.t)
		b.XOR(bb, r.t, bb)
		sbox8(1, 1, a, r.t)
		b.ADDL(bb, r.t, bb)
		sbox8(0, 2, a, r.t)
		b.ADDL(c, r.t, c)
		sbox8(1, 3, a, r.t)
		b.XOR(d, r.t, d)
		b.RotR32I(a, 24, a, r.t)
		if i == 0 || i == 4 {
			b.ADDL(a, d, a)
		}
		if i == 1 || i == 5 {
			b.ADDL(a, bb, a)
		}
		cur = [4]int{cur[1], cur[2], cur[3], cur[0]}
	}
	// Cryptographic core.
	for i := 0; i < 16; i++ {
		a, bb, c, d := st[cur[0]], st[cur[1]], st[cur[2]], st[cur[3]]
		emitMarsE(b, r, a, int64(4*(4+2*i)), int64(4*(5+2*i)), md, mask9)
		b.ADDL(c, md, c)
		if i < 8 {
			b.ADDL(bb, r.el, bb)
			b.XOR(d, r.erR, d)
		} else {
			b.ADDL(d, r.el, d)
			b.XOR(bb, r.erR, bb)
		}
		b.RotL32I(a, 13, a, r.t)
		cur = [4]int{cur[1], cur[2], cur[3], cur[0]}
	}
	// Backwards mixing.
	for i := 0; i < 8; i++ {
		a, bb, c, d := st[cur[0]], st[cur[1]], st[cur[2]], st[cur[3]]
		if i == 1 || i == 5 {
			b.SUBL(a, d, a)
		}
		if i == 2 || i == 6 {
			b.SUBL(a, bb, a)
		}
		sbox8(1, 0, a, r.t)
		b.XOR(bb, r.t, bb)
		sbox8(0, 3, a, r.t)
		b.SUBL(c, r.t, c)
		sbox8(1, 2, a, r.t)
		b.SUBL(d, r.t, d)
		sbox8(0, 1, a, r.t)
		b.XOR(d, r.t, d)
		b.RotL32I(a, 24, a, r.t)
		cur = [4]int{cur[1], cur[2], cur[3], cur[0]}
	}
	for i := 0; i < 4; i++ {
		b.LDL(r.t, int64(4*(36+i)), r.kp)
		b.SUBL(st[cur[i]], r.t, iv[i])
		b.STL(iv[i], int64(4*i), isa.RA1)
	}

	b.ADDQI(isa.RA0, 16, isa.RA0)
	b.ADDQI(isa.RA1, 16, isa.RA1)
	b.SUBQI(isa.RA2, 16, isa.RA2)
	b.BGT(isa.RA2, "loop")

	b.Label("done")
	for i, reg := range iv {
		b.STL(reg, marsIV+int64(4*i), isa.RA3)
	}
	b.HALT()
	return b.Build()
}

// buildMARSDec assembles the inverse cipher: each encryption phase is
// undone in reverse (backwards mixing first, then the keyed core with the
// role rotation unwound, then forward mixing), with CBC unchaining.
func buildMARSDec(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("mars-dec-"+feat.String(), feat)
	r := marsRegs{
		s0b: isa.R4, s1b: isa.R5, kp: isa.R8,
		t: isa.R13, t2: isa.R14, t3: isa.R15, el: isa.R22, erR: isa.R25,
	}
	st := [4]isa.Reg{isa.R9, isa.R10, isa.R11, isa.R12}
	iv := [4]isa.Reg{isa.R23, isa.R24, isa.R27, isa.R28}
	md, mask9 := isa.R21, isa.R20

	b.LDA(r.s0b, marsS0, isa.RA3)
	b.LDA(r.s1b, marsS1, isa.RA3)
	b.LDA(r.kp, marsK, isa.RA3)
	if !feat.CryptoExt {
		b.LoadImm32(mask9, 0x1ff)
	}
	for i, reg := range iv {
		b.LDL(reg, marsIV+int64(4*i), isa.RA3)
	}
	b.BEQ(isa.RA2, "done")

	sbox8 := func(tbl int, sel int, x, dst isa.Reg) {
		base := r.s0b
		if tbl == 1 {
			base = r.s1b
		}
		b.SBoxLookup(tbl, sel, base, x, dst, dst, false)
	}

	b.Label("loop")
	for i := 0; i < 4; i++ {
		b.LDL(st[i], int64(4*i), isa.RA0)
		b.LDL(r.t, int64(4*(36+i)), r.kp)
		b.ADDL(st[i], r.t, st[i])
	}

	cur := [4]int{0, 1, 2, 3}
	// Invert backwards mixing.
	for i := 7; i >= 0; i-- {
		cur = [4]int{cur[3], cur[0], cur[1], cur[2]} // undo role rotation
		a, bb, c, d := st[cur[0]], st[cur[1]], st[cur[2]], st[cur[3]]
		b.RotR32I(a, 24, a, r.t)
		sbox8(0, 1, a, r.t)
		b.XOR(d, r.t, d)
		sbox8(1, 2, a, r.t)
		b.ADDL(d, r.t, d)
		sbox8(0, 3, a, r.t)
		b.ADDL(c, r.t, c)
		sbox8(1, 0, a, r.t)
		b.XOR(bb, r.t, bb)
		if i == 2 || i == 6 {
			b.ADDL(a, bb, a)
		}
		if i == 1 || i == 5 {
			b.ADDL(a, d, a)
		}
	}
	// Invert the cryptographic core.
	for i := 15; i >= 0; i-- {
		cur = [4]int{cur[3], cur[0], cur[1], cur[2]}
		a, bb, c, d := st[cur[0]], st[cur[1]], st[cur[2]], st[cur[3]]
		b.RotR32I(a, 13, a, r.t)
		emitMarsE(b, r, a, int64(4*(4+2*i)), int64(4*(5+2*i)), md, mask9)
		if i < 8 {
			b.XOR(d, r.erR, d)
			b.SUBL(bb, r.el, bb)
		} else {
			b.XOR(bb, r.erR, bb)
			b.SUBL(d, r.el, d)
		}
		b.SUBL(c, md, c)
	}
	// Invert forward mixing.
	for i := 7; i >= 0; i-- {
		cur = [4]int{cur[3], cur[0], cur[1], cur[2]}
		a, bb, c, d := st[cur[0]], st[cur[1]], st[cur[2]], st[cur[3]]
		if i == 1 || i == 5 {
			b.SUBL(a, bb, a)
		}
		if i == 0 || i == 4 {
			b.SUBL(a, d, a)
		}
		b.RotL32I(a, 24, a, r.t)
		sbox8(1, 3, a, r.t)
		b.XOR(d, r.t, d)
		sbox8(0, 2, a, r.t)
		b.SUBL(c, r.t, c)
		sbox8(1, 1, a, r.t)
		b.SUBL(bb, r.t, bb)
		sbox8(0, 0, a, r.t)
		b.XOR(bb, r.t, bb)
	}
	// Subtract the input whitening, unchain, emit plaintext.
	for i := 0; i < 4; i++ {
		b.LDL(r.t, int64(4*i), r.kp)
		b.SUBL(st[cur[i]], r.t, r.t2)
		b.XOR(r.t2, iv[i], r.t2)
		b.STL(r.t2, int64(4*i), isa.RA1)
		b.LDL(iv[i], int64(4*i), isa.RA0)
	}

	b.ADDQI(isa.RA0, 16, isa.RA0)
	b.ADDQI(isa.RA1, 16, isa.RA1)
	b.SUBQI(isa.RA2, 16, isa.RA2)
	b.BGT(isa.RA2, "loop")

	b.Label("done")
	for i, reg := range iv {
		b.STL(reg, marsIV+int64(4*i), isa.RA3)
	}
	b.HALT()
	return b.Build()
}

// buildMARSSetup is the amended MARS key expansion: the 15-word linear
// recurrence, four S-box stirring passes per output group, and the
// branch-light multiplication-key fixing with its run-mask scan.
func buildMARSSetup(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("mars-setup-"+feat.String(), feat)
	r := marsRegs{
		s0b: isa.R4, s1b: isa.R5, kp: isa.R8,
		t: isa.R13, t2: isa.R14, t3: isa.R15, el: isa.R22, erR: isa.R25,
	}
	tb := isa.R6 // T scratch base
	mask9 := isa.R20
	acc, acc2 := isa.R9, isa.R10

	bfix := mars.BFix()
	bOff := b.DataWords32(bfix[:])

	b.LDA(r.s0b, marsS0, isa.RA3)
	b.LDA(r.s1b, marsS1, isa.RA3)
	b.LDA(r.kp, marsK, isa.RA3)
	b.LDA(tb, marsT, isa.RA3)
	b.LoadImm32(mask9, 0x1ff)

	// T[0..3] = key words; T[4] = 4; T[5..14] = 0.
	for i := 0; i < 4; i++ {
		b.LDL(r.t, marsKey+int64(4*i), isa.RA3)
		b.STL(r.t, int64(4*i), tb)
	}
	b.LDA(r.t, 4, isa.RZ)
	b.STL(r.t, 16, tb)
	for i := 5; i < 15; i++ {
		b.STL(isa.RZ, int64(4*i), tb)
	}

	for j := 0; j < 4; j++ {
		// Linear recurrence.
		for i := 0; i < 15; i++ {
			b.LDL(acc, int64(4*((i+8)%15)), tb)
			b.LDL(r.t, int64(4*((i+13)%15)), tb)
			b.XOR(acc, r.t, acc)
			b.RotL32I(acc, 3, acc, r.t)
			b.LDL(r.t, int64(4*i), tb)
			b.XOR(r.t, acc, r.t)
			b.XORI(r.t, int64(4*i+j), r.t)
			b.STL(r.t, int64(4*i), tb)
		}
		// Four stirring passes.
		for pass := 0; pass < 4; pass++ {
			for i := 0; i < 15; i++ {
				b.LDL(acc, int64(4*((i+14)%15)), tb)
				b.AND(acc, mask9, acc)
				b.S4ADDQ(acc, r.s0b, acc)
				b.LDL(acc, 0, acc)
				b.LDL(r.t, int64(4*i), tb)
				b.ADDL(r.t, acc, r.t)
				b.RotL32I(r.t, 9, r.t, r.t2)
				b.STL(r.t, int64(4*i), tb)
			}
		}
		// Emit ten key words.
		for i := 0; i < 10; i++ {
			b.LDL(r.t, int64(4*((4*i)%15)), tb)
			b.STL(r.t, int64(4*(10*j+i)), r.kp)
		}
	}

	// Fix the multiplication keys K[5], K[7], ..., K[35].
	w, maskR, runlen, bitPrev := isa.R12, isa.R21, isa.R23, isa.R24
	pos, bitCur, one := isa.R27, isa.R28, isa.R7
	b.LDA(one, 1, isa.RZ)
	for ki := 5; ki <= 35; ki += 2 {
		b.LDL(w, int64(4*ki), r.kp)
		b.ANDI(w, 3, r.t3) // j = K[i] & 3
		b.ORI(w, 3, w)     // w = K[i] | 3
		// Run-mask scan: mask of interior bits of runs >= 10, positions
		// 2..30 only.
		b.MOV(isa.RZ, maskR)
		b.LDA(runlen, 1, isa.RZ)
		b.ANDI(w, 1, bitPrev)
		b.LDA(pos, 1, isa.RZ)
		loop := fmt.Sprintf("scan%d", ki)
		endRun := fmt.Sprintf("endrun%d", ki)
		cont := fmt.Sprintf("cont%d", ki)
		short := fmt.Sprintf("short%d", ki)
		b.Label(loop)
		b.SRL(w, pos, bitCur)
		b.ANDI(bitCur, 1, bitCur)
		b.CMPEQI(pos, 32, r.t)
		b.BEQ(r.t, endRun+"chk") // pos < 32: compare bits
		b.LDA(bitCur, 2, isa.RZ) // sentinel terminates the final run
		b.Label(endRun + "chk")
		b.XOR(bitCur, bitPrev, r.t)
		b.BEQ(r.t, cont) // same bit: extend run
		// Run ended: if runlen >= 10 mark interior bits.
		b.CMPULTI(runlen, 10, r.t)
		b.BNE(r.t, short)
		b.SUBQI(runlen, 2, r.t2)  // interior width
		b.SLL(one, r.t2, r.t2)    // 1 << width
		b.SUBQI(r.t2, 1, r.t2)    // width ones
		b.SUBQ(pos, runlen, r.el) // run start - ... lo = pos - runlen + 1
		b.ADDQI(r.el, 1, r.el)
		b.SLL(r.t2, r.el, r.t2)
		b.OR(maskR, r.t2, maskR)
		b.Label(short)
		b.LDA(runlen, 0, isa.RZ)
		b.Label(cont)
		b.ADDQI(runlen, 1, runlen)
		b.MOV(bitCur, bitPrev)
		b.ADDQI(pos, 1, pos)
		b.CMPULTI(pos, 33, r.t)
		b.BNE(r.t, loop)
		// Clamp to positions 2..30.
		b.LoadImm32(r.t, 0x7ffffffc)
		b.AND(maskR, r.t, maskR)
		// p = rotl(B[j], K[i-1] & 31); K[i] = w ^ (p & M).
		b.S4ADDQ(r.t3, isa.RGP, r.t)
		b.LDL(r.t, bOff, r.t)
		b.LDL(r.t2, int64(4*(ki-1)), r.kp)
		b.RotL32V(r.t, r.t2, acc2, r.erR)
		b.AND(acc2, maskR, acc2)
		b.XOR(w, acc2, w)
		b.STL(w, int64(4*ki), r.kp)
	}
	b.HALT()
	return b.Build()
}
