package kernels

import (
	"fmt"

	"cryptoarch/internal/ciphers/twofish"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

// Twofish context layout. T0..T3 are the key-dependent full-keying tables;
// q0/q1 and the MDS column tables are static data used by key setup.
const (
	tfT0     = 0
	tfK      = 4096 // 40 subkey words
	tfQ0     = 4256 // 256 bytes (static)
	tfQ1     = 4512 // 256 bytes (static)
	tfMds    = 4768 // 4 x 256 words (static)
	tfIV     = 8864 // 16 bytes
	tfKey    = 8880 // 16 bytes
	tfCtxLen = 8896
)

func init() {
	register(&Kernel{
		Name:        "twofish",
		BlockBytes:  16,
		Build:       buildTwofish,
		BuildDec:    buildTwofishDec,
		BuildSetup:  buildTwofishSetup,
		InitCtx:     initTwofishCtx,
		InitKeyOnly: initTwofishKey,
		CtxBytes:    tfCtxLen,
		KeyBytes:    16,
		SetupOff:    0,
		SetupLen:    tfK + 40*4, // the four tables plus the subkeys
		IVOff:       tfIV,
	})
}

func initTwofishKey(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if len(key) != 16 {
		return fmt.Errorf("twofish kernel: key must be 16 bytes, got %d", len(key))
	}
	q0, q1 := twofish.QTables()
	mem.WriteBytes(ctx+tfQ0, q0[:])
	mem.WriteBytes(ctx+tfQ1, q1[:])
	mds := twofish.MdsColumns()
	for i := 0; i < 4; i++ {
		mem.WriteUint32s(ctx+tfMds+uint64(1024*i), mds[i][:])
	}
	mem.WriteBytes(ctx+tfKey, key)
	if iv != nil {
		mem.WriteBytes(ctx+tfIV, iv)
	}
	return nil
}

func initTwofishCtx(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if err := initTwofishKey(mem, ctx, key, iv); err != nil {
		return err
	}
	tf, err := twofish.New(key)
	if err != nil {
		return err
	}
	tabs := tf.Tables()
	for i := 0; i < 4; i++ {
		mem.WriteUint32s(ctx+uint64(1024*i), tabs[i][:])
	}
	k := tf.Keys()
	mem.WriteUint32s(ctx+tfK, k[:])
	return nil
}

func buildTwofish(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("twofish-"+feat.String(), feat)
	tt := [4]isa.Reg{isa.R4, isa.R5, isa.R6, isa.R7}
	kp := isa.R8
	st := [4]isa.Reg{isa.R9, isa.R10, isa.R11, isa.R12} // a b c d
	iv := [4]isa.Reg{isa.R23, isa.R24, isa.R25, isa.R27}
	t0, t1, t, tt2 := isa.R13, isa.R14, isa.R15, isa.R22

	for i, r := range tt {
		b.LDA(r, int64(1024*i), isa.RA3)
	}
	b.LDA(kp, tfK, isa.RA3)
	for i, r := range iv {
		b.LDL(r, tfIV+int64(4*i), isa.RA3)
	}
	b.BEQ(isa.RA2, "done")

	b.Label("loop")
	for i := 0; i < 4; i++ {
		b.LDL(st[i], int64(4*i), isa.RA0)
		b.XOR(st[i], iv[i], st[i])
		b.LDL(t, int64(4*i), kp)
		b.XOR(st[i], t, st[i])
	}

	// 16 rounds; the (a,b,c,d) -> (c,d,a,b) exchange is register renaming.
	cur := [4]int{0, 1, 2, 3}
	for r := 0; r < 16; r++ {
		a, bb, c, d := st[cur[0]], st[cur[1]], st[cur[2]], st[cur[3]]
		emitTfG(b, tt, kp, a, bb, t0, t1, t, tt2, r)
		// c = rotr(c ^ F0, 1); d = rotl(d,1) ^ F1.
		b.XOR(c, tt2, c)
		b.RotR32I(c, 1, c, t)
		b.RotL32I(d, 1, t, tt2)
		b.XOR(t, t1, d)
		cur = [4]int{cur[2], cur[3], cur[0], cur[1]}
	}

	// Output whitening: ciphertext = (c,d,a,b) ^ K[4..7]; also the new IV.
	outIdx := [4]int{cur[2], cur[3], cur[0], cur[1]}
	for i := 0; i < 4; i++ {
		b.LDL(t, int64(4*(4+i)), kp)
		b.XOR(st[outIdx[i]], t, iv[i])
		b.STL(iv[i], int64(4*i), isa.RA1)
	}

	b.ADDQI(isa.RA0, 16, isa.RA0)
	b.ADDQI(isa.RA1, 16, isa.RA1)
	b.SUBQI(isa.RA2, 16, isa.RA2)
	b.BGT(isa.RA2, "loop")

	b.Label("done")
	for i, r := range iv {
		b.STL(r, tfIV+int64(4*i), isa.RA3)
	}
	b.HALT()
	return b.Build()
}

// emitTfG emits the round function g twice (t0 = g(a), t1 = g(rotl(b,8)))
// and the two pseudo-Hadamard sums with the round keys at k0off/k1off:
// tt2 = t0+t1+K[2r+8], t1 = t0+2*t1+K[2r+9].
func emitTfG(b *isa.Builder, tt [4]isa.Reg, kp isa.Reg, a, bb, t0, t1, t, tt2 isa.Reg, r int) {
	b.SBoxLookup(0, 0, tt[0], a, t0, t0, false)
	b.SBoxLookup(1, 1, tt[1], a, t, t, false)
	b.XOR(t0, t, t0)
	b.SBoxLookup(2, 2, tt[2], a, t, t, false)
	b.XOR(t0, t, t0)
	b.SBoxLookup(3, 3, tt[3], a, t, t, false)
	b.XOR(t0, t, t0)
	// g(rotl(b,8)): same tables, rotated byte selectors.
	b.SBoxLookup(0, 3, tt[0], bb, t1, t1, false)
	b.SBoxLookup(1, 0, tt[1], bb, t, t, false)
	b.XOR(t1, t, t1)
	b.SBoxLookup(2, 1, tt[2], bb, t, t, false)
	b.XOR(t1, t, t1)
	b.SBoxLookup(3, 2, tt[3], bb, t, t, false)
	b.XOR(t1, t, t1)
	b.ADDL(t0, t1, tt2) // t0+t1
	b.ADDL(tt2, t1, t1) // t0+2*t1
	b.LDL(t, int64(4*(8+2*r)), kp)
	b.ADDL(tt2, t, tt2)
	b.LDL(t, int64(4*(9+2*r)), kp)
	b.ADDL(t1, t, t1)
}

// buildTwofishDec assembles the inverse cipher: whitening with K[4..7],
// sixteen rounds in reverse (undoing each round's half-exchange first),
// then K[0..3], with CBC unchaining.
func buildTwofishDec(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("twofish-dec-"+feat.String(), feat)
	tt := [4]isa.Reg{isa.R4, isa.R5, isa.R6, isa.R7}
	kp := isa.R8
	st := [4]isa.Reg{isa.R9, isa.R10, isa.R11, isa.R12} // c d a b on load
	iv := [4]isa.Reg{isa.R23, isa.R24, isa.R25, isa.R27}
	t0, t1, t, tt2 := isa.R13, isa.R14, isa.R15, isa.R22

	for i, r := range tt {
		b.LDA(r, int64(1024*i), isa.RA3)
	}
	b.LDA(kp, tfK, isa.RA3)
	for i, r := range iv {
		b.LDL(r, tfIV+int64(4*i), isa.RA3)
	}
	b.BEQ(isa.RA2, "done")

	b.Label("loop")
	// Whitened load: (c,d,a,b) = ct words ^ K[4..7].
	// st[0]=c st[1]=d st[2]=a st[3]=b.
	for i := 0; i < 4; i++ {
		b.LDL(st[i], int64(4*i), isa.RA0)
		b.LDL(t, int64(4*(4+i)), kp)
		b.XOR(st[i], t, st[i])
	}
	// Logical order (a,b,c,d) over physical registers.
	cur := [4]int{2, 3, 0, 1}
	for r := 15; r >= 0; r-- {
		// Undo the round's exchange: (a,b,c,d) = (c,d,a,b).
		cur = [4]int{cur[2], cur[3], cur[0], cur[1]}
		a, bb, c, d := st[cur[0]], st[cur[1]], st[cur[2]], st[cur[3]]
		emitTfG(b, tt, kp, a, bb, t0, t1, t, tt2, r)
		// c = rotl(c,1) ^ F0; d = rotr(d ^ F1, 1).
		b.RotL32I(c, 1, c, t)
		b.XOR(c, tt2, c)
		b.XOR(d, t1, d)
		b.RotR32I(d, 1, d, t)
	}
	// Unwhiten with K[0..3], unchain, emit plaintext.
	for i := 0; i < 4; i++ {
		b.LDL(t, int64(4*i), kp)
		b.XOR(st[cur[i]], t, t0)
		b.XOR(t0, iv[i], t0)
		b.STL(t0, int64(4*i), isa.RA1)
		b.LDL(iv[i], int64(4*i), isa.RA0)
	}

	b.ADDQI(isa.RA0, 16, isa.RA0)
	b.ADDQI(isa.RA1, 16, isa.RA1)
	b.SUBQI(isa.RA2, 16, isa.RA2)
	b.BGT(isa.RA2, "loop")

	b.Label("done")
	for i, r := range iv {
		b.STL(r, tfIV+int64(4*i), isa.RA3)
	}
	b.HALT()
	return b.Build()
}

// hByteRegs parameterizes the per-byte q chain of the h function.
type tfSetupRegs struct {
	q0b, q1b, mdsb isa.Reg
	x, l0, l1, out isa.Reg
	t, t2, t3      isa.Reg
}

// emitTfHByte emits out ^= mdsCol[i][qc[qb[qa[x_i] ^ l1_i] ^ l0_i]] with
// the spec's per-byte q selection for k=2.
func emitTfHByte(b *isa.Builder, r tfSetupRegs, i int) {
	qsel := [4][3]bool{ // {inner, middle, outer}: true = q1
		{false, false, true},
		{true, false, false},
		{false, true, true},
		{true, true, false},
	}
	qbase := func(one bool) isa.Reg {
		if one {
			return r.q1b
		}
		return r.q0b
	}
	b.EXTBI(r.x, int64(i), r.t) // x_i
	b.ADDQ(r.t, qbase(qsel[i][0]), r.t)
	b.LDB(r.t, 0, r.t)
	b.EXTBI(r.l1, int64(i), r.t2)
	b.XOR(r.t, r.t2, r.t)
	b.ADDQ(r.t, qbase(qsel[i][1]), r.t)
	b.LDB(r.t, 0, r.t)
	b.EXTBI(r.l0, int64(i), r.t2)
	b.XOR(r.t, r.t2, r.t)
	b.ADDQ(r.t, qbase(qsel[i][2]), r.t)
	b.LDB(r.t, 0, r.t)
	// out ^= mdsCol[i][z]
	b.LDA(r.t2, int64(1024*i), r.mdsb) // mds table i base
	b.S4ADDQ(r.t, r.t2, r.t)
	b.LDL(r.t, 0, r.t)
	b.XOR(r.out, r.t, r.out)
}

// buildTwofishSetup computes the RS key words, the 40 subkeys (via the h
// function on the rho multiples) and the four full-keying tables.
func buildTwofishSetup(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("twofish-setup-"+feat.String(), feat)
	r := tfSetupRegs{
		q0b: isa.R4, q1b: isa.R5, mdsb: isa.R6,
		x: isa.R9, l0: isa.R10, l1: isa.R11, out: isa.R12,
		t: isa.R13, t2: isa.R14, t3: isa.R15,
	}
	kp := isa.R8
	m := [4]isa.Reg{isa.R16, isa.R17, isa.R18, isa.R20} // key words m0..m3
	s0r, s1r := isa.R21, isa.R22
	cnt, acc, acc2, rho := isa.R23, isa.R24, isa.R25, isa.R27
	gA, gB, gP := isa.R0, isa.R1, isa.R2 // gfmul operands/product

	b.LDA(r.q0b, tfQ0, isa.RA3)
	b.LDA(r.q1b, tfQ1, isa.RA3)
	b.LDA(r.mdsb, tfMds, isa.RA3)
	b.LDA(kp, tfK, isa.RA3)
	for i, reg := range m {
		b.LDL(reg, tfKey+int64(4*i), isa.RA3)
	}

	// RS words: s[half] = sum over rows/cols of gfmul(rs[row][col],
	// keybyte) in GF(2^8) mod 0x14d. The RS matrix is program data.
	rsm := twofish.RSMatrix()
	var rsFlat []uint32
	for row := 0; row < 4; row++ {
		for col := 0; col < 8; col++ {
			rsFlat = append(rsFlat, uint32(rsm[row][col]))
		}
	}
	rsOff := b.DataWords32(rsFlat)
	// gfmul subroutine: gP = gA * gB mod 0x14d (shift-and-add).
	b.BR("afterGfmul")
	b.Label("gfmul")
	b.MOV(isa.RZ, gP)
	b.Label("gfloop")
	b.ANDI(gB, 1, r.t3)
	b.BEQ(r.t3, "gfskip")
	b.XOR(gP, gA, gP)
	b.Label("gfskip")
	b.ADDL(gA, gA, gA)
	b.SRLLI(gA, 8, r.t3)
	b.BEQ(r.t3, "gfnored")
	b.XORI(gA, 0x4d, gA) // 0x14d: the 0x100 bit clears via ZEXTB below
	b.ZEXTB(gA, gA)
	b.Label("gfnored")
	b.SRLLI(gB, 1, gB)
	b.BNE(gB, "gfloop")
	b.RET()
	b.Label("afterGfmul")

	for half := 0; half < 2; half++ {
		sReg := s0r
		if half == 1 {
			sReg = s1r
		}
		b.MOV(isa.RZ, sReg)
		for row := 0; row < 4; row++ {
			b.MOV(isa.RZ, acc)
			for col := 0; col < 8; col++ {
				b.LDL(gA, rsOff+int64(4*(8*row+col)), isa.RGP)
				// key byte 8*half+col.
				kb := 8*half + col
				b.LDL(r.t, tfKey+int64(4*(kb/4)), isa.RA3)
				b.EXTBI(r.t, int64(kb%4), gB)
				b.BSR("gfmul")
				b.XOR(acc, gP, acc)
			}
			b.INSBI(acc, int64(row), r.t)
			b.OR(sReg, r.t, sReg)
		}
	}

	// h subroutine: out = h(x, l0, l1).
	b.BR("afterH")
	b.Label("hfunc")
	b.MOV(isa.RZ, r.out)
	for i := 0; i < 4; i++ {
		emitTfHByte(b, r, i)
	}
	b.RET()
	b.Label("afterH")

	// Subkeys: for i in 0..19: A = h(2i*rho, m0, m2);
	// B = rotl(h((2i+1)*rho, m1, m3), 8); K[2i] = A+B;
	// K[2i+1] = rotl(A+2B, 9).
	b.LoadImm32(rho, 0x01010101)
	b.MOV(isa.RZ, cnt) // cnt = 2i byte value stepper: x = cnt*rho
	for i := 0; i < 20; i++ {
		b.MULL(cnt, rho, r.x)
		b.MOV(m[0], r.l0)
		b.MOV(m[2], r.l1)
		b.BSR("hfunc")
		b.MOV(r.out, acc) // A
		b.ADDLI(cnt, 1, cnt)
		b.MULL(cnt, rho, r.x)
		b.MOV(m[1], r.l0)
		b.MOV(m[3], r.l1)
		b.BSR("hfunc")
		b.RotL32I(r.out, 8, acc2, r.t) // B
		b.ADDL(acc, acc2, r.t)         // A+B
		b.STL(r.t, int64(8*i), kp)
		b.ADDL(r.t, acc2, r.t) // A+2B
		b.RotL32I(r.t, 9, r.t2, r.t3)
		b.STL(r.t2, int64(8*i+4), kp)
		b.ADDLI(cnt, 1, cnt)
	}

	// Full-keying tables: T_i[v] = mdsCol[i][hByte(i, v, s1_i, s0_i)].
	// Loop v = 0..255, emitting the four chains per iteration.
	b.MOV(s1r, r.l0) // outer bytes come from S1
	b.MOV(s0r, r.l1)
	b.MOV(isa.RZ, cnt)
	b.Label("tblloop")
	// x = v replicated into all four byte lanes so EXTBI(i) works.
	b.MOV(cnt, r.x)
	b.SLLLI(cnt, 8, r.t)
	b.OR(r.x, r.t, r.x)
	b.SLLLI(cnt, 16, r.t)
	b.OR(r.x, r.t, r.x)
	b.SLLLI(cnt, 24, r.t)
	b.OR(r.x, r.t, r.x)
	for i := 0; i < 4; i++ {
		b.MOV(isa.RZ, r.out)
		emitTfHByte(b, r, i)
		// Store into T_i[v].
		b.S4ADDQ(cnt, isa.RA3, r.t2)
		if i > 0 {
			b.LDA(r.t2, int64(1024*i), r.t2)
		}
		b.STL(r.out, 0, r.t2)
	}
	b.ADDLI(cnt, 1, cnt)
	b.SRLLI(cnt, 8, r.t) // loop while v < 256
	b.BEQ(r.t, "tblloop")
	if feat.CryptoExt {
		b.SBOXSYNC(isa.SboxAll)
	}
	b.HALT()
	return b.Build()
}
