package kernels

import (
	"fmt"

	"cryptoarch/internal/ciphers/blowfish"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

// Blowfish context layout (1KB-aligned base so the four S-boxes are
// SBOX-addressable).
const (
	bfS0     = 0
	bfS1     = 1024
	bfS2     = 2048
	bfS3     = 3072
	bfP      = 4096 // 18 words
	bfIV     = 4168 // 8 bytes, big-endian halves
	bfKey    = 4176 // raw key (16 bytes in the experiments)
	bfCtxLen = 4200
)

func init() {
	register(&Kernel{
		Name:        "blowfish",
		BlockBytes:  8,
		Build:       func(f isa.Feature) *isa.Program { return buildBlowfish(f, false) },
		BuildDec:    func(f isa.Feature) *isa.Program { return buildBlowfish(f, true) },
		BuildSetup:  buildBlowfishSetup,
		InitCtx:     initBlowfishCtx,
		InitDecCtx:  initBlowfishDecCtx,
		InitKeyOnly: initBlowfishKey,
		CtxBytes:    bfCtxLen,
		KeyBytes:    16,
		SetupOff:    0,
		SetupLen:    bfP + 18*4, // S0..S3 then P
		IVOff:       bfIV,
	})
}

// initBlowfishDecCtx writes the decryption context: Blowfish decryption is
// the encryption network with the P-array reversed.
func initBlowfishDecCtx(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if err := initBlowfishCtx(mem, ctx, key, iv); err != nil {
		return err
	}
	bf, err := blowfish.New(key)
	if err != nil {
		return err
	}
	p, _ := bf.Tables()
	rev := make([]uint32, len(p))
	for i, v := range p {
		rev[len(p)-1-i] = v
	}
	mem.WriteUint32s(ctx+bfP, rev)
	return nil
}

func initBlowfishKey(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if len(key) != 16 {
		return fmt.Errorf("blowfish kernel: key must be 16 bytes, got %d", len(key))
	}
	mem.WriteBytes(ctx+bfKey, key)
	if iv != nil {
		mem.WriteBytes(ctx+bfIV, iv)
	}
	return nil
}

func initBlowfishCtx(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if err := initBlowfishKey(mem, ctx, key, iv); err != nil {
		return err
	}
	bf, err := blowfish.New(key)
	if err != nil {
		return err
	}
	p, s := bf.Tables()
	for t := 0; t < 4; t++ {
		mem.WriteUint32s(ctx+uint64(1024*t), s[t][:])
	}
	mem.WriteUint32s(ctx+bfP, p[:])
	return nil
}

// bfRegs is the register plan shared by the kernel and setup builders.
type bfRegs struct {
	s0, s1, s2, s3, pb     isa.Reg
	xl, xr, acc, t1, t2, t isa.Reg
	m                      swapMasks
	// aliased marks S-box lookups as store-observing: the setup program
	// encrypts with tables it is in the middle of overwriting, so its
	// SBOX instructions must set the aliased bit (the encryption kernel
	// instead relies on one SBOXSYNC at the end of setup).
	aliased bool
}

func bfStdRegs() bfRegs {
	return bfRegs{
		s0: isa.R4, s1: isa.R5, s2: isa.R6, s3: isa.R7, pb: isa.R8,
		xl: isa.R11, xr: isa.R12, acc: isa.R22,
		t1: isa.R13, t2: isa.R14, t: isa.R15,
		m: swapMasks{isa.R20, isa.R21},
	}
}

// emitBFPrologue computes table bases and loads the swap masks.
func emitBFPrologue(b *isa.Builder, r bfRegs) {
	b.LDA(r.s0, bfS0, isa.RA3)
	b.LDA(r.s1, bfS1, isa.RA3)
	b.LDA(r.s2, bfS2, isa.RA3)
	b.LDA(r.s3, bfS3, isa.RA3)
	b.LDA(r.pb, bfP, isa.RA3)
	loadSwapMasks(b, r.m.m1, r.m.m2)
}

// emitBFF emits acc = F(x) = ((S0[b3] + S1[b2]) ^ S2[b1]) + S3[b0].
func emitBFF(b *isa.Builder, r bfRegs, x isa.Reg) {
	b.SBoxLookup(0, 3, r.s0, x, r.acc, r.acc, r.aliased)
	b.SBoxLookup(1, 2, r.s1, x, r.t1, r.t1, r.aliased)
	b.ADDL(r.acc, r.t1, r.acc)
	b.SBoxLookup(2, 1, r.s2, x, r.t1, r.t1, r.aliased)
	b.XOR(r.acc, r.t1, r.acc)
	b.SBoxLookup(3, 0, r.s3, x, r.t1, r.t1, r.aliased)
	b.ADDL(r.acc, r.t1, r.acc)
}

// emitBFCore emits the 16 unrolled rounds plus the final P XORs and the
// half swap: (xl, xr) become the output halves.
func emitBFCore(b *isa.Builder, r bfRegs) {
	for i := 0; i < 16; i += 2 {
		b.LDL(r.t, int64(4*i), r.pb) // p[i]
		b.XOR(r.xl, r.t, r.xl)
		emitBFF(b, r, r.xl)
		b.XOR(r.xr, r.acc, r.xr)
		b.LDL(r.t, int64(4*(i+1)), r.pb) // p[i+1]
		b.XOR(r.xr, r.t, r.xr)
		emitBFF(b, r, r.xr)
		b.XOR(r.xl, r.acc, r.xl)
	}
	b.LDL(r.t, 4*16, r.pb)
	b.XOR(r.xl, r.t, r.xl)
	b.LDL(r.t, 4*17, r.pb)
	b.XOR(r.xr, r.t, r.xr)
	// return (r, l)
	b.MOV(r.xl, r.t)
	b.MOV(r.xr, r.xl)
	b.MOV(r.t, r.xr)
}

// buildBlowfish assembles the CBC kernel. Decryption uses the same round
// core (the context carries a reversed P-array) with the CBC chaining
// inverted: plaintext = core(ct) ^ iv, then iv = ct.
func buildBlowfish(feat isa.Feature, dec bool) *isa.Program {
	name := "blowfish-"
	if dec {
		name = "blowfish-dec-"
	}
	b := isa.NewBuilder(name+feat.String(), feat)
	r := bfStdRegs()
	ivl, ivr := isa.R9, isa.R10
	c0, c1 := isa.R2, isa.R3 // incoming ciphertext words (decrypt chaining)

	emitBFPrologue(b, r)
	b.LDL(r.t1, bfIV, isa.RA3)
	swap32(b, r.t1, ivl, r.t, r.m)
	b.LDL(r.t1, bfIV+4, isa.RA3)
	swap32(b, r.t1, ivr, r.t, r.m)
	b.BEQ(isa.RA2, "done")

	b.Label("loop")
	b.LDL(r.t1, 0, isa.RA0)
	swap32(b, r.t1, r.xl, r.t, r.m)
	b.LDL(r.t1, 4, isa.RA0)
	swap32(b, r.t1, r.xr, r.t, r.m)
	if dec {
		b.MOV(r.xl, c0)
		b.MOV(r.xr, c1)
	} else {
		b.XOR(r.xl, ivl, r.xl)
		b.XOR(r.xr, ivr, r.xr)
	}

	emitBFCore(b, r)

	if dec {
		b.XOR(r.xl, ivl, r.xl)
		b.XOR(r.xr, ivr, r.xr)
		b.MOV(c0, ivl)
		b.MOV(c1, ivr)
	} else {
		b.MOV(r.xl, ivl)
		b.MOV(r.xr, ivr)
	}
	swap32(b, r.xl, r.t1, r.t, r.m)
	b.STL(r.t1, 0, isa.RA1)
	swap32(b, r.xr, r.t1, r.t, r.m)
	b.STL(r.t1, 4, isa.RA1)

	b.ADDQI(isa.RA0, 8, isa.RA0)
	b.ADDQI(isa.RA1, 8, isa.RA1)
	b.SUBQI(isa.RA2, 8, isa.RA2)
	b.BGT(isa.RA2, "loop")

	b.Label("done")
	swap32(b, ivl, r.t1, r.t, r.m)
	b.STL(r.t1, bfIV, isa.RA3)
	swap32(b, ivr, r.t1, r.t, r.m)
	b.STL(r.t1, bfIV+4, isa.RA3)
	b.HALT()
	return b.Build()
}

// buildBlowfishSetup assembles the key schedule: copy the pi tables into
// the context, fold in the key, then run the 521 zero-block encryptions
// that give Blowfish its notoriously expensive setup (Figure 6).
func buildBlowfishSetup(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("blowfish-setup-"+feat.String(), feat)
	r := bfStdRegs()
	r.aliased = true // the 521 fill encryptions read tables being written
	piOff := b.DataWords32(blowfish.PiWords())

	ptr, dst, cnt := isa.R9, isa.R10, isa.R2
	kw := [4]isa.Reg{isa.R23, isa.R24, isa.R25, isa.R0}

	emitBFPrologue(b, r)

	// Copy pi[0:18] to P.
	b.LDA(ptr, piOff, isa.RGP)
	b.MOV(r.pb, dst)
	b.LoadImm(cnt, 18)
	b.Label("pcopy")
	b.LDL(r.t, 0, ptr)
	b.STL(r.t, 0, dst)
	b.ADDQI(ptr, 4, ptr)
	b.ADDQI(dst, 4, dst)
	b.SUBQI(cnt, 1, cnt)
	b.BGT(cnt, "pcopy")
	// Copy pi[18:1042] to the four S tables (contiguous in the context).
	b.MOV(isa.RA3, dst)
	b.LoadImm(cnt, 1024)
	b.Label("scopy")
	b.LDL(r.t, 0, ptr)
	b.STL(r.t, 0, dst)
	b.ADDQI(ptr, 4, ptr)
	b.ADDQI(dst, 4, dst)
	b.SUBQI(cnt, 1, cnt)
	b.BGT(cnt, "scopy")

	// Load the four big-endian key words and XOR them into P cyclically.
	for i := 0; i < 4; i++ {
		b.LDL(r.t1, bfKey+int64(4*i), isa.RA3)
		swap32(b, r.t1, kw[i], r.t, r.m)
	}
	for i := 0; i < 18; i++ {
		b.LDL(r.t, int64(4*i), r.pb)
		b.XOR(r.t, kw[i%4], r.t)
		b.STL(r.t, int64(4*i), r.pb)
	}

	// Replace P then S with successive encryptions of the zero block.
	b.MOV(isa.RZ, r.xl)
	b.MOV(isa.RZ, r.xr)
	b.MOV(r.pb, dst)
	b.LoadImm(cnt, 9) // 9 pairs fill P[18]
	b.Label("pfill")
	b.BSR("encrypt")
	b.STL(r.xl, 0, dst)
	b.STL(r.xr, 4, dst)
	b.ADDQI(dst, 8, dst)
	b.SUBQI(cnt, 1, cnt)
	b.BGT(cnt, "pfill")

	b.MOV(isa.RA3, dst)
	b.LoadImm(cnt, 512) // 512 pairs fill the 4096-byte S region
	b.Label("sfill")
	b.BSR("encrypt")
	b.STL(r.xl, 0, dst)
	b.STL(r.xr, 4, dst)
	b.ADDQI(dst, 8, dst)
	b.SUBQI(cnt, 1, cnt)
	b.BGT(cnt, "sfill")
	if feat.CryptoExt {
		b.SBOXSYNC(isa.SboxAll)
	}
	b.HALT()

	b.Label("encrypt")
	emitBFCore(b, r)
	b.RET()
	return b.Build()
}
