// Package kernels contains the AXP64 implementations of the eight cipher
// kernels, each hand-written once against the builder's macro layer and
// assembled at three feature levels, mirroring the paper's code versions:
//
//	norot — baseline ISA without rotate instructions (rotates synthesized)
//	rot   — baseline ISA plus ROL/ROR (the paper's normalization target)
//	opt   — full crypto extensions (ROLX, MULMOD, SBOX, XBOX)
//
// Each cipher also provides a decryption kernel (validated by unchaining
// golden-encrypted sessions, the paper's own cross-check) and a key-setup
// program (for the Figure 6 setup-cost experiment) whose in-simulator
// output is validated byte-for-byte against the golden Go key schedule.
package kernels

import (
	"fmt"
	"sort"

	"cryptoarch/internal/check"
	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

// Standard simulated-memory layout for kernel runs.
const (
	CtxAddr    = 0x20000  // cipher context (1KB aligned: S-box tables first)
	RodataAddr = 0x80000  // program literal pool / static tables
	InAddr     = 0x100000 // plaintext buffer
	OutAddr    = 0x300000 // ciphertext buffer
)

// Kernel describes one cipher's AXP64 implementation.
type Kernel struct {
	// Name is the cipher name as registered in internal/ciphers.
	Name string
	// BlockBytes is the kernel's processing granule (1 for RC4).
	BlockBytes int
	// Build assembles the encryption kernel at a feature level. The
	// program follows the argument convention (in, out, len, ctx) and
	// carries the CBC IV (or RC4 state) inside the context.
	Build func(feat isa.Feature) *isa.Program
	// BuildDec assembles the decryption kernel (CBC unchaining). For
	// ciphers whose decryption is the encryption network with transformed
	// key material (3DES, Blowfish, IDEA) it shares the round code; RC4's
	// keystream kernel decrypts as-is.
	BuildDec func(feat isa.Feature) *isa.Program
	// InitDecCtx writes the decryption context (inverse key material
	// where the cipher needs it). Nil means InitCtx also serves decryption.
	InitDecCtx func(mem *simmem.Mem, ctx uint64, key, iv []byte) error
	// BuildSetup assembles the key-setup program: it reads the raw key
	// from the context and writes the expanded key material the kernel
	// consumes. Nil keyLen semantics are cipher-specific.
	BuildSetup func(feat isa.Feature) *isa.Program
	// InitCtx writes the full precomputed context (expanded keys, tables,
	// IV/state) into simulated memory using the golden Go implementation.
	InitCtx func(mem *simmem.Mem, ctx uint64, key, iv []byte) error
	// InitKeyOnly writes only the raw key (and IV) into the context, for
	// runs that execute the setup program in-simulator.
	InitKeyOnly func(mem *simmem.Mem, ctx uint64, key, iv []byte) error
	// CtxBytes is the context size.
	CtxBytes int
	// KeyBytes is the raw key size used in the experiments.
	KeyBytes int
	// SetupOff/SetupLen delimit the context region the setup program
	// produces (compared byte-for-byte against the golden key schedule).
	SetupOff, SetupLen int
	// IVOff is the context offset of the CBC intermediate vector
	// (unused for the RC4 stream kernel).
	IVOff uint64
}

var registry = map[string]*Kernel{}

func register(k *Kernel) {
	if _, dup := registry[k.Name]; dup {
		panic("kernels: duplicate " + k.Name)
	}
	registry[k.Name] = k
}

// Get returns the kernel for a cipher name.
func Get(name string) (*Kernel, error) {
	k, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("kernels: no kernel for cipher %q%s", name, check.Suggest(name, Names()))
	}
	return k, nil
}

// buildSafe assembles a program, converting builder panics (malformed
// macro expansion, undefined label, bad feature gating) into errors at the
// API boundary so a broken kernel fails a run or a sweep cell instead of
// crashing the process.
func buildSafe(name string, build func(isa.Feature) *isa.Program, feat isa.Feature) (prog *isa.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("kernels: building %s at %v: %v", name, feat, r)
		}
	}()
	return build(feat), nil
}

// ProgramFor assembles one of the kernel's programs by kind — "encrypt",
// "decrypt" or "setup" — at a feature level, behind the same panic-to-error
// boundary as the run constructors. The persistent store uses it to digest
// kernel bytes (and to recover the static program for a replayed trace)
// without building a machine or touching simulated memory.
func (k *Kernel) ProgramFor(kind string, feat isa.Feature) (*isa.Program, error) {
	build := k.Build
	switch kind {
	case "encrypt":
	case "decrypt":
		build = k.BuildDec
	case "setup":
		build = k.BuildSetup
	default:
		return nil, fmt.Errorf("kernels: unknown program kind %q (want encrypt, decrypt or setup)", kind)
	}
	if build == nil {
		return nil, fmt.Errorf("kernels: %s has no %s program", k.Name, kind)
	}
	return buildSafe(k.Name, build, feat)
}

// Names lists registered kernels, sorted.
func Names() []string {
	var out []string
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NewRun prepares a machine for an encryption run: context initialized
// from the golden model, plaintext in place, arguments loaded.
func NewRun(k *Kernel, feat isa.Feature, key, iv, plaintext []byte) (*emu.Machine, *simmem.Mem, error) {
	need := int(OutAddr-simmem.Base) + len(plaintext) + 4096
	size := simmem.DefaultSize
	if need > size {
		size = need
	}
	mem := simmem.New(size)
	if err := k.InitCtx(mem, CtxAddr, key, iv); err != nil {
		return nil, nil, err
	}
	mem.WriteBytes(InAddr, plaintext)
	prog, err := buildSafe(k.Name, k.Build, feat)
	if err != nil {
		return nil, nil, err
	}
	m := emu.New(prog, mem, RodataAddr)
	m.SetArgs(InAddr, OutAddr, uint64(len(plaintext)), CtxAddr)
	return m, mem, nil
}

// NewDecRun prepares a machine for a decryption run: ciphertext in the
// input buffer, decryption context initialized from the golden model.
func NewDecRun(k *Kernel, feat isa.Feature, key, iv, ciphertext []byte) (*emu.Machine, *simmem.Mem, error) {
	if k.BuildDec == nil {
		return nil, nil, fmt.Errorf("kernels: %s has no decryption kernel", k.Name)
	}
	need := int(OutAddr-simmem.Base) + len(ciphertext) + 4096
	size := simmem.DefaultSize
	if need > size {
		size = need
	}
	mem := simmem.New(size)
	initCtx := k.InitDecCtx
	if initCtx == nil {
		initCtx = k.InitCtx
	}
	if err := initCtx(mem, CtxAddr, key, iv); err != nil {
		return nil, nil, err
	}
	mem.WriteBytes(InAddr, ciphertext)
	prog, err := buildSafe(k.Name, k.BuildDec, feat)
	if err != nil {
		return nil, nil, err
	}
	m := emu.New(prog, mem, RodataAddr)
	m.SetArgs(InAddr, OutAddr, uint64(len(ciphertext)), CtxAddr)
	return m, mem, nil
}

// NewSetupRun prepares a machine for a key-setup run: only the raw key is
// in the context.
func NewSetupRun(k *Kernel, feat isa.Feature, key, iv []byte) (*emu.Machine, *simmem.Mem, error) {
	if k.BuildSetup == nil {
		return nil, nil, fmt.Errorf("kernels: %s has no setup program", k.Name)
	}
	mem := simmem.New(0)
	if err := k.InitKeyOnly(mem, CtxAddr, key, iv); err != nil {
		return nil, nil, err
	}
	prog, err := buildSafe(k.Name, k.BuildSetup, feat)
	if err != nil {
		return nil, nil, err
	}
	m := emu.New(prog, mem, RodataAddr)
	m.SetArgs(0, 0, uint64(len(key)), CtxAddr)
	return m, mem, nil
}

// --- shared builder helpers ---

// swapMasks is the pair of mask registers the byte-swap helpers expect
// (0xff00 and 0xff0000); kernels that marshal big-endian data load them
// once in the prologue with LoadSwapMasks.
type swapMasks struct{ m1, m2 isa.Reg }

// loadSwapMasks materializes the byte-swap masks.
func loadSwapMasks(b *isa.Builder, m1, m2 isa.Reg) swapMasks {
	b.LoadImm32(m1, 0xff00)
	b.LoadImm32(m2, 0xff0000)
	return swapMasks{m1, m2}
}

// swap32 emits dst = byte-reverse of the low 32 bits of src (the n2l
// marshalling cost real little-endian machines pay for big-endian cipher
// specs). dst and t must differ from src and each other.
func swap32(b *isa.Builder, src, dst, t isa.Reg, m swapMasks) {
	b.SRLLI(src, 24, dst)
	b.SRLLI(src, 8, t)
	b.AND(t, m.m1, t)
	b.OR(dst, t, dst)
	b.SLLLI(src, 8, t)
	b.AND(t, m.m2, t)
	b.OR(dst, t, dst)
	b.SLLLI(src, 24, t)
	b.OR(dst, t, dst)
}
