package kernels

import (
	"fmt"

	"cryptoarch/internal/ciphers/idea"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

// IDEA context layout: 52 16-bit encryption subkeys.
const (
	ideaEK     = 0   // 52 x uint16
	ideaIV     = 104 // 8 bytes
	ideaKey    = 112 // 16 bytes
	ideaCtxLen = 128
)

func init() {
	register(&Kernel{
		Name:        "idea",
		BlockBytes:  8,
		Build:       func(f isa.Feature) *isa.Program { return buildIDEA(f, false) },
		BuildDec:    func(f isa.Feature) *isa.Program { return buildIDEA(f, true) },
		BuildSetup:  buildIDEASetup,
		InitCtx:     initIDEACtx,
		InitDecCtx:  initIDEADecCtx,
		InitKeyOnly: initIDEAKey,
		CtxBytes:    ideaCtxLen,
		KeyBytes:    16,
		SetupOff:    ideaEK,
		SetupLen:    52 * 2,
		IVOff:       ideaIV,
	})
}

func initIDEAKey(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if len(key) != 16 {
		return fmt.Errorf("idea kernel: key must be 16 bytes, got %d", len(key))
	}
	mem.WriteBytes(ctx+ideaKey, key)
	if iv != nil {
		mem.WriteBytes(ctx+ideaIV, iv)
	}
	return nil
}

func initIDEACtx(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if err := initIDEAKey(mem, ctx, key, iv); err != nil {
		return err
	}
	c, err := idea.New(key)
	if err != nil {
		return err
	}
	ek := c.EncKeys()
	for i, v := range ek {
		mem.Store(ctx+ideaEK+uint64(2*i), 2, uint64(v))
	}
	return nil
}

// initIDEADecCtx writes the inverted subkeys: IDEA decryption is the same
// network keyed with multiplicative/additive inverses.
func initIDEADecCtx(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if err := initIDEAKey(mem, ctx, key, iv); err != nil {
		return err
	}
	c, err := idea.New(key)
	if err != nil {
		return err
	}
	dk := c.DecKeys()
	for i, v := range dk {
		mem.Store(ctx+ideaEK+uint64(2*i), 2, uint64(v))
	}
	return nil
}

func buildIDEA(feat isa.Feature, dec bool) *isa.Program {
	name := "idea-"
	if dec {
		name = "idea-dec-"
	}
	b := isa.NewBuilder(name+feat.String(), feat)
	kp := isa.R8
	x := [4]isa.Reg{isa.R9, isa.R10, isa.R11, isa.R12}
	iv := [2]isa.Reg{isa.R23, isa.R24} // two 32-bit halves, BE-decoded
	one := isa.R25
	t0, t1, t, t2, t3, kw := isa.R13, isa.R14, isa.R15, isa.R22, isa.R27, isa.R0
	c0, c1 := isa.R2, isa.R3 // incoming ciphertext halves (decrypt chaining)
	m := loadSwapMasks(b, isa.R20, isa.R21)

	// mulKey emits dst = x (*) ek[idx] (16-bit IDEA multiplication).
	mulKey := func(xr isa.Reg, idx int, dst isa.Reg) {
		b.LDW(kw, int64(2*idx), kp)
		b.MulMod16(xr, kw, dst, one, t, t2, t3)
	}

	b.LDA(kp, ideaEK, isa.RA3)
	b.LDA(one, 1, isa.RZ)
	// IV as two 32-bit big-endian halves.
	b.LDL(t, ideaIV, isa.RA3)
	swap32(b, t, iv[0], t2, m)
	b.LDL(t, ideaIV+4, isa.RA3)
	swap32(b, t, iv[1], t2, m)
	b.BEQ(isa.RA2, "done")

	b.Label("loop")
	// Load four big-endian 16-bit words; encryption folds in the IV
	// halves here, decryption keeps the raw ciphertext for the chain.
	b.LDL(t, 0, isa.RA0)
	swap32(b, t, t2, t3, m)
	if dec {
		b.MOV(t2, c0)
	} else {
		b.XOR(t2, iv[0], t2)
	}
	b.SRLLI(t2, 16, x[0])
	b.ZEXTW(t2, x[1])
	b.LDL(t, 4, isa.RA0)
	swap32(b, t, t2, t3, m)
	if dec {
		b.MOV(t2, c1)
	} else {
		b.XOR(t2, iv[1], t2)
	}
	b.SRLLI(t2, 16, x[2])
	b.ZEXTW(t2, x[3])

	for r := 0; r < 8; r++ {
		p := 6 * r
		mulKey(x[0], p, x[0])
		b.LDW(kw, int64(2*(p+1)), kp)
		b.ADDL(x[1], kw, x[1])
		b.ZEXTW(x[1], x[1])
		b.LDW(kw, int64(2*(p+2)), kp)
		b.ADDL(x[2], kw, x[2])
		b.ZEXTW(x[2], x[2])
		mulKey(x[3], p+3, x[3])
		// t0 = mul(x1^x3, k5); t1 = mul(t0 + (x2^x4), k6); t0 += t1.
		b.XOR(x[0], x[2], t0)
		b.LDW(kw, int64(2*(p+4)), kp)
		b.MulMod16(t0, kw, t0, one, t, t2, t3)
		b.XOR(x[1], x[3], t1)
		b.ADDL(t1, t0, t1)
		b.ZEXTW(t1, t1)
		b.LDW(kw, int64(2*(p+5)), kp)
		b.MulMod16(t1, kw, t1, one, t, t2, t3)
		b.ADDL(t0, t1, t0)
		b.ZEXTW(t0, t0)
		// x1 ^= t1; x4 ^= t0; x2, x3 = x3^t1, x2^t0.
		b.XOR(x[0], t1, x[0])
		b.XOR(x[3], t0, x[3])
		b.XOR(x[2], t1, t) // new x2
		b.XOR(x[1], t0, x[2])
		b.MOV(t, x[1])
	}
	// Undo the final swap, then the output transform.
	b.MOV(x[1], t)
	b.MOV(x[2], x[1])
	b.MOV(t, x[2])
	mulKey(x[0], 48, x[0])
	b.LDW(kw, 2*49, kp)
	b.ADDL(x[1], kw, x[1])
	b.ZEXTW(x[1], x[1])
	b.LDW(kw, 2*50, kp)
	b.ADDL(x[2], kw, x[2])
	b.ZEXTW(x[2], x[2])
	mulKey(x[3], 51, x[3])

	// Pack the two 32-bit halves, store big-endian, chain the IV.
	if dec {
		b.SLLLI(x[0], 16, t2)
		b.OR(t2, x[1], t2)
		b.XOR(t2, iv[0], t2)
		swap32(b, t2, t0, t3, m)
		b.STL(t0, 0, isa.RA1)
		b.SLLLI(x[2], 16, t2)
		b.OR(t2, x[3], t2)
		b.XOR(t2, iv[1], t2)
		swap32(b, t2, t0, t3, m)
		b.STL(t0, 4, isa.RA1)
		b.MOV(c0, iv[0])
		b.MOV(c1, iv[1])
	} else {
		b.SLLLI(x[0], 16, t2)
		b.OR(t2, x[1], iv[0])
		b.SLLLI(x[2], 16, t2)
		b.OR(t2, x[3], iv[1])
		swap32(b, iv[0], t2, t3, m)
		b.STL(t2, 0, isa.RA1)
		swap32(b, iv[1], t2, t3, m)
		b.STL(t2, 4, isa.RA1)
	}

	b.ADDQI(isa.RA0, 8, isa.RA0)
	b.ADDQI(isa.RA1, 8, isa.RA1)
	b.SUBQI(isa.RA2, 8, isa.RA2)
	b.BGT(isa.RA2, "loop")

	b.Label("done")
	swap32(b, iv[0], t2, t3, m)
	b.STL(t2, ideaIV, isa.RA3)
	swap32(b, iv[1], t2, t3, m)
	b.STL(t2, ideaIV+4, isa.RA3)
	b.HALT()
	return b.Build()
}

// buildIDEASetup emits the IDEA schedule: 52 subkeys read off a 128-bit
// register pair that rotates left 25 bits after every eighth subkey.
func buildIDEASetup(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("idea-setup-"+feat.String(), feat)
	hi, lo := isa.R9, isa.R10
	t, t2, t3 := isa.R13, isa.R14, isa.R15
	kp := isa.R8
	m := loadSwapMasks(b, isa.R20, isa.R21)

	b.LDA(kp, ideaEK, isa.RA3)
	// Assemble the 128-bit key big-endian into hi/lo.
	load64 := func(dst isa.Reg, off int64) {
		b.LDL(t, off, isa.RA3)
		swap32(b, t, t2, t3, m)
		b.SLLI(t2, 32, dst)
		b.LDL(t, off+4, isa.RA3)
		swap32(b, t, t2, t3, m)
		b.OR(dst, t2, dst)
	}
	load64(hi, ideaKey)
	load64(lo, ideaKey+8)

	for i := 0; i < 52; i++ {
		if i != 0 && i%8 == 0 {
			// (hi,lo) <<<= 25 across 128 bits.
			b.SLLI(hi, 25, t)
			b.SRLI(lo, 39, t2)
			b.OR(t, t2, t3) // new hi
			b.SLLI(lo, 25, t)
			b.SRLI(hi, 39, t2)
			b.OR(t, t2, lo)
			b.MOV(t3, hi)
		}
		src := hi
		shift := 48 - 16*(i%4)
		if i%8 >= 4 {
			src = lo
		}
		b.SRLI(src, int64(shift), t)
		b.STW(t, int64(2*i), kp)
	}
	b.HALT()
	return b.Build()
}
