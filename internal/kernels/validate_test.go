package kernels

import (
	"bytes"
	"math/rand"
	"testing"

	"cryptoarch/internal/ciphers"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

var allFeats = []isa.Feature{isa.FeatNoRot, isa.FeatRot, isa.FeatOpt}

// goldenEncrypt produces the reference ciphertext and final IV for a CBC
// session (or RC4 keystream application).
func goldenEncrypt(t *testing.T, name string, key, iv, pt []byte) (ct, ivOut []byte) {
	t.Helper()
	c, err := ciphers.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	ct = make([]byte, len(pt))
	if c.Info.Stream {
		s, err := c.NewStream(key)
		if err != nil {
			t.Fatal(err)
		}
		s.XORKeyStream(ct, pt)
		return ct, nil
	}
	b, err := c.NewBlock(key)
	if err != nil {
		t.Fatal(err)
	}
	ivOut = append([]byte(nil), iv...)
	ciphers.CBCEncrypt(b, ivOut, ct, pt)
	return ct, ivOut
}

// validateKernel runs one kernel variant in the functional emulator and
// compares its ciphertext (and chained IV) against the golden model —
// the paper's own validation methodology.
func validateKernel(t *testing.T, name string, feat isa.Feature, sessionBytes int) {
	t.Helper()
	k, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(sessionBytes) + 1000*int64(len(name))))
	key := make([]byte, k.KeyBytes)
	rng.Read(key)
	var iv []byte
	if k.BlockBytes > 1 {
		iv = make([]byte, k.BlockBytes)
		rng.Read(iv)
	}
	pt := make([]byte, sessionBytes)
	rng.Read(pt)

	wantCT, wantIV := goldenEncrypt(t, name, key, iv, pt)

	m, mem, err := NewRun(k, feat, key, iv, pt)
	if err != nil {
		t.Fatal(err)
	}
	n := m.Run(nil)
	if n == 0 {
		t.Fatal("kernel executed no instructions")
	}
	got := mem.ReadBytes(OutAddr, sessionBytes)
	if !bytes.Equal(got, wantCT) {
		t.Fatalf("%s/%s: ciphertext mismatch\n got %x\nwant %x", name, feat, got[:min(64, len(got))], wantCT[:min(64, len(wantCT))])
	}
	if iv != nil {
		gotIV := mem.ReadBytes(CtxAddr+k.IVOff, len(iv))
		if !bytes.Equal(gotIV, wantIV) {
			t.Fatalf("%s/%s: chained IV mismatch: got %x want %x", name, feat, gotIV, wantIV)
		}
	}
}

// validateSetup runs the in-simulator key schedule and compares the
// produced tables byte-for-byte with the golden schedule.
func validateSetup(t *testing.T, name string, feat isa.Feature) {
	t.Helper()
	k, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	if k.BuildSetup == nil {
		t.Skipf("%s has no setup program yet", name)
	}
	rng := rand.New(rand.NewSource(int64(len(name)) * 77))
	key := make([]byte, k.KeyBytes)
	rng.Read(key)

	want := simmem.New(0)
	if err := k.InitCtx(want, CtxAddr, key, make([]byte, max(k.BlockBytes, 8))); err != nil {
		t.Fatal(err)
	}

	m, mem, err := NewSetupRun(k, feat, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(nil)

	got := mem.ReadBytes(CtxAddr+uint64(k.SetupOff), k.SetupLen)
	ref := want.ReadBytes(CtxAddr+uint64(k.SetupOff), k.SetupLen)
	if !bytes.Equal(got, ref) {
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%s/%s setup: first mismatch at ctx+%d: got %02x want %02x",
					name, feat, k.SetupOff+i, got[i], ref[i])
			}
		}
	}
}

// validateDecKernel encrypts with the golden model and checks the AXP64
// decryption kernel recovers the plaintext — the paper's cross-validation
// of optimized kernels against the original inverse.
func validateDecKernel(t *testing.T, name string, feat isa.Feature, sessionBytes int) {
	t.Helper()
	k, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	if k.BuildDec == nil {
		t.Skipf("%s has no decryption kernel yet", name)
	}
	rng := rand.New(rand.NewSource(int64(sessionBytes) + 31*int64(len(name))))
	key := make([]byte, k.KeyBytes)
	rng.Read(key)
	var iv []byte
	if k.BlockBytes > 1 {
		iv = make([]byte, k.BlockBytes)
		rng.Read(iv)
	}
	pt := make([]byte, sessionBytes)
	rng.Read(pt)
	ct, _ := goldenEncrypt(t, name, key, iv, pt)

	m, mem, err := NewDecRun(k, feat, key, iv, ct)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(nil)
	got := mem.ReadBytes(OutAddr, sessionBytes)
	if !bytes.Equal(got, pt) {
		t.Fatalf("%s/%s: decryption kernel failed\n got %x\nwant %x",
			name, feat, got[:min(48, len(got))], pt[:min(48, len(pt))])
	}
	if iv != nil {
		// After unchaining a session the IV must be the last ciphertext
		// block, ready to continue the stream.
		gotIV := mem.ReadBytes(CtxAddr+k.IVOff, len(iv))
		if !bytes.Equal(gotIV, ct[len(ct)-k.BlockBytes:]) {
			t.Fatalf("%s/%s: decrypt IV chaining wrong", name, feat)
		}
	}
}

func TestDecKernelsMatchGolden(t *testing.T) {
	for _, name := range Names() {
		k, _ := Get(name)
		for _, feat := range allFeats {
			feat := feat
			t.Run(name+"/"+feat.String(), func(t *testing.T) {
				for _, blocks := range []int{1, 8, 32} {
					validateDecKernel(t, name, feat, blocks*max(k.BlockBytes, 8))
				}
			})
		}
	}
}

func TestKernelsMatchGolden(t *testing.T) {
	for _, name := range Names() {
		k, _ := Get(name)
		for _, feat := range allFeats {
			feat := feat
			t.Run(name+"/"+feat.String(), func(t *testing.T) {
				for _, blocks := range []int{1, 8, 64} {
					validateKernel(t, name, feat, blocks*max(k.BlockBytes, 8))
				}
			})
		}
	}
}

func TestSetupsMatchGolden(t *testing.T) {
	for _, name := range Names() {
		for _, feat := range allFeats {
			feat := feat
			t.Run(name+"/"+feat.String(), func(t *testing.T) {
				validateSetup(t, name, feat)
			})
		}
	}
}
