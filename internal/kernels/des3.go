package kernels

import (
	"fmt"

	"cryptoarch/internal/ciphers/des"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

// 3DES context layout: eight replicated SP tables, then 48 fast-domain
// round-key pairs covering the three EDE stages (stage 2 pre-reversed).
const (
	desSP     = 0    // 8 x 1KB
	desKS     = 8192 // 48 x (kA, kB) words
	desIV     = 8576
	desKey    = 8584 // 24 bytes
	desCtxLen = 8608
)

func init() {
	register(&Kernel{
		Name:        "3des",
		BlockBytes:  8,
		Build:       func(f isa.Feature) *isa.Program { return build3DES(f, false) },
		BuildDec:    func(f isa.Feature) *isa.Program { return build3DES(f, true) },
		BuildSetup:  build3DESSetup,
		InitCtx:     init3DESCtx,
		InitDecCtx:  init3DESDecCtx,
		InitKeyOnly: init3DESKey,
		CtxBytes:    desCtxLen,
		KeyBytes:    24,
		SetupOff:    desKS,
		SetupLen:    48 * 8,
		IVOff:       desIV,
	})
}

func init3DESKey(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if len(key) != 24 {
		return fmt.Errorf("3des kernel: key must be 24 bytes, got %d", len(key))
	}
	sp := des.SPKernelTables()
	for k := 0; k < 8; k++ {
		mem.WriteUint32s(ctx+uint64(1024*k), sp[k][:])
	}
	mem.WriteBytes(ctx+desKey, key)
	if iv != nil {
		mem.WriteBytes(ctx+desIV, iv)
	}
	return nil
}

func init3DESCtx(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if err := init3DESKey(mem, ctx, key, iv); err != nil {
		return err
	}
	t, err := des.New3(key)
	if err != nil {
		return err
	}
	k1, k2, k3 := t.Stages()
	writeStage := func(off uint64, ks [16][2]uint32) {
		for i, pair := range ks {
			mem.Store(ctx+off+uint64(8*i), 4, uint64(pair[0]))
			mem.Store(ctx+off+uint64(8*i+4), 4, uint64(pair[1]))
		}
	}
	writeStage(desKS, k1.FastKeys())
	writeStage(desKS+128, des.FastDecryptKeys(k2))
	writeStage(desKS+256, k3.FastKeys())
	return nil
}

// permMaskValues lists the five swap-network masks in the order they are
// preloaded into registers.
var permMaskValues = []uint32{0x0f0f0f0f, 0x0000ffff, 0x33333333, 0x00ff00ff, 0x55555555}

// emitPermNet emits one of the shared IP/FP swap networks on (l, r),
// selecting preloaded mask registers by mask value (IP and FP use them in
// opposite orders); classified as permutation work for Figure 7.
func emitPermNet(b *isa.Builder, steps []des.PermOpStep, l, r, t isa.Reg, masks [5]isa.Reg) {
	regOf := func(m uint32) isa.Reg {
		for i, v := range permMaskValues {
			if v == m {
				return masks[i]
			}
		}
		panic("des3: unknown permutation mask")
	}
	b.WithClass(isa.ClassPerm, func() {
		for _, s := range steps {
			a1, b1 := l, r
			if s.RFirst {
				a1, b1 = r, l
			}
			b.SRLLI(a1, int64(s.Shift), t)
			b.XOR(t, b1, t)
			b.AND(t, regOf(s.Mask), t)
			b.XOR(b1, t, b1)
			b.SLLLI(t, int64(s.Shift), t)
			b.XOR(a1, t, a1)
		}
	})
}

// emitXboxPerm emits dst = 64-bit permutation of src via 8 XBOX + 7 OR,
// with the packed maps loaded from rodata.
func emitXboxPerm(b *isa.Builder, bitMaps [8][8]uint8, src, dst isa.Reg, acc [4]isa.Reg, mp isa.Reg) {
	b.WithClass(isa.ClassPerm, func() {
		for k := 0; k < 8; k += 2 {
			b.LoadConst64(mp, isa.XboxMap(bitMaps[k]))
			b.XBOX(k, src, mp, acc[k/2])
			b.LoadConst64(mp, isa.XboxMap(bitMaps[k+1]))
			b.XBOX(k+1, src, mp, dst)
			b.OR(acc[k/2], dst, acc[k/2])
		}
		b.OR(acc[0], acc[1], acc[0])
		b.OR(acc[2], acc[3], acc[2])
		b.OR(acc[0], acc[2], dst)
	})
}

// init3DESDecCtx writes the decryption key material: the inverse of EDE is
// D(k3), E(k2), D(k1), which the same 48-round kernel realizes with the
// stage keys [rev(ks3), ks2, rev(ks1)].
func init3DESDecCtx(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if err := init3DESKey(mem, ctx, key, iv); err != nil {
		return err
	}
	t, err := des.New3(key)
	if err != nil {
		return err
	}
	k1, k2, k3 := t.Stages()
	writeStage := func(off uint64, ks [16][2]uint32) {
		for i, pair := range ks {
			mem.Store(ctx+off+uint64(8*i), 4, uint64(pair[0]))
			mem.Store(ctx+off+uint64(8*i+4), 4, uint64(pair[1]))
		}
	}
	writeStage(desKS, des.FastDecryptKeys(k3))
	writeStage(desKS+128, k2.FastKeys())
	writeStage(desKS+256, des.FastDecryptKeys(k1))
	return nil
}

func build3DES(feat isa.Feature, dec bool) *isa.Program {
	name := "3des-"
	if dec {
		name = "3des-dec-"
	}
	b := isa.NewBuilder(name+feat.String(), feat)
	sp := [8]isa.Reg{isa.R4, isa.R5, isa.R6, isa.R7, isa.R20, isa.R21, isa.R22, isa.R23}
	kp := isa.R8
	lr := [2]isa.Reg{isa.R9, isa.R10}
	u, t, kt, tmp, tmp2 := isa.R11, isa.R12, isa.R13, isa.R14, isa.R15
	iv64, x := isa.R24, isa.R25
	masks := [5]isa.Reg{isa.R27, isa.R28, isa.R0, isa.R1, isa.R2}

	for i, r := range sp {
		b.LDA(r, int64(1024*i), isa.RA3)
	}
	b.LDA(kp, desKS, isa.RA3)
	if !feat.CryptoExt {
		for i, m := range permMaskValues {
			b.LoadImm32(masks[i], m)
		}
	}
	b.LDQ(iv64, desIV, isa.RA3)
	b.BEQ(isa.RA2, "done")

	ipBits, fpBits := des.KernelPermMaps()

	ct64 := isa.R3 // incoming ciphertext block (decrypt chaining)
	b.Label("loop")
	b.LDQ(x, 0, isa.RA0)
	if dec {
		b.MOV(x, ct64)
	} else {
		b.XOR(x, iv64, x) // CBC chaining
	}

	l, r := lr[0], lr[1]
	if feat.CryptoExt {
		// Combined load+IP via XBOX: bytes 0..3 = Lf, 4..7 = Rf.
		acc := [4]isa.Reg{u, t, kt, tmp}
		b.WithClass(isa.ClassPerm, func() {
			for k := 0; k < 4; k++ {
				b.LoadConst64(tmp2, isa.XboxMap(ipBits[k]))
				b.XBOX(k, x, tmp2, acc[k])
			}
			b.OR(acc[0], acc[1], acc[0])
			b.OR(acc[2], acc[3], acc[2])
			b.OR(acc[0], acc[2], l)
			b.ZEXTL(l, l)
			for k := 4; k < 8; k++ {
				b.LoadConst64(tmp2, isa.XboxMap(ipBits[k]))
				b.XBOX(k, x, tmp2, acc[k-4])
			}
			b.OR(acc[0], acc[1], acc[0])
			b.OR(acc[2], acc[3], acc[2])
			b.OR(acc[0], acc[2], r)
			b.SRLI(r, 32, r)
		})
	} else {
		b.ZEXTL(x, l)
		b.SRLI(x, 32, r)
		emitPermNet(b, des.IPSteps(), l, r, t, masks)
		// l, r = rotl3(r), rotl3(l).
		b.RotL32I(r, 3, u, tmp)
		b.RotL32I(l, 3, r, tmp)
		b.MOV(u, l)
	}

	// 48 rounds; an extra half-exchange after each 16-round stage.
	for i := 0; i < 48; i++ {
		b.LDL(kt, int64(8*i), kp)
		b.XOR(r, kt, u)
		b.RotR32I(r, 4, t, tmp)
		b.LDL(kt, int64(8*i+4), kp)
		b.XOR(t, kt, t)
		// Even S-boxes from u, odd from t.
		for m := 0; m < 4; m++ {
			b.SBoxXor(2*m, m, sp[2*m], u, l, tmp)
			b.SBoxXor(2*m+1, m, sp[2*m+1], t, l, tmp)
		}
		l, r = r, l
		if i%16 == 15 {
			l, r = r, l
		}
	}

	if feat.CryptoExt {
		// Y = l | r<<32, then FP via XBOX into the output block.
		b.SLLI(r, 32, t)
		b.OR(l, t, x)
		acc := [4]isa.Reg{u, t, kt, tmp}
		emitXboxPerm(b, fpBits, x, tmp2, acc, tmp2)
		if dec {
			b.XOR(tmp2, iv64, tmp2)
			b.STQ(tmp2, 0, isa.RA1)
			b.MOV(ct64, iv64)
		} else {
			b.MOV(tmp2, iv64)
			b.STQ(iv64, 0, isa.RA1)
		}
	} else {
		// l, r = rotr3(r), rotr3(l), then the inverse network.
		b.RotR32I(r, 3, u, tmp)
		b.RotR32I(l, 3, r, tmp)
		b.MOV(u, l)
		emitPermNet(b, des.FPSteps(), l, r, t, masks)
		b.SLLI(r, 32, t)
		if dec {
			b.OR(l, t, t)
			b.XOR(t, iv64, t)
			b.STQ(t, 0, isa.RA1)
			b.MOV(ct64, iv64)
		} else {
			b.OR(l, t, iv64)
			b.STQ(iv64, 0, isa.RA1)
		}
	}

	b.ADDQI(isa.RA0, 8, isa.RA0)
	b.ADDQI(isa.RA1, 8, isa.RA1)
	b.SUBQI(isa.RA2, 8, isa.RA2)
	b.BGT(isa.RA2, "loop")

	b.Label("done")
	b.STQ(iv64, desIV, isa.RA3)
	b.HALT()
	return b.Build()
}

// packGather encodes Gather entries as srcBit | dstSel<<8 | dstPos<<16.
func packGather(gs []des.Gather) []uint32 {
	out := make([]uint32, len(gs))
	for i, g := range gs {
		out[i] = uint32(g.SrcBit) | uint32(g.DstSel)<<8 | uint32(g.DstPos)<<16
	}
	return out
}

// build3DESSetup runs the DES key schedule three times: PC1, sixteen
// 28-bit rotations, and a data-driven PC2-plus-field-placement gather per
// round. Stage 2 subkeys are stored in decryption order, as the EDE kernel
// consumes them. All bit deposits are branch-free (CMOV selects the
// destination word), keeping the gather loops predictable.
func build3DESSetup(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("3des-setup-"+feat.String(), feat)
	pc1 := des.PC1Gather()
	pc2 := des.PC2Gather()
	pc1Off := b.DataWords32(packGather(pc1[:]))
	pc2Off := b.DataWords32(packGather(pc2[:]))
	shifts := des.KSShifts()

	kp := isa.R8
	c, d, cd := isa.R9, isa.R10, isa.R11
	ptr, e, t, t2 := isa.R12, isa.R13, isa.R14, isa.R15
	s, w := isa.R0, isa.R1
	kA, kB := isa.R22, isa.R23
	cnt, keyreg, mask28 := isa.R24, isa.R21, isa.R20

	b.LDA(kp, desKS, isa.RA3)
	b.LoadImm32(mask28, 0x0fffffff)
	b.BR("start")

	// gather48: cd -> (kA, kB) via the PC2+placement table.
	b.Label("gather48")
	b.MOV(isa.RZ, kA)
	b.MOV(isa.RZ, kB)
	b.LDA(ptr, pc2Off, isa.RGP)
	b.LoadImm(cnt, 48)
	b.Label("g48loop")
	b.LDL(e, 0, ptr)
	b.ANDI(e, 63, s)
	b.SRL(cd, s, t)
	b.ANDI(t, 1, t)
	b.SRLI(e, 16, s)
	b.SLL(t, s, t)
	b.EXTBI(e, 1, w)
	b.MOV(t, t2)
	b.CMOVNE(w, isa.RZ, t2) // word 0 deposit
	b.OR(kA, t2, kA)
	b.CMOVEQ(w, isa.RZ, t) // word 1 deposit
	b.OR(kB, t, kB)
	b.ADDQI(ptr, 4, ptr)
	b.SUBQI(cnt, 1, cnt)
	b.BGT(cnt, "g48loop")
	b.RET()

	b.Label("start")
	for st := 0; st < 3; st++ {
		// Big-endian 64-bit stage key.
		b.MOV(isa.RZ, keyreg)
		for i := 0; i < 8; i++ {
			b.LDB(t, desKey+int64(8*st+i), isa.RA3)
			b.INSBI(t, int64(7-i), t)
			b.OR(keyreg, t, keyreg)
		}
		// PC1 into the C and D halves.
		b.MOV(isa.RZ, c)
		b.MOV(isa.RZ, d)
		b.LDA(ptr, pc1Off, isa.RGP)
		b.LoadImm(cnt, 56)
		b.Label(fmt.Sprintf("pc1_%d", st))
		b.LDL(e, 0, ptr)
		b.ANDI(e, 63, s)
		b.SRL(keyreg, s, t)
		b.ANDI(t, 1, t)
		b.SRLI(e, 16, s)
		b.SLL(t, s, t)
		b.EXTBI(e, 1, w)
		b.MOV(t, t2)
		b.CMOVNE(w, isa.RZ, t2)
		b.OR(c, t2, c)
		b.CMOVEQ(w, isa.RZ, t)
		b.OR(d, t, d)
		b.ADDQI(ptr, 4, ptr)
		b.SUBQI(cnt, 1, cnt)
		b.BGT(cnt, fmt.Sprintf("pc1_%d", st))

		for r := 0; r < 16; r++ {
			sh := int64(shifts[r])
			for _, half := range []isa.Reg{c, d} {
				b.SLLI(half, sh, t)
				b.SRLI(half, 28-sh, t2)
				b.OR(t, t2, half)
				b.AND(half, mask28, half)
			}
			b.SLLI(c, 28, t)
			b.OR(t, d, cd)
			b.BSR("gather48")
			slot := r
			if st == 1 {
				slot = 15 - r // decryption order for the middle stage
			}
			b.STL(kA, int64(128*st+8*slot), kp)
			b.STL(kB, int64(128*st+8*slot+4), kp)
		}
	}
	b.HALT()
	return b.Build()
}
