package kernels

import (
	"fmt"

	"cryptoarch/internal/ciphers/rc6"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

// RC6 context layout: no tables, just the 44-word round-key array.
const (
	rc6S      = 0
	rc6IV     = 176
	rc6Key    = 192
	rc6CtxLen = 208
)

func init() {
	register(&Kernel{
		Name:        "rc6",
		BlockBytes:  16,
		Build:       buildRC6,
		BuildDec:    buildRC6Dec,
		BuildSetup:  buildRC6Setup,
		InitCtx:     initRC6Ctx,
		InitKeyOnly: initRC6Key,
		CtxBytes:    rc6CtxLen,
		KeyBytes:    16,
		SetupOff:    rc6S,
		SetupLen:    44 * 4,
		IVOff:       rc6IV,
	})
}

func initRC6Key(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if len(key) != 16 {
		return fmt.Errorf("rc6 kernel: key must be 16 bytes, got %d", len(key))
	}
	mem.WriteBytes(ctx+rc6Key, key)
	if iv != nil {
		mem.WriteBytes(ctx+rc6IV, iv)
	}
	return nil
}

func initRC6Ctx(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if err := initRC6Key(mem, ctx, key, iv); err != nil {
		return err
	}
	c, err := rc6.New(key)
	if err != nil {
		return err
	}
	s := c.Keys()
	mem.WriteUint32s(ctx+rc6S, s[:])
	return nil
}

func buildRC6(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("rc6-"+feat.String(), feat)
	sp := isa.R8
	st := [4]isa.Reg{isa.R9, isa.R10, isa.R11, isa.R12} // A B C D
	iv := [4]isa.Reg{isa.R23, isa.R24, isa.R25, isa.R27}
	t, u, tt, t2 := isa.R13, isa.R14, isa.R15, isa.R22

	b.LDA(sp, rc6S, isa.RA3)
	for i, r := range iv {
		b.LDL(r, rc6IV+int64(4*i), isa.RA3)
	}
	b.BEQ(isa.RA2, "done")

	b.Label("loop")
	for i := 0; i < 4; i++ {
		b.LDL(st[i], int64(4*i), isa.RA0)
		b.XOR(st[i], iv[i], st[i])
	}
	// B += S[0]; D += S[1].
	b.LDL(t, 0, sp)
	b.ADDL(st[1], t, st[1])
	b.LDL(t, 4, sp)
	b.ADDL(st[3], t, st[3])

	cur := [4]int{0, 1, 2, 3}
	for i := 1; i <= rc6.Rounds; i++ {
		a, bb, c, d := st[cur[0]], st[cur[1]], st[cur[2]], st[cur[3]]
		// t = rotl(B*(2B+1), 5); u = rotl(D*(2D+1), 5).
		b.ADDL(bb, bb, t)
		b.ADDLI(t, 1, t)
		b.MULL(bb, t, t)
		b.RotL32I(t, 5, t, t2)
		b.ADDL(d, d, u)
		b.ADDLI(u, 1, u)
		b.MULL(d, u, u)
		b.RotL32I(u, 5, u, t2)
		// A = rotl(A^t, u) + S[2i]; C = rotl(C^u, t) + S[2i+1].
		b.XOR(a, t, a)
		b.RotL32V(a, u, tt, t2)
		b.LDL(t2, int64(8*i), sp)
		b.ADDL(tt, t2, a)
		b.XOR(c, u, c)
		b.RotL32V(c, t, tt, t2)
		b.LDL(t2, int64(8*i+4), sp)
		b.ADDL(tt, t2, c)
		cur = [4]int{cur[1], cur[2], cur[3], cur[0]}
	}
	// A += S[42]; C += S[43]; write ciphertext and chain the IV.
	b.LDL(t, 42*4, sp)
	b.ADDL(st[cur[0]], t, st[cur[0]])
	b.LDL(t, 43*4, sp)
	b.ADDL(st[cur[2]], t, st[cur[2]])
	for i := 0; i < 4; i++ {
		b.MOV(st[cur[i]], iv[i])
		b.STL(iv[i], int64(4*i), isa.RA1)
	}

	b.ADDQI(isa.RA0, 16, isa.RA0)
	b.ADDQI(isa.RA1, 16, isa.RA1)
	b.SUBQI(isa.RA2, 16, isa.RA2)
	b.BGT(isa.RA2, "loop")

	b.Label("done")
	for i, r := range iv {
		b.STL(r, rc6IV+int64(4*i), isa.RA3)
	}
	b.HALT()
	return b.Build()
}

// buildRC6Dec assembles the inverse cipher: rounds run backwards with the
// data-dependent rotates reversed, and the CBC chain is unwound
// (plaintext = D(ct) ^ iv, then iv = ct).
func buildRC6Dec(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("rc6-dec-"+feat.String(), feat)
	sp := isa.R8
	st := [4]isa.Reg{isa.R9, isa.R10, isa.R11, isa.R12} // A B C D
	iv := [4]isa.Reg{isa.R23, isa.R24, isa.R25, isa.R27}
	t, u, tt, t2 := isa.R13, isa.R14, isa.R15, isa.R22

	b.LDA(sp, rc6S, isa.RA3)
	for i, r := range iv {
		b.LDL(r, rc6IV+int64(4*i), isa.RA3)
	}
	b.BEQ(isa.RA2, "done")

	b.Label("loop")
	for i := 0; i < 4; i++ {
		b.LDL(st[i], int64(4*i), isa.RA0)
	}
	// C -= S[43]; A -= S[42].
	b.LDL(t, 43*4, sp)
	b.SUBL(st[2], t, st[2])
	b.LDL(t, 42*4, sp)
	b.SUBL(st[0], t, st[0])

	cur := [4]int{0, 1, 2, 3}
	for i := rc6.Rounds; i >= 1; i-- {
		// Undo the round's renaming first: (a,b,c,d) = (d,a,b,c).
		cur = [4]int{cur[3], cur[0], cur[1], cur[2]}
		a, bb, c, d := st[cur[0]], st[cur[1]], st[cur[2]], st[cur[3]]
		// u = rotl(D*(2D+1),5); t = rotl(B*(2B+1),5).
		b.ADDL(d, d, u)
		b.ADDLI(u, 1, u)
		b.MULL(d, u, u)
		b.RotL32I(u, 5, u, t2)
		b.ADDL(bb, bb, t)
		b.ADDLI(t, 1, t)
		b.MULL(bb, t, t)
		b.RotL32I(t, 5, t, t2)
		// C = rotr(C - S[2i+1], t) ^ u; A = rotr(A - S[2i], u) ^ t.
		b.LDL(t2, int64(8*i+4), sp)
		b.SUBL(c, t2, c)
		b.RotR32V(c, t, tt, t2)
		b.XOR(tt, u, c)
		b.LDL(t2, int64(8*i), sp)
		b.SUBL(a, t2, a)
		b.RotR32V(a, u, tt, t2)
		b.XOR(tt, t, a)
	}
	// D -= S[1]; B -= S[0]; unchain and emit plaintext.
	b.LDL(t, 4, sp)
	b.SUBL(st[cur[3]], t, st[cur[3]])
	b.LDL(t, 0, sp)
	b.SUBL(st[cur[1]], t, st[cur[1]])
	for i := 0; i < 4; i++ {
		b.XOR(st[cur[i]], iv[i], t)
		b.STL(t, int64(4*i), isa.RA1)
		b.LDL(iv[i], int64(4*i), isa.RA0) // iv = this ciphertext block
	}

	b.ADDQI(isa.RA0, 16, isa.RA0)
	b.ADDQI(isa.RA1, 16, isa.RA1)
	b.SUBQI(isa.RA2, 16, isa.RA2)
	b.BGT(isa.RA2, "loop")

	b.Label("done")
	for i, r := range iv {
		b.STL(r, rc6IV+int64(4*i), isa.RA3)
	}
	b.HALT()
	return b.Build()
}

// buildRC6Setup is the RC5-style schedule: fill S with the arithmetic
// progression from P32/Q32, then three interleaved mixing passes with
// data-dependent rotates.
func buildRC6Setup(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("rc6-setup-"+feat.String(), feat)
	sp := isa.R8
	a, bb, iR, jR := isa.R9, isa.R10, isa.R11, isa.R12
	t, t2, t3, cnt := isa.R13, isa.R14, isa.R15, isa.R22
	l := [4]isa.Reg{isa.R23, isa.R24, isa.R25, isa.R27}
	q := isa.R0

	b.LDA(sp, rc6S, isa.RA3)
	// S[0] = P32; S[i] = S[i-1] + Q32.
	b.LoadImm32(t, 0xB7E15163)
	b.LoadImm32(q, 0x9E3779B9)
	b.MOV(sp, t2)
	b.LoadImm(cnt, 44)
	b.Label("fill")
	b.STL(t, 0, t2)
	b.ADDL(t, q, t)
	b.ADDQI(t2, 4, t2)
	b.SUBQI(cnt, 1, cnt)
	b.BGT(cnt, "fill")

	for i, r := range l {
		b.LDL(r, rc6Key+int64(4*i), isa.RA3)
	}
	b.MOV(isa.RZ, a)
	b.MOV(isa.RZ, bb)
	b.MOV(isa.RZ, iR)
	b.MOV(isa.RZ, jR)
	b.LoadImm(cnt, 3*44)
	b.Label("mix")
	// a = S[i] = rotl(S[i]+a+b, 3)
	b.S4ADDQ(iR, sp, t2)
	b.LDL(t, 0, t2)
	b.ADDL(t, a, t)
	b.ADDL(t, bb, t)
	b.RotL32I(t, 3, a, t3)
	b.STL(a, 0, t2)
	// b = L[j] = rotl(L[j]+a+b, a+b). L is kept in registers; select by j
	// with a 4-way dispatch.
	b.ADDL(a, bb, t) // rotation amount (and addend)
	for j := 0; j < 4; j++ {
		b.CMPEQI(jR, int64(j), t2)
		b.BEQ(t2, fmt.Sprintf("notj%d", j))
		b.ADDL(l[j], t, t2)
		b.RotL32V(t2, t, bb, t3)
		b.MOV(bb, l[j])
		b.BR("jdone")
		b.Label(fmt.Sprintf("notj%d", j))
	}
	b.Label("jdone")
	// i = (i+1) % 44; j = (j+1) % 4.
	b.ADDLI(iR, 1, iR)
	b.CMPEQI(iR, 44, t2)
	b.CMOVNE(t2, isa.RZ, iR)
	b.ADDLI(jR, 1, jR)
	b.ANDI(jR, 3, jR)
	b.SUBQI(cnt, 1, cnt)
	b.BGT(cnt, "mix")
	b.HALT()
	return b.Build()
}
