package kernels

import (
	"fmt"

	"cryptoarch/internal/ciphers/rc4"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

// RC4 context layout: the 256-entry state table is held as 32-bit words so
// the aliased SBOX instruction can access it; i and j follow.
const (
	rc4S      = 0
	rc4I      = 1024
	rc4J      = 1028
	rc4Key    = 1032
	rc4CtxLen = 1048
)

func init() {
	register(&Kernel{
		Name:        "rc4",
		BlockBytes:  1,
		Build:       buildRC4,
		BuildDec:    buildRC4, // XOR keystream: decryption is encryption
		BuildSetup:  buildRC4Setup,
		InitCtx:     initRC4Ctx,
		InitKeyOnly: initRC4Key,
		CtxBytes:    rc4CtxLen,
		KeyBytes:    16,
		SetupOff:    rc4S,
		SetupLen:    1024,
	})
}

func initRC4Key(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if len(key) != 16 {
		return fmt.Errorf("rc4 kernel: key must be 16 bytes, got %d", len(key))
	}
	mem.WriteBytes(ctx+rc4Key, key)
	return nil
}

func initRC4Ctx(mem *simmem.Mem, ctx uint64, key, iv []byte) error {
	if err := initRC4Key(mem, ctx, key, iv); err != nil {
		return err
	}
	c, err := rc4.New(key)
	if err != nil {
		return err
	}
	s, i, j := c.State()
	words := make([]uint32, 256)
	for n, v := range s {
		words[n] = uint32(v)
	}
	mem.WriteUint32s(ctx+rc4S, words)
	mem.Store(ctx+rc4I, 4, uint64(i))
	mem.Store(ctx+rc4J, 4, uint64(j))
	return nil
}

// buildRC4 is the keystream generator: the one kernel whose S-box is
// mutated in the inner loop, exercising the SBOX aliased bit and the
// store-address bottleneck of Figure 5.
func buildRC4(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("rc4-"+feat.String(), feat)
	sb := isa.R8
	iR, jR := isa.R9, isa.R10
	si, sj, t, ai, aj := isa.R11, isa.R12, isa.R13, isa.R14, isa.R15

	b.LDA(sb, rc4S, isa.RA3)
	b.LDL(iR, rc4I, isa.RA3)
	b.LDL(jR, rc4J, isa.RA3)
	b.BEQ(isa.RA2, "done")

	b.Label("loop")
	b.ADDLI(iR, 1, iR)
	b.ZEXTB(iR, iR)
	if feat.CryptoExt {
		b.SBOX(0, 0, sb, iR, si, true)
	} else {
		b.WithClass(isa.ClassSubst, func() {
			b.S4ADDQ(iR, sb, ai)
			b.LDL(si, 0, ai)
		})
	}
	b.ADDL(jR, si, jR)
	b.ZEXTB(jR, jR)
	if feat.CryptoExt {
		b.SBOX(0, 0, sb, jR, sj, true)
	} else {
		b.WithClass(isa.ClassSubst, func() {
			b.S4ADDQ(jR, sb, aj)
			b.LDL(sj, 0, aj)
		})
	}
	// Swap S[i] and S[j].
	if feat.CryptoExt {
		b.S4ADDQ(iR, sb, ai)
		b.S4ADDQ(jR, sb, aj)
	}
	b.STL(sj, 0, ai)
	b.STL(si, 0, aj)
	// Keystream byte S[(si+sj) & 255].
	b.ADDL(si, sj, t)
	b.ZEXTB(t, t)
	if feat.CryptoExt {
		b.SBOX(0, 0, sb, t, t, true)
	} else {
		b.WithClass(isa.ClassSubst, func() {
			b.S4ADDQ(t, sb, t)
			b.LDL(t, 0, t)
		})
	}
	b.LDB(si, 0, isa.RA0) // reuse si as the input byte (dead until next iter)
	b.XOR(t, si, t)
	b.STB(t, 0, isa.RA1)

	b.ADDQI(isa.RA0, 1, isa.RA0)
	b.ADDQI(isa.RA1, 1, isa.RA1)
	b.SUBQI(isa.RA2, 1, isa.RA2)
	b.BGT(isa.RA2, "loop")

	b.Label("done")
	b.STL(iR, rc4I, isa.RA3)
	b.STL(jR, rc4J, isa.RA3)
	b.HALT()
	return b.Build()
}

// buildRC4Setup is the key-scheduling algorithm: identity fill, then 256
// key-driven swaps.
func buildRC4Setup(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("rc4-setup-"+feat.String(), feat)
	sb := isa.R8
	iR, jR := isa.R9, isa.R10
	si, sj, t, ai, aj := isa.R11, isa.R12, isa.R13, isa.R14, isa.R15

	b.LDA(sb, rc4S, isa.RA3)
	// S[i] = i.
	b.MOV(isa.RZ, iR)
	b.MOV(sb, ai)
	b.Label("fill")
	b.STL(iR, 0, ai)
	b.ADDQI(ai, 4, ai)
	b.ADDLI(iR, 1, iR)
	b.SRLLI(iR, 8, t)
	b.BEQ(t, "fill")

	b.MOV(isa.RZ, iR)
	b.MOV(isa.RZ, jR)
	b.Label("ksa")
	b.S4ADDQ(iR, sb, ai)
	b.LDL(si, 0, ai)
	b.ANDI(iR, 15, t) // key[i % 16]
	b.ADDQ(t, isa.RA3, t)
	b.LDB(t, rc4Key, t)
	b.ADDL(jR, si, jR)
	b.ADDL(jR, t, jR)
	b.ZEXTB(jR, jR)
	b.S4ADDQ(jR, sb, aj)
	b.LDL(sj, 0, aj)
	b.STL(sj, 0, ai)
	b.STL(si, 0, aj)
	b.ADDLI(iR, 1, iR)
	b.SRLLI(iR, 8, t)
	b.BEQ(t, "ksa")
	// i and j restart at zero for the stream.
	b.STL(isa.RZ, rc4I, isa.RA3)
	b.STL(isa.RZ, rc4J, isa.RA3)
	if feat.CryptoExt {
		b.SBOXSYNC(0)
	}
	b.HALT()
	return b.Build()
}
