package kernels

import (
	"strings"
	"testing"

	"cryptoarch/internal/isa"
)

// TestBuildSafeConvertsPanics pins the API-boundary contract: a kernel
// builder that panics (malformed macro, undefined label) surfaces as an
// error from NewRun and friends, not a process crash.
func TestBuildSafeConvertsPanics(t *testing.T) {
	broken := func(isa.Feature) *isa.Program {
		b := isa.NewBuilder("broken", isa.FeatNoRot)
		b.BR("nowhere") // undefined label: Build panics
		return b.Build()
	}
	_, err := buildSafe("broken", broken, isa.FeatNoRot)
	if err == nil {
		t.Fatal("builder panic not converted to an error")
	}
	if !strings.Contains(err.Error(), "building broken") {
		t.Fatalf("err = %v, want kernel attribution", err)
	}

	k, err := Get("blowfish")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buildSafe(k.Name, k.Build, isa.FeatOpt); err != nil {
		t.Fatalf("healthy builder reported an error: %v", err)
	}
}
