package ciphers_test

import (
	"bytes"
	"math/rand"
	"testing"

	"cryptoarch/internal/ciphers"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"3des", "blowfish", "idea", "mars", "rc4", "rc6", "rijndael", "twofish"}
	got := ciphers.Names()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestCBCRoundTripAllCiphers(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, name := range ciphers.Names() {
		c, err := ciphers.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		key := make([]byte, c.KeyBytes())
		rng.Read(key)
		if c.Info.Stream {
			s1, err := c.NewStream(key)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			s2, _ := c.NewStream(key)
			msg := make([]byte, 1024)
			rng.Read(msg)
			ct := make([]byte, len(msg))
			back := make([]byte, len(msg))
			s1.XORKeyStream(ct, msg)
			s2.XORKeyStream(back, ct)
			if !bytes.Equal(back, msg) {
				t.Errorf("%s: stream roundtrip failed", name)
			}
			continue
		}
		b, err := c.NewBlock(key)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.BlockSize()*8 != c.Info.BlockBits {
			t.Errorf("%s: block size %d bits, Table 1 says %d",
				name, b.BlockSize()*8, c.Info.BlockBits)
		}
		msg := make([]byte, 16*b.BlockSize())
		rng.Read(msg)
		iv := make([]byte, b.BlockSize())
		rng.Read(iv)
		ivEnc := append([]byte(nil), iv...)
		ivDec := append([]byte(nil), iv...)
		ct := make([]byte, len(msg))
		back := make([]byte, len(msg))
		ciphers.CBCEncrypt(b, ivEnc, ct, msg)
		ciphers.CBCDecrypt(b, ivDec, back, ct)
		if !bytes.Equal(back, msg) {
			t.Errorf("%s: CBC roundtrip failed", name)
		}
		if !bytes.Equal(ivEnc, ivDec) {
			t.Errorf("%s: IV chaining diverged", name)
		}
		if !bytes.Equal(ivEnc, ct[len(ct)-b.BlockSize():]) {
			t.Errorf("%s: IV not last ciphertext block", name)
		}
	}
}

func TestCBCChainingSplitsEqualWhole(t *testing.T) {
	// Encrypting a session in two calls must equal one call (the kernels
	// process sessions block-at-a-time with the IV carried in context).
	c, _ := ciphers.Lookup("blowfish")
	key := make([]byte, 16)
	b, _ := c.NewBlock(key)
	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte(i)
	}
	ivA := make([]byte, 8)
	ivB := make([]byte, 8)
	whole := make([]byte, 64)
	parts := make([]byte, 64)
	ciphers.CBCEncrypt(b, ivA, whole, msg)
	ciphers.CBCEncrypt(b, ivB, parts[:32], msg[:32])
	ciphers.CBCEncrypt(b, ivB, parts[32:], msg[32:])
	if !bytes.Equal(whole, parts) {
		t.Fatal("split CBC differs from whole")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := ciphers.Lookup("des5"); err == nil {
		t.Fatal("unknown cipher accepted")
	}
}
