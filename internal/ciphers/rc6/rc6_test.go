package rc6

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
)

// Vectors from the RC6 AES submission.
var kats = []struct{ key, pt, ct string }{
	{
		"00000000000000000000000000000000",
		"00000000000000000000000000000000",
		"8fc3a53656b1f778c129df4e9848a41e",
	},
	{
		"0123456789abcdef0112233445566778",
		"02132435465768798a9bacbdcedfe0f1",
		"524e192f4715c6231f51f6367ea43f18",
	},
}

func TestKnownAnswers(t *testing.T) {
	for _, v := range kats {
		key, _ := hex.DecodeString(v.key)
		pt, _ := hex.DecodeString(v.pt)
		want, _ := hex.DecodeString(v.ct)
		c, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		c.Encrypt(got, pt)
		if !bytes.Equal(got, want) {
			t.Errorf("key %s: got %x want %s", v.key, got, v.ct)
		}
		back := make([]byte, 16)
		c.Decrypt(back, got)
		if !bytes.Equal(back, pt) {
			t.Errorf("key %s: decrypt mismatch", v.key)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 100; i++ {
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		c, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		ct := make([]byte, 16)
		back := make([]byte, 16)
		c.Encrypt(ct, pt)
		c.Decrypt(back, ct)
		if !bytes.Equal(back, pt) {
			t.Fatalf("key %x pt %x: roundtrip failed", key, pt)
		}
	}
}

func TestKeySchedule(t *testing.T) {
	c, _ := New(make([]byte, 16))
	if len(c.s) != 44 {
		t.Fatalf("expected 44 round keys, got %d", len(c.s))
	}
	// The mixed schedule must differ from the raw arithmetic progression.
	if c.s[0] == p32 {
		t.Fatal("key schedule mixing did not run")
	}
}
