// Package rc6 implements the RC6-32/20/16 block cipher (Rivest et al., AES
// finalist) from scratch: 128-bit blocks, 128-bit keys, 20 rounds. RC6's
// kernel is dominated by 32-bit multiplies and data-dependent rotates,
// making it (with IDEA) one of the paper's "computational" ciphers.
//
// Note: the paper's Table 1 lists 18 rounds for RC6; the algorithm as
// submitted to AES specifies 20, which is what this package implements.
package rc6

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Algorithm parameters (w=32, r=20, b=16).
const (
	BlockSize = 16
	KeySize   = 16
	Rounds    = 20
	numKeys   = 2*Rounds + 4 // 44
)

// Magic constants P32 (odd((e-2)<<32)) and Q32 (odd((phi-1)<<32)).
const (
	p32 = 0xB7E15163
	q32 = 0x9E3779B9
)

const lgw = 5 // log2(32)

// RC6 is a keyed instance.
type RC6 struct {
	s [numKeys]uint32
}

// New returns an RC6 instance keyed with a 16-byte key.
func New(key []byte) (*RC6, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("rc6: key must be %d bytes, got %d", KeySize, len(key))
	}
	c := &RC6{}
	var l [4]uint32
	for i := range l {
		l[i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	c.s[0] = p32
	for i := 1; i < numKeys; i++ {
		c.s[i] = c.s[i-1] + q32
	}
	var a, b uint32
	i, j := 0, 0
	for k := 0; k < 3*numKeys; k++ {
		a = bits.RotateLeft32(c.s[i]+a+b, 3)
		c.s[i] = a
		b = bits.RotateLeft32(l[j]+a+b, int(a+b)&31)
		l[j] = b
		i = (i + 1) % numKeys
		j = (j + 1) % len(l)
	}
	return c, nil
}

// Keys exposes the round-key table for the AXP64 kernels.
func (c *RC6) Keys() [numKeys]uint32 { return c.s }

// BlockSize implements ciphers.Block.
func (c *RC6) BlockSize() int { return BlockSize }

// Encrypt implements ciphers.Block.
func (c *RC6) Encrypt(dst, src []byte) {
	a := binary.LittleEndian.Uint32(src[0:])
	b := binary.LittleEndian.Uint32(src[4:])
	cc := binary.LittleEndian.Uint32(src[8:])
	d := binary.LittleEndian.Uint32(src[12:])
	b += c.s[0]
	d += c.s[1]
	for i := 1; i <= Rounds; i++ {
		t := bits.RotateLeft32(b*(2*b+1), lgw)
		u := bits.RotateLeft32(d*(2*d+1), lgw)
		a = bits.RotateLeft32(a^t, int(u)&31) + c.s[2*i]
		cc = bits.RotateLeft32(cc^u, int(t)&31) + c.s[2*i+1]
		a, b, cc, d = b, cc, d, a
	}
	a += c.s[2*Rounds+2]
	cc += c.s[2*Rounds+3]
	binary.LittleEndian.PutUint32(dst[0:], a)
	binary.LittleEndian.PutUint32(dst[4:], b)
	binary.LittleEndian.PutUint32(dst[8:], cc)
	binary.LittleEndian.PutUint32(dst[12:], d)
}

// Decrypt implements ciphers.Block.
func (c *RC6) Decrypt(dst, src []byte) {
	a := binary.LittleEndian.Uint32(src[0:])
	b := binary.LittleEndian.Uint32(src[4:])
	cc := binary.LittleEndian.Uint32(src[8:])
	d := binary.LittleEndian.Uint32(src[12:])
	cc -= c.s[2*Rounds+3]
	a -= c.s[2*Rounds+2]
	for i := Rounds; i >= 1; i-- {
		a, b, cc, d = d, a, b, cc
		u := bits.RotateLeft32(d*(2*d+1), lgw)
		t := bits.RotateLeft32(b*(2*b+1), lgw)
		cc = bits.RotateLeft32(cc-c.s[2*i+1], -(int(t)&31)) ^ u
		a = bits.RotateLeft32(a-c.s[2*i], -(int(u)&31)) ^ t
	}
	d -= c.s[1]
	b -= c.s[0]
	binary.LittleEndian.PutUint32(dst[0:], a)
	binary.LittleEndian.PutUint32(dst[4:], b)
	binary.LittleEndian.PutUint32(dst[8:], cc)
	binary.LittleEndian.PutUint32(dst[12:], d)
}
