// Package twofish implements the Twofish block cipher (Schneier et al.,
// AES finalist) from scratch for 128-bit keys: 16 rounds of a Feistel
// network whose round function g is, after key setup, four key-dependent
// 256x32-bit table lookups plus a pseudo-Hadamard transform — exactly the
// "full keying" option the paper's optimized kernels rely on. The four
// tables are exported for the AXP64 kernels.
package twofish

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// BlockSize and KeySize are the paper's configuration.
const (
	BlockSize = 16
	KeySize   = 16
	rounds    = 16
)

// GF(2^8) reduction polynomials: MDS uses v(x)=x^8+x^6+x^5+x^3+1, the RS
// code uses w(x)=x^8+x^6+x^3+x^2+1.
const (
	mdsPoly = 0x169
	rsPoly  = 0x14d
)

func gfMul(a, b byte, poly uint32) byte {
	var p uint32
	x := uint32(a)
	for b != 0 {
		if b&1 != 0 {
			p ^= x
		}
		x <<= 1
		if x&0x100 != 0 {
			x ^= poly
		}
		b >>= 1
	}
	return byte(p)
}

var mds = [4][4]byte{
	{0x01, 0xEF, 0x5B, 0x5B},
	{0x5B, 0xEF, 0xEF, 0x01},
	{0xEF, 0x5B, 0x01, 0xEF},
	{0xEF, 0x01, 0xEF, 0x5B},
}

var rs = [4][8]byte{
	{0x01, 0xA4, 0x55, 0x87, 0x5A, 0x58, 0xDB, 0x9E},
	{0xA4, 0x56, 0x82, 0xF3, 0x1E, 0xC6, 0x68, 0xE5},
	{0x02, 0xA1, 0xFC, 0xC1, 0x47, 0xAE, 0x3D, 0x19},
	{0xA4, 0x55, 0x87, 0x5A, 0x58, 0xDB, 0x9E, 0x03},
}

// q0 and q1 are the fixed 8-bit permutations, built constructively from
// the spec's 4-bit tables.
var q0, q1 [256]byte

func buildQ(t0, t1, t2, t3 [16]byte) (q [256]byte) {
	ror4 := func(x byte, n uint) byte { return (x>>n | x<<(4-n)) & 0xf }
	for x := 0; x < 256; x++ {
		a0, b0 := byte(x)/16, byte(x)%16
		a1 := a0 ^ b0
		b1 := (a0 ^ ror4(b0, 1) ^ (a0 << 3)) & 0xf
		a2, b2 := t0[a1], t1[b1]
		a3 := a2 ^ b2
		b3 := (a2 ^ ror4(b2, 1) ^ (a2 << 3)) & 0xf
		a4, b4 := t2[a3], t3[b3]
		q[x] = b4<<4 | a4
	}
	return q
}

func init() {
	q0 = buildQ(
		[16]byte{0x8, 0x1, 0x7, 0xD, 0x6, 0xF, 0x3, 0x2, 0x0, 0xB, 0x5, 0x9, 0xE, 0xC, 0xA, 0x4},
		[16]byte{0xE, 0xC, 0xB, 0x8, 0x1, 0x2, 0x3, 0x5, 0xF, 0x4, 0xA, 0x6, 0x7, 0x0, 0x9, 0xD},
		[16]byte{0xB, 0xA, 0x5, 0xE, 0x6, 0xD, 0x9, 0x0, 0xC, 0x8, 0xF, 0x3, 0x2, 0x4, 0x7, 0x1},
		[16]byte{0xD, 0x7, 0xF, 0x4, 0x1, 0x2, 0x6, 0xE, 0x9, 0xB, 0x3, 0x0, 0x8, 0x5, 0xC, 0xA},
	)
	q1 = buildQ(
		[16]byte{0x2, 0x8, 0xB, 0xD, 0xF, 0x7, 0x6, 0xE, 0x3, 0x1, 0x9, 0x4, 0x0, 0xA, 0xC, 0x5},
		[16]byte{0x1, 0xE, 0x2, 0xB, 0x4, 0xC, 0x3, 0x7, 0x6, 0xD, 0xA, 0x5, 0xF, 0x9, 0x0, 0x8},
		[16]byte{0x4, 0xC, 0x7, 0x5, 0x1, 0x6, 0x9, 0xA, 0x0, 0xE, 0xD, 0x8, 0x2, 0xB, 0x3, 0xF},
		[16]byte{0xB, 0x9, 0x5, 0x1, 0xC, 0x3, 0xD, 0xE, 0x6, 0x4, 0x7, 0xF, 0x2, 0x0, 0x8, 0xA},
	)
}

// mdsColumn multiplies the MDS matrix by a unit vector scaled by v in byte
// position col, returning the packed little-endian column contribution.
func mdsColumn(v byte, col int) uint32 {
	var w uint32
	for row := 0; row < 4; row++ {
		w |= uint32(gfMul(mds[row][col], v, mdsPoly)) << (8 * row)
	}
	return w
}

// hByte runs the k=2 q-permutation chain for output byte i of h.
func hByte(i int, x, l0, l1 byte) byte {
	// Outer/middle/inner q selections for k=2, per the spec's h diagram.
	switch i {
	case 0:
		return q1[q0[q0[x]^l1]^l0]
	case 1:
		return q0[q0[q1[x]^l1]^l0]
	case 2:
		return q1[q1[q0[x]^l1]^l0]
	default:
		return q0[q1[q1[x]^l1]^l0]
	}
}

// h is the full h function for k=2: the q chain on each byte of x keyed by
// words l0 (outer) and l1 (inner), then the MDS matrix.
func h(x uint32, l0, l1 uint32) uint32 {
	var out uint32
	for i := 0; i < 4; i++ {
		z := hByte(i, byte(x>>(8*i)), byte(l0>>(8*i)), byte(l1>>(8*i)))
		out ^= mdsColumn(z, i)
	}
	return out
}

// QTables exposes the two fixed 8-bit permutations (static data for the
// AXP64 setup program).
func QTables() (a, b [256]byte) { return q0, q1 }

// MdsColumns returns mdsCol[i][v] = the packed MDS contribution of value v
// in byte position i — the static tables the setup program composes with
// the q chains.
func MdsColumns() (out [4][256]uint32) {
	for i := 0; i < 4; i++ {
		for v := 0; v < 256; v++ {
			out[i][v] = mdsColumn(byte(v), i)
		}
	}
	return out
}

// RSMatrix exposes the Reed-Solomon matrix used by the key schedule.
func RSMatrix() [4][8]byte { return rs }

// RSPoly is the GF(2^8) reduction polynomial of the RS code.
const RSPoly = rsPoly

// SWords computes the two RS-derived key words (exposed for setup
// validation).
func SWords(key []byte) (s0, s1 uint32) {
	var s [2]uint32
	for half := 0; half < 2; half++ {
		for row := 0; row < 4; row++ {
			var acc byte
			for col := 0; col < 8; col++ {
				acc ^= gfMul(rs[row][col], key[8*half+col], rsPoly)
			}
			s[half] |= uint32(acc) << (8 * row)
		}
	}
	return s[0], s[1]
}

// Twofish is a keyed instance.
type Twofish struct {
	k    [8 + 2*rounds]uint32 // whitening + round subkeys
	sbox [4][256]uint32       // full-keying tables: g(x) = ^ sbox[i][byte i]
}

// New returns a Twofish instance keyed with a 16-byte key.
func New(key []byte) (*Twofish, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("twofish: key must be %d bytes, got %d", KeySize, len(key))
	}
	tf := &Twofish{}
	m0 := binary.LittleEndian.Uint32(key[0:])
	m1 := binary.LittleEndian.Uint32(key[4:])
	m2 := binary.LittleEndian.Uint32(key[8:])
	m3 := binary.LittleEndian.Uint32(key[12:])
	// RS-derived words S0 (first 8 key bytes), S1 (last 8); g uses them in
	// reversed order (S1 outer... i.e. l0 = S1? no: g(x) = h(x, (S1,S0))
	// with S1 as the first/outer word).
	var s [2]uint32
	for half := 0; half < 2; half++ {
		for row := 0; row < 4; row++ {
			var acc byte
			for col := 0; col < 8; col++ {
				acc ^= gfMul(rs[row][col], key[8*half+col], rsPoly)
			}
			s[half] |= uint32(acc) << (8 * row)
		}
	}
	// Round subkeys.
	const rho = 0x01010101
	for i := 0; i < 4+rounds; i++ {
		a := h(uint32(2*i)*rho, m0, m2)
		b := bits.RotateLeft32(h(uint32(2*i+1)*rho, m1, m3), 8)
		tf.k[2*i] = a + b
		tf.k[2*i+1] = bits.RotateLeft32(a+2*b, 9)
	}
	// Full-keying tables: fold the key-dependent q chains and MDS into
	// four 256-entry word tables, so g is 4 lookups + 3 XORs.
	for i := 0; i < 4; i++ {
		l0 := byte(s[1] >> (8 * i)) // outer key byte (S1 first)
		l1 := byte(s[0] >> (8 * i))
		for x := 0; x < 256; x++ {
			tf.sbox[i][x] = mdsColumn(hByte(i, byte(x), l0, l1), i)
		}
	}
	return tf, nil
}

// g is the round function: four key-dependent table lookups XORed.
func (tf *Twofish) g(x uint32) uint32 {
	return tf.sbox[0][x&0xff] ^ tf.sbox[1][x>>8&0xff] ^
		tf.sbox[2][x>>16&0xff] ^ tf.sbox[3][x>>24]
}

// Keys exposes the subkey array; Tables exposes the full-keying tables.
// Both are consumed by the AXP64 kernels.
func (tf *Twofish) Keys() [8 + 2*rounds]uint32 { return tf.k }

// Tables returns the four key-dependent lookup tables.
func (tf *Twofish) Tables() *[4][256]uint32 { return &tf.sbox }

// BlockSize implements ciphers.Block.
func (tf *Twofish) BlockSize() int { return BlockSize }

// Encrypt implements ciphers.Block.
func (tf *Twofish) Encrypt(dst, src []byte) {
	a := binary.LittleEndian.Uint32(src[0:]) ^ tf.k[0]
	b := binary.LittleEndian.Uint32(src[4:]) ^ tf.k[1]
	c := binary.LittleEndian.Uint32(src[8:]) ^ tf.k[2]
	d := binary.LittleEndian.Uint32(src[12:]) ^ tf.k[3]
	for r := 0; r < rounds; r++ {
		t0 := tf.g(a)
		t1 := tf.g(bits.RotateLeft32(b, 8))
		c = bits.RotateLeft32(c^(t0+t1+tf.k[8+2*r]), -1)
		d = bits.RotateLeft32(d, 1) ^ (t0 + 2*t1 + tf.k[9+2*r])
		a, b, c, d = c, d, a, b
	}
	// The output is taken with the last swap undone, then whitened.
	binary.LittleEndian.PutUint32(dst[0:], c^tf.k[4])
	binary.LittleEndian.PutUint32(dst[4:], d^tf.k[5])
	binary.LittleEndian.PutUint32(dst[8:], a^tf.k[6])
	binary.LittleEndian.PutUint32(dst[12:], b^tf.k[7])
}

// Decrypt implements ciphers.Block.
func (tf *Twofish) Decrypt(dst, src []byte) {
	c := binary.LittleEndian.Uint32(src[0:]) ^ tf.k[4]
	d := binary.LittleEndian.Uint32(src[4:]) ^ tf.k[5]
	a := binary.LittleEndian.Uint32(src[8:]) ^ tf.k[6]
	b := binary.LittleEndian.Uint32(src[12:]) ^ tf.k[7]
	for r := rounds - 1; r >= 0; r-- {
		a, b, c, d = c, d, a, b // undo the round's swap first
		t0 := tf.g(a)
		t1 := tf.g(bits.RotateLeft32(b, 8))
		c = bits.RotateLeft32(c, 1) ^ (t0 + t1 + tf.k[8+2*r])
		d = bits.RotateLeft32(d^(t0+2*t1+tf.k[9+2*r]), -1)
	}
	binary.LittleEndian.PutUint32(dst[0:], a^tf.k[0])
	binary.LittleEndian.PutUint32(dst[4:], b^tf.k[1])
	binary.LittleEndian.PutUint32(dst[8:], c^tf.k[2])
	binary.LittleEndian.PutUint32(dst[12:], d^tf.k[3])
}
