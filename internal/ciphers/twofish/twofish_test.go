package twofish

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
)

func TestKnownAnswer(t *testing.T) {
	// Twofish 128-bit KAT: all-zero key, all-zero plaintext.
	key := make([]byte, 16)
	pt := make([]byte, 16)
	want, _ := hex.DecodeString("9f589f5cf6122c32b6bfec2f2ae8c35a")
	tf, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	tf.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("got %x want %x", got, want)
	}
	back := make([]byte, 16)
	tf.Decrypt(back, got)
	if !bytes.Equal(back, pt) {
		t.Fatalf("decrypt: got %x", back)
	}
}

func TestIterativeKnownAnswer(t *testing.T) {
	// The spec's iterative sanity test: starting from all-zero key and
	// plaintext, repeatedly encrypt using the previous plaintext as key.
	// After 49 iterations the ciphertext is a published constant.
	key := make([]byte, 16)
	pt := make([]byte, 16)
	var ct []byte
	for i := 0; i < 49; i++ {
		tf, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		ct = make([]byte, 16)
		tf.Encrypt(ct, pt)
		key, pt = pt, ct
	}
	want, _ := hex.DecodeString("5d9d4eeffa9151575524f115815a12e0")
	if !bytes.Equal(ct, want) {
		t.Fatalf("iteration 49: got %x want %x", ct, want)
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 100; i++ {
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		tf, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		ct := make([]byte, 16)
		back := make([]byte, 16)
		tf.Encrypt(ct, pt)
		tf.Decrypt(back, ct)
		if !bytes.Equal(back, pt) {
			t.Fatalf("key %x pt %x: roundtrip failed", key, pt)
		}
	}
}

func TestQPermutations(t *testing.T) {
	// q0 and q1 must be permutations of 0..255.
	for name, q := range map[string]*[256]byte{"q0": &q0, "q1": &q1} {
		var seen [256]bool
		for _, v := range q {
			if seen[v] {
				t.Fatalf("%s is not a permutation", name)
			}
			seen[v] = true
		}
	}
}

func TestFullKeyingMatchesH(t *testing.T) {
	// g computed via the folded tables must equal h(x, (S1, S0)).
	key := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	tf, _ := New(key)
	rng := rand.New(rand.NewSource(52))
	for i := 0; i < 1000; i++ {
		x := rng.Uint32()
		want := tf.sbox[0][x&0xff] ^ tf.sbox[1][x>>8&0xff] ^
			tf.sbox[2][x>>16&0xff] ^ tf.sbox[3][x>>24]
		if tf.g(x) != want {
			t.Fatalf("g(%08x) inconsistent", x)
		}
	}
}
