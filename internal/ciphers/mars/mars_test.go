package mars

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 200; i++ {
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		m, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		ct := make([]byte, 16)
		back := make([]byte, 16)
		m.Encrypt(ct, pt)
		m.Decrypt(back, ct)
		if !bytes.Equal(back, pt) {
			t.Fatalf("key %x pt %x: roundtrip failed (ct %x back %x)", key, pt, ct, back)
		}
		if bytes.Equal(ct, pt) {
			t.Fatalf("ciphertext equals plaintext")
		}
	}
}

func TestMultiplicationKeysFixed(t *testing.T) {
	// Every core multiplier K[5], K[7], ..., K[35] must be ≡ 3 (mod 4)
	// and contain no interior run of ten or more equal bits.
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 50; trial++ {
		key := make([]byte, 16)
		rng.Read(key)
		m, _ := New(key)
		for i := 5; i <= 35; i += 2 {
			if m.k[i]&3 != 3 {
				t.Fatalf("K[%d] = %08x not ≡ 3 mod 4", i, m.k[i])
			}
		}
	}
}

func TestAvalanche(t *testing.T) {
	// Flipping any single plaintext bit should flip roughly half the
	// ciphertext bits (diffusion; the paper's strength criterion).
	key := []byte("0123456789abcdef")
	m, _ := New(key)
	pt := make([]byte, 16)
	base := make([]byte, 16)
	m.Encrypt(base, pt)
	total := 0
	trials := 0
	for bit := 0; bit < 128; bit += 7 {
		mod := make([]byte, 16)
		copy(mod, pt)
		mod[bit/8] ^= 1 << uint(bit%8)
		ct := make([]byte, 16)
		m.Encrypt(ct, mod)
		diff := 0
		for i := range ct {
			b := ct[i] ^ base[i]
			for b != 0 {
				diff += int(b & 1)
				b >>= 1
			}
		}
		total += diff
		trials++
	}
	avg := float64(total) / float64(trials)
	if avg < 48 || avg > 80 {
		t.Fatalf("average avalanche %f bits of 128; diffusion broken", avg)
	}
}

func TestRunMask(t *testing.T) {
	// A word with a long run of zeros has interior run bits masked.
	if runMask(0xffffffff) == 0 {
		t.Error("all-ones word should have a masked interior")
	}
	if runMask(0x55555555) != 0 {
		t.Error("alternating bits have no runs")
	}
	// Ten zeros at positions 4..13: interior is 5..12.
	w := ^uint32(0x3ff0)
	m := runMask(w)
	if m == 0 {
		t.Fatal("10-bit run not detected")
	}
	if m&(1<<4) != 0 || m&(1<<13) != 0 {
		t.Error("run endpoints must not be masked")
	}
	if m&(1<<8) == 0 {
		t.Error("run interior must be masked")
	}
}

func TestSboxDeterministic(t *testing.T) {
	s := Sbox()
	if s[0] == 0 && s[1] == 0 {
		t.Fatal("sbox not initialized")
	}
	// Rough balance check: ones density of the table near 50%.
	ones := 0
	for _, w := range s {
		for b := w; b != 0; b >>= 1 {
			ones += int(b & 1)
		}
	}
	frac := float64(ones) / float64(512*32)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("sbox ones density %f; not balanced", frac)
	}
}
