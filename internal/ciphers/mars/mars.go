// Package mars implements the MARS block cipher (IBM, AES finalist) for
// 128-bit keys: a type-3 Feistel network with 8 rounds of unkeyed forward
// mixing, a 16-round keyed cryptographic core built on the E-function (one
// 512-entry S-box lookup, one 32-bit multiply, fixed and data-dependent
// rotates), and 8 rounds of backwards mixing.
//
// Faithfulness note (also recorded in DESIGN.md): the official MARS S-box
// is generated from SHA-1 digests of a fixed seed and the official test
// vectors were not available offline, so this package is a
// structure-faithful reconstruction: the S-box is a deterministic
// pseudorandom 512-word table (SHA-256 counter mode), and the mixing-phase
// byte schedule follows the spec's shape. Encryption and decryption are
// exact inverses by construction, and the operation mix — which is what
// the paper's experiments measure — matches the real MARS round for round.
package mars

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/bits"
)

// BlockSize and KeySize are the paper's configuration.
const (
	BlockSize  = 16
	KeySize    = 16
	coreRounds = 16
	mixRounds  = 8
	numKeys    = 40
)

// sbox is the 512-word MARS S-box; S0 is the first 256 words, S1 the rest.
var sbox [512]uint32

func init() {
	// Deterministic pseudorandom fill (see the package comment).
	var ctr [8]byte
	idx := 0
	for block := 0; idx < len(sbox); block++ {
		binary.LittleEndian.PutUint64(ctr[:], uint64(block))
		sum := sha256.Sum256(append([]byte("MARS-sbox-v1:"), ctr[:]...))
		for off := 0; off+4 <= len(sum) && idx < len(sbox); off += 4 {
			sbox[idx] = binary.LittleEndian.Uint32(sum[off:])
			idx++
		}
	}
}

// Sbox exposes the 512-word table for the AXP64 kernels.
func Sbox() *[512]uint32 { return &sbox }

func s0(b byte) uint32 { return sbox[b] }
func s1(b byte) uint32 { return sbox[256+int(b)] }

// bFix is the table of constants used when fixing multiplication keys.
var bFix = [4]uint32{0xa4a8d57b, 0x5b5d193b, 0xc8a8309b, 0x73f9a978}

// BFix exposes the multiplication-key fixing constants for the AXP64 setup
// program.
func BFix() [4]uint32 { return bFix }

// MARS is a keyed instance.
type MARS struct {
	k [numKeys]uint32
}

// New returns a MARS instance keyed with a 16-byte key.
func New(key []byte) (*MARS, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("mars: key must be %d bytes, got %d", KeySize, len(key))
	}
	m := &MARS{}
	m.expand(key)
	return m, nil
}

// expand is the amended MARS key expansion: a 15-word linear recurrence,
// four S-box stirring passes per output group, and multiplication-key
// fixing so every core multiplier is ≡ 3 (mod 4) with no long runs of
// equal bits.
func (m *MARS) expand(key []byte) {
	var t [15]uint32
	n := 4
	for i := 0; i < n; i++ {
		t[i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	t[n] = uint32(n)
	for j := 0; j < 4; j++ {
		for i := 0; i < 15; i++ {
			t[i] ^= bits.RotateLeft32(t[(i+8)%15]^t[(i+13)%15], 3) ^ uint32(4*i+j)
		}
		for pass := 0; pass < 4; pass++ {
			for i := 0; i < 15; i++ {
				t[i] = bits.RotateLeft32(t[i]+sbox[t[(i+14)%15]&0x1ff], 9)
			}
		}
		for i := 0; i < 10; i++ {
			m.k[10*j+i] = t[(4*i)%15]
		}
	}
	// Fix the multiplication keys K[5], K[7], ..., K[35].
	for i := 5; i <= 35; i += 2 {
		j := m.k[i] & 3
		w := m.k[i] | 3
		mask := runMask(w)
		r := m.k[i-1] & 0x1f
		p := bits.RotateLeft32(bFix[j], int(r))
		m.k[i] = w ^ (p & mask)
	}
}

// runMask marks the interior bits (positions 2..30) of runs of ten or more
// consecutive equal bits in w.
func runMask(w uint32) uint32 {
	var mask uint32
	start := 0
	for i := 1; i <= 32; i++ {
		if i == 32 || (w>>uint(i))&1 != (w>>uint(start))&1 {
			if i-start >= 10 {
				for l := start + 1; l < i-1; l++ {
					if l >= 2 && l <= 30 {
						mask |= 1 << uint(l)
					}
				}
			}
			start = i
		}
	}
	return mask
}

// Keys exposes the expanded key for the AXP64 kernels.
func (m *MARS) Keys() [numKeys]uint32 { return m.k }

// BlockSize implements ciphers.Block.
func (m *MARS) BlockSize() int { return BlockSize }

// Encrypt implements ciphers.Block.
func (m *MARS) Encrypt(dst, src []byte) {
	a := binary.LittleEndian.Uint32(src[0:]) + m.k[0]
	b := binary.LittleEndian.Uint32(src[4:]) + m.k[1]
	c := binary.LittleEndian.Uint32(src[8:]) + m.k[2]
	d := binary.LittleEndian.Uint32(src[12:]) + m.k[3]

	// Forward mixing: 8 unkeyed rounds of S-box mixing.
	for i := 0; i < mixRounds; i++ {
		b ^= s0(byte(a))
		b += s1(byte(a >> 8))
		c += s0(byte(a >> 16))
		d ^= s1(byte(a >> 24))
		a = bits.RotateLeft32(a, -24)
		if i == 0 || i == 4 {
			a += d
		}
		if i == 1 || i == 5 {
			a += b
		}
		a, b, c, d = b, c, d, a
	}

	// Cryptographic core: 16 keyed rounds, forward mode then backwards
	// mode.
	for i := 0; i < coreRounds; i++ {
		l, md, r := e(a, m.k[2*i+4], m.k[2*i+5])
		c += md
		if i < coreRounds/2 {
			b += l
			d ^= r
		} else {
			d += l
			b ^= r
		}
		a = bits.RotateLeft32(a, 13)
		a, b, c, d = b, c, d, a
	}

	// Backwards mixing: 8 unkeyed rounds mirroring the forward phase.
	for i := 0; i < mixRounds; i++ {
		if i == 1 || i == 5 {
			a -= d
		}
		if i == 2 || i == 6 {
			a -= b
		}
		b ^= s1(byte(a))
		c -= s0(byte(a >> 24))
		d -= s1(byte(a >> 16))
		d ^= s0(byte(a >> 8))
		a = bits.RotateLeft32(a, 24)
		a, b, c, d = b, c, d, a
	}

	binary.LittleEndian.PutUint32(dst[0:], a-m.k[36])
	binary.LittleEndian.PutUint32(dst[4:], b-m.k[37])
	binary.LittleEndian.PutUint32(dst[8:], c-m.k[38])
	binary.LittleEndian.PutUint32(dst[12:], d-m.k[39])
}

// e is the E-function used by Encrypt/Decrypt.
func e(in, k1, k2 uint32) (l, md, r uint32) {
	md = in + k1
	r = bits.RotateLeft32(bits.RotateLeft32(in, 13)*k2, 10)
	l = sbox[md&0x1ff]
	md = bits.RotateLeft32(md, int(r)&0x1f)
	l ^= r
	r = bits.RotateLeft32(r, 5)
	l ^= r
	l = bits.RotateLeft32(l, int(r)&0x1f)
	return l, md, r
}

// Decrypt implements ciphers.Block as the exact inverse of Encrypt.
func (m *MARS) Decrypt(dst, src []byte) {
	a := binary.LittleEndian.Uint32(src[0:]) + m.k[36]
	b := binary.LittleEndian.Uint32(src[4:]) + m.k[37]
	c := binary.LittleEndian.Uint32(src[8:]) + m.k[38]
	d := binary.LittleEndian.Uint32(src[12:]) + m.k[39]

	// Invert backwards mixing.
	for i := mixRounds - 1; i >= 0; i-- {
		a, b, c, d = d, a, b, c // undo role rotation
		a = bits.RotateLeft32(a, -24)
		d ^= s0(byte(a >> 8))
		d += s1(byte(a >> 16))
		c += s0(byte(a >> 24))
		b ^= s1(byte(a))
		if i == 2 || i == 6 {
			a += b
		}
		if i == 1 || i == 5 {
			a += d
		}
	}

	// Invert the core.
	for i := coreRounds - 1; i >= 0; i-- {
		a, b, c, d = d, a, b, c
		a = bits.RotateLeft32(a, -13)
		l, md, r := e(a, m.k[2*i+4], m.k[2*i+5])
		if i < coreRounds/2 {
			d ^= r
			b -= l
		} else {
			b ^= r
			d -= l
		}
		c -= md
	}

	// Invert forward mixing.
	for i := mixRounds - 1; i >= 0; i-- {
		a, b, c, d = d, a, b, c
		if i == 1 || i == 5 {
			a -= b
		}
		if i == 0 || i == 4 {
			a -= d
		}
		a = bits.RotateLeft32(a, 24)
		d ^= s1(byte(a >> 24))
		c -= s0(byte(a >> 16))
		b -= s1(byte(a >> 8))
		b ^= s0(byte(a))
	}

	binary.LittleEndian.PutUint32(dst[0:], a-m.k[0])
	binary.LittleEndian.PutUint32(dst[4:], b-m.k[1])
	binary.LittleEndian.PutUint32(dst[8:], c-m.k[2])
	binary.LittleEndian.PutUint32(dst[12:], d-m.k[3])
}
