// Package ciphers defines the common block/stream cipher interfaces, CBC
// chaining, and the registry of the eight symmetric-key ciphers analyzed in
// the paper (Table 1): 3DES, Blowfish, IDEA, MARS, RC4, RC6, Rijndael and
// Twofish. The implementations are written from scratch in the subpackages
// and serve as the golden models against which every AXP64 kernel variant
// is validated.
package ciphers

import (
	"fmt"
	"sort"

	"cryptoarch/internal/check"
)

// Block is a block cipher with a fixed block size.
type Block interface {
	// BlockSize returns the cipher block size in bytes.
	BlockSize() int
	// Encrypt encrypts one block from src into dst (may alias).
	Encrypt(dst, src []byte)
	// Decrypt decrypts one block from src into dst (may alias).
	Decrypt(dst, src []byte)
}

// Stream is a stream cipher (RC4). XORKeyStream advances the keystream.
type Stream interface {
	XORKeyStream(dst, src []byte)
}

// Info is the Table 1 row for a cipher.
type Info struct {
	Name      string
	KeyBits   int
	BlockBits int // 8 for the RC4 stream cipher, as in the paper
	Rounds    int
	Author    string
	Example   string // example application, per Table 1
	Stream    bool
}

// Cipher couples Table 1 metadata with constructors for the golden model.
type Cipher struct {
	Info Info
	// NewBlock returns the cipher keyed with key (nil for stream ciphers).
	NewBlock func(key []byte) (Block, error)
	// NewStream returns the keyed stream cipher (nil for block ciphers).
	NewStream func(key []byte) (Stream, error)
}

var registry = map[string]*Cipher{}

// Register adds a cipher to the registry; it is called from subpackage
// glue in registry.go.
func Register(c *Cipher) {
	if _, dup := registry[c.Info.Name]; dup {
		panic("ciphers: duplicate registration of " + c.Info.Name)
	}
	registry[c.Info.Name] = c
}

// Lookup returns the named cipher.
func Lookup(name string) (*Cipher, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("ciphers: unknown cipher %q%s", name, check.Suggest(name, Names()))
	}
	return c, nil
}

// Names returns all registered cipher names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CBCEncrypt encrypts src (a whole number of blocks) in chaining-block-
// cipher mode, updating iv in place to the last ciphertext block so that
// sessions may be continued. dst may alias src.
func CBCEncrypt(b Block, iv, dst, src []byte) {
	n := b.BlockSize()
	if len(src)%n != 0 {
		panic("ciphers: CBCEncrypt input not a whole number of blocks")
	}
	if len(iv) != n {
		panic("ciphers: CBCEncrypt iv length mismatch")
	}
	for off := 0; off < len(src); off += n {
		for i := 0; i < n; i++ {
			iv[i] ^= src[off+i]
		}
		b.Encrypt(iv, iv)
		copy(dst[off:off+n], iv)
	}
}

// CBCDecrypt reverses CBCEncrypt, updating iv to the last ciphertext block.
func CBCDecrypt(b Block, iv, dst, src []byte) {
	n := b.BlockSize()
	if len(src)%n != 0 {
		panic("ciphers: CBCDecrypt input not a whole number of blocks")
	}
	if len(iv) != n {
		panic("ciphers: CBCDecrypt iv length mismatch")
	}
	prev := make([]byte, n)
	copy(prev, iv)
	tmp := make([]byte, n)
	for off := 0; off < len(src); off += n {
		copy(tmp, src[off:off+n])
		b.Decrypt(dst[off:off+n], src[off:off+n])
		for i := 0; i < n; i++ {
			dst[off+i] ^= prev[i]
		}
		copy(prev, tmp)
	}
	copy(iv, prev)
}
