package idea

import (
	"bytes"
	"math/rand"
	"testing"

	"cryptoarch/internal/core"
)

func TestKnownAnswer(t *testing.T) {
	// The classic IDEA vector: key 0001 0002 ... 0008,
	// plaintext 0000 0001 0002 0003 -> ciphertext 11FB ED2B 0198 6DE5.
	key := []byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0, 8}
	pt := []byte{0, 0, 0, 1, 0, 2, 0, 3}
	want := []byte{0x11, 0xFB, 0xED, 0x2B, 0x01, 0x98, 0x6D, 0xE5}
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("got %x want %x", got, want)
	}
	back := make([]byte, 8)
	c.Decrypt(back, got)
	if !bytes.Equal(back, pt) {
		t.Fatalf("decrypt: got %x want %x", back, pt)
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 100; i++ {
		key := make([]byte, 16)
		pt := make([]byte, 8)
		rng.Read(key)
		rng.Read(pt)
		c, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		ct := make([]byte, 8)
		back := make([]byte, 8)
		c.Encrypt(ct, pt)
		c.Decrypt(back, ct)
		if !bytes.Equal(back, pt) {
			t.Fatalf("key %x pt %x: roundtrip failed (ct %x back %x)", key, pt, ct, back)
		}
	}
}

func TestMulInv(t *testing.T) {
	// a (*) inv(a) must be 1 for every a, in the zero-means-2^16
	// convention (0 is self-inverse: 2^16 * 2^16 = 1 mod 2^16+1).
	for a := 0; a < 65536; a++ {
		inv := mulInv(uint16(a))
		got := core.MulMod(uint64(a), uint64(inv))
		if got != 1 {
			t.Fatalf("a=%d inv=%d product=%d", a, inv, got)
		}
	}
}

func TestKeyExpansionFirstKeys(t *testing.T) {
	// The first 8 subkeys are the key itself, big-endian 16-bit words.
	key := []byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0, 8}
	c, _ := New(key)
	for i := 0; i < 8; i++ {
		if c.ek[i] != uint16(i+1) {
			t.Fatalf("ek[%d] = %d, want %d", i, c.ek[i], i+1)
		}
	}
	// Subkey 8 comes after a 25-bit rotate: bits 25..40 of the key.
	if c.ek[8] != 0x0400 {
		t.Fatalf("ek[8] = %#x, want 0x0400", c.ek[8])
	}
}
