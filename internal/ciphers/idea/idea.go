// Package idea implements the IDEA block cipher (Lai/Massey) from scratch:
// 64-bit blocks, 128-bit keys, 8 rounds plus an output transform. Its
// characteristic operation is multiplication modulo 2^16+1 (the MULMOD
// instruction's semantics), which makes it the paper's most
// multiplication-bound cipher.
package idea

import (
	"encoding/binary"
	"fmt"

	"cryptoarch/internal/core"
)

// BlockSize and KeySize are fixed by the algorithm.
const (
	BlockSize = 8
	KeySize   = 16
	rounds    = 8
	numKeys   = 6*rounds + 4 // 52
)

// IDEA is a keyed instance holding both encryption and decryption subkeys.
type IDEA struct {
	ek [numKeys]uint16
	dk [numKeys]uint16
}

// New returns an IDEA instance keyed with a 16-byte key.
func New(key []byte) (*IDEA, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("idea: key must be %d bytes, got %d", KeySize, len(key))
	}
	c := &IDEA{}
	expand(key, &c.ek)
	invert(&c.ek, &c.dk)
	return c, nil
}

// expand derives the 52 encryption subkeys: successive 16-bit slices of the
// key, rotating the whole 128-bit key left by 25 bits after every 8
// subkeys.
func expand(key []byte, ek *[numKeys]uint16) {
	hi := binary.BigEndian.Uint64(key[0:8])
	lo := binary.BigEndian.Uint64(key[8:16])
	for i := 0; i < numKeys; i++ {
		if i != 0 && i%8 == 0 {
			hi, lo = hi<<25|lo>>39, lo<<25|hi>>39
		}
		ek[i] = uint16(hi >> (48 - 16*(i%4)))
		if i%8 >= 4 {
			ek[i] = uint16(lo >> (48 - 16*(i%4)))
		}
	}
}

// mulInv computes the multiplicative inverse modulo 2^16+1 in the IDEA
// zero-means-2^16 convention, via Fermat exponentiation (65537 is prime).
func mulInv(x uint16) uint16 {
	if x <= 1 {
		return x // 0 and 1 are self-inverse
	}
	r := uint64(1)
	b := uint64(x)
	for e := 65537 - 2; e > 0; e >>= 1 {
		if e&1 != 0 {
			r = r * b % 65537
		}
		b = b * b % 65537
	}
	return uint16(r)
}

// addInv is the additive inverse mod 2^16.
func addInv(x uint16) uint16 { return uint16(-int32(x)) }

// invert derives decryption subkeys from encryption subkeys.
func invert(ek, dk *[numKeys]uint16) {
	p := numKeys
	var out [numKeys]uint16
	j := 0
	put := func(v uint16) { out[j] = v; j++ }
	// Output transform of encryption becomes round 1 input.
	p -= 4
	put(mulInv(ek[p]))
	put(addInv(ek[p+1]))
	put(addInv(ek[p+2]))
	put(mulInv(ek[p+3]))
	for r := 0; r < rounds; r++ {
		p -= 2
		put(ek[p])
		put(ek[p+1])
		p -= 4
		put(mulInv(ek[p]))
		if r == rounds-1 {
			put(addInv(ek[p+1]))
			put(addInv(ek[p+2]))
		} else {
			// Middle rounds: the x2/x3 swap folds into the key order.
			put(addInv(ek[p+2]))
			put(addInv(ek[p+1]))
		}
		put(mulInv(ek[p+3]))
	}
	*dk = out
}

// mul is IDEA multiplication mod 2^16+1 (shared with the MULMOD
// instruction's semantics in internal/core).
func mul(a, b uint16) uint16 { return uint16(core.MulMod(uint64(a), uint64(b))) }

func crypt(dst, src []byte, k *[numKeys]uint16) {
	x1 := binary.BigEndian.Uint16(src[0:])
	x2 := binary.BigEndian.Uint16(src[2:])
	x3 := binary.BigEndian.Uint16(src[4:])
	x4 := binary.BigEndian.Uint16(src[6:])
	p := 0
	for r := 0; r < rounds; r++ {
		x1 = mul(x1, k[p])
		x2 += k[p+1]
		x3 += k[p+2]
		x4 = mul(x4, k[p+3])
		t0 := mul(x1^x3, k[p+4])
		t1 := mul(t0+(x2^x4), k[p+5])
		t0 += t1
		x1 ^= t1
		x4 ^= t0
		x2, x3 = x3^t1, x2^t0
		p += 6
	}
	// Undo the final swap, then output transform.
	x2, x3 = x3, x2
	binary.BigEndian.PutUint16(dst[0:], mul(x1, k[p]))
	binary.BigEndian.PutUint16(dst[2:], x2+k[p+1])
	binary.BigEndian.PutUint16(dst[4:], x3+k[p+2])
	binary.BigEndian.PutUint16(dst[6:], mul(x4, k[p+3]))
}

// BlockSize implements ciphers.Block.
func (c *IDEA) BlockSize() int { return BlockSize }

// Encrypt implements ciphers.Block.
func (c *IDEA) Encrypt(dst, src []byte) { crypt(dst, src, &c.ek) }

// Decrypt implements ciphers.Block: the same network keyed with the
// inverted subkeys.
func (c *IDEA) Decrypt(dst, src []byte) { crypt(dst, src, &c.dk) }

// EncKeys exposes the encryption subkeys for the AXP64 kernels.
func (c *IDEA) EncKeys() [numKeys]uint16 { return c.ek }

// DecKeys exposes the decryption subkeys: running the same network with
// them inverts the cipher, which is how the AXP64 decryption kernel works.
func (c *IDEA) DecKeys() [numKeys]uint16 { return c.dk }
