package blowfish

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
)

// Known-answer vectors from Schneier's published Blowfish test data
// (8-byte keys).
var kats = []struct{ key, pt, ct string }{
	{"0000000000000000", "0000000000000000", "4ef997456198dd78"},
	{"ffffffffffffffff", "ffffffffffffffff", "51866fd5b85ecb8a"},
	{"3000000000000000", "1000000000000001", "7d856f9a613063f2"},
	{"1111111111111111", "1111111111111111", "2466dd878b963c9d"},
	{"0123456789abcdef", "1111111111111111", "61f9c3802281b096"},
	{"fedcba9876543210", "0123456789abcdef", "0aceab0fc6a0a28d"},
	{"7ca110454a1a6e57", "01a1d6d039776742", "59c68245eb05282b"},
}

func TestKnownAnswers(t *testing.T) {
	for _, v := range kats {
		key, _ := hex.DecodeString(v.key)
		pt, _ := hex.DecodeString(v.pt)
		want, _ := hex.DecodeString(v.ct)
		bf, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		bf.Encrypt(got, pt)
		if !bytes.Equal(got, want) {
			t.Errorf("key %s pt %s: got %x want %s", v.key, v.pt, got, v.ct)
		}
		back := make([]byte, 8)
		bf.Decrypt(back, got)
		if !bytes.Equal(back, pt) {
			t.Errorf("key %s: decrypt mismatch", v.key)
		}
	}
}

func TestPiTable(t *testing.T) {
	// First words of the published P-array and each S-box.
	wantP := []uint32{0x243f6a88, 0x85a308d3, 0x13198a2e, 0x03707344}
	for i, w := range wantP {
		if piInit[i] != w {
			t.Fatalf("piInit[%d] = %08x, want %08x", i, piInit[i], w)
		}
	}
	if piInit[pWords] != 0xd1310ba6 {
		t.Fatalf("S0[0] seed = %08x, want d1310ba6", piInit[pWords])
	}
}

func TestRoundTrip128(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	key := make([]byte, 16) // the paper's 128-bit configuration
	rng.Read(key)
	bf, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		pt := make([]byte, 8)
		rng.Read(pt)
		ct := make([]byte, 8)
		back := make([]byte, 8)
		bf.Encrypt(ct, pt)
		bf.Decrypt(back, ct)
		if !bytes.Equal(back, pt) {
			t.Fatalf("roundtrip failed for %x", pt)
		}
		if bytes.Equal(ct, pt) {
			t.Fatalf("ciphertext equals plaintext for %x", pt)
		}
	}
}

func TestKeyLengths(t *testing.T) {
	if _, err := New(make([]byte, 3)); err == nil {
		t.Error("3-byte key accepted")
	}
	if _, err := New(make([]byte, 57)); err == nil {
		t.Error("57-byte key accepted")
	}
	for _, n := range []int{4, 8, 16, 56} {
		if _, err := New(make([]byte, n)); err != nil {
			t.Errorf("%d-byte key rejected: %v", n, err)
		}
	}
}
