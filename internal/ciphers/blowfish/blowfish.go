// Package blowfish implements Bruce Schneier's Blowfish block cipher from
// scratch. The P-array and S-box initialization constants are the
// hexadecimal digits of pi; rather than embedding 1042 opaque words, they
// are computed at package init with integer arithmetic (Machin's formula)
// and checked against the published leading words.
package blowfish

import (
	"encoding/binary"
	"fmt"
	"math/big"
)

// BlockSize is the Blowfish block size in bytes.
const BlockSize = 8

const (
	rounds   = 16
	pWords   = rounds + 2
	sTables  = 4
	sEntries = 256
	piWords  = pWords + sTables*sEntries // 1042
)

// piInit holds the hexadecimal expansion of pi's fractional part, 32 bits
// per word.
var piInit [piWords]uint32

func init() {
	computePi()
	// Self-check against the published table heads: P[0], P[1], and the
	// first word of S0 (which is piInit[18]).
	if piInit[0] != 0x243f6a88 || piInit[1] != 0x85a308d3 || piInit[18] != 0xd1310ba6 {
		panic(fmt.Sprintf("blowfish: pi computation wrong: %08x %08x %08x",
			piInit[0], piInit[1], piInit[18]))
	}
}

// computePi fills piInit with the first 1042 fraction words of pi using
// Machin's formula pi = 16 atan(1/5) - 4 atan(1/239) in fixed-point
// arithmetic with guard bits.
func computePi() {
	const bitsNeeded = piWords * 32
	const guard = 64
	prec := uint(bitsNeeded + guard)
	one := new(big.Int).Lsh(big.NewInt(1), prec)

	atanInv := func(x int64) *big.Int {
		sum := new(big.Int)
		term := new(big.Int).Div(one, big.NewInt(x))
		xx := big.NewInt(x * x)
		for k := int64(0); term.Sign() != 0; k++ {
			t := new(big.Int).Div(term, big.NewInt(2*k+1))
			if k%2 == 0 {
				sum.Add(sum, t)
			} else {
				sum.Sub(sum, t)
			}
			term.Div(term, xx)
		}
		return sum
	}

	pi := new(big.Int).Mul(atanInv(5), big.NewInt(16))
	pi.Sub(pi, new(big.Int).Mul(atanInv(239), big.NewInt(4)))
	// pi = 3.243f6a88... * 2^prec; drop the integer part (3) and read the
	// fraction 32 bits at a time.
	frac := new(big.Int).Mod(pi, one)
	word := new(big.Int)
	mask32 := big.NewInt(0xffffffff)
	for i := 0; i < piWords; i++ {
		word.Rsh(frac, prec-32*uint(i+1))
		word.And(word, mask32)
		piInit[i] = uint32(word.Uint64())
	}
}

// Blowfish is a keyed instance.
type Blowfish struct {
	p [pWords]uint32
	s [sTables][sEntries]uint32
}

// New returns a Blowfish instance. Keys of 4 to 56 bytes are accepted; the
// paper's configuration uses 16 bytes (128 bits).
func New(key []byte) (*Blowfish, error) {
	if len(key) < 4 || len(key) > 56 {
		return nil, fmt.Errorf("blowfish: key must be 4..56 bytes, got %d", len(key))
	}
	bf := &Blowfish{}
	copy(bf.p[:], piInit[:pWords])
	for t := 0; t < sTables; t++ {
		copy(bf.s[t][:], piInit[pWords+t*sEntries:])
	}
	// Fold the key into P.
	j := 0
	for i := 0; i < pWords; i++ {
		var w uint32
		for k := 0; k < 4; k++ {
			w = w<<8 | uint32(key[j])
			j = (j + 1) % len(key)
		}
		bf.p[i] ^= w
	}
	// Replace P and S with successive encryptions of a zero block: the
	// 521 kernel invocations that dominate Blowfish setup cost (Figure 6).
	var l, r uint32
	for i := 0; i < pWords; i += 2 {
		l, r = bf.encryptHalves(l, r)
		bf.p[i], bf.p[i+1] = l, r
	}
	for t := 0; t < sTables; t++ {
		for i := 0; i < sEntries; i += 2 {
			l, r = bf.encryptHalves(l, r)
			bf.s[t][i], bf.s[t][i+1] = l, r
		}
	}
	return bf, nil
}

func (bf *Blowfish) f(x uint32) uint32 {
	return ((bf.s[0][x>>24] + bf.s[1][x>>16&0xff]) ^ bf.s[2][x>>8&0xff]) + bf.s[3][x&0xff]
}

func (bf *Blowfish) encryptHalves(l, r uint32) (uint32, uint32) {
	for i := 0; i < rounds; i += 2 {
		l ^= bf.p[i]
		r ^= bf.f(l)
		r ^= bf.p[i+1]
		l ^= bf.f(r)
	}
	l ^= bf.p[rounds]
	r ^= bf.p[rounds+1]
	return r, l
}

func (bf *Blowfish) decryptHalves(l, r uint32) (uint32, uint32) {
	for i := rounds; i > 0; i -= 2 {
		l ^= bf.p[i+1]
		r ^= bf.f(l)
		r ^= bf.p[i]
		l ^= bf.f(r)
	}
	l ^= bf.p[1]
	r ^= bf.p[0]
	return r, l
}

// BlockSize implements ciphers.Block.
func (bf *Blowfish) BlockSize() int { return BlockSize }

// Encrypt implements ciphers.Block (big-endian halves, per the spec).
func (bf *Blowfish) Encrypt(dst, src []byte) {
	l := binary.BigEndian.Uint32(src[0:4])
	r := binary.BigEndian.Uint32(src[4:8])
	l, r = bf.encryptHalves(l, r)
	binary.BigEndian.PutUint32(dst[0:4], l)
	binary.BigEndian.PutUint32(dst[4:8], r)
}

// Decrypt implements ciphers.Block.
func (bf *Blowfish) Decrypt(dst, src []byte) {
	l := binary.BigEndian.Uint32(src[0:4])
	r := binary.BigEndian.Uint32(src[4:8])
	l, r = bf.decryptHalves(l, r)
	binary.BigEndian.PutUint32(dst[0:4], l)
	binary.BigEndian.PutUint32(dst[4:8], r)
}

// Tables exposes the key-dependent P-array and S-boxes for the AXP64
// kernels and their setup-program validation.
func (bf *Blowfish) Tables() (p [pWords]uint32, s [sTables][sEntries]uint32) {
	return bf.p, bf.s
}

// PiWords exposes the shared initialization constants so the AXP64 setup
// program can start from the same digits.
func PiWords() []uint32 { return append([]uint32(nil), piInit[:]...) }
