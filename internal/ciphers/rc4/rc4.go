// Package rc4 implements the RC4 stream cipher from scratch. RC4 is the
// one stream cipher in the paper's suite: a key-based random number
// generator whose state table is both read and written inside the kernel,
// which is why the SBOX instruction grew its aliased bit.
package rc4

import "fmt"

// RC4 is a keyed RC4 stream state.
type RC4 struct {
	s    [256]byte
	i, j byte
}

// New returns an RC4 instance keyed with 1..256 bytes; the paper's
// configuration uses 16 bytes (128 bits).
func New(key []byte) (*RC4, error) {
	if len(key) < 1 || len(key) > 256 {
		return nil, fmt.Errorf("rc4: key must be 1..256 bytes, got %d", len(key))
	}
	c := &RC4{}
	for i := range c.s {
		c.s[i] = byte(i)
	}
	var j byte
	for i := 0; i < 256; i++ {
		j += c.s[i] + key[i%len(key)]
		c.s[i], c.s[j] = c.s[j], c.s[i]
	}
	return c, nil
}

// XORKeyStream implements ciphers.Stream.
func (c *RC4) XORKeyStream(dst, src []byte) {
	i, j := c.i, c.j
	for n, b := range src {
		i++
		j += c.s[i]
		c.s[i], c.s[j] = c.s[j], c.s[i]
		dst[n] = b ^ c.s[c.s[i]+c.s[j]]
	}
	c.i, c.j = i, j
}

// State exposes the permutation table and indices for kernel
// initialization and validation.
func (c *RC4) State() (s [256]byte, i, j byte) { return c.s, c.i, c.j }

// SetState restores a captured state (used to check kernel-final states).
func (c *RC4) SetState(s [256]byte, i, j byte) { c.s, c.i, c.j = s, i, j }
