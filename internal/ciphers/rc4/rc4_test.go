package rc4

import (
	"bytes"
	stdrc4 "crypto/rc4"
	"math/rand"
	"testing"
)

func TestKnownAnswer(t *testing.T) {
	// Classic vector: key "Key", plaintext "Plaintext".
	c, err := New([]byte("Key"))
	if err != nil {
		t.Fatal(err)
	}
	src := []byte("Plaintext")
	got := make([]byte, len(src))
	c.XORKeyStream(got, src)
	want := []byte{0xBB, 0xF3, 0x16, 0xE8, 0xD9, 0x40, 0xAF, 0x0A, 0xD3}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %x want %x", got, want)
	}
}

func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 100; i++ {
		key := make([]byte, 16)
		rng.Read(key)
		data := make([]byte, 1+rng.Intn(500))
		rng.Read(data)
		ours, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stdrc4.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		want := make([]byte, len(data))
		ours.XORKeyStream(got, data)
		ref.XORKeyStream(want, data)
		if !bytes.Equal(got, want) {
			t.Fatalf("key %x: keystream mismatch", key)
		}
	}
}

func TestIncrementalMatchesOneShot(t *testing.T) {
	key := []byte("0123456789abcdef")
	a, _ := New(key)
	b, _ := New(key)
	data := make([]byte, 256)
	one := make([]byte, 256)
	a.XORKeyStream(one, data)
	var inc []byte
	buf := data
	for len(buf) > 0 {
		n := 7
		if n > len(buf) {
			n = len(buf)
		}
		out := make([]byte, n)
		b.XORKeyStream(out, buf[:n])
		inc = append(inc, out...)
		buf = buf[n:]
	}
	if !bytes.Equal(one, inc) {
		t.Fatal("incremental keystream diverges")
	}
}

func TestKeyLengths(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := New(make([]byte, 257)); err == nil {
		t.Error("257-byte key accepted")
	}
}
