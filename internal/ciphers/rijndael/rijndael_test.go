package rijndael

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
)

func TestFIPS197KnownAnswer(t *testing.T) {
	key, _ := hex.DecodeString("000102030405060708090a0b0c0d0e0f")
	pt, _ := hex.DecodeString("00112233445566778899aabbccddeeff")
	want, _ := hex.DecodeString("69c4e0d86a7b0430d8cdb78070b4c55a")
	r, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	r.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("got %x want %x", got, want)
	}
	back := make([]byte, 16)
	r.Decrypt(back, got)
	if !bytes.Equal(back, pt) {
		t.Fatalf("decrypt: got %x want %x", back, pt)
	}
}

func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		ours, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stdaes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		want := make([]byte, 16)
		ours.Encrypt(got, pt)
		ref.Encrypt(want, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("key %x pt %x: got %x want %x", key, pt, got, want)
		}
		ours.Decrypt(got, want)
		if !bytes.Equal(got, pt) {
			t.Fatalf("key %x: decrypt mismatch", key)
		}
	}
}

func TestDecryptFastMatchesTextbook(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		key := make([]byte, 16)
		ct := make([]byte, 16)
		rng.Read(key)
		rng.Read(ct)
		r, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		slow := make([]byte, 16)
		fast := make([]byte, 16)
		r.Decrypt(slow, ct)
		r.DecryptFast(fast, ct)
		if !bytes.Equal(slow, fast) {
			t.Fatalf("key %x ct %x: fast %x textbook %x", key, ct, fast, slow)
		}
	}
}

func TestSboxDerivation(t *testing.T) {
	// Spot values from FIPS-197 and the inverse property.
	if sbox[0x9a] != 0xb8 || sbox[0xff] != 0x16 {
		t.Fatalf("sbox spot check failed: %02x %02x", sbox[0x9a], sbox[0xff])
	}
	for x := 0; x < 256; x++ {
		if invSbox[sbox[x]] != byte(x) {
			t.Fatalf("invSbox not inverse at %02x", x)
		}
	}
}

func TestBadKeySize(t *testing.T) {
	if _, err := New(make([]byte, 24)); err == nil {
		t.Error("24-byte key accepted; this implementation is fixed at AES-128")
	}
}
