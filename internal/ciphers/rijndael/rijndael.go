// Package rijndael implements Rijndael (AES-128: 128-bit block, 128-bit
// key, 10 rounds) from scratch. The S-box is derived from the GF(2^8)
// multiplicative inverse and affine transform rather than embedded, and the
// four 256x32-bit T-tables used by the fast path (and by the AXP64 kernels)
// are built from it.
package rijndael

import (
	"encoding/binary"
	"fmt"
)

// BlockSize and KeySize are fixed at the AES-128 configuration studied in
// the paper.
const (
	BlockSize = 16
	KeySize   = 16
	rounds    = 10
)

// GF(2^8) arithmetic modulo the Rijndael polynomial x^8+x^4+x^3+x+1.
const poly = 0x11b

func gfMul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= byte(poly & 0xff)
		}
		b >>= 1
	}
	return p
}

var (
	sbox    [256]byte
	invSbox [256]byte
	// te[t][x] are the encryption T-tables: te0[x] = (2*S[x], S[x], S[x],
	// 3*S[x]) packed little-endian; te1..te3 are byte rotations of te0.
	te [4][256]uint32
	// td[t][x] are the decryption T-tables (InvMixColumns of the inverse
	// S-box), used by the equivalent inverse cipher and its AXP64 kernel.
	td [4][256]uint32
	// rcon holds the key-schedule round constants.
	rcon [rounds + 1]byte
)

func rotl8(b byte, n uint) byte { return b<<n | b>>(8-n) }

func init() {
	// Multiplicative inverses via brute force (8-bit domain, init-time).
	var inv [256]byte
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			if gfMul(byte(a), byte(b)) == 1 {
				inv[a] = byte(b)
				break
			}
		}
	}
	for x := 0; x < 256; x++ {
		b := inv[x]
		s := b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63
		sbox[x] = s
		invSbox[s] = byte(x)
	}
	if sbox[0x00] != 0x63 || sbox[0x01] != 0x7c || sbox[0x53] != 0xed {
		panic(fmt.Sprintf("rijndael: S-box derivation wrong: %02x %02x %02x",
			sbox[0], sbox[1], sbox[0x53]))
	}
	for x := 0; x < 256; x++ {
		s := sbox[x]
		w := uint32(gfMul(s, 2)) | uint32(s)<<8 | uint32(s)<<16 | uint32(gfMul(s, 3))<<24
		te[0][x] = w
		te[1][x] = w<<8 | w>>24
		te[2][x] = w<<16 | w>>16
		te[3][x] = w<<24 | w>>8
	}
	for x := 0; x < 256; x++ {
		s := invSbox[x]
		w := uint32(gfMul(s, 14)) | uint32(gfMul(s, 9))<<8 |
			uint32(gfMul(s, 13))<<16 | uint32(gfMul(s, 11))<<24
		td[0][x] = w
		td[1][x] = w<<8 | w>>24
		td[2][x] = w<<16 | w>>16
		td[3][x] = w<<24 | w>>8
	}
	c := byte(1)
	for i := 1; i <= rounds; i++ {
		rcon[i] = c
		c = gfMul(c, 2)
	}
}

// imcWord applies InvMixColumns to one little-endian-packed column.
func imcWord(w uint32) uint32 {
	a0, a1, a2, a3 := byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
	return uint32(gfMul(a0, 14)^gfMul(a1, 11)^gfMul(a2, 13)^gfMul(a3, 9)) |
		uint32(gfMul(a0, 9)^gfMul(a1, 14)^gfMul(a2, 11)^gfMul(a3, 13))<<8 |
		uint32(gfMul(a0, 13)^gfMul(a1, 9)^gfMul(a2, 14)^gfMul(a3, 11))<<16 |
		uint32(gfMul(a0, 11)^gfMul(a1, 13)^gfMul(a2, 9)^gfMul(a3, 14))<<24
}

// Rijndael is a keyed AES-128 instance.
type Rijndael struct {
	rk [4 * (rounds + 1)]uint32 // encryption round keys, little-endian words
}

// New returns an AES-128 instance.
func New(key []byte) (*Rijndael, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("rijndael: key must be %d bytes, got %d", KeySize, len(key))
	}
	r := &Rijndael{}
	// Round keys as little-endian words: byte 0 of the column is the low
	// byte. (FIPS-197 writes columns big-endian; the layouts are
	// equivalent as long as the tables match, and little-endian matches
	// the AXP64 kernels' LDL.)
	for i := 0; i < 4; i++ {
		r.rk[i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	for i := 4; i < len(r.rk); i++ {
		t := r.rk[i-1]
		if i%4 == 0 {
			// RotWord then SubWord in the little-endian layout:
			// bytes (b0,b1,b2,b3) -> (b1,b2,b3,b0) is a right
			// rotation of the word by 8.
			t = t>>8 | t<<24
			t = uint32(sbox[t&0xff]) | uint32(sbox[t>>8&0xff])<<8 |
				uint32(sbox[t>>16&0xff])<<16 | uint32(sbox[t>>24])<<24
			t ^= uint32(rcon[i/4])
		}
		r.rk[i] = r.rk[i-4] ^ t
	}
	return r, nil
}

// RoundKeys exposes the expanded key for the AXP64 kernels.
func (r *Rijndael) RoundKeys() []uint32 { return append([]uint32(nil), r.rk[:]...) }

// DecRoundKeys returns the equivalent-inverse-cipher key schedule: round
// keys reversed, with InvMixColumns applied to the middle rounds.
func (r *Rijndael) DecRoundKeys() []uint32 {
	dk := make([]uint32, len(r.rk))
	for i := 0; i <= rounds; i++ {
		src := r.rk[4*(rounds-i) : 4*(rounds-i)+4]
		for w := 0; w < 4; w++ {
			v := src[w]
			if i != 0 && i != rounds {
				v = imcWord(v)
			}
			dk[4*i+w] = v
		}
	}
	return dk
}

// Tables exposes the four T-tables for the AXP64 kernels.
func Tables() *[4][256]uint32 { return &te }

// DecTables exposes the four inverse T-tables.
func DecTables() *[4][256]uint32 { return &td }

// Sbox exposes the S-box (for the kernel's last round and key setup).
func Sbox() *[256]byte { return &sbox }

// InvSbox exposes the inverse S-box (for the decryption kernel).
func InvSbox() *[256]byte { return &invSbox }

// DecryptFast decrypts one block via the equivalent inverse cipher (Td
// tables); the AXP64 decryption kernel mirrors this code path.
func (r *Rijndael) DecryptFast(dst, src []byte) {
	dk := r.DecRoundKeys()
	s0 := binary.LittleEndian.Uint32(src[0:]) ^ dk[0]
	s1 := binary.LittleEndian.Uint32(src[4:]) ^ dk[1]
	s2 := binary.LittleEndian.Uint32(src[8:]) ^ dk[2]
	s3 := binary.LittleEndian.Uint32(src[12:]) ^ dk[3]
	k := 4
	for round := 1; round < rounds; round++ {
		t0 := td[0][s0&0xff] ^ td[1][s3>>8&0xff] ^ td[2][s2>>16&0xff] ^ td[3][s1>>24] ^ dk[k]
		t1 := td[0][s1&0xff] ^ td[1][s0>>8&0xff] ^ td[2][s3>>16&0xff] ^ td[3][s2>>24] ^ dk[k+1]
		t2 := td[0][s2&0xff] ^ td[1][s1>>8&0xff] ^ td[2][s0>>16&0xff] ^ td[3][s3>>24] ^ dk[k+2]
		t3 := td[0][s3&0xff] ^ td[1][s2>>8&0xff] ^ td[2][s1>>16&0xff] ^ td[3][s0>>24] ^ dk[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	is := &invSbox
	u0 := uint32(is[s0&0xff]) | uint32(is[s3>>8&0xff])<<8 | uint32(is[s2>>16&0xff])<<16 | uint32(is[s1>>24])<<24
	u1 := uint32(is[s1&0xff]) | uint32(is[s0>>8&0xff])<<8 | uint32(is[s3>>16&0xff])<<16 | uint32(is[s2>>24])<<24
	u2 := uint32(is[s2&0xff]) | uint32(is[s1>>8&0xff])<<8 | uint32(is[s0>>16&0xff])<<16 | uint32(is[s3>>24])<<24
	u3 := uint32(is[s3&0xff]) | uint32(is[s2>>8&0xff])<<8 | uint32(is[s1>>16&0xff])<<16 | uint32(is[s0>>24])<<24
	binary.LittleEndian.PutUint32(dst[0:], u0^dk[k])
	binary.LittleEndian.PutUint32(dst[4:], u1^dk[k+1])
	binary.LittleEndian.PutUint32(dst[8:], u2^dk[k+2])
	binary.LittleEndian.PutUint32(dst[12:], u3^dk[k+3])
}

// BlockSize implements ciphers.Block.
func (r *Rijndael) BlockSize() int { return BlockSize }

// Encrypt implements ciphers.Block via the T-table fast path, which the
// AXP64 kernels mirror: four table lookups and four XORs per column per
// round.
func (r *Rijndael) Encrypt(dst, src []byte) {
	s0 := binary.LittleEndian.Uint32(src[0:]) ^ r.rk[0]
	s1 := binary.LittleEndian.Uint32(src[4:]) ^ r.rk[1]
	s2 := binary.LittleEndian.Uint32(src[8:]) ^ r.rk[2]
	s3 := binary.LittleEndian.Uint32(src[12:]) ^ r.rk[3]
	k := 4
	for round := 1; round < rounds; round++ {
		t0 := te[0][s0&0xff] ^ te[1][s1>>8&0xff] ^ te[2][s2>>16&0xff] ^ te[3][s3>>24] ^ r.rk[k]
		t1 := te[0][s1&0xff] ^ te[1][s2>>8&0xff] ^ te[2][s3>>16&0xff] ^ te[3][s0>>24] ^ r.rk[k+1]
		t2 := te[0][s2&0xff] ^ te[1][s3>>8&0xff] ^ te[2][s0>>16&0xff] ^ te[3][s1>>24] ^ r.rk[k+2]
		t3 := te[0][s3&0xff] ^ te[1][s0>>8&0xff] ^ te[2][s1>>16&0xff] ^ te[3][s2>>24] ^ r.rk[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	// Final round: SubBytes + ShiftRows, no MixColumns.
	u0 := uint32(sbox[s0&0xff]) | uint32(sbox[s1>>8&0xff])<<8 | uint32(sbox[s2>>16&0xff])<<16 | uint32(sbox[s3>>24])<<24
	u1 := uint32(sbox[s1&0xff]) | uint32(sbox[s2>>8&0xff])<<8 | uint32(sbox[s3>>16&0xff])<<16 | uint32(sbox[s0>>24])<<24
	u2 := uint32(sbox[s2&0xff]) | uint32(sbox[s3>>8&0xff])<<8 | uint32(sbox[s0>>16&0xff])<<16 | uint32(sbox[s1>>24])<<24
	u3 := uint32(sbox[s3&0xff]) | uint32(sbox[s0>>8&0xff])<<8 | uint32(sbox[s1>>16&0xff])<<16 | uint32(sbox[s2>>24])<<24
	binary.LittleEndian.PutUint32(dst[0:], u0^r.rk[k])
	binary.LittleEndian.PutUint32(dst[4:], u1^r.rk[k+1])
	binary.LittleEndian.PutUint32(dst[8:], u2^r.rk[k+2])
	binary.LittleEndian.PutUint32(dst[12:], u3^r.rk[k+3])
}

// Decrypt implements ciphers.Block via the straightforward inverse cipher
// (the golden reference does not need to be fast).
func (r *Rijndael) Decrypt(dst, src []byte) {
	var st [16]byte
	copy(st[:], src)
	xorRK := func(round int) {
		for c := 0; c < 4; c++ {
			w := r.rk[4*round+c]
			st[4*c+0] ^= byte(w)
			st[4*c+1] ^= byte(w >> 8)
			st[4*c+2] ^= byte(w >> 16)
			st[4*c+3] ^= byte(w >> 24)
		}
	}
	invShiftRows := func() {
		// Row r is rotated right by r positions (bytes 4c+r across
		// columns c).
		var t [16]byte
		copy(t[:], st[:])
		for row := 1; row < 4; row++ {
			for c := 0; c < 4; c++ {
				st[4*((c+row)%4)+row] = t[4*c+row]
			}
		}
	}
	invSubBytes := func() {
		for i := range st {
			st[i] = invSbox[st[i]]
		}
	}
	invMixColumns := func() {
		for c := 0; c < 4; c++ {
			a0, a1, a2, a3 := st[4*c], st[4*c+1], st[4*c+2], st[4*c+3]
			st[4*c+0] = gfMul(a0, 14) ^ gfMul(a1, 11) ^ gfMul(a2, 13) ^ gfMul(a3, 9)
			st[4*c+1] = gfMul(a0, 9) ^ gfMul(a1, 14) ^ gfMul(a2, 11) ^ gfMul(a3, 13)
			st[4*c+2] = gfMul(a0, 13) ^ gfMul(a1, 9) ^ gfMul(a2, 14) ^ gfMul(a3, 11)
			st[4*c+3] = gfMul(a0, 11) ^ gfMul(a1, 13) ^ gfMul(a2, 9) ^ gfMul(a3, 14)
		}
	}
	xorRK(rounds)
	invShiftRows()
	invSubBytes()
	for round := rounds - 1; round >= 1; round-- {
		xorRK(round)
		invMixColumns()
		invShiftRows()
		invSubBytes()
	}
	xorRK(0)
	copy(dst, st[:])
}
