package ciphers_test

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"cryptoarch/internal/ciphers"
)

// TestAvalancheAllCiphers checks the paper's strength criterion (Section
// 2): flipping one plaintext bit perturbs each ciphertext bit with
// probability near 50%, for every block cipher in the suite.
func TestAvalancheAllCiphers(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for _, name := range ciphers.Names() {
		c, _ := ciphers.Lookup(name)
		if c.Info.Stream {
			continue // a keystream XOR propagates nothing by design
		}
		key := make([]byte, c.KeyBytes())
		rng.Read(key)
		b, err := c.NewBlock(key)
		if err != nil {
			t.Fatal(err)
		}
		n := b.BlockSize()
		total, trials := 0, 0
		for rep := 0; rep < 8; rep++ {
			pt := make([]byte, n)
			rng.Read(pt)
			base := make([]byte, n)
			b.Encrypt(base, pt)
			for bit := 0; bit < 8*n; bit += 5 {
				mod := append([]byte(nil), pt...)
				mod[bit/8] ^= 1 << uint(bit%8)
				ct := make([]byte, n)
				b.Encrypt(ct, mod)
				for i := range ct {
					total += bits.OnesCount8(ct[i] ^ base[i])
				}
				trials++
			}
		}
		avg := float64(total) / float64(trials) / float64(8*n)
		if avg < 0.45 || avg > 0.55 {
			t.Errorf("%s: avalanche %.3f, want ~0.5", name, avg)
		}
	}
}

// TestKeyAvalancheAllCiphers checks the companion criterion: flipping one
// key bit perturbs the ciphertext as strongly as a plaintext change.
func TestKeyAvalancheAllCiphers(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for _, name := range ciphers.Names() {
		c, _ := ciphers.Lookup(name)
		if c.Info.Stream {
			continue
		}
		key := make([]byte, c.KeyBytes())
		rng.Read(key)
		b, _ := c.NewBlock(key)
		n := b.BlockSize()
		pt := make([]byte, n)
		rng.Read(pt)
		base := make([]byte, n)
		b.Encrypt(base, pt)
		total, trials := 0, 0
		for bit := 0; bit < 8*len(key); bit += 11 {
			if name == "3des" && bit%8 == 0 {
				continue // DES parity bits are ignored by PC1
			}
			mod := append([]byte(nil), key...)
			mod[bit/8] ^= 1 << uint(bit%8)
			b2, err := c.NewBlock(mod)
			if err != nil {
				t.Fatal(err)
			}
			ct := make([]byte, n)
			b2.Encrypt(ct, pt)
			for i := range ct {
				total += bits.OnesCount8(ct[i] ^ base[i])
			}
			trials++
		}
		avg := float64(total) / float64(trials) / float64(8*n)
		if avg < 0.44 || avg > 0.56 {
			t.Errorf("%s: key avalanche %.3f, want ~0.5", name, avg)
		}
	}
}

// TestQuickRoundTripAllCiphers is a quick.Check property: for random keys
// and plaintexts, Decrypt(Encrypt(x)) == x for every block cipher.
func TestQuickRoundTripAllCiphers(t *testing.T) {
	for _, name := range ciphers.Names() {
		c, _ := ciphers.Lookup(name)
		if c.Info.Stream {
			continue
		}
		name := name
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			key := make([]byte, c.KeyBytes())
			rng.Read(key)
			b, err := c.NewBlock(key)
			if err != nil {
				return false
			}
			pt := make([]byte, b.BlockSize())
			rng.Read(pt)
			ct := make([]byte, len(pt))
			back := make([]byte, len(pt))
			b.Encrypt(ct, pt)
			b.Decrypt(back, ct)
			for i := range pt {
				if pt[i] != back[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
