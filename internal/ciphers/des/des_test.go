package des

import (
	"bytes"
	stddes "crypto/des"
	"math/rand"
	"testing"
)

func TestKnownAnswer(t *testing.T) {
	// The classic DES worked example: key 133457799BBCDFF1,
	// plaintext 0123456789ABCDEF -> ciphertext 85E813540F0AB405.
	key := []byte{0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1}
	pt := []byte{0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF}
	want := []byte{0x85, 0xE8, 0x13, 0x54, 0x0F, 0x0A, 0xB4, 0x05}
	d, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	d.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("encrypt: got %x want %x", got, want)
	}
	back := make([]byte, 8)
	d.Decrypt(back, got)
	if !bytes.Equal(back, pt) {
		t.Fatalf("decrypt: got %x want %x", back, pt)
	}
}

func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		key := make([]byte, 8)
		pt := make([]byte, 8)
		rng.Read(key)
		rng.Read(pt)
		ours, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stddes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		want := make([]byte, 8)
		ours.Encrypt(got, pt)
		ref.Encrypt(want, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("key %x pt %x: got %x want %x", key, pt, got, want)
		}
		ours.Decrypt(got, want)
		if !bytes.Equal(got, pt) {
			t.Fatalf("key %x: decrypt mismatch", key)
		}
	}
}

func TestFastPathMatchesTextbook(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		key := make([]byte, 8)
		pt := make([]byte, 8)
		rng.Read(key)
		rng.Read(pt)
		d, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		slow := make([]byte, 8)
		fast := make([]byte, 8)
		d.Encrypt(slow, pt)
		d.EncryptFast(fast, pt)
		if !bytes.Equal(slow, fast) {
			t.Fatalf("key %x pt %x: fast %x textbook %x", key, pt, fast, slow)
		}
	}
}

func TestTripleDESAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		key := make([]byte, 24)
		pt := make([]byte, 8)
		rng.Read(key)
		rng.Read(pt)
		ours, err := New3(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stddes.NewTripleDESCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		want := make([]byte, 8)
		ours.Encrypt(got, pt)
		ref.Encrypt(want, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("3des key %x pt %x: got %x want %x", key, pt, got, want)
		}
		ours.Decrypt(got, want)
		if !bytes.Equal(got, pt) {
			t.Fatal("3des decrypt mismatch")
		}
	}
}

func TestFieldAlignment(t *testing.T) {
	// The kernel depends on the index fields sitting at bits 2..7 of
	// bytes 0..3: even S-boxes in u, odd in t.
	for k := 0; k < 8; k++ {
		wantShift := uint(8*(k/2) + 2)
		if fieldShift[k] != wantShift {
			t.Errorf("S-box %d field at bit %d, want %d", k+1, fieldShift[k], wantShift)
		}
	}
}

func TestFastDecryptKeys(t *testing.T) {
	d, err := New([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	dec := FastDecryptKeys(d)
	for i := range dec {
		if dec[i] != d.fast[15-i] {
			t.Fatalf("round %d: decrypt keys not reversed", i)
		}
	}
}
