// Package des implements the Data Encryption Standard and 3DES (EDE3) from
// scratch: a textbook FIPS 46-3 model, plus the "fast domain" formulation
// (combined SP tables with byte-aligned index fields, the layout popularized
// by Eric Young's libdes and used by the paper's CryptSoft baseline). The
// fast-domain tables and round keys are exported for the AXP64 kernels.
package des

import (
	"fmt"
	"math/bits"
)

// ---- FIPS 46-3 tables (bit numbers are 1-based, MSB first) ----

var ipTable = [64]byte{
	58, 50, 42, 34, 26, 18, 10, 2,
	60, 52, 44, 36, 28, 20, 12, 4,
	62, 54, 46, 38, 30, 22, 14, 6,
	64, 56, 48, 40, 32, 24, 16, 8,
	57, 49, 41, 33, 25, 17, 9, 1,
	59, 51, 43, 35, 27, 19, 11, 3,
	61, 53, 45, 37, 29, 21, 13, 5,
	63, 55, 47, 39, 31, 23, 15, 7,
}

var fpTable = [64]byte{
	40, 8, 48, 16, 56, 24, 64, 32,
	39, 7, 47, 15, 55, 23, 63, 31,
	38, 6, 46, 14, 54, 22, 62, 30,
	37, 5, 45, 13, 53, 21, 61, 29,
	36, 4, 44, 12, 52, 20, 60, 28,
	35, 3, 43, 11, 51, 19, 59, 27,
	34, 2, 42, 10, 50, 18, 58, 26,
	33, 1, 41, 9, 49, 17, 57, 25,
}

var eTable = [48]byte{
	32, 1, 2, 3, 4, 5,
	4, 5, 6, 7, 8, 9,
	8, 9, 10, 11, 12, 13,
	12, 13, 14, 15, 16, 17,
	16, 17, 18, 19, 20, 21,
	20, 21, 22, 23, 24, 25,
	24, 25, 26, 27, 28, 29,
	28, 29, 30, 31, 32, 1,
}

var pTable = [32]byte{
	16, 7, 20, 21, 29, 12, 28, 17,
	1, 15, 23, 26, 5, 18, 31, 10,
	2, 8, 24, 14, 32, 27, 3, 9,
	19, 13, 30, 6, 22, 11, 4, 25,
}

var pc1Table = [56]byte{
	57, 49, 41, 33, 25, 17, 9,
	1, 58, 50, 42, 34, 26, 18,
	10, 2, 59, 51, 43, 35, 27,
	19, 11, 3, 60, 52, 44, 36,
	63, 55, 47, 39, 31, 23, 15,
	7, 62, 54, 46, 38, 30, 22,
	14, 6, 61, 53, 45, 37, 29,
	21, 13, 5, 28, 20, 12, 4,
}

var pc2Table = [48]byte{
	14, 17, 11, 24, 1, 5,
	3, 28, 15, 6, 21, 10,
	23, 19, 12, 4, 26, 8,
	16, 7, 27, 20, 13, 2,
	41, 52, 31, 37, 47, 55,
	30, 40, 51, 45, 33, 48,
	44, 49, 39, 56, 34, 53,
	46, 42, 50, 36, 29, 32,
}

var ksShifts = [16]byte{1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1}

// sBoxes[i][row][col], FIPS S-boxes S1..S8.
var sBoxes = [8][4][16]byte{
	{
		{14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7},
		{0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8},
		{4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0},
		{15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13},
	},
	{
		{15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10},
		{3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5},
		{0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15},
		{13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9},
	},
	{
		{10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8},
		{13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1},
		{13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7},
		{1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12},
	},
	{
		{7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15},
		{13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9},
		{10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4},
		{3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14},
	},
	{
		{2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9},
		{14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6},
		{4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14},
		{11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3},
	},
	{
		{12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11},
		{10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8},
		{9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6},
		{4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13},
	},
	{
		{4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1},
		{13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6},
		{1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2},
		{6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12},
	},
	{
		{13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7},
		{1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2},
		{7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8},
		{2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11},
	},
}

// fipsBit reads 1-based MSB-first bit i of an n-bit value.
func fipsBit(v uint64, i, n int) uint64 { return (v >> uint(n-i)) & 1 }

// permute applies a FIPS permutation table: output bit j (1-based,
// MSB-first, width len(table)) takes input bit table[j-1] of an inBits-wide
// value.
func permute(v uint64, table []byte, inBits int) uint64 {
	var out uint64
	for _, src := range table {
		out = out<<1 | fipsBit(v, int(src), inBits)
	}
	return out
}

// ---- textbook single DES ----

// subkeys48 computes the 16 round keys as 48-bit values (MSB-first).
func subkeys48(key uint64) [16]uint64 {
	cd := permute(key, pc1Table[:], 64) // 56 bits
	c := uint32(cd>>28) & 0x0fffffff
	d := uint32(cd) & 0x0fffffff
	rot28 := func(v uint32, n byte) uint32 {
		return ((v << n) | (v >> (28 - n))) & 0x0fffffff
	}
	var ks [16]uint64
	for r := 0; r < 16; r++ {
		c = rot28(c, ksShifts[r])
		d = rot28(d, ksShifts[r])
		ks[r] = permute(uint64(c)<<28|uint64(d), pc2Table[:], 56)
	}
	return ks
}

// feistel is the textbook round function on a 32-bit half (MSB-first).
func feistel(r uint32, k48 uint64) uint32 {
	e := permute(uint64(r), eTable[:], 32) // 48 bits
	x := e ^ k48
	var s uint32
	for k := 0; k < 8; k++ {
		six := byte(x >> uint(42-6*k) & 0x3f)
		row := (six>>4)&2 | six&1
		col := (six >> 1) & 0xf
		s = s<<4 | uint32(sBoxes[k][row][col])
	}
	return uint32(permute(uint64(s), pTable[:], 32))
}

// encryptBlock runs one textbook DES on a 64-bit block (MSB-first; the
// first plaintext byte is the most significant). decrypt reverses the key
// order.
func cryptBlock(block uint64, ks *[16]uint64, decrypt bool) uint64 {
	v := permute(block, ipTable[:], 64)
	l := uint32(v >> 32)
	r := uint32(v)
	for i := 0; i < 16; i++ {
		k := i
		if decrypt {
			k = 15 - i
		}
		l, r = r, l^feistel(r, ks[k])
	}
	// Final swap then FP.
	return permute(uint64(r)<<32|uint64(l), fpTable[:], 64)
}

// ---- fast domain ----
//
// The fast formulation keeps each half in a transformed bit order (the
// "domain"): bytes are loaded little-endian, the classic 5-step swap
// network computes IP, and both halves are then rotated left by 3. In this
// domain the eight expansion-permutation 6-bit index fields of a round fall
// at bits 2..7 of the four bytes of u = R^kA (even S-boxes) and
// t = ror(R^kB, 4) (odd S-boxes), so a round is eight byte-indexed lookups
// into combined SP tables. The mapping is derived numerically below by
// probing with unit vectors and verified by tests, rather than trusted from
// hand bit-algebra.

// loadHalves assembles the two 32-bit domain inputs from an 8-byte block
// (little-endian within each half, as the AXP64 kernel's LDL does).
func loadHalves(b []byte) (l, r uint32) {
	l = uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	r = uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24
	return
}

func storeHalves(b []byte, l, r uint32) {
	b[0], b[1], b[2], b[3] = byte(l), byte(l>>8), byte(l>>16), byte(l>>24)
	b[4], b[5], b[6], b[7] = byte(r), byte(r>>8), byte(r>>16), byte(r>>24)
}

// permOp is the classic swap-network step shared by IP and FP.
func permOp(a, b *uint32, n uint, m uint32) {
	t := ((*a >> n) ^ *b) & m
	*b ^= t
	*a ^= t << n
}

// ipNetwork computes the initial permutation in the little-endian domain
// (the libdes formulation), leaving halves rotated left 3. The raw network
// delivers the textbook halves exchanged, so the final step swaps them back
// (free in the kernels: it is register naming).
func ipNetwork(l, r *uint32) {
	permOp(r, l, 4, 0x0f0f0f0f)
	permOp(l, r, 16, 0x0000ffff)
	permOp(r, l, 2, 0x33333333)
	permOp(l, r, 8, 0x00ff00ff)
	permOp(r, l, 1, 0x55555555)
	*l, *r = bits.RotateLeft32(*r, 3), bits.RotateLeft32(*l, 3)
}

// fpNetwork inverts ipNetwork.
func fpNetwork(l, r *uint32) {
	*l, *r = bits.RotateLeft32(*r, -3), bits.RotateLeft32(*l, -3)
	permOp(r, l, 1, 0x55555555)
	permOp(l, r, 8, 0x00ff00ff)
	permOp(r, l, 2, 0x33333333)
	permOp(l, r, 16, 0x0000ffff)
	permOp(r, l, 4, 0x0f0f0f0f)
}

// domainMap[j-1] gives, for textbook post-IP bit j (1-based MSB-first
// within a half), its bit position (0-based LSB) in the fast domain.
// Derived once by probing.
var domainMap [32]int

// fieldShift[k] is the LSB position of S-box k's 6-bit index field within
// u (even k) or t (odd k). fieldOrder[k][i] gives which S-box input bit
// (1..6) sits at field offset i.
var (
	fieldShift [8]uint
	fieldOrder [8][6]int
)

// SPFast[k][f] is the fast-domain combined SP contribution of S-box k+1
// for index-field value f.
var SPFast [8][64]uint32

func init() {
	deriveDomain()
	deriveFields()
	buildSPFast()
}

// deriveDomain probes ipNetwork with unit vectors to learn where each
// textbook post-IP bit lands in the fast domain, and checks that the L and
// R halves use the same mapping.
func deriveDomain() {
	var lMap, rMap [32]int
	for i := range lMap {
		lMap[i], rMap[i] = -1, -1
	}
	for j := 1; j <= 64; j++ {
		var blk [8]byte
		// Textbook block bit j (1-based MSB-first): byte (j-1)/8, bit
		// 7-(j-1)%8 within the (big-endian-read) byte.
		blk[(j-1)/8] = 1 << uint(7-(j-1)%8)
		// Textbook IP position of this input bit.
		post := permute(uint64(blk[0])<<56|uint64(blk[1])<<48|uint64(blk[2])<<40|
			uint64(blk[3])<<32|uint64(blk[4])<<24|uint64(blk[5])<<16|
			uint64(blk[6])<<8|uint64(blk[7]), ipTable[:], 64)
		l, r := loadHalves(blk[:])
		ipNetwork(&l, &r)
		switch {
		case post>>32 != 0: // lands in textbook L
			tj := 1 + bits.LeadingZeros32(uint32(post>>32)) // MSB-first index
			if r != 0 || bits.OnesCount32(l) != 1 {
				panic("des: swap network does not compute IP (L half)")
			}
			lMap[tj-1] = bits.TrailingZeros32(l)
		default: // lands in textbook R
			tj := 1 + bits.LeadingZeros32(uint32(post))
			if l != 0 || bits.OnesCount32(r) != 1 {
				panic("des: swap network does not compute IP (R half)")
			}
			rMap[tj-1] = bits.TrailingZeros32(r)
		}
	}
	for i := range lMap {
		if lMap[i] < 0 || lMap[i] != rMap[i] {
			panic("des: L and R halves use different domains")
		}
		domainMap[i] = lMap[i]
	}
}

// deriveFields locates each S-box's 6-bit index field in u/t and the order
// of expansion bits within it.
func deriveFields() {
	for k := 0; k < 8; k++ {
		// Expansion output bits 6k+1..6k+6 source textbook R bits
		// eTable[6k..6k+5]; find their domain positions, applying the
		// extra ror-4 for odd S-boxes (which index t rather than u).
		var pos [6]int
		for i := 0; i < 6; i++ {
			p := domainMap[eTable[6*k+i]-1]
			if k%2 == 1 {
				p = (p - 4 + 32) % 32
			}
			pos[i] = p
		}
		lo, hi := pos[0], pos[0]
		for _, p := range pos[1:] {
			lo = min(lo, p)
			hi = max(hi, p)
		}
		if hi-lo != 5 {
			panic(fmt.Sprintf("des: S-box %d index field not contiguous (%v)", k+1, pos))
		}
		if lo%8 != 2 {
			panic(fmt.Sprintf("des: S-box %d index field not byte-aligned at bit 2 (%v)", k+1, pos))
		}
		fieldShift[k] = uint(lo)
		for i := 0; i < 6; i++ {
			fieldOrder[k][pos[i]-lo] = i + 1 // S-box input bit number b1..b6
		}
	}
}

// buildSPFast fills the combined SP tables: S-box output run through P and
// mapped into the fast domain.
func buildSPFast() {
	for k := 0; k < 8; k++ {
		for f := 0; f < 64; f++ {
			// Recover S-box input bits b1..b6 from field offsets.
			var b [7]uint32 // 1-based
			for off := 0; off < 6; off++ {
				b[fieldOrder[k][off]] = uint32(f>>uint(off)) & 1
			}
			row := b[1]<<1 | b[6]
			col := b[2]<<3 | b[3]<<2 | b[4]<<1 | b[5]
			nib := uint32(sBoxes[k][row][col])
			// Pre-P word: S-box k's nibble occupies textbook bits
			// 4k+1..4k+4 (MSB-first).
			pre := uint32(nib) << uint(32-4*(k+1))
			post := uint32(permute(uint64(pre), pTable[:], 32))
			// Map textbook positions to domain positions.
			var d uint32
			for j := 1; j <= 32; j++ {
				if post>>(uint(32-j))&1 != 0 {
					d |= 1 << uint(domainMap[j-1])
				}
			}
			SPFast[k][f] = d
		}
	}
}

// FastSubkeys converts the textbook round keys into fast-domain pairs
// (kA for even S-boxes indexing u, kB for odd S-boxes indexing t).
func FastSubkeys(key uint64) [16][2]uint32 {
	ks := subkeys48(key)
	var out [16][2]uint32
	for r := 0; r < 16; r++ {
		for k := 0; k < 8; k++ {
			var field uint32
			for off := 0; off < 6; off++ {
				bitNo := 6*k + fieldOrder[k][off] // 48-bit key bit, 1-based
				field |= uint32(fipsBit(ks[r], bitNo, 48)) << uint(off)
			}
			out[r][k%2] |= field << fieldShift[k]
		}
	}
	return out
}

// RoundFast computes one fast-domain round: returns l ^ f(r, kA, kB).
func RoundFast(l, r, kA, kB uint32) uint32 {
	u := r ^ kA
	t := bits.RotateLeft32(r, -4) ^ kB
	return l ^
		SPFast[0][u>>2&0x3f] ^ SPFast[2][u>>10&0x3f] ^
		SPFast[4][u>>18&0x3f] ^ SPFast[6][u>>26&0x3f] ^
		SPFast[1][t>>2&0x3f] ^ SPFast[3][t>>10&0x3f] ^
		SPFast[5][t>>18&0x3f] ^ SPFast[7][t>>26&0x3f]
}

// ---- public ciphers ----

// KeySize is the single-DES key size in bytes; KeySize3 the 3DES size.
const (
	KeySize   = 8
	KeySize3  = 24
	BlockSize = 8
)

// DES is a single-DES instance.
type DES struct {
	ks   [16]uint64    // textbook 48-bit round keys
	fast [16][2]uint32 // fast-domain round keys
}

// New returns a DES instance keyed with an 8-byte key (parity ignored).
func New(key []byte) (*DES, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("des: key must be %d bytes, got %d", KeySize, len(key))
	}
	var k uint64
	for _, b := range key {
		k = k<<8 | uint64(b)
	}
	d := &DES{ks: subkeys48(k), fast: FastSubkeys(k)}
	return d, nil
}

// FastKeys exposes the fast-domain round keys for the AXP64 kernels.
func (d *DES) FastKeys() [16][2]uint32 { return d.fast }

// BlockSize implements ciphers.Block.
func (d *DES) BlockSize() int { return BlockSize }

func blockToU64(src []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(src[i])
	}
	return v
}

func u64ToBlock(dst []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		dst[i] = byte(v)
		v >>= 8
	}
}

// Encrypt implements ciphers.Block via the textbook path.
func (d *DES) Encrypt(dst, src []byte) {
	u64ToBlock(dst, cryptBlock(blockToU64(src), &d.ks, false))
}

// Decrypt implements ciphers.Block.
func (d *DES) Decrypt(dst, src []byte) {
	u64ToBlock(dst, cryptBlock(blockToU64(src), &d.ks, true))
}

// EncryptFast encrypts one block via the fast-domain formulation; the AXP64
// kernels mirror this code path exactly.
func (d *DES) EncryptFast(dst, src []byte) {
	l, r := loadHalves(src)
	ipNetwork(&l, &r)
	for i := 0; i < 16; i++ {
		l, r = r, RoundFast(l, r, d.fast[i][0], d.fast[i][1])
	}
	l, r = r, l // undo the final half-exchange
	fpNetwork(&l, &r)
	storeHalves(dst, l, r)
}

// TripleDES is 3DES in EDE3 mode with three independent keys, as specified
// for SSL.
type TripleDES struct {
	k1, k2, k3 *DES
}

// New3 returns a 3DES instance keyed with a 24-byte key.
func New3(key []byte) (*TripleDES, error) {
	if len(key) != KeySize3 {
		return nil, fmt.Errorf("des: 3DES key must be %d bytes, got %d", KeySize3, len(key))
	}
	k1, err := New(key[0:8])
	if err != nil {
		return nil, err
	}
	k2, err := New(key[8:16])
	if err != nil {
		return nil, err
	}
	k3, err := New(key[16:24])
	if err != nil {
		return nil, err
	}
	return &TripleDES{k1, k2, k3}, nil
}

// Stages exposes the three single-DES stages (for kernel key material).
func (t *TripleDES) Stages() (k1, k2, k3 *DES) { return t.k1, t.k2, t.k3 }

// BlockSize implements ciphers.Block.
func (t *TripleDES) BlockSize() int { return BlockSize }

// Encrypt implements ciphers.Block: E(k3, D(k2, E(k1, x))).
func (t *TripleDES) Encrypt(dst, src []byte) {
	v := blockToU64(src)
	v = cryptBlock(v, &t.k1.ks, false)
	v = cryptBlock(v, &t.k2.ks, true)
	v = cryptBlock(v, &t.k3.ks, false)
	u64ToBlock(dst, v)
}

// Decrypt implements ciphers.Block.
func (t *TripleDES) Decrypt(dst, src []byte) {
	v := blockToU64(src)
	v = cryptBlock(v, &t.k3.ks, true)
	v = cryptBlock(v, &t.k2.ks, false)
	v = cryptBlock(v, &t.k1.ks, true)
	u64ToBlock(dst, v)
}

// FastDecryptKeys returns the fast-domain keys of a stage in decryption
// order, for kernels that run a stage inverted.
func FastDecryptKeys(d *DES) [16][2]uint32 {
	var out [16][2]uint32
	for i := 0; i < 16; i++ {
		out[i] = d.fast[15-i]
	}
	return out
}
