package des

import "math/bits"

// Support for the AXP64 kernels: replicated SP tables compatible with the
// SBOX instruction's byte indexing, and the bit-permutation maps that let
// XBOX compute the initial/final permutations directly from (to) the
// little-endian-loaded 64-bit block.

// SPKernelTables returns the eight 256-entry tables T[k][b] =
// SPFast[k][b>>2]: the index byte carries the 6-bit S-box field in bits
// 2..7, so replicating each entry four times makes the low two bits
// don't-cares, exactly the technique the paper describes for sub-byte
// S-boxes.
func SPKernelTables() [8][256]uint32 {
	var out [8][256]uint32
	for k := 0; k < 8; k++ {
		for b := 0; b < 256; b++ {
			out[k][b] = SPFast[k][b>>2&0x3f]
		}
	}
	return out
}

// KernelPermMaps returns XBOX source-bit indices for the combined
// byte-load + initial permutation and for the final permutation +
// byte-store:
//
//   - ipBits[k][j] is the bit of the little-endian 64-bit input block that
//     lands at bit j of byte k of the concatenated fast-domain halves
//     (bytes 0..3 = Lf, bytes 4..7 = Rf);
//   - fpBits[k][j] is the bit of Y = Lf | Rf<<32 that lands at bit j of
//     byte k of the little-endian 64-bit output block.
//
// Both are derived by unit-vector probing of the same ipNetwork/fpNetwork
// code the golden model runs.
func KernelPermMaps() (ipBits, fpBits [8][8]uint8) {
	var ipPos, fpPos [64]uint8
	for s := 0; s < 64; s++ {
		var blk [8]byte
		blk[s/8] = 1 << uint(s%8)
		l, r := loadHalves(blk[:])
		ipNetwork(&l, &r)
		switch {
		case l != 0:
			ipPos[bits.TrailingZeros32(l)] = uint8(s)
		default:
			ipPos[32+bits.TrailingZeros32(r)] = uint8(s)
		}

		y := uint64(1) << uint(s)
		fl := uint32(y)
		fr := uint32(y >> 32)
		fpNetwork(&fl, &fr)
		out := uint64(fl) | uint64(fr)<<32
		fpPos[bits.TrailingZeros64(out)] = uint8(s)
	}
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			ipBits[k][j] = ipPos[8*k+j]
			fpBits[k][j] = fpPos[8*k+j]
		}
	}
	return ipBits, fpBits
}

// Gather describes one bit move of a data-driven permutation: take SrcBit
// of the source register, deposit it at DstPos of destination DstSel.
type Gather struct {
	SrcBit uint8
	DstSel uint8
	DstPos uint8
}

// PC1Gather returns the 56 bit moves of permuted choice 1: source bits are
// LSB-first positions in the big-endian-assembled 64-bit key; destinations
// are the C (sel 0) and D (sel 1) 28-bit halves, MSB-first as in the
// golden schedule.
func PC1Gather() [56]Gather {
	var out [56]Gather
	for i, src := range pc1Table {
		sel := uint8(0)
		pos := 27 - i
		if i >= 28 {
			sel = 1
			pos = 27 - (i - 28)
		}
		out[i] = Gather{SrcBit: uint8(64 - int(src)), DstSel: sel, DstPos: uint8(pos)}
	}
	return out
}

// PC2Gather returns the 48 bit moves from the combined 56-bit CD register
// (C<<28 | D) into the fast-domain round-key pair (kA = word 0, kB = word
// 1), composing permuted choice 2 with the kernel's field placement.
func PC2Gather() [48]Gather {
	var out [48]Gather
	for k := 0; k < 8; k++ {
		for off := 0; off < 6; off++ {
			n := 6*k + fieldOrder[k][off] // 1-based round-key bit
			out[n-1] = Gather{
				SrcBit: uint8(56 - int(pc2Table[n-1])),
				DstSel: uint8(k % 2),
				DstPos: uint8(int(fieldShift[k]) + off),
			}
		}
	}
	return out
}

// KSShifts exposes the per-round key-schedule rotations.
func KSShifts() [16]int {
	var out [16]int
	for i, s := range ksShifts {
		out[i] = int(s)
	}
	return out
}

// PermOpSteps describes the shared IP/FP swap network for the baseline
// kernel: each step is t=((a>>n)^b)&m; b^=t; a^=t<<n, applied to (r,l) or
// (l,r) as flagged.
type PermOpStep struct {
	RFirst bool // operate on (r, l) rather than (l, r)
	Shift  uint
	Mask   uint32
}

// IPSteps returns the five swap-network steps of the initial permutation
// (followed by l,r = rotl3(r), rotl3(l)).
func IPSteps() []PermOpStep {
	return []PermOpStep{
		{true, 4, 0x0f0f0f0f},
		{false, 16, 0x0000ffff},
		{true, 2, 0x33333333},
		{false, 8, 0x00ff00ff},
		{true, 1, 0x55555555},
	}
}

// FPSteps returns the five steps of the final permutation (preceded by
// l,r = rotr3(r), rotr3(l)).
func FPSteps() []PermOpStep {
	return []PermOpStep{
		{true, 1, 0x55555555},
		{false, 8, 0x00ff00ff},
		{true, 2, 0x33333333},
		{false, 16, 0x0000ffff},
		{true, 4, 0x0f0f0f0f},
	}
}
