package ciphers

import (
	"cryptoarch/internal/ciphers/blowfish"
	"cryptoarch/internal/ciphers/des"
	"cryptoarch/internal/ciphers/idea"
	"cryptoarch/internal/ciphers/mars"
	"cryptoarch/internal/ciphers/rc4"
	"cryptoarch/internal/ciphers/rc6"
	"cryptoarch/internal/ciphers/rijndael"
	"cryptoarch/internal/ciphers/twofish"
)

// The paper's Table 1. Key sizes are in bits as configured for the
// experiments; rounds are kernel iterations per block.
func init() {
	Register(&Cipher{
		Info: Info{Name: "3des", KeyBits: 168, BlockBits: 64, Rounds: 48,
			Author: "CryptSoft", Example: "SSL, SSH"},
		NewBlock: func(key []byte) (Block, error) { return des.New3(key) },
	})
	Register(&Cipher{
		Info: Info{Name: "blowfish", KeyBits: 128, BlockBits: 64, Rounds: 16,
			Author: "CryptSoft", Example: "Norton Utilities"},
		NewBlock: func(key []byte) (Block, error) { return blowfish.New(key) },
	})
	Register(&Cipher{
		Info: Info{Name: "idea", KeyBits: 128, BlockBits: 64, Rounds: 8,
			Author: "Ascom", Example: "PGP, SSH"},
		NewBlock: func(key []byte) (Block, error) { return idea.New(key) },
	})
	Register(&Cipher{
		Info: Info{Name: "mars", KeyBits: 128, BlockBits: 128, Rounds: 16,
			Author: "IBM", Example: "AES Candidate"},
		NewBlock: func(key []byte) (Block, error) { return mars.New(key) },
	})
	Register(&Cipher{
		Info: Info{Name: "rc4", KeyBits: 128, BlockBits: 8, Rounds: 1,
			Author: "CryptSoft", Example: "SSL", Stream: true},
		NewStream: func(key []byte) (Stream, error) { return rc4.New(key) },
	})
	Register(&Cipher{
		Info: Info{Name: "rc6", KeyBits: 128, BlockBits: 128, Rounds: rc6.Rounds,
			Author: "RSA Security", Example: "AES Candidate"},
		NewBlock: func(key []byte) (Block, error) { return rc6.New(key) },
	})
	Register(&Cipher{
		Info: Info{Name: "rijndael", KeyBits: 128, BlockBits: 128, Rounds: 10,
			Author: "Rijmen", Example: "AES Candidate"},
		NewBlock: func(key []byte) (Block, error) { return rijndael.New(key) },
	})
	Register(&Cipher{
		Info: Info{Name: "twofish", KeyBits: 128, BlockBits: 128, Rounds: 16,
			Author: "Counterpane", Example: "AES Candidate"},
		NewBlock: func(key []byte) (Block, error) { return twofish.New(key) },
	})
}

// KeyBytes returns the key length in bytes used for experiments with the
// named cipher.
func (c *Cipher) KeyBytes() int {
	if c.Info.Name == "3des" {
		return 24
	}
	return c.Info.KeyBits / 8
}
