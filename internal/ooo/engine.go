package ooo

import (
	"fmt"
	"math/bits"
	"sync"
	"unsafe"

	"cryptoarch/internal/check"
	"cryptoarch/internal/core"
	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/metrics"
)

// Stream supplies the committed-path dynamic instruction stream.
type Stream interface {
	// Next returns the next retired instruction, or false at end.
	Next() (*emu.Rec, bool)
}

// MachineStream adapts the functional emulator to a Stream.
type MachineStream struct{ M *emu.Machine }

// Next implements Stream.
func (s MachineStream) Next() (*emu.Rec, bool) {
	r := s.M.Step()
	if r == nil {
		return nil, false
	}
	return r, true
}

// Err surfaces a terminal machine fault (instruction budget, runaway PC)
// so Run fails instead of timing a silently truncated stream.
func (s MachineStream) Err() error { return s.M.Err() }

// SizedStream is optionally implemented by streams that know in advance
// how many instructions they will deliver (e.g. emu.ReplayStream). The
// engine uses the count to pre-size the in-flight ring for
// infinite-window machines, which otherwise grow it by repeated doubling.
type SizedStream interface {
	Stream
	InstCount() int
}

// CodeBase is the simulated address of instruction index 0 (instruction
// addresses feed the I-cache model).
const CodeBase = 0x4000

// Stats summarizes one timing-simulation run.
type Stats struct {
	Config       string
	Cycles       uint64
	Instructions uint64
	ClassCounts  [isa.NumClasses]uint64
	Branches     uint64
	Mispredicts  uint64
	Loads        uint64
	Stores       uint64
	SboxAccesses uint64
	SboxHits     uint64
	DL1Misses    uint64
	L2Misses     uint64
	TLBMisses    uint64

	// Stalls attributes every commit slot (Cycles*IssueWidth of them on
	// finite-width machines) to one cause; see stats.go.
	Stalls StallBreakdown
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

const (
	stWaiting uint8 = iota // register or memory dependencies outstanding
	stReady                // queued for issue
	stIssued
	stDone
)

// entry is one reorder-buffer slot. The layout is packed (96 bytes on
// amd64): fetch rewrites the whole struct once per instruction and commit
// walks the ring in order, so entry size is raw bandwidth in the hottest
// loops. Per-entry cycle stamps are uint32 — Run aborts before the global
// cycle counter could truncate.
type entry struct {
	seq          uint64
	inst         *isa.Inst
	addr         uint64
	storeOrdinal uint64 // for stores: position in store order (1-based)
	dataProd     uint64 // stores: seq+1 of the data producer (0 if ready)
	needStores   uint64 // loads: stores that must have known addresses

	idx         int32
	pendingDeps int32
	// Waiting dependents as a pooled intrusive list (engine.consPool,
	// 1-based node indices; 0 = none). The zero value is an empty list, so
	// ring growth and entry recycling need no re-initialization.
	consHead, consTail int32

	fetchCycle    uint32
	dispatchCycle uint32
	readyCycle    uint32
	doneCycle     uint32

	size            uint8
	state           uint8
	kind            uint8 // FU kind (kindOf), computed once at fetch
	isLoad, isStore bool
	sboxToDCache    bool // SBOX routed through a D-cache port
	memBlocked      bool // waiting on store-address ordering
	mispred         bool
	memLevel        uint8 // deepest miss level of this entry's data access
	issueDelayed    bool  // issued later than its ready cycle (passed over)
}

// Data-access miss levels recorded per entry (deepest wins).
const (
	memHit uint8 = iota
	memMissDL1
	memMissTLB
	memMissL2
)

// Resource kinds for the per-kind ready queues.
const (
	kindNone = iota // no functional unit (NOP, HALT, SBOXSYNC)
	kindIALU
	kindMul32 // one multiplier lane
	kindMul64 // two multiplier lanes
	kindRot
	kindDPort
	kindSbox0 // + architectural table number
	fuKinds   = kindSbox0 + 16
)

// kindOf classifies an entry by the resource pool it issues to.
func kindOf(en *entry) int {
	op := en.inst.Op
	switch {
	case op == isa.OpSBOX && !en.sboxToDCache:
		return kindSbox0 + int(en.inst.Sel1)
	case en.isLoad || en.isStore || op == isa.OpSBOX:
		return kindDPort
	case op == isa.OpMULQ || op == isa.OpUMULH:
		return kindMul64
	case op == isa.OpMULL || op == isa.OpMULMOD:
		return kindMul32
	case op == isa.OpROLQ || op == isa.OpRORQ || op == isa.OpROLL || op == isa.OpRORL ||
		op == isa.OpROLXL || op == isa.OpRORXL || op == isa.OpROLXQ || op == isa.OpRORXQ ||
		op == isa.OpXBOX:
		return kindRot
	case op == isa.OpHALT || op == isa.OpNOP || op == isa.OpSBOXSYNC:
		return kindNone
	default:
		return kindIALU
	}
}

// consNode is one element of a pooled consumer list (entry.consHead).
// Nodes for every in-flight list live in Engine.consPool; freed lists are
// spliced whole onto a freelist, so after warm-up the simulation allocates
// no per-dependence memory — the fix for the dataflow model, whose 2^18
// in-flight entries used to hold a heap slice each.
type consNode struct {
	seq  uint64
	next int32
}

type sboxCache struct {
	tag    uint64
	valid  uint32 // 32 sector-valid bits
	hasTag bool
}

// Engine runs the timing model over one instruction stream.
type Engine struct {
	cfg Config
	src Stream
	mem *memSystem
	bp  *bpred

	stats Stats
	cycle uint64

	// Reorder buffer as a growable ring indexed by seq%cap.
	rob     []entry
	headSeq uint64 // oldest in-flight seq
	tailSeq uint64 // next seq to allocate
	memOps  int    // in-flight loads/stores (LSQ occupancy)

	regProducer [isa.NumRegs]uint64 // seq+1 of latest producer; 0 = none

	// Consumer-list node pool. Node i lives at consPool[i-1] (1-based so
	// index 0 means "none"); consFree heads the freelist.
	consPool []consNode
	consFree int32

	// Store ordering. Issued-but-not-yet-contiguous store ordinals live in
	// a ring bitset indexed ordinal&(len-1); in-flight ordinals span
	// (storeKnown, storeCount], bounded by the window, so the ring grows
	// like the ROB and is then reused forever.
	storeCount  uint64 // stores dispatched
	storeIssued []bool // ring bitset of issued store ordinals
	storeKnown  uint64 // contiguous prefix of stores with known address

	// Loads blocked on storeKnown. Dispatch pushes in seq order and their
	// required store counts are monotone in seq, so a FIFO (head index into
	// a reused slice) replaces the old heap+needs-map pair; each waiter's
	// requirement is its entry's needStores.
	memWaiters  []uint64
	memWaitHead int

	// Last store per byte address (perfect-alias oracle / forwarding).
	lastStoreByte aliasMap

	// Event wheel: completions per cycle, ring-indexed with overflow.
	completions calendar

	// Ready instructions are queued per resource kind (oldest-first), so
	// issue does O(issued) work per cycle even with an unbounded window:
	// a full resource pool blocks exactly its own queue. readyMask has bit
	// k set iff readyQ[k] is non-empty, so issue scans only live queues.
	readyQ    [fuKinds]seqPQ
	readyMask uint32

	// Entries becoming ready next cycle (makeReady proves readyCycle is
	// never beyond cycle+1), double-buffered by cycle parity: bucket c&1
	// holds the seqs that promote at cycle c.
	futureReady [2][]uint64

	// Fetch state. The fetch/decode queue is a power-of-two ring indexed
	// by monotone head/tail counters.
	fetchQ               []uint64 // ring of seqs (dispatch order)
	fqHead, fqTail       uint64
	fetchStallTil        uint64
	fetchStallBranch     bool // fetchStallTil is branch recovery, not I-cache
	fetchBlockedOnBranch bool
	blockedBranchSeq     uint64
	lastFetchLine        uint64
	streamDone           bool
	// pending is a peeked record not yet fetched. It points into the
	// stream's internal record, which stays valid until the next Next
	// call — fetch consumes it before peeking again, so no copy is kept.
	pending *emu.Rec

	sboxCaches []sboxCache

	srcScratch [4]isa.Reg

	// Per-cycle resource usage.
	resCycle     uint64
	ialuUsed     int
	mulUsed      int
	rotUsed      int
	dportUsed    int
	sboxPortUsed []int

	// Observability (see stats.go, trace.go, profile.go). The tracer and
	// profile are nil unless attached; accounting reads pipeline state but
	// never changes it.
	tracer           Tracer
	commitsThisCycle int
	issuedThisCycle  int
	windowFullCycle  uint64 // last cycle dispatch was blocked by a full window

	// Per-PC profiling state (profile.go). profPCs is nil unless a profile
	// is attached; profSlots additionally gates slot charging (finite
	// widths only). commitIdxs buffers this cycle's retired PCs so account
	// can charge their commit slots — charging in commit itself would
	// overcount: the run's final cycle commits but is never accounted.
	profPCs     []PCProfile
	profSlots   bool
	commitIdxs  []int32
	lastRetired int32 // PC of the most recently retired instruction

	// Warmup/measure epoch state (warmup.go). warmupLeft counts down at
	// dispatch; when it hits zero the current counters become the base
	// subtracted from the final stats and profile.
	warmupLeft     uint64
	warmupBase     Stats
	warmupBaseSet  bool
	warmupProfBase []PCProfile

	// Checked-mode rotating cursor over large windows (invariants.go).
	checkCursor uint64

	// Telemetry registry (metrics.go); nil unless attached. Touched only
	// at run completion, never in the per-cycle loop.
	metrics *metrics.Registry
}

// NewEngine creates a timing engine for cfg over src.
func NewEngine(cfg Config, src Stream) *Engine {
	e := &Engine{
		cfg:             cfg,
		src:             src,
		mem:             newMemSystem(),
		bp:              newBpred(),
		storeIssued:     make([]bool, 256),
		lastStoreByte:   newAliasMap(),
		sboxCaches:      make([]sboxCache, cfg.NumSboxCaches),
		sboxPortUsed:    make([]int, cfg.NumSboxCaches),
		windowFullCycle: ^uint64(0),
	}
	e.stats.Config = cfg.Name
	// The ring holds both the fetch queue and the window; size it for the
	// worst case. An infinite window normally starts small and doubles on
	// demand, but when the stream knows its length (replay) the ring is
	// sized once up front, eliminating the growth churn that dominated the
	// dataflow model's allocation profile.
	capHint := cfg.WindowSize + e.fetchQueueCap() + 64
	if inf(cfg.WindowSize) {
		if ss, ok := src.(SizedStream); ok {
			n := ss.InstCount()
			if n > maxWindow {
				n = maxWindow
			}
			capHint = n + e.fetchQueueCap() + 64
		}
	}
	e.rob = getRing(nextPow2(capHint))
	e.consPool = getConsPool()
	e.fetchQ = make([]uint64, nextPow2(e.fetchQueueCap()))
	return e
}

// maxWindow bounds "infinite" windows: a quarter-million in-flight
// instructions is far beyond any dependence distance in these kernels, and
// it keeps the dataflow-model memory footprint bounded.
const maxWindow = 1 << 18

// effWindow is the window size with the infinite case bounded.
func (e *Engine) effWindow() int {
	if inf(e.cfg.WindowSize) {
		return maxWindow
	}
	return e.cfg.WindowSize
}

// fetchQueueCap bounds the fetch/decode queue.
func (e *Engine) fetchQueueCap() int {
	if inf(e.cfg.FetchWidth) || inf(e.cfg.FetchBlocksPerCycle) {
		return 4096
	}
	if c := 4 * e.cfg.FetchWidth * e.cfg.FetchBlocksPerCycle; c > 16 {
		return c
	}
	return 16
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ROB rings are recycled between runs without re-zeroing: every entry is
// fully initialized by fetch before any other stage reads it (all reads
// go through seqs that fetch already allocated), so stale contents are
// never observed. Zeroing mattered — the dataflow model's ring is tens of
// MB and used to be cleared on every engine construction. The freelist is
// bounded by total retained bytes, keeping at most a few of the largest
// rings alive.
var (
	ringMu    sync.Mutex
	ringFree  = map[int][][]entry{}
	ringBytes int
)

const ringPoolBudget = 128 << 20

func entryBytes(n int) int { return n * int(unsafe.Sizeof(entry{})) }

// Consumer-node pools are recycled across runs like the rings: the slice
// is reset to length zero, and every node is fully written by addConsumer
// before it is read, so stale contents are never observed.
const consPoolBudget = 64 << 20

var (
	consMu    sync.Mutex
	consFreeL [][]consNode
	consBytes int
)

func consNodeBytes(n int) int { return n * int(unsafe.Sizeof(consNode{})) }

func getConsPool() []consNode {
	consMu.Lock()
	if n := len(consFreeL); n > 0 {
		b := consFreeL[n-1]
		consFreeL = consFreeL[:n-1]
		consBytes -= consNodeBytes(cap(b))
		consMu.Unlock()
		return b[:0]
	}
	consMu.Unlock()
	return nil
}

func putConsPool(b []consNode) {
	if cap(b) == 0 {
		return
	}
	consMu.Lock()
	if consBytes+consNodeBytes(cap(b)) <= consPoolBudget {
		consFreeL = append(consFreeL, b)
		consBytes += consNodeBytes(cap(b))
	}
	consMu.Unlock()
}

func getRing(n int) []entry {
	ringMu.Lock()
	if l := ringFree[n]; len(l) > 0 {
		r := l[len(l)-1]
		ringFree[n] = l[:len(l)-1]
		ringBytes -= entryBytes(n)
		ringMu.Unlock()
		return r
	}
	ringMu.Unlock()
	return make([]entry, n)
}

func putRing(r []entry) {
	n := len(r)
	if n == 0 {
		return
	}
	ringMu.Lock()
	if ringBytes+entryBytes(n) <= ringPoolBudget {
		ringFree[n] = append(ringFree[n], r)
		ringBytes += entryBytes(n)
	}
	ringMu.Unlock()
}

func (e *Engine) at(seq uint64) *entry { return &e.rob[seq&uint64(len(e.rob)-1)] }

// fqLen is the fetch/decode queue occupancy.
func (e *Engine) fqLen() int { return int(e.fqTail - e.fqHead) }

// windowOcc is the number of dispatched-but-uncommitted instructions.
func (e *Engine) windowOcc() int {
	return int(e.tailSeq-e.headSeq) - e.fqLen()
}

// ensureRing guarantees space for one more in-flight entry.
func (e *Engine) ensureRing() {
	if e.tailSeq-e.headSeq == uint64(len(e.rob)) {
		e.growROB()
	}
}

func (e *Engine) growROB() {
	old := e.rob
	e.rob = getRing(len(old) * 2)
	for s := e.headSeq; s < e.tailSeq; s++ {
		e.rob[s&uint64(len(e.rob)-1)] = old[s&uint64(len(old)-1)]
	}
	putRing(old)
}

// growStoreRing doubles the issued-store-ordinal ring, re-placing the
// in-flight ordinals under the new mask.
func (e *Engine) growStoreRing() {
	old := e.storeIssued
	e.storeIssued = make([]bool, len(old)*2)
	for o := e.storeKnown + 1; o <= e.storeCount; o++ {
		e.storeIssued[o&uint64(len(e.storeIssued)-1)] = old[o&uint64(len(old)-1)]
	}
}

// WarmData pre-fills the data-cache hierarchy and TLB for a region, as if
// the key-setup code (which writes the whole cipher context) had just run.
// Without this, one-time compulsory misses on the S-box tables would
// dominate short sessions, which is not what the paper measures.
func (e *Engine) WarmData(addr uint64, n int) {
	end := addr + uint64(n)
	for a := addr &^ ((1 << blockShift) - 1); a < end; a += 1 << blockShift {
		e.mem.dl1.lookup(a, true)
		e.mem.l2.lookup(a, true)
	}
	for a := addr &^ ((1 << pageShift) - 1); a < end; a += 1 << pageShift {
		e.mem.dtlb.lookup(a, true)
	}
}

// WarmCode pre-fills the instruction cache for a program of n
// instructions, as if the kernel had already run (key setup and the
// session-establishment path execute this code before the measured
// session).
func (e *Engine) WarmCode(n int) {
	end := CodeBase + uint64(n)*4
	for a := uint64(CodeBase); a < end; a += 1 << blockShift {
		e.mem.il1.lookup(a, true)
		e.mem.l2.lookup(a, true)
	}
}

// Run drives the model to completion and returns the statistics. When a
// metrics registry is attached (SetMetrics), run totals are accumulated
// onto it afterwards; the simulated statistics are identical either way.
func (e *Engine) Run() (*Stats, error) {
	if e.metrics == nil {
		return e.run()
	}
	return e.runMetered()
}

func (e *Engine) run() (*Stats, error) {
	const idleLimit = 1 << 22
	var idle uint64
	for {
		progress := e.step()
		if e.streamDone && e.pending == nil && e.fqLen() == 0 && e.headSeq == e.tailSeq {
			break
		}
		if progress {
			idle = 0
		} else if idle++; idle > idleLimit {
			return nil, fmt.Errorf("ooo: %s deadlocked at cycle %d (head %d tail %d)",
				e.cfg.Name, e.cycle, e.headSeq, e.tailSeq)
		}
		if e.cycle>>32 != 0 {
			// Per-entry cycle stamps are uint32; no modeled run comes
			// within orders of magnitude of this.
			return nil, fmt.Errorf("ooo: %s exceeded 2^32 cycles", e.cfg.Name)
		}
		// Charge this cycle's commit slots. The final (break) iteration is
		// not a counted cycle, so accounted cycles == Stats.Cycles and the
		// buckets sum to exactly Cycles*IssueWidth.
		e.account()
		e.cycle++
		if e.cfg.Checked {
			if err := e.CheckInvariants(); err != nil {
				return nil, fmt.Errorf("ooo: %s: %w", e.cfg.Name, err)
			}
		}
		if e.cfg.CycleBudget != 0 && e.cycle >= e.cfg.CycleBudget {
			return nil, &check.BudgetError{
				Resource: "cycles", Subject: "model " + e.cfg.Name,
				Limit: e.cfg.CycleBudget, Used: e.cycle,
			}
		}
	}
	// A stream that ends because its machine faulted (instruction budget,
	// runaway PC) must fail the run, not silently time the prefix.
	if f, ok := e.src.(interface{ Err() error }); ok {
		if err := f.Err(); err != nil {
			return nil, fmt.Errorf("ooo: %s: source stream: %w", e.cfg.Name, err)
		}
	}
	if e.cfg.Checked {
		if err := e.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("ooo: %s: %w", e.cfg.Name, err)
		}
	}
	e.stats.Cycles = e.cycle
	e.stats.DL1Misses = e.mem.DL1Miss
	e.stats.L2Misses = e.mem.L2Miss
	e.stats.TLBMisses = e.mem.TLBMiss
	// Discard the warmup epoch, if one was armed and closed. This happens
	// after the final invariant check: checked mode validates cumulative
	// counters, and the delta preserves the slot identity on its own.
	e.applyWarmup()
	// The run is complete: recycle the ring and node pool for the next
	// engine.
	putRing(e.rob)
	e.rob = nil
	putConsPool(e.consPool)
	e.consPool = nil
	return &e.stats, nil
}

// step executes one cycle; reports whether any state changed.
func (e *Engine) step() bool {
	progress := false
	if e.writeback() {
		progress = true
	}
	if e.promoteReady() {
		progress = true
	}
	if e.commit() {
		progress = true
	}
	if e.issue() {
		progress = true
	}
	if e.dispatch() {
		progress = true
	}
	if e.fetch() {
		progress = true
	}
	return progress
}

// writeback processes completions scheduled for this cycle: wakes register
// consumers, advances store ordering, releases branch stalls. The
// calendar walk is inlined here so every completion is a direct call —
// this runs once per simulated instruction. Overflow drains first; see
// the ordering argument on the calendar type.
func (e *Engine) writeback() bool {
	c := &e.completions
	any := false
	if len(c.overflow) > 0 && c.overflow[0].cycle == e.cycle {
		n := 0
		for n < len(c.overflow) && c.overflow[n].cycle == e.cycle {
			e.complete(c.overflow[n].seq)
			n++
		}
		copy(c.overflow, c.overflow[n:])
		c.overflow = c.overflow[:len(c.overflow)-n]
		any = true
	}
	slot := &c.slots[e.cycle&(calSlots-1)]
	if len(*slot) > 0 {
		for _, s := range *slot {
			e.complete(s)
		}
		*slot = (*slot)[:0]
		any = true
	}
	return any
}

// complete finishes one instruction: wakes register consumers, releases a
// blocked branch. The consumer list is spliced back onto the node
// freelist in one step, so completion frees no memory.
func (e *Engine) complete(s uint64) {
	en := e.at(s)
	en.state = stDone
	if e.tracer != nil {
		e.tracer.Event(TraceWriteback, e.cycle, s, int(en.idx), en.inst)
	}
	rob, mask := e.rob, uint64(len(e.rob)-1)
	pool := e.consPool
	for i := en.consHead; i != 0; i = pool[i-1].next {
		c := pool[i-1].seq
		ce := &rob[c&mask]
		if ce.seq != c || ce.state != stWaiting {
			continue
		}
		ce.pendingDeps--
		if ce.pendingDeps == 0 && !ce.memBlocked {
			e.makeReady(ce)
		}
	}
	if en.consHead != 0 {
		e.consPool[en.consTail-1].next = e.consFree
		e.consFree = en.consHead
		en.consHead, en.consTail = 0, 0
	}
	if en.mispred && e.fetchBlockedOnBranch && e.blockedBranchSeq == s {
		e.fetchBlockedOnBranch = false
		resume := e.cycle + 1
		if min := uint64(en.fetchCycle) + uint64(e.cfg.BranchPenalty); min > resume {
			resume = min
		}
		if resume > e.fetchStallTil {
			e.fetchStallTil = resume
			e.fetchStallBranch = true
		}
	}
}

// addConsumer appends a waiting dependent to pe's consumer list. FIFO
// order is preserved (tail append): wakeup order feeds the ready queues
// and is therefore visible in the golden statistics.
func (e *Engine) addConsumer(pe *entry, seq uint64) {
	i := e.consFree
	if i == 0 {
		e.consPool = append(e.consPool, consNode{})
		i = int32(len(e.consPool))
	} else {
		e.consFree = e.consPool[i-1].next
	}
	e.consPool[i-1] = consNode{seq: seq}
	if pe.consTail == 0 {
		pe.consHead = i
	} else {
		e.consPool[pe.consTail-1].next = i
	}
	pe.consTail = i
}

// queueReady inserts a ready entry into its per-kind issue queue.
func (e *Engine) queueReady(k int, seq uint64) {
	e.readyQ[k].push(seq)
	e.readyMask |= 1 << uint(k)
}

func (e *Engine) makeReady(en *entry) {
	en.state = stReady
	rc := e.cycle
	if dc := uint64(en.dispatchCycle) + 1; dc > rc {
		rc = dc
	}
	en.readyCycle = uint32(rc)
	if rc <= e.cycle {
		e.queueReady(int(en.kind), en.seq)
	} else {
		// dispatchCycle never exceeds the current cycle, so rc is at most
		// cycle+1: the parity bucket rc&1 promotes exactly at cycle rc.
		e.futureReady[rc&1] = append(e.futureReady[rc&1], en.seq)
	}
}

// promoteReady moves entries whose ready cycle has arrived into the
// per-kind issue queues.
func (e *Engine) promoteReady() bool {
	b := &e.futureReady[e.cycle&1]
	if len(*b) == 0 {
		return false
	}
	rob, mask := e.rob, uint64(len(e.rob)-1)
	for _, s := range *b {
		en := &rob[s&mask]
		if en.seq == s && en.state == stReady {
			e.queueReady(int(en.kind), s)
		}
	}
	*b = (*b)[:0]
	return true
}

// commit retires completed instructions in order.
func (e *Engine) commit() bool {
	width := e.cfg.IssueWidth
	n := 0
	if e.profSlots {
		e.commitIdxs = e.commitIdxs[:0]
	}
	rob, mask := e.rob, uint64(len(e.rob)-1)
	for e.headSeq < e.tailSeq {
		en := &rob[e.headSeq&mask]
		if en.state != stDone || uint64(en.doneCycle) >= e.cycle {
			break
		}
		if !inf(width) && n >= width {
			break
		}
		if en.isLoad || en.isStore {
			e.memOps--
		}
		if e.tracer != nil {
			e.tracer.Event(TraceCommit, e.cycle, en.seq, int(en.idx), en.inst)
		}
		if e.profPCs != nil {
			e.profPCs[en.idx].Retired++
			e.lastRetired = en.idx
			if e.profSlots {
				e.commitIdxs = append(e.commitIdxs, en.idx)
			}
		}
		e.headSeq++
		n++
	}
	e.commitsThisCycle = n
	return n > 0
}

// account charges this cycle's commit slots: each retiring instruction
// uses one; every unused slot is blamed on the single cause observed at
// the reorder-buffer head (or on the front end when the window is empty).
func (e *Engine) account() {
	width := e.cfg.IssueWidth
	if inf(width) {
		return // slot attribution is defined only for finite widths
	}
	sb := &e.stats.Stalls
	n := uint64(e.commitsThisCycle)
	sb[StallCommit] += n
	if e.profSlots {
		for _, idx := range e.commitIdxs {
			e.profPCs[idx].Slots[StallCommit]++
		}
	}
	if n >= uint64(width) {
		return
	}
	cause := e.headBlame()
	lost := uint64(width) - n
	sb[cause] += lost
	if e.profSlots {
		e.profPCs[e.blamePC()].Slots[cause] += lost
	}
}

// headBlame picks the stall cause for this cycle's unused commit slots.
func (e *Engine) headBlame() StallCause {
	if e.headSeq == e.tailSeq {
		// Window empty: the front end starves commit.
		switch {
		case e.fetchBlockedOnBranch:
			return StallBranch
		case e.cycle < e.fetchStallTil:
			if e.fetchStallBranch {
				return StallBranch
			}
			return StallICache
		case e.streamDone && e.pending == nil && e.fqLen() == 0:
			return StallDrain
		default:
			return StallIFetch // fetched but not yet decoded/dispatched
		}
	}
	if e.fqLen() > 0 && e.fetchQ[e.fqHead&uint64(len(e.fetchQ)-1)] == e.headSeq {
		return StallIFetch // oldest in flight is fetched, not yet dispatched
	}
	en := e.at(e.headSeq)
	switch {
	case en.state == stWaiting && en.memBlocked:
		return StallAlias
	case en.state == stReady && uint64(en.readyCycle) > e.cycle:
		return StallIFetch // dispatch/rename fill: became ready too late
	case en.state == stReady:
		// Ready but not issued this cycle. Oldest-first selection means
		// the head is passed over only when its own pool is saturated or
		// the whole issue width went to it being unreachable.
		if k := int(en.kind); !e.kindHasRoom(k) {
			return fuStall(k)
		}
		return StallIssue
	}
	// Executing (or completing this cycle). In order of evidence:
	// a head that was passed over after becoming ready lost those cycles
	// to issue bandwidth or to the pool it competes for (the paper's
	// Issue/Res bottlenecks); a head sitting on a cache or TLB miss is a
	// memory stall; a machine whose dispatch is blocked on a full window
	// is either issue-bandwidth saturated (the issue stage consumed its
	// whole width this cycle — more window would not have helped) or
	// genuinely window-limited (a full window still could not feed the
	// issue width); anything else is the head's own execution latency.
	if en.issueDelayed {
		if k := int(en.kind); !e.kindHasRoom(k) {
			return fuStall(k)
		}
		return StallIssue
	}
	switch en.memLevel {
	case memMissL2:
		return StallL2Miss
	case memMissTLB:
		return StallTLBMiss
	case memMissDL1:
		return StallDL1Miss
	}
	if e.windowFullCycle == e.cycle {
		if e.issuedThisCycle >= e.cfg.IssueWidth {
			return StallIssue
		}
		return StallWindow
	}
	return StallExec
}

// fuStall maps a saturated resource kind to its stall bucket.
func fuStall(k int) StallCause {
	switch {
	case k == kindIALU:
		return StallIALU
	case k == kindMul32 || k == kindMul64:
		return StallMult
	case k == kindRot:
		return StallRot
	case k == kindDPort:
		return StallDPort
	case k >= kindSbox0:
		return StallSboxPort
	}
	return StallIssue // kindNone: only issue width can hold it back
}

// resetRes clears the per-cycle resource counters.
func (e *Engine) resetRes() {
	if e.resCycle == e.cycle {
		return
	}
	e.resCycle = e.cycle
	e.ialuUsed, e.mulUsed, e.rotUsed, e.dportUsed = 0, 0, 0, 0
	for i := range e.sboxPortUsed {
		e.sboxPortUsed[i] = 0
	}
}

// kindHasRoom reports whether the resource pool behind kind k can accept
// one more issue this cycle.
func (e *Engine) kindHasRoom(k int) bool {
	e.resetRes()
	switch {
	case k == kindNone:
		return true
	case k == kindIALU:
		return inf(e.cfg.NumIALU) || e.ialuUsed < e.cfg.NumIALU
	case k == kindMul32:
		return inf(e.cfg.MulLanes) || e.mulUsed < e.cfg.MulLanes
	case k == kindMul64:
		return inf(e.cfg.MulLanes) || e.mulUsed+2 <= e.cfg.MulLanes
	case k == kindRot:
		return inf(e.cfg.NumRot) || e.rotUsed < e.cfg.NumRot
	case k == kindDPort:
		return inf(e.cfg.DCachePorts) || e.dportUsed < e.cfg.DCachePorts
	default:
		return inf(e.cfg.SboxCachePorts) || e.sboxPortUsed[k-kindSbox0] < e.cfg.SboxCachePorts
	}
}

// reserve consumes the resource for kind k this cycle.
func (e *Engine) reserve(k int) {
	switch {
	case k == kindNone:
	case k == kindIALU:
		e.ialuUsed++
	case k == kindMul32:
		e.mulUsed++
	case k == kindMul64:
		e.mulUsed += 2
	case k == kindRot:
		e.rotUsed++
	case k == kindDPort:
		e.dportUsed++
	default:
		e.sboxPortUsed[k-kindSbox0]++
	}
}

// latency returns the execution latency of an issued entry, consulting the
// memory system for loads/SBOX accesses.
func (e *Engine) latency(en *entry) uint64 {
	op := en.inst.Op
	switch {
	case op == isa.OpSBOX:
		e.stats.SboxAccesses++
		if en.sboxToDCache {
			if e.cfg.PerfectMem {
				return core.LatSboxDCache
			}
			return e.dataAccessClassified(en)
		}
		return e.sboxAccess(en)
	case en.isLoad:
		if e.cfg.PerfectMem {
			return core.LatLoadAgen + core.LatDCacheAccess
		}
		return core.LatLoadAgen + e.dataAccessClassified(en)
	case en.isStore:
		if !e.cfg.PerfectMem {
			e.mem.dataAccess(en.addr, e.cycle) // allocate/dirty the line
		}
		return 1
	case op == isa.OpMULQ || op == isa.OpUMULH:
		return core.LatMul64
	case op == isa.OpMULL:
		return core.LatMul32
	case op == isa.OpMULMOD:
		return core.LatMulMod
	default:
		return 1
	}
}

// dataAccessClassified performs a data-hierarchy access and records the
// deepest level the access missed at on the entry, for stall attribution.
func (e *Engine) dataAccessClassified(en *entry) uint64 {
	d0, l0, t0 := e.mem.DL1Miss, e.mem.L2Miss, e.mem.TLBMiss
	lat := e.mem.dataAccess(en.addr, e.cycle)
	switch {
	case e.mem.L2Miss > l0:
		en.memLevel = memMissL2
	case e.mem.TLBMiss > t0:
		en.memLevel = memMissTLB
	case e.mem.DL1Miss > d0:
		en.memLevel = memMissDL1
	}
	return lat
}

// sboxAccess models the dedicated SBox caches: single-tag sector caches
// that demand-fetch 32-byte sectors from the data cache.
func (e *Engine) sboxAccess(en *entry) uint64 {
	if e.cfg.PerfectMem {
		e.stats.SboxHits++
		return core.LatSboxCache
	}
	c := &e.sboxCaches[en.inst.Sel1]
	base := en.addr & core.SboxAlignMask
	if !c.hasTag || c.tag != base {
		c.tag, c.hasTag, c.valid = base, true, 0
	}
	sector := uint32(1) << ((en.addr >> blockShift) & 31)
	if c.valid&sector != 0 {
		e.stats.SboxHits++
		return core.LatSboxCache
	}
	c.valid |= sector
	return core.LatSboxCache + e.dataAccessClassified(en)
}

// issue selects ready entries oldest-first across the per-kind queues,
// subject to issue width and functional-unit availability. A saturated
// pool stops only its own queue, so per-cycle work is O(issued), even
// when an infinite window keeps hundreds of thousands of instructions in
// flight.
func (e *Engine) issue() bool {
	width := e.cfg.IssueWidth
	issued := 0
	rob, rmask := e.rob, uint64(len(e.rob)-1)
	for {
		if !inf(width) && issued >= width {
			break
		}
		best := -1
		var bestSeq uint64
		for m := e.readyMask; m != 0; m &= m - 1 {
			k := bits.TrailingZeros32(m)
			if !e.kindHasRoom(k) {
				continue
			}
			if best == -1 || e.readyQ[k][0] < bestSeq {
				best, bestSeq = k, e.readyQ[k][0]
			}
		}
		if best == -1 {
			break
		}
		e.readyQ[best].pop()
		if len(e.readyQ[best]) == 0 {
			e.readyMask &^= 1 << uint(best)
		}
		en := &rob[bestSeq&rmask]
		e.reserve(best)
		en.state = stIssued
		en.issueDelayed = e.cycle > uint64(en.readyCycle)
		lat := e.latency(en)
		if e.profPCs != nil {
			e.profPCs[en.idx].ExecCycles += lat
		}
		en.doneCycle = uint32(e.cycle + lat)
		e.completions.schedule(e.cycle, uint64(en.doneCycle), bestSeq)
		issued++
		if e.tracer != nil {
			e.tracer.Event(TraceIssue, e.cycle, bestSeq, int(en.idx), en.inst)
		}
		if en.isStore {
			e.storeIssued[en.storeOrdinal&uint64(len(e.storeIssued)-1)] = true
			e.advanceStoreKnown()
		}
		if en.inst.Op == isa.OpSBOXSYNC {
			for i := range e.sboxCaches {
				e.sboxCaches[i].valid = 0
			}
		}
	}
	e.issuedThisCycle = issued
	return issued > 0
}

// advanceStoreKnown extends the contiguous prefix of stores whose
// addresses are known and wakes loads blocked on it.
func (e *Engine) advanceStoreKnown() {
	mask := uint64(len(e.storeIssued) - 1)
	for e.storeIssued[(e.storeKnown+1)&mask] {
		e.storeIssued[(e.storeKnown+1)&mask] = false
		e.storeKnown++
	}
	rob, rmask := e.rob, uint64(len(e.rob)-1)
	for e.memWaitHead < len(e.memWaiters) {
		s := e.memWaiters[e.memWaitHead]
		en := &rob[s&rmask]
		if en.seq == s && en.needStores > e.storeKnown {
			// Waiters arrive in seq order with monotone requirements, so
			// the first unsatisfied one blocks the rest.
			break
		}
		e.memWaitHead++
		if en.seq != s {
			continue
		}
		en.memBlocked = false
		if en.pendingDeps == 0 && en.state == stWaiting {
			e.makeReady(en)
		}
	}
	if e.memWaitHead == len(e.memWaiters) {
		e.memWaiters = e.memWaiters[:0]
		e.memWaitHead = 0
	}
}

// dispatch moves fetched instructions into the window.
func (e *Engine) dispatch() bool {
	width := e.cfg.IssueWidth
	mask := uint64(len(e.fetchQ) - 1)
	effW := e.effWindow()
	rob, rmask := e.rob, uint64(len(e.rob)-1)
	n := 0
	for e.fqHead != e.fqTail {
		if !inf(width) && n >= width {
			break
		}
		if e.windowOcc() >= effW {
			e.windowFullCycle = e.cycle
			break
		}
		s := e.fetchQ[e.fqHead&mask]
		en := &rob[s&rmask]
		if uint64(en.fetchCycle) >= e.cycle {
			break // fetched this cycle; decodes next cycle
		}
		if en.isLoad || en.isStore {
			if !inf(e.cfg.LSQSize) && e.memOps >= e.cfg.LSQSize {
				break
			}
			e.memOps++
		}
		e.fqHead++
		e.wireDependencies(en)
		n++
	}
	return n > 0
}

// wireDependencies computes register and memory-ordering dependencies for
// a newly dispatched entry.
func (e *Engine) wireDependencies(en *entry) {
	en.dispatchCycle = uint32(e.cycle)
	e.stats.Instructions++
	e.stats.ClassCounts[en.inst.Class]++
	if e.tracer != nil {
		e.tracer.Event(TraceDispatch, e.cycle, en.seq, int(en.idx), en.inst)
	}

	rob, mask := e.rob, uint64(len(e.rob)-1)
	srcs := en.inst.Sources(e.srcScratch[:0])
	if en.isStore {
		// A store issues (and publishes its address) as soon as the base
		// register is ready; the data value only gates loads that forward
		// from it. Track the data producer separately.
		srcs = srcs[:0]
		if en.inst.Rb != isa.RZ {
			srcs = append(srcs, en.inst.Rb)
		}
		if p := e.regProducer[en.inst.Ra]; p != 0 && p-1 >= e.headSeq {
			if pe := &rob[(p-1)&mask]; pe.seq == p-1 && pe.state != stDone {
				en.dataProd = p // seq+1 of the store-data producer
			}
		}
	}
	for _, r := range srcs {
		p := e.regProducer[r]
		if p == 0 {
			continue
		}
		pe := &rob[(p-1)&mask]
		if pe.seq != p-1 || pe.state == stDone || p-1 < e.headSeq {
			continue
		}
		e.addConsumer(pe, en.seq)
		en.pendingDeps++
	}
	if d := en.inst.Dest(); d != isa.RZ {
		e.regProducer[d] = en.seq + 1
	}

	if en.isStore {
		e.storeCount++
		en.storeOrdinal = e.storeCount
		// Keep in-flight ordinals (storeKnown, storeCount] within the
		// issued-ordinal ring.
		if e.storeCount-e.storeKnown >= uint64(len(e.storeIssued)) {
			e.growStoreRing()
		}
		e.lastStoreByte.setRange(en.addr, uint64(en.size), en.seq+1)
	}
	if en.isLoad {
		e.stats.Loads++
		// Forwarding/overlap dependency: the youngest earlier store
		// touching any loaded byte. The load waits for that store's
		// address publication and for its data value.
		dep := e.lastStoreByte.getMax(en.addr, uint64(en.size))
		if dep > 0 && dep-1 >= e.headSeq {
			pe := &rob[(dep-1)&mask]
			if pe.seq == dep-1 && pe.state != stDone {
				e.addConsumer(pe, en.seq)
				en.pendingDeps++
			}
			if pe.seq == dep-1 && pe.dataProd != 0 && pe.dataProd-1 >= e.headSeq {
				dp := &rob[(pe.dataProd-1)&mask]
				if dp.seq == pe.dataProd-1 && dp.state != stDone {
					e.addConsumer(dp, en.seq)
					en.pendingDeps++
				}
			}
		}
		if !e.cfg.PerfectAlias {
			en.needStores = e.storeCount
			if en.needStores > e.storeKnown {
				en.memBlocked = true
				e.memWaiters = append(e.memWaiters, en.seq)
			}
		}
	}
	if en.isStore {
		e.stats.Stores++
	}

	if en.pendingDeps == 0 && !en.memBlocked {
		e.makeReady(en)
	}

	// Warmup epoch: the dispatch of the last warmup instruction — with all
	// its dispatch-side counters charged above — closes the epoch.
	if e.warmupLeft != 0 {
		if e.warmupLeft--; e.warmupLeft == 0 {
			e.beginMeasure()
		}
	}
}

// fetch pulls instructions from the trace into the fetch queue, modeling
// fetch bandwidth, the I-cache, and branch-misprediction stalls.
func (e *Engine) fetch() bool {
	if e.fetchBlockedOnBranch || e.cycle < e.fetchStallTil {
		return false
	}
	qCap := e.fetchQueueCap()
	mask := uint64(len(e.fetchQ) - 1)
	rob, rmask := e.rob, uint64(len(e.rob)-1)
	blocks := 0
	inBlock := 0
	fetched := 0
	for e.fqLen() < qCap {
		if e.pending == nil {
			r, ok := e.src.Next()
			if !ok {
				e.streamDone = true
				break
			}
			e.pending = r
		}
		rec := e.pending

		// I-cache: charge a stall when crossing into a missing line.
		line := (CodeBase + uint64(rec.Idx)*4) >> blockShift
		if !e.cfg.PerfectMem && line != e.lastFetchLine {
			if lat := e.mem.instAccess(CodeBase+uint64(rec.Idx)*4, e.cycle); lat > 0 {
				e.lastFetchLine = line
				e.fetchStallTil = e.cycle + lat
				e.fetchStallBranch = false
				break
			}
			e.lastFetchLine = line
		}

		e.ensureRing()
		if len(rob) != len(e.rob) {
			rob, rmask = e.rob, uint64(len(e.rob)-1)
		}
		seq := e.tailSeq
		e.tailSeq++
		en := &rob[seq&rmask]
		// Every field is stored directly: a composite literal would build
		// the 96-byte struct in a temporary and duffcopy it into the ring.
		// consHead/consTail must be reset too — rings recycled by growROB
		// mid-run carry entries whose lists were still live when the ring
		// was swapped out.
		en.seq = seq
		en.inst = rec.Inst
		en.addr = rec.Addr
		en.storeOrdinal = 0
		en.dataProd = 0
		en.needStores = 0
		en.idx = int32(rec.Idx)
		en.pendingDeps = 0
		en.consHead, en.consTail = 0, 0
		en.fetchCycle = uint32(e.cycle)
		en.dispatchCycle = 0
		en.readyCycle = 0
		en.doneCycle = 0
		en.size = rec.Size
		en.state = stWaiting
		p := isa.P(rec.Inst.Op)
		en.isStore = p.Store
		en.isLoad = p.Load && rec.Inst.Op != isa.OpSBOX
		en.sboxToDCache = false
		en.memBlocked = false
		en.mispred = false
		en.memLevel = memHit
		en.issueDelayed = false
		if rec.Inst.Op == isa.OpSBOX {
			if rec.Inst.Aliased {
				// Aliased SBOX behaves as a load with optimized agen.
				en.isLoad = true
				en.sboxToDCache = true
			} else if int(rec.Inst.Sel1) >= e.cfg.NumSboxCaches {
				en.sboxToDCache = true
			}
		}
		en.kind = uint8(kindOf(en))
		e.fetchQ[e.fqTail&mask] = seq
		e.fqTail++
		e.pending = nil
		fetched++
		if e.tracer != nil {
			e.tracer.Event(TraceFetch, e.cycle, seq, rec.Idx, rec.Inst)
		}

		// Branch handling.
		if p.Branch {
			e.stats.Branches++
			correct := e.cfg.PerfectBpred ||
				e.bp.predict(rec.Idx, rec.Inst, rec.Taken, rec.Targ)
			if !correct {
				e.stats.Mispredicts++
				en.mispred = true
				e.fetchBlockedOnBranch = true
				e.blockedBranchSeq = seq
				break
			}
		}

		// Fetch-bandwidth accounting.
		if !inf(e.cfg.FetchWidth) {
			inBlock++
			endBlock := inBlock >= e.cfg.FetchWidth || (p.Branch && rec.Taken)
			if endBlock {
				blocks++
				inBlock = 0
				if !inf(e.cfg.FetchBlocksPerCycle) && blocks >= e.cfg.FetchBlocksPerCycle {
					break
				}
			}
		}
	}
	return fetched > 0
}
