package ooo

import (
	"time"

	"cryptoarch/internal/metrics"
)

// EngineVersion identifies the timing-model generation for persistent
// result keying (the run ledger, and future content-addressed result
// stores). Bump it whenever a change alters the simulated statistics of
// any (cipher, feature, config, session, seed) cell — the golden-stats
// tests define "alters" — so archived measurements from different engine
// generations are never compared as if they were the same experiment.
const EngineVersion = "ooo-v1"

// SetMetrics attaches a telemetry registry to the engine. At run
// completion the engine accumulates its simulated totals and wall time
// onto the registry; nothing is touched in the per-cycle hot loop, so
// steady-state simulation stays allocation-free with metrics attached
// (pinned by TestMetricsZeroAllocs). A nil registry (the default)
// disables this entirely — the only cost is one nil check per Run.
func (e *Engine) SetMetrics(r *metrics.Registry) { e.metrics = r }

// runMetered wraps run with wall-time measurement and counter updates.
func (e *Engine) runMetered() (*Stats, error) {
	m := e.metrics
	start := time.Now()
	st, err := e.run()
	elapsed := time.Since(start)
	m.Counter("ooo.runs").Inc()
	m.Histogram("ooo.run_ns").Observe(elapsed.Nanoseconds())
	if err != nil {
		m.Counter("ooo.run_errors").Inc()
		return st, err
	}
	m.Counter("ooo.insts").Add(int64(st.Instructions))
	m.Counter("ooo.cycles").Add(int64(st.Cycles))
	m.Counter("ooo.runs." + e.cfg.Name).Inc()
	return st, nil
}
