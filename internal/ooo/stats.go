package ooo

import "fmt"

// Commit-slot stall attribution. Every cycle of a finite-width run has
// IssueWidth commit slots; each slot either retires an instruction
// (StallCommit) or is charged to exactly one stall cause, determined by
// inspecting the reorder-buffer head (or the front end when the window is
// empty). The buckets therefore sum to Cycles*IssueWidth exactly, giving
// the paper's Figure 5 bottleneck attribution a second, single-run
// derivation: shares of Issue+Resource slots versus Branch versus Memory
// slots rank the bottlenecks without re-running the dataflow ablations.

// StallCause identifies where a commit slot went.
type StallCause uint8

const (
	StallCommit   StallCause = iota // slot retired an instruction
	StallIFetch                     // front-end fill: fetch/decode/rename latency
	StallICache                     // I-cache miss stall
	StallBranch                     // branch-redirect recovery
	StallWindow                     // window full behind a long-latency head
	StallIssue                      // head ready, issue width exhausted
	StallIALU                       // head ready, integer-ALU pool saturated
	StallMult                       // head ready, multiplier lanes saturated
	StallRot                        // head ready, rotator/XBOX units saturated
	StallSboxPort                   // head ready, its SBox-cache ports saturated
	StallDPort                      // head ready, D-cache ports saturated
	StallAlias                      // head is a load waiting on store-address ordering
	StallDL1Miss                    // head's data access missed the L1 D-cache
	StallL2Miss                     // head's data access missed the L2
	StallTLBMiss                    // head's data access missed the TLB
	StallExec                       // head executing: FU or cache-hit latency
	StallDrain                      // instruction stream exhausted
	NumStallCauses
)

var stallNames = [NumStallCauses]string{
	"commit", "ifetch", "icache", "branch", "window", "issue",
	"ialu", "mult", "rot", "sboxport", "dport",
	"alias", "dl1miss", "l2miss", "tlbmiss", "exec", "drain",
}

func (c StallCause) String() string {
	if int(c) < len(stallNames) {
		return stallNames[c]
	}
	return "stall(?)"
}

// StallBreakdown is the per-cause slot count of one run. It is all zeros
// for infinite-width machines (the dataflow model has no slot budget).
type StallBreakdown [NumStallCauses]uint64

// Slots is the total slot count, Cycles*IssueWidth for finite widths.
func (b *StallBreakdown) Slots() uint64 {
	var t uint64
	for _, v := range b {
		t += v
	}
	return t
}

// Stalled is the count of slots that did not retire an instruction.
func (b *StallBreakdown) Stalled() uint64 { return b.Slots() - b[StallCommit] }

// Share is a cause's fraction of all slots (0 when no slots were charged).
func (b *StallBreakdown) Share(c StallCause) float64 {
	t := b.Slots()
	if t == 0 {
		return 0
	}
	return float64(b[c]) / float64(t)
}

// IssueResSlots groups the Figure 5 "Issue" and "Res" causes: slots lost
// to issue bandwidth and functional-unit/port supply.
func (b *StallBreakdown) IssueResSlots() uint64 {
	return b[StallIssue] + b[StallIALU] + b[StallMult] + b[StallRot] +
		b[StallSboxPort] + b[StallDPort]
}

// MemSlots groups the Figure 5 "Mem" causes: slots lost to cache and TLB
// misses on either side of the machine.
func (b *StallBreakdown) MemSlots() uint64 {
	return b[StallICache] + b[StallDL1Miss] + b[StallL2Miss] + b[StallTLBMiss]
}

// BranchSlots is the Figure 5 "Branch" cause.
func (b *StallBreakdown) BranchSlots() uint64 { return b[StallBranch] }

// sub subtracts a previous breakdown (for interval reporting).
func (b StallBreakdown) sub(prev StallBreakdown) StallBreakdown {
	for i := range b {
		b[i] -= prev[i]
	}
	return b
}

// DeltaSigned returns the signed per-cause slot difference b−base. Unlike
// sub it never wraps: the differential accounting layer compares arbitrary
// runs, where either side may be larger per cause.
func (b *StallBreakdown) DeltaSigned(base *StallBreakdown) [NumStallCauses]int64 {
	var d [NumStallCauses]int64
	for i := range b {
		d[i] = int64(b[i]) - int64(base[i])
	}
	return d
}

// Shares returns the per-cause slot shares of the breakdown keyed by cause
// name, omitting zero causes. Nil when no slots were charged (infinite-
// width machines), so JSON encodings elide the field instead of carrying
// an empty object.
func (b *StallBreakdown) Shares() map[string]float64 {
	t := b.Slots()
	if t == 0 {
		return nil
	}
	m := make(map[string]float64)
	for c := StallCause(0); c < NumStallCauses; c++ {
		if b[c] > 0 {
			m[c.String()] = float64(b[c]) / float64(t)
		}
	}
	return m
}

// ParseStallCause resolves a cause name produced by StallCause.String —
// the inverse used when decoding persisted share maps.
func ParseStallCause(name string) (StallCause, error) {
	for c := StallCause(0); c < NumStallCauses; c++ {
		if stallNames[c] == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("ooo: unknown stall cause %q", name)
}

// Width returns the commit width implied by the run's slot accounting:
// Stalls.Slots()/Cycles, which the slots == cycles×width invariant makes
// exact on finite-width machines. It returns 0 for machines with no slot
// budget (the dataflow model) and for zero-cycle runs, and an error when
// the accounting is inconsistent (slots not an exact multiple of cycles)
// — the signal the differential layer refuses to attribute over.
func (s *Stats) Width() (uint64, error) {
	slots := s.Stalls.Slots()
	if slots == 0 {
		return 0, nil
	}
	if s.Cycles == 0 {
		return 0, fmt.Errorf("ooo: %s: %d slots charged over zero cycles", s.Config, slots)
	}
	if slots%s.Cycles != 0 {
		return 0, fmt.Errorf("ooo: %s: %d slots over %d cycles is not a whole width", s.Config, slots, s.Cycles)
	}
	return slots / s.Cycles, nil
}

// SboxMisses is the count of SBox-cache accesses that had to fetch their
// sector from the data-cache hierarchy.
func (s *Stats) SboxMisses() uint64 { return s.SboxAccesses - s.SboxHits }

// SboxHitRate is the SBox-cache hit fraction (0 when the run made no SBox
// accesses).
func (s *Stats) SboxHitRate() float64 {
	if s.SboxAccesses == 0 {
		return 0
	}
	return float64(s.SboxHits) / float64(s.SboxAccesses)
}

// MispredictRate is the branch misprediction fraction (0 when the run had
// no branches).
func (s *Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// Accumulate adds every counter of o into s — the stitching operation of
// time-parallel chunked replay, where each chunk's measured epoch is a
// disjoint window of one session and the whole-session stats are the sum
// of the windows. Config is left as s's.
func (s *Stats) Accumulate(o *Stats) {
	s.Cycles += o.Cycles
	s.Instructions += o.Instructions
	for i := range s.ClassCounts {
		s.ClassCounts[i] += o.ClassCounts[i]
	}
	s.Branches += o.Branches
	s.Mispredicts += o.Mispredicts
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.SboxAccesses += o.SboxAccesses
	s.SboxHits += o.SboxHits
	s.DL1Misses += o.DL1Misses
	s.L2Misses += o.L2Misses
	s.TLBMisses += o.TLBMisses
	for i := range s.Stalls {
		s.Stalls[i] += o.Stalls[i]
	}
}

// Delta returns the counter differences since prev, for interval
// reporting over a long session. Config is carried from s.
func (s *Stats) Delta(prev *Stats) Stats {
	d := *s
	d.Cycles -= prev.Cycles
	d.Instructions -= prev.Instructions
	for i := range d.ClassCounts {
		d.ClassCounts[i] -= prev.ClassCounts[i]
	}
	d.Branches -= prev.Branches
	d.Mispredicts -= prev.Mispredicts
	d.Loads -= prev.Loads
	d.Stores -= prev.Stores
	d.SboxAccesses -= prev.SboxAccesses
	d.SboxHits -= prev.SboxHits
	d.DL1Misses -= prev.DL1Misses
	d.L2Misses -= prev.L2Misses
	d.TLBMisses -= prev.TLBMisses
	d.Stalls = d.Stalls.sub(prev.Stalls)
	return d
}
