package ooo

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"cryptoarch/internal/check"
	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
	"cryptoarch/internal/simmem"
)

// Fault-injection tests for checked mode: each test warms a real engine
// mid-flight, verifies it is clean, corrupts one class of internal state
// with a deterministic injector, and asserts the owning checker names the
// fault. Together they prove no modeled fault class is silently
// undetectable.

// wantViolation asserts CheckInvariants reports a violation from the named
// checker.
func wantViolation(t *testing.T, e *Engine, checkName string) {
	t.Helper()
	err := e.CheckInvariants()
	if err == nil {
		t.Fatalf("corruption of %s state not detected", checkName)
	}
	v, ok := check.AsViolation(err)
	if !ok {
		t.Fatalf("CheckInvariants returned %T (%v), want *check.Violation", err, err)
	}
	if v.Check != checkName {
		t.Fatalf("violation from checker %q (%v), want %q", v.Check, v, checkName)
	}
}

// cleanEngine is a warmed mid-flight engine that passes CheckInvariants.
func cleanEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, _ := newSteadyEngine(t, cfg, 20_000)
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("warmed engine fails invariants before injection: %v", err)
	}
	return e
}

// inFlight returns the in-flight entry the injector picks.
func inFlight(t *testing.T, e *Engine, in *check.Injector) *entry {
	t.Helper()
	occ := e.tailSeq - e.headSeq
	if occ == 0 {
		t.Fatal("no in-flight entries to corrupt")
	}
	s := e.headSeq + in.Uint64()%occ
	return &e.rob[s&uint64(len(e.rob)-1)]
}

func TestDetectROBEntryCorruption(t *testing.T) {
	in := check.NewInjector(1)
	t.Run("seq", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		en := inFlight(t, e, in)
		en.seq, _ = in.FlipBit64(en.seq)
		in.Note(check.FaultROBEntry)
		wantViolation(t, e, "rob-entry")
	})
	t.Run("state", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		en := inFlight(t, e, in)
		en.state = stDone + 1 + uint8(in.Intn(200))
		wantViolation(t, e, "rob-entry")
	})
	t.Run("pendingDeps", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		en := inFlight(t, e, in)
		en.pendingDeps = -1 - int32(in.Intn(100))
		wantViolation(t, e, "rob-entry")
	})
	t.Run("kind", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		en := inFlight(t, e, in)
		en.kind = fuKinds + uint8(in.Intn(50))
		wantViolation(t, e, "rob-entry")
	})
}

// findProducer locates an in-flight entry holding a non-empty consumer
// list.
func findProducer(t *testing.T, e *Engine) *entry {
	t.Helper()
	for s := e.headSeq; s < e.tailSeq; s++ {
		en := &e.rob[s&uint64(len(e.rob)-1)]
		if en.consHead != 0 {
			return en
		}
	}
	t.Fatal("no in-flight entry holds a consumer list")
	return nil
}

func TestDetectScoreboardCorruption(t *testing.T) {
	t.Run("node-index", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		en := findProducer(t, e)
		en.consHead = int32(len(e.consPool)) + 7
		wantViolation(t, e, "scoreboard")
	})
	t.Run("cycle", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		en := findProducer(t, e)
		e.consPool[en.consHead-1].next = en.consHead // self-loop
		wantViolation(t, e, "scoreboard")
	})
	t.Run("consumer-seq", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		en := findProducer(t, e)
		e.consPool[en.consHead-1].seq = en.seq // consumer older than producer
		wantViolation(t, e, "scoreboard")
	})
	t.Run("done-with-consumers", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		en := findProducer(t, e)
		en.state = stDone
		wantViolation(t, e, "scoreboard")
	})
}

func TestDetectROBBoundsCorruption(t *testing.T) {
	t.Run("tail-behind-head", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		e.tailSeq = e.headSeq - 1
		wantViolation(t, e, "rob-bounds")
	})
	t.Run("instruction-count", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		e.stats.Instructions += 3
		wantViolation(t, e, "rob-bounds")
	})
	t.Run("fetch-queue", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		e.fqTail = e.fqHead - 1
		wantViolation(t, e, "rob-bounds")
	})
}

func TestDetectSlotAccountingCorruption(t *testing.T) {
	in := check.NewInjector(2)
	e := cleanEngine(t, FourWide)
	e.stats.Stalls[in.Intn(int(NumStallCauses))]++
	wantViolation(t, e, "slot-accounting")
}

func TestDetectCalendarCorruption(t *testing.T) {
	// findScheduled locates a wheel slot with a resident completion.
	findSlot := func(t *testing.T, e *Engine) (int, int) {
		t.Helper()
		for i := range e.completions.slots {
			if len(e.completions.slots[i]) > 0 {
				return i, 0
			}
		}
		t.Fatal("no scheduled completions to corrupt")
		return 0, 0
	}
	t.Run("slot-seq", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		i, j := findSlot(t, e)
		e.completions.slots[i][j] = e.tailSeq + 5 // not in flight
		wantViolation(t, e, "calendar")
	})
	t.Run("done-cycle", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		i, j := findSlot(t, e)
		s := e.completions.slots[i][j]
		e.rob[s&uint64(len(e.rob)-1)].doneCycle ^= 1 << 3 // remaps to another slot
		wantViolation(t, e, "calendar")
	})
	t.Run("stale-overflow", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		e.completions.overflow = append(e.completions.overflow,
			calEvent{cycle: e.cycle - 1, seq: e.headSeq})
		wantViolation(t, e, "calendar")
	})
}

func TestDetectStoreRingCorruption(t *testing.T) {
	t.Run("known-past-count", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		e.storeKnown = e.storeCount + 1
		wantViolation(t, e, "store-ring")
	})
	t.Run("issued-not-advanced", func(t *testing.T) {
		e := cleanEngine(t, FourWide)
		if e.storeKnown >= e.storeCount {
			t.Skip("no in-flight stores at this cycle")
		}
		e.storeIssued[(e.storeKnown+1)&uint64(len(e.storeIssued)-1)] = true
		wantViolation(t, e, "store-ring")
	})
}

func TestDetectMemWaiterCorruption(t *testing.T) {
	e := cleanEngine(t, FourWide)
	e.memWaitHead = len(e.memWaiters) + 1
	wantViolation(t, e, "mem-waiters")
}

func TestDetectSboxCacheCorruption(t *testing.T) {
	in := check.NewInjector(3)
	t.Run("valid-without-tag", func(t *testing.T) {
		e := cleanEngine(t, FourWidePlus)
		c := &e.sboxCaches[in.Intn(len(e.sboxCaches))]
		c.hasTag = false
		c.valid = 1 << uint(in.Intn(32))
		in.Note(check.FaultSboxCache)
		wantViolation(t, e, "sbox-cache")
	})
	t.Run("unaligned-tag", func(t *testing.T) {
		e := cleanEngine(t, FourWidePlus)
		c := &e.sboxCaches[in.Intn(len(e.sboxCaches))]
		c.hasTag = true
		c.tag |= 8 // inside the alignment granule
		wantViolation(t, e, "sbox-cache")
	})
}

// checkedStats runs one blowfish session through a model and returns its
// stats.
func checkedStats(t *testing.T, cfg Config) *Stats {
	t.Helper()
	k, err := kernels.Get("blowfish")
	if err != nil {
		t.Fatal(err)
	}
	key := make([]byte, 16)
	iv := make([]byte, 8)
	pt := make([]byte, 4<<10)
	for i := range pt {
		pt[i] = byte(i * 7)
	}
	m, _, err := kernels.NewRun(k, isa.FeatRot, key, iv, pt)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cfg, MachineStream{M: m})
	e.WarmData(kernels.CtxAddr, k.CtxBytes)
	e.WarmCode(len(m.Prog.Code))
	st, err := e.Run()
	if err != nil {
		t.Fatalf("%s (checked=%v): %v", cfg.Name, cfg.Checked, err)
	}
	return st
}

// TestCheckedRunCleanAndIdentical is the other half of the fault-injection
// contract: on an uncorrupted run every checker stays silent for every
// model, and checked mode changes no simulated outcome — the stats are
// bit-identical with and without it.
func TestCheckedRunCleanAndIdentical(t *testing.T) {
	for _, base := range []Config{FourWide, FourWidePlus, EightWidePlus, Dataflow} {
		t.Run(base.Name, func(t *testing.T) {
			plain := checkedStats(t, base)
			chk := base
			chk.Checked = true
			if got := checkedStats(t, chk); !reflect.DeepEqual(plain, got) {
				t.Fatalf("checked mode changed the stats:\nplain:   %+v\nchecked: %+v", plain, got)
			}
		})
	}
}

// TestCycleBudget pins the engine-side runaway guard.
func TestCycleBudget(t *testing.T) {
	cfg := FourWide
	cfg.CycleBudget = 500
	k, err := kernels.Get("blowfish")
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := kernels.NewRun(k, isa.FeatRot, make([]byte, 16), make([]byte, 8), make([]byte, 4<<10))
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewEngine(cfg, MachineStream{M: m}).Run()
	if !check.IsBudget(err) {
		t.Fatalf("Run returned %v, want a *check.BudgetError", err)
	}
	var b *check.BudgetError
	if !errors.As(err, &b) || b.Resource != "cycles" || b.Limit != 500 {
		t.Fatalf("budget error fields: %+v", b)
	}
}

// TestRunawayStreamFails pins end-to-end propagation of a machine fault
// through the stream into Run: a kernel that never halts exhausts its
// instruction budget and the timing run fails with that typed error
// instead of reporting stats for the silently truncated stream.
func TestRunawayStreamFails(t *testing.T) {
	b := isa.NewBuilder("runaway", isa.FeatNoRot)
	b.Label("loop")
	b.ADDQI(isa.RA0, 1, isa.RA0)
	b.BR("loop")
	m := emu.New(b.Build(), simmem.New(0), 0x80000)
	m.MaxInsts = 20_000
	_, err := NewEngine(FourWide, MachineStream{M: m}).Run()
	if err == nil {
		t.Fatal("Run succeeded over a budget-faulted stream")
	}
	if !check.IsBudget(err) {
		t.Fatalf("Run returned %v, want it to wrap the *check.BudgetError", err)
	}
	if !strings.Contains(err.Error(), "source stream") {
		t.Fatalf("error %q does not attribute the fault to the source stream", err)
	}
}

// TestCheckedCatchesLiveCorruption demonstrates the per-cycle hook: a
// fault injected mid-run is caught by Run itself on the next cycle
// boundary, identified by checker and cycle.
func TestCheckedCatchesLiveCorruption(t *testing.T) {
	cfg := FourWide
	cfg.Checked = true
	e, _ := newSteadyEngine(t, cfg, 20_000)
	in := check.NewInjector(4)
	en := inFlight(t, e, in)
	en.seq += 1 << 40
	in.Note(check.FaultROBEntry)
	// Drive the same loop Run uses; the checker must fire on the first
	// boundary.
	e.step()
	e.account()
	e.cycle++
	err := e.CheckInvariants()
	v, ok := check.AsViolation(err)
	if !ok {
		t.Fatalf("live corruption not caught at the next cycle boundary: %v", err)
	}
	if v.Cycle != e.cycle {
		t.Fatalf("violation reports cycle %d, engine at %d", v.Cycle, e.cycle)
	}
}
