package ooo

// The memory hierarchy of Section 3.2: 32k 2-way L1 I and D caches with
// 32-byte blocks (D: write-back, write-allocate, next-line prefetch),
// a unified 512k 4-way L2 with a 12-cycle hit, a 120-cycle memory round
// trip with 10-cycle bus occupancy per request, and a 32-entry 8-way DTLB
// with a 30-cycle miss penalty.

const (
	l1Sets       = 512 // 32k / (2 ways * 32B)
	l1Ways       = 2
	l2Sets       = 4096 // 512k / (4 ways * 32B)
	l2Ways       = 4
	blockShift   = 5 // 32-byte blocks
	l1HitLat     = 2
	l2HitLat     = 12
	memLat       = 120
	busOccupancy = 10

	tlbSets    = 4 // 32 entries, 8-way
	tlbWays    = 8
	pageShift  = 13 // 8KB pages
	tlbMissLat = 30
)

// setAssoc is a set-associative array with LRU replacement, tracking tags
// only (timing model; data lives in simmem). Lines carry a prefetch tag
// for the tagged next-line prefetcher.
type setAssoc struct {
	sets, ways int
	setMask    uint64 // sets-1; set counts are powers of two
	shift      uint
	tags       []uint64 // sets*ways, tag 0 = invalid (addresses start above 0)
	lru        []uint64 // access stamps
	pref       []bool   // prefetched, not yet demand-referenced
	stamp      uint64
}

func newSetAssoc(sets, ways int, shift uint) *setAssoc {
	if sets&(sets-1) != 0 {
		panic("setAssoc: sets must be a power of two")
	}
	return &setAssoc{
		sets: sets, ways: ways, setMask: uint64(sets - 1), shift: shift,
		tags: make([]uint64, sets*ways),
		lru:  make([]uint64, sets*ways),
		pref: make([]bool, sets*ways),
	}
}

// access probes for addr. On a miss with fill set, the LRU way is filled.
// asPrefetch marks the filled (or re-found) line as a prefetch; a demand
// access clears the mark and reports whether it was the first touch of a
// prefetched line (which re-arms the next-line prefetcher).
func (s *setAssoc) access(addr uint64, fill, asPrefetch bool) (hit, wasPref bool) {
	blk := addr >> s.shift
	base := int(blk&s.setMask) * s.ways
	s.stamp++
	victim, oldest := base, ^uint64(0)
	for w := 0; w < s.ways; w++ {
		i := base + w
		if s.tags[i] == blk+1 {
			s.lru[i] = s.stamp
			wasPref = s.pref[i]
			if !asPrefetch {
				s.pref[i] = false
			}
			return true, wasPref
		}
		if s.lru[i] < oldest {
			oldest, victim = s.lru[i], i
		}
	}
	if fill {
		s.tags[victim] = blk + 1
		s.lru[victim] = s.stamp
		s.pref[victim] = asPrefetch
	}
	return false, false
}

// lookup is the plain demand-access form.
func (s *setAssoc) lookup(addr uint64, fill bool) bool {
	hit, _ := s.access(addr, fill, false)
	return hit
}

// memSystem bundles the shared hierarchy. The L2 and bus are shared
// between the I and D sides.
type memSystem struct {
	il1, dl1, l2 *setAssoc
	dtlb         *setAssoc
	busFree      uint64 // next cycle the memory bus is free

	// Statistics.
	DL1Miss, L2Miss, TLBMiss, Prefetches uint64
}

func newMemSystem() *memSystem {
	return &memSystem{
		il1:  newSetAssoc(l1Sets, l1Ways, blockShift),
		dl1:  newSetAssoc(l1Sets, l1Ways, blockShift),
		l2:   newSetAssoc(l2Sets, l2Ways, blockShift),
		dtlb: newSetAssoc(tlbSets, tlbWays, pageShift),
	}
}

// busAcquire serializes main-memory requests (10-cycle occupancy each) and
// returns the added queueing delay.
func (m *memSystem) busAcquire(now uint64) uint64 {
	start := now
	if m.busFree > start {
		start = m.busFree
	}
	m.busFree = start + busOccupancy
	return start - now
}

// prefetchNext brings the line after addr into the hierarchy, marked so
// its first demand use re-arms the prefetcher (tagged next-line prefetch).
func (m *memSystem) prefetchNext(addr uint64) {
	next := addr + 1<<blockShift
	if hit, _ := m.dl1.access(next, true, true); !hit {
		m.Prefetches++
		m.l2.access(next, true, true)
	}
}

// dataAccess returns the latency of a data access starting at cycle now,
// with tagged next-line prefetch: both a demand miss and the first use of
// a prefetched line fetch the following block.
func (m *memSystem) dataAccess(addr uint64, now uint64) uint64 {
	lat := uint64(l1HitLat)
	if !m.dtlb.lookup(addr, true) {
		m.TLBMiss++
		lat += tlbMissLat
	}
	if hit, wasPref := m.dl1.access(addr, true, false); hit {
		if wasPref {
			m.prefetchNext(addr)
		}
		return lat
	}
	m.DL1Miss++
	m.prefetchNext(addr)
	if m.l2.lookup(addr, true) {
		return lat + l2HitLat
	}
	m.L2Miss++
	return lat + l2HitLat + memLat + m.busAcquire(now+lat)
}

// instAccess returns the latency of fetching the block containing an
// instruction address.
func (m *memSystem) instAccess(addr uint64, now uint64) uint64 {
	if m.il1.lookup(addr, true) {
		return 0 // overlapped with the fetch pipeline
	}
	if m.l2.lookup(addr, true) {
		return l2HitLat
	}
	m.L2Miss++
	return l2HitLat + memLat + m.busAcquire(now)
}
