package ooo

import (
	"testing"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
)

// newSteadyEngine builds an engine over a long blowfish session and runs it
// deep enough that every reusable structure (ROB ring, calendar slots,
// ready queues, fetch ring, alias slabs for the hot pages) has reached its
// steady-state capacity.
func newSteadyEngine(t *testing.T, cfg Config, warmCycles int) (*Engine, int) {
	t.Helper()
	k, err := kernels.Get("blowfish")
	if err != nil {
		t.Fatal(err)
	}
	key := make([]byte, 16)
	iv := make([]byte, 8)
	pt := make([]byte, 64<<10)
	for i := range pt {
		pt[i] = byte(i*11 + 3)
	}
	m, _, err := kernels.NewRun(k, isa.FeatRot, key, iv, pt)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cfg, MachineStream{M: m})
	e.WarmData(kernels.CtxAddr, k.CtxBytes)
	e.WarmCode(len(m.Prog.Code))
	for i := 0; i < warmCycles; i++ {
		e.step()
		e.account()
		e.cycle++
	}
	if e.streamDone {
		t.Fatal("stream exhausted during warmup; session too short for the test")
	}
	return e, len(m.Prog.Code)
}

// TestSteadyStateZeroAllocs pins the tentpole property of the hot-loop
// rewrite: once warmed up, simulating cycles performs no heap allocation.
// (AllocsPerRun truncates the average, so the rare far-future calendar
// spill or alias-slab page crossing — amortized well below one allocation
// per window — cannot mask a real per-cycle allocation.)
func TestSteadyStateZeroAllocs(t *testing.T) {
	for _, cfg := range []Config{FourWide, FourWidePlus, EightWidePlus} {
		t.Run(cfg.Name, func(t *testing.T) {
			e, _ := newSteadyEngine(t, cfg, 50_000)
			avg := testing.AllocsPerRun(40, func() {
				for i := 0; i < 250; i++ {
					e.step()
					e.account()
					e.cycle++
				}
			})
			if e.streamDone {
				t.Fatal("stream exhausted during measurement")
			}
			if avg != 0 {
				t.Fatalf("%s: steady-state loop allocates %.2f allocs per 250-cycle window, want 0", cfg.Name, avg)
			}
		})
	}
}

// TestProfilingZeroAllocs pins the profiler's steady-state cost: with
// per-PC profiling enabled, the hot loop still performs no heap
// allocation. EnableProfile allocates the dense per-PC table and the
// per-cycle commit buffer up front; each cycle only indexes and appends
// within capacity (commits per cycle never exceed IssueWidth).
func TestProfilingZeroAllocs(t *testing.T) {
	e, codeLen := newSteadyEngine(t, FourWide, 50_000)
	p := e.EnableProfile(codeLen)
	avg := testing.AllocsPerRun(40, func() {
		for i := 0; i < 250; i++ {
			e.step()
			e.account()
			e.cycle++
		}
	})
	if e.streamDone {
		t.Fatal("stream exhausted during measurement")
	}
	if avg != 0 {
		t.Fatalf("profiling-on loop allocates %.2f allocs per 250-cycle window, want 0", avg)
	}
	if p.TotalRetired() == 0 {
		t.Fatal("profiler recorded no retirements during measurement")
	}
}

// TestDFZeroAllocs extends the zero-alloc property to the infinite-window
// model. Per-entry consumer slices used to regrow on every ring-slot
// reuse; the pooled intrusive consumer list (engine.consPool) removes that
// churn, so once the pool and ring are warm the DF model, like the finite
// ones, simulates cycles with no heap allocation.
func TestDFZeroAllocs(t *testing.T) {
	e, _ := newSteadyEngine(t, Dataflow, 150_000)
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < 250; i++ {
			e.step()
			e.account()
			e.cycle++
		}
	})
	if e.streamDone {
		t.Fatal("stream exhausted during measurement")
	}
	if avg != 0 {
		t.Fatalf("DF: steady-state loop allocates %.2f allocs per 250-cycle window, want 0", avg)
	}
}
