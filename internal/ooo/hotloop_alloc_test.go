package ooo

import (
	"testing"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
)

// newSteadyEngine builds an engine over a long blowfish session and runs it
// deep enough that every reusable structure (ROB ring, calendar slots,
// ready queues, fetch ring, alias slabs for the hot pages) has reached its
// steady-state capacity.
func newSteadyEngine(t *testing.T, cfg Config, warmCycles int) *Engine {
	t.Helper()
	k, err := kernels.Get("blowfish")
	if err != nil {
		t.Fatal(err)
	}
	key := make([]byte, 16)
	iv := make([]byte, 8)
	pt := make([]byte, 64<<10)
	for i := range pt {
		pt[i] = byte(i*11 + 3)
	}
	m, _, err := kernels.NewRun(k, isa.FeatRot, key, iv, pt)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cfg, MachineStream{M: m})
	e.WarmData(kernels.CtxAddr, k.CtxBytes)
	e.WarmCode(len(m.Prog.Code))
	for i := 0; i < warmCycles; i++ {
		e.step()
		e.account()
		e.cycle++
	}
	if e.streamDone {
		t.Fatal("stream exhausted during warmup; session too short for the test")
	}
	return e
}

// TestSteadyStateZeroAllocs pins the tentpole property of the hot-loop
// rewrite: once warmed up, simulating cycles performs no heap allocation.
// (AllocsPerRun truncates the average, so the rare far-future calendar
// spill or alias-slab page crossing — amortized well below one allocation
// per window — cannot mask a real per-cycle allocation.)
func TestSteadyStateZeroAllocs(t *testing.T) {
	for _, cfg := range []Config{FourWide, FourWidePlus, EightWidePlus} {
		t.Run(cfg.Name, func(t *testing.T) {
			e := newSteadyEngine(t, cfg, 50_000)
			avg := testing.AllocsPerRun(40, func() {
				for i := 0; i < 250; i++ {
					e.step()
					e.account()
					e.cycle++
				}
			})
			if e.streamDone {
				t.Fatal("stream exhausted during measurement")
			}
			if avg != 0 {
				t.Fatalf("%s: steady-state loop allocates %.2f allocs per 250-cycle window, want 0", cfg.Name, avg)
			}
		})
	}
}

// TestDataflowSteadyStateAllocs bounds the infinite-window model. The DF
// ring keeps a quarter-million instructions in flight and recycles entries
// only every len(rob) seqs, so consumer slices occasionally regrow when a
// ring slot's new life needs more capacity than any previous one —
// amortized slice growth, measured at ~0.35 allocations per cycle, not
// per-event map/heap churn (the seed engine allocated several per
// instruction). Guard well below one allocation per cycle.
func TestDataflowSteadyStateAllocs(t *testing.T) {
	e := newSteadyEngine(t, Dataflow, 150_000)
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < 250; i++ {
			e.step()
			e.account()
			e.cycle++
		}
	})
	if e.streamDone {
		t.Fatal("stream exhausted during measurement")
	}
	if avg > 150 {
		t.Fatalf("DF: steady-state loop allocates %.2f allocs per 250-cycle window (want <150)", avg)
	}
}
