package ooo

import (
	"testing"

	"cryptoarch/internal/metrics"
)

// TestMetricsZeroAllocs pins that attaching a telemetry registry does not
// disturb the hot loop: the engine only touches the registry at run
// completion, so the steady-state cycle loop stays allocation-free with
// metrics attached.
func TestMetricsZeroAllocs(t *testing.T) {
	e, _ := newSteadyEngine(t, FourWide, 50_000)
	e.SetMetrics(metrics.NewRegistry())
	avg := testing.AllocsPerRun(40, func() {
		for i := 0; i < 250; i++ {
			e.step()
			e.account()
			e.cycle++
		}
	})
	if e.streamDone {
		t.Fatal("stream exhausted during measurement")
	}
	if avg != 0 {
		t.Fatalf("metrics-on loop allocates %.2f allocs per 250-cycle window, want 0", avg)
	}
}

// TestRunMetered pins the run-completion accounting: a full Run with a
// registry attached bumps the run counters by exactly the run's simulated
// totals, and the wall-time histogram observes one run.
func TestRunMetered(t *testing.T) {
	reg := metrics.NewRegistry()
	e, _ := newSteadyEngine(t, FourWide, 0)
	e.SetMetrics(reg)
	st, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ooo.runs").Value(); got != 1 {
		t.Fatalf("ooo.runs = %d, want 1", got)
	}
	if got := reg.Counter("ooo.runs.4W").Value(); got != 1 {
		t.Fatalf("ooo.runs.4W = %d, want 1", got)
	}
	if got := reg.Counter("ooo.insts").Value(); got != int64(st.Instructions) {
		t.Fatalf("ooo.insts = %d, want %d", got, st.Instructions)
	}
	if got := reg.Counter("ooo.cycles").Value(); got != int64(st.Cycles) {
		t.Fatalf("ooo.cycles = %d, want %d", got, st.Cycles)
	}
	for _, h := range reg.Snapshot().Histograms {
		if h.Name == "ooo.run_ns" {
			if h.Count != 1 {
				t.Fatalf("ooo.run_ns count = %d, want 1", h.Count)
			}
			return
		}
	}
	t.Fatal("ooo.run_ns histogram missing from snapshot")
}

// TestRunUnmetered pins the disabled state: with no registry attached
// (the default), Run is the bare simulation — no telemetry side effects
// to observe anywhere.
func TestRunUnmetered(t *testing.T) {
	e, _ := newSteadyEngine(t, FourWide, 0)
	if e.metrics != nil {
		t.Fatal("fresh engine has a metrics registry attached")
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
