package ooo

import (
	"bufio"
	"io"
	"strconv"

	"cryptoarch/internal/isa"
)

// TraceStage identifies a pipeline event.
type TraceStage uint8

const (
	TraceFetch TraceStage = iota
	TraceDispatch
	TraceIssue
	TraceWriteback
	TraceCommit
	NumTraceStages
)

var traceStageNames = [NumTraceStages]string{
	"fetch", "dispatch", "issue", "writeback", "commit",
}

func (s TraceStage) String() string {
	if int(s) < len(traceStageNames) {
		return traceStageNames[s]
	}
	return "stage(?)"
}

// Tracer observes pipeline events. The engine emits one event per
// instruction per stage, in nondecreasing cycle order. Implementations
// must not retain inst beyond the call. A nil tracer (the default) costs
// a single pointer comparison per event site and allocates nothing.
type Tracer interface {
	Event(stage TraceStage, cycle, seq uint64, pc int, inst *isa.Inst)
}

// SetTracer attaches a pipeline-event tracer (nil detaches). Tracing is
// purely observational: it never alters timing.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// Tee fans one event stream out to several tracers.
func Tee(ts ...Tracer) Tracer { return teeTracer(ts) }

type teeTracer []Tracer

func (t teeTracer) Event(stage TraceStage, cycle, seq uint64, pc int, inst *isa.Inst) {
	for _, s := range t {
		s.Event(stage, cycle, seq, pc, inst)
	}
}

// JSONLTracer writes one JSON object per event:
//
//	{"cycle":41,"seq":7,"pc":12,"stage":"issue","op":"roll","class":"rotate"}
//
// Lines are hand-assembled into a reused buffer (no per-event
// allocation) and buffered; call Flush before reading the output.
type JSONLTracer struct {
	w   *bufio.Writer
	buf []byte
}

// NewJSONLTracer wraps w in a buffered JSONL event sink.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{w: bufio.NewWriter(w), buf: make([]byte, 0, 128)}
}

// Event implements Tracer.
func (t *JSONLTracer) Event(stage TraceStage, cycle, seq uint64, pc int, inst *isa.Inst) {
	b := t.buf[:0]
	b = append(b, `{"cycle":`...)
	b = strconv.AppendUint(b, cycle, 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, `,"pc":`...)
	b = strconv.AppendInt(b, int64(pc), 10)
	b = append(b, `,"stage":"`...)
	b = append(b, stage.String()...)
	b = append(b, `","op":"`...)
	b = append(b, isa.P(inst.Op).Name...)
	b = append(b, `","class":"`...)
	b = append(b, inst.Class.String()...)
	b = append(b, "\"}\n"...)
	t.buf = b
	t.w.Write(b)
}

// Flush drains the write buffer.
func (t *JSONLTracer) Flush() error { return t.w.Flush() }

// KonataTracer writes the Kanata log format consumed by the Konata
// pipeline visualizer (https://github.com/shioyadan/Konata): one lane per
// instruction with stages F (fetch), Ds (dispatch), Is (issue) and Wb
// (writeback), retired at commit.
type KonataTracer struct {
	w         *bufio.Writer
	buf       []byte
	started   bool
	lastCycle uint64
}

// NewKonataTracer wraps w in a buffered Kanata-format sink.
func NewKonataTracer(w io.Writer) *KonataTracer {
	return &KonataTracer{w: bufio.NewWriter(w), buf: make([]byte, 0, 128)}
}

func (t *KonataTracer) line(parts ...string) {
	b := t.buf[:0]
	for i, p := range parts {
		if i > 0 {
			b = append(b, '\t')
		}
		b = append(b, p...)
	}
	b = append(b, '\n')
	t.buf = b
	t.w.Write(b)
}

func (t *KonataTracer) advance(cycle uint64) {
	if !t.started {
		t.line("Kanata", "0004")
		t.line("C=", strconv.FormatUint(cycle, 10))
		t.started = true
		t.lastCycle = cycle
		return
	}
	if cycle > t.lastCycle {
		t.line("C", strconv.FormatUint(cycle-t.lastCycle, 10))
		t.lastCycle = cycle
	}
}

// Event implements Tracer.
func (t *KonataTracer) Event(stage TraceStage, cycle, seq uint64, pc int, inst *isa.Inst) {
	t.advance(cycle)
	id := strconv.FormatUint(seq, 10)
	switch stage {
	case TraceFetch:
		t.line("I", id, id, "0")
		t.line("L", id, "0", strconv.Itoa(pc)+": "+isa.P(inst.Op).Name)
		t.line("S", id, "0", "F")
	case TraceDispatch:
		t.line("S", id, "0", "Ds")
	case TraceIssue:
		t.line("S", id, "0", "Is")
	case TraceWriteback:
		t.line("S", id, "0", "Wb")
	case TraceCommit:
		t.line("R", id, id, "0")
	}
}

// Flush drains the write buffer.
func (t *KonataTracer) Flush() error { return t.w.Flush() }
