package ooo

import (
	"testing"

	"cryptoarch/internal/isa"
)

func TestSetAssocHitAfterFill(t *testing.T) {
	c := newSetAssoc(64, 2, 5)
	addr := uint64(0x20000)
	if c.lookup(addr, true) {
		t.Fatal("cold access must miss")
	}
	if !c.lookup(addr, true) {
		t.Fatal("second access must hit")
	}
	if !c.lookup(addr+31, true) {
		t.Fatal("same block must hit")
	}
	if c.lookup(addr+32, true) {
		t.Fatal("next block must miss")
	}
}

func TestSetAssocLRU(t *testing.T) {
	c := newSetAssoc(1, 2, 5) // single set, 2 ways
	a := uint64(0x1000)
	b := uint64(0x2000)
	d := uint64(0x3000)
	c.lookup(a, true)
	c.lookup(b, true)
	c.lookup(a, true) // a most recent; b is LRU
	c.lookup(d, true) // evicts b
	if !c.lookup(a, true) {
		t.Fatal("a must survive")
	}
	if c.lookup(b, true) {
		t.Fatal("b must have been evicted")
	}
}

func TestMemSystemLatencies(t *testing.T) {
	m := newMemSystem()
	addr := uint64(0x40000)
	cold := m.dataAccess(addr, 0)
	if cold <= l1HitLat+l2HitLat {
		t.Fatalf("cold miss too cheap: %d", cold)
	}
	warm := m.dataAccess(addr, 1000)
	if warm != l1HitLat {
		t.Fatalf("warm hit = %d, want %d (TLB warm too)", warm, l1HitLat)
	}
	// Next-line prefetch: the following block should now be an L1 hit.
	if lat := m.dataAccess(addr+32, 2000); lat != l1HitLat {
		t.Fatalf("prefetched line = %d, want %d", lat, l1HitLat)
	}
}

func TestTLBMissCharged(t *testing.T) {
	m := newMemSystem()
	a := uint64(0x100000)
	first := m.dataAccess(a, 0)
	if first < tlbMissLat {
		t.Fatalf("first access must include a TLB miss: %d", first)
	}
	// Same page, different (cold) line: TLB hit, cache miss only.
	second := m.dataAccess(a+64, 1000)
	if second >= first {
		t.Fatalf("TLB should be warm: %d vs %d", second, first)
	}
}

func TestBusSerialization(t *testing.T) {
	m := newMemSystem()
	base := m.busFree
	d1 := m.busAcquire(100)
	d2 := m.busAcquire(100)
	if d1 != 0 || d2 != busOccupancy {
		t.Fatalf("bus queueing: %d %d (free was %d)", d1, d2, base)
	}
}

func TestBpredLoopBranch(t *testing.T) {
	bp := newBpred()
	in := &isa.Inst{Op: isa.OpBNE}
	correct := 0
	// A loop branch: taken 99 times, then falls through.
	for i := 0; i < 100; i++ {
		taken := i != 99
		if bp.predict(10, in, taken, 3) {
			correct++
		}
	}
	if correct < 90 {
		t.Fatalf("loop branch predicted %d/100", correct)
	}
}

func TestRAS(t *testing.T) {
	bp := newBpred()
	bsr := &isa.Inst{Op: isa.OpBSR}
	ret := &isa.Inst{Op: isa.OpRET}
	if !bp.predict(5, bsr, true, 20) {
		t.Fatal("BSR must always predict correctly")
	}
	if !bp.predict(30, ret, true, 6) {
		t.Fatal("RET to pushed address must hit the RAS")
	}
	if bp.predict(30, ret, true, 99) {
		t.Fatal("RET with empty RAS must mispredict")
	}
}
