package ooo_test

import (
	"testing"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

func TestDebugIsolate4WPlus(t *testing.T) {
	mk := func(name string, mod func(*ooo.Config)) ooo.Config {
		c := ooo.FourWidePlus
		c.Name = name
		mod(&c)
		return c
	}
	cfgs := []ooo.Config{
		ooo.FourWide,
		ooo.FourWidePlus,
		mk("4W+2ports", func(c *ooo.Config) { c.SboxCachePorts = 2 }),
		mk("4W+rot2", func(c *ooo.Config) { c.NumRot = 2 }),
		mk("4W+nosbox", func(c *ooo.Config) { c.NumSboxCaches = 0; c.SboxCachePorts = 0 }),
	}
	for _, cfg := range cfgs {
		st, err := harness.TimeKernel("rijndael", isa.FeatOpt, cfg, 4096, 12345)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-10s cycles=%d IPC=%.2f", cfg.Name, st.Cycles, st.IPC())
	}
}
