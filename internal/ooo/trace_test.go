package ooo_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// traceSession runs a tiny RC4 session with the given tracer attached.
func traceSession(t *testing.T, tr ooo.Tracer) *ooo.Stats {
	t.Helper()
	st, err := harness.TimeKernelObserved("rc4", isa.FeatRot, ooo.FourWide, 256, 42,
		harness.TracerObserver(tr))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestJSONLTracer: every line is valid JSON with the expected fields, and
// the number of commit events equals retired instructions.
func TestJSONLTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := ooo.NewJSONLTracer(&buf)
	st := traceSession(t, tr)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	type ev struct {
		Cycle *uint64 `json:"cycle"`
		Seq   *uint64 `json:"seq"`
		PC    *int    `json:"pc"`
		Stage string  `json:"stage"`
		Op    string  `json:"op"`
		Class string  `json:"class"`
	}
	var commits, lines uint64
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var e ev
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: bad JSON %q: %v", lines, sc.Text(), err)
		}
		if e.Cycle == nil || e.Seq == nil || e.PC == nil || e.Stage == "" || e.Op == "" || e.Class == "" {
			t.Fatalf("line %d: missing field in %q", lines, sc.Text())
		}
		if e.Stage == "commit" {
			commits++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if commits != st.Instructions {
		t.Errorf("commit events %d != instructions %d", commits, st.Instructions)
	}
	if want := st.Instructions * uint64(ooo.NumTraceStages); lines != want {
		t.Errorf("total events %d != instructions*stages %d", lines, want)
	}
}

// TestKonataTracer: the log starts with the Kanata header, opens one lane
// per instruction (I records) and retires every lane (R records).
func TestKonataTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := ooo.NewKonataTracer(&buf)
	st := traceSession(t, tr)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 2 || lines[0] != "Kanata\t0004" {
		t.Fatalf("bad header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "C=\t") {
		t.Fatalf("expected initial C= record, got %q", lines[1])
	}
	var starts, retires uint64
	for i, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "I\t"):
			starts++
		case strings.HasPrefix(ln, "R\t"):
			retires++
		case strings.HasPrefix(ln, "C\t"), strings.HasPrefix(ln, "C=\t"),
			strings.HasPrefix(ln, "S\t"), strings.HasPrefix(ln, "L\t"),
			ln == "Kanata\t0004":
		default:
			t.Fatalf("line %d: unknown record %q", i+1, ln)
		}
	}
	if starts != st.Instructions {
		t.Errorf("I records %d != instructions %d", starts, st.Instructions)
	}
	if retires != st.Instructions {
		t.Errorf("R records %d != instructions %d", retires, st.Instructions)
	}
}

// TestTee: both fan-out targets see the full event stream.
func TestTee(t *testing.T) {
	a, b := &countingTracer{}, &countingTracer{}
	st := traceSession(t, ooo.Tee(a, b))
	for _, tr := range []*countingTracer{a, b} {
		if tr.counts[ooo.TraceCommit] != st.Instructions {
			t.Errorf("tee target saw %d commits, want %d", tr.counts[ooo.TraceCommit], st.Instructions)
		}
	}
}
