// Package ooo is the cycle-level out-of-order timing model — the analogue
// of SimpleScalar's sim-outorder used by the paper. It consumes the
// committed-path dynamic instruction stream produced by the functional
// emulator and models: block fetch with a bimodal predictor and
// return-address stack, dispatch into a reorder buffer with implicit
// renaming, oldest-first issue across functional-unit pools, a load/store
// queue with configurable alias policy, a two-level cache hierarchy with
// next-line prefetch and a TLB, and the paper's SBox caches.
//
// A zero value for any capacity parameter means "infinite", which is how
// the dataflow (DF) model and the Figure 5 single-bottleneck experiments
// are expressed.
package ooo

import (
	"fmt"
	"strings"
)

// Config describes one machine model (the paper's Table 2 plus the
// bottleneck-analysis knobs of Figure 5).
type Config struct {
	Name string

	// Front end.
	FetchBlocksPerCycle int // taken branches terminate a block; 0 = inf
	FetchWidth          int // instructions per block; 0 = inf
	BranchPenalty       int // minimum misprediction penalty in cycles
	PerfectBpred        bool

	// Window.
	WindowSize int // ROB entries; 0 = inf
	IssueWidth int // also dispatch and commit width; 0 = inf
	LSQSize    int // in-flight memory operations; 0 = inf

	// Functional units (0 = inf).
	NumIALU  int
	MulLanes int // 32-bit multiplier lanes; a 64-bit multiply takes two
	NumRot   int // rotator/XBOX units

	// Memory system.
	DCachePorts  int  // 0 = inf
	PerfectMem   bool // every access is an L1 hit and the TLB never misses
	PerfectAlias bool // loads wait only for overlapping earlier stores

	// SBox caches (the 4W+ / 8W+ feature).
	NumSboxCaches  int // tables beyond this use D-cache ports
	SboxCachePorts int // ports per SBox cache

	// Checked enables per-cycle invariant validation (see invariants.go):
	// the engine verifies reorder-buffer, scoreboard, calendar-queue,
	// store-ordering and slot-accounting consistency every cycle and
	// returns a structured *check.Violation from Run at the first
	// inconsistency, instead of running on over corrupted state. Off by
	// default; when off the only cost is one untaken branch per cycle.
	Checked bool

	// CycleBudget aborts Run with a *check.BudgetError once the simulated
	// cycle count reaches it (0 = no budget). Together with
	// emu.Machine.MaxInsts this is the runaway guard: a mis-built kernel
	// fails a sweep cell with a typed error instead of hanging it.
	CycleBudget uint64
}

func (c Config) String() string { return c.Name }

// inf reports whether a capacity is unlimited.
func inf(n int) bool { return n <= 0 }

// The paper's machine models (Table 2).
var (
	// FourWide is the baseline: roughly an Alpha 21264.
	FourWide = Config{
		Name:                "4W",
		FetchBlocksPerCycle: 1,
		FetchWidth:          4,
		BranchPenalty:       8,
		WindowSize:          128,
		IssueWidth:          4,
		LSQSize:             64,
		NumIALU:             4,
		MulLanes:            2,
		NumRot:              2,
		DCachePorts:         2,
	}

	// FourWidePlus adds four single-ported SBox caches and two more
	// rotator/XBOX units.
	FourWidePlus = Config{
		Name:                "4W+",
		FetchBlocksPerCycle: 1,
		FetchWidth:          4,
		BranchPenalty:       8,
		WindowSize:          128,
		IssueWidth:          4,
		LSQSize:             64,
		NumIALU:             4,
		MulLanes:            2,
		NumRot:              4,
		DCachePorts:         2,
		NumSboxCaches:       4,
		SboxCachePorts:      1,
	}

	// EightWidePlus doubles execution bandwidth.
	EightWidePlus = Config{
		Name:                "8W+",
		FetchBlocksPerCycle: 2,
		FetchWidth:          4,
		BranchPenalty:       8,
		WindowSize:          256,
		IssueWidth:          8,
		LSQSize:             128,
		NumIALU:             8,
		MulLanes:            4,
		NumRot:              8,
		DCachePorts:         4,
		NumSboxCaches:       4,
		SboxCachePorts:      2,
	}

	// Dataflow is the upper-bound machine: infinite everything, perfect
	// prediction, perfect memory, perfect alias detection. SBox accesses
	// get the dedicated-cache latency (every table has a cache with
	// unlimited ports).
	Dataflow = Config{
		Name:          "DF",
		PerfectBpred:  true,
		PerfectMem:    true,
		PerfectAlias:  true,
		NumSboxCaches: 16,
	}
)

// Figure 5 re-inserts one bottleneck at a time into the dataflow machine.
// Bottleneck names follow the paper's bars.
func BottleneckConfig(name string) (Config, error) {
	c := Dataflow
	switch name {
	case "Alias":
		c.PerfectAlias = false
	case "Branch":
		c.PerfectBpred = false
		c.BranchPenalty = FourWide.BranchPenalty
	case "Issue":
		c.IssueWidth = FourWide.IssueWidth
	case "Mem":
		c.PerfectMem = false
	case "Res":
		c.NumIALU = FourWide.NumIALU
		c.MulLanes = FourWide.MulLanes
		c.NumRot = FourWide.NumRot
		c.DCachePorts = FourWide.DCachePorts
	case "Window":
		c.WindowSize = FourWide.WindowSize
	case "All":
		return FourWide, nil
	default:
		return Config{}, fmt.Errorf("ooo: unknown bottleneck %q", name)
	}
	c.Name = "DF+" + name
	return c, nil
}

// ModelByNameFold is ModelByName with case-insensitive matching: "4w+"
// resolves like "4W+", "df+issue" like "DF+Issue". The original error is
// returned when no casing matches.
func ModelByNameFold(name string) (Config, error) {
	if cfg, err := ModelByName(name); err == nil {
		return cfg, nil
	}
	if cfg, err := ModelByName(strings.ToUpper(name)); err == nil {
		return cfg, nil
	}
	if rest, ok := strings.CutPrefix(strings.ToUpper(name), "DF+"); ok && rest != "" {
		if cfg, err := ModelByName("DF+" + strings.ToUpper(rest[:1]) + strings.ToLower(rest[1:])); err == nil {
			return cfg, nil
		}
	}
	return ModelByName(name)
}

// Bottlenecks lists the Figure 5 bars in presentation order.
var Bottlenecks = []string{"Alias", "Branch", "Issue", "Mem", "Res", "Window", "All"}

// Models lists the paper's named machine models.
var Models = []Config{FourWide, FourWidePlus, EightWidePlus, Dataflow}

// ModelByName resolves a machine-model name: 4W, 4W+, 8W+, DF, or a
// Figure 5 single-bottleneck machine written DF+<name> (e.g. DF+Issue).
func ModelByName(name string) (Config, error) {
	for _, m := range Models {
		if m.Name == name {
			return m, nil
		}
	}
	if strings.HasPrefix(name, "DF+") {
		return BottleneckConfig(strings.TrimPrefix(name, "DF+"))
	}
	return Config{}, fmt.Errorf("ooo: unknown machine model %q (want 4W, 4W+, 8W+, DF or DF+<bottleneck>)", name)
}
