package ooo

import "cryptoarch/internal/isa"

// bpred is a bimodal 2-bit predictor plus an 8-entry return-address stack.
// Direct-branch targets are assumed to hit an ideal BTB (loop branches in
// the cipher kernels are static-target), so mispredictions come from
// direction errors and RAS misses — consistent with the paper's finding
// that these kernels predict extremely well.
type bpred struct {
	table []uint8 // 2-bit counters

	// Return-address stack as a fixed ring (drop-oldest on overflow), so
	// pushes never allocate.
	ras     [rasDepth]int
	rasBase int // index of the oldest live entry
	rasLen  int
}

const (
	bpredEntries = 2048
	rasDepth     = 8
)

func newBpred() *bpred {
	t := make([]uint8, bpredEntries)
	for i := range t {
		t[i] = 2 // weakly taken: loops warm up fast
	}
	return &bpred{table: t}
}

func (b *bpred) index(pc int) int { return pc & (bpredEntries - 1) }

// predict returns the predicted direction for the branch at pc and whether
// the prediction machinery redirects fetch correctly. It also updates
// state (trace-driven: the true outcome is known at hand, so update is
// immediate; for loop-dominated kernels this matches delayed update).
func (b *bpred) predict(pc int, in *isa.Inst, taken bool, target int) (correct bool) {
	p := isa.P(in.Op)
	switch {
	case in.Op == isa.OpBSR:
		b.push(pc + 1)
		return true
	case in.Op == isa.OpRET:
		return b.pop() == target
	case p.Uncond:
		return true // direct target, ideal BTB
	default:
		ctr := &b.table[b.index(pc)]
		pred := *ctr >= 2
		if taken && *ctr < 3 {
			*ctr++
		} else if !taken && *ctr > 0 {
			*ctr--
		}
		return pred == taken
	}
}

func (b *bpred) push(v int) {
	if b.rasLen == rasDepth {
		b.rasBase = (b.rasBase + 1) % rasDepth // drop the oldest
		b.rasLen--
	}
	b.ras[(b.rasBase+b.rasLen)%rasDepth] = v
	b.rasLen++
}

func (b *bpred) pop() int {
	if b.rasLen == 0 {
		return -1
	}
	b.rasLen--
	return b.ras[(b.rasBase+b.rasLen)%rasDepth]
}
