package ooo_test

import (
	"testing"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
	"cryptoarch/internal/ooo"
)

// runKernel times one blowfish session on a config.
func runKernel(t *testing.T, cfg ooo.Config, feat isa.Feature, bytes int) *ooo.Stats {
	t.Helper()
	k, err := kernels.Get("blowfish")
	if err != nil {
		t.Fatal(err)
	}
	key := make([]byte, 16)
	iv := make([]byte, 8)
	pt := make([]byte, bytes)
	for i := range pt {
		pt[i] = byte(i * 7)
	}
	m, _, err := kernels.NewRun(k, feat, key, iv, pt)
	if err != nil {
		t.Fatal(err)
	}
	eng := ooo.NewEngine(cfg, ooo.MachineStream{M: m})
	eng.WarmData(kernels.CtxAddr, k.CtxBytes)
	eng.WarmCode(len(m.Prog.Code))
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestModelOrdering(t *testing.T) {
	// More machine must never be slower: DF <= 8W+ <= 4W+ <= 4W cycles.
	const n = 512
	cyc := map[string]uint64{}
	for _, cfg := range []ooo.Config{ooo.FourWide, ooo.FourWidePlus, ooo.EightWidePlus, ooo.Dataflow} {
		st := runKernel(t, cfg, isa.FeatOpt, n)
		cyc[cfg.Name] = st.Cycles
		if st.Cycles == 0 || st.Instructions == 0 {
			t.Fatalf("%s: empty run", cfg.Name)
		}
		t.Logf("%-4s cycles=%d insts=%d IPC=%.2f", cfg.Name, st.Cycles, st.Instructions, st.IPC())
	}
	if cyc["DF"] > cyc["8W+"] || cyc["8W+"] > cyc["4W+"] || cyc["4W+"] > cyc["4W"] {
		t.Fatalf("model ordering violated: %v", cyc)
	}
}

func TestInstructionCountInvariant(t *testing.T) {
	// The committed instruction count is a property of the program, not
	// the machine.
	a := runKernel(t, ooo.FourWide, isa.FeatRot, 256)
	b := runKernel(t, ooo.Dataflow, isa.FeatRot, 256)
	if a.Instructions != b.Instructions {
		t.Fatalf("instruction counts differ: %d vs %d", a.Instructions, b.Instructions)
	}
}

func TestIPCBound(t *testing.T) {
	st := runKernel(t, ooo.FourWide, isa.FeatOpt, 512)
	if st.IPC() > 4.0 {
		t.Fatalf("IPC %.2f exceeds issue width 4", st.IPC())
	}
	st8 := runKernel(t, ooo.EightWidePlus, isa.FeatOpt, 512)
	if st8.IPC() > 8.0 {
		t.Fatalf("IPC %.2f exceeds issue width 8", st8.IPC())
	}
}

func TestBottleneckConfigsNoSlowerThanAll(t *testing.T) {
	// Each single-bottleneck machine must lie between DF and the full
	// baseline ("All").
	df := runKernel(t, ooo.Dataflow, isa.FeatRot, 256).Cycles
	all := runKernel(t, ooo.FourWide, isa.FeatRot, 256).Cycles
	for _, name := range ooo.Bottlenecks {
		cfg, err := ooo.BottleneckConfig(name)
		if err != nil {
			t.Fatal(err)
		}
		c := runKernel(t, cfg, isa.FeatRot, 256).Cycles
		t.Logf("%-7s cycles=%d (DF %d, All %d)", name, c, df, all)
		if c < df {
			t.Errorf("%s faster than dataflow: %d < %d", name, c, df)
		}
		if name != "All" && c > all {
			t.Errorf("%s slower than the full baseline: %d > %d", name, c, all)
		}
	}
}

func TestUnknownBottleneck(t *testing.T) {
	if _, err := ooo.BottleneckConfig("nope"); err == nil {
		t.Fatal("unknown bottleneck accepted")
	}
}

func TestBranchPredictionEffective(t *testing.T) {
	// Kernel loops must predict nearly perfectly (the paper's finding).
	st := runKernel(t, ooo.FourWide, isa.FeatOpt, 1024)
	if st.Branches == 0 {
		t.Fatal("no branches recorded")
	}
	rate := float64(st.Mispredicts) / float64(st.Branches)
	if rate > 0.05 {
		t.Fatalf("mispredict rate %.3f too high for loop code", rate)
	}
}
