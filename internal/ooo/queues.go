package ooo

// Allocation-free scheduling structures for the engine hot loop. The
// per-cycle and per-seq maps the engine used to carry (completion wheel,
// future-ready sets, store ordering, byte-granular alias tracking) are
// replaced here by ring-indexed calendar queues, a non-boxing binary
// min-heap, and a page-table of last-store slabs. All of them reuse their
// backing storage, so the steady-state simulation loop performs no heap
// allocation (pinned by TestSteadyStateZeroAllocs).

// seqPQ is a binary min-heap of entry seqs (oldest-first issue order). It
// replaces container/heap to avoid boxing every uint64 push into an
// interface value.
type seqPQ []uint64

func (q *seqPQ) push(v uint64) {
	h := append(*q, v)
	*q = h
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (q *seqPQ) pop() uint64 {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	*q = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r] < h[l] {
			m = r
		}
		if h[i] <= h[m] {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// calSlots is the completion-wheel span. It covers every latency the
// memory system produces short of a deeply queued bus (l1 + TLB + L2 +
// memory is 164 cycles); longer completions spill to the sorted overflow
// list, which stays empty in steady state.
const calSlots = 256

// calendar is a ring-indexed calendar queue: events for cycle c live in
// slot c&(calSlots-1), valid because the engine drains every slot exactly
// when its cycle arrives. Far-future events (beyond the wheel horizon) are
// kept sorted by cycle in overflow; for any target cycle they were
// necessarily scheduled before every slot-resident event of that cycle, so
// draining overflow first preserves global insertion (issue) order.
type calendar struct {
	slots    [calSlots][]uint64
	overflow []calEvent
}

type calEvent struct {
	cycle, seq uint64
}

// schedule books seq to complete at cycle (now is the current cycle;
// cycle > now always holds).
func (c *calendar) schedule(now, cycle, seq uint64) {
	if cycle-now < calSlots {
		i := cycle & (calSlots - 1)
		c.slots[i] = append(c.slots[i], seq)
		return
	}
	j := len(c.overflow)
	c.overflow = append(c.overflow, calEvent{cycle, seq})
	for j > 0 && c.overflow[j-1].cycle > cycle {
		c.overflow[j], c.overflow[j-1] = c.overflow[j-1], c.overflow[j]
		j--
	}
}

// drain invokes fn for every event booked at cycle, overflow first (see
// the ordering argument above), and reports whether any event fired. The
// slot's backing array is retained for reuse.
func (c *calendar) drain(cycle uint64, fn func(seq uint64)) bool {
	any := false
	if len(c.overflow) > 0 && c.overflow[0].cycle == cycle {
		n := 0
		for n < len(c.overflow) && c.overflow[n].cycle == cycle {
			fn(c.overflow[n].seq)
			n++
		}
		copy(c.overflow, c.overflow[n:])
		c.overflow = c.overflow[:len(c.overflow)-n]
		any = true
	}
	slot := &c.slots[cycle&(calSlots-1)]
	if len(*slot) > 0 {
		for _, s := range *slot {
			fn(s)
		}
		*slot = (*slot)[:0]
		any = true
	}
	return any
}

// aliasPageShift sizes the last-store slabs (4KB of simulated bytes each).
const aliasPageShift = 12

type aliasSlab [1 << aliasPageShift]uint64

// aliasMap tracks the youngest store (seq+1) per byte address — the
// perfect-alias oracle and forwarding source. Simulated data addresses
// cluster in a handful of pages (cipher context plus session buffers), so
// a page table of dense slabs with a one-entry page cache makes both the
// per-store set and the per-load get map-free on the hot path.
type aliasMap struct {
	pages    map[uint64]*aliasSlab
	lastPage uint64
	lastSlab *aliasSlab
}

func newAliasMap() aliasMap {
	return aliasMap{pages: make(map[uint64]*aliasSlab), lastPage: ^uint64(0)}
}

// set records v as the youngest store covering addr.
func (a *aliasMap) set(addr, v uint64) {
	page := addr >> aliasPageShift
	if page != a.lastPage {
		s := a.pages[page]
		if s == nil {
			s = new(aliasSlab)
			a.pages[page] = s
		}
		a.lastPage, a.lastSlab = page, s
	}
	a.lastSlab[addr&(1<<aliasPageShift-1)] = v
}

// get returns the youngest store covering addr (0 if none). It never
// allocates a slab.
func (a *aliasMap) get(addr uint64) uint64 {
	page := addr >> aliasPageShift
	if page != a.lastPage {
		s := a.pages[page]
		if s == nil {
			return 0
		}
		a.lastPage, a.lastSlab = page, s
	}
	return a.lastSlab[addr&(1<<aliasPageShift-1)]
}
