package ooo

// Allocation-free scheduling structures for the engine hot loop. The
// per-cycle and per-seq maps the engine used to carry (completion wheel,
// future-ready sets, store ordering, byte-granular alias tracking) are
// replaced here by ring-indexed calendar queues, a non-boxing binary
// min-heap, and a page-table of last-store slabs. All of them reuse their
// backing storage, so the steady-state simulation loop performs no heap
// allocation (pinned by TestSteadyStateZeroAllocs).

// seqPQ is a binary min-heap of entry seqs (oldest-first issue order). It
// replaces container/heap to avoid boxing every uint64 push into an
// interface value.
type seqPQ []uint64

func (q *seqPQ) push(v uint64) {
	h := append(*q, v)
	*q = h
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (q *seqPQ) pop() uint64 {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	*q = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r] < h[l] {
			m = r
		}
		if h[i] <= h[m] {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// calSlots is the completion-wheel span. It covers every latency the
// memory system produces short of a deeply queued bus (l1 + TLB + L2 +
// memory is 164 cycles); longer completions spill to the sorted overflow
// list, which stays empty in steady state.
const calSlots = 256

// calendar is a ring-indexed calendar queue: events for cycle c live in
// slot c&(calSlots-1), valid because the engine drains every slot exactly
// when its cycle arrives. Far-future events (beyond the wheel horizon) are
// kept sorted by cycle in overflow; for any target cycle they were
// necessarily scheduled before every slot-resident event of that cycle, so
// draining overflow first preserves global insertion (issue) order.
type calendar struct {
	slots    [calSlots][]uint64
	overflow []calEvent
}

type calEvent struct {
	cycle, seq uint64
}

// schedule books seq to complete at cycle (now is the current cycle;
// cycle > now always holds).
func (c *calendar) schedule(now, cycle, seq uint64) {
	if cycle-now < calSlots {
		i := cycle & (calSlots - 1)
		c.slots[i] = append(c.slots[i], seq)
		return
	}
	j := len(c.overflow)
	c.overflow = append(c.overflow, calEvent{cycle, seq})
	for j > 0 && c.overflow[j-1].cycle > cycle {
		c.overflow[j], c.overflow[j-1] = c.overflow[j-1], c.overflow[j]
		j--
	}
}

// Draining happens inline in Engine.writeback (overflow first, then the
// cycle's slot) so each completion is a direct method call.

// aliasPageShift sizes the last-store slabs (4KB of simulated bytes each).
const aliasPageShift = 12

type aliasSlab [1 << aliasPageShift]uint64

// aliasMap tracks the youngest store (seq+1) per byte address — the
// perfect-alias oracle and forwarding source. Simulated data addresses
// cluster in a handful of pages (cipher context plus session buffers), so
// a page table of dense slabs fronted by a small direct-mapped page cache
// makes both the per-store set and the per-load get map-free on the hot
// path. A single cached page is not enough: loads hitting the context
// page alternate with stores to the session buffer and thrash it.
type aliasMap struct {
	pages map[uint64]*aliasSlab
	tag   [aliasWays]uint64
	way   [aliasWays]*aliasSlab
}

const aliasWays = 8 // power of two; indexed by page low bits

func newAliasMap() aliasMap {
	a := aliasMap{pages: make(map[uint64]*aliasSlab)}
	for i := range a.tag {
		a.tag[i] = ^uint64(0)
	}
	return a
}

// setRange records v as the youngest store covering [addr, addr+n). The
// page lookup is done once per touched page, not once per byte — accesses
// are at most 8 bytes and almost never straddle a page.
func (a *aliasMap) setRange(addr, n, v uint64) {
	for n > 0 {
		page := addr >> aliasPageShift
		off := addr & (1<<aliasPageShift - 1)
		c := uint64(1)<<aliasPageShift - off
		if c > n {
			c = n
		}
		i := page & (aliasWays - 1)
		s := a.way[i]
		if a.tag[i] != page {
			s = a.pages[page]
			if s == nil {
				s = new(aliasSlab)
				a.pages[page] = s
			}
			a.tag[i], a.way[i] = page, s
		}
		for j := uint64(0); j < c; j++ {
			s[off+j] = v
		}
		addr, n = addr+c, n-c
	}
}

// getMax returns the youngest store covering any byte of [addr, addr+n)
// (0 if none). It never allocates a slab.
func (a *aliasMap) getMax(addr, n uint64) uint64 {
	var dep uint64
	for n > 0 {
		page := addr >> aliasPageShift
		off := addr & (1<<aliasPageShift - 1)
		c := uint64(1)<<aliasPageShift - off
		if c > n {
			c = n
		}
		i := page & (aliasWays - 1)
		s := a.way[i]
		if a.tag[i] != page {
			s = a.pages[page]
			if s == nil {
				addr, n = addr+c, n-c
				continue
			}
			a.tag[i], a.way[i] = page, s
		}
		for j := uint64(0); j < c; j++ {
			if s[off+j] > dep {
				dep = s[off+j]
			}
		}
		addr, n = addr+c, n-c
	}
	return dep
}
