package ooo

// Warmup/measure phase split. Time-parallel chunked replay and interval
// sampling both run the engine over a window of a longer recorded stream:
// a warmup prefix puts the caches, TLBs, branch predictor and SBox caches
// into a representative state, and only the instructions after it are
// measured. The engine supports this as a discardable stats epoch: the
// run proceeds exactly as normal (warmup changes no timing decision), and
// when the configured number of instructions has dispatched, the current
// counters are snapshotted as a base that is subtracted from the final
// stats — and, in lockstep, from the per-PC profile — before Run returns.
//
// Epoch boundary semantics: the boundary is the dispatch of the last
// warmup instruction. Counters charged at dispatch (Instructions,
// ClassCounts, Loads, Stores) split exactly at the boundary. Counters
// charged in other stages (Branches and Mispredicts at fetch, SBox and
// cache counters at issue) are snapshotted at the same instant, so a few
// in-flight instructions' events can land on either side of the cut; the
// skew is bounded by the front-end depth plus the window size and
// vanishes in relative terms as the measured body grows — the convergence
// property the chunked-equivalence tests enforce. Commit-slot accounting
// splits exactly: the base is taken between cycles, so measured
// Stalls.Slots() == measured Cycles * IssueWidth still holds on
// finite-width machines, and the measured profile still satisfies
// Profile.Total() == Stats.Stalls.

// SetWarmup arms the warmup epoch: the first n dispatched instructions
// are simulated normally but excluded from the returned Stats (and from
// an attached profile). Must be called before Run. n == 0 disables the
// split. If the stream delivers n or fewer instructions the epoch never
// closes: the full run is reported and WarmupDiscarded returns zeros.
func (e *Engine) SetWarmup(n uint64) {
	e.warmupLeft = n
}

// WarmupDiscarded reports the instruction and cycle counts of the warmup
// epoch that Run discarded (zeros when no warmup was configured or the
// epoch never closed).
func (e *Engine) WarmupDiscarded() (insts, cycles uint64) {
	if !e.warmupBaseSet {
		return 0, 0
	}
	return e.warmupBase.Instructions, e.warmupBase.Cycles
}

// beginMeasure closes the warmup epoch: every counter's current value
// becomes the base subtracted from the final stats. Called from dispatch
// (wireDependencies) when the last warmup instruction has been charged;
// account() has not yet run for the current cycle, so the base sits
// exactly on a cycle boundary for slot accounting.
func (e *Engine) beginMeasure() {
	e.warmupBase = e.stats
	e.warmupBase.Cycles = e.cycle
	// run() copies the memory-system totals into stats only at the end;
	// snapshot them live here.
	e.warmupBase.DL1Misses = e.mem.DL1Miss
	e.warmupBase.L2Misses = e.mem.L2Miss
	e.warmupBase.TLBMisses = e.mem.TLBMiss
	e.warmupBaseSet = true
	if e.profPCs != nil {
		if cap(e.warmupProfBase) < len(e.profPCs) {
			e.warmupProfBase = make([]PCProfile, len(e.profPCs))
		}
		e.warmupProfBase = e.warmupProfBase[:len(e.profPCs)]
		copy(e.warmupProfBase, e.profPCs)
	}
}

// applyWarmup subtracts the warmup base from the final stats and profile.
// Called once at the very end of run(), after the memory totals are
// copied and the final invariant check has passed — checked mode always
// validates the cumulative counters.
func (e *Engine) applyWarmup() {
	if !e.warmupBaseSet {
		return
	}
	e.stats = e.stats.Delta(&e.warmupBase)
	if e.profPCs != nil {
		for i := range e.profPCs {
			p, b := &e.profPCs[i], &e.warmupProfBase[i]
			p.Retired -= b.Retired
			p.ExecCycles -= b.ExecCycles
			p.Slots = p.Slots.sub(b.Slots)
		}
	}
}
