package ooo

import (
	"cryptoarch/internal/check"
	"cryptoarch/internal/core"
)

// Checked-mode invariant validation. With Config.Checked set, Run calls
// checkInvariants at the end of every simulated cycle and aborts with a
// structured *check.Violation at the first inconsistency — the engine
// never keeps simulating over corrupted state, and Stats from a checked
// run are either trustworthy or absent. Each checker owns one stable name
// (the Violation.Check field); the fault-injection tests in
// invariants_test.go corrupt engine state one class at a time and assert
// the owning checker fires, so there are no silently undetectable fault
// classes among the ones modeled.
//
// Checker names and what they guard:
//
//	rob-bounds       ring/window occupancy, fetch-queue accounting,
//	                 dispatched-instruction concordance
//	rob-entry        per-entry seq/state/pendingDeps sanity for every
//	                 in-flight reorder-buffer slot
//	scoreboard       consumer-list structure: node indices inside the
//	                 pool, no cycles, consumer seqs in-flight and younger
//	                 than their producer
//	slot-accounting  online Stalls.Slots() == Cycles*IssueWidth (the
//	                 accounting identity previously asserted only
//	                 post-hoc by tests)
//	calendar         completion-wheel sanity: overflow sorted and
//	                 future-dated, slot residents issued entries whose
//	                 doneCycle maps back to their slot
//	store-ring       store-ordering ring: known prefix <= dispatched
//	                 count, in-flight span within the ring, no issued
//	                 bit pending at the advance point
//	mem-waiters      blocked-load FIFO: head within range, seqs
//	                 strictly increasing and in flight
//	sbox-cache       SBox-cache state: no valid sectors without a tag,
//	                 tags table-aligned
//
// All checks are read-only and allocation-free; cost is O(in-flight
// entries + calSlots) per cycle, paid only when Checked is on.

// CheckInvariants validates the engine's internal consistency at a cycle
// boundary (it is called automatically each cycle when Config.Checked is
// set, and may be called by external harnesses between runs). It returns
// nil or the first *check.Violation found.
func (e *Engine) CheckInvariants() error {
	if v := e.checkROBBounds(); v != nil {
		return v
	}
	if v := e.checkROBEntries(); v != nil {
		return v
	}
	if v := e.checkSlotAccounting(); v != nil {
		return v
	}
	if v := e.checkCalendar(); v != nil {
		return v
	}
	if v := e.checkStoreRing(); v != nil {
		return v
	}
	if v := e.checkMemWaiters(); v != nil {
		return v
	}
	if v := e.checkSboxCaches(); v != nil {
		return v
	}
	return nil
}

// checkROBBounds validates ring occupancy and fetch-queue accounting.
func (e *Engine) checkROBBounds() *check.Violation {
	occ := e.tailSeq - e.headSeq
	if e.tailSeq < e.headSeq {
		return check.Violationf("rob-bounds", e.cycle, "tailSeq %d behind headSeq %d", e.tailSeq, e.headSeq)
	}
	if occ > uint64(len(e.rob)) {
		return check.Violationf("rob-bounds", e.cycle, "occupancy %d exceeds ring size %d", occ, len(e.rob))
	}
	if e.fqTail < e.fqHead {
		return check.Violationf("rob-bounds", e.cycle, "fetch queue tail %d behind head %d", e.fqTail, e.fqHead)
	}
	if fq := e.fqLen(); fq > len(e.fetchQ) {
		return check.Violationf("rob-bounds", e.cycle, "fetch queue occupancy %d exceeds ring size %d", fq, len(e.fetchQ))
	} else if uint64(fq) > occ {
		return check.Violationf("rob-bounds", e.cycle, "fetch queue holds %d seqs but only %d are in flight", fq, occ)
	}
	if w := e.windowOcc(); w > e.effWindow() {
		return check.Violationf("rob-bounds", e.cycle, "window occupancy %d exceeds window size %d", w, e.effWindow())
	}
	// Every fetched seq is either still in the fetch queue or was
	// dispatched (and counted) exactly once.
	if dispatched := e.tailSeq - uint64(e.fqLen()); e.stats.Instructions != dispatched {
		return check.Violationf("rob-bounds", e.cycle,
			"Stats.Instructions %d != dispatched seqs %d (tail %d - fq %d)",
			e.stats.Instructions, dispatched, e.tailSeq, e.fqLen())
	}
	if e.memOps < 0 {
		return check.Violationf("rob-bounds", e.cycle, "negative LSQ occupancy %d", e.memOps)
	}
	return nil
}

// checkEntryBudget bounds the per-cycle entry walk. Small windows are
// validated in full every cycle; the dataflow model's 2^18 in-flight
// entries are covered by a rotating window instead, so checked mode stays
// O(budget) per cycle and corruption is still caught within
// occupancy/budget cycles.
const checkEntryBudget = 4096

// checkROBEntries validates in-flight reorder-buffer entries and their
// consumer lists: all of them when the window is small, otherwise a
// rotating checkEntryBudget-sized slice per cycle.
func (e *Engine) checkROBEntries() *check.Violation {
	rob, mask := e.rob, uint64(len(e.rob)-1)
	poolLen := int32(len(e.consPool))
	occ := e.tailSeq - e.headSeq
	n, off := occ, uint64(0)
	if occ > checkEntryBudget {
		n = checkEntryBudget
		off = e.checkCursor % occ
		e.checkCursor += checkEntryBudget
	}
	for k := uint64(0); k < n; k++ {
		s := e.headSeq + off + k
		if s >= e.tailSeq {
			s -= occ
		}
		en := &rob[s&mask]
		if en.seq != s {
			return check.Violationf("rob-entry", e.cycle,
				"ring slot %d holds seq %d, want in-flight seq %d", s&mask, en.seq, s)
		}
		if en.state > stDone {
			return check.Violationf("rob-entry", e.cycle, "seq %d has invalid state %d", s, en.state)
		}
		if en.pendingDeps < 0 {
			return check.Violationf("rob-entry", e.cycle, "seq %d has negative pendingDeps %d", s, en.pendingDeps)
		}
		if int(en.kind) >= fuKinds {
			return check.Violationf("rob-entry", e.cycle, "seq %d has invalid FU kind %d", s, en.kind)
		}
		// Consumer list: completion empties the list, so only live
		// producers hold one; walk it with a step budget to catch cycles.
		if en.consHead != 0 && en.state == stDone {
			return check.Violationf("scoreboard", e.cycle, "completed seq %d still holds a consumer list", s)
		}
		steps := int32(0)
		for i := en.consHead; i != 0; {
			if i < 0 || i > poolLen {
				return check.Violationf("scoreboard", e.cycle,
					"seq %d consumer node index %d outside pool [1,%d]", s, i, poolLen)
			}
			if steps++; steps > poolLen {
				return check.Violationf("scoreboard", e.cycle, "seq %d consumer list does not terminate", s)
			}
			n := &e.consPool[i-1]
			if n.seq <= s || n.seq >= e.tailSeq {
				return check.Violationf("scoreboard", e.cycle,
					"seq %d consumer node names seq %d outside (%d,%d)", s, n.seq, s, e.tailSeq)
			}
			if i == en.consTail && n.next != 0 {
				return check.Violationf("scoreboard", e.cycle,
					"seq %d consumer tail node %d has successor %d", s, i, n.next)
			}
			i = n.next
		}
	}
	return nil
}

// checkSlotAccounting verifies the accounting identity online: every
// counted cycle charges exactly IssueWidth commit slots, so at a cycle
// boundary the buckets sum to Cycles*IssueWidth. Infinite-width machines
// have no slot budget and are exempt.
func (e *Engine) checkSlotAccounting() *check.Violation {
	if inf(e.cfg.IssueWidth) {
		return nil
	}
	want := e.cycle * uint64(e.cfg.IssueWidth)
	if got := e.stats.Stalls.Slots(); got != want {
		return check.Violationf("slot-accounting", e.cycle,
			"stall buckets sum to %d slots, want cycles*width = %d*%d = %d",
			got, e.cycle, e.cfg.IssueWidth, want)
	}
	return nil
}

// checkCalendar validates the completion wheel: overflow events sorted
// and future-dated, slot residents issued and mapped to their slot.
func (e *Engine) checkCalendar() *check.Violation {
	c := &e.completions
	for i, ev := range c.overflow {
		if ev.cycle < e.cycle {
			return check.Violationf("calendar", e.cycle, "overflow event for past cycle %d", ev.cycle)
		}
		if i > 0 && c.overflow[i-1].cycle > ev.cycle {
			return check.Violationf("calendar", e.cycle,
				"overflow not sorted: cycle %d after %d", ev.cycle, c.overflow[i-1].cycle)
		}
	}
	rob, mask := e.rob, uint64(len(e.rob)-1)
	for i := range c.slots {
		for _, s := range c.slots[i] {
			en := &rob[s&mask]
			if en.seq != s || s < e.headSeq || s >= e.tailSeq {
				return check.Violationf("calendar", e.cycle,
					"slot %d schedules seq %d which is not in flight", i, s)
			}
			if en.state != stIssued {
				return check.Violationf("calendar", e.cycle,
					"slot %d schedules seq %d in state %d, want issued", i, s, en.state)
			}
			if uint64(en.doneCycle)&(calSlots-1) != uint64(i) {
				return check.Violationf("calendar", e.cycle,
					"seq %d with doneCycle %d resides in slot %d", s, en.doneCycle, i)
			}
			if uint64(en.doneCycle) < e.cycle {
				return check.Violationf("calendar", e.cycle,
					"seq %d scheduled for past cycle %d", s, en.doneCycle)
			}
		}
	}
	return nil
}

// checkStoreRing validates store-ordering state.
func (e *Engine) checkStoreRing() *check.Violation {
	if e.storeKnown > e.storeCount {
		return check.Violationf("store-ring", e.cycle,
			"known-store prefix %d beyond dispatched stores %d", e.storeKnown, e.storeCount)
	}
	if span := e.storeCount - e.storeKnown; span > uint64(len(e.storeIssued)) {
		return check.Violationf("store-ring", e.cycle,
			"in-flight store span %d exceeds ring size %d", span, len(e.storeIssued))
	}
	// advanceStoreKnown runs on every store issue, so at a cycle boundary
	// the ordinal just past the known prefix is never marked issued.
	if e.storeKnown < e.storeCount {
		if e.storeIssued[(e.storeKnown+1)&uint64(len(e.storeIssued)-1)] {
			return check.Violationf("store-ring", e.cycle,
				"ordinal %d issued but known prefix not advanced", e.storeKnown+1)
		}
	}
	return nil
}

// checkMemWaiters validates the blocked-load FIFO.
func (e *Engine) checkMemWaiters() *check.Violation {
	if e.memWaitHead < 0 || e.memWaitHead > len(e.memWaiters) {
		return check.Violationf("mem-waiters", e.cycle,
			"waiter head %d outside [0,%d]", e.memWaitHead, len(e.memWaiters))
	}
	var prev uint64
	for i := e.memWaitHead; i < len(e.memWaiters); i++ {
		s := e.memWaiters[i]
		if s >= e.tailSeq {
			return check.Violationf("mem-waiters", e.cycle, "waiter seq %d was never fetched", s)
		}
		if i > e.memWaitHead && s <= prev {
			return check.Violationf("mem-waiters", e.cycle,
				"waiter seqs not increasing: %d after %d", s, prev)
		}
		prev = s
	}
	return nil
}

// checkSboxCaches validates SBox-cache tags: valid sectors require a tag
// and tags are table-aligned.
func (e *Engine) checkSboxCaches() *check.Violation {
	for i := range e.sboxCaches {
		c := &e.sboxCaches[i]
		if !c.hasTag && c.valid != 0 {
			return check.Violationf("sbox-cache", e.cycle,
				"cache %d holds valid sectors %#x without a tag", i, c.valid)
		}
		if c.hasTag && c.tag&^core.SboxAlignMask != 0 {
			return check.Violationf("sbox-cache", e.cycle,
				"cache %d tag %#x not table-aligned", i, c.tag)
		}
	}
	return nil
}
