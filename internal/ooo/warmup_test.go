package ooo_test

import (
	"fmt"
	"testing"

	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
	"cryptoarch/internal/ooo"
)

// warmupTrace records one blowfish session as a replayable trace.
func warmupTrace(t *testing.T, bytes int) (*emu.Trace, *kernels.Kernel) {
	t.Helper()
	k, err := kernels.Get("blowfish")
	if err != nil {
		t.Fatal(err)
	}
	key := make([]byte, 16)
	iv := make([]byte, 8)
	pt := make([]byte, bytes)
	for i := range pt {
		pt[i] = byte(i * 7)
	}
	m, _, err := kernels.NewRun(k, isa.FeatRot, key, iv, pt)
	if err != nil {
		t.Fatal(err)
	}
	tr, done := emu.Record(m, 0, nil)
	if !done {
		t.Fatal("record incomplete")
	}
	return tr, k
}

// warmupRun replays the trace with a warmup of w instructions.
func warmupRun(t *testing.T, tr *emu.Trace, k *kernels.Kernel, cfg ooo.Config, w uint64) (*ooo.Stats, *ooo.Engine) {
	t.Helper()
	eng := ooo.NewEngine(cfg, tr.Stream())
	eng.WarmData(kernels.CtxAddr, k.CtxBytes)
	eng.WarmCode(len(tr.Prog.Code))
	eng.SetWarmup(w)
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st, eng
}

// TestWarmupEpochSplit pins the measured-epoch identities: measured
// instructions are exactly total minus warmup, measured plus discarded
// cycles reconstruct the full run, the commit-slot identity holds on the
// measured epoch alone, and dispatch-side class counts stay consistent.
func TestWarmupEpochSplit(t *testing.T) {
	tr, k := warmupTrace(t, 512)
	total := uint64(len(tr.Recs))
	for _, cfg := range []ooo.Config{ooo.FourWide, ooo.EightWidePlus} {
		golden, _ := warmupRun(t, tr, k, cfg, 0)
		for _, w := range []uint64{1, 100, total / 2, total - 1} {
			st, eng := warmupRun(t, tr, k, cfg, w)
			di, dc := eng.WarmupDiscarded()
			if di != w {
				t.Fatalf("%s w=%d: discarded %d insts", cfg.Name, w, di)
			}
			if got, want := st.Instructions, total-w; got != want {
				t.Fatalf("%s w=%d: measured %d insts, want %d", cfg.Name, w, got, want)
			}
			// The run is deterministic, so the discarded and measured cycles
			// partition the golden run exactly.
			if st.Cycles+dc != golden.Cycles {
				t.Fatalf("%s w=%d: measured %d + discarded %d cycles != golden %d",
					cfg.Name, w, st.Cycles, dc, golden.Cycles)
			}
			if got, want := st.Stalls.Slots(), st.Cycles*uint64(cfg.IssueWidth); got != want {
				t.Fatalf("%s w=%d: measured slots %d != cycles*width %d", cfg.Name, w, got, want)
			}
			var classes uint64
			for _, c := range st.ClassCounts {
				classes += c
			}
			if classes != st.Instructions {
				t.Fatalf("%s w=%d: class counts sum %d != instructions %d", cfg.Name, w, classes, st.Instructions)
			}
		}
	}
}

// TestWarmupZeroAndOverlong pins the degenerate epochs: w == 0 is
// bit-identical to no warmup at all, and a warmup longer than the stream
// never closes, reporting the full run and zero discard.
func TestWarmupZeroAndOverlong(t *testing.T) {
	tr, k := warmupTrace(t, 256)
	total := uint64(len(tr.Recs))
	golden, _ := warmupRun(t, tr, k, ooo.FourWide, 0)

	zero, eng := warmupRun(t, tr, k, ooo.FourWide, 0)
	if fmt.Sprintf("%+v", *zero) != fmt.Sprintf("%+v", *golden) {
		t.Fatal("w=0 run differs from golden")
	}
	if di, dc := eng.WarmupDiscarded(); di != 0 || dc != 0 {
		t.Fatalf("w=0 discarded %d/%d", di, dc)
	}

	over, eng := warmupRun(t, tr, k, ooo.FourWide, total+100)
	if fmt.Sprintf("%+v", *over) != fmt.Sprintf("%+v", *golden) {
		t.Fatal("overlong warmup did not fall back to the full run")
	}
	if di, dc := eng.WarmupDiscarded(); di != 0 || dc != 0 {
		t.Fatalf("overlong warmup discarded %d/%d", di, dc)
	}
}

// TestWarmupDataflow pins the epoch on the infinite-width model, whose
// stall breakdown is all zeros before and after the delta.
func TestWarmupDataflow(t *testing.T) {
	tr, k := warmupTrace(t, 256)
	total := uint64(len(tr.Recs))
	w := total / 3
	st, _ := warmupRun(t, tr, k, ooo.Dataflow, w)
	if st.Instructions != total-w {
		t.Fatalf("DF measured %d insts, want %d", st.Instructions, total-w)
	}
	if st.Stalls.Slots() != 0 {
		t.Fatalf("DF charged %d slots", st.Stalls.Slots())
	}
	if st.Cycles == 0 {
		t.Fatal("DF measured zero cycles")
	}
}

// TestWarmupProfile pins that the profile delta stays in lockstep with the
// stats delta: the measured profile's slot buckets sum to the measured
// run-level breakdown exactly, on both a finite and checked config.
func TestWarmupProfile(t *testing.T) {
	tr, k := warmupTrace(t, 512)
	total := uint64(len(tr.Recs))
	cfg := ooo.FourWide
	cfg.Checked = true
	eng := ooo.NewEngine(cfg, tr.Stream())
	eng.WarmData(kernels.CtxAddr, k.CtxBytes)
	eng.WarmCode(len(tr.Prog.Code))
	prof := eng.EnableProfile(len(tr.Prog.Code))
	eng.SetWarmup(total / 2)
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := prof.Total(), st.Stalls; got != want {
		t.Fatalf("measured profile total %v != measured stalls %v", got, want)
	}
	if got, want := prof.TotalSlots(), st.Stalls.Slots(); got != want {
		t.Fatalf("measured profile slots %d != stats slots %d", got, want)
	}
}
