package ooo_test

import (
	"fmt"
	"testing"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// Golden Stats captured from the pre-rewrite (map/heap-based) engine of
// PR 1, including the full Stalls breakdown, across all four machine
// models and four representative kernels (table-free, SBOX-heavy,
// store-aliasing, multiply-bound). The allocation-free hot loop must
// reproduce them bit for bit: the rewrite changed bookkeeping structures,
// never scheduling decisions. Regenerate only if the *model* changes
// intentionally (print %+v of the Stats and review the diff).
var goldenStats = map[string]string{
	"blowfish/rot/1024/4W":  `{Config:4W Cycles:21682 Instructions:43954 ClassCounts:[4488 11940 0 0 24576 0 2820 130] Branches:129 Mispredicts:2 Loads:10754 Stores:258 SboxAccesses:0 SboxHits:0 DL1Misses:190 L2Misses:2 TLBMisses:2 Stalls:[43952 12 0 0 25364 12389 0 0 0 0 0 0 4200 664 0 147 0]}`,
	"blowfish/rot/1024/4W+": `{Config:4W+ Cycles:21682 Instructions:43954 ClassCounts:[4488 11940 0 0 24576 0 2820 130] Branches:129 Mispredicts:2 Loads:10754 Stores:258 SboxAccesses:0 SboxHits:0 DL1Misses:190 L2Misses:2 TLBMisses:2 Stalls:[43952 12 0 0 25364 12389 0 0 0 0 0 0 4200 664 0 147 0]}`,
	"blowfish/rot/1024/8W+": `{Config:8W+ Cycles:21030 Instructions:43954 ClassCounts:[4488 11940 0 0 24576 0 2820 130] Branches:129 Mispredicts:2 Loads:10754 Stores:258 SboxAccesses:0 SboxHits:0 DL1Misses:186 L2Misses:2 TLBMisses:2 Stalls:[43951 16 0 0 113036 889 0 0 0 0 0 0 8197 1324 0 827 0]}`,
	"blowfish/rot/1024/DF":  `{Config:DF Cycles:19993 Instructions:43954 ClassCounts:[4488 11940 0 0 24576 0 2820 130] Branches:129 Mispredicts:0 Loads:10754 Stores:258 SboxAccesses:0 SboxHits:0 DL1Misses:0 L2Misses:0 TLBMisses:0 Stalls:[0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0]}`,

	"twofish/opt/2048/4W":  `{Config:4W Cycles:23032 Instructions:53263 ClassCounts:[8581 17920 4096 0 16384 0 6152 130] Branches:129 Mispredicts:2 Loads:5636 Stores:516 SboxAccesses:16384 SboxHits:0 DL1Misses:274 L2Misses:2 TLBMisses:2 Stalls:[53259 16 0 5 29543 5927 0 0 0 0 64 0 2545 664 0 105 0]}`,
	"twofish/opt/2048/4W+": `{Config:4W+ Cycles:18549 Instructions:53263 ClassCounts:[8581 17920 4096 0 16384 0 6152 130] Branches:129 Mispredicts:2 Loads:5636 Stores:516 SboxAccesses:16384 SboxHits:16256 DL1Misses:5 L2Misses:2 TLBMisses:2 Stalls:[53259 16 0 5 9566 10561 0 0 0 0 0 0 57 664 0 68 0]}`,
	"twofish/opt/2048/8W+": `{Config:8W+ Cycles:16257 Instructions:53263 ClassCounts:[8581 17920 4096 0 16384 0 6152 130] Branches:129 Mispredicts:2 Loads:5636 Stores:516 SboxAccesses:16384 SboxHits:16256 DL1Misses:5 L2Misses:2 TLBMisses:2 Stalls:[53255 32 0 14 63412 11466 0 0 0 0 0 0 117 1328 0 432 0]}`,
	"twofish/opt/2048/DF":  `{Config:DF Cycles:16012 Instructions:53263 ClassCounts:[8581 17920 4096 0 16384 0 6152 130] Branches:129 Mispredicts:0 Loads:5636 Stores:516 SboxAccesses:16384 SboxHits:16384 DL1Misses:0 L2Misses:0 TLBMisses:0 Stalls:[0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0]}`,

	"rc4/rot/1024/4W":  `{Config:4W Cycles:7532 Instructions:21511 ClassCounts:[6145 4096 0 0 6144 0 4100 1026] Branches:1025 Mispredicts:2 Loads:4098 Stores:3074 SboxAccesses:0 SboxHits:0 DL1Misses:344 L2Misses:2 TLBMisses:2 Stalls:[21510 16 0 5 3408 1321 0 0 0 0 184 0 3147 0 0 537 0]}`,
	"rc4/rot/1024/4W+": `{Config:4W+ Cycles:7532 Instructions:21511 ClassCounts:[6145 4096 0 0 6144 0 4100 1026] Branches:1025 Mispredicts:2 Loads:4098 Stores:3074 SboxAccesses:0 SboxHits:0 DL1Misses:344 L2Misses:2 TLBMisses:2 Stalls:[21510 16 0 5 3408 1321 0 0 0 0 184 0 3147 0 0 537 0]}`,
	"rc4/rot/1024/8W+": `{Config:8W+ Cycles:6933 Instructions:21511 ClassCounts:[6145 4096 0 0 6144 0 4100 1026] Branches:1025 Mispredicts:2 Loads:4098 Stores:3074 SboxAccesses:0 SboxHits:0 DL1Misses:301 L2Misses:2 TLBMisses:2 Stalls:[21510 32 0 13 22578 18 0 0 0 0 0 0 9504 1271 0 538 0]}`,
	"rc4/rot/1024/DF":  `{Config:DF Cycles:2088 Instructions:21511 ClassCounts:[6145 4096 0 0 6144 0 4100 1026] Branches:1025 Mispredicts:0 Loads:4098 Stores:3074 SboxAccesses:0 SboxHits:0 DL1Misses:0 L2Misses:0 TLBMisses:0 Stalls:[0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0]}`,

	"idea/opt/512/4W":  `{Config:4W Cycles:9094 Instructions:17135 ClassCounts:[2373 8932 0 2176 0 0 3588 66] Branches:65 Mispredicts:2 Loads:3458 Stores:130 SboxAccesses:0 SboxHits:0 DL1Misses:48 L2Misses:2 TLBMisses:2 Stalls:[17134 12 0 0 16954 1450 0 0 0 0 0 0 0 664 0 162 0]}`,
	"idea/opt/512/4W+": `{Config:4W+ Cycles:9094 Instructions:17135 ClassCounts:[2373 8932 0 2176 0 0 3588 66] Branches:65 Mispredicts:2 Loads:3458 Stores:130 SboxAccesses:0 SboxHits:0 DL1Misses:48 L2Misses:2 TLBMisses:2 Stalls:[17134 12 0 0 16954 1450 0 0 0 0 0 0 0 664 0 162 0]}`,
	"idea/opt/512/8W+": `{Config:8W+ Cycles:8897 Instructions:17135 ClassCounts:[2373 8932 0 2176 0 0 3588 66] Branches:65 Mispredicts:2 Loads:3458 Stores:130 SboxAccesses:0 SboxHits:0 DL1Misses:48 L2Misses:2 TLBMisses:2 Stalls:[17130 20 0 0 51567 252 0 0 0 0 0 0 0 1328 0 879 0]}`,
	"idea/opt/512/DF":  `{Config:DF Cycles:8721 Instructions:17135 ClassCounts:[2373 8932 0 2176 0 0 3588 66] Branches:65 Mispredicts:0 Loads:3458 Stores:130 SboxAccesses:0 SboxHits:0 DL1Misses:0 L2Misses:0 TLBMisses:0 Stalls:[0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0]}`,
}

var goldenRuns = []struct {
	cipher string
	feat   isa.Feature
	fname  string
	sess   int
}{
	{"blowfish", isa.FeatRot, "rot", 1024},
	{"twofish", isa.FeatOpt, "opt", 2048},
	{"rc4", isa.FeatRot, "rot", 1024},
	{"idea", isa.FeatOpt, "opt", 512},
}

func TestGoldenEngineStats(t *testing.T) {
	for _, run := range goldenRuns {
		for _, cfg := range []ooo.Config{ooo.FourWide, ooo.FourWidePlus, ooo.EightWidePlus, ooo.Dataflow} {
			key := fmt.Sprintf("%s/%s/%d/%s", run.cipher, run.fname, run.sess, cfg.Name)
			want, ok := goldenStats[key]
			if !ok {
				t.Fatalf("no golden entry for %s", key)
			}
			st, err := harness.TimeKernel(run.cipher, run.feat, cfg, run.sess, 12345)
			if err != nil {
				t.Fatal(err)
			}
			if got := fmt.Sprintf("%+v", *st); got != want {
				t.Errorf("%s: Stats diverged from the pre-rewrite engine\n got: %s\nwant: %s", key, got, want)
			}
		}
	}
}
