package ooo

import (
	"math"
	"testing"
)

// TestDerivedStatsZeroRuns pins the divide-by-zero audit: every derived
// metric on a zero-value (empty or drained) run returns 0, never NaN or
// Inf, so report renderers need no guards of their own.
func TestDerivedStatsZeroRuns(t *testing.T) {
	var st Stats
	checks := map[string]float64{
		"IPC":            st.IPC(),
		"SboxHitRate":    st.SboxHitRate(),
		"MispredictRate": st.MispredictRate(),
		"Stalls.Share":   st.Stalls.Share(StallExec),
	}
	for name, v := range checks {
		if math.IsNaN(v) || math.IsInf(v, 0) || v != 0 {
			t.Errorf("%s on zero-value Stats = %v, want 0", name, v)
		}
	}

	p := &Profile{PCs: make([]PCProfile, 4)}
	if v := p.Share(2); math.IsNaN(v) || v != 0 {
		t.Errorf("Profile.Share on empty profile = %v, want 0", v)
	}
	if hot := p.Hot(5); len(hot) != 0 {
		t.Errorf("Hot on empty profile returned %v", hot)
	}
	zero := &PCProfile{}
	if c, n := zero.TopStall(); n != 0 || c != StallCommit {
		t.Errorf("TopStall on zero PCProfile = %v/%d", c, n)
	}
}
