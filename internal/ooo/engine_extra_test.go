package ooo

import (
	"testing"

	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

// runProg assembles, emulates and times a small program on cfg.
func runProg(t *testing.T, cfg Config, build func(b *isa.Builder)) *Stats {
	t.Helper()
	b := isa.NewBuilder("t", isa.FeatOpt)
	build(b)
	b.HALT()
	m := emu.New(b.Build(), simmem.New(1<<18), 0x80000)
	e := NewEngine(cfg, MachineStream{M: m})
	e.WarmCode(4096)
	e.WarmData(simmem.Base, 1<<16)
	st, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSerialChainLatency(t *testing.T) {
	// A serial chain of N 1-cycle ops must take ~N cycles even on the
	// dataflow machine: latency is not parallelism.
	const n = 200
	st := runProg(t, Dataflow, func(b *isa.Builder) {
		for i := 0; i < n; i++ {
			b.ADDQI(isa.R1, 1, isa.R1)
		}
	})
	if st.Cycles < n {
		t.Fatalf("serial chain finished in %d cycles (< %d)", st.Cycles, n)
	}
	if st.Cycles > n+40 {
		t.Fatalf("serial chain took %d cycles (overhead too high)", st.Cycles)
	}
}

func TestIndependentOpsParallelize(t *testing.T) {
	// N independent ops on DF take ~constant time.
	const n = 400
	st := runProg(t, Dataflow, func(b *isa.Builder) {
		for i := 0; i < n; i++ {
			b.ADDQI(isa.RZ, 1, isa.Reg(1+i%20))
		}
	})
	if st.Cycles > 64 {
		t.Fatalf("independent ops took %d cycles on the dataflow machine", st.Cycles)
	}
}

func TestIssueWidthBinds(t *testing.T) {
	// With issue width 1 and independent work, cycles >= instructions.
	cfg := Dataflow
	cfg.IssueWidth = 1
	const n = 300
	st := runProg(t, cfg, func(b *isa.Builder) {
		for i := 0; i < n; i++ {
			b.ADDQI(isa.RZ, 1, isa.Reg(1+i%20))
		}
	})
	if st.Cycles < n {
		t.Fatalf("issue width 1 violated: %d cycles for %d instructions", st.Cycles, n)
	}
}

func TestMultiplierLatency(t *testing.T) {
	// A chain of K dependent 64-bit multiplies costs ~7K cycles.
	const k = 50
	st := runProg(t, Dataflow, func(b *isa.Builder) {
		b.LDA(isa.R1, 3, isa.RZ)
		for i := 0; i < k; i++ {
			b.MULQ(isa.R1, isa.R1, isa.R1)
		}
	})
	if st.Cycles < 7*k {
		t.Fatalf("multiply chain too fast: %d cycles", st.Cycles)
	}
}

func TestMulmodFasterThanMul64Chain(t *testing.T) {
	chain := func(op func(b *isa.Builder)) uint64 {
		return runProg(t, Dataflow, func(b *isa.Builder) {
			b.LDA(isa.R1, 3, isa.RZ)
			op(b)
		}).Cycles
	}
	mm := chain(func(b *isa.Builder) {
		for i := 0; i < 50; i++ {
			b.MULMODR(isa.R1, isa.R1, isa.R1)
		}
	})
	mq := chain(func(b *isa.Builder) {
		for i := 0; i < 50; i++ {
			b.MULQ(isa.R1, isa.R1, isa.R1)
		}
	})
	if mm >= mq {
		t.Fatalf("MULMOD chain (%d) not faster than MULQ chain (%d)", mm, mq)
	}
}

func TestMispredictPenaltyCharged(t *testing.T) {
	// A data-dependent unpredictable branch pattern must cost far more
	// than a well-predicted loop of the same instruction count.
	mk := func(pattern bool) uint64 {
		st := runProg(t, FourWide, func(b *isa.Builder) {
			// r1 alternates 0/1 when pattern (alternating taken), or
			// stays 0 (never taken).
			b.MOV(isa.RZ, isa.R1)
			b.LoadImm(isa.R2, 400)
			b.Label("loop")
			if pattern {
				b.XORI(isa.R1, 1, isa.R1)
			} else {
				b.MOV(isa.RZ, isa.R1)
			}
			b.BEQ(isa.R1, "skip")
			b.NOP()
			b.Label("skip")
			b.SUBQI(isa.R2, 1, isa.R2)
			b.BGT(isa.R2, "loop")
		})
		return st.Cycles
	}
	alternating := mk(true)
	steady := mk(false)
	if alternating <= steady {
		t.Fatalf("alternating branch (%d cycles) not slower than steady (%d)", alternating, steady)
	}
}

func TestLSQLimitBinds(t *testing.T) {
	// Many independent loads: shrinking the LSQ must not speed things up.
	prog := func(b *isa.Builder) {
		b.LoadImm(isa.R2, int64(simmem.Base))
		for i := 0; i < 200; i++ {
			b.LDQ(isa.Reg(3+i%16), int64(8*(i%32)), isa.R2)
		}
	}
	small := Dataflow
	small.LSQSize = 2
	big := Dataflow
	stSmall := runProg(t, small, prog)
	stBig := runProg(t, big, prog)
	if stSmall.Cycles < stBig.Cycles {
		t.Fatalf("LSQ=2 (%d cycles) faster than unlimited (%d)", stSmall.Cycles, stBig.Cycles)
	}
}

func TestAliasedSboxOrdersAfterStores(t *testing.T) {
	// An aliased SBOX reading a slot just stored must see ordering costs
	// under the conservative policy but not with perfect aliasing.
	prog := func(b *isa.Builder) {
		base := int64(simmem.Base + 1024)
		b.LoadImm(isa.R1, base)
		b.LDA(isa.R2, 1, isa.RZ)
		for i := 0; i < 100; i++ {
			b.STL(isa.R2, int64(4*(i%256)), isa.R1)
			b.SBOX(0, 0, isa.R1, isa.R3, isa.R4, true)
			b.ADDQI(isa.R3, 3, isa.R3)
			b.ZEXTB(isa.R3, isa.R3)
		}
	}
	conservative := Dataflow
	conservative.PerfectAlias = false
	stC := runProg(t, conservative, prog)
	stP := runProg(t, Dataflow, prog)
	if stC.Cycles < stP.Cycles {
		t.Fatalf("conservative aliasing (%d) faster than perfect (%d)", stC.Cycles, stP.Cycles)
	}
}
