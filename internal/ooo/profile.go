package ooo

import "sort"

// Per-PC cycle profiling. The commit-slot accounting in stats.go answers
// "where did the slots go" per run; this file answers it per static
// instruction. Every slot charged to the run-level StallBreakdown is also
// charged to exactly one PC — retiring slots to the retiring instruction,
// stall slots to the instruction observed at the reorder-buffer head (or,
// when the window is empty, to the next instruction the front end will
// deliver, falling back to the last retired PC once the stream drains) —
// so the per-PC buckets sum to the run-level breakdown exactly. The
// profile is the measurement instrument behind the paper's Figure 5
// argument: it points at the specific rotate chain or table-lookup
// cluster that eats the machine's slot budget.
//
// Profiling is strictly observational (it never changes timing) and costs
// one nil-check per event site when off.

// PCProfile accumulates the per-static-instruction counters of one run.
type PCProfile struct {
	// Retired counts dynamic executions of this PC.
	Retired uint64
	// ExecCycles is the execute-stage occupancy: the sum of the execution
	// latencies of every dynamic instance issued from this PC.
	ExecCycles uint64
	// Slots is the commit-slot breakdown charged to this PC. All zeros on
	// infinite-width machines, which have no slot budget.
	Slots StallBreakdown
}

// SlotTotal is the total number of commit slots charged to this PC.
func (p *PCProfile) SlotTotal() uint64 { return p.Slots.Slots() }

// TopStall returns the dominant non-commit stall cause charged to this
// PC and its slot count (StallCommit and 0 when no stall slots were
// charged).
func (p *PCProfile) TopStall() (StallCause, uint64) {
	best, bestN := StallCommit, uint64(0)
	for c := StallCause(1); c < NumStallCauses; c++ {
		if p.Slots[c] > bestN {
			best, bestN = c, p.Slots[c]
		}
	}
	if bestN == 0 {
		return StallCommit, 0
	}
	return best, bestN
}

// Profile is the per-PC cycle profile of one run: a dense array indexed
// by static instruction index.
type Profile struct {
	Config string
	PCs    []PCProfile
}

// Total sums the per-PC slot buckets. By construction it equals the
// run-level Stats.Stalls exactly (tested in internal/harness).
func (p *Profile) Total() StallBreakdown {
	var t StallBreakdown
	for i := range p.PCs {
		for c, v := range p.PCs[i].Slots {
			t[c] += v
		}
	}
	return t
}

// TotalSlots is the run's whole slot budget as seen by the profile.
func (p *Profile) TotalSlots() uint64 {
	var t uint64
	for i := range p.PCs {
		t += p.PCs[i].SlotTotal()
	}
	return t
}

// TotalRetired sums the per-PC retired counts (== Stats.Instructions).
func (p *Profile) TotalRetired() uint64 {
	var t uint64
	for i := range p.PCs {
		t += p.PCs[i].Retired
	}
	return t
}

// Weight is the ranking metric of one PC: its share of the slot budget,
// or — on machines without a slot budget (infinite issue width) — its
// execute-stage occupancy.
func (p *Profile) Weight(pc int) uint64 {
	if w := p.PCs[pc].SlotTotal(); w != 0 {
		return w
	}
	if p.TotalSlots() == 0 {
		return p.PCs[pc].ExecCycles
	}
	return 0
}

// Hot returns up to n PC indices ranked by descending Weight (ties broken
// by ascending PC, so the ranking is deterministic). PCs with zero weight
// are omitted.
func (p *Profile) Hot(n int) []int {
	// The slot-budget check is hoisted: Weight consults TotalSlots on
	// zero-slot PCs, which is O(code) per call.
	hasSlots := p.TotalSlots() != 0
	weight := func(pc int) uint64 {
		if hasSlots {
			return p.PCs[pc].SlotTotal()
		}
		return p.PCs[pc].ExecCycles
	}
	idx := make([]int, 0, len(p.PCs))
	for i := range p.PCs {
		if weight(i) > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		wa, wb := weight(idx[a]), weight(idx[b])
		if wa != wb {
			return wa > wb
		}
		return idx[a] < idx[b]
	})
	if n > 0 && len(idx) > n {
		idx = idx[:n]
	}
	return idx
}

// Share is the fraction of the run's slot budget charged to pc (0 when
// the run charged no slots).
func (p *Profile) Share(pc int) float64 {
	t := p.TotalSlots()
	if t == 0 {
		return 0
	}
	return float64(p.PCs[pc].SlotTotal()) / float64(t)
}

// EnableProfile attaches a per-PC profile covering a program of codeLen
// static instructions and returns it. Must be called before Run; the
// returned profile is complete once Run returns. Profiling allocates the
// dense PC array once, here, and nothing afterwards.
func (e *Engine) EnableProfile(codeLen int) *Profile {
	p := &Profile{Config: e.cfg.Name, PCs: make([]PCProfile, codeLen)}
	e.profPCs = p.PCs
	// Slot charging is defined only for finite widths, mirroring account().
	e.profSlots = !inf(e.cfg.IssueWidth)
	if e.profSlots && e.commitIdxs == nil {
		e.commitIdxs = make([]int32, 0, e.cfg.IssueWidth)
	}
	return p
}

// blamePC picks the static instruction charged with this cycle's unused
// commit slots — the per-PC counterpart of headBlame. With instructions
// in flight it is the reorder-buffer head; with an empty window it is the
// instruction the front end is about to deliver (the peeked stream
// record), or the last retired PC once the stream has drained.
func (e *Engine) blamePC() int32 {
	if e.headSeq != e.tailSeq {
		return e.at(e.headSeq).idx
	}
	if e.pending != nil {
		return int32(e.pending.Idx)
	}
	return e.lastRetired
}
