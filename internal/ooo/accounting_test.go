package ooo_test

import (
	"testing"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// time runs one session for the accounting tests.
func timeStats(t *testing.T, cipher string, feat isa.Feature, cfg ooo.Config, bytes int, seed int64) *ooo.Stats {
	t.Helper()
	st, err := harness.TimeKernel(cipher, feat, cfg, bytes, seed)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestAccountingInvariants checks the hard accounting identities on every
// finite-width machine model: stall slots sum to exactly Cycles*IssueWidth,
// class counts sum to Instructions, and SBox hits never exceed accesses.
func TestAccountingInvariants(t *testing.T) {
	for _, cfg := range []ooo.Config{ooo.FourWide, ooo.FourWidePlus, ooo.EightWidePlus} {
		for _, cipher := range []string{"rc4", "rijndael"} {
			st := timeStats(t, cipher, isa.FeatOpt, cfg, 1024, 7)
			if got, want := st.Stalls.Slots(), st.Cycles*uint64(cfg.IssueWidth); got != want {
				t.Errorf("%s/%s: stall slots %d != cycles*width %d", cipher, cfg.Name, got, want)
			}
			var classes uint64
			for _, c := range st.ClassCounts {
				classes += c
			}
			if classes != st.Instructions {
				t.Errorf("%s/%s: class counts sum %d != instructions %d", cipher, cfg.Name, classes, st.Instructions)
			}
			if st.SboxHits > st.SboxAccesses {
				t.Errorf("%s/%s: SboxHits %d > SboxAccesses %d", cipher, cfg.Name, st.SboxHits, st.SboxAccesses)
			}
			if st.Stalls.Stalled() != st.Stalls.Slots()-st.Stalls[ooo.StallCommit] {
				t.Errorf("%s/%s: Stalled() inconsistent", cipher, cfg.Name)
			}
		}
	}
}

// TestDataflowHasNoSlotBudget: slot attribution is defined only for
// finite issue widths; the dataflow machine records none.
func TestDataflowHasNoSlotBudget(t *testing.T) {
	st := timeStats(t, "blowfish", isa.FeatOpt, ooo.Dataflow, 512, 7)
	if st.Stalls.Slots() != 0 {
		t.Fatalf("dataflow machine charged %d slots", st.Stalls.Slots())
	}
}

// TestStatsGoldenRC4 pins the exact counters of a small RC4 session on
// the baseline machine. Observability must be zero-cost: any change to
// these numbers means the accounting or tracing layer perturbed timing.
func TestStatsGoldenRC4(t *testing.T) {
	st := timeStats(t, "rc4", isa.FeatRot, ooo.FourWide, 512, 42)
	want := map[string]uint64{
		"Cycles":       3852,
		"Instructions": 10759,
		"Branches":     513,
		"Mispredicts":  2,
		"Loads":        2050,
		"Stores":       1538,
		"DL1Misses":    192,
		"L2Misses":     2,
		"TLBMisses":    2,
	}
	got := map[string]uint64{
		"Cycles":       st.Cycles,
		"Instructions": st.Instructions,
		"Branches":     st.Branches,
		"Mispredicts":  st.Mispredicts,
		"Loads":        st.Loads,
		"Stores":       st.Stores,
		"DL1Misses":    st.DL1Misses,
		"L2Misses":     st.L2Misses,
		"TLBMisses":    st.TLBMisses,
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("golden rc4 session: %s = %d, want %d", k, got[k], w)
		}
	}
	if got, want := st.Stalls.Slots(), st.Cycles*4; got != want {
		t.Errorf("golden rc4 session: slots %d != %d", got, want)
	}
}

// countingTracer records event counts per stage.
type countingTracer struct {
	counts [ooo.NumTraceStages]uint64
	last   uint64
	order  bool // cycle order violated
}

func (c *countingTracer) Event(stage ooo.TraceStage, cycle, seq uint64, pc int, inst *isa.Inst) {
	c.counts[stage]++
	if cycle < c.last {
		c.order = true
	}
	c.last = cycle
}

// TestTracerZeroImpact runs the same session with and without a tracer
// attached; the resulting Stats must be identical, and the tracer must
// see every instruction at every stage.
func TestTracerZeroImpact(t *testing.T) {
	bare := timeStats(t, "rc4", isa.FeatRot, ooo.FourWide, 512, 42)

	tr := &countingTracer{}
	w, err := harness.NewWorkload("rc4", 512, 42)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := harness.TimeWorkloadObserved(w, isa.FeatRot, ooo.FourWide, harness.TracerObserver(tr))
	if err != nil {
		t.Fatal(err)
	}
	if *bare != *traced {
		t.Fatalf("tracing changed the run:\nbare   %+v\ntraced %+v", *bare, *traced)
	}
	for s := ooo.TraceStage(0); s < ooo.NumTraceStages; s++ {
		if tr.counts[s] != bare.Instructions {
			t.Errorf("stage %s saw %d events, want %d", s, tr.counts[s], bare.Instructions)
		}
	}
	if tr.order {
		t.Error("trace events were not in nondecreasing cycle order")
	}
}

// TestStatsDerived exercises the derived-metric helpers and Delta.
func TestStatsDerived(t *testing.T) {
	st := timeStats(t, "blowfish", isa.FeatOpt, ooo.FourWidePlus, 1024, 7)
	if st.SboxAccesses == 0 {
		t.Fatal("optimized blowfish made no SBox accesses")
	}
	if st.SboxMisses() != st.SboxAccesses-st.SboxHits {
		t.Errorf("SboxMisses %d != %d-%d", st.SboxMisses(), st.SboxAccesses, st.SboxHits)
	}
	if r := st.SboxHitRate(); r < 0 || r > 1 {
		t.Errorf("SboxHitRate %f out of range", r)
	}
	if r := st.MispredictRate(); r < 0 || r > 1 {
		t.Errorf("MispredictRate %f out of range", r)
	}
	var zero ooo.Stats
	if z := zero.SboxHitRate(); z != 0 {
		t.Errorf("zero-stats SboxHitRate = %f", z)
	}
	if z := zero.MispredictRate(); z != 0 {
		t.Errorf("zero-stats MispredictRate = %f", z)
	}

	// Delta of a run against its own half-sized prefix-alike: use two
	// runs of different session lengths as interval endpoints.
	prev := timeStats(t, "blowfish", isa.FeatOpt, ooo.FourWidePlus, 512, 7)
	d := st.Delta(prev)
	if d.Cycles != st.Cycles-prev.Cycles || d.Instructions != st.Instructions-prev.Instructions {
		t.Errorf("Delta counters wrong: %+v", d)
	}
	if d.Stalls.Slots() != st.Stalls.Slots()-prev.Stalls.Slots() {
		t.Errorf("Delta stalls wrong: %d", d.Stalls.Slots())
	}
	if d.Config != st.Config {
		t.Errorf("Delta config = %q, want %q", d.Config, st.Config)
	}
	// Self-delta is all zeros.
	s := st.Delta(st)
	if s.Cycles != 0 || s.Instructions != 0 || s.Stalls.Slots() != 0 {
		t.Errorf("self-delta nonzero: %+v", s)
	}
}

// TestModelByName resolves every named model and the DF+ bottlenecks.
func TestModelByName(t *testing.T) {
	for _, name := range []string{"4W", "4W+", "8W+", "DF"} {
		cfg, err := ooo.ModelByName(name)
		if err != nil || cfg.Name != name {
			t.Errorf("ModelByName(%q) = %v, %v", name, cfg.Name, err)
		}
	}
	cfg, err := ooo.ModelByName("DF+Issue")
	if err != nil || cfg.IssueWidth != ooo.FourWide.IssueWidth {
		t.Errorf("ModelByName(DF+Issue) = %+v, %v", cfg, err)
	}
	if _, err := ooo.ModelByName("9W"); err == nil {
		t.Error("ModelByName accepted an unknown model")
	}
}
