package emu

import (
	"testing"

	"cryptoarch/internal/check"
	"cryptoarch/internal/isa"
)

// fuzzProg is a five-instruction program covering every record shape the
// trace decoder distinguishes: arithmetic, load, store, branch, halt.
func fuzzProg() *isa.Program {
	b := isa.NewBuilder("fuzzprog", isa.FeatRot)
	b.ADDQI(isa.RA0, 1, isa.RA0) // 0: arith
	b.LDQ(isa.RA1, 0, isa.RA3)   // 1: load
	b.STQ(isa.RA1, 0, isa.RA3)   // 2: store
	b.Label("loop")
	b.BNE(isa.RA0, "loop") // 3: branch
	b.HALT()               // 4
	return b.Build()
}

// FuzzTraceDecode throws arbitrary packed records at Trace.Validate and
// the replay decoder: Validate must reject every structurally broken
// record, and every record it accepts must replay without panicking and
// with fields consistent with the static program.
func FuzzTraceDecode(f *testing.F) {
	prog := fuzzProg()
	f.Add(uint64(0x20000), uint32(1), uint32(0)) // well-formed load
	f.Add(uint64(0), uint32(3), uint32(7))       // taken branch
	f.Add(uint64(5), uint32(99), uint32(1))      // PC out of range
	f.Add(uint64(1), uint32(0), uint32(0))       // address on an arith op
	f.Fuzz(func(t *testing.T, addr uint64, idx uint32, br uint32) {
		tr := &Trace{Prog: prog, Recs: []TraceRec{{Addr: addr, Idx: idx, Br: br}}}
		err := tr.Validate()
		if int(idx) >= len(prog.Code) {
			if err == nil {
				t.Fatalf("Validate accepted out-of-range PC %d", idx)
			}
			if _, ok := check.AsViolation(err); !ok {
				t.Fatalf("Validate error %v is not a check.Violation", err)
			}
			return
		}
		if err != nil {
			return // structurally rejected; nothing to replay
		}
		s := tr.Stream()
		r, ok := s.Next()
		if !ok {
			t.Fatal("validated stream delivered no record")
		}
		if r.Idx != int(idx) || r.Inst != &prog.Code[idx] {
			t.Fatalf("decoded Idx/Inst mismatch: %d vs %d", r.Idx, idx)
		}
		p := isa.P(r.Inst.Op)
		if p.Mem && (r.Addr != addr || r.Size != p.Size) {
			t.Fatalf("memory record decoded addr=%#x size=%d, want %#x/%d", r.Addr, r.Size, addr, p.Size)
		}
		if !p.Mem && r.Addr != 0 {
			t.Fatalf("non-memory record decoded addr %#x", r.Addr)
		}
		if p.Branch && (r.Taken != (br&1 != 0) || r.Targ != int(br>>1)) {
			t.Fatalf("branch record decoded taken=%v targ=%d from br=%#x", r.Taken, r.Targ, br)
		}
		if _, ok := s.Next(); ok {
			t.Fatal("stream delivered a second record")
		}
	})
}

// FuzzPackRoundTrip drives live records through pack and back through the
// replay decoder, asserting the dynamic facts survive unchanged and the
// packed form passes Validate.
func FuzzPackRoundTrip(f *testing.F) {
	prog := fuzzProg()
	f.Add(1, uint64(0x20010), true, 2)
	f.Add(3, uint64(0), false, 0)
	f.Add(0, uint64(0), false, 0)
	f.Fuzz(func(t *testing.T, idx int, addr uint64, taken bool, targ int) {
		n := len(prog.Code)
		if idx < 0 || idx >= n {
			return
		}
		inst := &prog.Code[idx]
		p := isa.P(inst.Op)
		r := Rec{Idx: idx, Inst: inst}
		if p.Mem {
			r.Addr, r.Size = addr, p.Size
		}
		if p.Branch {
			if targ < 0 || targ >= n {
				return
			}
			r.Taken, r.Targ = taken, targ
		}
		pr := pack(&r)
		tr := &Trace{Prog: prog, Recs: []TraceRec{pr}}
		if err := tr.Validate(); err != nil {
			t.Fatalf("packed live record fails Validate: %v", err)
		}
		got, ok := tr.Stream().Next()
		if !ok {
			t.Fatal("round-trip stream empty")
		}
		if got.Idx != r.Idx || got.Inst != r.Inst || got.Addr != r.Addr ||
			got.Size != r.Size || got.Taken != r.Taken || got.Targ != r.Targ {
			t.Fatalf("round trip changed the record: %+v vs %+v", got, r)
		}
	})
}

// TestChecksumRecs pins the checksum's sensitivity: any single-bit flip
// in any record field changes the FNV-1a sum, and equal traces agree.
func TestChecksumRecs(t *testing.T) {
	recs := []TraceRec{
		{Addr: 0x20000, Idx: 1},
		{Addr: 0, Idx: 3, Br: 7},
		{Addr: 0x300010, Idx: 2},
	}
	sum := ChecksumRecs(recs)
	cp := append([]TraceRec(nil), recs...)
	if ChecksumRecs(cp) != sum {
		t.Fatal("checksum differs between equal traces")
	}
	in := check.NewInjector(42)
	for trial := 0; trial < 64; trial++ {
		i := in.Intn(len(cp))
		switch in.Intn(3) {
		case 0:
			cp[i].Addr, _ = in.FlipBit64(cp[i].Addr)
		case 1:
			v, _ := in.FlipBit64(uint64(cp[i].Idx) | uint64(cp[i].Br)<<32)
			cp[i].Idx, cp[i].Br = uint32(v), uint32(v>>32)
		case 2:
			cp[i].Br ^= 1 << uint(in.Intn(32))
		}
		if ChecksumRecs(cp) == sum {
			t.Fatalf("trial %d: bit flip not reflected in checksum", trial)
		}
		copy(cp, recs) // restore
	}
	if ChecksumRecs(nil) != ChecksumRecs([]TraceRec{}) {
		t.Fatal("empty-trace checksums disagree")
	}
}
