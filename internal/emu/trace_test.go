package emu_test

import (
	"testing"

	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
)

// newPair builds two identical machines over a real kernel so one can be
// recorded and the other stepped live for comparison.
func newPair(t testing.TB, name string, feat isa.Feature, session int) (*emu.Machine, *emu.Machine) {
	t.Helper()
	k, err := kernels.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	key := make([]byte, 16)
	iv := make([]byte, 8)
	pt := make([]byte, session)
	for i := range pt {
		pt[i] = byte(i*7 + 1)
	}
	a, _, err := kernels.NewRun(k, feat, key, iv, pt)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := kernels.NewRun(k, feat, key, iv, pt)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// sameRec compares every Rec field the timing model consumes. Val is
// deliberately excluded: traces do not record result values (only the
// value-prediction experiments need them, and those run live).
// The two machines hold independently built (identical) programs, so Inst
// is compared by value, not by pointer.
func sameRec(a, b *emu.Rec) bool {
	return a.Idx == b.Idx && *a.Inst == *b.Inst && a.Addr == b.Addr &&
		a.Size == b.Size && a.Taken == b.Taken && a.Targ == b.Targ
}

// TestReplayMatchesLive records a trace and checks the replayed record
// sequence is field-identical to stepping a fresh machine.
func TestReplayMatchesLive(t *testing.T) {
	for _, name := range []string{"blowfish", "rc4", "idea"} {
		t.Run(name, func(t *testing.T) {
			rm, lm := newPair(t, name, isa.FeatRot, 256)
			tr, done := emu.Record(rm, 0, nil)
			if !done {
				t.Fatal("unbounded Record reported an incomplete run")
			}
			if len(tr.Recs) == 0 {
				t.Fatal("empty trace")
			}
			if tr.Bytes() != emu.TraceRecBytes*len(tr.Recs) {
				t.Fatalf("Bytes() = %d, want %d", tr.Bytes(), emu.TraceRecBytes*len(tr.Recs))
			}
			s := tr.Stream()
			if s.InstCount() != len(tr.Recs) {
				t.Fatalf("InstCount = %d, want %d", s.InstCount(), len(tr.Recs))
			}
			n := 0
			for {
				lr := lm.Step()
				rr, ok := s.Next()
				if lr == nil || !ok {
					if lr != nil || ok {
						t.Fatalf("length mismatch at %d: live ended=%v replay ended=%v", n, lr == nil, !ok)
					}
					break
				}
				if !sameRec(lr, rr) {
					t.Fatalf("rec %d mismatch:\nlive   %+v\nreplay %+v", n, *lr, *rr)
				}
				n++
			}
			if n != len(tr.Recs) {
				t.Fatalf("replayed %d recs, trace holds %d", n, len(tr.Recs))
			}
		})
	}
}

// TestPartialRecordResume records only a prefix and checks Resume delivers
// the identical full stream (replayed prefix + live continuation).
func TestPartialRecordResume(t *testing.T) {
	rm, lm := newPair(t, "blowfish", isa.FeatRot, 256)
	const max = 1000
	tr, done := emu.Record(rm, max, nil)
	if done {
		t.Fatal("expected a truncated record for this session length")
	}
	if len(tr.Recs) != max {
		t.Fatalf("prefix length %d, want %d", len(tr.Recs), max)
	}
	s := tr.Resume(rm)
	n := 0
	for {
		lr := lm.Step()
		rr, ok := s.Next()
		if lr == nil || !ok {
			if lr != nil || ok {
				t.Fatalf("length mismatch at %d", n)
			}
			break
		}
		if !sameRec(lr, rr) {
			t.Fatalf("rec %d mismatch:\nlive   %+v\nresume %+v", n, *lr, *rr)
		}
		n++
	}
	if n <= max {
		t.Fatalf("resume delivered only %d recs, expected more than the %d-rec prefix", n, max)
	}
}

// TestRecordReusesBuffer pins the record-into-reusable-buffer contract:
// a buffer with enough capacity is not reallocated.
func TestRecordReusesBuffer(t *testing.T) {
	rm, _ := newPair(t, "rc4", isa.FeatNoRot, 64)
	tr, _ := emu.Record(rm, 0, nil)
	buf := tr.Recs[:0]
	rm2, _ := newPair(t, "rc4", isa.FeatNoRot, 64)
	tr2, done := emu.Record(rm2, 0, buf)
	if !done {
		t.Fatal("second record incomplete")
	}
	if &tr2.Recs[0] != &tr.Recs[0] {
		t.Fatal("Record reallocated a buffer that had sufficient capacity")
	}
}
