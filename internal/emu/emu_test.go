package emu

import (
	"testing"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

func run(t *testing.T, build func(b *isa.Builder)) *Machine {
	t.Helper()
	b := isa.NewBuilder("t", isa.FeatOpt)
	build(b)
	b.HALT()
	m := New(b.Build(), simmem.New(1<<16), 0x12000)
	m.Run(nil)
	return m
}

func TestArithmetic(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		b.LDA(isa.R1, 100, isa.RZ)
		b.LDA(isa.R2, -3, isa.RZ)
		b.ADDQ(isa.R1, isa.R2, isa.R3)   // 97
		b.SUBQI(isa.R1, 30, isa.R4)      // 70
		b.MULQ(isa.R1, isa.R1, isa.R5)   // 10000
		b.CMPULT(isa.R2, isa.R1, isa.R6) // -3 unsigned is huge: 0
		b.CMPLT(isa.R2, isa.R1, isa.R7)  // signed: 1
	})
	if m.R[3] != 97 || m.R[4] != 70 || m.R[5] != 10000 {
		t.Fatalf("arith: %d %d %d", m.R[3], m.R[4], m.R[5])
	}
	if m.R[6] != 0 || m.R[7] != 1 {
		t.Fatalf("compares: %d %d", m.R[6], m.R[7])
	}
}

func TestLongwordOpsZeroExtend(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		b.LoadImm32(isa.R1, 0xffffffff)
		b.ADDLI(isa.R1, 1, isa.R2)  // wraps to 0
		b.SUBLI(isa.R2, 1, isa.R3)  // wraps to 0xffffffff, zero-extended
		b.SLLLI(isa.R1, 4, isa.R4)  // 0xfffffff0
		b.SRLLI(isa.R1, 28, isa.R5) // 0xf
	})
	if m.R[2] != 0 || m.R[3] != 0xffffffff || m.R[4] != 0xfffffff0 || m.R[5] != 0xf {
		t.Fatalf("longword: %#x %#x %#x %#x", m.R[2], m.R[3], m.R[4], m.R[5])
	}
}

func TestMemoryAndByteOps(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		b.LoadImm(isa.R1, simmem.Base+256)
		b.LoadImm32(isa.R2, 0xdeadbeef)
		b.STL(isa.R2, 0, isa.R1)
		b.LDB(isa.R3, 3, isa.R1)   // 0xde
		b.LDW(isa.R4, 0, isa.R1)   // 0xbeef
		b.EXTBI(isa.R2, 2, isa.R5) // 0xad
		b.INSBI(isa.R5, 7, isa.R6) // 0xad << 56
		b.ZEXTW(isa.R2, isa.R7)    // 0xbeef
	})
	if m.R[3] != 0xde || m.R[4] != 0xbeef || m.R[5] != 0xad {
		t.Fatalf("bytes: %#x %#x %#x", m.R[3], m.R[4], m.R[5])
	}
	if m.R[6] != 0xad<<56 || m.R[7] != 0xbeef {
		t.Fatalf("insert/zext: %#x %#x", m.R[6], m.R[7])
	}
}

func TestControlFlow(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		// Sum 1..10 with a loop, then double it via a subroutine.
		b.LDA(isa.R1, 10, isa.RZ)
		b.MOV(isa.RZ, isa.R2)
		b.Label("loop")
		b.ADDQ(isa.R2, isa.R1, isa.R2)
		b.SUBQI(isa.R1, 1, isa.R1)
		b.BGT(isa.R1, "loop")
		b.BSR("double")
		b.BR("end")
		b.Label("double")
		b.ADDQ(isa.R2, isa.R2, isa.R2)
		b.RET()
		b.Label("end")
	})
	if m.R[2] != 110 {
		t.Fatalf("sum doubled = %d, want 110", m.R[2])
	}
}

func TestRZIsImmutableZero(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		b.LDA(isa.RZ, 123, isa.RZ)
		b.ADDQ(isa.RZ, isa.RZ, isa.R1)
	})
	if m.R[isa.RZ] != 0 || m.R[1] != 0 {
		t.Fatal("R31 must stay zero")
	}
}

func TestCryptoOps(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		b.LoadImm32(isa.R1, 0x80000001)
		b.ROLLI(isa.R1, 1, isa.R2) // 0x00000003
		b.RORLI(isa.R1, 1, isa.R3) // 0xc0000000
		b.LoadImm32(isa.R4, 0xff)
		b.ROLXL(isa.R4, 8, isa.R2) // r2 ^= 0xff00 -> 0xff03
		b.LDA(isa.R5, 3, isa.RZ)
		b.LDA(isa.R6, 5, isa.RZ)
		b.MULMODR(isa.R5, isa.R6, isa.R7) // 15
	})
	if m.R[2] != 0xff03 || m.R[3] != 0xc0000000 || m.R[7] != 15 {
		t.Fatalf("crypto ops: %#x %#x %d", m.R[2], m.R[3], m.R[7])
	}
}

func TestSboxInstruction(t *testing.T) {
	b := isa.NewBuilder("sbox", isa.FeatOpt)
	base := uint64(simmem.Base + 1024) // 1KB aligned
	b.LoadImm(isa.R1, int64(base))
	b.LoadImm32(isa.R2, 0x0000bb00) // byte 1 = 0xbb
	b.SBOX(0, 1, isa.R1, isa.R2, isa.R3, false)
	b.HALT()
	mem := simmem.New(1 << 16)
	mem.Store(base+0xbb*4, 4, 0xcafe1234)
	m := New(b.Build(), mem, 0x12000)
	m.Run(nil)
	if m.R[3] != 0xcafe1234 {
		t.Fatalf("SBOX loaded %#x", m.R[3])
	}
}

func TestTraceRecords(t *testing.T) {
	b := isa.NewBuilder("trace", isa.FeatRot)
	b.LDA(isa.R1, 7, isa.RZ)
	b.LoadImm(isa.R2, simmem.Base)
	b.STQ(isa.R1, 8, isa.R2)
	b.BEQ(isa.R1, "skip")
	b.NOP()
	b.Label("skip")
	b.HALT()
	m := New(b.Build(), simmem.New(1<<13), 0x12000)
	var recs []Rec
	m.Run(func(r *Rec) { recs = append(recs, *r) })
	// LDA, LDAH (LoadImm), STQ, BEQ, NOP, HALT.
	if len(recs) != 6 {
		t.Fatalf("expected 6 committed instructions, got %d", len(recs))
	}
	if recs[2].Addr != simmem.Base+8 || recs[2].Size != 8 {
		t.Fatalf("store record wrong: %+v", recs[2])
	}
	if recs[3].Taken {
		t.Fatal("BEQ on nonzero must be not-taken")
	}
}
