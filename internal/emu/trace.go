package emu

import (
	"fmt"

	"cryptoarch/internal/check"
	"cryptoarch/internal/isa"
)

// This file is the record/replay layer between the functional emulator and
// the timing model. The paper's methodology is replay-heavy: one dynamic
// instruction stream (per cipher x variant x session x seed) is timed on up
// to five machine models, so the stream is worth recording once, in a
// compact pointer-free encoding, and replaying many times without paying
// for functional execution again.

// Version identifies the functional-emulation semantics generation, the
// emu-side analogue of ooo.EngineVersion. The persistent trace store hashes
// it into every trace key: bump it on any change to recorded-stream
// semantics (instruction behavior, record packing, commit-path selection)
// so traces recorded by older emulators become unreachable instead of
// silently replaying stale dynamics.
const Version = "emu-v1"

// TraceRec is one packed retired instruction: 16 bytes, no pointers. Only
// the dynamic facts the timing model consumes are stored — the effective
// address of memory operations and the outcome of branches. Everything
// else about the instruction is static and recovered from the program by
// index at replay time.
type TraceRec struct {
	Addr uint64 // effective address (memory operations; else 0)
	Idx  uint32 // static instruction index (PC)
	Br   uint32 // branches: target<<1 | taken; else 0
}

// TraceRecBytes is the packed size of one record.
const TraceRecBytes = 16

// Trace is a recorded committed-path instruction stream: the program it
// was recorded from plus one packed record per retired instruction. A
// Trace is immutable after Record returns and safe for any number of
// concurrent ReplayStreams.
type Trace struct {
	Prog *isa.Program
	Recs []TraceRec
}

// Bytes is the retained size of the packed records.
func (t *Trace) Bytes() int { return TraceRecBytes * len(t.Recs) }

// FNV-1a 64-bit parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// ChecksumRecs computes the FNV-1a 64-bit checksum of the packed records,
// hashing the 16-byte little-endian encoding of each record. The trace
// cache stores this at record time and re-verifies it on every replay
// request, so a bit flipped in a retained trace (memory corruption, a
// stray write through a stale slice) is caught before it silently skews a
// timing run.
func ChecksumRecs(recs []TraceRec) uint64 {
	h := fnvOffset
	for i := range recs {
		r := &recs[i]
		for _, w := range [2]uint64{r.Addr, uint64(r.Idx) | uint64(r.Br)<<32} {
			for b := 0; b < 8; b++ {
				h ^= w >> (8 * b) & 0xff
				h *= fnvPrime
			}
		}
	}
	return h
}

// Checksum is ChecksumRecs over the trace's records.
func (t *Trace) Checksum() uint64 { return ChecksumRecs(t.Recs) }

// Validate structurally checks the trace against its program: every
// record must index a real instruction, branch outcomes may only appear
// on branches, and branch targets must stay inside the program. A valid
// trace is safe to replay; Validate is the decode-side guard fuzzed in
// fuzz_test.go and is how corrupted traces fail loudly instead of
// replaying garbage.
func (t *Trace) Validate() error {
	n := len(t.Prog.Code)
	for i := range t.Recs {
		pr := &t.Recs[i]
		if int(pr.Idx) >= n {
			return check.Violationf("trace-decode", 0,
				"record %d: PC %d outside program %s [0,%d)", i, pr.Idx, t.Prog.Name, n)
		}
		p := isa.P(t.Prog.Code[pr.Idx].Op)
		if pr.Br != 0 {
			if !p.Branch {
				return check.Violationf("trace-decode", 0,
					"record %d: branch outcome %#x on non-branch %s at PC %d", i, pr.Br, p.Name, pr.Idx)
			}
			if targ := int(pr.Br >> 1); targ >= n {
				return check.Violationf("trace-decode", 0,
					"record %d: branch target %d outside program %s [0,%d)", i, targ, t.Prog.Name, n)
			}
		}
		if pr.Addr != 0 && !p.Mem {
			return check.Violationf("trace-decode", 0,
				"record %d: effective address %#x on non-memory %s at PC %d", i, pr.Addr, p.Name, pr.Idx)
		}
	}
	return nil
}

// pack encodes the dynamic half of one retired-instruction record.
func pack(r *Rec) TraceRec {
	pr := TraceRec{Addr: r.Addr, Idx: uint32(r.Idx)}
	if r.Taken || r.Targ != 0 {
		if uint(r.Targ) > 1<<30 {
			panic(fmt.Sprintf("emu: branch target %d not packable", r.Targ))
		}
		pr.Br = uint32(r.Targ) << 1
		if r.Taken {
			pr.Br |= 1
		}
	}
	return pr
}

// Record steps m until HALT or until max instructions have been recorded
// (max <= 0 means unbounded), appending packed records to buf (whose
// capacity is reused). It returns the trace and whether the program ran to
// completion. On false the trace is a prefix and m is positioned exactly
// after the last recorded instruction, so Resume can continue it live.
// A machine that faults (m.Err() != nil — budget exceeded, runaway PC)
// reports complete == false; callers must consult m.Err() before retaining
// the truncated trace.
func Record(m *Machine, max int, buf []TraceRec) (*Trace, bool) {
	for {
		if max > 0 && len(buf) >= max {
			return &Trace{Prog: m.Prog, Recs: buf}, false
		}
		r := m.Step()
		if r == nil {
			return &Trace{Prog: m.Prog, Recs: buf}, m.Err() == nil
		}
		buf = append(buf, pack(r))
	}
}

// ReplayStream decodes a Trace back into the retired-instruction records
// the timing model consumes. It satisfies ooo.Stream. The returned record
// is a reused scratch (the same contract as Machine.Step); its Val field
// is always zero — value-prediction experiments must run the live
// emulator.
type ReplayStream struct {
	prog *isa.Program
	recs []TraceRec
	pos  int
	rec  Rec
}

// Stream starts a fresh replay of the trace.
func (t *Trace) Stream() *ReplayStream {
	return &ReplayStream{prog: t.Prog, recs: t.Recs}
}

// StreamAt starts a replay of the half-open record window [start, end).
// Chunked replay uses it to hand each worker its own window (warmup prefix
// plus measured body) over the shared immutable record slab. Bounds are
// clamped to the trace; an empty or inverted window yields an immediately
// exhausted stream.
func (t *Trace) StreamAt(start, end int) *ReplayStream {
	if start < 0 {
		start = 0
	}
	if end > len(t.Recs) {
		end = len(t.Recs)
	}
	if start > end {
		start = end
	}
	return &ReplayStream{prog: t.Prog, recs: t.Recs[start:end]}
}

// InstCount is the total number of instructions the stream will deliver;
// the timing engine uses it to pre-size its in-flight ring.
func (s *ReplayStream) InstCount() int { return len(s.recs) }

// Next implements the stream contract: the next retired instruction, or
// false at end. The pointer is valid until the following Next call.
func (s *ReplayStream) Next() (*Rec, bool) {
	if s.pos >= len(s.recs) {
		return nil, false
	}
	pr := &s.recs[s.pos]
	s.pos++
	inst := &s.prog.Code[pr.Idx]
	r := &s.rec
	*r = Rec{Idx: int(pr.Idx), Inst: inst}
	p := isa.P(inst.Op)
	if p.Mem {
		r.Addr, r.Size = pr.Addr, p.Size
	} else if p.Branch {
		r.Taken = pr.Br&1 != 0
		r.Targ = int(pr.Br >> 1)
	}
	return r, true
}

// ResumeStream replays a recorded prefix and then continues stepping the
// machine the prefix was recorded from — the overflow path for sessions
// too long to be worth retaining as a full trace. The emulation still runs
// exactly once; the stream is single-use.
type ResumeStream struct {
	rs ReplayStream
	m  *Machine
}

// Resume builds a stream over the (partial) trace followed by live
// execution of m, which must be the machine Record stopped in.
func (t *Trace) Resume(m *Machine) *ResumeStream {
	return &ResumeStream{rs: ReplayStream{prog: t.Prog, recs: t.Recs}, m: m}
}

// Next implements the stream contract.
func (s *ResumeStream) Next() (*Rec, bool) {
	if r, ok := s.rs.Next(); ok {
		return r, true
	}
	r := s.m.Step()
	if r == nil {
		return nil, false
	}
	return r, true
}

// Err surfaces a terminal fault of the live machine behind the stream, so
// a budget-exceeded resume run fails the timing engine instead of
// silently truncating the session.
func (s *ResumeStream) Err() error { return s.m.Err() }

// ResumeAt builds a stream that replays records [start, len) of the trace
// and then continues live on m, which must be positioned exactly after the
// trace's last record (as Record leaves it, or a Snapshot of that machine
// materialized). This is the chunk-addressable form of Resume: the final
// chunk of an oversized trace replays only its own window of the recorded
// prefix before going live.
func (t *Trace) ResumeAt(m *Machine, start int) *ResumeStream {
	if start < 0 {
		start = 0
	}
	if start > len(t.Recs) {
		start = len(t.Recs)
	}
	return &ResumeStream{rs: ReplayStream{prog: t.Prog, recs: t.Recs[start:]}, m: m}
}
