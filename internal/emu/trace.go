package emu

import (
	"fmt"

	"cryptoarch/internal/isa"
)

// This file is the record/replay layer between the functional emulator and
// the timing model. The paper's methodology is replay-heavy: one dynamic
// instruction stream (per cipher x variant x session x seed) is timed on up
// to five machine models, so the stream is worth recording once, in a
// compact pointer-free encoding, and replaying many times without paying
// for functional execution again.

// TraceRec is one packed retired instruction: 16 bytes, no pointers. Only
// the dynamic facts the timing model consumes are stored — the effective
// address of memory operations and the outcome of branches. Everything
// else about the instruction is static and recovered from the program by
// index at replay time.
type TraceRec struct {
	Addr uint64 // effective address (memory operations; else 0)
	Idx  uint32 // static instruction index (PC)
	Br   uint32 // branches: target<<1 | taken; else 0
}

// TraceRecBytes is the packed size of one record.
const TraceRecBytes = 16

// Trace is a recorded committed-path instruction stream: the program it
// was recorded from plus one packed record per retired instruction. A
// Trace is immutable after Record returns and safe for any number of
// concurrent ReplayStreams.
type Trace struct {
	Prog *isa.Program
	Recs []TraceRec
}

// Bytes is the retained size of the packed records.
func (t *Trace) Bytes() int { return TraceRecBytes * len(t.Recs) }

// pack encodes the dynamic half of one retired-instruction record.
func pack(r *Rec) TraceRec {
	pr := TraceRec{Addr: r.Addr, Idx: uint32(r.Idx)}
	if r.Taken || r.Targ != 0 {
		if uint(r.Targ) > 1<<30 {
			panic(fmt.Sprintf("emu: branch target %d not packable", r.Targ))
		}
		pr.Br = uint32(r.Targ) << 1
		if r.Taken {
			pr.Br |= 1
		}
	}
	return pr
}

// Record steps m until HALT or until max instructions have been recorded
// (max <= 0 means unbounded), appending packed records to buf (whose
// capacity is reused). It returns the trace and whether the program ran to
// completion. On false the trace is a prefix and m is positioned exactly
// after the last recorded instruction, so Resume can continue it live.
func Record(m *Machine, max int, buf []TraceRec) (*Trace, bool) {
	for {
		if max > 0 && len(buf) >= max {
			return &Trace{Prog: m.Prog, Recs: buf}, false
		}
		r := m.Step()
		if r == nil {
			return &Trace{Prog: m.Prog, Recs: buf}, true
		}
		buf = append(buf, pack(r))
	}
}

// ReplayStream decodes a Trace back into the retired-instruction records
// the timing model consumes. It satisfies ooo.Stream. The returned record
// is a reused scratch (the same contract as Machine.Step); its Val field
// is always zero — value-prediction experiments must run the live
// emulator.
type ReplayStream struct {
	prog *isa.Program
	recs []TraceRec
	pos  int
	rec  Rec
}

// Stream starts a fresh replay of the trace.
func (t *Trace) Stream() *ReplayStream {
	return &ReplayStream{prog: t.Prog, recs: t.Recs}
}

// InstCount is the total number of instructions the stream will deliver;
// the timing engine uses it to pre-size its in-flight ring.
func (s *ReplayStream) InstCount() int { return len(s.recs) }

// Next implements the stream contract: the next retired instruction, or
// false at end. The pointer is valid until the following Next call.
func (s *ReplayStream) Next() (*Rec, bool) {
	if s.pos >= len(s.recs) {
		return nil, false
	}
	pr := &s.recs[s.pos]
	s.pos++
	inst := &s.prog.Code[pr.Idx]
	r := &s.rec
	*r = Rec{Idx: int(pr.Idx), Inst: inst}
	p := isa.P(inst.Op)
	if p.Mem {
		r.Addr, r.Size = pr.Addr, p.Size
	} else if p.Branch {
		r.Taken = pr.Br&1 != 0
		r.Targ = int(pr.Br >> 1)
	}
	return r, true
}

// ResumeStream replays a recorded prefix and then continues stepping the
// machine the prefix was recorded from — the overflow path for sessions
// too long to be worth retaining as a full trace. The emulation still runs
// exactly once; the stream is single-use.
type ResumeStream struct {
	rs ReplayStream
	m  *Machine
}

// Resume builds a stream over the (partial) trace followed by live
// execution of m, which must be the machine Record stopped in.
func (t *Trace) Resume(m *Machine) *ResumeStream {
	return &ResumeStream{rs: ReplayStream{prog: t.Prog, recs: t.Recs}, m: m}
}

// Next implements the stream contract.
func (s *ResumeStream) Next() (*Rec, bool) {
	if r, ok := s.rs.Next(); ok {
		return r, true
	}
	r := s.m.Step()
	if r == nil {
		return nil, false
	}
	return r, true
}
