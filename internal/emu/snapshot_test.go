package emu_test

import (
	"testing"

	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
)

// refTrace records the complete blowfish stream once for comparison.
func refTrace(t testing.TB, session int) *emu.Trace {
	t.Helper()
	rm, _ := newPair(t, "blowfish", isa.FeatRot, session)
	tr, done := emu.Record(rm, 0, nil)
	if !done {
		t.Fatal("reference record incomplete")
	}
	return tr
}

// TestStreamAt pins the chunk-window contract: StreamAt(s,e) delivers
// exactly the records of the full stream's [s,e) window, and bounds are
// clamped rather than panicking.
func TestStreamAt(t *testing.T) {
	tr := refTrace(t, 128)
	n := len(tr.Recs)
	full := make([]emu.Rec, 0, n)
	fs := tr.Stream()
	for {
		r, ok := fs.Next()
		if !ok {
			break
		}
		full = append(full, *r)
	}
	windows := [][2]int{{0, n}, {0, 1}, {1, n}, {n / 3, 2 * n / 3}, {n - 1, n}, {n, n}}
	for _, w := range windows {
		s := tr.StreamAt(w[0], w[1])
		if got, want := s.InstCount(), w[1]-w[0]; got != want {
			t.Fatalf("window %v: InstCount %d, want %d", w, got, want)
		}
		for i := w[0]; i < w[1]; i++ {
			r, ok := s.Next()
			if !ok {
				t.Fatalf("window %v: stream ended at %d", w, i)
			}
			if !sameRec(r, &full[i]) {
				t.Fatalf("window %v rec %d mismatch:\nwindow %+v\nfull   %+v", w, i, *r, full[i])
			}
		}
		if _, ok := s.Next(); ok {
			t.Fatalf("window %v: stream overruns its end", w)
		}
	}
	// Clamped forms: negative start, end past the trace, inverted window.
	if tr.StreamAt(-5, n+5).InstCount() != n {
		t.Fatal("out-of-range window not clamped to the trace")
	}
	if tr.StreamAt(10, 5).InstCount() != 0 {
		t.Fatal("inverted window not clamped to empty")
	}
}

// TestSnapshotMaterialize pins that a snapshot taken mid-run yields
// machines that continue exactly like the original — and that the
// original machine, and machines materialized twice from one snapshot,
// are all mutually independent.
func TestSnapshotMaterialize(t *testing.T) {
	ref := refTrace(t, 128)
	n := len(ref.Recs)
	p := n / 2

	m, _ := newPair(t, "blowfish", isa.FeatRot, 128)
	for i := 0; i < p; i++ {
		if m.Step() == nil {
			t.Fatalf("machine halted at %d, before boundary %d", i, p)
		}
	}
	snap := m.Snapshot()
	if snap.Icount() != uint64(p) {
		t.Fatalf("snapshot Icount %d, want %d", snap.Icount(), p)
	}

	// The original and two independent materializations must all deliver
	// the identical suffix.
	mats := []*emu.Machine{m, snap.Materialize(), snap.Materialize()}
	for mi, mm := range mats {
		want := ref.StreamAt(p, n)
		i := p
		for {
			wr, ok := want.Next()
			lr := mm.Step()
			if !ok || lr == nil {
				if ok || lr != nil {
					t.Fatalf("machine %d: length mismatch at %d", mi, i)
				}
				break
			}
			if !sameRec(lr, wr) {
				t.Fatalf("machine %d rec %d mismatch:\nlive %+v\nref  %+v", mi, i, *lr, *wr)
			}
			i++
		}
		if err := mm.Err(); err != nil {
			t.Fatalf("machine %d faulted: %v", mi, err)
		}
	}
}

// TestResumeAt pins the chunk-addressable resume path: a machine
// materialized at the end of a recorded prefix can resume from any start
// offset inside the prefix and deliver exactly the reference stream from
// that offset to program end.
func TestResumeAt(t *testing.T) {
	ref := refTrace(t, 128)
	n := len(ref.Recs)

	rm, _ := newPair(t, "blowfish", isa.FeatRot, 128)
	prefix := n / 2
	tr, done := emu.Record(rm, prefix, nil)
	if done || len(tr.Recs) != prefix {
		t.Fatalf("prefix record: done=%v len=%d want %d", done, len(tr.Recs), prefix)
	}
	snap := rm.Snapshot()

	for _, start := range []int{0, 1, prefix / 2, prefix - 1, prefix} {
		s := tr.ResumeAt(snap.Materialize(), start)
		want := ref.StreamAt(start, n)
		i := start
		for {
			wr, ok := want.Next()
			rr, rok := s.Next()
			if !ok || !rok {
				if ok != rok {
					t.Fatalf("start %d: length mismatch at %d (ref ended=%v resume ended=%v)", start, i, !ok, !rok)
				}
				break
			}
			if !sameRec(rr, wr) {
				t.Fatalf("start %d rec %d mismatch:\nresume %+v\nref    %+v", start, i, *rr, *wr)
			}
			i++
		}
		if err := s.Err(); err != nil {
			t.Fatalf("start %d: resume faulted: %v", start, err)
		}
	}
}

// FuzzSnapshotResume drives mid-trace snapshot/resume at arbitrary chunk
// boundaries: step a live machine to an arbitrary record index, snapshot,
// materialize, and require the materialized machine's continuation to be
// record-identical to the golden full trace — while the original machine,
// stepped on past the snapshot, stays unperturbed.
func FuzzSnapshotResume(f *testing.F) {
	ref := refTrace(f, 64)
	n := len(ref.Recs)
	f.Add(uint16(0))
	f.Add(uint16(1))
	f.Add(uint16(n / 2))
	f.Add(uint16(n - 1))
	f.Add(uint16(n))
	f.Add(uint16(65535))
	f.Fuzz(func(t *testing.T, rawP uint16) {
		p := int(rawP) % (n + 1)
		m, _ := newPair(t, "blowfish", isa.FeatRot, 64)
		for i := 0; i < p; i++ {
			if m.Step() == nil {
				t.Fatalf("machine halted at %d, before boundary %d", i, p)
			}
		}
		snap := m.Snapshot()
		mat := snap.Materialize()
		want := ref.StreamAt(p, n)
		i := p
		for {
			wr, ok := want.Next()
			or := m.Step()   // original continues...
			mr := mat.Step() // ...and so does the materialized copy
			if !ok || or == nil || mr == nil {
				if ok || or != nil || mr != nil {
					t.Fatalf("length mismatch at %d: ref=%v orig=%v mat=%v", i, ok, or != nil, mr != nil)
				}
				break
			}
			if !sameRec(or, wr) {
				t.Fatalf("original rec %d diverged after snapshot:\nlive %+v\nref  %+v", i, *or, *wr)
			}
			if !sameRec(mr, wr) {
				t.Fatalf("materialized rec %d mismatch:\nlive %+v\nref  %+v", i, *mr, *wr)
			}
			i++
		}
		if m.Err() != nil || mat.Err() != nil {
			t.Fatalf("faults after clean runs: orig=%v mat=%v", m.Err(), mat.Err())
		}
	})
}
