package emu

import (
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

// This file provides mid-trace architectural snapshots. Time-parallel
// chunked replay splits one recorded trace into chunks simulated on
// separate workers; when a chunk must fall back to live execution (the
// oversized-trace resume path), the worker needs a machine positioned at
// an arbitrary record boundary without re-running the prefix. A Snapshot
// captures the complete architectural state — registers, PC, instruction
// count, and a deep copy of the memory arena — and can be materialized
// into any number of independent machines.

// Snapshot is the full architectural state of a Machine at an instruction
// boundary. It is immutable after Machine.Snapshot returns: the arena is
// deep copied both when the snapshot is taken and each time it is
// materialized, so neither the original machine nor any materialized
// machine can alias another's memory.
type Snapshot struct {
	r        [isa.NumRegs]uint64
	pc       int
	icount   uint64
	maxInsts uint64
	halted   bool
	prog     *isa.Program
	mem      *simmem.Mem
}

// Icount reports the number of instructions retired when the snapshot was
// taken — the trace-record index of the boundary it represents.
func (s *Snapshot) Icount() uint64 { return s.icount }

// Snapshot captures the machine's architectural state at its current
// instruction boundary. The machine must not have faulted (Err() == nil);
// a halted machine may be snapshotted (the materialized machine is halted
// too). The memory arena is deep copied, so the snapshot stays valid
// however the machine runs on.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{
		r:        m.R,
		pc:       m.PC,
		icount:   m.Icount,
		maxInsts: m.MaxInsts,
		halted:   m.halted,
		prog:     m.Prog,
		mem:      m.Mem.Clone(),
	}
	return s
}

// Materialize builds a fresh, independent Machine positioned exactly at
// the snapshot boundary. The arena is re-cloned on every call, so one
// snapshot can seed any number of concurrent machines.
func (s *Snapshot) Materialize() *Machine {
	m := &Machine{
		Mem:      s.mem.Clone(),
		Prog:     s.prog,
		MaxInsts: s.maxInsts,
		code:     s.prog.Code,
		halted:   s.halted,
	}
	m.R = s.r
	m.PC = s.pc
	m.Icount = s.icount
	return m
}
