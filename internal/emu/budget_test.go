package emu

import (
	"errors"
	"strings"
	"testing"

	"cryptoarch/internal/check"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

// runawayProg builds a program that never halts: the runaway-kernel shape
// the instruction budget exists to catch.
func runawayProg() *isa.Program {
	b := isa.NewBuilder("runaway", isa.FeatNoRot)
	b.Label("loop")
	b.ADDQI(isa.RA0, 1, isa.RA0)
	b.BR("loop")
	return b.Build()
}

// TestInstructionBudget pins the runaway guard: a program that never
// halts stops at MaxInsts with a typed BudgetError instead of hanging or
// panicking.
func TestInstructionBudget(t *testing.T) {
	m := New(runawayProg(), simmem.New(0), 0x80000)
	m.MaxInsts = 10_000
	n := m.Run(nil)
	if n != 10_000 {
		t.Fatalf("ran %d instructions, want exactly the budget 10000", n)
	}
	if !m.Halted() {
		t.Fatal("machine not halted after budget exhaustion")
	}
	err := m.Err()
	if err == nil || !check.IsBudget(err) {
		t.Fatalf("Err() = %v, want a *check.BudgetError", err)
	}
	var b *check.BudgetError
	if ok := errors.As(err, &b); !ok || b.Resource != "instructions" || b.Limit != 10_000 {
		t.Fatalf("budget error fields: %+v", b)
	}
	// Once faulted, Step stays terminal.
	if r := m.Step(); r != nil {
		t.Fatal("Step returned a record after a terminal fault")
	}
}

// TestZeroMaxInstsUsesDefault checks the documented "0 = default guard"
// contract rather than an unbounded (hang-prone) run.
func TestZeroMaxInstsUsesDefault(t *testing.T) {
	m := New(runawayProg(), simmem.New(0), 0x80000)
	m.MaxInsts = 0
	// Stepping to the real default would take minutes; instead verify the
	// limit resolution directly by setting Icount just under it.
	m.Icount = DefaultMaxInsts - 1
	if r := m.Step(); r == nil {
		t.Fatal("step under the default budget failed")
	}
	if r := m.Step(); r != nil {
		t.Fatal("step at the default budget succeeded")
	}
	if !check.IsBudget(m.Err()) {
		t.Fatalf("Err() = %v, want budget error at the default guard", m.Err())
	}
}

// TestRunawayPC pins that a program whose control flow leaves the code
// segment faults with an error instead of panicking.
func TestRunawayPC(t *testing.T) {
	b := isa.NewBuilder("nohalt", isa.FeatNoRot)
	b.NOP()
	m := New(b.Build(), simmem.New(0), 0x80000)
	m.Run(nil)
	err := m.Err()
	if err == nil || !strings.Contains(err.Error(), "PC") {
		t.Fatalf("Err() = %v, want a PC-out-of-range fault", err)
	}
}
