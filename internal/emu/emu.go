// Package emu is the functional AXP64 emulator. It executes programs
// against a simulated memory arena, checks kernel outputs against the
// golden cipher models, and produces the committed-path dynamic
// instruction stream that drives the cycle-level timing model in
// internal/ooo.
package emu

import (
	"fmt"
	"math/bits"

	"cryptoarch/internal/check"
	"cryptoarch/internal/core"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

// Rec describes one retired dynamic instruction.
type Rec struct {
	Idx   int // static instruction index (PC)
	Inst  *isa.Inst
	Addr  uint64 // effective address of memory operations
	Size  uint8  // memory access size
	Taken bool   // branch outcome
	Targ  int    // branch target instruction index
	Val   uint64 // result value (value-prediction experiments)
}

// Machine is an AXP64 CPU state plus memory. Step executes one
// instruction; Run executes until HALT.
type Machine struct {
	R    [isa.NumRegs]uint64
	PC   int
	Mem  *simmem.Mem
	Prog *isa.Program

	// Icount is the number of instructions retired so far.
	Icount uint64
	// MaxInsts guards against runaway programs (0 = default guard).
	MaxInsts uint64

	code   []isa.Inst // Prog.Code, hoisted off the Step hot path
	halted bool
	err    error // terminal fault; the machine halts when set
	rec    Rec   // scratch record, reused across Step calls
}

// DefaultMaxInsts bounds a single program run.
const DefaultMaxInsts = 2_000_000_000

// New creates a machine ready to run prog. The rodata segment is copied to
// rodataAddr and RGP is pointed at it.
func New(prog *isa.Program, mem *simmem.Mem, rodataAddr uint64) *Machine {
	m := &Machine{Mem: mem, Prog: prog, MaxInsts: DefaultMaxInsts, code: prog.Code}
	if len(prog.Rodata) > 0 {
		mem.WriteBytes(rodataAddr, prog.Rodata)
	}
	m.R[isa.RGP] = rodataAddr
	return m
}

// SetArgs loads the standard kernel argument registers.
func (m *Machine) SetArgs(a0, a1, a2, a3 uint64) {
	m.R[isa.RA0] = a0
	m.R[isa.RA1] = a1
	m.R[isa.RA2] = a2
	m.R[isa.RA3] = a3
}

// Halted reports whether the program has stopped — by executing HALT or
// by faulting (see Err).
func (m *Machine) Halted() bool { return m.halted }

// Err returns the terminal fault of the run, if any: the instruction
// budget was exceeded (a *check.BudgetError), the PC left the program, or
// an unimplemented opcode was reached. A machine that executed HALT
// normally returns nil. Once a fault is recorded Step returns nil, so
// stream consumers observe end-of-stream and must consult Err to tell a
// completed run from a faulted one.
func (m *Machine) Err() error { return m.err }

// fail records a terminal fault and halts the machine.
func (m *Machine) fail(err error) {
	m.err = err
	m.halted = true
}

func (m *Machine) src2(i *isa.Inst) uint64 {
	if i.UseLit {
		return uint64(i.Lit)
	}
	return m.R[i.Rb]
}

func (m *Machine) write(r isa.Reg, v uint64) uint64 {
	if r != isa.RZ {
		m.R[r] = v
	}
	return v
}

// Step executes one instruction and returns its trace record. The returned
// pointer is only valid until the next Step call. Returns nil once halted —
// either by HALT or by a terminal fault, which Err distinguishes.
func (m *Machine) Step() *Rec {
	if m.halted {
		return nil
	}
	code := m.code
	if uint(m.PC) >= uint(len(code)) {
		m.fail(fmt.Errorf("emu: program %s: PC %d out of range [0,%d)", m.Prog.Name, m.PC, len(code)))
		return nil
	}
	limit := m.MaxInsts
	if limit == 0 {
		limit = DefaultMaxInsts
	}
	if m.Icount >= limit {
		m.fail(&check.BudgetError{
			Resource: "instructions", Subject: "program " + m.Prog.Name,
			Limit: limit, Used: m.Icount,
		})
		return nil
	}
	i := &code[m.PC]
	r := &m.rec
	*r = Rec{Idx: m.PC, Inst: i}
	next := m.PC + 1

	switch i.Op {
	case isa.OpLDQ, isa.OpLDL, isa.OpLDW, isa.OpLDB:
		addr := m.R[i.Rb] + uint64(i.Lit)
		size := int(isa.P(i.Op).Size)
		r.Addr, r.Size = addr, uint8(size)
		r.Val = m.write(i.Ra, m.Mem.Load(addr, size))
	case isa.OpSTQ, isa.OpSTL, isa.OpSTW, isa.OpSTB:
		addr := m.R[i.Rb] + uint64(i.Lit)
		size := int(isa.P(i.Op).Size)
		r.Addr, r.Size = addr, uint8(size)
		m.Mem.Store(addr, size, m.R[i.Ra])
		r.Val = m.R[i.Ra]
	case isa.OpLDA:
		r.Val = m.write(i.Rc, m.R[i.Rb]+uint64(i.Lit))
	case isa.OpLDAH:
		r.Val = m.write(i.Rc, m.R[i.Rb]+uint64(i.Lit)<<16)

	case isa.OpADDQ:
		r.Val = m.write(i.Rc, m.R[i.Ra]+m.src2(i))
	case isa.OpSUBQ:
		r.Val = m.write(i.Rc, m.R[i.Ra]-m.src2(i))
	case isa.OpADDL:
		r.Val = m.write(i.Rc, zext32(m.R[i.Ra]+m.src2(i)))
	case isa.OpSUBL:
		r.Val = m.write(i.Rc, zext32(m.R[i.Ra]-m.src2(i)))
	case isa.OpS4ADDQ:
		r.Val = m.write(i.Rc, m.R[i.Ra]*4+m.src2(i))
	case isa.OpS8ADDQ:
		r.Val = m.write(i.Rc, m.R[i.Ra]*8+m.src2(i))
	case isa.OpMULQ:
		r.Val = m.write(i.Rc, m.R[i.Ra]*m.src2(i))
	case isa.OpMULL:
		r.Val = m.write(i.Rc, zext32(m.R[i.Ra]*m.src2(i)))
	case isa.OpUMULH:
		hi, _ := bits.Mul64(m.R[i.Ra], m.src2(i))
		r.Val = m.write(i.Rc, hi)

	case isa.OpCMPEQ:
		r.Val = m.write(i.Rc, b2u(m.R[i.Ra] == m.src2(i)))
	case isa.OpCMPULT:
		r.Val = m.write(i.Rc, b2u(m.R[i.Ra] < m.src2(i)))
	case isa.OpCMPULE:
		r.Val = m.write(i.Rc, b2u(m.R[i.Ra] <= m.src2(i)))
	case isa.OpCMPLT:
		r.Val = m.write(i.Rc, b2u(int64(m.R[i.Ra]) < int64(m.src2(i))))
	case isa.OpCMPLE:
		r.Val = m.write(i.Rc, b2u(int64(m.R[i.Ra]) <= int64(m.src2(i))))

	case isa.OpAND:
		r.Val = m.write(i.Rc, m.R[i.Ra]&m.src2(i))
	case isa.OpBIC:
		r.Val = m.write(i.Rc, m.R[i.Ra]&^m.src2(i))
	case isa.OpOR:
		r.Val = m.write(i.Rc, m.R[i.Ra]|m.src2(i))
	case isa.OpORNOT:
		r.Val = m.write(i.Rc, m.R[i.Ra]|^m.src2(i))
	case isa.OpXOR:
		r.Val = m.write(i.Rc, m.R[i.Ra]^m.src2(i))
	case isa.OpEQV:
		r.Val = m.write(i.Rc, m.R[i.Ra]^^m.src2(i))

	case isa.OpSLL:
		r.Val = m.write(i.Rc, m.R[i.Ra]<<(m.src2(i)&63))
	case isa.OpSRL:
		r.Val = m.write(i.Rc, m.R[i.Ra]>>(m.src2(i)&63))
	case isa.OpSRA:
		r.Val = m.write(i.Rc, uint64(int64(m.R[i.Ra])>>(m.src2(i)&63)))
	case isa.OpSLLL:
		r.Val = m.write(i.Rc, zext32(m.R[i.Ra]<<(m.src2(i)&31)))
	case isa.OpSRLL:
		r.Val = m.write(i.Rc, zext32(m.R[i.Ra])>>(m.src2(i)&31))

	case isa.OpEXTB:
		r.Val = m.write(i.Rc, (m.R[i.Ra]>>(8*(m.src2(i)&7)))&0xff)
	case isa.OpINSB:
		r.Val = m.write(i.Rc, (m.R[i.Ra]&0xff)<<(8*(m.src2(i)&7)))
	case isa.OpZEXTB:
		r.Val = m.write(i.Rc, m.R[i.Ra]&0xff)
	case isa.OpZEXTW:
		r.Val = m.write(i.Rc, m.R[i.Ra]&0xffff)
	case isa.OpZEXTL:
		r.Val = m.write(i.Rc, zext32(m.R[i.Ra]))
	case isa.OpSEXTL:
		r.Val = m.write(i.Rc, uint64(int64(int32(m.R[i.Ra]))))

	case isa.OpCMOVEQ:
		if m.R[i.Ra] == 0 {
			m.write(i.Rc, m.src2(i))
		}
		r.Val = m.R[i.Rc]
	case isa.OpCMOVNE:
		if m.R[i.Ra] != 0 {
			m.write(i.Rc, m.src2(i))
		}
		r.Val = m.R[i.Rc]

	case isa.OpBR:
		next = int(i.Lit)
		r.Taken, r.Targ = true, next
	case isa.OpBSR:
		m.write(isa.RLNK, uint64(m.PC+1))
		next = int(i.Lit)
		r.Taken, r.Targ = true, next
		r.Val = uint64(m.PC + 1)
	case isa.OpRET:
		next = int(m.R[i.Rb])
		r.Taken, r.Targ = true, next
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBLE, isa.OpBGT, isa.OpBGE:
		v := int64(m.R[i.Ra])
		var take bool
		switch i.Op {
		case isa.OpBEQ:
			take = v == 0
		case isa.OpBNE:
			take = v != 0
		case isa.OpBLT:
			take = v < 0
		case isa.OpBLE:
			take = v <= 0
		case isa.OpBGT:
			take = v > 0
		case isa.OpBGE:
			take = v >= 0
		}
		r.Taken = take
		r.Targ = int(i.Lit)
		if take {
			next = r.Targ
		}

	case isa.OpHALT:
		m.halted = true
	case isa.OpNOP:

	case isa.OpROLQ:
		r.Val = m.write(i.Rc, core.RotL64(m.R[i.Ra], uint(m.src2(i))))
	case isa.OpRORQ:
		r.Val = m.write(i.Rc, core.RotR64(m.R[i.Ra], uint(m.src2(i))))
	case isa.OpROLL:
		r.Val = m.write(i.Rc, core.RotL32(m.R[i.Ra], uint(m.src2(i))))
	case isa.OpRORL:
		r.Val = m.write(i.Rc, core.RotR32(m.R[i.Ra], uint(m.src2(i))))
	case isa.OpROLXL:
		r.Val = m.write(i.Rc, zext32(core.RotL32(m.R[i.Ra], uint(i.Lit))^m.R[i.Rc]))
	case isa.OpRORXL:
		r.Val = m.write(i.Rc, zext32(core.RotR32(m.R[i.Ra], uint(i.Lit))^m.R[i.Rc]))
	case isa.OpROLXQ:
		r.Val = m.write(i.Rc, core.RotL64(m.R[i.Ra], uint(i.Lit))^m.R[i.Rc])
	case isa.OpRORXQ:
		r.Val = m.write(i.Rc, core.RotR64(m.R[i.Ra], uint(i.Lit))^m.R[i.Rc])

	case isa.OpMULMOD:
		r.Val = m.write(i.Rc, core.MulMod(m.R[i.Ra], m.src2(i)))

	case isa.OpSBOX:
		addr := core.SboxAddr(m.R[i.Rb], m.R[i.Ra], i.Sel2)
		r.Addr, r.Size = addr, 4
		r.Val = m.write(i.Rc, m.Mem.Load(addr, 4))
	case isa.OpSBOXSYNC:
		// Functionally a no-op here: the emulator always reads live
		// memory. The timing model invalidates SBox caches on it.
	case isa.OpXBOX:
		r.Val = m.write(i.Rc, core.Xbox(m.R[i.Ra], m.R[i.Rb], i.Sel1))

	default:
		m.fail(fmt.Errorf("emu: program %s: unimplemented op %v at %d", m.Prog.Name, i.Op, m.PC))
		return nil
	}

	m.PC = next
	m.Icount++
	return r
}

// Run executes until HALT or a terminal fault (check Err afterwards),
// invoking fn (if non-nil) for each retired instruction, and returns the
// number of instructions executed.
func (m *Machine) Run(fn func(*Rec)) uint64 {
	start := m.Icount
	for {
		r := m.Step()
		if r == nil {
			return m.Icount - start
		}
		if fn != nil {
			fn(r)
		}
	}
}

func zext32(v uint64) uint64 { return v & 0xffffffff }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
