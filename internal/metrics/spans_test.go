package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilTimelineNoOps pins the disabled state of span tracing.
func TestNilTimelineNoOps(t *testing.T) {
	var tl *Timeline
	sp := tl.Begin("cat", "name")
	if sp != NoSpan {
		t.Fatalf("nil Begin = %d, want NoSpan", sp)
	}
	tl.End(sp)
	tl.BindTrack(3)
	tl.ReleaseTrack()
	if tl.Spans() != nil {
		t.Fatal("nil Spans() must be nil")
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil timeline still writes valid JSON: %v", err)
	}
}

// TestSpanNesting: spans begun while another is open on the same
// goroutine become its children, and children close inside their parents.
func TestSpanNesting(t *testing.T) {
	tl := NewTimeline()
	root := tl.Begin("a", "root")
	child := tl.Begin("b", "child")
	grand := tl.Begin("c", "grandchild")
	tl.End(grand)
	tl.End(child)
	sib := tl.Begin("b", "sibling")
	tl.End(sib)
	tl.End(root)

	spans := tl.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]Span{}
	idByName := map[string]SpanID{}
	for i, s := range spans {
		byName[s.Name] = s
		idByName[s.Name] = SpanID(i)
	}
	if byName["root"].Parent != NoSpan {
		t.Fatal("root must have no parent")
	}
	if byName["child"].Parent != idByName["root"] || byName["sibling"].Parent != idByName["root"] {
		t.Fatal("child/sibling must parent to root")
	}
	if byName["grandchild"].Parent != idByName["child"] {
		t.Fatal("grandchild must parent to child")
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("span %q not closed or negative: %+v", s.Name, s)
		}
		if s.Parent >= 0 {
			p := spans[s.Parent]
			if s.Start < p.Start || s.End > p.End {
				t.Fatalf("span %q [%v,%v] escapes parent %q [%v,%v]",
					s.Name, s.Start, s.End, p.Name, p.Start, p.End)
			}
		}
	}
	if byName["child"].End > byName["sibling"].Start {
		t.Fatal("sequential siblings must not overlap")
	}
}

// TestBeginOnCrossGoroutine: workers attach their spans to a parent begun
// by another goroutine, each on its own display track.
func TestBeginOnCrossGoroutine(t *testing.T) {
	tl := NewTimeline()
	parent := tl.Begin("sweep", "sweep")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tl.BindTrack(w + 1)
			defer tl.ReleaseTrack()
			for i := 0; i < 3; i++ {
				sp := tl.BeginOn(parent, "cell", "cell")
				inner := tl.Begin("phase", "record")
				tl.End(inner)
				tl.End(sp)
			}
		}(w)
	}
	wg.Wait()
	tl.End(parent)

	spans := tl.Spans()
	var cells, phases int
	for i, s := range spans {
		switch s.Cat {
		case "cell":
			cells++
			if s.Parent != 0 {
				t.Fatalf("cell span parent = %d, want sweep (0)", s.Parent)
			}
			if s.Track < 1 || s.Track > 4 {
				t.Fatalf("cell span on track %d, want 1..4", s.Track)
			}
		case "phase":
			phases++
			p := spans[s.Parent]
			if p.Cat != "cell" || p.Track != s.Track {
				t.Fatalf("phase span %d must nest in its goroutine's cell span, got parent %+v", i, p)
			}
		}
	}
	if cells != 12 || phases != 12 {
		t.Fatalf("got %d cells, %d phases; want 12, 12", cells, phases)
	}
	// Per-track spans must tile: sorted by start, no overlap.
	byTrack := map[int][]Span{}
	for _, s := range spans {
		if s.Cat == "cell" {
			byTrack[s.Track] = append(byTrack[s.Track], s)
		}
	}
	for tr, ss := range byTrack {
		for i := 1; i < len(ss); i++ {
			if ss[i].Start < ss[i-1].End {
				t.Fatalf("track %d: cell spans overlap: %+v then %+v", tr, ss[i-1], ss[i])
			}
		}
	}
}

// TestChromeTraceOutput validates the emitted JSON structurally.
func TestChromeTraceOutput(t *testing.T) {
	tl := NewTimeline()
	root := tl.Begin("cmd", "asplos2000")
	sp := tl.Begin("cell", "kernel blowfish/rot")
	tl.End(sp)
	tl.End(root)
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v\n%s", err, buf.String())
	}
	var xEvents, mEvents int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			xEvents++
			if ev.TS < 0 || ev.Dur < 0 {
				t.Fatalf("negative ts/dur in %+v", ev)
			}
		case "M":
			mEvents++
		}
	}
	if xEvents != 2 || mEvents == 0 {
		t.Fatalf("got %d X events (want 2), %d M events (want >0)", xEvents, mEvents)
	}
	if !strings.Contains(buf.String(), "asplos2000") {
		t.Fatal("span names missing from output")
	}
}
