package metrics

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
)

// This file is the repo's first (and only) HTTP surface: a read-only
// observability endpoint the long-running binaries can expose with
// -metrics-addr. It serves the live telemetry Snapshot and a
// caller-supplied progress view as JSON. It is deliberately minimal:
// GET only, no mutation, no configuration, off unless the flag is set —
// the endpoint observes a run, it never steers one.

// NewHTTPHandler returns a GET-only handler over a registry and an
// optional progress callback:
//
//	/          index of the endpoints, as JSON
//	/metrics   Registry.Snapshot() of reg
//	/progress  progress() (404 when no callback was supplied)
//
// reg may be nil (Snapshot on a nil registry returns an empty snapshot),
// and progress is called once per request on the serving goroutine, so
// callers must hand in something safe for concurrent use.
func NewHTTPHandler(reg *Registry, progress func() any) http.Handler {
	mux := http.NewServeMux()
	serve := func(path string, body func() any) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				w.Header().Set("Allow", http.MethodGet)
				http.Error(w, "read-only endpoint: GET only", http.StatusMethodNotAllowed)
				return
			}
			// The mux routes every unregistered path to "/"; only the
			// index itself is the index.
			if path == "/" && r.URL.Path != "/" {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(body()); err != nil {
				// Headers are gone; all we can do is drop the connection.
				return
			}
		})
	}
	endpoints := []string{"/", "/metrics"}
	if progress != nil {
		endpoints = append(endpoints, "/progress")
	}
	serve("/", func() any {
		return map[string]any{"endpoints": endpoints, "readonly": true}
	})
	serve("/metrics", func() any { return reg.Snapshot() })
	if progress != nil {
		serve("/progress", func() any { return progress() })
	}
	return mux
}

// MetricsServer is a running -metrics-addr endpoint with shutdown
// plumbing, so a signal-interrupted run can drain in-flight scrapes and
// release the port before the process exits.
type MetricsServer struct {
	srv  *http.Server
	addr string
}

// Addr is the bound listen address ("127.0.0.1:ppppp" for ":0" callers).
func (m *MetricsServer) Addr() string { return m.addr }

// Shutdown gracefully stops the endpoint: the listener closes, in-flight
// requests finish (bounded by ctx), and the port is released. Safe on a
// nil receiver, so callers can shut down unconditionally.
func (m *MetricsServer) Shutdown(ctx context.Context) error {
	if m == nil {
		return nil
	}
	return m.srv.Shutdown(ctx)
}

// StartMetrics binds addr (e.g. "127.0.0.1:0") and starts serving the
// read-only handler in a background goroutine. The returned server
// reports the bound address — so ":0" callers can print the port that was
// actually chosen — and shuts down gracefully on request.
func StartMetrics(addr string, reg *Registry, progress func() any) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewHTTPHandler(reg, progress)}
	go srv.Serve(ln)
	return &MetricsServer{srv: srv, addr: ln.Addr().String()}, nil
}

// ServeMetrics is StartMetrics without the shutdown handle: the listener
// lives until the process exits. Kept for callers whose endpoint really is
// process-lifetime (tests, fire-and-forget tooling).
func ServeMetrics(addr string, reg *Registry, progress func() any) (string, error) {
	m, err := StartMetrics(addr, reg, progress)
	if err != nil {
		return "", err
	}
	return m.Addr(), nil
}
