package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
)

// This file is the repo's first (and only) HTTP surface: a read-only
// observability endpoint the long-running binaries can expose with
// -metrics-addr. It serves the live telemetry Snapshot and a
// caller-supplied progress view as JSON. It is deliberately minimal:
// GET only, no mutation, no configuration, off unless the flag is set —
// the endpoint observes a run, it never steers one.

// NewHTTPHandler returns a GET-only handler over a registry and an
// optional progress callback:
//
//	/          index of the endpoints, as JSON
//	/metrics   Registry.Snapshot() of reg
//	/progress  progress() (404 when no callback was supplied)
//
// reg may be nil (Snapshot on a nil registry returns an empty snapshot),
// and progress is called once per request on the serving goroutine, so
// callers must hand in something safe for concurrent use.
func NewHTTPHandler(reg *Registry, progress func() any) http.Handler {
	mux := http.NewServeMux()
	serve := func(path string, body func() any) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				w.Header().Set("Allow", http.MethodGet)
				http.Error(w, "read-only endpoint: GET only", http.StatusMethodNotAllowed)
				return
			}
			// The mux routes every unregistered path to "/"; only the
			// index itself is the index.
			if path == "/" && r.URL.Path != "/" {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(body()); err != nil {
				// Headers are gone; all we can do is drop the connection.
				return
			}
		})
	}
	endpoints := []string{"/", "/metrics"}
	if progress != nil {
		endpoints = append(endpoints, "/progress")
	}
	serve("/", func() any {
		return map[string]any{"endpoints": endpoints, "readonly": true}
	})
	serve("/metrics", func() any { return reg.Snapshot() })
	if progress != nil {
		serve("/progress", func() any { return progress() })
	}
	return mux
}

// ServeMetrics binds addr (e.g. "127.0.0.1:0"), starts serving the
// read-only handler in a background goroutine, and returns the bound
// address — so ":0" callers can print the port that was actually chosen.
// The listener lives until the process exits; there is deliberately no
// shutdown plumbing, matching the endpoint's observe-only role.
func ServeMetrics(addr string, reg *Registry, progress func() any) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewHTTPHandler(reg, progress)}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
