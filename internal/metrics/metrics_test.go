package metrics

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

// TestNilRegistryNoOps pins the disabled state: a nil registry hands out
// nil handles, every operation no-ops, and nothing allocates.
func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Add(5)
	c.Inc()
	g.Set(3.5)
	h.Observe(7)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read zero")
	}
	s := r.Snapshot()
	if s == nil || len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot must be empty, got %+v", s)
	}
	if avg := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(1)
		h.Observe(1)
	}); avg != 0 {
		t.Fatalf("nil-handle updates allocate %.2f/op, want 0", avg)
	}
}

// TestUpdatesAllocationFree pins the enabled hot path: updating existing
// metrics performs no heap allocation.
func TestUpdatesAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if avg := testing.AllocsPerRun(100, func() {
		c.Add(2)
		g.Set(4.25)
		h.Observe(12345)
	}); avg != 0 {
		t.Fatalf("metric updates allocate %.2f/op, want 0", avg)
	}
}

func TestCounterGaugeHistogramValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if c2 := r.Counter("runs"); c2 != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("workers")
	g.Set(8)
	g.Set(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3 (last value wins)", got)
	}
	h := r.Histogram("ns")
	for _, v := range []int64{1, 2, 3, 1000, 7} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1013 {
		t.Fatalf("histogram count/sum = %d/%d, want 5/1013", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	var hs *HistogramSample
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "ns" {
			hs = &snap.Histograms[i]
		}
	}
	if hs == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Min != 1 || hs.Max != 1000 {
		t.Fatalf("histogram min/max = %d/%d, want 1/1000", hs.Min, hs.Max)
	}
	var n uint64
	for _, b := range hs.Buckets {
		n += b.Count
	}
	if n != 5 {
		t.Fatalf("bucket counts sum to %d, want 5", n)
	}
}

// TestBucketBoundaries pins the power-of-two bucket contract that
// snapshot consumers rely on: bucket upper bounds are inclusive.
func TestBucketBoundaries(t *testing.T) {
	for _, tc := range []struct {
		v  int64
		le int64
	}{{-5, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1024, 1024}, {1025, 2048}} {
		h := newHistogram()
		h.Observe(tc.v)
		got := int64(0)
		for i := range h.buckets {
			if h.buckets[i].Load() == 1 {
				got = BucketUpper(i)
			}
		}
		if got != tc.le {
			t.Errorf("Observe(%d) landed in bucket le=%d, want %d", tc.v, got, tc.le)
		}
	}
}

// TestSnapshotDeterministic pins the snapshot contract: two registries
// that saw the same updates in different orders serialize identically, so
// snapshot bytes are comparable across runs and worker schedules.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, name := range order {
			r.Counter("c." + name).Add(int64(len(name)))
			r.Gauge("g." + name).Set(float64(len(name)))
			r.Histogram("h." + name).Observe(int64(len(name)))
		}
		return r
	}
	a := build([]string{"alpha", "bravo", "charlie"})
	b := build([]string{"charlie", "alpha", "bravo"})
	ja, err := json.Marshal(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("snapshots differ by creation order:\n%s\n%s", ja, jb)
	}
	for i := 1; i < len(a.Snapshot().Counters); i++ {
		s := a.Snapshot()
		if s.Counters[i-1].Name >= s.Counters[i].Name {
			t.Fatal("counters not sorted by name")
		}
	}
}

// TestConcurrentUpdatesAndSnapshots hammers one registry from many
// goroutines (run under -race in CI) and checks the final totals: no
// update may be lost or torn.
func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i%100 + 1))
				if i%1000 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("hist").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	s := r.Snapshot()
	var inBuckets uint64
	for _, hs := range s.Histograms {
		for _, b := range hs.Buckets {
			inBuckets += b.Count
		}
	}
	if inBuckets != workers*perWorker {
		t.Fatalf("bucket total = %d, want %d", inBuckets, workers*perWorker)
	}
}

// TestResetPreservesHandles: Reset zeroes values in place, and handles
// handed out before the reset keep working.
func TestResetPreservesHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	c.Add(7)
	h.Observe(9)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("reset must zero values")
	}
	c.Add(2)
	h.Observe(3)
	if c.Value() != 2 || r.Counter("c").Value() != 2 {
		t.Fatal("pre-reset handle must keep reporting into the registry")
	}
	snap := r.Snapshot()
	want := []HistogramSample{{Name: "h", Count: 1, Sum: 3, Min: 3, Max: 3,
		Buckets: []BucketSample{{Le: 4, Count: 1}}}}
	if !reflect.DeepEqual(snap.Histograms, want) {
		t.Fatalf("post-reset histogram snapshot = %+v, want %+v", snap.Histograms, want)
	}
}

// TestSampleRuntime smoke-tests the runtime/metrics bridge: gauges exist
// and carry plausible values.
func TestSampleRuntime(t *testing.T) {
	SampleRuntime(nil) // must not panic
	r := NewRegistry()
	SampleRuntime(r)
	if v := r.Gauge("go.heap.objects_bytes").Value(); v <= 0 {
		t.Fatalf("go.heap.objects_bytes = %v, want > 0", v)
	}
	if v := r.Gauge("go.mem.total_bytes").Value(); v <= 0 {
		t.Fatalf("go.mem.total_bytes = %v, want > 0", v)
	}
}
