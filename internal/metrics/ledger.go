package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// This file implements the persistent run ledger: an append-only JSONL
// file (.simledger/ledger.jsonl by default) that simbench appends one
// record to per run. Records are content-hash keyed by everything that
// makes measurements comparable — go version, GOMAXPROCS, workload,
// benchmark config, engine version — following the PR 5 checksum
// discipline: the key, not the wall clock, decides which records belong to
// the same trend line. Trends() computes per-model rolling baselines over
// the ledger and flags regressions with direction and magnitude, replacing
// the single-snapshot 2x tripwire with a real performance trajectory.

// LedgerSchemaVersion identifies the record format; bump on any change to
// the LedgerRecord JSON shape so old ledgers stay detectable. Version 2
// added the simulated-workload fields (cycles, instructions, IPC, per-cause
// stall shares) to LedgerModel; version-1 lines decode cleanly with those
// fields absent, so old ledgers keep their history.
const LedgerSchemaVersion = 2

// LedgerFile is the file name inside the ledger directory.
const LedgerFile = "ledger.jsonl"

// LedgerModel is one machine model's measurement within a ledger record.
// Field names match the simbench model JSON so the two stay greppable as
// one vocabulary. The v2 fields carry the simulated workload's shape —
// cycles, instructions, IPC, and each stall cause's share of the commit
// slots — so a regression in a historical record can be *attributed*
// (which bottleneck grew) without re-running the old engine.
type LedgerModel struct {
	Model        string  `json:"model"`
	SimMIPS      float64 `json:"simulated_mips"`
	AllocsPerRun int64   `json:"allocs_per_run"`
	BytesPerRun  int64   `json:"bytes_per_run"`
	// v2 fields; zero/absent on records written by older engines.
	Cycles       uint64             `json:"simulated_cycles,omitempty"`
	Instructions uint64             `json:"simulated_instructions,omitempty"`
	IPC          float64            `json:"ipc,omitempty"`
	StallShares  map[string]float64 `json:"stall_shares,omitempty"`
}

// ShareDelta is one stall cause's movement between two share maps, in
// share points (0.05 = the cause gained 5 points of the slot budget).
type ShareDelta struct {
	Cause string  `json:"cause"`
	Base  float64 `json:"base"`
	Next  float64 `json:"next"`
	Delta float64 `json:"delta"`
}

// AttributeShares diffs two per-cause share maps (union of keys), ranked
// by absolute movement, largest first (ties by cause name, so the output
// is deterministic). It returns nil when either side has no shares — a
// pre-v2 ledger record or a no-slot-budget model — since attributing
// against an absent breakdown would be a guess, not an accounting.
func AttributeShares(base, next map[string]float64) []ShareDelta {
	if len(base) == 0 || len(next) == 0 {
		return nil
	}
	causes := make(map[string]struct{}, len(base)+len(next))
	for c := range base {
		causes[c] = struct{}{}
	}
	for c := range next {
		causes[c] = struct{}{}
	}
	out := make([]ShareDelta, 0, len(causes))
	for c := range causes {
		d := ShareDelta{Cause: c, Base: base[c], Next: next[c]}
		d.Delta = d.Next - d.Base
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].Delta), math.Abs(out[j].Delta)
		if ai != aj {
			return ai > aj
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}

// LedgerRecord is one benchmark run. Key is the content hash of the
// identity fields (DeriveKey); records with equal keys are comparable
// measurements of the same configuration on the same toolchain.
type LedgerRecord struct {
	SchemaVersion int           `json:"schema_version"`
	TimeUnix      int64         `json:"time_unix"`
	Key           string        `json:"key"`
	GoVersion     string        `json:"go_version"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	Workload      string        `json:"workload"`
	Config        string        `json:"config"`
	EngineVersion string        `json:"engine_version"`
	Models        []LedgerModel `json:"models"`
}

// DeriveKey returns the FNV-1a content hash (16 hex digits) of the
// record's identity fields. Models and timestamps are deliberately
// excluded: the key identifies what was measured and by which engine, not
// what the measurement was or when. The derivation goes through HashKey —
// the helper the persistent result store keys also use — with the exact
// field order this function has always hashed, so existing ledgers stay
// comparable (pinned by TestDeriveKeySensitivity).
func (r *LedgerRecord) DeriveKey() string {
	return HashKey(r.GoVersion, strconv.Itoa(r.GOMAXPROCS), r.Workload, r.Config, r.EngineVersion)
}

// Ledger is a handle on one append-only ledger file.
type Ledger struct {
	path string
}

// OpenLedger creates dir if needed and returns a handle on its ledger
// file. The file itself is created lazily by the first Append.
func OpenLedger(dir string) (*Ledger, error) {
	if dir == "" {
		return nil, fmt.Errorf("metrics: empty ledger directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("metrics: ledger dir: %w", err)
	}
	return &Ledger{path: filepath.Join(dir, LedgerFile)}, nil
}

// Path returns the ledger file path.
func (l *Ledger) Path() string { return l.path }

// Append writes one record as a single JSON line. The schema version is
// stamped and the key derived here, so callers cannot append a record that
// disagrees with its own identity fields.
func (l *Ledger) Append(rec *LedgerRecord) error {
	rec.SchemaVersion = LedgerSchemaVersion
	rec.Key = rec.DeriveKey()
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	f, err := os.OpenFile(l.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read returns every parseable record in append order plus the number of
// corrupted (unparseable or wrong-schema) lines skipped. A missing ledger
// file is an empty ledger, not an error: the first run of a fresh checkout
// has no history yet.
func (l *Ledger) Read() (recs []LedgerRecord, skipped int, err error) {
	f, err := os.Open(l.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec LedgerRecord
		if json.Unmarshal(line, &rec) != nil || rec.SchemaVersion < 1 ||
			rec.SchemaVersion > LedgerSchemaVersion || rec.Key == "" {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, skipped, err
	}
	return recs, skipped, nil
}

// Trend is one (model, metric) trajectory: the latest measurement against
// the rolling baseline of earlier same-key records. Change is the signed
// fractional move from baseline (+0.10 = 10% above baseline), so direction
// and magnitude read off one number; Regressed applies the metric's
// better-direction and tolerance.
type Trend struct {
	Model     string  `json:"model"`
	Metric    string  `json:"metric"`
	Baseline  float64 `json:"baseline"`
	Latest    float64 `json:"latest"`
	Change    float64 `json:"change"`
	Samples   int     `json:"samples"` // baseline records (0 = no history yet)
	Regressed bool    `json:"regressed"`
}

// trendMetric describes how one LedgerModel field trends.
type trendMetric struct {
	name      string
	value     func(LedgerModel) float64
	higherBad bool    // true when an increase is a regression
	absSlack  float64 // absolute slack added to the tolerance band
}

var trendMetrics = []trendMetric{
	{name: "sim-MIPS", value: func(m LedgerModel) float64 { return m.SimMIPS }, higherBad: false},
	// A couple of allocations (pool refill, map growth) come and go with
	// the runtime; tiny absolute slack keeps zero-alloc models from
	// flagging on noise while still catching a real leak.
	{name: "allocs/run", value: func(m LedgerModel) float64 { return float64(m.AllocsPerRun) }, higherBad: true, absSlack: 4},
	{name: "bytes/run", value: func(m LedgerModel) float64 { return float64(m.BytesPerRun) }, higherBad: true, absSlack: 4096},
}

// Trends compares the newest record against a rolling baseline: the mean
// of up to window earlier records with the same key. Models appear in the
// latest record's order; metrics in fixed order (sim-MIPS, allocs/run,
// bytes/run). tol is the relative tolerance band (0.3 = 30%): sim-MIPS
// regresses by falling below baseline*(1-tol); allocs and bytes regress by
// exceeding baseline*(1+tol) plus a small absolute slack. With fewer than
// one earlier same-key record, trends report Samples == 0 and never flag.
func Trends(recs []LedgerRecord, window int, tol float64) []Trend {
	if len(recs) == 0 {
		return nil
	}
	if window < 1 {
		window = 1
	}
	latest := recs[len(recs)-1]
	var hist []LedgerRecord
	for _, r := range recs[:len(recs)-1] {
		if r.Key == latest.Key {
			hist = append(hist, r)
		}
	}
	if len(hist) > window {
		hist = hist[len(hist)-window:]
	}
	var out []Trend
	for _, m := range latest.Models {
		for _, tm := range trendMetrics {
			t := Trend{Model: m.Model, Metric: tm.name, Latest: tm.value(m)}
			var sum float64
			for _, h := range hist {
				for _, hm := range h.Models {
					if hm.Model == m.Model {
						sum += tm.value(hm)
						t.Samples++
						break
					}
				}
			}
			if t.Samples > 0 {
				t.Baseline = sum / float64(t.Samples)
				if t.Baseline != 0 {
					t.Change = (t.Latest - t.Baseline) / t.Baseline
				} else if t.Latest != 0 {
					t.Change = 1
				}
				if tm.higherBad {
					t.Regressed = t.Latest > t.Baseline*(1+tol)+tm.absSlack
				} else {
					t.Regressed = t.Latest < t.Baseline*(1-tol)
				}
			}
			out = append(out, t)
		}
	}
	return out
}
