package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"
)

// This file implements hierarchical span tracing of sweep execution:
// sweep → experiment → cell → record/replay phases. Spans form a tree —
// each span's parent is the innermost span still open on the goroutine
// that begins it (or one passed explicitly with BeginOn, which is how a
// worker's cell spans attach to the sweep span begun by the scheduler
// goroutine) — and every span carries a display track (one per sweep
// worker), so the emitted Chrome trace-event JSON renders in Perfetto or
// chrome://tracing as one lane per worker with phases nested inside cells.

// SpanID identifies a span within its Timeline.
type SpanID int32

// NoSpan is the id returned by Begin on a nil Timeline; End ignores it.
const NoSpan SpanID = -1

// Span is one closed or open interval of the timeline. Times are offsets
// from the timeline epoch; End is negative while the span is open.
type Span struct {
	Name   string
	Cat    string
	Track  int
	Parent SpanID
	Start  time.Duration
	End    time.Duration
}

// Timeline collects spans. A nil *Timeline is the disabled state: Begin
// returns NoSpan and every other method no-ops, so instrumented code pays
// one nil check when tracing is off.
type Timeline struct {
	epoch time.Time
	mu    sync.Mutex
	spans []Span
	gs    sync.Map // goroutine id -> *gstate
}

// gstate is the per-goroutine open-span stack and display track. It is
// only ever touched by its own goroutine, so the fields need no lock; the
// sync.Map provides the concurrent id -> state lookup.
type gstate struct {
	track int
	stack []SpanID
}

// NewTimeline returns an empty timeline whose epoch is now.
func NewTimeline() *Timeline {
	return &Timeline{epoch: time.Now()}
}

// goid parses the current goroutine id from the runtime.Stack header
// ("goroutine N [...]"). It costs about a microsecond — paid once per span
// begin/end, never inside the simulation hot loop.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, b := range buf[prefix:n] {
		if b < '0' || b > '9' {
			break
		}
		id = id*10 + uint64(b-'0')
	}
	return id
}

func (tl *Timeline) gstate() *gstate {
	id := goid()
	if v, ok := tl.gs.Load(id); ok {
		return v.(*gstate)
	}
	g := &gstate{}
	tl.gs.Store(id, g)
	return g
}

// BindTrack assigns the calling goroutine's spans to display track tid
// (sweep workers bind 1..N; the scheduler goroutine keeps the default 0).
func (tl *Timeline) BindTrack(tid int) {
	if tl == nil {
		return
	}
	tl.gstate().track = tid
}

// ReleaseTrack drops the calling goroutine's timeline state. Worker
// goroutines call it (deferred) so a long-lived timeline does not
// accumulate state for goroutines that have exited.
func (tl *Timeline) ReleaseTrack() {
	if tl == nil {
		return
	}
	tl.gs.Delete(goid())
}

// Begin opens a span whose parent is the innermost span currently open on
// this goroutine (NoSpan at top level). Returns NoSpan on a nil timeline.
func (tl *Timeline) Begin(cat, name string) SpanID {
	if tl == nil {
		return NoSpan
	}
	g := tl.gstate()
	parent := NoSpan
	if n := len(g.stack); n > 0 {
		parent = g.stack[n-1]
	}
	return tl.begin(g, parent, cat, name)
}

// BeginOn opens a span with an explicit parent — used when the parent was
// begun by a different goroutine (a worker's cell span under the
// scheduler's sweep span). The new span still joins this goroutine's open
// stack, so spans begun inside it nest beneath it.
func (tl *Timeline) BeginOn(parent SpanID, cat, name string) SpanID {
	if tl == nil {
		return NoSpan
	}
	return tl.begin(tl.gstate(), parent, cat, name)
}

func (tl *Timeline) begin(g *gstate, parent SpanID, cat, name string) SpanID {
	now := time.Since(tl.epoch)
	tl.mu.Lock()
	id := SpanID(len(tl.spans))
	tl.spans = append(tl.spans, Span{Name: name, Cat: cat, Track: g.track, Parent: parent, Start: now, End: -1})
	tl.mu.Unlock()
	g.stack = append(g.stack, id)
	return id
}

// End closes the span (idempotent; NoSpan and out-of-range ids are
// ignored) and pops it — with anything begun after it and left open — off
// the calling goroutine's stack.
func (tl *Timeline) End(id SpanID) {
	if tl == nil || id < 0 {
		return
	}
	now := time.Since(tl.epoch)
	tl.mu.Lock()
	if int(id) < len(tl.spans) && tl.spans[id].End < 0 {
		tl.spans[id].End = now
	}
	tl.mu.Unlock()
	g := tl.gstate()
	for i := len(g.stack) - 1; i >= 0; i-- {
		if g.stack[i] == id {
			g.stack = g.stack[:i]
			break
		}
	}
}

// Spans returns a copy of all spans recorded so far, in begin order.
func (tl *Timeline) Spans() []Span {
	if tl == nil {
		return nil
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := make([]Span, len(tl.spans))
	copy(out, tl.spans)
	return out
}

// traceEvent is one Chrome trace-event JSON object (the subset Perfetto
// and chrome://tracing consume: complete "X" events plus thread-name "M"
// metadata).
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace emits the timeline in Chrome trace-event JSON ("trace
// events" array format), loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Spans still open render as if they ended now. Track 0
// is named "main"; track i>0 "worker i".
func (tl *Timeline) WriteChromeTrace(w io.Writer) error {
	if tl == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	spans := tl.Spans()
	now := time.Since(tl.epoch)
	events := make([]traceEvent, 0, len(spans)+8)
	seen := map[int]bool{}
	var tracks []int
	for _, s := range spans {
		if !seen[s.Track] {
			seen[s.Track] = true
			tracks = append(tracks, s.Track)
		}
	}
	sort.Ints(tracks)
	for _, t := range tracks {
		name := "main"
		if t > 0 {
			name = "worker " + itoa(t)
		}
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: t,
			Args: map[string]string{"name": name},
		})
	}
	for _, s := range spans {
		end := s.End
		if end < 0 {
			end = now
		}
		events = append(events, traceEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64((end - s.Start).Nanoseconds()) / 1e3,
			PID:  1,
			TID:  s.Track,
		})
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":`); err != nil {
		return err
	}
	if err := enc.Encode(events); err != nil {
		return err
	}
	// Encode terminates the array with a newline; close the wrapper object
	// on its own line.
	if _, err := bw.WriteString("}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// itoa avoids strconv just for track names.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
