package metrics

import (
	"fmt"
	"hash/fnv"
)

// HashKey returns the FNV-1a 64-bit content hash (16 hex digits) of an
// ordered field list, writing a zero-byte separator after each field so
// adjacent fields cannot alias ("a","bc" != "ab","c"). It is the single
// key-derivation primitive shared by the run ledger (LedgerRecord.DeriveKey)
// and the persistent result store (internal/store), so the two content-hash
// schemes cannot silently diverge.
func HashKey(fields ...string) string {
	h := fnv.New64a()
	for _, s := range fields {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
