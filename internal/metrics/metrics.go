// Package metrics is the host-side telemetry layer of the simulator: typed
// counters, gauges and histograms behind a registry, hierarchical span
// timelines of sweep execution, and a persistent append-only run ledger
// with trend detection.
//
// The package is a leaf (it imports only the standard library) so every
// layer — the timing engine, the trace cache, the sweep scheduler, the
// commands — can report into one registry without import cycles.
//
// Two properties are contractual and pinned by tests:
//
//   - Hot-path updates are allocation-free: Counter.Add, Gauge.Set and
//     Histogram.Observe perform only atomic operations on pre-allocated
//     state. Metric creation (Registry.Counter etc.) is the cold path.
//   - A disabled registry is literally zero cost: every method on a nil
//     *Registry, *Counter, *Gauge, *Histogram or *Timeline is a no-op, so
//     instrumented code needs no "is telemetry on" branches and simulation
//     results are bit-identical with telemetry on, off, or absent.
//
// Snapshot() renders the registry deterministically: metrics appear sorted
// by name, so two registries that saw the same updates serialize to the
// same bytes regardless of creation or update order.
package metrics

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric (resettable only
// through Reset, for benchmark harnesses that time independent passes).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter in place; outstanding handles stay valid.
func (c *Counter) Reset() {
	if c != nil {
		c.v.Store(0)
	}
}

// Gauge is a last-value-wins float metric.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the value
}

// Set records the gauge value. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last value set (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Reset zeroes the gauge in place.
func (g *Gauge) Reset() {
	if g != nil {
		g.bits.Store(0)
	}
}

// histBuckets is the fixed bucket count of a histogram: power-of-two
// boundaries, bucket i counting values v with 2^(i-1) < v <= 2^i (bucket 0
// counts v <= 1). Fixed exponential buckets keep Observe allocation-free
// and make merged or compared snapshots line up without bucket
// negotiation; at nanosecond resolution they span ~584 years.
const histBuckets = 64

// Histogram accumulates an integer-valued distribution (typically
// nanoseconds) into power-of-two buckets.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64 // MaxInt64 sentinel while empty
	max     atomic.Int64 // MinInt64 sentinel while empty
	buckets [histBuckets]atomic.Uint64
}

// newHistogram returns an empty histogram with the min/max sentinels set.
func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	// bits.Len64(v-1) is the smallest i with v <= 2^i.
	i := bits.Len64(uint64(v - 1))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// BucketUpper returns the inclusive upper bound of bucket i (the "le"
// boundary reported in snapshots). The last bucket is unbounded and
// reports math.MaxInt64.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return 1 << uint(i)
}

// Observe records one value. Allocation-free; no-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Reset zeroes the histogram in place.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Registry holds named metrics. The zero value is not usable; a nil
// *Registry is the disabled state: every method no-ops and hands out nil
// metric handles whose methods also no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered metric in place. Handles held by
// instrumented code remain valid and keep reporting into the same metrics.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, h := range r.hists {
		h.Reset()
	}
}

// CounterSample is one counter in a snapshot.
type CounterSample struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSample is one gauge in a snapshot.
type GaugeSample struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketSample is one non-empty histogram bucket: Count observations with
// value <= Le (and greater than the previous bucket's Le).
type BucketSample struct {
	Le    int64  `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSample is one histogram in a snapshot.
type HistogramSample struct {
	Name    string         `json:"name"`
	Count   uint64         `json:"count"`
	Sum     int64          `json:"sum"`
	Min     int64          `json:"min"`
	Max     int64          `json:"max"`
	Buckets []BucketSample `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time rendering of a registry, deterministic in
// shape: metrics sorted by name, empty buckets elided.
type Snapshot struct {
	Counters   []CounterSample   `json:"counters"`
	Gauges     []GaugeSample     `json:"gauges"`
	Histograms []HistogramSample `json:"histograms"`
}

// Snapshot captures every registered metric. On a nil registry it returns
// an empty (non-nil) snapshot. Values are read atomically per metric;
// concurrent updates land in either this snapshot or the next, never in a
// torn state.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   []CounterSample{},
		Gauges:     []GaugeSample{},
		Histograms: []HistogramSample{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSample{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSample{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hs := HistogramSample{Name: name, Count: h.count.Load(), Sum: h.sum.Load()}
		if hs.Count > 0 {
			hs.Min = h.min.Load()
			hs.Max = h.max.Load()
		}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				hs.Buckets = append(hs.Buckets, BucketSample{Le: BucketUpper(i), Count: n})
			}
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
