package metrics

import (
	"math"
	rm "runtime/metrics"
)

// SampleRuntime refreshes the "go." gauges on r from the runtime/metrics
// interface: heap footprint, GC cycle count, and the GC pause
// distribution. Call it immediately before Snapshot (the values are
// point-in-time, not accumulated by this package). No-op on a nil
// registry.
func SampleRuntime(r *Registry) {
	if r == nil {
		return
	}
	samples := []rm.Sample{
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/memory/classes/total:bytes"},
		{Name: "/gc/cycles/total:gc-cycles"},
		{Name: "/gc/pauses:seconds"},
	}
	rm.Read(samples)
	for _, s := range samples {
		switch s.Name {
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == rm.KindUint64 {
				r.Gauge("go.heap.objects_bytes").Set(float64(s.Value.Uint64()))
			}
		case "/memory/classes/total:bytes":
			if s.Value.Kind() == rm.KindUint64 {
				r.Gauge("go.mem.total_bytes").Set(float64(s.Value.Uint64()))
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == rm.KindUint64 {
				r.Gauge("go.gc.cycles").Set(float64(s.Value.Uint64()))
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() != rm.KindFloat64Histogram {
				continue
			}
			h := s.Value.Float64Histogram()
			count, p50, max := summarizeFloatHist(h)
			r.Gauge("go.gc.pauses").Set(float64(count))
			r.Gauge("go.gc.pause_p50_ns").Set(p50 * 1e9)
			r.Gauge("go.gc.pause_max_ns").Set(max * 1e9)
		}
	}
}

// summarizeFloatHist reduces a runtime float64 histogram to observation
// count, approximate median, and the upper bound of the highest non-empty
// bucket (the conservative "max"). Unbounded edges fall back to the
// nearest finite boundary.
func summarizeFloatHist(h *rm.Float64Histogram) (count uint64, p50, max float64) {
	for _, c := range h.Counts {
		count += c
	}
	if count == 0 {
		return 0, 0, 0
	}
	var seen uint64
	half := (count + 1) / 2
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := bucketEdges(h.Buckets, i)
		if seen < half && seen+c >= half && p50 == 0 {
			p50 = (lo + hi) / 2
		}
		max = hi
		seen += c
	}
	return count, p50, max
}

// bucketEdges returns finite edges for bucket i of a runtime histogram
// (Buckets has len(Counts)+1 boundaries, possibly ±Inf at the ends).
func bucketEdges(edges []float64, i int) (lo, hi float64) {
	lo, hi = edges[i], edges[i+1]
	if math.IsInf(lo, -1) || math.IsNaN(lo) || lo < 0 {
		lo = 0
	}
	if math.IsInf(hi, 1) || math.IsNaN(hi) {
		hi = lo
	}
	return lo, hi
}
