package metrics

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHTTPMetricsSnapshot: /metrics serves the registry's live snapshot
// as JSON.
func TestHTTPMetricsSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runs_total").Add(7)
	reg.Gauge("workers").Set(3)
	srv := httptest.NewServer(NewHTTPHandler(reg, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q, want application/json", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "runs_total" && c.Value == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot missing runs_total=7: %+v", snap.Counters)
	}
}

// TestHTTPProgress: /progress serves the callback's view; without a
// callback the route does not exist.
func TestHTTPProgress(t *testing.T) {
	type prog struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	}
	srv := httptest.NewServer(NewHTTPHandler(nil, func() any { return prog{Done: 3, Total: 9} }))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got prog
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got != (prog{Done: 3, Total: 9}) {
		t.Fatalf("progress = %+v", got)
	}

	bare := httptest.NewServer(NewHTTPHandler(nil, nil))
	defer bare.Close()
	resp2, err := http.Get(bare.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("progress without callback: status %d, want 404", resp2.StatusCode)
	}
}

// TestHTTPReadOnly: every mutating method is refused with 405 and an
// Allow header; unknown paths 404 instead of falling into the index.
func TestHTTPReadOnly(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(NewRegistry(), func() any { return 1 }))
	defer srv.Close()

	for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
		for _, path := range []string{"/", "/metrics", "/progress"} {
			req, err := http.NewRequest(method, srv.URL+path, strings.NewReader("x"))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("%s %s: status %d, want 405", method, path, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
				t.Fatalf("%s %s: Allow %q, want GET", method, path, allow)
			}
		}
	}
	resp, err := http.Get(srv.URL + "/no-such-endpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d, want 404", resp.StatusCode)
	}
}

// TestServeMetrics: the convenience starter binds, reports the real
// address (":0" resolved), and serves the index.
func TestServeMetrics(t *testing.T) {
	addr, err := ServeMetrics("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(addr, ":0") {
		t.Fatalf("bound address %q still has port 0", addr)
	}
	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "/metrics") {
		t.Fatalf("index does not list /metrics: %s", body)
	}
}

// TestMetricsServerShutdown: StartMetrics serves until Shutdown drains it,
// after which the port is released and a nil server shuts down as a no-op
// — the graceful path every signal-interrupted command exit takes.
func TestMetricsServerShutdown(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runs_total").Inc()
	m, err := StartMetrics("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + m.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + m.Addr() + "/metrics"); err == nil {
		t.Fatal("endpoint still serving after Shutdown")
	}
	// The port must be free again for the next run.
	ln, err := net.Listen("tcp", m.Addr())
	if err != nil {
		t.Fatalf("port not released: %v", err)
	}
	ln.Close()
	var nilSrv *MetricsServer
	if err := nilSrv.Shutdown(context.Background()); err != nil {
		t.Fatalf("nil shutdown: %v", err)
	}
}
