package metrics

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecord(mips float64, allocs, bytes int64) *LedgerRecord {
	return &LedgerRecord{
		TimeUnix:      1700000000,
		GoVersion:     "go1.22.0",
		GOMAXPROCS:    8,
		Workload:      "blowfish/rot/4096B CBC session, seed 12345",
		Config:        "4W,4W+,8W+,DF",
		EngineVersion: "ooo-v1",
		Models: []LedgerModel{
			{Model: "4W", SimMIPS: mips, AllocsPerRun: allocs, BytesPerRun: bytes},
			{Model: "8W+", SimMIPS: mips * 0.8, AllocsPerRun: allocs, BytesPerRun: bytes},
		},
	}
}

// TestLedgerRoundTrip: append N records, read them back identically.
func TestLedgerRoundTrip(t *testing.T) {
	led, err := OpenLedger(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var want []LedgerRecord
	for i := 0; i < 3; i++ {
		rec := testRecord(10+float64(i), 100, 5000)
		rec.TimeUnix += int64(i)
		if err := led.Append(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, *rec)
	}
	got, skipped, err := led.Read()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d lines on a clean ledger", skipped)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if got[0].Key == "" || got[0].Key != got[1].Key {
		t.Fatalf("same-identity records must share a key, got %q vs %q", got[0].Key, got[1].Key)
	}
	if got[0].SchemaVersion != LedgerSchemaVersion {
		t.Fatalf("schema version %d, want %d", got[0].SchemaVersion, LedgerSchemaVersion)
	}
}

// TestLedgerMissingFile: a fresh ledger reads as empty, not as an error.
func TestLedgerMissingFile(t *testing.T) {
	led, err := OpenLedger(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := led.Read()
	if err != nil || len(recs) != 0 || skipped != 0 {
		t.Fatalf("fresh ledger: recs=%v skipped=%d err=%v, want empty/0/nil", recs, skipped, err)
	}
}

// TestLedgerCorruptedLineSkip: garbage lines (truncated writes, editor
// accidents) are counted and skipped; surrounding records survive.
func TestLedgerCorruptedLineSkip(t *testing.T) {
	dir := t.TempDir()
	led, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Append(testRecord(10, 100, 5000)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, LedgerFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// One truncated JSON line, one wrong-schema line, one blank line.
	if _, err := f.WriteString("{\"schema_version\":1,\"key\":\"abc\",\"trunc\n{\"schema_version\":999,\"key\":\"abc\"}\n\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := led.Append(testRecord(11, 100, 5000)); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := led.Read()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (corruption must not take out neighbors)", len(recs))
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2 (blank lines are not corruption)", skipped)
	}
	if recs[0].Models[0].SimMIPS != 10 || recs[1].Models[0].SimMIPS != 11 {
		t.Fatalf("wrong records survived: %+v", recs)
	}
}

// TestDeriveKeySensitivity: the key must change when any identity field
// changes and must ignore the measurements themselves.
func TestDeriveKeySensitivity(t *testing.T) {
	base := testRecord(10, 100, 5000)
	key := base.DeriveKey()
	mutations := []func(*LedgerRecord){
		func(r *LedgerRecord) { r.GoVersion = "go1.23.0" },
		func(r *LedgerRecord) { r.GOMAXPROCS = 4 },
		func(r *LedgerRecord) { r.Workload = "other" },
		func(r *LedgerRecord) { r.Config = "4W" },
		func(r *LedgerRecord) { r.EngineVersion = "ooo-v2" },
	}
	for i, mut := range mutations {
		r := testRecord(10, 100, 5000)
		mut(r)
		if r.DeriveKey() == key {
			t.Errorf("mutation %d did not change the key", i)
		}
	}
	measured := testRecord(99, 1, 1) // different numbers, same identity
	if measured.DeriveKey() != key {
		t.Fatal("measurements must not affect the key")
	}
}

// TestTrendsFlagsInjectedRegression is the acceptance scenario: a history
// of healthy runs, then an injected regression; Trends must flag it with
// direction and magnitude.
func TestTrendsFlagsInjectedRegression(t *testing.T) {
	var recs []LedgerRecord
	for i := 0; i < 4; i++ {
		recs = append(recs, *testRecord(10, 100, 5000))
	}
	bad := testRecord(4, 100, 5000) // sim-MIPS down 60%
	bad.SchemaVersion = LedgerSchemaVersion
	bad.Key = bad.DeriveKey()
	for i := range recs {
		recs[i].SchemaVersion = LedgerSchemaVersion
		recs[i].Key = recs[i].DeriveKey()
	}
	recs = append(recs, *bad)

	trends := Trends(recs, 5, 0.30)
	var hit *Trend
	for i := range trends {
		tr := &trends[i]
		if tr.Model == "4W" && tr.Metric == "sim-MIPS" {
			hit = tr
		}
		if tr.Metric != "sim-MIPS" && tr.Regressed {
			t.Fatalf("metric %s/%s wrongly flagged: %+v", tr.Model, tr.Metric, tr)
		}
	}
	if hit == nil {
		t.Fatal("no 4W sim-MIPS trend reported")
	}
	if !hit.Regressed {
		t.Fatalf("injected 60%% sim-MIPS drop not flagged: %+v", hit)
	}
	if hit.Change > -0.55 || hit.Change < -0.65 {
		t.Fatalf("magnitude wrong: change = %+.2f, want about -0.60", hit.Change)
	}
	if hit.Baseline != 10 || hit.Latest != 4 || hit.Samples != 4 {
		t.Fatalf("baseline/latest/samples = %v/%v/%d, want 10/4/4", hit.Baseline, hit.Latest, hit.Samples)
	}
}

// TestTrendsAllocRegressionAndSlack: allocation regressions flag on a real
// jump but not on pool-refill noise around a small baseline.
func TestTrendsAllocRegressionAndSlack(t *testing.T) {
	mk := func(allocs int64) LedgerRecord {
		r := testRecord(10, allocs, 5000)
		r.SchemaVersion = LedgerSchemaVersion
		r.Key = r.DeriveKey()
		return *r
	}
	// 0 -> 3 allocs: inside the absolute slack, not a regression.
	recs := []LedgerRecord{mk(0), mk(0), mk(3)}
	for _, tr := range Trends(recs, 5, 0.30) {
		if tr.Metric == "allocs/run" && tr.Regressed {
			t.Fatalf("3-alloc noise flagged as regression: %+v", tr)
		}
	}
	// 100 -> 200 allocs: a real doubling must flag, direction up.
	recs = []LedgerRecord{mk(100), mk(100), mk(200)}
	var flagged bool
	for _, tr := range Trends(recs, 5, 0.30) {
		if tr.Model == "4W" && tr.Metric == "allocs/run" {
			if !tr.Regressed {
				t.Fatalf("alloc doubling not flagged: %+v", tr)
			}
			if tr.Change < 0.9 || tr.Change > 1.1 {
				t.Fatalf("alloc change = %+.2f, want about +1.00", tr.Change)
			}
			flagged = true
		}
	}
	if !flagged {
		t.Fatal("no allocs/run trend for 4W")
	}
}

// TestTrendsRespectsKeys: records from a different environment (different
// key) must not pollute the baseline.
func TestTrendsRespectsKeys(t *testing.T) {
	slow := testRecord(2, 100, 5000)
	slow.GoVersion = "go1.20.0" // different key
	slow.SchemaVersion = LedgerSchemaVersion
	slow.Key = slow.DeriveKey()
	cur := func(mips float64) LedgerRecord {
		r := testRecord(mips, 100, 5000)
		r.SchemaVersion = LedgerSchemaVersion
		r.Key = r.DeriveKey()
		return *r
	}
	recs := []LedgerRecord{*slow, cur(10), cur(10)}
	for _, tr := range Trends(recs, 5, 0.30) {
		if tr.Regressed {
			t.Fatalf("foreign-key record polluted the baseline: %+v", tr)
		}
		if tr.Model == "4W" && tr.Metric == "sim-MIPS" && tr.Samples != 1 {
			t.Fatalf("baseline samples = %d, want 1 (only the same-key record)", tr.Samples)
		}
	}
}

// TestTrendsNoHistory: a single record yields trends with Samples == 0 and
// nothing flagged.
func TestTrendsNoHistory(t *testing.T) {
	r := testRecord(10, 100, 5000)
	r.SchemaVersion = LedgerSchemaVersion
	r.Key = r.DeriveKey()
	trends := Trends([]LedgerRecord{*r}, 5, 0.30)
	if len(trends) == 0 {
		t.Fatal("want trend rows even without history")
	}
	for _, tr := range trends {
		if tr.Samples != 0 || tr.Regressed {
			t.Fatalf("historyless trend must not flag: %+v", tr)
		}
	}
	if Trends(nil, 5, 0.3) != nil {
		t.Fatal("empty ledger must yield nil trends")
	}
}

// TestLedgerV1Migration pins the exact JSON a version-1 engine wrote (the
// shape before cycles/instructions/IPC/stall shares existed) and proves a
// v2 reader still accepts it: the record decodes with zero-value v2
// fields, sits in the same trend line as a fresh v2 record with the same
// key, and attribution against it degrades to nil (no shares recorded)
// rather than inventing a breakdown.
func TestLedgerV1Migration(t *testing.T) {
	dir := t.TempDir()
	led, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Literal v1 line, byte-for-byte as Append wrote it at schema version 1.
	// Do not regenerate this from the current structs: the point is that
	// yesterday's bytes decode today.
	key := HashKey("go1.22.0", "8", "blowfish/rot/4096B CBC session, seed 12345", "replay-bench 4W,4W+,8W+,DF", "ooo-v1")
	v1line := `{"schema_version":1,"time_unix":1700000000,"key":"` + key + `",` +
		`"go_version":"go1.22.0","gomaxprocs":8,` +
		`"workload":"blowfish/rot/4096B CBC session, seed 12345",` +
		`"config":"replay-bench 4W,4W+,8W+,DF","engine_version":"ooo-v1",` +
		`"models":[{"model":"4W","simulated_mips":12.5,"allocs_per_run":3,"bytes_per_run":512}]}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, LedgerFile), []byte(v1line), 0o644); err != nil {
		t.Fatal(err)
	}
	v2 := &LedgerRecord{
		TimeUnix:      1700000100,
		GoVersion:     "go1.22.0",
		GOMAXPROCS:    8,
		Workload:      "blowfish/rot/4096B CBC session, seed 12345",
		Config:        "replay-bench 4W,4W+,8W+,DF",
		EngineVersion: "ooo-v1",
		Models: []LedgerModel{{
			Model: "4W", SimMIPS: 11.0, AllocsPerRun: 3, BytesPerRun: 512,
			Cycles: 9000, Instructions: 18000, IPC: 2.0,
			StallShares: map[string]float64{"commit": 0.5, "ialu": 0.3, "window": 0.2},
		}},
	}
	if err := led.Append(v2); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := led.Read()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("v1 line was skipped: skipped=%d (old ledgers must stay readable)", skipped)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (v1 + v2)", len(recs))
	}
	old := recs[0]
	if old.SchemaVersion != 1 || old.Models[0].SimMIPS != 12.5 {
		t.Fatalf("v1 record mangled: %+v", old)
	}
	if old.Models[0].Cycles != 0 || old.Models[0].IPC != 0 || old.Models[0].StallShares != nil {
		t.Fatalf("v1 record grew v2 fields out of thin air: %+v", old.Models[0])
	}
	if old.Key != recs[1].Key {
		t.Fatalf("schema bump changed the trend-line key: %q vs %q", old.Key, recs[1].Key)
	}
	if recs[1].SchemaVersion != LedgerSchemaVersion {
		t.Fatalf("fresh record stamped schema %d, want %d", recs[1].SchemaVersion, LedgerSchemaVersion)
	}
	// The v1 baseline still feeds Trends: one sample, sim-MIPS trajectory.
	trends := Trends(recs, 5, 0.30)
	if len(trends) == 0 || trends[0].Samples != 1 {
		t.Fatalf("v1 record did not join the trend baseline: %+v", trends)
	}
	// Attribution across the schema boundary refuses to guess.
	if got := AttributeShares(old.Models[0].StallShares, recs[1].Models[0].StallShares); got != nil {
		t.Fatalf("attribution against a share-less v1 record must be nil, got %+v", got)
	}
}

// TestAttributeShares pins the ranking and union semantics of the share
// differ: largest absolute movement first, causes present on only one
// side diffed against zero, deterministic tie-break by name.
func TestAttributeShares(t *testing.T) {
	base := map[string]float64{"commit": 0.60, "window": 0.30, "ialu": 0.10}
	next := map[string]float64{"commit": 0.35, "window": 0.30, "sboxport": 0.35}
	got := AttributeShares(base, next)
	want := []ShareDelta{
		{Cause: "sboxport", Base: 0, Next: 0.35, Delta: 0.35},
		{Cause: "commit", Base: 0.60, Next: 0.35, Delta: -0.25},
		{Cause: "ialu", Base: 0.10, Next: 0, Delta: -0.10},
		{Cause: "window", Base: 0.30, Next: 0.30, Delta: 0},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AttributeShares:\ngot  %+v\nwant %+v", got, want)
	}
	if AttributeShares(nil, next) != nil || AttributeShares(base, nil) != nil {
		t.Fatal("attribution with a missing side must be nil, not a fabricated diff")
	}
}
