package core

import (
	"math/big"
	"testing"
)

// Fuzz targets for the crypto-extension reference semantics. Every kernel
// and the timing model's operand routing rest on these three functions;
// the fuzzers pin them against independent formulations (big-integer
// arithmetic for MULMOD, a naive bit walk for XBOX, algebraic properties
// for SBOX addressing) so a regression cannot hide in the corner cases
// the unit tests happen to miss.

// FuzzMulMod checks MulMod against direct big-integer arithmetic in the
// IDEA group: operands are the low 16 bits with 0 standing for 2^16, the
// product is reduced mod 2^16+1, and the result 2^16 is encoded as 0.
func FuzzMulMod(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(0), uint64(1))
	f.Add(uint64(0xffff), uint64(0xffff))
	f.Add(uint64(0x12345), uint64(0xabcde)) // high bits must be ignored
	f.Fuzz(func(t *testing.T, a, b uint64) {
		x := int64(uint16(a))
		if x == 0 {
			x = 1 << 16
		}
		y := int64(uint16(b))
		if y == 0 {
			y = 1 << 16
		}
		m := new(big.Int).Mul(big.NewInt(x), big.NewInt(y))
		want := m.Mod(m, big.NewInt(1<<16+1)).Uint64()
		if want == 1<<16 {
			want = 0
		}
		if got := MulMod(a, b); got != want {
			t.Fatalf("MulMod(%#x, %#x) = %#x, want %#x", a, b, got, want)
		}
	})
}

// xboxNaive is an independent bit-by-bit restatement of the XBOX spec:
// result bit base+j is bit pmap[6j:6j+6] of src.
func xboxNaive(src, pmap uint64, dstByte uint8) uint64 {
	var out uint64
	for j := 0; j < 8; j++ {
		sel := int(pmap>>(6*j)) & 0x3f
		if src&(1<<sel) != 0 {
			out |= 1 << (8*int(dstByte&7) + j)
		}
	}
	return out
}

func FuzzXbox(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint8(0))
	f.Add(^uint64(0), ^uint64(0), uint8(7))
	f.Add(uint64(0x0123456789abcdef), uint64(0x820820820820820), uint8(3))
	f.Fuzz(func(t *testing.T, src, pmap uint64, dstByte uint8) {
		got, want := Xbox(src, pmap, dstByte), xboxNaive(src, pmap, dstByte)
		if got != want {
			t.Fatalf("Xbox(%#x, %#x, %d) = %#x, want %#x", src, pmap, dstByte, got, want)
		}
		// Only the selected destination byte may be populated.
		if got>>(8*uint(dstByte&7))&^uint64(0xff) != 0 || got&^(uint64(0xff)<<(8*uint(dstByte&7))) != 0 {
			t.Fatalf("Xbox(%#x, %#x, %d) = %#x leaks outside destination byte", src, pmap, dstByte, got)
		}
	})
}

// FuzzSboxAddr checks the SBOX address generator's algebraic properties:
// the result stays inside the table the base names, is 4-byte aligned,
// selects exactly the indexed byte of the index operand, and ignores the
// unaligned bits of the base.
func FuzzSboxAddr(f *testing.F) {
	f.Add(uint64(0x20000), uint64(0xdeadbeefcafef00d), uint8(0))
	f.Add(uint64(0x2abc3), uint64(0), uint8(9)) // unaligned base, wrapped sel
	f.Fuzz(func(t *testing.T, base, index uint64, byteSel uint8) {
		got := SboxAddr(base, index, byteSel)
		alignedBase := base & SboxAlignMask
		if got&SboxAlignMask != alignedBase {
			t.Fatalf("SboxAddr(%#x, %#x, %d) = %#x left the table at %#x", base, index, byteSel, got, alignedBase)
		}
		if got-alignedBase >= SboxTableBytes {
			t.Fatalf("SboxAddr(%#x, %#x, %d) = %#x beyond the table", base, index, byteSel, got)
		}
		if got%4 != 0 {
			t.Fatalf("SboxAddr(%#x, %#x, %d) = %#x not word-aligned", base, index, byteSel, got)
		}
		wantIdx := (index >> (8 * uint(byteSel&7))) & 0xff
		if (got-alignedBase)>>2 != wantIdx {
			t.Fatalf("SboxAddr(%#x, %#x, %d) selected entry %d, want %d",
				base, index, byteSel, (got-alignedBase)>>2, wantIdx)
		}
		if got != SboxAddr(alignedBase, index, byteSel) {
			t.Fatal("unaligned base bits changed the address")
		}
	})
}
