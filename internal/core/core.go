// Package core implements the functional semantics and timing parameters of
// the paper's cryptographic instruction-set extensions — the primary
// contribution of "Architectural Support for Fast Symmetric-Key
// Cryptography" (ASPLOS 2000):
//
//   - ROL/ROR: 32- and 64-bit rotates (1 cycle on a rotator/XBOX unit);
//   - ROLX/RORX: constant rotate fused with XOR into the destination;
//   - MULMOD: multiplication modulo 2^16+1 in the IDEA convention
//     (4 cycles on a multiplier lane);
//   - SBOX/SBOXSYNC: substitution-table lookups with zero-latency address
//     generation against 1KB-aligned 256x32-bit tables (2 cycles through a
//     D-cache port, 1 cycle through a dedicated SBox cache);
//   - XBOX: partial general bit permutation, one destination byte per
//     instruction from eight packed 6-bit source indices.
//
// The emulator (internal/emu) uses the functional helpers; the timing model
// (internal/ooo) uses the latency constants and the SBoxCache model.
package core

import "math/bits"

// Latencies established by the paper's synthesis experiments (structural
// Verilog + EPOCH synthesis + SPICE, 0.25u TSMC), in cycles.
const (
	LatRotate       = 1 // ROL/ROR/ROLX/RORX and XBOX fit an ALU cycle
	LatMulMod       = 4 // 16-bit multiply + two parallel adds + muxing
	LatMul32        = 4 // word multiply with early-out
	LatMul64        = 7 // full quadword multiply
	LatSboxDCache   = 2 // SBOX through a data-cache port (no agen cycle)
	LatSboxCache    = 1 // SBOX through a dedicated SBox cache
	LatLoadAgen     = 1 // address-generation cycle of an ordinary load
	LatDCacheAccess = 2 // pipelined D-cache access
)

// SboxTableBytes is the architectural S-box table size: 256 entries of 32
// bits, 1KB-aligned so address generation is pure bit concatenation.
const SboxTableBytes = 1024

// SboxAlignMask isolates the table base from an (aligned) table address.
const SboxAlignMask = ^uint64(SboxTableBytes - 1)

// RotL32 rotates the low 32 bits of x left by k and zero-extends.
func RotL32(x uint64, k uint) uint64 {
	return uint64(bits.RotateLeft32(uint32(x), int(k&31)))
}

// RotR32 rotates the low 32 bits of x right by k and zero-extends.
func RotR32(x uint64, k uint) uint64 {
	return uint64(bits.RotateLeft32(uint32(x), -int(k&31)))
}

// RotL64 rotates x left by k.
func RotL64(x uint64, k uint) uint64 { return bits.RotateLeft64(x, int(k&63)) }

// RotR64 rotates x right by k.
func RotR64(x uint64, k uint) uint64 { return bits.RotateLeft64(x, -int(k&63)) }

// MulMod computes IDEA multiplication modulo 2^16+1 on the low 16 bits of
// a and b, where an operand encoding of 0 denotes 2^16 and a result of 2^16
// is encoded as 0. This matches the hardware unit's semantics: the unit
// implements Lai's low-high decomposition, which the MULMOD functional unit
// evaluates in LatMulMod cycles.
func MulMod(a, b uint64) uint64 {
	x := uint32(uint16(a))
	y := uint32(uint16(b))
	switch {
	case x == 0:
		// (2^16 * y) mod (2^16+1) = (1 - y) mod (2^16+1) = 0x10001 - y
		// for y in [1, 2^16]; y == 0 means both operands are 2^16 and
		// 2^32 mod (2^16+1) = 1.
		if y == 0 {
			return 1
		}
		return uint64(uint16(0x10001 - y))
	case y == 0:
		return uint64(uint16(0x10001 - x))
	default:
		t := x * y
		lo := t & 0xffff
		hi := t >> 16
		if lo >= hi {
			return uint64(uint16(lo - hi))
		}
		return uint64(uint16(lo - hi + 0x10001))
	}
}

// SboxAddr forms the SBOX effective address from a (1KB-aligned) table base
// and the selected index byte: base&~0x3ff | idxByte<<2. No addition is
// involved, which is why the instruction saves the agen cycle.
func SboxAddr(base uint64, index uint64, byteSel uint8) uint64 {
	idx := (index >> (8 * uint(byteSel&7))) & 0xff
	return (base & SboxAlignMask) | idx<<2
}

// Xbox computes the XBOX result: byte dstByte of the result receives, at
// bit j, bit pmap[6j:6j+6] of src; all other result bits are zero. A full
// 64-bit permutation composes eight XBOX results with OR; the 32-bit
// permutations in DES take 4 XBOX + 3 OR = 7 instructions as reported in
// the paper.
func Xbox(src, pmap uint64, dstByte uint8) uint64 {
	var out uint64
	base := 8 * uint(dstByte&7)
	for j := uint(0); j < 8; j++ {
		sel := (pmap >> (6 * j)) & 0x3f
		bit := (src >> sel) & 1
		out |= bit << (base + j)
	}
	return out
}
