package core

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestMulModAgainstModel(t *testing.T) {
	// Exhaustive-ish check of the low-high decomposition against direct
	// modular arithmetic in the IDEA zero-means-2^16 convention.
	model := func(a, b uint16) uint16 {
		x := uint64(a)
		if x == 0 {
			x = 65536
		}
		y := uint64(b)
		if y == 0 {
			y = 65536
		}
		r := x * y % 65537
		return uint16(r) // 65536 -> 0
	}
	step := 251 // prime stride covers the space well
	for a := 0; a < 65536; a += step {
		for b := 0; b < 65536; b += step {
			if got, want := uint16(MulMod(uint64(a), uint64(b))), model(uint16(a), uint16(b)); got != want {
				t.Fatalf("MulMod(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
	// Edges.
	cases := [][3]uint64{{0, 0, 1}, {0, 1, 0}, {1, 0, 0}, {2, 32768, 0}, {1, 1, 1}}
	for _, c := range cases {
		if got := MulMod(c[0], c[1]); got != c[2] {
			t.Fatalf("MulMod(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestMulModProperties(t *testing.T) {
	// Commutativity and the group identity (multiplying by 1).
	comm := func(a, b uint16) bool {
		return MulMod(uint64(a), uint64(b)) == MulMod(uint64(b), uint64(a))
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	ident := func(a uint16) bool { return MulMod(uint64(a), 1) == uint64(a) }
	if err := quick.Check(ident, nil); err != nil {
		t.Error(err)
	}
}

func TestRotates(t *testing.T) {
	prop := func(x uint64, k uint8) bool {
		kk := uint(k)
		return RotL32(x, kk) == uint64(bits.RotateLeft32(uint32(x), int(kk&31))) &&
			RotR32(RotL32(x, kk), kk) == x&0xffffffff &&
			RotR64(RotL64(x, kk), kk) == x
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSboxAddr(t *testing.T) {
	base := uint64(0x20000 + 2048) // 1KB aligned
	if got := SboxAddr(base, 0xddccbbaa, 0); got != base|0xaa<<2 {
		t.Fatalf("byte 0: got %#x", got)
	}
	if got := SboxAddr(base, 0xddccbbaa, 3); got != base|0xdd<<2 {
		t.Fatalf("byte 3: got %#x", got)
	}
	// Misaligned base bits must be masked off.
	if got := SboxAddr(base|0x3ff, 0, 0); got != base {
		t.Fatalf("alignment masking: got %#x", got)
	}
}

func TestXbox(t *testing.T) {
	// Identity permutation of byte 0.
	var m uint64
	for j := uint(0); j < 8; j++ {
		m |= uint64(j) << (6 * j)
	}
	if got := Xbox(0xa5, m, 0); got != 0xa5 {
		t.Fatalf("identity: got %#x", got)
	}
	// Bit reversal of byte 0.
	m = 0
	for j := uint(0); j < 8; j++ {
		m |= uint64(7-j) << (6 * j)
	}
	if got := Xbox(0x01, m, 0); got != 0x80 {
		t.Fatalf("reverse: got %#x", got)
	}
	// Destination byte placement.
	m = 0 // all bits select source bit 0
	if got := Xbox(1, m, 5); got != 0xff<<40 {
		t.Fatalf("byte placement: got %#x", got)
	}
}

func TestXboxComposesFullPermutation(t *testing.T) {
	// Eight XBOXes with per-byte maps must realize an arbitrary 64-bit
	// permutation (here: rotate-by-13).
	src := uint64(0x0123456789abcdef)
	var out uint64
	for k := uint8(0); k < 8; k++ {
		var m uint64
		for j := uint(0); j < 8; j++ {
			bitIdx := (uint(k)*8 + j + 13) % 64 // out bit = src bit+13
			m |= uint64(bitIdx) << (6 * j)
		}
		out |= Xbox(src, m, k)
	}
	if want := bits.RotateLeft64(src, -13); out != want {
		t.Fatalf("got %#x want %#x", out, want)
	}
}
