package pubkey

import (
	"math/big"
	"testing"

	"cryptoarch/internal/isa"
)

func TestMontMulAgainstBig(t *testing.T) {
	w := NewWorkload(1)
	mBig := w.M.Big()
	r := new(big.Int).Lsh(big.NewInt(1), 1024)
	rInv := new(big.Int).ModInverse(r, mBig)
	if rInv == nil {
		t.Fatal("modulus not odd?")
	}
	a := w.Base
	bN := w.RMod
	got := MontMul(&a, &bN, &w.M, w.N0)
	want := new(big.Int).Mul(a.Big(), bN.Big())
	want.Mul(want, rInv).Mod(want, mBig)
	if got.Big().Cmp(want) != 0 {
		t.Fatalf("MontMul mismatch:\n got %x\nwant %x", got.Big(), want)
	}
}

func TestModExpAgainstBig(t *testing.T) {
	w := NewWorkload(2)
	// A short exponent keeps the test fast while exercising all paths.
	var e Num
	e[0] = 0x10001
	got := ModExp(&w.Base, &e, &w.M, &w.RMod, &w.R2, w.N0)
	want := new(big.Int).Exp(w.Base.Big(), e.Big(), w.M.Big())
	if got.Big().Cmp(want) != 0 {
		t.Fatalf("ModExp mismatch:\n got %x\nwant %x", got.Big(), want)
	}
}

func TestN0Inv(t *testing.T) {
	for _, m0 := range []uint64{1, 3, 0xffffffffffffffff, 0x123456789abcdef1} {
		inv := N0Inv(m0)
		if m0*(-inv) != 1 {
			t.Fatalf("N0Inv(%#x) wrong", m0)
		}
	}
}

func TestKernelMatchesGolden(t *testing.T) {
	w := NewWorkload(3)
	// Short exponent: the kernel still runs the full 1024-bit scan, so
	// use a reduced exponent for test speed but keep a high bit to cover
	// both branch paths.
	w.Exp = Num{}
	w.Exp[0] = 0xc5 // 8 bits: squares and multiplies both exercised
	m, mem := NewRun(w, isa.FeatRot, 0x20000, 0x80000)
	m.Run(nil)
	got := ReadResult(mem, 0x20000)
	want := ModExp(&w.Base, &w.Exp, &w.M, &w.RMod, &w.R2, w.N0)
	if got != want {
		t.Fatalf("kernel modexp mismatch:\n got %x\nwant %x", got.Big(), want.Big())
	}
	t.Logf("kernel executed %d instructions", m.Icount)
}

func TestFromBigRoundTrip(t *testing.T) {
	w := NewWorkload(4)
	if FromBig(w.M.Big()) != w.M {
		t.Fatal("Big/FromBig roundtrip failed")
	}
}
