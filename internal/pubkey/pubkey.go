// Package pubkey is the public-key substrate for the paper's Figure 2
// (SSL characterization): a from-scratch multiprecision Montgomery
// multiplier and 1024-bit modular exponentiation, implemented both as a
// Go reference (validated against math/big) and as an AXP64 kernel so the
// session-establishment cost can be measured on the same machine models
// as the symmetric kernels.
package pubkey

import "math/bits"

// Limbs is the operand width: 16 x 64-bit = 1024 bits.
const Limbs = 16

// Num is a little-endian multiprecision integer.
type Num [Limbs]uint64

// N0Inv computes -m[0]^-1 mod 2^64 by Newton iteration (m must be odd).
func N0Inv(m0 uint64) uint64 {
	inv := uint64(1)
	for i := 0; i < 6; i++ {
		inv *= 2 - m0*inv
	}
	return -inv
}

// MontMul computes a*b*R^-1 mod m (R = 2^1024) with the CIOS method; the
// AXP64 kernel mirrors this loop structure exactly.
func MontMul(a, b, m *Num, n0inv uint64) Num {
	var t [Limbs + 2]uint64
	for i := 0; i < Limbs; i++ {
		// t += a * b[i]
		var c uint64
		for j := 0; j < Limbs; j++ {
			hi, lo := bits.Mul64(a[j], b[i])
			s, c1 := bits.Add64(t[j], lo, 0)
			s, c2 := bits.Add64(s, c, 0)
			t[j] = s
			c = hi + c1 + c2
		}
		s, c1 := bits.Add64(t[Limbs], c, 0)
		t[Limbs] = s
		t[Limbs+1] += c1

		// t += (t[0] * n0inv mod 2^64) * m; then shift one limb.
		mi := t[0] * n0inv
		c = 0
		for j := 0; j < Limbs; j++ {
			hi, lo := bits.Mul64(mi, m[j])
			s, c1 := bits.Add64(t[j], lo, 0)
			s, c2 := bits.Add64(s, c, 0)
			t[j] = s
			c = hi + c1 + c2
		}
		s, c1 = bits.Add64(t[Limbs], c, 0)
		t[Limbs] = s
		t[Limbs+1] += c1
		copy(t[:Limbs+1], t[1:])
		t[Limbs+1] = 0
	}
	// Conditional subtraction to the canonical range.
	var out Num
	copy(out[:], t[:Limbs])
	if t[Limbs] != 0 || !less(&out, m) {
		var borrow uint64
		for j := 0; j < Limbs; j++ {
			out[j], borrow = bits.Sub64(out[j], m[j], borrow)
		}
	}
	return out
}

func less(a, m *Num) bool {
	for j := Limbs - 1; j >= 0; j-- {
		if a[j] != m[j] {
			return a[j] < m[j]
		}
	}
	return false
}

// ModExp computes base^exp mod m via left-to-right square-and-multiply in
// the Montgomery domain. rMod is R mod m; r2 is R^2 mod m (precomputed at
// key-generation time, as real RSA implementations do).
func ModExp(base, exp, m, rMod, r2 *Num, n0inv uint64) Num {
	xm := MontMul(base, r2, m, n0inv) // to Montgomery domain
	acc := *rMod                      // Montgomery 1
	started := false
	for i := Limbs - 1; i >= 0; i-- {
		for bit := 63; bit >= 0; bit-- {
			if started {
				acc = MontMul(&acc, &acc, m, n0inv)
			}
			if exp[i]>>uint(bit)&1 != 0 {
				acc = MontMul(&acc, &xm, m, n0inv)
				started = true
			}
		}
	}
	var one Num
	one[0] = 1
	return MontMul(&acc, &one, m, n0inv) // out of the domain
}
