package pubkey

import (
	"fmt"
	"math/big"
	"math/rand"

	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/simmem"
)

// Context layout for the AXP64 modular-exponentiation kernel.
const (
	pkM      = 0
	pkR2     = 128
	pkRMod   = 256
	pkBase   = 384
	pkExp    = 512
	pkOut    = 640
	pkT      = 768 // 17-limb scratch
	pkX      = 912
	pkAcc    = 1040
	pkOne    = 1168
	pkN0     = 1296
	pkCtxLen = 1304
)

// BuildModExp assembles the 1024-bit Montgomery exponentiation kernel:
// out = base^exp mod m. It needs only the base ISA (MULQ/UMULH) — the
// paper's extensions target symmetric kernels — so the feature level only
// affects incidental rotates (none are used).
func BuildModExp(feat isa.Feature) *isa.Program {
	b := isa.NewBuilder("modexp-"+feat.String(), feat)

	mP, tP, n0 := isa.R4, isa.R5, isa.R6
	aP, bP, dP := isa.R9, isa.R10, isa.R11
	cnt, bi, c := isa.R12, isa.R14, isa.R15
	lo, hi, s, c1, c2 := isa.R20, isa.R21, isa.R22, isa.R23, isa.R24
	pa, pt, pbv := isa.R25, isa.R27, isa.R28
	t, t2 := isa.R7, isa.R13
	limb, bit, iR := isa.R0, isa.R1, isa.R2
	mmI := isa.R3 // montmul outer counter (must not alias the driver's)

	b.LDA(mP, pkM, isa.RA3)
	b.LDA(tP, pkT, isa.RA3)
	b.LDQ(n0, pkN0, isa.RA3)
	b.BR("main")

	// --- montmul: [dP] = [aP]*[bP]*R^-1 mod [mP] (CIOS) ---
	b.Label("montmul")
	// Zero the 18-limb scratch (the pre-shift accumulation needs one bit
	// beyond limb 16).
	for j := 0; j <= Limbs+1; j++ {
		b.STQ(isa.RZ, int64(8*j), tP)
	}
	b.MOV(bP, pbv)
	b.LoadImm(mmI, Limbs)
	b.Label("mmOuter")
	b.LDQ(bi, 0, pbv)
	// Phase 1: t += a * bi.
	b.MOV(aP, pa)
	b.MOV(tP, pt)
	b.MOV(isa.RZ, c)
	b.LoadImm(cnt, Limbs)
	b.Label("mmP1")
	b.LDQ(t, 0, pa)
	b.MULQ(t, bi, lo)
	b.UMULH(t, bi, hi)
	b.LDQ(s, 0, pt)
	b.ADDQ(s, lo, s)
	b.CMPULT(s, lo, c1)
	b.ADDQ(s, c, s)
	b.CMPULT(s, c, c2)
	b.STQ(s, 0, pt)
	b.ADDQ(hi, c1, hi)
	b.ADDQ(hi, c2, c)
	b.ADDQI(pa, 8, pa)
	b.ADDQI(pt, 8, pt)
	b.SUBQI(cnt, 1, cnt)
	b.BGT(cnt, "mmP1")
	b.LDQ(s, 0, pt)
	b.ADDQ(s, c, s)
	b.STQ(s, 0, pt)
	b.CMPULT(s, c, c1)
	b.LDQ(s, 8, pt)
	b.ADDQ(s, c1, s)
	b.STQ(s, 8, pt)
	// Phase 2: t += (t[0]*n0inv) * m.
	b.LDQ(t, 0, tP)
	b.MULQ(t, n0, bi) // bi = mi
	b.MOV(mP, pa)
	b.MOV(tP, pt)
	b.MOV(isa.RZ, c)
	b.LoadImm(cnt, Limbs)
	b.Label("mmP2")
	b.LDQ(t, 0, pa)
	b.MULQ(t, bi, lo)
	b.UMULH(t, bi, hi)
	b.LDQ(s, 0, pt)
	b.ADDQ(s, lo, s)
	b.CMPULT(s, lo, c1)
	b.ADDQ(s, c, s)
	b.CMPULT(s, c, c2)
	b.STQ(s, 0, pt)
	b.ADDQ(hi, c1, hi)
	b.ADDQ(hi, c2, c)
	b.ADDQI(pa, 8, pa)
	b.ADDQI(pt, 8, pt)
	b.SUBQI(cnt, 1, cnt)
	b.BGT(cnt, "mmP2")
	b.LDQ(s, 0, pt)
	b.ADDQ(s, c, s)
	b.STQ(s, 0, pt)
	b.CMPULT(s, c, c1)
	b.LDQ(s, 8, pt)
	b.ADDQ(s, c1, s)
	b.STQ(s, 8, pt)
	// Shift t down one limb (17 moves), clearing the top.
	b.MOV(tP, pt)
	b.LoadImm(cnt, Limbs+1)
	b.Label("mmShift")
	b.LDQ(s, 8, pt)
	b.STQ(s, 0, pt)
	b.ADDQI(pt, 8, pt)
	b.SUBQI(cnt, 1, cnt)
	b.BGT(cnt, "mmShift")
	b.STQ(isa.RZ, 0, pt)
	b.ADDQI(pbv, 8, pbv) // next b limb
	b.SUBQI(mmI, 1, mmI)
	b.BGT(mmI, "mmOuter")
	// Conditional subtraction: dst = t - m if t (with top limb) >= m.
	b.MOV(tP, pt)
	b.MOV(mP, pa)
	b.MOV(dP, pbv)
	b.MOV(isa.RZ, c) // borrow
	b.LoadImm(cnt, Limbs)
	b.Label("mmSub")
	b.LDQ(s, 0, pt)
	b.LDQ(t, 0, pa)
	b.SUBQ(s, t, t2)    // diff = s - m_j
	b.CMPULT(s, t, c1)  // borrow from the subtraction
	b.CMPULT(t2, c, c2) // borrow from subtracting the incoming borrow
	b.SUBQ(t2, c, t2)
	b.STQ(t2, 0, pbv)
	b.OR(c1, c2, c)
	b.ADDQI(pt, 8, pt)
	b.ADDQI(pa, 8, pa)
	b.ADDQI(pbv, 8, pbv)
	b.SUBQI(cnt, 1, cnt)
	b.BGT(cnt, "mmSub")
	// Keep the subtraction iff t[16] != 0 or no final borrow.
	b.LDQ(t, 8*Limbs, tP)
	b.BNE(t, "mmDone")
	b.BEQ(c, "mmDone")
	// Otherwise copy t[0..15] to dst.
	b.MOV(tP, pt)
	b.MOV(dP, pbv)
	b.LoadImm(cnt, Limbs)
	b.Label("mmCopy")
	b.LDQ(s, 0, pt)
	b.STQ(s, 0, pbv)
	b.ADDQI(pt, 8, pt)
	b.ADDQI(pbv, 8, pbv)
	b.SUBQI(cnt, 1, cnt)
	b.BGT(cnt, "mmCopy")
	b.Label("mmDone")
	b.RET()

	// --- driver ---
	b.Label("main")
	// xm = montmul(base, r2).
	b.LDA(aP, pkBase, isa.RA3)
	b.LDA(bP, pkR2, isa.RA3)
	b.LDA(dP, pkX, isa.RA3)
	b.BSR("montmul")
	// acc = rMod.
	for j := 0; j < Limbs; j++ {
		b.LDQ(s, pkRMod+int64(8*j), isa.RA3)
		b.STQ(s, pkAcc+int64(8*j), isa.RA3)
	}
	// Square-and-multiply over all 1024 exponent bits.
	b.LoadImm(iR, Limbs-1)
	b.Label("expLimb")
	b.S8ADDQ(iR, isa.RA3, t)
	b.LDQ(limb, pkExp, t)
	b.LoadImm(bit, 63)
	b.Label("expBit")
	b.LDA(aP, pkAcc, isa.RA3)
	b.LDA(bP, pkAcc, isa.RA3)
	b.LDA(dP, pkAcc, isa.RA3)
	b.BSR("montmul")
	b.SRL(limb, bit, t)
	b.ANDI(t, 1, t)
	b.BEQ(t, "expSkip")
	b.LDA(aP, pkAcc, isa.RA3)
	b.LDA(bP, pkX, isa.RA3)
	b.LDA(dP, pkAcc, isa.RA3)
	b.BSR("montmul")
	b.Label("expSkip")
	b.SUBQI(bit, 1, bit)
	b.BGE(bit, "expBit")
	b.SUBQI(iR, 1, iR)
	b.BGE(iR, "expLimb")
	// out = montmul(acc, one).
	b.LDA(aP, pkAcc, isa.RA3)
	b.LDA(bP, pkOne, isa.RA3)
	b.LDA(dP, pkOut, isa.RA3)
	b.BSR("montmul")
	b.HALT()
	return b.Build()
}

// Workload holds a deterministic RSA-like private operation.
type Workload struct {
	M, Base, Exp Num
	RMod, R2     Num
	N0           uint64
}

// NewWorkload derives a pseudorandom 1024-bit odd modulus (top bit set),
// base and exponent from seed, with the Montgomery constants precomputed.
func NewWorkload(seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{}
	for i := 0; i < Limbs; i++ {
		w.M[i] = rng.Uint64()
		w.Base[i] = rng.Uint64()
		w.Exp[i] = rng.Uint64()
	}
	w.M[0] |= 1
	w.M[Limbs-1] |= 1 << 63
	w.Exp[Limbs-1] |= 1 << 63
	// Base < M keeps Montgomery inputs canonical.
	w.Base[Limbs-1] %= w.M[Limbs-1]
	w.N0 = N0Inv(w.M[0])
	mBig := w.M.Big()
	r := new(big.Int).Lsh(big.NewInt(1), 1024)
	w.RMod = FromBig(new(big.Int).Mod(r, mBig))
	w.R2 = FromBig(new(big.Int).Mod(new(big.Int).Mul(r, r), mBig))
	return w
}

// Big converts to math/big for validation.
func (n *Num) Big() *big.Int {
	out := new(big.Int)
	for i := Limbs - 1; i >= 0; i-- {
		out.Lsh(out, 64)
		out.Or(out, new(big.Int).SetUint64(n[i]))
	}
	return out
}

// FromBig truncates a big.Int into a Num.
func FromBig(v *big.Int) Num {
	var n Num
	words := v.Bits()
	for i := 0; i < len(words) && i < Limbs; i++ {
		n[i] = uint64(words[i])
	}
	return n
}

// InitCtx writes a workload into simulated memory.
func InitCtx(mem *simmem.Mem, ctx uint64, w *Workload) {
	writeNum := func(off uint64, n *Num) {
		for i, v := range n {
			mem.Store(ctx+off+uint64(8*i), 8, v)
		}
	}
	writeNum(pkM, &w.M)
	writeNum(pkR2, &w.R2)
	writeNum(pkRMod, &w.RMod)
	writeNum(pkBase, &w.Base)
	writeNum(pkExp, &w.Exp)
	var one Num
	one[0] = 1
	writeNum(pkOne, &one)
	mem.Store(ctx+pkN0, 8, w.N0)
}

// NewRun prepares a functional machine executing the modexp kernel.
func NewRun(w *Workload, feat isa.Feature, ctx, rodata uint64) (*emu.Machine, *simmem.Mem) {
	mem := simmem.New(0)
	InitCtx(mem, ctx, w)
	prog := BuildModExp(feat)
	m := emu.New(prog, mem, rodata)
	m.SetArgs(0, 0, 0, ctx)
	return m, mem
}

// ReadResult extracts the kernel's output.
func ReadResult(mem *simmem.Mem, ctx uint64) Num {
	var n Num
	for i := 0; i < Limbs; i++ {
		n[i] = mem.Load(ctx+pkOut+uint64(8*i), 8)
	}
	return n
}

// CtxBytes is the kernel context size.
const CtxBytes = pkCtxLen

// Sanity guard: the context constants must stay consistent.
var _ = func() int {
	if pkCtxLen < pkN0+8 {
		panic(fmt.Sprintf("pubkey: context too small (%d)", pkCtxLen))
	}
	return 0
}()
