// Package simmem provides the flat little-endian memory arena shared by the
// functional emulator and the timing model.
package simmem

import (
	"encoding/binary"
	"fmt"
)

// Base is the lowest mapped simulated address. Address 0 is unmapped so
// that null dereferences in kernels fault loudly.
const Base = 0x10000

// DefaultSize is the default arena size (enough for the largest session,
// all cipher contexts, and program rodata).
const DefaultSize = 8 << 20

// Mem is a flat simulated memory [Base, Base+len).
type Mem struct {
	data []byte
}

// New returns a memory arena of the given size in bytes.
func New(size int) *Mem {
	if size <= 0 {
		size = DefaultSize
	}
	return &Mem{data: make([]byte, size)}
}

// Size returns the arena size in bytes.
func (m *Mem) Size() int { return len(m.data) }

// Clone returns an independent deep copy of the arena. Mid-trace
// architectural snapshots (emu.Snapshot) retain one so a resumed machine
// sees memory exactly as it was at the snapshot point, regardless of what
// the original machine does afterwards.
func (m *Mem) Clone() *Mem {
	data := make([]byte, len(m.data))
	copy(data, m.data)
	return &Mem{data: data}
}

func (m *Mem) slice(addr uint64, n int) []byte {
	if addr < Base || addr+uint64(n) > Base+uint64(len(m.data)) {
		panic(fmt.Sprintf("simmem: access [%#x,%#x) outside arena [%#x,%#x)",
			addr, addr+uint64(n), uint64(Base), Base+uint64(len(m.data))))
	}
	off := addr - Base
	return m.data[off : off+uint64(n)]
}

// Load returns the zero-extended little-endian value of the given size
// (1, 2, 4 or 8 bytes) at addr.
func (m *Mem) Load(addr uint64, size int) uint64 {
	s := m.slice(addr, size)
	switch size {
	case 1:
		return uint64(s[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(s))
	case 4:
		return uint64(binary.LittleEndian.Uint32(s))
	case 8:
		return binary.LittleEndian.Uint64(s)
	}
	panic(fmt.Sprintf("simmem: bad access size %d", size))
}

// Store writes the low size bytes of v at addr, little-endian.
func (m *Mem) Store(addr uint64, size int, v uint64) {
	s := m.slice(addr, size)
	switch size {
	case 1:
		s[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(s, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(s, uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(s, v)
	default:
		panic(fmt.Sprintf("simmem: bad access size %d", size))
	}
}

// WriteBytes copies p into memory at addr.
func (m *Mem) WriteBytes(addr uint64, p []byte) {
	copy(m.slice(addr, len(p)), p)
}

// ReadBytes copies n bytes at addr into a fresh slice.
func (m *Mem) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	copy(out, m.slice(addr, n))
	return out
}

// WriteUint32s stores each word consecutively from addr.
func (m *Mem) WriteUint32s(addr uint64, words []uint32) {
	for i, w := range words {
		m.Store(addr+uint64(4*i), 4, uint64(w))
	}
}

// ReadUint32s loads n consecutive words from addr.
func (m *Mem) ReadUint32s(addr uint64, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(m.Load(addr+uint64(4*i), 4))
	}
	return out
}
