package simmem

import (
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New(1 << 16)
	prop := func(off uint16, v uint64, szSel uint8) bool {
		size := []int{1, 2, 4, 8}[szSel%4]
		addr := Base + uint64(off)
		m.Store(addr, size, v)
		want := v
		if size < 8 {
			want = v & (1<<(8*uint(size)) - 1)
		}
		return m.Load(addr, size) == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLittleEndian(t *testing.T) {
	m := New(1 << 12)
	m.Store(Base, 4, 0x11223344)
	if m.Load(Base, 1) != 0x44 || m.Load(Base+3, 1) != 0x11 {
		t.Fatal("not little-endian")
	}
}

func TestBytesHelpers(t *testing.T) {
	m := New(1 << 12)
	m.WriteBytes(Base+16, []byte{1, 2, 3, 4})
	got := m.ReadBytes(Base+16, 4)
	if got[0] != 1 || got[3] != 4 {
		t.Fatal("WriteBytes/ReadBytes mismatch")
	}
	m.WriteUint32s(Base+32, []uint32{0xaabbccdd, 0x11223344})
	ws := m.ReadUint32s(Base+32, 2)
	if ws[0] != 0xaabbccdd || ws[1] != 0x11223344 {
		t.Fatal("WriteUint32s/ReadUint32s mismatch")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(1 << 12)
	cases := []func(){
		func() { m.Load(0, 8) },                     // below Base
		func() { m.Load(Base+uint64(m.Size()), 1) }, // past the end
		func() { m.Store(Base, 3, 0) },              // bad size
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}
