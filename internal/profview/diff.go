package profview

import (
	"fmt"
	"io"

	"cryptoarch/internal/diff"
	"cryptoarch/internal/isa"
)

// DiffText renders the differential annotated disassembly of two
// profiled runs. When the diff carries an aligned per-PC attribution
// (same program on both sides) it writes one listing with base/next/Δ
// slot columns and a gain/loss marker per instruction; otherwise the
// programs differ, and it falls back to the two sides' annotated
// listings rendered one after the other, so the shift is still readable
// side by side.
func DiffText(w io.Writer, base, next *Source, rd *diff.RunDiff, topN int) {
	d := rd.Delta
	fmt.Fprintf(w, "differential listing: %s  →  %s\n", d.BaseLabel, d.NextLabel)
	if rd.PCs == nil {
		fmt.Fprintf(w, "programs differ (%d vs %d instructions): rendering each side's annotated listing\n",
			len(base.Prog.Code), len(next.Prog.Code))
		fmt.Fprintf(w, "\n--- base ---\n")
		Text(w, base, topN)
		fmt.Fprintf(w, "\n--- next ---\n")
		Text(w, next, topN)
		return
	}
	fmt.Fprintf(w, "margin: base slots, next slots, Δslots (+ gained, - lost), top Δcause\n\n")
	isa.ListingTo(w, base.Prog, func(idx int) string {
		p := &rd.PCs.PCs[idx]
		baseSlots := base.Prof.PCs[idx].SlotTotal()
		nextSlots := uint64(0)
		if idx < len(next.Prof.PCs) {
			nextSlots = next.Prof.PCs[idx].SlotTotal()
		}
		if baseSlots == 0 && nextSlots == 0 {
			return fmt.Sprintf("%10s %10s %11s %-9s ", ".", ".", ".", "")
		}
		cause, _ := p.TopCause()
		mark := ""
		if t := p.Total(); t != 0 {
			mark = cause.String()
		}
		return fmt.Sprintf("%10d %10d %+11d %-9s ", baseSlots, nextSlots, p.Total(), mark)
	})
}
