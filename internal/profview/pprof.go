package profview

import (
	"compress/gzip"
	"io"

	"cryptoarch/internal/isa"
)

// pprof-compatible output, encoded by hand. The pprof profile.proto
// schema is small and stable, and the repo takes no third-party
// dependencies, so this file emits the wire format directly: a gzipped
// proto3 message with three-frame stacks (kernel root → basic block →
// instruction) and one sample value, the PC's weight under
// Source.Metric(). `go tool pprof` opens the result like any CPU
// profile; -top ranks exactly as the text view does (pinned in tests).
//
// Field numbers used (from pprof's profile.proto):
//
//	Profile:  sample_type=1  sample=2  location=4  function=5
//	          string_table=6  period_type=11  period=12
//	ValueType: type=1 unit=2
//	Sample:    location_id=1 (packed)  value=2 (packed)
//	Location:  id=1  line=4
//	Line:      function_id=1  line=2
//	Function:  id=1  name=2  system_name=3  filename=4  start_line=5

// pbuf is a minimal protobuf writer.
type pbuf struct{ b []byte }

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// uintField emits a varint-typed field (skipped when zero, per proto3).
func (p *pbuf) uintField(field int, v uint64) {
	if v == 0 {
		return
	}
	p.varint(uint64(field)<<3 | 0) // wire type 0: varint
	p.varint(v)
}

// bytesField emits a length-delimited field (sub-message, string, or
// packed repeated scalars).
func (p *pbuf) bytesField(field int, b []byte) {
	p.varint(uint64(field)<<3 | 2) // wire type 2: length-delimited
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *pbuf) stringField(field int, s string) {
	p.bytesField(field, []byte(s))
}

// packed encodes a packed repeated varint field payload.
func packed(vals []uint64) []byte {
	var q pbuf
	for _, v := range vals {
		q.varint(v)
	}
	return q.b
}

// strtab interns strings for the profile's string table; index 0 is ""
// as the format requires.
type strtab struct {
	idx map[string]uint64
	tab []string
}

func newStrtab() *strtab {
	return &strtab{idx: map[string]uint64{"": 0}, tab: []string{""}}
}

func (s *strtab) id(str string) uint64 {
	if i, ok := s.idx[str]; ok {
		return i
	}
	i := uint64(len(s.tab))
	s.idx[str] = i
	s.tab = append(s.tab, str)
	return i
}

// WritePprof writes the gzipped pprof-format profile for s.
func WritePprof(w io.Writer, s *Source) error {
	wt, _ := s.weights()
	pcs := sortedWeightedPCs(wt)
	starts := isa.BasicBlockStarts(s.Prog)
	str := newStrtab()
	filename := str.id(s.Prog.Name + ".axp")

	// Function and location tables. IDs must be nonzero; functions and
	// locations share IDs one-to-one (each location has a single line
	// entry pointing at its function).
	type fn struct {
		id        uint64
		name      uint64
		startLine uint64
	}
	var fns []fn
	addFn := func(name string, startLine int) uint64 {
		id := uint64(len(fns) + 1)
		fns = append(fns, fn{id: id, name: str.id(name), startLine: uint64(startLine)})
		return id
	}
	rootID := addFn(s.Root, 0)
	blockID := map[int]uint64{}
	for _, leader := range starts {
		blockID[leader] = addFn(isa.BlockName(s.Prog, leader), leader)
	}

	var prof pbuf

	// sample_type: one value per sample, named after the ranking metric.
	var vt pbuf
	vt.uintField(1, str.id(s.Metric()))
	vt.uintField(2, str.id("count"))
	prof.bytesField(1, vt.b)

	// One sample per weighted PC: stack leaf→root.
	for _, pc := range pcs {
		leafID := addFn(FrameName(s.Prog, pc), pc)
		leader := isa.BlockOf(starts, pc)
		var smp pbuf
		smp.bytesField(1, packed([]uint64{leafID, blockID[leader], rootID}))
		smp.bytesField(2, packed([]uint64{wt[pc]}))
		prof.bytesField(2, smp.b)
	}

	// location table: one per function, line = start line.
	for _, f := range fns {
		var line pbuf
		line.uintField(1, f.id)
		line.uintField(2, f.startLine)
		var loc pbuf
		loc.uintField(1, f.id)
		loc.bytesField(4, line.b)
		prof.bytesField(4, loc.b)
	}

	// function table.
	for _, f := range fns {
		var fb pbuf
		fb.uintField(1, f.id)
		fb.uintField(2, f.name)
		fb.uintField(3, f.name)
		fb.uintField(4, filename)
		fb.uintField(5, f.startLine)
		prof.bytesField(5, fb.b)
	}

	// string_table — written after all IDs are interned. Entry 0 is the
	// empty string; bytesField writes it as a zero-length field, which
	// proto3 decodes back to "".
	for _, t := range str.tab {
		prof.stringField(6, t)
	}

	// period_type/period: one slot (or exec cycle) per count.
	var pt pbuf
	pt.uintField(1, str.id(s.Metric()))
	pt.uintField(2, str.id("count"))
	prof.bytesField(11, pt.b)
	prof.uintField(12, 1)

	zw := gzip.NewWriter(w)
	if _, err := zw.Write(prof.b); err != nil {
		return err
	}
	return zw.Close()
}
