package profview_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
	"cryptoarch/internal/profview"
)

func profiledSource(t *testing.T, cfg ooo.Config) *profview.Source {
	t.Helper()
	pr, err := harness.ProfileKernel("blowfish", isa.FeatOpt, cfg, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	return &profview.Source{
		Root:  "blowfish/opt/" + cfg.Name,
		Prog:  pr.Prog,
		Prof:  pr.Profile,
		Stats: pr.Stats,
	}
}

// TestTextView checks the annotated view carries the summary, the hot
// table, and a weight annotation on every weighted instruction line.
func TestTextView(t *testing.T) {
	s := profiledSource(t, ooo.FourWidePlus)
	var b bytes.Buffer
	profview.Text(&b, s, 10)
	out := b.String()
	for _, want := range []string{
		"profile: blowfish/opt/4W+",
		"slot budget:",
		"top 10 PCs by slots:",
		"annotated listing (slots, share):",
		"; program blowfish-opt:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text view missing %q:\n%s", want, out)
		}
	}
	hot := s.Hot(1)[0]
	if !strings.Contains(out, fmt.Sprintf("%6d  %s", hot, isa.Disasm(&s.Prog.Code[hot]))) {
		t.Errorf("hottest PC %d not in the top table", hot)
	}
}

// TestFoldedFormat checks every folded line parses as
// root;block;pc<idx>_<op> weight and the weights sum to the profile's
// total slot budget.
func TestFoldedFormat(t *testing.T) {
	s := profiledSource(t, ooo.FourWide)
	var b bytes.Buffer
	profview.Folded(&b, s)
	line := regexp.MustCompile(`^([^;]+);([^;]+);pc(\d+)_(\S+) (\d+)$`)
	var sum uint64
	n := 0
	sc := bufio.NewScanner(&b)
	for sc.Scan() {
		m := line.FindStringSubmatch(sc.Text())
		if m == nil {
			t.Fatalf("malformed folded line: %q", sc.Text())
		}
		if m[1] != s.Root {
			t.Fatalf("folded root %q, want %q", m[1], s.Root)
		}
		w, _ := strconv.ParseUint(m[5], 10, 64)
		sum += w
		n++
	}
	if n == 0 {
		t.Fatal("no folded output")
	}
	if sum != s.Prof.TotalSlots() {
		t.Fatalf("folded weights sum to %d, slot budget is %d", sum, s.Prof.TotalSlots())
	}
}

// TestReportJSON checks the report marshals and ranks like Hot().
func TestReportJSON(t *testing.T) {
	s := profiledSource(t, ooo.FourWide)
	r := profview.BuildReport(s, 5)
	if len(r.Hot) == 0 || r.Hot[0].PC != s.Hot(1)[0] {
		t.Fatalf("report hot list disagrees with Hot(): %+v", r.Hot)
	}
	if r.Metric != "slots" || r.TotalWeight != s.Prof.TotalSlots() {
		t.Fatalf("report metric/total wrong: %+v", r)
	}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back profview.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Hot[0].Disasm == "" || back.Hot[0].Block == "" {
		t.Fatalf("round-tripped hot entry lost fields: %+v", back.Hot[0])
	}
}

// TestDataflowViewsUseExecCycles checks the no-slot-budget fallback.
func TestDataflowViewsUseExecCycles(t *testing.T) {
	s := profiledSource(t, ooo.Dataflow)
	if s.Metric() != "exec_cycles" {
		t.Fatalf("DF metric = %q", s.Metric())
	}
	var b bytes.Buffer
	profview.Folded(&b, s)
	if b.Len() == 0 {
		t.Fatal("DF folded output empty despite execute occupancy")
	}
	r := profview.BuildReport(s, 5)
	if len(r.Hot) == 0 || r.Hot[0].Weight == 0 {
		t.Fatalf("DF report has no weighted hot PCs: %+v", r.Hot)
	}
}

// TestPprofTopConcordance is the acceptance check: `go tool pprof -top`
// over the emitted protobuf ranks the same top-5 PC frames as the text
// view's hot table.
func TestPprofTopConcordance(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not on PATH: %v", err)
	}
	s := profiledSource(t, ooo.FourWidePlus)
	path := filepath.Join(t.TempDir(), "sim.pb.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := profview.WritePprof(f, s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(goBin, "tool", "pprof", "-top", "-nodecount=40", path).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -top: %v\n%s", err, out)
	}
	var pprofTop []string
	for _, l := range strings.Split(string(out), "\n") {
		fields := strings.Fields(l)
		if len(fields) == 0 {
			continue
		}
		name := fields[len(fields)-1]
		if strings.HasPrefix(name, "pc") && strings.Contains(name, "_") {
			pprofTop = append(pprofTop, name)
		}
		if len(pprofTop) == 5 {
			break
		}
	}
	var textTop []string
	for _, pc := range s.Hot(5) {
		textTop = append(textTop, profview.FrameName(s.Prog, pc))
	}
	if len(pprofTop) < 5 {
		t.Fatalf("pprof -top produced %d pc frames, want 5:\n%s", len(pprofTop), out)
	}
	for i := range textTop {
		if pprofTop[i] != textTop[i] {
			t.Fatalf("rank %d: pprof says %s, text view says %s\npprof: %v\ntext:  %v\n%s",
				i+1, pprofTop[i], textTop[i], pprofTop, textTop, out)
		}
	}
}
