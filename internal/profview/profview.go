// Package profview renders the per-PC cycle profiles produced by
// internal/ooo into human- and tool-facing formats: an annotated
// disassembly with a hot-PC table, a machine-readable JSON report, folded
// stacks for flamegraph.pl, and a pprof-compatible protobuf (pprof.go).
// All four views are derived from the same Source, so they agree on
// weights and ranking by construction.
package profview

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// Source bundles one profiled run for rendering: the static program the
// profile indexes, the per-PC counters, the run statistics, and a root
// name ("blowfish/opt/4W+") used as the stack root in folded and pprof
// output.
type Source struct {
	Root  string
	Prog  *isa.Program
	Prof  *ooo.Profile
	Stats *ooo.Stats
}

// Metric names the per-PC weight the source ranks by: commit slots on
// finite-width machines, execute-stage occupancy on machines with no slot
// budget (the dataflow model).
func (s *Source) Metric() string {
	if s.Prof.TotalSlots() != 0 {
		return "slots"
	}
	return "exec_cycles"
}

// weights returns the per-PC weight vector and its sum under Metric.
func (s *Source) weights() ([]uint64, uint64) {
	w := make([]uint64, len(s.Prof.PCs))
	slotted := s.Prof.TotalSlots() != 0
	var total uint64
	for pc := range s.Prof.PCs {
		if slotted {
			w[pc] = s.Prof.PCs[pc].SlotTotal()
		} else {
			w[pc] = s.Prof.PCs[pc].ExecCycles
		}
		total += w[pc]
	}
	return w, total
}

// FrameName is the per-PC frame identifier shared by the folded and pprof
// stacks and the concordance test: pc<idx>_<opcode>.
func FrameName(p *isa.Program, pc int) string {
	return fmt.Sprintf("pc%d_%s", pc, isa.P(p.Code[pc].Op).Name)
}

// Hot ranks the weighted PCs the way `go tool pprof -top` will rank the
// emitted samples — weight descending, ties by frame name ascending — so
// the text table, the JSON report, and pprof output all agree on order.
// (ooo.Profile.Hot breaks ties by ascending PC instead; views go through
// this method.)
func (s *Source) Hot(n int) []int {
	wt, _ := s.weights()
	idx := sortedWeightedPCs(wt)
	sort.SliceStable(idx, func(a, b int) bool {
		if wt[idx[a]] != wt[idx[b]] {
			return wt[idx[a]] > wt[idx[b]]
		}
		return FrameName(s.Prog, idx[a]) < FrameName(s.Prog, idx[b])
	})
	if n > 0 && len(idx) > n {
		idx = idx[:n]
	}
	return idx
}

// Text writes the annotated-disassembly view: a run summary, the top-n
// hot PCs with their dominant stall cause, and the full program listing
// with each instruction's weight and share in the margin.
func Text(w io.Writer, s *Source, topN int) {
	wt, total := s.weights()
	st := s.Stats
	fmt.Fprintf(w, "profile: %s\n", s.Root)
	fmt.Fprintf(w, "cycles: %d  instructions: %d  ipc: %.3f\n", st.Cycles, st.Instructions, st.IPC())
	if s.Metric() == "slots" {
		fmt.Fprintf(w, "slot budget: %d  retired: %d  stalled: %d\n",
			total, st.Stalls[ooo.StallCommit], st.Stalls.Stalled())
	} else {
		fmt.Fprintf(w, "no slot budget (infinite issue width); ranking by execute occupancy: %d cycles\n", total)
	}

	hot := s.Hot(topN)
	fmt.Fprintf(w, "\ntop %d PCs by %s:\n", len(hot), s.Metric())
	fmt.Fprintf(w, "%6s  %-24s %10s %12s %7s  %s\n", "pc", "op", "retired", s.Metric(), "share", "top stall")
	for _, pc := range hot {
		pp := &s.Prof.PCs[pc]
		stallCol := "-"
		if cause, n := pp.TopStall(); n > 0 {
			stallCol = fmt.Sprintf("%s (%d)", cause, n)
		}
		fmt.Fprintf(w, "%6d  %-24s %10d %12d %6.2f%%  %s\n",
			pc, isa.Disasm(&s.Prog.Code[pc]), pp.Retired, wt[pc], share(wt[pc], total)*100, stallCol)
	}

	fmt.Fprintf(w, "\nannotated listing (%s, share):\n", s.Metric())
	isa.ListingTo(w, s.Prog, func(idx int) string {
		if wt[idx] == 0 {
			return fmt.Sprintf("%12s %6s ", ".", ".")
		}
		return fmt.Sprintf("%12d %5.1f%% ", wt[idx], share(wt[idx], total)*100)
	})
}

func share(w, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(w) / float64(total)
}

// HotPC is one ranked instruction in the JSON report.
type HotPC struct {
	PC         int               `json:"pc"`
	Op         string            `json:"op"`
	Disasm     string            `json:"disasm"`
	Block      string            `json:"block"`
	Retired    uint64            `json:"retired"`
	Weight     uint64            `json:"weight"`
	Share      float64           `json:"share"`
	ExecCycles uint64            `json:"exec_cycles"`
	TopStall   string            `json:"top_stall,omitempty"`
	Stalls     map[string]uint64 `json:"stalls,omitempty"`
}

// Report is the machine-readable profile summary embedded in experiment
// JSON output and emitted by simprof -json.
type Report struct {
	Root         string  `json:"root"`
	Config       string  `json:"config"`
	Cycles       uint64  `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	IPC          float64 `json:"ipc"`
	Metric       string  `json:"metric"`
	TotalWeight  uint64  `json:"total_weight"`
	Hot          []HotPC `json:"hot"`
}

// ReportSchemaVersion stamps the JSON rendering of a profile report; bump
// on field renames or meaning changes.
const ReportSchemaVersion = 1

// MarshalJSON stamps schema_version onto every JSON rendering.
func (r Report) MarshalJSON() ([]byte, error) {
	type alias Report // drops the method, avoiding recursion
	return json.Marshal(struct {
		SchemaVersion int `json:"schema_version"`
		alias
	}{ReportSchemaVersion, alias(r)})
}

// BuildReport assembles the JSON report with the top-n hot PCs.
func BuildReport(s *Source, topN int) *Report {
	wt, total := s.weights()
	starts := isa.BasicBlockStarts(s.Prog)
	r := &Report{
		Root:         s.Root,
		Config:       s.Prof.Config,
		Cycles:       s.Stats.Cycles,
		Instructions: s.Stats.Instructions,
		IPC:          s.Stats.IPC(),
		Metric:       s.Metric(),
		TotalWeight:  total,
		Hot:          []HotPC{},
	}
	for _, pc := range s.Hot(topN) {
		pp := &s.Prof.PCs[pc]
		h := HotPC{
			PC:         pc,
			Op:         isa.P(s.Prog.Code[pc].Op).Name,
			Disasm:     isa.Disasm(&s.Prog.Code[pc]),
			Block:      isa.BlockName(s.Prog, isa.BlockOf(starts, pc)),
			Retired:    pp.Retired,
			Weight:     wt[pc],
			Share:      share(wt[pc], total),
			ExecCycles: pp.ExecCycles,
		}
		if cause, n := pp.TopStall(); n > 0 {
			h.TopStall = cause.String()
		}
		if pp.SlotTotal() > 0 {
			h.Stalls = map[string]uint64{}
			for c := ooo.StallCause(0); c < ooo.NumStallCauses; c++ {
				if pp.Slots[c] > 0 {
					h.Stalls[c.String()] = pp.Slots[c]
				}
			}
		}
		r.Hot = append(r.Hot, h)
	}
	return r
}

// Folded writes one line per weighted PC in Brendan Gregg's folded-stack
// format — "root;basic-block;pc<idx>_<op> weight" — ready for
// flamegraph.pl. Lines are emitted in ascending-PC order so the output is
// deterministic.
func Folded(w io.Writer, s *Source) {
	wt, _ := s.weights()
	starts := isa.BasicBlockStarts(s.Prog)
	for pc := range wt {
		if wt[pc] == 0 {
			continue
		}
		block := isa.BlockName(s.Prog, isa.BlockOf(starts, pc))
		fmt.Fprintf(w, "%s;%s;%s %d\n", s.Root, block, FrameName(s.Prog, pc), wt[pc])
	}
}

// sortedWeightedPCs returns the PCs with nonzero weight in ascending
// order (helper for the pprof encoder, which needs stable IDs).
func sortedWeightedPCs(wt []uint64) []int {
	pcs := make([]int, 0, len(wt))
	for pc := range wt {
		if wt[pc] != 0 {
			pcs = append(pcs, pc)
		}
	}
	sort.Ints(pcs)
	return pcs
}
