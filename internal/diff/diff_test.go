package diff_test

// Unit guards for the differential layer's degenerate inputs: zero-cycle
// sides, self-diffs, truncated profiles, machines with no slot budget,
// and the inconsistent-accounting shapes diff.New must refuse. Each of
// these is a divide-by-zero or false-attribution bug waiting to happen;
// the tests pin the graceful behavior.

import (
	"strings"
	"testing"

	"cryptoarch/internal/diff"
	"cryptoarch/internal/ooo"
)

// synth builds a synthetic run whose Config does not resolve to a named
// model, so the width comes from the slot accounting itself.
func synth(label string, cycles, insts uint64, causes map[ooo.StallCause]uint64) *diff.Run {
	st := &ooo.Stats{Config: "synthetic", Cycles: cycles, Instructions: insts}
	for c, v := range causes {
		st.Stalls[c] = v
	}
	return &diff.Run{Label: label, Stats: st}
}

// TestDiffZeroCycles: two empty runs diff to an all-zero delta with no
// division blowing up anywhere on the report path.
func TestDiffZeroCycles(t *testing.T) {
	rd, err := diff.New(synth("a", 0, 0, nil), synth("b", 0, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	d := rd.Delta
	if d.Speedup() != 0 {
		t.Fatalf("zero-cycle speedup %v, want 0 (guarded)", d.Speedup())
	}
	if d.BaseIPC() != 0 || d.NextIPC() != 0 {
		t.Fatalf("zero-cycle ipc %v/%v, want 0/0", d.BaseIPC(), d.NextIPC())
	}
	if d.SlotDelta() != 0 || d.Attributed() != 0 || d.Unattributed() != 0 {
		t.Fatalf("zero-cycle slots moved: %+v", d)
	}
	for c := ooo.StallCause(0); c < ooo.NumStallCauses; c++ {
		if d.Share(c) != 0 {
			t.Fatalf("share of %s = %v on an empty diff", c, d.Share(c))
		}
	}
	if d.ShiftLabel() != "-" {
		t.Fatalf("shift label %q on an empty diff, want -", d.ShiftLabel())
	}
	var sb strings.Builder
	diff.WriteText(&sb, rd, 5, nil) // must not panic or divide by zero
	if sb.Len() == 0 {
		t.Fatal("empty report")
	}
}

// TestDiffSelf: identical sides attribute exactly nothing.
func TestDiffSelf(t *testing.T) {
	mk := func(label string) *diff.Run {
		return synth(label, 10, 25, map[ooo.StallCause]uint64{
			ooo.StallCommit: 25, ooo.StallWindow: 10, ooo.StallIssue: 5,
		})
	}
	rd, err := diff.New(mk("a"), mk("b"))
	if err != nil {
		t.Fatal(err)
	}
	d := rd.Delta
	if d.Speedup() != 1 {
		t.Fatalf("self-diff speedup %v, want 1", d.Speedup())
	}
	if d.BaseWidth != 4 || d.NextWidth != 4 {
		t.Fatalf("derived widths %d/%d, want 4/4 (40 slots / 10 cycles)", d.BaseWidth, d.NextWidth)
	}
	if d.Attributed() != 0 || d.Magnitude() != 0 || d.ShiftLabel() != "-" {
		t.Fatalf("self-diff moved: attributed=%d magnitude=%d shift=%q",
			d.Attributed(), d.Magnitude(), d.ShiftLabel())
	}
}

// TestDiffProfilePadding: a next-side profile shorter than the base
// (e.g. a truncated saved run) is padded with zeros, so the missing PCs
// are attributed as pure losses and conservation still holds over the
// union of PCs.
func TestDiffProfilePadding(t *testing.T) {
	base := synth("base", 3, 6, map[ooo.StallCause]uint64{
		ooo.StallCommit: 2, ooo.StallWindow: 2, ooo.StallIssue: 2,
	})
	base.ProgramDigest = "prog-x"
	base.Profile = &ooo.Profile{Config: "synthetic", PCs: make([]ooo.PCProfile, 3)}
	base.Profile.PCs[0].Slots[ooo.StallCommit] = 2
	base.Profile.PCs[1].Slots[ooo.StallWindow] = 2
	base.Profile.PCs[2].Slots[ooo.StallIssue] = 2

	next := synth("next", 2, 4, map[ooo.StallCause]uint64{
		ooo.StallCommit: 2, ooo.StallWindow: 2,
	})
	next.ProgramDigest = "prog-x"
	next.Profile = &ooo.Profile{Config: "synthetic", PCs: make([]ooo.PCProfile, 2)}
	next.Profile.PCs[0].Slots[ooo.StallCommit] = 2
	next.Profile.PCs[1].Slots[ooo.StallWindow] = 2

	rd, err := diff.New(base, next)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Aligned() {
		t.Fatal("equal digests must align")
	}
	if got := len(rd.PCs.PCs); got != 3 {
		t.Fatalf("aligned over %d PCs, want 3 (union)", got)
	}
	// The PC present only in base reads as a pure loss of its slots.
	if got := rd.PCs.PCs[2].Total(); got != -2 {
		t.Fatalf("padded PC delta %d, want -2", got)
	}
	if rd.Delta.Attributed() != rd.Delta.SlotDelta() || rd.Delta.SlotDelta() != -2 {
		t.Fatalf("padding broke conservation: attributed %d of %d",
			rd.Delta.Attributed(), rd.Delta.SlotDelta())
	}
}

// TestDiffNoSlotBudget: sides with no slot budget (infinite-width
// machines) diff on cycles and IPC only — zero widths, zero attribution,
// no fabricated shares.
func TestDiffNoSlotBudget(t *testing.T) {
	rd, err := diff.New(synth("df-a", 100, 400, nil), synth("df-b", 80, 400, nil))
	if err != nil {
		t.Fatal(err)
	}
	d := rd.Delta
	if d.BaseWidth != 0 || d.NextWidth != 0 {
		t.Fatalf("no-slot widths %d/%d, want 0/0", d.BaseWidth, d.NextWidth)
	}
	if d.DeltaCycles() != -20 || d.Attributed() != 0 {
		t.Fatalf("no-slot delta: Δcycles=%d attributed=%d", d.DeltaCycles(), d.Attributed())
	}
	if s := d.Speedup(); s != 1.25 {
		t.Fatalf("speedup %v, want 1.25", s)
	}
	var sb strings.Builder
	diff.WriteText(&sb, rd, 5, nil)
	if !strings.Contains(sb.String(), "no slot budget") {
		t.Fatalf("report does not say the attribution degraded:\n%s", sb.String())
	}
}

// TestDiffRefusesInconsistentSide: slot accounting that is not a whole
// multiple of the cycle count cannot yield a width, so the diff refuses.
func TestDiffRefusesInconsistentSide(t *testing.T) {
	bad := synth("bad", 2, 5, map[ooo.StallCause]uint64{ooo.StallCommit: 5})
	if _, err := diff.New(bad, synth("ok", 0, 0, nil)); err == nil {
		t.Fatal("accepted 5 slots over 2 cycles")
	}
}

// TestDiffRefusesNamedWidthMismatch: when the run names a real model,
// the configured width is the law — accounting that disagrees with
// width × cycles is a conservation violation on that side alone.
func TestDiffRefusesNamedWidthMismatch(t *testing.T) {
	bad := synth("bad", 10, 20, map[ooo.StallCause]uint64{ooo.StallCommit: 20})
	bad.Stats.Config = "4W" // 4-wide: 10 cycles must charge 40 slots, not 20
	if _, err := diff.New(bad, bad); err == nil {
		t.Fatal("accepted a 4W run whose slots != 4 × cycles")
	}
}

// TestDiffRefusesProfileMismatch: a profile whose buckets do not sum to
// the run-level breakdown is corrupt; the diff must refuse rather than
// attribute against it.
func TestDiffRefusesProfileMismatch(t *testing.T) {
	r := synth("corrupt", 1, 2, map[ooo.StallCause]uint64{ooo.StallCommit: 2})
	r.Profile = &ooo.Profile{Config: "synthetic", PCs: make([]ooo.PCProfile, 1)}
	r.Profile.PCs[0].Slots[ooo.StallCommit] = 1 // profile says 1, stats say 2
	if _, err := diff.New(r, r); err == nil {
		t.Fatal("accepted a profile that does not sum to the run breakdown")
	}
}

// TestDiffRefusesMissingStats: a run without stats has nothing to diff.
func TestDiffRefusesMissingStats(t *testing.T) {
	if _, err := diff.New(&diff.Run{Label: "empty"}, synth("ok", 0, 0, nil)); err == nil {
		t.Fatal("accepted a side with no stats")
	}
}

// TestDiffNoAlignmentWithoutDigests: equal profile lengths alone must
// not align per-PC attribution — only matching program digests prove the
// two sides index the same code.
func TestDiffNoAlignmentWithoutDigests(t *testing.T) {
	mk := func(label string) *diff.Run {
		r := synth(label, 1, 1, map[ooo.StallCause]uint64{ooo.StallCommit: 1})
		r.Profile = &ooo.Profile{Config: "synthetic", PCs: make([]ooo.PCProfile, 1)}
		r.Profile.PCs[0].Slots[ooo.StallCommit] = 1
		return r
	}
	rd, err := diff.New(mk("a"), mk("b"))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Aligned() {
		t.Fatal("aligned two profiles with no program digests")
	}
}
