package diff_test

// The golden conservation suite of the differential accounting layer,
// mirroring TestProfileSumInvariant one level up: across all 8 ciphers,
// all ISA variants and all machine models, every pairwise diff must
// attribute its slot-budget move exactly — per-cause deltas summing to
// width × Δcycles on equal-width machines, to the general slot-budget
// difference across widths, and to all zeros on a self-diff. This is the
// CI must-pass gate for the layer: it proves the attribution is an
// accounting, not a heuristic.

import (
	"testing"

	"cryptoarch/internal/diff"
	"cryptoarch/internal/experiments"
	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// Small but non-trivial session, same scale as the harness profile
// invariants: every cipher retires real work on every model in well
// under a second.
const (
	consSession = 256
	consSeed    = 7
)

func profiledRun(t *testing.T, cipher string, feat isa.Feature, cfg ooo.Config) *diff.Run {
	t.Helper()
	spec := harness.CellSpec{Cipher: cipher, Feat: feat, Cfg: cfg}
	pr, err := harness.ProfileKernel(cipher, feat, cfg, consSession, consSeed)
	if err != nil {
		t.Fatalf("%s: %v", spec.Label(), err)
	}
	run, err := harness.DiffRun(spec.Label(), pr, spec)
	if err != nil {
		t.Fatalf("%s: %v", spec.Label(), err)
	}
	return run
}

// checkConserved asserts the full conservation law on one diff.
func checkConserved(t *testing.T, rd *diff.RunDiff) {
	t.Helper()
	d := rd.Delta
	label := d.BaseLabel + " vs " + d.NextLabel
	if err := rd.Check(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if got, want := d.Attributed(), d.SlotDelta(); got != want {
		t.Fatalf("%s: attributed %d slots of a %d-slot move", label, got, want)
	}
	if d.Unattributed() != 0 {
		t.Fatalf("%s: conservation residue %d", label, d.Unattributed())
	}
	// On equal-width machines the slot-budget move IS width × Δcycles —
	// the paper-facing statement of the law.
	if d.BaseWidth == d.NextWidth {
		if got, want := d.Attributed(), int64(d.BaseWidth)*d.DeltaCycles(); got != want {
			t.Fatalf("%s: Σ per-cause deltas %d != width %d × Δcycles %d",
				label, got, d.BaseWidth, d.DeltaCycles())
		}
	}
}

func TestDiffConservation(t *testing.T) {
	feats := []isa.Feature{isa.FeatNoRot, isa.FeatRot, isa.FeatOpt}
	models := []ooo.Config{ooo.FourWide, ooo.FourWidePlus, ooo.EightWidePlus, ooo.Dataflow}
	for _, cipher := range experiments.Ciphers {
		for _, cfg := range models {
			runs := map[isa.Feature]*diff.Run{}
			for _, feat := range feats {
				runs[feat] = profiledRun(t, cipher, feat, cfg)
			}
			// Every ordered base→next pair across the ISA ladder, plus
			// the self-diff (rot vs rot): same cells, zero everywhere.
			pairs := [][2]isa.Feature{
				{isa.FeatNoRot, isa.FeatRot},
				{isa.FeatRot, isa.FeatOpt},
				{isa.FeatNoRot, isa.FeatOpt},
				{isa.FeatRot, isa.FeatRot},
			}
			for _, p := range pairs {
				rd, err := diff.New(runs[p[0]], runs[p[1]])
				if err != nil {
					t.Fatalf("%s/%s: diff %s→%s: %v", cipher, cfg.Name, p[0], p[1], err)
				}
				checkConserved(t, rd)
				if cfg.Name == "DF" {
					// No slot budget on the dataflow machine: the diff
					// must degrade to cycle/IPC-only, never fabricate.
					if rd.Delta.BaseWidth != 0 || rd.Delta.Attributed() != 0 {
						t.Fatalf("%s/DF: slot attribution on a machine with no slot budget: %+v", cipher, rd.Delta)
					}
				}
				if p[0] == p[1] {
					if rd.Delta.DeltaCycles() != 0 || rd.Delta.Attributed() != 0 {
						t.Fatalf("%s/%s: self-diff moved: Δcycles=%d attributed=%d",
							cipher, cfg.Name, rd.Delta.DeltaCycles(), rd.Delta.Attributed())
					}
					if s := rd.Delta.Speedup(); s != 1 {
						t.Fatalf("%s/%s: self-diff speedup %v, want 1", cipher, cfg.Name, s)
					}
					for c, v := range rd.Delta.Causes {
						if v != 0 {
							t.Fatalf("%s/%s: self-diff charged %d slots to %s",
								cipher, cfg.Name, v, ooo.StallCause(c))
						}
					}
				}
			}
		}
		// One cross-width pair per cipher: the general form of the law,
		// NextSlots − BaseSlots, where width × Δcycles does not apply.
		rd, err := diff.New(
			profiledRun(t, cipher, isa.FeatRot, ooo.FourWide),
			profiledRun(t, cipher, isa.FeatRot, ooo.EightWidePlus))
		if err != nil {
			t.Fatalf("%s: cross-width diff: %v", cipher, err)
		}
		checkConserved(t, rd)
		if rd.Delta.BaseWidth != 4 || rd.Delta.NextWidth != 8 {
			t.Fatalf("%s: cross-width widths %d/%d, want 4/8", cipher, rd.Delta.BaseWidth, rd.Delta.NextWidth)
		}
		// Same program on both sides, so the per-PC attribution must be
		// aligned and itself conserve (Check already enforced the sums).
		if !rd.Aligned() {
			t.Fatalf("%s: same-program cross-width diff did not align per PC", cipher)
		}
	}
}
