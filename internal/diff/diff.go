// Package diff implements differential cycle accounting: it takes two
// timing runs and attributes the cycle delta between them exactly — per
// stall cause and, when both runs carry per-PC profiles of the same
// program, per static instruction. The package inherits its conservation
// law from the engine's slots == cycles × width invariant: each side's
// commit-slot breakdown sums to its own slot budget, so the per-cause
// slot deltas sum exactly to nextSlots − baseSlots (width × Δcycles when
// the two machines share a width). A diff is therefore provably complete
// — every lost or gained cycle is charged to a cause — never a heuristic
// decomposition. This is the measurement discipline behind the paper's
// Figures 4/5/10, which argue entirely in base-vs-feature deltas and the
// bottleneck shifts that explain them.
package diff

import (
	"fmt"
	"sort"

	"cryptoarch/internal/ooo"
)

// SchemaVersion stamps the JSON report and saved-run formats; bump on
// field renames or meaning changes.
const SchemaVersion = 1

// Run is one side of a differential comparison: the statistics of a
// single timing run, optionally with its per-PC profile, plus the
// identity the renderers display.
type Run struct {
	// Label names the run in reports, e.g. "blowfish/rot/4W".
	Label string
	// Stats is the run's commit-slot accounting (required).
	Stats *ooo.Stats
	// Profile is the run's per-PC slot attribution (optional; enables
	// per-instruction deltas when both sides profile the same program).
	Profile *ooo.Profile
	// ProgramDigest identifies the static program the profile indexes.
	// Two sides align per PC only when both digests are present and
	// equal: equal code length alone does not prove the same program.
	ProgramDigest string
}

// width resolves the run's commit width. When the Stats carry a
// resolvable model name the configured IssueWidth is used and checked
// against the slot accounting — that check is the conservation law's
// real teeth; otherwise the width is derived from the accounting itself
// (exact-division enforced by Stats.Width).
func (r *Run) width() (uint64, error) {
	derived, err := r.Stats.Width()
	if err != nil {
		return 0, fmt.Errorf("diff: %s: %w", r.Label, err)
	}
	if cfg, err := ooo.ModelByName(r.Stats.Config); err == nil && cfg.IssueWidth > 0 {
		w := uint64(cfg.IssueWidth)
		if slots := r.Stats.Stalls.Slots(); slots != w*r.Stats.Cycles {
			return 0, fmt.Errorf("diff: %s: %d slots != cycles %d × width %d (conservation violated on one side)",
				r.Label, slots, r.Stats.Cycles, w)
		}
		return w, nil
	}
	return derived, nil
}

// validate checks one side's internal accounting before any delta is
// formed: the slot invariant, and — when a profile rides along — that
// the per-PC buckets sum to the run-level breakdown cause by cause.
func (r *Run) validate() error {
	if r.Stats == nil {
		return fmt.Errorf("diff: %s: run has no stats", r.Label)
	}
	if _, err := r.width(); err != nil {
		return err
	}
	if r.Profile != nil {
		if got, want := r.Profile.Total(), r.Stats.Stalls; got != want {
			return fmt.Errorf("diff: %s: per-PC buckets do not sum to the run breakdown\nprofile %v\nrun     %v",
				r.Label, got, want)
		}
	}
	return nil
}

// Delta is the run-level differential accounting between two runs:
// signed per-cause slot deltas plus the headline counters both reports
// and gates read.
type Delta struct {
	BaseLabel, NextLabel   string
	BaseCycles, NextCycles uint64
	BaseInsts, NextInsts   uint64
	BaseWidth, NextWidth   uint64
	// Causes is the signed per-cause slot delta, next − base.
	Causes [ooo.NumStallCauses]int64
}

// DeltaCycles is the signed cycle difference, next − base.
func (d *Delta) DeltaCycles() int64 { return int64(d.NextCycles) - int64(d.BaseCycles) }

// BaseSlots and NextSlots are each side's whole slot budget.
func (d *Delta) BaseSlots() uint64 { return d.BaseWidth * d.BaseCycles }
func (d *Delta) NextSlots() uint64 { return d.NextWidth * d.NextCycles }

// SlotDelta is the signed slot-budget difference the per-cause deltas
// must account for: width × Δcycles when both sides share a width.
func (d *Delta) SlotDelta() int64 { return int64(d.NextSlots()) - int64(d.BaseSlots()) }

// Attributed is the sum of the signed per-cause deltas. Conservation
// demands Attributed == SlotDelta exactly.
func (d *Delta) Attributed() int64 {
	var t int64
	for _, v := range d.Causes {
		t += v
	}
	return t
}

// Unattributed is the conservation residue (0 on every valid diff).
func (d *Delta) Unattributed() int64 { return d.SlotDelta() - d.Attributed() }

// Speedup is base cycles over next cycles — >1 means next is faster.
// A zero-cycle next side rates 0, matching the repo's rate() guard.
func (d *Delta) Speedup() float64 {
	if d.NextCycles == 0 {
		return 0
	}
	return float64(d.BaseCycles) / float64(d.NextCycles)
}

// BaseIPC and NextIPC are the per-side retired-IPC figures (0 on a
// zero-cycle side).
func (d *Delta) BaseIPC() float64 { return ipc(d.BaseInsts, d.BaseCycles) }
func (d *Delta) NextIPC() float64 { return ipc(d.NextInsts, d.NextCycles) }

func ipc(insts, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(insts) / float64(cycles)
}

// Magnitude is the total absolute per-cause movement Σ|Δc|. It exceeds
// |SlotDelta| when causes shifted against each other — the bottleneck-
// shift signal even between runs of equal cost.
func (d *Delta) Magnitude() uint64 {
	var t uint64
	for _, v := range d.Causes {
		if v < 0 {
			t += uint64(-v)
		} else {
			t += uint64(v)
		}
	}
	return t
}

// Share is a cause's signed fraction of the total movement (0 when
// nothing moved — the self-diff case).
func (d *Delta) Share(c ooo.StallCause) float64 {
	m := d.Magnitude()
	if m == 0 {
		return 0
	}
	return float64(d.Causes[c]) / float64(m)
}

// TopShift returns the dominant loser (most negative delta) and gainer
// (most positive delta) causes. A side is meaningful only when its
// matching flag is true: a diff can move slots in one direction only.
func (d *Delta) TopShift() (loser, gainer ooo.StallCause, hasLoser, hasGainer bool) {
	var lo, hi int64
	for c := ooo.StallCause(0); c < ooo.NumStallCauses; c++ {
		if d.Causes[c] < lo {
			lo, loser = d.Causes[c], c
		}
		if d.Causes[c] > hi {
			hi, gainer = d.Causes[c], c
		}
	}
	return loser, gainer, lo != 0, hi != 0
}

// ShiftLabel renders the dominant bottleneck shift compactly:
// "loser→gainer", one-sided "loser→" / "→gainer", or "-" when the slot
// accounting is identical.
func (d *Delta) ShiftLabel() string {
	loser, gainer, hasLoser, hasGainer := d.TopShift()
	switch {
	case hasLoser && hasGainer:
		return loser.String() + "→" + gainer.String()
	case hasLoser:
		return loser.String() + "→"
	case hasGainer:
		return "→" + gainer.String()
	}
	return "-"
}

// PCDelta is one static instruction's contribution to the slot delta.
type PCDelta struct {
	PC                       int
	Causes                   [ooo.NumStallCauses]int64
	BaseRetired, NextRetired uint64
}

// Total is the PC's signed slot delta across all causes.
func (p *PCDelta) Total() int64 {
	var t int64
	for _, v := range p.Causes {
		t += v
	}
	return t
}

// TopCause is the cause with the largest absolute delta at this PC
// (StallCommit and 0 when nothing moved here).
func (p *PCDelta) TopCause() (ooo.StallCause, int64) {
	best, bestAbs := ooo.StallCommit, int64(0)
	for c := ooo.StallCause(0); c < ooo.NumStallCauses; c++ {
		a := p.Causes[c]
		if a < 0 {
			a = -a
		}
		if a > bestAbs {
			best, bestAbs = c, a
		}
	}
	if bestAbs == 0 {
		return ooo.StallCommit, 0
	}
	return best, p.Causes[best]
}

// ProfileDelta is the per-PC attribution of a slot delta between two
// profiled runs of the same program. When one side's profile is shorter
// (a truncated saved profile), the missing PCs are treated as zero on
// that side, so conservation still holds exactly over the union.
type ProfileDelta struct {
	PCs []PCDelta
}

// Total is the summed per-PC slot delta; conservation demands it equal
// the run-level SlotDelta exactly.
func (pd *ProfileDelta) Total() int64 {
	var t int64
	for i := range pd.PCs {
		t += pd.PCs[i].Total()
	}
	return t
}

// Movers returns up to n PC indices whose slots grew (gainers) and up to
// n whose slots shrank (losers), each ranked by absolute delta with ties
// broken by ascending PC.
func (pd *ProfileDelta) Movers(n int) (gainers, losers []int) {
	for i := range pd.PCs {
		switch t := pd.PCs[i].Total(); {
		case t > 0:
			gainers = append(gainers, i)
		case t < 0:
			losers = append(losers, i)
		}
	}
	rank := func(idx []int, sign int64) {
		sort.Slice(idx, func(a, b int) bool {
			wa, wb := sign*pd.PCs[idx[a]].Total(), sign*pd.PCs[idx[b]].Total()
			if wa != wb {
				return wa > wb
			}
			return idx[a] < idx[b]
		})
	}
	rank(gainers, 1)
	rank(losers, -1)
	if n > 0 && len(gainers) > n {
		gainers = gainers[:n]
	}
	if n > 0 && len(losers) > n {
		losers = losers[:n]
	}
	return gainers, losers
}

// RunDiff bundles one differential comparison: both sides, the run-level
// delta, and — when both sides profile the same program — the per-PC
// attribution.
type RunDiff struct {
	Base, Next *Run
	Delta      *Delta
	// PCs is nil when either profile is missing or the programs differ
	// (per-PC subtraction across different programs would be a lie; the
	// renderers fall back to per-side views).
	PCs *ProfileDelta
}

// Aligned reports whether the diff carries a per-PC attribution.
func (rd *RunDiff) Aligned() bool { return rd.PCs != nil }

// New computes the differential accounting between base and next. Both
// sides are validated (slot invariant, profile-sum invariant) before any
// delta is formed, and the result is checked against the conservation
// law; an inconsistent input is an error, never a partial diff.
func New(base, next *Run) (*RunDiff, error) {
	if err := base.validate(); err != nil {
		return nil, err
	}
	if err := next.validate(); err != nil {
		return nil, err
	}
	bw, _ := base.width()
	nw, _ := next.width()
	d := &Delta{
		BaseLabel:  base.Label,
		NextLabel:  next.Label,
		BaseCycles: base.Stats.Cycles,
		NextCycles: next.Stats.Cycles,
		BaseInsts:  base.Stats.Instructions,
		NextInsts:  next.Stats.Instructions,
		BaseWidth:  bw,
		NextWidth:  nw,
		Causes:     next.Stats.Stalls.DeltaSigned(&base.Stats.Stalls),
	}
	rd := &RunDiff{Base: base, Next: next, Delta: d}
	if base.Profile != nil && next.Profile != nil &&
		base.ProgramDigest != "" && base.ProgramDigest == next.ProgramDigest {
		rd.PCs = profileDelta(base.Profile, next.Profile)
	}
	if err := rd.Check(); err != nil {
		return nil, err
	}
	return rd, nil
}

// profileDelta subtracts two per-PC profiles, padding the shorter side
// with zeros so every PC of either side is accounted.
func profileDelta(base, next *ooo.Profile) *ProfileDelta {
	n := len(base.PCs)
	if len(next.PCs) > n {
		n = len(next.PCs)
	}
	pd := &ProfileDelta{PCs: make([]PCDelta, n)}
	var zero ooo.PCProfile
	for pc := 0; pc < n; pc++ {
		b, x := &zero, &zero
		if pc < len(base.PCs) {
			b = &base.PCs[pc]
		}
		if pc < len(next.PCs) {
			x = &next.PCs[pc]
		}
		pd.PCs[pc] = PCDelta{
			PC:          pc,
			Causes:      x.Slots.DeltaSigned(&b.Slots),
			BaseRetired: b.Retired,
			NextRetired: x.Retired,
		}
	}
	return pd
}

// Check verifies the conservation law on a formed diff: the signed
// per-cause deltas sum exactly to the slot-budget difference (width ×
// Δcycles when the widths agree), and the per-PC attribution — when
// present — sums to the same total, cause by cause. New runs it before
// returning; gates re-run it before trusting a report.
func (rd *RunDiff) Check() error {
	d := rd.Delta
	if got, want := d.Attributed(), d.SlotDelta(); got != want {
		return fmt.Errorf("diff: %s → %s: per-cause deltas sum to %d slots, slot budget moved %d (unattributed %d)",
			d.BaseLabel, d.NextLabel, got, want, want-got)
	}
	if rd.PCs != nil {
		var perCause [ooo.NumStallCauses]int64
		for i := range rd.PCs.PCs {
			for c, v := range rd.PCs.PCs[i].Causes {
				perCause[c] += v
			}
		}
		if perCause != d.Causes {
			return fmt.Errorf("diff: %s → %s: per-PC deltas do not sum to the run-level per-cause deltas",
				d.BaseLabel, d.NextLabel)
		}
		if got, want := rd.PCs.Total(), d.SlotDelta(); got != want {
			return fmt.Errorf("diff: %s → %s: per-PC deltas sum to %d slots, slot budget moved %d",
				d.BaseLabel, d.NextLabel, got, want)
		}
	}
	return nil
}
