package diff

import (
	"encoding/json"
	"fmt"
	"io"

	"cryptoarch/internal/ooo"
)

// CauseRow is one stall cause's line in the JSON report. Share is the
// signed fraction of the total per-cause movement (Σ|Δ|), so a pure
// bottleneck shift at equal cost still reads as ±shares.
type CauseRow struct {
	Cause string  `json:"cause"`
	Base  uint64  `json:"base_slots"`
	Next  uint64  `json:"next_slots"`
	Delta int64   `json:"delta_slots"`
	Share float64 `json:"share"`
}

// MoverRow is one per-PC line in the JSON report: an instruction that
// gained or lost slots between the runs, and under which cause.
type MoverRow struct {
	PC          int    `json:"pc"`
	Disasm      string `json:"disasm,omitempty"`
	Delta       int64  `json:"delta_slots"`
	TopCause    string `json:"top_cause"`
	BaseRetired uint64 `json:"base_retired"`
	NextRetired uint64 `json:"next_retired"`
}

// Report is the machine-readable rendering of one differential
// comparison — the artifact the CI smoke gate checks for exact
// conservation.
type Report struct {
	SchemaVersion int        `json:"schema_version"`
	Base          string     `json:"base"`
	Next          string     `json:"next"`
	BaseCycles    uint64     `json:"base_cycles"`
	NextCycles    uint64     `json:"next_cycles"`
	DeltaCycles   int64      `json:"delta_cycles"`
	Speedup       float64    `json:"speedup"`
	BaseInsts     uint64     `json:"base_instructions"`
	NextInsts     uint64     `json:"next_instructions"`
	BaseIPC       float64    `json:"base_ipc"`
	NextIPC       float64    `json:"next_ipc"`
	BaseWidth     uint64     `json:"base_width"`
	NextWidth     uint64     `json:"next_width"`
	BaseSlots     uint64     `json:"base_slots"`
	NextSlots     uint64     `json:"next_slots"`
	SlotDelta     int64      `json:"slot_delta"`
	Attributed    int64      `json:"attributed_slots"`
	Unattributed  int64      `json:"unattributed_slots"`
	Conserved     bool       `json:"conserved"`
	Aligned       bool       `json:"aligned"`
	Causes        []CauseRow `json:"causes"`
	Gainers       []MoverRow `json:"gainers,omitempty"`
	Losers        []MoverRow `json:"losers,omitempty"`
}

// DisasmFunc renders one static instruction for mover rows; nil leaves
// the disassembly column empty (saved runs carry no program).
type DisasmFunc func(pc int) string

// BuildReport assembles the JSON report with up to topN movers per
// direction.
func BuildReport(rd *RunDiff, topN int, disasm DisasmFunc) *Report {
	d := rd.Delta
	r := &Report{
		SchemaVersion: SchemaVersion,
		Base:          d.BaseLabel,
		Next:          d.NextLabel,
		BaseCycles:    d.BaseCycles,
		NextCycles:    d.NextCycles,
		DeltaCycles:   d.DeltaCycles(),
		Speedup:       d.Speedup(),
		BaseInsts:     d.BaseInsts,
		NextInsts:     d.NextInsts,
		BaseIPC:       d.BaseIPC(),
		NextIPC:       d.NextIPC(),
		BaseWidth:     d.BaseWidth,
		NextWidth:     d.NextWidth,
		BaseSlots:     d.BaseSlots(),
		NextSlots:     d.NextSlots(),
		SlotDelta:     d.SlotDelta(),
		Attributed:    d.Attributed(),
		Unattributed:  d.Unattributed(),
		Conserved:     rd.Check() == nil,
		Aligned:       rd.Aligned(),
		Causes:        []CauseRow{},
	}
	base, next := &rd.Base.Stats.Stalls, &rd.Next.Stats.Stalls
	for c := ooo.StallCause(0); c < ooo.NumStallCauses; c++ {
		if base[c] == 0 && next[c] == 0 {
			continue
		}
		r.Causes = append(r.Causes, CauseRow{
			Cause: c.String(),
			Base:  base[c],
			Next:  next[c],
			Delta: d.Causes[c],
			Share: d.Share(c),
		})
	}
	if rd.PCs != nil {
		mover := func(pc int) MoverRow {
			p := &rd.PCs.PCs[pc]
			cause, _ := p.TopCause()
			m := MoverRow{
				PC:          pc,
				Delta:       p.Total(),
				TopCause:    cause.String(),
				BaseRetired: p.BaseRetired,
				NextRetired: p.NextRetired,
			}
			if disasm != nil {
				m.Disasm = disasm(pc)
			}
			return m
		}
		gainers, losers := rd.PCs.Movers(topN)
		for _, pc := range gainers {
			r.Gainers = append(r.Gainers, mover(pc))
		}
		for _, pc := range losers {
			r.Losers = append(r.Losers, mover(pc))
		}
	}
	return r
}

// WriteText renders the differential report for humans: headline
// counters, the per-cause delta table, and — when the sides align — the
// top per-PC movers.
func WriteText(w io.Writer, rd *RunDiff, topN int, disasm DisasmFunc) {
	d := rd.Delta
	fmt.Fprintf(w, "diff: %s  →  %s\n", d.BaseLabel, d.NextLabel)
	fmt.Fprintf(w, "cycles:       %12d → %-12d  Δ %+d  (speedup %.3fx)\n",
		d.BaseCycles, d.NextCycles, d.DeltaCycles(), d.Speedup())
	fmt.Fprintf(w, "instructions: %12d → %-12d  ipc %.3f → %.3f\n",
		d.BaseInsts, d.NextInsts, d.BaseIPC(), d.NextIPC())
	if d.BaseSlots() == 0 && d.NextSlots() == 0 {
		fmt.Fprintf(w, "no slot budget on either side (infinite issue width): cycle and IPC deltas only\n")
		return
	}
	fmt.Fprintf(w, "slot budget:  %12d → %-12d  Δ %+d  (width %s)\n",
		d.BaseSlots(), d.NextSlots(), d.SlotDelta(), widthLabel(d))
	fmt.Fprintf(w, "conservation: %+d of %+d slots attributed (residue %d)\n",
		d.Attributed(), d.SlotDelta(), d.Unattributed())

	fmt.Fprintf(w, "\n%-10s %14s %14s %14s %8s\n", "cause", "base", "next", "Δslots", "share")
	for c := ooo.StallCause(0); c < ooo.NumStallCauses; c++ {
		base, next := rd.Base.Stats.Stalls[c], rd.Next.Stats.Stalls[c]
		if base == 0 && next == 0 {
			continue
		}
		fmt.Fprintf(w, "%-10s %14d %14d %+14d %+7.1f%%\n",
			c, base, next, d.Causes[c], 100*d.Share(c))
	}
	if label := d.ShiftLabel(); label != "-" {
		fmt.Fprintf(w, "top shift: %s\n", label)
	} else {
		fmt.Fprintf(w, "no per-cause movement (identical slot accounting)\n")
	}

	if rd.PCs == nil {
		if rd.Base.Profile != nil && rd.Next.Profile != nil {
			fmt.Fprintf(w, "\nper-PC attribution unavailable: the two sides run different programs\n")
		}
		return
	}
	gainers, losers := rd.PCs.Movers(topN)
	writeMovers := func(title string, pcs []int) {
		if len(pcs) == 0 {
			return
		}
		fmt.Fprintf(w, "\n%s:\n%6s %12s %10s %10s  %-10s %s\n",
			title, "pc", "Δslots", "ret(base)", "ret(next)", "top cause", "instruction")
		for _, pc := range pcs {
			p := &rd.PCs.PCs[pc]
			cause, _ := p.TopCause()
			ins := ""
			if disasm != nil {
				ins = disasm(pc)
			}
			fmt.Fprintf(w, "%6d %+12d %10d %10d  %-10s %s\n",
				pc, p.Total(), p.BaseRetired, p.NextRetired, cause, ins)
		}
	}
	writeMovers(fmt.Sprintf("top %d slot gainers (next charged more)", len(gainers)), gainers)
	writeMovers(fmt.Sprintf("top %d slot losers (next charged less)", len(losers)), losers)
}

// widthLabel compresses the width pair for the text header.
func widthLabel(d *Delta) string {
	if d.BaseWidth == d.NextWidth {
		return fmt.Sprintf("%d", d.BaseWidth)
	}
	return fmt.Sprintf("%d → %d", d.BaseWidth, d.NextWidth)
}

// RunJSON is the saved-run interchange format: everything simdiff needs
// to re-attribute a run later without re-simulating it.
type RunJSON struct {
	SchemaVersion int          `json:"schema_version"`
	Label         string       `json:"label"`
	ProgramDigest string       `json:"program_digest,omitempty"`
	Stats         *ooo.Stats   `json:"stats"`
	Profile       *ooo.Profile `json:"profile,omitempty"`
}

// EncodeRun writes a run as indented JSON.
func EncodeRun(w io.Writer, r *Run) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(RunJSON{
		SchemaVersion: SchemaVersion,
		Label:         r.Label,
		ProgramDigest: r.ProgramDigest,
		Stats:         r.Stats,
		Profile:       r.Profile,
	})
}

// DecodeRun reads a saved run back, validating the pieces a diff needs.
func DecodeRun(rdr io.Reader) (*Run, error) {
	var rj RunJSON
	if err := json.NewDecoder(rdr).Decode(&rj); err != nil {
		return nil, fmt.Errorf("diff: decode run: %w", err)
	}
	if rj.SchemaVersion < 1 || rj.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("diff: saved run has schema %d, this binary understands 1..%d",
			rj.SchemaVersion, SchemaVersion)
	}
	if rj.Stats == nil {
		return nil, fmt.Errorf("diff: saved run %q carries no stats", rj.Label)
	}
	return &Run{
		Label:         rj.Label,
		Stats:         rj.Stats,
		Profile:       rj.Profile,
		ProgramDigest: rj.ProgramDigest,
	}, nil
}
