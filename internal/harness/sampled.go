package harness

import (
	"math"
	"sync"
	"sync/atomic"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
	"cryptoarch/internal/metrics"
	"cryptoarch/internal/ooo"
)

// Interval sampling. Where chunked replay simulates every instruction of
// a session, sampling simulates only K representative measurement windows
// (each preceded by a warmup prefix) and extrapolates the whole-session
// statistics from them — the methodology that makes billion-instruction
// sessions sweepable at a bounded per-cell budget. The windows are spaced
// evenly through the trace, so periodic phase behaviour (block boundaries,
// key-schedule reuse) is sampled across its period. The estimate comes
// with a measured dispersion bound: the relative spread of per-interval
// CPI, which the error-bound test validates against exact runs across all
// eight ciphers.

// Default sampling parameters (used when the SampleOptions field is 0).
const (
	DefaultSampleIntervals     = 8
	DefaultSampleIntervalInsts = 32768
)

// SampleOptions configures TimeKernelSampled.
type SampleOptions struct {
	// Intervals is K, the number of measurement windows (0 =
	// DefaultSampleIntervals).
	Intervals int
	// IntervalInsts is L, the measured length of each window in
	// instructions (0 = DefaultSampleIntervalInsts).
	IntervalInsts int
	// WarmupInsts is the per-window warmup prefix (0 = DefaultChunkWarmup,
	// negative = none).
	WarmupInsts int
	// Workers caps worker goroutines, with the same semantics as
	// ChunkOptions.Workers.
	Workers int
}

// SampleReport describes a sampled run and its measured error bound.
type SampleReport struct {
	Intervals     int     `json:"intervals"`
	IntervalInsts int     `json:"interval_insts"`
	WarmupInsts   int     `json:"warmup_insts"`
	Workers       int     `json:"workers"`
	TotalInsts    uint64  `json:"total_insts"`
	SampledInsts  uint64  `json:"sampled_insts"`
	Coverage      float64 `json:"coverage"` // SampledInsts / TotalInsts
	// RelErrBound is the measured dispersion bound on the extrapolated
	// cycle count: 2*sd/(sqrt(K)*mean) over the per-interval CPIs — two
	// standard errors of the mean, relative. Zero when K < 2 or when the
	// run was exact.
	RelErrBound float64 `json:"rel_err_bound"`
	// Exact is set when sampling would have covered the whole session (or
	// the trace could not be addressed), so the serial exact path ran
	// instead and the returned Stats carry no extrapolation error.
	Exact bool `json:"exact"`
}

// TimeKernelSampled times one cipher-kernel session by simulating K
// warmup-preceded intervals of its recorded trace and extrapolating the
// whole-session Stats. Instructions is exact (the trace length); Cycles
// and the other counters are scaled estimates whose measured dispersion
// bound rides in the report. Falls back to the exact serial path when the
// sample would cover the session anyway, or when the trace cannot be
// retained whole.
func TimeKernelSampled(cipher string, feat isa.Feature, cfg ooo.Config, sessionBytes int, seed int64, opt SampleOptions) (*ooo.Stats, *SampleReport, error) {
	tr, codeLen, err := traces.traceFor(traceKey{cipher: cipher, feat: feat, session: sessionBytes, seed: seed, mode: modeEncrypt})
	if err != nil {
		return nil, nil, err
	}
	kern, err := kernels.Get(cipher)
	if err != nil {
		return nil, nil, err
	}

	k := opt.Intervals
	if k <= 0 {
		k = DefaultSampleIntervals
	}
	l := opt.IntervalInsts
	if l <= 0 {
		l = DefaultSampleIntervalInsts
	}
	w := opt.WarmupInsts
	switch {
	case w == 0:
		w = DefaultChunkWarmup
	case w < 0:
		w = 0
	}

	n := 0
	if tr != nil {
		n = len(tr.Recs)
	}
	// Exact fallback: no addressable trace, or the windows would tile the
	// whole session anyway (stride <= measured length), so sampling buys
	// nothing and the exact run is strictly better.
	if tr == nil || k >= n || n/k <= l {
		if reg := Metrics(); reg != nil {
			reg.Counter("sample.exact_fallbacks").Inc()
		}
		st, err := TimeKernel(cipher, feat, cfg, sessionBytes, seed)
		if err != nil {
			return nil, nil, err
		}
		return st, &SampleReport{
			Intervals: 1, TotalInsts: st.Instructions, SampledInsts: st.Instructions,
			Coverage: 1, Exact: true,
		}, nil
	}

	specs := make([]chunkSpec, k)
	for i := 0; i < k; i++ {
		s := i * n / k
		warm := w
		if warm > s {
			warm = s
		}
		specs[i] = chunkSpec{start: s, end: s + l, warm: warm}
	}

	workers := 1
	acquired := 0
	if opt.Workers > 0 {
		workers = opt.Workers
	} else {
		acquired = TryAcquireWorkers(k - 1)
		workers = acquired + 1
	}
	if workers > k {
		workers = k
	}
	defer ReleaseWorkers(acquired)

	if reg := Metrics(); reg != nil {
		reg.Counter("sample.runs").Inc()
		reg.Counter("sample.intervals").Add(int64(k))
	}
	tl := CurrentTimeline()
	parent := metrics.NoSpan
	if tl != nil {
		parent = tl.Begin("sampled", "sampled "+cfg.Name+" "+cipher+"/"+feat.String())
	}
	defer tl.End(parent)

	results := make([]chunkResult, k)
	var next int64 = -1
	work := func() {
		for {
			i := int(atomic.AddInt64(&next, 1))
			if i >= k {
				return
			}
			// Interval boundary: a cancelled run stops claiming windows,
			// mirroring the chunked-replay cancellation point.
			if err := Cancelled(); err != nil {
				results[i] = chunkResult{err: err}
				return
			}
			sp := metrics.NoSpan
			if tl != nil {
				sp = tl.BeginOn(parent, "interval", "interval "+cfg.Name)
			}
			results[i] = runWindow(tr, codeLen, kern.CtxBytes, cfg, specs[i], false)
			tl.End(sp)
		}
	}
	var wg sync.WaitGroup
	for g := 1; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer tl.ReleaseTrack()
			work()
		}()
	}
	work()
	wg.Wait()

	// Sum the measured windows and collect per-interval CPIs.
	sum := &ooo.Stats{Config: cfg.Name}
	cpis := make([]float64, 0, k)
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return nil, nil, r.err
		}
		sum.Accumulate(r.st)
		if r.st.Instructions > 0 {
			cpis = append(cpis, float64(r.st.Cycles)/float64(r.st.Instructions))
		}
	}

	est, rep := extrapolate(sum, cpis, uint64(n), cfg)
	rep.Intervals, rep.IntervalInsts, rep.WarmupInsts, rep.Workers = k, l, w, workers
	if reg := Metrics(); reg != nil {
		// Parts-per-million so the power-of-two histogram buckets resolve
		// sub-percent bounds.
		reg.Histogram("sample.rel_err_bound_ppm").Observe(int64(rep.RelErrBound * 1e6))
	}
	return est, rep, nil
}

// extrapolate scales the summed window stats to the whole session and
// computes the measured dispersion bound.
func extrapolate(sum *ooo.Stats, cpis []float64, totalInsts uint64, cfg ooo.Config) (*ooo.Stats, *SampleReport) {
	sampled := sum.Instructions
	f := float64(totalInsts) / float64(sampled)
	scale := func(v uint64) uint64 { return uint64(math.Round(float64(v) * f)) }

	est := &ooo.Stats{Config: cfg.Name}
	est.Cycles = scale(sum.Cycles)
	est.Instructions = totalInsts // exact: the trace length is known
	for i := range est.ClassCounts {
		est.ClassCounts[i] = scale(sum.ClassCounts[i])
	}
	est.Branches = scale(sum.Branches)
	est.Mispredicts = scale(sum.Mispredicts)
	est.Loads = scale(sum.Loads)
	est.Stores = scale(sum.Stores)
	est.SboxAccesses = scale(sum.SboxAccesses)
	est.SboxHits = scale(sum.SboxHits)
	est.DL1Misses = scale(sum.DL1Misses)
	est.L2Misses = scale(sum.L2Misses)
	est.TLBMisses = scale(sum.TLBMisses)

	// Scale the stall buckets, then repair the rounding residue so the
	// slot identity Slots() == Cycles*IssueWidth survives extrapolation on
	// finite-width machines (the residue lands in the largest bucket,
	// where it is relatively smallest).
	if sum.Stalls.Slots() > 0 {
		largest, largestV := 0, uint64(0)
		var got uint64
		for i := range est.Stalls {
			est.Stalls[i] = scale(sum.Stalls[i])
			got += est.Stalls[i]
			if est.Stalls[i] > largestV {
				largest, largestV = i, est.Stalls[i]
			}
		}
		want := est.Cycles * uint64(cfg.IssueWidth)
		est.Stalls[largest] += want - got // two's-complement safe either sign
	}

	// Dispersion bound: two relative standard errors of the per-interval
	// CPI mean.
	bound := 0.0
	if len(cpis) >= 2 {
		var mean float64
		for _, c := range cpis {
			mean += c
		}
		mean /= float64(len(cpis))
		var varsum float64
		for _, c := range cpis {
			d := c - mean
			varsum += d * d
		}
		sd := math.Sqrt(varsum / float64(len(cpis)-1))
		if mean > 0 {
			bound = 2 * sd / (math.Sqrt(float64(len(cpis))) * mean)
		}
	}

	return est, &SampleReport{
		TotalInsts:   totalInsts,
		SampledInsts: sampled,
		Coverage:     float64(sampled) / float64(totalInsts),
		RelErrBound:  bound,
	}
}
