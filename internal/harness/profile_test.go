package harness_test

import (
	"reflect"
	"testing"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// TestProfileSumInvariant is the profiler's accounting pin: for every
// cipher on the baseline 4W model, the per-PC slot buckets sum exactly —
// cause by cause — to the run-level StallBreakdown, the per-PC retired
// counts sum to Instructions, and the whole slot budget is
// Cycles*IssueWidth.
func TestProfileSumInvariant(t *testing.T) {
	const session = 256
	const seed = 7
	for _, cipher := range replayCiphers {
		pr, err := harness.ProfileKernel(cipher, isa.FeatOpt, ooo.FourWide, session, seed)
		if err != nil {
			t.Fatalf("%s: %v", cipher, err)
		}
		st, p := pr.Stats, pr.Profile
		if got := p.Total(); got != st.Stalls {
			t.Errorf("%s: per-PC buckets do not sum to the run breakdown\nprofile %v\nrun     %v",
				cipher, got, st.Stalls)
		}
		if got, want := p.TotalSlots(), st.Cycles*uint64(ooo.FourWide.IssueWidth); got != want {
			t.Errorf("%s: profile slots %d != cycles*width %d", cipher, got, want)
		}
		if got := p.TotalRetired(); got != st.Instructions {
			t.Errorf("%s: profile retired %d != instructions %d", cipher, got, st.Instructions)
		}
		if len(p.PCs) != len(pr.Prog.Code) {
			t.Errorf("%s: profile covers %d PCs, program has %d", cipher, len(p.PCs), len(pr.Prog.Code))
		}
		// A PC can only retire instructions that exist.
		for pc := range p.PCs {
			if p.PCs[pc].Retired > 0 && pc >= len(pr.Prog.Code) {
				t.Errorf("%s: retirement at out-of-range PC %d", cipher, pc)
			}
		}
		if len(p.Hot(5)) == 0 {
			t.Errorf("%s: no hot PCs in a %d-byte session", cipher, session)
		}
	}
}

// TestProfileSumInvariantAllModels extends the sum invariant to the other
// finite-width models and checks the dataflow model charges no slots but
// still counts retirements and execute occupancy.
func TestProfileSumInvariantAllModels(t *testing.T) {
	for _, cfg := range []ooo.Config{ooo.FourWidePlus, ooo.EightWidePlus} {
		pr, err := harness.ProfileKernel("rijndael", isa.FeatOpt, cfg, 256, 7)
		if err != nil {
			t.Fatal(err)
		}
		if got := pr.Profile.Total(); got != pr.Stats.Stalls {
			t.Errorf("%s: per-PC buckets do not sum to the run breakdown", cfg.Name)
		}
		if got, want := pr.Profile.TotalSlots(), pr.Stats.Cycles*uint64(cfg.IssueWidth); got != want {
			t.Errorf("%s: profile slots %d != cycles*width %d", cfg.Name, got, want)
		}
	}
	pr, err := harness.ProfileKernel("rijndael", isa.FeatOpt, ooo.Dataflow, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Profile.TotalSlots() != 0 {
		t.Errorf("DF: charged %d slots on a machine with no slot budget", pr.Profile.TotalSlots())
	}
	if got := pr.Profile.TotalRetired(); got != pr.Stats.Instructions {
		t.Errorf("DF: profile retired %d != instructions %d", got, pr.Stats.Instructions)
	}
	var exec uint64
	for i := range pr.Profile.PCs {
		exec += pr.Profile.PCs[i].ExecCycles
	}
	if exec == 0 {
		t.Error("DF: no execute occupancy recorded")
	}
	if len(pr.Profile.Hot(5)) == 0 {
		t.Error("DF: Hot() found nothing despite execute occupancy")
	}
}

// TestProfileReplayBitIdentical pins replay concordance for the profiler:
// a profile captured over a replayed trace is bit-identical — stats and
// every per-PC bucket — to one captured over live emulation.
func TestProfileReplayBitIdentical(t *testing.T) {
	harness.ResetTraceCache()
	defer harness.ResetTraceCache()
	const session = 128
	const seed = 987

	for _, cipher := range []string{"blowfish", "rc4", "rijndael"} {
		w, err := harness.NewWorkload(cipher, session, seed)
		if err != nil {
			t.Fatal(err)
		}
		live, err := harness.ProfileWorkload(w, isa.FeatRot, ooo.FourWide)
		if err != nil {
			t.Fatalf("%s live: %v", cipher, err)
		}
		// Prime the cache, then profile through the replay path.
		if _, err := harness.TimeKernel(cipher, isa.FeatRot, ooo.FourWide, session, seed); err != nil {
			t.Fatal(err)
		}
		replayed, err := harness.ProfileKernel(cipher, isa.FeatRot, ooo.FourWide, session, seed)
		if err != nil {
			t.Fatalf("%s replay: %v", cipher, err)
		}
		if *live.Stats != *replayed.Stats {
			t.Errorf("%s: replayed stats differ from live", cipher)
		}
		if !reflect.DeepEqual(live.Profile.PCs, replayed.Profile.PCs) {
			for pc := range live.Profile.PCs {
				if !reflect.DeepEqual(live.Profile.PCs[pc], replayed.Profile.PCs[pc]) {
					t.Errorf("%s: profile diverges first at PC %d:\nlive   %+v\nreplay %+v",
						cipher, pc, live.Profile.PCs[pc], replayed.Profile.PCs[pc])
					break
				}
			}
		}
	}
	st := harness.ReadTraceCacheStats()
	if st.Hits == 0 {
		t.Fatalf("profiled runs never hit the trace cache: %+v", st)
	}
}

// TestTraceCacheHitMiss pins the per-request hit/miss classification the
// sweep progress line and simbench report.
func TestTraceCacheHitMiss(t *testing.T) {
	harness.ResetTraceCache()
	defer harness.ResetTraceCache()
	if _, err := harness.TimeKernel("rc4", isa.FeatRot, ooo.FourWide, 64, 11); err != nil {
		t.Fatal(err)
	}
	st := harness.ReadTraceCacheStats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("first request should miss: %+v", st)
	}
	if _, err := harness.TimeKernel("rc4", isa.FeatRot, ooo.EightWidePlus, 64, 11); err != nil {
		t.Fatal(err)
	}
	st = harness.ReadTraceCacheStats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("second model of the same cell should hit: %+v", st)
	}
}
