package harness

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
	"cryptoarch/internal/store"
)

// This file threads the persistent content-addressed store under the
// in-memory trace cache. The cache stays the fast path and the unit of
// singleflight; the store is a write-through/read-back layer underneath
// it: record() faults a missing trace in from disk before paying
// functional emulation, and persists every freshly recorded complete
// trace. Store entries are keyed by the full trace identity — emulator
// version, kernel program digest, feature level, session, seed, mode — so
// an edit to any of them misses and re-records instead of replaying stale
// dynamics.

var storePtr atomic.Pointer[store.Store]

// SetStore installs the process-wide persistent store (nil, the default,
// disables persistence) and returns the previous one, so commands and
// tests can swap a store in and restore. The in-memory trace cache works
// identically with or without one; only cold-start cost changes.
func SetStore(s *store.Store) (prev *store.Store) {
	return storePtr.Swap(s)
}

// CurrentStore returns the installed store, or nil when persistence is
// off.
func CurrentStore() *store.Store { return storePtr.Load() }

// String names the trace mode for store keys and diagnostics.
func (m traceMode) String() string {
	switch m {
	case modeDecrypt:
		return "decrypt"
	case modeSetup:
		return "setup"
	}
	return "encrypt"
}

// progFor assembles the static program a key's trace was recorded against.
// Kernel builds are pure functions of (cipher, kind, feat), so the program
// is content-identical to the one the recording machine ran — that is
// exactly what the digest in the store key certifies.
func progFor(k traceKey) (*isa.Program, error) {
	kern, err := kernels.Get(k.cipher)
	if err != nil {
		return nil, err
	}
	return kern.ProgramFor(k.mode.String(), k.feat)
}

// digestCache memoizes kernel program digests: programs are immutable
// within a process, and hashing a few thousand instructions per cell
// request would be pointless work.
var digestCache struct {
	mu sync.Mutex
	m  map[traceKey]string
}

// digestFor returns the content digest of the key's program (session and
// seed do not participate; the cache key zeroes them).
func digestFor(k traceKey) (string, error) {
	ck := traceKey{cipher: k.cipher, feat: k.feat, mode: k.mode}
	digestCache.mu.Lock()
	d, ok := digestCache.m[ck]
	digestCache.mu.Unlock()
	if ok {
		return d, nil
	}
	prog, err := progFor(ck)
	if err != nil {
		return "", err
	}
	d = store.ProgramDigest(prog)
	digestCache.mu.Lock()
	if digestCache.m == nil {
		digestCache.m = make(map[traceKey]string)
	}
	digestCache.m[ck] = d
	digestCache.mu.Unlock()
	return d, nil
}

// KernelDigest returns the content digest of a cipher's assembled program
// of one kind ("encrypt", "decrypt" or "setup") at a feature level. The
// result-tier store keys embed it, so any kernel edit provably invalidates
// every stored result that executed those bytes.
func KernelDigest(cipher string, feat isa.Feature, kind string) (string, error) {
	var mode traceMode
	switch kind {
	case "encrypt":
		mode = modeEncrypt
	case "decrypt":
		mode = modeDecrypt
	case "setup":
		mode = modeSetup
	default:
		return "", fmt.Errorf("harness: unknown kernel kind %q", kind)
	}
	return digestFor(traceKey{cipher: cipher, feat: feat, mode: mode})
}

// storeKeyFor derives the trace-tier store key of a cache key.
func storeKeyFor(k traceKey) (string, error) {
	d, err := digestFor(k)
	if err != nil {
		return "", err
	}
	return store.TraceIdentity{
		EmuVersion: emu.Version,
		Cipher:     k.cipher,
		Feat:       k.feat.String(),
		ProgDigest: d,
		Session:    k.session,
		Seed:       k.seed,
		Mode:       k.mode.String(),
	}.Key(), nil
}

// encodeRecs packs trace records into the on-disk payload: per record,
// Addr as LE64 then (Idx | Br<<32) as LE64 — the exact byte sequence
// emu.ChecksumRecs hashes, so the store's payload checksum IS the trace
// checksum (pinned by TestStorePayloadChecksumIsTraceChecksum). One FNV-1a
// sum therefore serves file integrity on disk and replay integrity in
// memory.
func encodeRecs(recs []emu.TraceRec) []byte {
	b := make([]byte, len(recs)*emu.TraceRecBytes)
	for i := range recs {
		r := &recs[i]
		off := i * emu.TraceRecBytes
		binary.LittleEndian.PutUint64(b[off:off+8], r.Addr)
		binary.LittleEndian.PutUint64(b[off+8:off+16], uint64(r.Idx)|uint64(r.Br)<<32)
	}
	return b
}

// decodeRecs unpacks an on-disk payload; false on a torn length.
func decodeRecs(b []byte) ([]emu.TraceRec, bool) {
	if len(b)%emu.TraceRecBytes != 0 {
		return nil, false
	}
	recs := make([]emu.TraceRec, len(b)/emu.TraceRecBytes)
	for i := range recs {
		off := i * emu.TraceRecBytes
		recs[i].Addr = binary.LittleEndian.Uint64(b[off : off+8])
		w := binary.LittleEndian.Uint64(b[off+8 : off+16])
		recs[i].Idx = uint32(w)
		recs[i].Br = uint32(w >> 32)
	}
	return recs, true
}

// loadTraceFromStore tries to fault a complete trace in from the
// persistent store. On success the trace is structurally validated
// (Trace.Validate) against the freshly assembled program and returned with
// its checksum — which the store already verified on load — and static
// code length. Every failure (no store, key underivable, store miss,
// undecodable payload, validation) is just "not ok": the caller records
// live, exactly as if the store did not exist.
func loadTraceFromStore(k traceKey) (*emu.Trace, uint64, int, bool) {
	s := CurrentStore()
	if s == nil {
		return nil, 0, 0, false
	}
	key, err := storeKeyFor(k)
	if err != nil {
		return nil, 0, 0, false
	}
	payload, sum, ok := s.Get(store.TierTrace, key)
	if !ok {
		return nil, 0, 0, false
	}
	recs, ok := decodeRecs(payload)
	if !ok {
		return nil, 0, 0, false
	}
	prog, err := progFor(k)
	if err != nil {
		return nil, 0, 0, false
	}
	tr := &emu.Trace{Prog: prog, Recs: recs}
	if tr.Validate() != nil {
		return nil, 0, 0, false
	}
	return tr, sum, len(prog.Code), true
}

// saveTraceToStore persists a freshly recorded complete trace
// (write-through). Oversized sessions never reach here — they are not
// retained in memory either. Errors are deliberately dropped: persistence
// is an accelerator, and a full disk must not fail a simulation run.
func saveTraceToStore(k traceKey, tr *emu.Trace) {
	s := CurrentStore()
	if s == nil {
		return
	}
	key, err := storeKeyFor(k)
	if err != nil {
		return
	}
	s.Put(store.TierTrace, key, encodeRecs(tr.Recs))
}

// SetTraceBudget sets the trace-cache LRU byte budget (exposed as
// -trace-budget on asplos2000 and simbench) and returns the previous
// value. Non-positive values leave the budget unchanged. Shrinking evicts
// immediately.
func SetTraceBudget(n int) int {
	traces.mu.Lock()
	defer traces.mu.Unlock()
	prev := traceBudgetBytes
	if n > 0 {
		traceBudgetBytes = n
		traces.evictLocked()
	}
	return prev
}
