package harness

import (
	"strings"
	"testing"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
)

// TestSelfCheckAllCiphers is the differential tentpole: every cipher at
// every feature level, encrypt and decrypt, agrees byte-for-byte with the
// golden models on randomized sessions.
func TestSelfCheckAllCiphers(t *testing.T) {
	res, err := SelfCheck(SelfCheckOptions{Seed: 7, MaxBytes: 256, Decrypt: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	// 8 ciphers x 3 levels, encrypt everywhere and decrypt wherever a
	// kernel exists; at minimum the encrypt runs must all have happened.
	if min := len(kernels.Names()) * 3; res.Runs < min {
		t.Fatalf("self-check executed %d runs, want at least %d", res.Runs, min)
	}
}

// TestSelfCheckReportsDivergence pins the failure reporting: a session
// whose golden ciphertext has been tampered with must be reported with
// cipher, mode, seed and the first diverging byte.
func TestSelfCheckReportsDivergence(t *testing.T) {
	k, err := kernels.Get("blowfish")
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload("blowfish", 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := goldenCiphertext(w)
	if err != nil {
		t.Fatal(err)
	}
	golden[5] ^= 0x10
	fail := runEncrypt(k, isa.FeatRot, w, golden)
	if fail == nil {
		t.Fatal("tampered golden ciphertext not reported")
	}
	if fail.Cipher != "blowfish" || fail.Mode != "encrypt" || fail.Seed != 3 {
		t.Fatalf("failure misattributed: %+v", fail)
	}
	if msg := fail.Error(); !strings.Contains(msg, "byte 5") {
		t.Fatalf("failure %q does not locate the diverging byte", msg)
	}

	golden[5] ^= 0x10
	if fail := runDecrypt(k, isa.FeatRot, w, golden); fail != nil {
		t.Fatalf("clean decrypt round-trip reported: %v", fail)
	}
}

// TestSelfCheckUnknownCipher pins the harness-level error path.
func TestSelfCheckUnknownCipher(t *testing.T) {
	_, err := SelfCheck(SelfCheckOptions{Ciphers: []string{"blowfsh"}})
	if err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("err = %v, want a did-you-mean suggestion", err)
	}
}

// TestSelfCheckResultErr pins the aggregate error formatting.
func TestSelfCheckResultErr(t *testing.T) {
	r := &SelfCheckResult{Runs: 4}
	if r.Err() != nil {
		t.Fatal("clean result reports an error")
	}
	r.Failures = append(r.Failures, &SelfCheckFailure{
		Cipher: "idea", Feat: isa.FeatOpt, Mode: "decrypt", Session: 32, Seed: 9,
		Detail: "first divergence at byte 0: 0x01, want 0x02",
	})
	err := r.Err()
	if err == nil {
		t.Fatal("failing result reports no error")
	}
	for _, want := range []string{"1 of 4", "idea", "decrypt", "seed 9"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("aggregate error %q missing %q", err, want)
		}
	}
}
