package harness

import (
	"testing"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

func TestWorkloadDeterminism(t *testing.T) {
	a, err := NewWorkload("twofish", 256, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewWorkload("twofish", 256, 42)
	if string(a.Key) != string(b.Key) || string(a.Plain) != string(b.Plain) {
		t.Fatal("same seed must give the same workload")
	}
	c, _ := NewWorkload("twofish", 256, 43)
	if string(a.Key) == string(c.Key) {
		t.Fatal("different seeds must differ")
	}
}

func TestTimeKernelReproducible(t *testing.T) {
	x, err := TimeKernel("idea", isa.FeatOpt, ooo.FourWide, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	y, _ := TimeKernel("idea", isa.FeatOpt, ooo.FourWide, 512, 7)
	if x.Cycles != y.Cycles || x.Instructions != y.Instructions {
		t.Fatalf("non-deterministic simulation: %v vs %v", x.Cycles, y.Cycles)
	}
}

func TestCountMatchesTimedInstructions(t *testing.T) {
	n, err := CountKernel("rc6", isa.FeatRot, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	st, err := TimeKernel("rc6", isa.FeatRot, ooo.FourWide, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != n {
		t.Fatalf("timed committed %d, emulator ran %d", st.Instructions, n)
	}
}

func TestVariantInstructionOrdering(t *testing.T) {
	// The extensions only remove instructions: dynamic counts must obey
	// opt <= rot <= norot for every cipher.
	for _, cipher := range []string{"3des", "blowfish", "idea", "mars", "rc4", "rc6", "rijndael", "twofish"} {
		var n [3]uint64
		for i, feat := range []isa.Feature{isa.FeatOpt, isa.FeatRot, isa.FeatNoRot} {
			c, err := CountKernel(cipher, feat, 256, 5)
			if err != nil {
				t.Fatal(err)
			}
			n[i] = c
		}
		if !(n[0] <= n[1] && n[1] <= n[2]) {
			t.Errorf("%s: dynamic counts opt=%d rot=%d norot=%d not monotone", cipher, n[0], n[1], n[2])
		}
	}
}

func TestSetupTimed(t *testing.T) {
	st, err := TimeSetup("blowfish", isa.FeatRot, ooo.FourWide, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Blowfish setup runs the cipher 521 times; it must dwarf other
	// ciphers' setup (Figure 6's outlier).
	aes, err := TimeSetup("rijndael", isa.FeatRot, ooo.FourWide, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles < 20*aes.Cycles {
		t.Fatalf("blowfish setup (%d) should dwarf rijndael setup (%d)", st.Cycles, aes.Cycles)
	}
}

func TestUnknownCipher(t *testing.T) {
	if _, err := NewWorkload("des56", 64, 1); err == nil {
		t.Fatal("unknown cipher accepted")
	}
	if _, err := TimeKernel("nope", isa.FeatRot, ooo.FourWide, 64, 1); err == nil {
		t.Fatal("unknown cipher accepted by TimeKernel")
	}
}
