package harness

import (
	"reflect"
	"testing"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/metrics"
	"cryptoarch/internal/ooo"
)

// TestMetricsDisabledBitIdentical pins the zero-cost-when-disabled
// contract: with the registry removed (SetMetrics(nil)) a timing run
// produces bit-identical statistics to one under the default live
// registry. Telemetry observes the simulation; it must never perturb it.
func TestMetricsDisabledBitIdentical(t *testing.T) {
	const (
		cipher  = "blowfish"
		session = 2048
		seed    = int64(99)
	)
	cfg := ooo.FourWide

	ResetTraceCache()
	live, err := TimeKernel(cipher, isa.FeatRot, cfg, session, seed)
	if err != nil {
		t.Fatal(err)
	}

	prev := SetMetrics(nil)
	defer func() {
		SetMetrics(prev)
		ResetTraceCache()
	}()
	ResetTraceCache()
	off, err := TimeKernel(cipher, isa.FeatRot, cfg, session, seed)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(live, off) {
		t.Fatalf("stats differ with telemetry disabled:\nlive: %+v\noff:  %+v", live, off)
	}
	if st := ReadTraceCacheStats(); st != (TraceCacheStats{}) {
		t.Fatalf("trace-cache stats non-zero with telemetry disabled: %+v", st)
	}
}

// TestTraceCacheStatsOnRegistry pins the refactor of the bespoke
// trace-cache counters onto the metrics registry: the counters visible
// through ReadTraceCacheStats are the same values the registry snapshot
// reports under the tracecache.* names.
func TestTraceCacheStatsOnRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	prev := SetMetrics(reg)
	defer func() {
		SetMetrics(prev)
		ResetTraceCache()
	}()
	ResetTraceCache()

	cfg := ooo.FourWide
	for i := 0; i < 2; i++ { // miss+record, then hit+replay
		if _, err := TimeKernel("blowfish", isa.FeatRot, cfg, 1024, 7); err != nil {
			t.Fatal(err)
		}
	}
	st := ReadTraceCacheStats()
	if st.Misses == 0 || st.Hits == 0 || st.Records == 0 || st.Replays == 0 {
		t.Fatalf("expected miss/record and hit/replay traffic, got %+v", st)
	}
	want := map[string]int64{
		"tracecache.hits":    int64(st.Hits),
		"tracecache.misses":  int64(st.Misses),
		"tracecache.records": int64(st.Records),
		"tracecache.replays": int64(st.Replays),
	}
	got := map[string]int64{}
	for _, c := range reg.Snapshot().Counters {
		if _, ok := want[c.Name]; ok {
			got[c.Name] = c.Value
		}
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("registry counters disagree with ReadTraceCacheStats:\nwant %v\ngot  %v", want, got)
	}
}
