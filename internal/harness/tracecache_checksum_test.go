package harness

import (
	"strings"
	"testing"

	"cryptoarch/internal/check"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// Fault injection for the cached-trace checksum: flip one bit in a
// retained trace and prove the next replay request detects it, drops the
// entry, re-records, and serves correct data.

// recordedEntry records one small session and returns its cache entry.
func recordedEntry(t *testing.T, seed int64) (traceKey, *traceEntry) {
	t.Helper()
	k := traceKey{cipher: "blowfish", feat: isa.FeatRot, session: 512, seed: seed, mode: modeEncrypt}
	if _, _, err := traces.stream(k); err != nil {
		t.Fatal(err)
	}
	traces.mu.Lock()
	e := traces.entries[k]
	traces.mu.Unlock()
	if e == nil || e.tr == nil {
		t.Fatal("session was not retained as a trace")
	}
	return k, e
}

func TestCachedTraceChecksumRecovery(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	k, e := recordedEntry(t, 11)
	wantInsts := len(e.tr.Recs)

	in := check.NewInjector(17)
	idx := in.Intn(len(e.tr.Recs))
	e.tr.Recs[idx].Addr ^= 1 << uint(in.Intn(64))
	in.Note(check.FaultCachedTrace)
	t.Logf("flipped an address bit in record %d of %d", idx, wantInsts)

	// The next request must detect the corruption, evict, re-record, and
	// hand out a full-length clean replay.
	src, _, err := traces.stream(k)
	if err != nil {
		t.Fatalf("stream after corruption: %v", err)
	}
	ss, ok := src.(ooo.SizedStream)
	if !ok || ss.InstCount() != wantInsts {
		t.Fatalf("recovered stream has %T/%d instructions, want replay of %d", src, ss.InstCount(), wantInsts)
	}
	st := ReadTraceCacheStats()
	if st.ChecksumEvictions != 1 {
		t.Fatalf("ChecksumEvictions = %d, want 1 (stats: %+v)", st.ChecksumEvictions, st)
	}
	if st.Records != 2 {
		t.Fatalf("Records = %d, want the original plus the re-record", st.Records)
	}

	// The re-recorded entry is clean: further requests are plain hits.
	if _, _, err := traces.stream(k); err != nil {
		t.Fatal(err)
	}
	if st := ReadTraceCacheStats(); st.ChecksumEvictions != 1 {
		t.Fatalf("clean replay bumped ChecksumEvictions: %+v", st)
	}
}

// TestCachedTracePersistentCorruption pins the retry bound: when the
// re-recorded trace is corrupted again, the request fails with a
// cached-trace violation instead of looping.
func TestCachedTracePersistentCorruption(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	k, e := recordedEntry(t, 13)

	in := check.NewInjector(19)
	e.tr.Recs[in.Intn(len(e.tr.Recs))].Idx ^= 1 << uint(in.Intn(16))
	// Claim this request already paid its retry; the mismatch must fail.
	_, _, err := traces.streamChecked(k, true)
	if err == nil {
		t.Fatal("persistently corrupted trace served a stream")
	}
	v, ok := check.AsViolation(err)
	if !ok || v.Check != "cached-trace" {
		t.Fatalf("err = %v, want a cached-trace violation", err)
	}
	if !strings.Contains(err.Error(), "blowfish") {
		t.Fatalf("violation %q does not name the trace", err)
	}
}
