package harness_test

import (
	"fmt"
	"math"
	"testing"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

const chunkSession = 4096

func relErr(got, want uint64) float64 {
	return math.Abs(float64(got)-float64(want)) / float64(want)
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// TestChunkedReplayEquivalence pins the stitching semantics against the
// golden serial run: dispatch-side counters (Instructions, Loads, Stores,
// ClassCounts) stitch exactly, Branches carry only bounded fetch-boundary
// skew, the slot identity holds on the stitched breakdown, and the cycle
// estimate lands within the documented seam bound at default warmup.
func TestChunkedReplayEquivalence(t *testing.T) {
	for _, cipher := range []string{"blowfish", "rijndael"} {
		for _, cfg := range []ooo.Config{ooo.FourWide, ooo.EightWidePlus} {
			golden, err := harness.TimeKernel(cipher, isa.FeatRot, cfg, chunkSession, 12345)
			if err != nil {
				t.Fatal(err)
			}
			st, rep, err := harness.TimeKernelChunked(cipher, isa.FeatRot, cfg, chunkSession, 12345,
				harness.ChunkOptions{Chunks: 8})
			if err != nil {
				t.Fatal(err)
			}
			tag := fmt.Sprintf("%s/%s", cipher, cfg.Name)
			if rep.Serial || rep.Chunks != 8 {
				t.Fatalf("%s: expected a genuine 8-chunk run, got %+v", tag, rep)
			}
			if st.Instructions != golden.Instructions {
				t.Fatalf("%s: stitched %d insts, golden %d", tag, st.Instructions, golden.Instructions)
			}
			if st.Loads != golden.Loads || st.Stores != golden.Stores {
				t.Fatalf("%s: stitched loads/stores %d/%d, golden %d/%d",
					tag, st.Loads, st.Stores, golden.Loads, golden.Stores)
			}
			if st.ClassCounts != golden.ClassCounts {
				t.Fatalf("%s: stitched class counts diverge from golden", tag)
			}
			// Branches are charged at fetch, so each seam can skew the count
			// by at most the fetch-ahead depth.
			if d := absDiff(st.Branches, golden.Branches); d > 64*uint64(rep.Chunks) {
				t.Fatalf("%s: branch skew %d beyond seam bound", tag, d)
			}
			if e := relErr(st.Cycles, golden.Cycles); e > 0.05 {
				t.Fatalf("%s: cycle error %.4f beyond 5%% seam bound (stitched %d, golden %d)",
					tag, e, st.Cycles, golden.Cycles)
			}
			if got, want := st.Stalls.Slots(), st.Cycles*uint64(cfg.IssueWidth); got != want {
				t.Fatalf("%s: stitched slots %d != cycles*width %d", tag, got, want)
			}
			if rep.TotalInsts != golden.Instructions || rep.DiscardedInsts == 0 {
				t.Fatalf("%s: report %+v inconsistent with golden %d insts", tag, rep, golden.Instructions)
			}
		}
	}
}

// TestChunkedWarmupConvergence pins the headline error semantics: the
// stitched cycle estimate converges to the golden serial run as the
// warmup prefix grows.
func TestChunkedWarmupConvergence(t *testing.T) {
	golden, err := harness.TimeKernel("blowfish", isa.FeatRot, ooo.FourWide, chunkSession, 12345)
	if err != nil {
		t.Fatal(err)
	}
	errAt := func(warm int) float64 {
		st, _, err := harness.TimeKernelChunked("blowfish", isa.FeatRot, ooo.FourWide, chunkSession, 12345,
			harness.ChunkOptions{Chunks: 8, WarmupInsts: warm})
		if err != nil {
			t.Fatal(err)
		}
		return relErr(st.Cycles, golden.Cycles)
	}
	small := errAt(64)
	big := errAt(16384)
	// Either the long warmup strictly improved on the short one, or both
	// are already inside 1% — the tail where seam error is dominated by
	// per-chunk pipeline drain, not cold state.
	if big > small && big > 0.01 {
		t.Fatalf("cycle error did not converge with warmup: w=64 -> %.4f, w=16384 -> %.4f", small, big)
	}
}

// TestChunkedProfileStitch pins that per-PC profile stitching stays in
// lockstep with the stitched run-level breakdown.
func TestChunkedProfileStitch(t *testing.T) {
	pr, rep, err := harness.ProfileKernelChunked("blowfish", isa.FeatRot, ooo.FourWide, chunkSession, 12345,
		harness.ChunkOptions{Chunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Serial {
		t.Fatal("profile run fell back to serial")
	}
	if pr.Prog == nil || len(pr.Profile.PCs) == 0 {
		t.Fatal("stitched profile missing program or PCs")
	}
	if got, want := pr.Profile.Total(), pr.Stats.Stalls; got != want {
		t.Fatalf("stitched profile total %v != stitched stalls %v", got, want)
	}
	if got, want := pr.Profile.TotalSlots(), pr.Stats.Stalls.Slots(); got != want {
		t.Fatalf("stitched profile slots %d != stats slots %d", got, want)
	}
}

// TestChunkedSerialFallback pins that a degenerate chunk count falls back
// to the ordinary serial path, bit-identical.
func TestChunkedSerialFallback(t *testing.T) {
	golden, err := harness.TimeKernel("blowfish", isa.FeatRot, ooo.FourWide, 512, 9)
	if err != nil {
		t.Fatal(err)
	}
	st, rep, err := harness.TimeKernelChunked("blowfish", isa.FeatRot, ooo.FourWide, 512, 9,
		harness.ChunkOptions{Chunks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Serial {
		t.Fatalf("expected serial fallback, got %+v", rep)
	}
	if fmt.Sprintf("%+v", *st) != fmt.Sprintf("%+v", *golden) {
		t.Fatal("serial fallback differs from TimeKernel")
	}
}

// TestChunkedWorkerInvariance pins that the worker count is a pure
// wall-clock knob: 1 worker and 4 workers stitch bit-identical stats.
func TestChunkedWorkerInvariance(t *testing.T) {
	opt := harness.ChunkOptions{Chunks: 6}
	opt.Workers = 1
	one, _, err := harness.TimeKernelChunked("rc6", isa.FeatRot, ooo.FourWide, 1024, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	four, rep, err := harness.TimeKernelChunked("rc6", isa.FeatRot, ooo.FourWide, 1024, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 4 {
		t.Fatalf("explicit override resolved to %d workers", rep.Workers)
	}
	if fmt.Sprintf("%+v", *one) != fmt.Sprintf("%+v", *four) {
		t.Fatal("stitched stats depend on worker count")
	}
}

// TestWorkerBudget pins the shared-pool semantics: blocking acquires take
// single tokens, try-acquires take only what is free, and a resize is
// observed by later acquires.
func TestWorkerBudget(t *testing.T) {
	prev := harness.SetWorkerBudget(3)
	defer harness.SetWorkerBudget(prev)
	if harness.WorkerBudget() != 3 {
		t.Fatalf("budget %d, want 3", harness.WorkerBudget())
	}
	harness.AcquireWorker()
	if got := harness.TryAcquireWorkers(5); got != 2 {
		t.Fatalf("try-acquire got %d of the 2 free tokens", got)
	}
	if got := harness.TryAcquireWorkers(1); got != 0 {
		t.Fatalf("try-acquire on an empty pool got %d", got)
	}
	harness.ReleaseWorkers(2)
	harness.ReleaseWorker()
	if got := harness.TryAcquireWorkers(8); got != 3 {
		t.Fatalf("drained pool refilled to %d, want 3", got)
	}
	harness.ReleaseWorkers(3)
}
