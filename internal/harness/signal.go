package harness

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// Signal-driven shutdown for the long-running commands. The first
// SIGINT/SIGTERM cancels the run context — the supervised sweep winds down
// at its cooperative boundaries, the caller checkpoints and flushes, and
// the process exits with ExitInterrupt. A second signal means the user is
// done waiting: the force callback runs (typically os.Exit(ExitForced))
// without any further cleanup.

// Process exit codes shared by the commands. 130 follows the shell
// convention for SIGINT termination (128+2); 131 marks the forced
// second-signal exit that skipped cleanup.
const (
	ExitOK        = 0
	ExitError     = 1
	ExitUsage     = 2
	ExitPoisoned  = 5 // run completed, but one or more cells failed/panicked/timed out
	ExitInterrupt = 130
	ExitForced    = 131
)

// NotifyInterrupt returns a context cancelled by the first SIGINT/SIGTERM
// and a stop function that releases the signal handler (idempotent,
// always safe to defer). A second signal invokes force on the handler
// goroutine.
func NotifyInterrupt(parent context.Context, force func(sig os.Signal)) (context.Context, func()) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case <-ch:
			cancel()
		case <-done:
			return
		}
		select {
		case sig := <-ch:
			if force != nil {
				force(sig)
			}
		case <-done:
		}
	}()
	var stopOnce bool
	stop := func() {
		if stopOnce {
			return
		}
		stopOnce = true
		signal.Stop(ch)
		close(done)
		cancel()
	}
	return ctx, stop
}
