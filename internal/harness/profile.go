package harness

import (
	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
	"cryptoarch/internal/ooo"
)

// ProfiledRun couples one timing run's statistics with its per-PC cycle
// profile and the static program the profile indexes — everything the
// annotated-disassembly and flamegraph renderers need.
type ProfiledRun struct {
	Stats   *ooo.Stats
	Profile *ooo.Profile
	Prog    *isa.Program
}

// ProfileKernel runs one cipher-kernel session with per-PC profiling
// enabled. The instruction stream comes from the trace cache, so a cell
// that has already been timed (or profiled) replays without re-running
// the functional emulator, and a profiled replay is bit-identical to a
// profiled live run (pinned in profile_test.go).
func ProfileKernel(cipher string, feat isa.Feature, cfg ooo.Config, sessionBytes int, seed int64) (*ProfiledRun, error) {
	k, err := kernels.Get(cipher)
	if err != nil {
		return nil, err
	}
	src, codeLen, err := StreamKernel(cipher, feat, sessionBytes, seed)
	if err != nil {
		return nil, err
	}
	eng := ooo.NewEngine(cfg, src)
	eng.WarmData(kernels.CtxAddr, k.CtxBytes)
	eng.WarmCode(codeLen)
	prof := eng.EnableProfile(codeLen)
	st, err := meteredRun(eng, cfg, cipher, feat)
	if err != nil {
		return nil, err
	}
	// The kernel builder is deterministic: this program is instruction-
	// identical to the one the recorded trace indexes.
	return &ProfiledRun{Stats: st, Profile: prof, Prog: k.Build(feat)}, nil
}

// ProfileWorkload profiles a prepared workload on the live functional
// emulator, bypassing the trace cache — the reference the replay-
// concordance test compares ProfileKernel against.
func ProfileWorkload(w *Workload, feat isa.Feature, cfg ooo.Config) (*ProfiledRun, error) {
	k, err := kernels.Get(w.Cipher)
	if err != nil {
		return nil, err
	}
	m, err := Prepare(w, feat)
	if err != nil {
		return nil, err
	}
	eng := ooo.NewEngine(cfg, ooo.MachineStream{M: m})
	eng.WarmData(kernels.CtxAddr, k.CtxBytes)
	eng.WarmCode(len(m.Prog.Code))
	prof := eng.EnableProfile(len(m.Prog.Code))
	st, err := meteredRun(eng, cfg, w.Cipher, feat)
	if err != nil {
		return nil, err
	}
	return &ProfiledRun{Stats: st, Profile: prof, Prog: m.Prog}, nil
}
