package harness

// Cooperative cancellation. The supervised sweep installs its context
// here for the duration of a run; long-running harness orchestrators — the
// chunked-replay worker loop, the interval sampler — poll Cancelled() at
// their natural boundaries (between chunks, between intervals) and return
// the context's error instead of starting the next unit of work. A cell
// already inside the engine's cycle loop finishes normally: cancellation
// is cooperative and boundary-aligned, never preemptive, so every result
// that does land is exact and storable.

import (
	"context"
	"sync/atomic"
)

var runCtx atomic.Pointer[context.Context]

// SetRunContext installs the context cooperative checkpoints poll (nil
// disables checking) and returns the previous one so nested runs can
// restore it.
func SetRunContext(ctx context.Context) (prev context.Context) {
	var p *context.Context
	if ctx != nil {
		p = &ctx
	}
	old := runCtx.Swap(p)
	if old == nil {
		return nil
	}
	return *old
}

// RunContext returns the installed run context, or context.Background()
// when none is installed.
func RunContext() context.Context {
	if p := runCtx.Load(); p != nil {
		return *p
	}
	return context.Background()
}

// Cancelled returns the run context's error when the current run has been
// cancelled, nil otherwise. This is the single check every cooperative
// cancellation point calls.
func Cancelled() error {
	if p := runCtx.Load(); p != nil {
		return (*p).Err()
	}
	return nil
}
