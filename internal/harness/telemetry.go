package harness

// This file is the telemetry wiring: the harness owns the process-wide
// metrics registry and span timeline that the trace cache, the timing
// engine and the sweep scheduler report into. The registry defaults to a
// live one — the trace-cache counters have always been on, and
// simbench/asplos2000 JSON depends on them — while the timeline defaults
// to nil (off).
//
// Setting the registry to nil disables all telemetry: every instrumented
// site degrades to nil-handle no-ops, and simulated statistics and
// steady-state allocation counts are bit-identical to an uninstrumented
// run (pinned by TestMetricsDisabledBitIdentical and the zero-alloc
// tests).

import (
	"sync/atomic"

	"cryptoarch/internal/metrics"
	"cryptoarch/internal/store"
)

var (
	regPtr atomic.Pointer[metrics.Registry]
	tlPtr  atomic.Pointer[metrics.Timeline]
)

func init() {
	SetMetrics(metrics.NewRegistry())
}

// SetMetrics installs the process-wide telemetry registry (nil disables
// telemetry) and returns the previous one, so tests and benchmarks can
// swap in a scratch registry and restore.
func SetMetrics(r *metrics.Registry) (prev *metrics.Registry) {
	prev = regPtr.Swap(r)
	rebindTraceCounters(r)
	store.Rebind(r)
	return prev
}

// Metrics returns the current registry (nil when telemetry is disabled).
// Handles from it stay valid across SetMetrics; they just stop being read.
func Metrics() *metrics.Registry { return regPtr.Load() }

// SetTimeline installs the span timeline sweep execution reports into
// (nil, the default, disables span tracing) and returns the previous one.
func SetTimeline(t *metrics.Timeline) (prev *metrics.Timeline) {
	return tlPtr.Swap(t)
}

// CurrentTimeline returns the installed timeline, or nil when span
// tracing is off.
func CurrentTimeline() *metrics.Timeline { return tlPtr.Load() }
