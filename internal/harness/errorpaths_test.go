package harness

import (
	"strings"
	"testing"

	"cryptoarch/internal/check"
	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// Error-path tests: every malformed input a command-line flag can express
// must come back as an error from the harness API, never a panic from the
// golden models or the builder.

func TestUnknownCipherSuggestion(t *testing.T) {
	_, err := NewWorkload("blowfsh", 64, 1)
	if err == nil {
		t.Fatal("unknown cipher accepted")
	}
	if !strings.Contains(err.Error(), `did you mean "blowfish"`) {
		t.Fatalf("err = %v, want a blowfish suggestion", err)
	}
	if _, err := TimeKernel("rjindael", isa.FeatOpt, ooo.FourWide, 64, 1); err == nil ||
		!strings.Contains(err.Error(), `did you mean "rijndael"`) {
		t.Fatalf("err = %v, want a rijndael suggestion", err)
	}
	// Hopeless names still enumerate the valid set.
	if _, err := NewWorkload("chacha20", 64, 1); err == nil ||
		!strings.Contains(err.Error(), "valid:") || strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("err = %v, want the valid set without a suggestion", err)
	}
}

func TestBadSessionBytes(t *testing.T) {
	for _, n := range []int{0, -8} {
		if _, err := NewWorkload("blowfish", n, 1); err == nil ||
			!strings.Contains(err.Error(), "must be positive") {
			t.Fatalf("session %d: err = %v, want a positivity error", n, err)
		}
	}
	// Partial blocks are rejected for block ciphers...
	if _, err := NewWorkload("blowfish", 65, 1); err == nil ||
		!strings.Contains(err.Error(), "8-byte blocks") {
		t.Fatalf("err = %v, want a block-multiple error", err)
	}
	// ...but any positive length is fine for the RC4 stream kernel.
	if _, err := NewWorkload("rc4", 65, 1); err != nil {
		t.Fatalf("rc4 rejects a 65-byte session: %v", err)
	}
}

// TestRecordingBudgetFault pins harness-level propagation of the
// emulator's runaway guard: when the recording machine exhausts its
// instruction budget, the request fails with the typed error instead of
// caching (or resuming) a truncated trace.
func TestRecordingBudgetFault(t *testing.T) {
	ResetTraceCache()
	recordMaxInsts = 1000 // far below any real session
	defer func() { recordMaxInsts = 0; ResetTraceCache() }()

	_, _, err := StreamKernel("blowfish", isa.FeatRot, 4096, 99)
	if err == nil {
		t.Fatal("budget-faulted recording produced a stream")
	}
	if !check.IsBudget(err) {
		t.Fatalf("err = %v, want it to wrap *check.BudgetError", err)
	}
	if !strings.Contains(err.Error(), "recording blowfish") {
		t.Fatalf("err = %v, want attribution to the recording", err)
	}
	// The failed entry must not have been retained as a trace.
	if st := ReadTraceCacheStats(); st.Records != 0 {
		t.Fatalf("faulted recording was retained: %+v", st)
	}
}

// TestResumeStreamBudgetFaultFailsRun covers the oversized-trace path end
// to end: a session whose recording overflows the retention cap resumes
// live, and a budget fault during the live tail fails the timing run.
func TestResumeStreamBudgetFaultFailsRun(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()

	// Record a real (tiny) trace, then replay it through a machine whose
	// budget expires mid-stream by driving the resume path directly.
	w, err := NewWorkload("blowfish", 1024, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Prepare(w, isa.FeatRot)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInsts = 5000
	tr, complete := emu.Record(m, 1000, nil)
	if complete {
		t.Fatal("session unexpectedly fit in 1000 instructions")
	}
	if m.Err() != nil {
		t.Fatalf("premature fault during prefix: %v", m.Err())
	}
	_, err = ooo.NewEngine(ooo.FourWide, tr.Resume(m)).Run()
	if err == nil || !check.IsBudget(err) {
		t.Fatalf("Run over a faulting resume stream returned %v, want a budget error", err)
	}
}
