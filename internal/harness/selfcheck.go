package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
)

// Differential self-check: every AXP64 kernel, at every feature level, is
// run through the functional emulator on randomized sessions and its
// output compared byte-for-byte against the pure-Go golden cipher — the
// same cross-validation the test suite performs, packaged as a library
// call so cmd/simcheck (and CI) can run it against an installed binary.
// Every timing figure in this repository rests on the emulated streams
// being functionally correct; this is the check that keeps an emulator or
// kernel regression from producing plausible-looking cycle counts for a
// cipher that no longer encrypts.

// SelfCheckOptions configures a differential run. The zero value checks
// every cipher at every feature level with one randomized trial each.
type SelfCheckOptions struct {
	Ciphers  []string      // default: every registered kernel
	Feats    []isa.Feature // default: norot, rot, opt
	Trials   int           // randomized sessions per cipher x level; default 1
	Seed     int64         // base seed; trials derive their own from it
	MaxBytes int           // session length bound; default 512
	Decrypt  bool          // also decrypt the golden ciphertext and compare
}

// SelfCheckFailure is one divergence between the emulated kernel and the
// golden model.
type SelfCheckFailure struct {
	Cipher  string
	Feat    isa.Feature
	Mode    string // "encrypt" or "decrypt"
	Session int    // session bytes
	Seed    int64  // workload seed (replays the failure deterministically)
	Detail  string
}

func (f *SelfCheckFailure) Error() string {
	return fmt.Sprintf("%s/%v %s (session %d B, seed %d): %s",
		f.Cipher, f.Feat, f.Mode, f.Session, f.Seed, f.Detail)
}

// SelfCheckResult summarizes a differential run.
type SelfCheckResult struct {
	Runs     int // emulated sessions executed
	Failures []*SelfCheckFailure
}

// Err returns nil when every run matched, or an error naming the failures.
func (r *SelfCheckResult) Err() error {
	if len(r.Failures) == 0 {
		return nil
	}
	msgs := make([]string, len(r.Failures))
	for i, f := range r.Failures {
		msgs[i] = f.Error()
	}
	return fmt.Errorf("self-check: %d of %d runs diverged:\n  %s",
		len(r.Failures), r.Runs, strings.Join(msgs, "\n  "))
}

// sessionLen picks a randomized session length: at least one block, at
// most maxBytes, and always a whole number of blocks.
func sessionLen(rng *rand.Rand, blockBytes, maxBytes int) int {
	if blockBytes < 1 {
		blockBytes = 1
	}
	if maxBytes < blockBytes {
		maxBytes = blockBytes
	}
	return (1 + rng.Intn(maxBytes/blockBytes)) * blockBytes
}

// SelfCheck runs the differential harness and reports every divergence
// (it does not stop at the first, so one broken cipher cannot mask
// another). The returned error is non-nil only for harness-level problems
// — an unknown cipher name in opts, a kernel that fails to build;
// functional divergences are reported in the result.
func SelfCheck(opts SelfCheckOptions) (*SelfCheckResult, error) {
	ciphersToRun := opts.Ciphers
	if len(ciphersToRun) == 0 {
		ciphersToRun = kernels.Names()
	}
	feats := opts.Feats
	if len(feats) == 0 {
		feats = []isa.Feature{isa.FeatNoRot, isa.FeatRot, isa.FeatOpt}
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = 1
	}
	maxBytes := opts.MaxBytes
	if maxBytes <= 0 {
		maxBytes = 512
	}

	res := &SelfCheckResult{}
	for _, cipher := range ciphersToRun {
		k, err := kernels.Get(cipher)
		if err != nil {
			return nil, err
		}
		for fi, feat := range feats {
			for trial := 0; trial < trials; trial++ {
				// Distinct seed per (cipher, feat, trial) so every cell
				// sees fresh key/IV/plaintext but reruns reproduce it.
				seed := opts.Seed + int64(trial)*1_000_003 + int64(fi)*31 + int64(len(cipher))
				rng := rand.New(rand.NewSource(seed ^ 0x5e1fc8ec))
				session := sessionLen(rng, k.BlockBytes, maxBytes)

				w, err := NewWorkload(cipher, session, seed)
				if err != nil {
					return nil, err
				}
				golden, err := goldenCiphertext(w)
				if err != nil {
					return nil, err
				}

				res.Runs++
				if fail := runEncrypt(k, feat, w, golden); fail != nil {
					res.Failures = append(res.Failures, fail)
				}
				if opts.Decrypt && k.BuildDec != nil {
					res.Runs++
					if fail := runDecrypt(k, feat, w, golden); fail != nil {
						res.Failures = append(res.Failures, fail)
					}
				}
			}
		}
	}
	return res, nil
}

// diffBytes locates the first divergence between two equal-length buffers.
func diffBytes(got, want []byte) string {
	if len(got) != len(want) {
		return fmt.Sprintf("length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("first divergence at byte %d: %#02x, want %#02x", i, got[i], want[i])
		}
	}
	return ""
}

// runEncrypt emulates one encryption session and compares it to the
// golden ciphertext.
func runEncrypt(k *kernels.Kernel, feat isa.Feature, w *Workload, golden []byte) *SelfCheckFailure {
	fail := func(detail string) *SelfCheckFailure {
		return &SelfCheckFailure{Cipher: w.Cipher, Feat: feat, Mode: "encrypt",
			Session: len(w.Plain), Seed: w.Seed, Detail: detail}
	}
	m, mem, err := kernels.NewRun(k, feat, w.Key, w.IV, w.Plain)
	if err != nil {
		return fail("prepare: " + err.Error())
	}
	m.Run(nil)
	if err := m.Err(); err != nil {
		return fail("emulation fault: " + err.Error())
	}
	if d := diffBytes(mem.ReadBytes(kernels.OutAddr, len(golden)), golden); d != "" {
		return fail("ciphertext: " + d)
	}
	return nil
}

// runDecrypt emulates decryption of the golden ciphertext and compares
// the recovered plaintext to the original session.
func runDecrypt(k *kernels.Kernel, feat isa.Feature, w *Workload, golden []byte) *SelfCheckFailure {
	fail := func(detail string) *SelfCheckFailure {
		return &SelfCheckFailure{Cipher: w.Cipher, Feat: feat, Mode: "decrypt",
			Session: len(w.Plain), Seed: w.Seed, Detail: detail}
	}
	m, mem, err := kernels.NewDecRun(k, feat, w.Key, w.IV, golden)
	if err != nil {
		return fail("prepare: " + err.Error())
	}
	m.Run(nil)
	if err := m.Err(); err != nil {
		return fail("emulation fault: " + err.Error())
	}
	if d := diffBytes(mem.ReadBytes(kernels.OutAddr, len(w.Plain)), w.Plain); d != "" {
		return fail("round-trip plaintext: " + d)
	}
	return nil
}
