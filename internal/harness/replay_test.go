package harness_test

import (
	"bytes"
	"fmt"
	"testing"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

var (
	replayCiphers = []string{"3des", "blowfish", "idea", "mars", "rc4", "rc6", "rijndael", "twofish"}
	replayFeats   = []struct {
		name string
		feat isa.Feature
	}{
		{"norot", isa.FeatNoRot},
		{"rot", isa.FeatRot},
		{"opt", isa.FeatOpt},
	}
	replayModels = []ooo.Config{ooo.FourWide, ooo.FourWidePlus, ooo.EightWidePlus, ooo.Dataflow}
)

// TestReplayEquivalence is the PR's correctness pin: for every cipher ×
// ISA variant × machine model, the statistics of a run fed by a cached
// replayed trace are byte-identical — including the full stall
// breakdown — to a run fed by the live functional emulator.
func TestReplayEquivalence(t *testing.T) {
	harness.ResetTraceCache()
	defer harness.ResetTraceCache()
	const session = 128
	const seed = 987

	for _, cipher := range replayCiphers {
		for _, fv := range replayFeats {
			// Live reference: bypasses the trace cache entirely.
			w, err := harness.NewWorkload(cipher, session, seed)
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range replayModels {
				name := fmt.Sprintf("%s/%s/%s", cipher, fv.name, cfg.Name)
				live, err := harness.TimeWorkload(w, fv.feat, cfg)
				if err != nil {
					t.Fatalf("%s live: %v", name, err)
				}
				replayed, err := harness.TimeKernel(cipher, fv.feat, cfg, session, seed)
				if err != nil {
					t.Fatalf("%s replay: %v", name, err)
				}
				ls, rs := fmt.Sprintf("%+v", *live), fmt.Sprintf("%+v", *replayed)
				if ls != rs {
					t.Errorf("%s: replayed stats differ from live\nlive   %s\nreplay %s", name, ls, rs)
				}
			}
		}
	}

	// The comparison is only meaningful if the cached path actually
	// replayed: each cell records once and replays for the other models.
	st := harness.ReadTraceCacheStats()
	if st.Records == 0 || st.Replays <= st.Records {
		t.Fatalf("trace cache did not replay: %+v", st)
	}
}

// TestReplayTraceConcordance pins the observability contract: a pipeline
// tracer attached to a replayed run emits byte-identical JSONL events to
// one attached to a live-emulation run — same isa.Inst view, same cycles.
func TestReplayTraceConcordance(t *testing.T) {
	harness.ResetTraceCache()
	defer harness.ResetTraceCache()
	const session = 128
	const seed = 987

	w, err := harness.NewWorkload("blowfish", session, seed)
	if err != nil {
		t.Fatal(err)
	}
	var liveBuf bytes.Buffer
	lt := ooo.NewJSONLTracer(&liveBuf)
	if _, err := harness.TimeWorkloadObserved(w, isa.FeatRot, ooo.FourWide, harness.TracerObserver(lt)); err != nil {
		t.Fatal(err)
	}
	if err := lt.Flush(); err != nil {
		t.Fatal(err)
	}

	// Prime the cache so the observed run below replays.
	if _, err := harness.TimeKernel("blowfish", isa.FeatRot, ooo.FourWide, session, seed); err != nil {
		t.Fatal(err)
	}
	var repBuf bytes.Buffer
	rt := ooo.NewJSONLTracer(&repBuf)
	if _, err := harness.TimeKernelObserved("blowfish", isa.FeatRot, ooo.FourWide, session, seed, harness.TracerObserver(rt)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}

	if liveBuf.Len() == 0 {
		t.Fatal("live tracer emitted nothing")
	}
	if !bytes.Equal(liveBuf.Bytes(), repBuf.Bytes()) {
		t.Fatalf("replayed pipeline trace differs from live trace (live %d bytes, replay %d bytes)",
			liveBuf.Len(), repBuf.Len())
	}
}

// TestTraceCacheStatsAccounting pins the cache counters simbench reports:
// one record per key, one replay per run, record wall time accumulated.
func TestTraceCacheStatsAccounting(t *testing.T) {
	harness.ResetTraceCache()
	defer harness.ResetTraceCache()
	if _, err := harness.TimeKernel("rc4", isa.FeatRot, ooo.FourWide, 64, 7); err != nil {
		t.Fatal(err)
	}
	st := harness.ReadTraceCacheStats()
	if st.Records != 1 || st.Replays != 1 {
		t.Fatalf("first run should record once and replay once, got %+v", st)
	}
	if _, err := harness.TimeKernel("rc4", isa.FeatRot, ooo.FourWide, 64, 7); err != nil {
		t.Fatal(err)
	}
	st = harness.ReadTraceCacheStats()
	if st.Records != 1 || st.Replays != 2 {
		t.Fatalf("second run should hit the cached trace, got %+v", st)
	}
	if st.RecordTime <= 0 {
		t.Fatal("record time not accounted")
	}
}
