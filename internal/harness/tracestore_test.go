package harness

import (
	"hash/fnv"
	"os"
	"testing"

	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
	"cryptoarch/internal/store"
)

// installTempStore opens a fresh store in a temp directory, installs it
// process-wide, and restores the previous store (and a clean trace cache)
// when the test ends.
func installTempStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	ResetTraceCache()
	prev := SetStore(s)
	t.Cleanup(func() {
		SetStore(prev)
		ResetTraceCache()
	})
	return s
}

// TestStorePayloadChecksumIsTraceChecksum pins the contract encodeRecs
// promises: the FNV-1a sum of the on-disk payload bytes IS the trace
// checksum emu.ChecksumRecs computes over the records, so one sum serves
// both file integrity and replay integrity.
func TestStorePayloadChecksumIsTraceChecksum(t *testing.T) {
	recs := []emu.TraceRec{
		{Addr: 0xdeadbeefcafef00d, Idx: 42, Br: 1},
		{Addr: 0x0123456789abcdef, Idx: 7, Br: 0},
		{Addr: 0, Idx: 0xffffffff, Br: 0xffffffff},
		{Addr: 1, Idx: 1, Br: 1},
	}
	payload := encodeRecs(recs)
	if len(payload) != len(recs)*emu.TraceRecBytes {
		t.Fatalf("payload is %d bytes, want %d", len(payload), len(recs)*emu.TraceRecBytes)
	}
	h := fnv.New64a()
	h.Write(payload)
	if h.Sum64() != emu.ChecksumRecs(recs) {
		t.Fatalf("payload checksum %#x != trace checksum %#x", h.Sum64(), emu.ChecksumRecs(recs))
	}
	back, ok := decodeRecs(payload)
	if !ok || len(back) != len(recs) {
		t.Fatal("decodeRecs failed on its own encoding")
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("rec %d round-tripped as %+v, want %+v", i, back[i], recs[i])
		}
	}
	if _, ok := decodeRecs(payload[:len(payload)-1]); ok {
		t.Fatal("decodeRecs accepted a torn payload")
	}
}

// TestStoreWarmBitIdentical is the trace-tier equivalence gate: a run that
// faults its trace in from the persistent store must produce bit-identical
// simulation statistics to the run that recorded it, while paying zero
// functional recordings.
func TestStoreWarmBitIdentical(t *testing.T) {
	installTempStore(t)
	const session, seed = 2048, 7

	cold, err := TimeKernel("blowfish", isa.FeatRot, ooo.FourWide, session, seed)
	if err != nil {
		t.Fatal(err)
	}
	cst := store.ReadStats()
	if cst.TraceMisses == 0 || cst.Writes == 0 {
		t.Fatalf("cold run did not miss and persist: %+v", cst)
	}

	// Drop the in-memory cache; the disk entry survives.
	ResetTraceCache()
	warm, err := TimeKernel("blowfish", isa.FeatRot, ooo.FourWide, session, seed)
	if err != nil {
		t.Fatal(err)
	}
	if *warm != *cold {
		t.Fatalf("store-warm stats diverge from cold:\ncold %+v\nwarm %+v", cold, warm)
	}
	if st := ReadTraceCacheStats(); st.Records != 0 {
		t.Fatalf("warm run paid %d functional recordings, want 0 (stats %+v)", st.Records, st)
	}
	wst := store.ReadStats()
	if wst.TraceHits == 0 || wst.TraceMisses != 0 {
		t.Fatalf("warm run did not hit the store: %+v", wst)
	}
}

// TestStoreKeyInvalidation pins that every identity field of the trace key
// reaches the store key: the store must provably miss when any of them
// changes.
func TestStoreKeyInvalidation(t *testing.T) {
	base := traceKey{cipher: "blowfish", feat: isa.FeatRot, session: 512, seed: 7, mode: modeEncrypt}
	baseKey, err := storeKeyFor(base)
	if err != nil {
		t.Fatal(err)
	}
	mutants := map[string]traceKey{
		"cipher":  {cipher: "rc4", feat: base.feat, session: base.session, seed: base.seed, mode: base.mode},
		"feat":    {cipher: base.cipher, feat: isa.FeatNoRot, session: base.session, seed: base.seed, mode: base.mode},
		"session": {cipher: base.cipher, feat: base.feat, session: 1024, seed: base.seed, mode: base.mode},
		"seed":    {cipher: base.cipher, feat: base.feat, session: base.session, seed: 8, mode: base.mode},
		"mode":    {cipher: base.cipher, feat: base.feat, session: base.session, seed: base.seed, mode: modeDecrypt},
	}
	for field, k := range mutants {
		got, err := storeKeyFor(k)
		if err != nil {
			t.Fatalf("%s: %v", field, err)
		}
		if got == baseKey {
			t.Errorf("changing %s did not change the store key", field)
		}
	}
	// Feature levels that assemble different kernel bytes must yield
	// different digests — the "kernel edit misses" guarantee. (norot and
	// rot emit byte-identical blowfish programs, which the digest rightly
	// reports; those keys stay distinct through the Feat field. The opt
	// level rewrites the sbox accesses, so the bytes — and digest —
	// change.)
	dRot, err1 := KernelDigest("blowfish", isa.FeatRot, "encrypt")
	dOpt, err2 := KernelDigest("blowfish", isa.FeatOpt, "encrypt")
	dSetup, err3 := KernelDigest("blowfish", isa.FeatRot, "setup")
	if err1 != nil || err2 != nil || err3 != nil {
		t.Fatal(err1, err2, err3)
	}
	if dRot == dOpt {
		t.Error("rot and opt kernels share a program digest")
	}
	if dRot == dSetup {
		t.Error("encrypt and setup kernels share a program digest")
	}
	if _, err := KernelDigest("blowfish", isa.FeatRot, "compress"); err == nil {
		t.Error("unknown kernel kind did not error")
	}
}

// TestStoreCorruptionReRecord drives the corruption protocol end to end
// through the harness: a bit-flipped on-disk entry is detected at fault-in,
// deleted, counted, re-recorded live once, and the healed entry serves the
// next warm run from disk.
func TestStoreCorruptionReRecord(t *testing.T) {
	s := installTempStore(t)
	k := traceKey{cipher: "blowfish", feat: isa.FeatRot, session: 512, seed: 21, mode: modeEncrypt}
	if _, _, err := traces.stream(k); err != nil {
		t.Fatal(err)
	}
	key, err := storeKeyFor(k)
	if err != nil {
		t.Fatal(err)
	}
	path := s.EntryPath(store.TierTrace, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace was not persisted: %v", err)
	}
	raw[len(raw)-5] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	ResetTraceCache()
	if _, _, err := traces.stream(k); err != nil {
		t.Fatalf("stream over a corrupt store entry: %v", err)
	}
	st := store.ReadStats()
	if st.Corrupt != 1 {
		t.Fatalf("store stats %+v: want exactly 1 corrupt entry", st)
	}
	if st.TraceHits != 0 || st.TraceMisses != 1 {
		t.Fatalf("store stats %+v: corrupt load must count as a miss", st)
	}
	if cs := ReadTraceCacheStats(); cs.Records != 1 {
		t.Fatalf("cache stats %+v: want exactly one live re-record", cs)
	}
	if st.Writes != 1 {
		t.Fatalf("store stats %+v: re-record did not persist once", st)
	}

	// The healed entry now serves a warm run from disk.
	ResetTraceCache()
	if _, _, err := traces.stream(k); err != nil {
		t.Fatal(err)
	}
	if st := store.ReadStats(); st.TraceHits != 1 || st.Corrupt != 0 {
		t.Fatalf("store stats %+v: healed entry did not hit cleanly", st)
	}
	if cs := ReadTraceCacheStats(); cs.Records != 0 {
		t.Fatalf("cache stats %+v: healed warm run paid a recording", cs)
	}
}

// TestSetTraceBudget pins the flag plumbing semantics: positive values
// install, non-positive values only read.
func TestSetTraceBudget(t *testing.T) {
	orig := SetTraceBudget(0)
	if orig <= 0 {
		t.Fatalf("default trace budget %d", orig)
	}
	if prev := SetTraceBudget(1 << 20); prev != orig {
		t.Fatalf("SetTraceBudget returned %d, want %d", prev, orig)
	}
	if prev := SetTraceBudget(orig); prev != 1<<20 {
		t.Fatalf("budget did not stick: %d", prev)
	}
}
