package harness

import (
	"fmt"

	"cryptoarch/internal/diff"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// CellSpec identifies one kernel-timing cell for differential
// comparison: a cipher at an ISA feature level on a machine model.
type CellSpec struct {
	Cipher string
	Feat   isa.Feature
	Cfg    ooo.Config
}

// Label renders the spec the way reports name runs.
func (s CellSpec) Label() string {
	return fmt.Sprintf("%s/%s/%s", s.Cipher, s.Feat, s.Cfg.Name)
}

// KernelDiff is one differential comparison of two profiled cells: both
// profiled runs (for the annotated-disassembly renderers) and the
// checked diff between them.
type KernelDiff struct {
	Base, Next *ProfiledRun
	Diff       *diff.RunDiff
}

// DiffRun wraps a profiled run as a diff side, attaching the program
// digest that decides per-PC alignment.
func DiffRun(label string, pr *ProfiledRun, spec CellSpec) (*diff.Run, error) {
	digest, err := KernelDigest(spec.Cipher, spec.Feat, "encrypt")
	if err != nil {
		return nil, err
	}
	return &diff.Run{
		Label:         label,
		Stats:         pr.Stats,
		Profile:       pr.Profile,
		ProgramDigest: digest,
	}, nil
}

// DiffKernel profiles two cells through the trace cache and returns
// their differential cycle accounting. The diff is conservation-checked
// by construction (diff.New refuses inconsistent inputs); per-PC
// attribution is present exactly when the two specs assemble the same
// program (same cipher and feature level).
func DiffKernel(base, next CellSpec, sessionBytes int, seed int64) (*KernelDiff, error) {
	basePR, err := ProfileKernel(base.Cipher, base.Feat, base.Cfg, sessionBytes, seed)
	if err != nil {
		return nil, fmt.Errorf("harness: diff base %s: %w", base.Label(), err)
	}
	nextPR, err := ProfileKernel(next.Cipher, next.Feat, next.Cfg, sessionBytes, seed)
	if err != nil {
		return nil, fmt.Errorf("harness: diff next %s: %w", next.Label(), err)
	}
	baseRun, err := DiffRun(base.Label(), basePR, base)
	if err != nil {
		return nil, err
	}
	nextRun, err := DiffRun(next.Label(), nextPR, next)
	if err != nil {
		return nil, err
	}
	rd, err := diff.New(baseRun, nextRun)
	if err != nil {
		return nil, err
	}
	return &KernelDiff{Base: basePR, Next: nextPR, Diff: rd}, nil
}
