package harness_test

import (
	"fmt"
	"testing"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// TestSampledErrorBounds runs interval sampling against the exact serial
// run for every cipher and pins the accuracy contract: Instructions exact,
// extrapolated cycles within 15% of exact, the slot identity intact after
// extrapolation, and a sane reported dispersion bound.
func TestSampledErrorBounds(t *testing.T) {
	ciphers := []string{"3des", "blowfish", "idea", "mars", "rc4", "rc6", "rijndael", "twofish"}
	opt := harness.SampleOptions{Intervals: 8, IntervalInsts: 2048, WarmupInsts: 4096}
	for _, cipher := range ciphers {
		exact, err := harness.TimeKernel(cipher, isa.FeatRot, ooo.FourWide, 4096, 7)
		if err != nil {
			t.Fatal(err)
		}
		st, rep, err := harness.TimeKernelSampled(cipher, isa.FeatRot, ooo.FourWide, 4096, 7, opt)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Exact {
			t.Fatalf("%s: fell back to exact (session too small to sample)", cipher)
		}
		if st.Instructions != exact.Instructions {
			t.Fatalf("%s: extrapolated %d insts, exact %d", cipher, st.Instructions, exact.Instructions)
		}
		if rep.Coverage <= 0 || rep.Coverage >= 1 {
			t.Fatalf("%s: coverage %.3f not a genuine sample", cipher, rep.Coverage)
		}
		if e := relErr(st.Cycles, exact.Cycles); e > 0.15 {
			t.Fatalf("%s: cycle error %.4f beyond 15%% bound (sampled %d, exact %d, reported bound %.4f)",
				cipher, e, st.Cycles, exact.Cycles, rep.RelErrBound)
		}
		if got, want := st.Stalls.Slots(), st.Cycles*uint64(ooo.FourWide.IssueWidth); got != want {
			t.Fatalf("%s: extrapolated slots %d != cycles*width %d", cipher, got, want)
		}
		if rep.RelErrBound < 0 || rep.RelErrBound > 1 {
			t.Fatalf("%s: reported dispersion bound %.4f out of range", cipher, rep.RelErrBound)
		}
	}
}

// TestSampledExactFallback pins that a session too small to sample runs
// the exact serial path, bit-identical to TimeKernel.
func TestSampledExactFallback(t *testing.T) {
	golden, err := harness.TimeKernel("blowfish", isa.FeatRot, ooo.FourWide, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, rep, err := harness.TimeKernelSampled("blowfish", isa.FeatRot, ooo.FourWide, 64, 3,
		harness.SampleOptions{Intervals: 8, IntervalInsts: 32768})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exact || rep.RelErrBound != 0 || rep.Coverage != 1 {
		t.Fatalf("expected exact fallback, got %+v", rep)
	}
	if fmt.Sprintf("%+v", *st) != fmt.Sprintf("%+v", *golden) {
		t.Fatal("exact fallback differs from TimeKernel")
	}
}

// TestSampledWorkerInvariance pins that sampling, like chunking, produces
// worker-count-independent stats.
func TestSampledWorkerInvariance(t *testing.T) {
	opt := harness.SampleOptions{Intervals: 4, IntervalInsts: 1024, WarmupInsts: 1024, Workers: 1}
	one, _, err := harness.TimeKernelSampled("idea", isa.FeatRot, ooo.FourWide, 2048, 11, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	four, _, err := harness.TimeKernelSampled("idea", isa.FeatRot, ooo.FourWide, 2048, 11, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", *one) != fmt.Sprintf("%+v", *four) {
		t.Fatal("extrapolated stats depend on worker count")
	}
}
