package harness

import (
	"runtime"
	"sync"
)

// Shared worker budget. Two schedulers want the machine's cores: the
// experiment sweep runs cells in parallel, and inside one cell the
// time-parallel chunked replay (chunked.go) and interval sampler
// (sampled.go) want workers of their own. Without coordination the two
// levels multiply — a GOMAXPROCS-wide sweep whose every cell spawns
// GOMAXPROCS chunk workers oversubscribes the machine quadratically. One
// process-wide token pool, sized to GOMAXPROCS, is shared by both levels:
// sweep workers block until they hold a token (the sweep owns its
// concurrency, so waiting is correct), while intra-cell orchestrators only
// try-acquire whatever is free and degrade to fewer workers — down to
// inline-serial — when the sweep has the machine saturated. Because the
// inner level never blocks on the pool, nesting cannot deadlock.

type workerBudget struct {
	mu    sync.Mutex
	cond  *sync.Cond
	cap   int // total tokens
	inUse int // tokens currently held
}

var budget = func() *workerBudget {
	b := &workerBudget{cap: runtime.GOMAXPROCS(0)}
	b.cond = sync.NewCond(&b.mu)
	return b
}()

// WorkerBudget returns the current token-pool size.
func WorkerBudget() int {
	budget.mu.Lock()
	defer budget.mu.Unlock()
	return budget.cap
}

// SetWorkerBudget resizes the pool and returns the previous size. n < 1
// is clamped to 1. Outstanding tokens stay valid — a shrink simply makes
// the pool over-committed until they drain. Benchmarks and tests use this
// to pin concurrency regardless of the host.
func SetWorkerBudget(n int) int {
	if n < 1 {
		n = 1
	}
	budget.mu.Lock()
	prev := budget.cap
	budget.cap = n
	budget.mu.Unlock()
	budget.cond.Broadcast()
	return prev
}

// AcquireWorker blocks until a worker token is free and takes it. Only
// top-level schedulers (the sweep) may block; nested orchestrators must
// use TryAcquireWorkers or risk deadlock against their own parent.
func AcquireWorker() {
	budget.mu.Lock()
	for budget.inUse >= budget.cap {
		budget.cond.Wait()
	}
	budget.inUse++
	budget.mu.Unlock()
}

// ReleaseWorker returns one token taken with AcquireWorker.
func ReleaseWorker() { ReleaseWorkers(1) }

// TryAcquireWorkers takes up to n tokens without blocking and returns how
// many it got (possibly zero). The chunk and sampling orchestrators call
// this: whatever is free becomes extra parallelism, and zero means "run
// inline on the token the caller already holds".
func TryAcquireWorkers(n int) int {
	if n <= 0 {
		return 0
	}
	budget.mu.Lock()
	got := budget.cap - budget.inUse
	if got > n {
		got = n
	}
	if got < 0 {
		got = 0
	}
	budget.inUse += got
	budget.mu.Unlock()
	return got
}

// ReleaseWorkers returns n tokens to the pool.
func ReleaseWorkers(n int) {
	if n <= 0 {
		return
	}
	budget.mu.Lock()
	budget.inUse -= n
	if budget.inUse < 0 {
		budget.inUse = 0
	}
	budget.mu.Unlock()
	budget.cond.Broadcast()
}
