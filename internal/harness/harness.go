// Package harness couples the cipher kernels to the timing model: it
// prepares deterministic workloads, warms the memory system the way the
// paper's measurement methodology implies (key setup has just written the
// context; the kernel code has executed before), and runs the cycle-level
// engine.
package harness

import (
	"fmt"
	"math/rand"

	"cryptoarch/internal/ciphers"
	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
	"cryptoarch/internal/metrics"
	"cryptoarch/internal/ooo"
)

// Workload is a deterministic session: key, IV and plaintext derived from
// a seed.
type Workload struct {
	Cipher string
	Seed   int64 // the seed the session was derived from
	Key    []byte
	IV     []byte
	Plain  []byte
}

// NewWorkload builds a session workload for a cipher. The session length
// must be positive and, for block ciphers, a whole number of blocks —
// CBC has no partial-block semantics here, and an unchecked length would
// surface as a panic deep inside the golden model.
func NewWorkload(cipher string, sessionBytes int, seed int64) (*Workload, error) {
	k, err := kernels.Get(cipher)
	if err != nil {
		return nil, err
	}
	if sessionBytes <= 0 {
		return nil, fmt.Errorf("harness: session length %d bytes: must be positive", sessionBytes)
	}
	if k.BlockBytes > 1 && sessionBytes%k.BlockBytes != 0 {
		return nil, fmt.Errorf("harness: session length %d bytes: %s works in %d-byte blocks",
			sessionBytes, cipher, k.BlockBytes)
	}
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{Cipher: cipher, Seed: seed}
	w.Key = make([]byte, k.KeyBytes)
	rng.Read(w.Key)
	if k.BlockBytes > 1 {
		w.IV = make([]byte, k.BlockBytes)
		rng.Read(w.IV)
	}
	w.Plain = make([]byte, sessionBytes)
	rng.Read(w.Plain)
	return w, nil
}

// Prepare returns a ready-to-run functional machine for the workload.
func Prepare(w *Workload, feat isa.Feature) (*emu.Machine, error) {
	k, err := kernels.Get(w.Cipher)
	if err != nil {
		return nil, err
	}
	m, _, err := kernels.NewRun(k, feat, w.Key, w.IV, w.Plain)
	return m, err
}

// RunObserver instruments the timing engine immediately before a run
// starts — e.g. to attach an ooo.Tracer, or to capture the engine for
// interval statistics. A nil observer is ignored.
type RunObserver func(*ooo.Engine)

// TracerObserver is the common case: an observer that attaches a
// pipeline-event tracer to the engine.
func TracerObserver(t ooo.Tracer) RunObserver {
	return func(e *ooo.Engine) { e.SetTracer(t) }
}

// meteredRun attaches the process telemetry to a warmed engine and runs
// it: run totals accumulate onto the metrics registry, and when a span
// timeline is installed the run appears as a replay-phase span (nested in
// the sweep cell that requested it). With telemetry off this adds one nil
// check and one atomic load per run.
func meteredRun(eng *ooo.Engine, cfg ooo.Config, cipher string, feat isa.Feature) (*ooo.Stats, error) {
	eng.SetMetrics(Metrics())
	tl := CurrentTimeline()
	sp := metrics.NoSpan
	if tl != nil {
		sp = tl.Begin("replay", "run "+cfg.Name+" "+cipher+"/"+feat.String())
	}
	st, err := eng.Run()
	tl.End(sp)
	return st, err
}

// TimeKernel runs one cipher-kernel session on a machine configuration and
// returns the timing statistics.
func TimeKernel(cipher string, feat isa.Feature, cfg ooo.Config, sessionBytes int, seed int64) (*ooo.Stats, error) {
	return TimeKernelObserved(cipher, feat, cfg, sessionBytes, seed, nil)
}

// TimeKernelObserved is TimeKernel with a RunObserver hooked in between
// engine construction and the run. The instruction stream comes from the
// trace cache: the first run of a (cipher, feat, session, seed) cell
// records the emulation, subsequent runs (other machine models of the
// same cell) replay it.
func TimeKernelObserved(cipher string, feat isa.Feature, cfg ooo.Config, sessionBytes int, seed int64, obs RunObserver) (*ooo.Stats, error) {
	k, err := kernels.Get(cipher)
	if err != nil {
		return nil, err
	}
	src, codeLen, err := StreamKernel(cipher, feat, sessionBytes, seed)
	if err != nil {
		return nil, err
	}
	eng := ooo.NewEngine(cfg, src)
	eng.WarmData(kernels.CtxAddr, k.CtxBytes)
	eng.WarmCode(codeLen)
	if obs != nil {
		obs(eng)
	}
	return meteredRun(eng, cfg, cipher, feat)
}

// TimeWorkload times a prepared workload.
func TimeWorkload(w *Workload, feat isa.Feature, cfg ooo.Config) (*ooo.Stats, error) {
	return TimeWorkloadObserved(w, feat, cfg, nil)
}

// TimeWorkloadObserved times a prepared workload, calling obs (when
// non-nil) on the warmed engine before the run starts.
func TimeWorkloadObserved(w *Workload, feat isa.Feature, cfg ooo.Config, obs RunObserver) (*ooo.Stats, error) {
	k, err := kernels.Get(w.Cipher)
	if err != nil {
		return nil, err
	}
	m, err := Prepare(w, feat)
	if err != nil {
		return nil, err
	}
	eng := ooo.NewEngine(cfg, ooo.MachineStream{M: m})
	eng.WarmData(kernels.CtxAddr, k.CtxBytes)
	eng.WarmCode(len(m.Prog.Code))
	if obs != nil {
		obs(eng)
	}
	return meteredRun(eng, cfg, w.Cipher, feat)
}

// TimeDecrypt runs one decryption session (golden-encrypted ciphertext
// through the AXP64 decryption kernel) on a machine configuration. The
// paper's footnote 1 observes encryption and decryption perform
// comparably; this lets that be verified.
func TimeDecrypt(cipher string, feat isa.Feature, cfg ooo.Config, sessionBytes int, seed int64) (*ooo.Stats, error) {
	k, err := kernels.Get(cipher)
	if err != nil {
		return nil, err
	}
	src, codeLen, err := traces.stream(traceKey{cipher: cipher, feat: feat, session: sessionBytes, seed: seed, mode: modeDecrypt})
	if err != nil {
		return nil, err
	}
	eng := ooo.NewEngine(cfg, src)
	eng.WarmData(kernels.CtxAddr, k.CtxBytes)
	eng.WarmCode(codeLen)
	return meteredRun(eng, cfg, cipher, feat)
}

// goldenCiphertext encrypts the workload with the golden cipher.
func goldenCiphertext(w *Workload) ([]byte, error) {
	c, err := ciphers.Lookup(w.Cipher)
	if err != nil {
		return nil, err
	}
	ct := make([]byte, len(w.Plain))
	if c.Info.Stream {
		s, err := c.NewStream(w.Key)
		if err != nil {
			return nil, err
		}
		s.XORKeyStream(ct, w.Plain)
		return ct, nil
	}
	blk, err := c.NewBlock(w.Key)
	if err != nil {
		return nil, err
	}
	iv := append([]byte(nil), w.IV...)
	ciphers.CBCEncrypt(blk, iv, ct, w.Plain)
	return ct, nil
}

// CountKernel returns the dynamic instruction count of the workload (the
// 1-CPI machine of Figure 4). It runs through the trace cache, so the
// count both reuses and seeds the recording the timing models replay.
func CountKernel(cipher string, feat isa.Feature, sessionBytes int, seed int64) (uint64, error) {
	src, _, err := StreamKernel(cipher, feat, sessionBytes, seed)
	if err != nil {
		return 0, err
	}
	if ss, ok := src.(ooo.SizedStream); ok {
		return uint64(ss.InstCount()), nil
	}
	var n uint64
	for {
		if _, ok := src.Next(); !ok {
			return n, nil
		}
		n++
	}
}

// TimeSetup times a cipher's key-setup program.
func TimeSetup(cipher string, feat isa.Feature, cfg ooo.Config, seed int64) (*ooo.Stats, error) {
	src, codeLen, err := traces.stream(traceKey{cipher: cipher, feat: feat, seed: seed, mode: modeSetup})
	if err != nil {
		return nil, err
	}
	eng := ooo.NewEngine(cfg, src)
	eng.WarmCode(codeLen)
	return meteredRun(eng, cfg, cipher, feat)
}
