package harness

import (
	"sync"
	"sync/atomic"

	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
	"cryptoarch/internal/metrics"
	"cryptoarch/internal/ooo"
)

// Time-parallel chunked replay. A recorded trace makes the whole dynamic
// instruction stream addressable, so one cell's timing run can be split
// across workers in simulated time: chunk i replays the record window
// [start-warm, end), the warm prefix putting the caches, TLBs, branch
// predictor and SBox caches into a representative state, and only the
// [start, end) body is measured (ooo.SetWarmup). The per-chunk measured
// Stats are stitched by summation (ooo.Stats.Accumulate). Instructions
// and the other dispatch-side counters stitch exactly; Cycles and the
// stall breakdown carry a per-seam error — cold state beyond the warmup
// horizon plus each chunk's pipeline drain — that shrinks as warmup grows
// and as chunks lengthen, which the chunked-equivalence test enforces
// against the golden serial run.

// DefaultChunkWarmup is the warmup-prefix length (instructions) used when
// ChunkOptions.WarmupInsts is zero. Sized so the 8 KB L1, the TLB and the
// branch-predictor tables see a representative working set: seam error on
// the bench workload is well inside the test-enforced bound, while the
// warmup overhead stays a small fraction of typical chunk bodies.
const DefaultChunkWarmup = 16384

// ChunkOptions configures TimeKernelChunked.
type ChunkOptions struct {
	// Chunks is the number of simulated-time chunks (<= 1: serial run).
	Chunks int
	// WarmupInsts is the per-chunk warmup-prefix length in instructions.
	// 0 means DefaultChunkWarmup; negative means no warmup (exact only
	// for chunk 0, which starts at the true beginning).
	WarmupInsts int
	// Workers caps the worker goroutines. 0 (the usual case) takes
	// whatever the shared worker budget has free — degrading to an inline
	// serial loop when a parallel sweep holds the machine. > 0 spawns
	// exactly min(Workers, Chunks) goroutines regardless of the budget:
	// the benchmark override for measuring scaling on a pinned host.
	Workers int
}

// ChunkReport describes how a chunked run was executed.
type ChunkReport struct {
	Chunks  int `json:"chunks"`
	Workers int `json:"workers"`
	// WarmupInsts is the resolved per-chunk warmup length.
	WarmupInsts int `json:"warmup_insts"`
	// TotalInsts is the length of the replayed trace (== stitched
	// Stats.Instructions).
	TotalInsts uint64 `json:"total_insts"`
	// DiscardedInsts/DiscardedCycles total the warmup epochs simulated and
	// thrown away — the price paid for seam accuracy.
	DiscardedInsts  uint64 `json:"discarded_insts"`
	DiscardedCycles uint64 `json:"discarded_cycles"`
	// Serial is set when the request fell back to the ordinary serial
	// path (oversized trace, or a degenerate chunk count).
	Serial bool `json:"serial"`
}

// chunkSpec is one chunk's record window: measure [start, end), warm up
// over the warm records before start.
type chunkSpec struct {
	start, end, warm int
}

// chunkSpecs splits n records into c chunks with warmup prefixes of up to
// w records (clamped at the start of the trace).
func chunkSpecs(n, c, w int) []chunkSpec {
	specs := make([]chunkSpec, c)
	for i := 0; i < c; i++ {
		s := i * n / c
		e := (i + 1) * n / c
		warm := w
		if warm > s {
			warm = s
		}
		specs[i] = chunkSpec{start: s, end: e, warm: warm}
	}
	return specs
}

// chunkResult is one chunk's measured epoch.
type chunkResult struct {
	st    *ooo.Stats
	prof  *ooo.Profile
	discI uint64
	discC uint64
	err   error
}

// runWindow replays one chunk window with warmup and returns its measured
// epoch. The window is a zero-copy view of the shared record slab; its
// bytes are reserved against the trace-cache budget while the chunk is in
// flight, since the view pins the slab even if the LRU evicts the entry.
func runWindow(tr *emu.Trace, codeLen, ctxBytes int, cfg ooo.Config, spec chunkSpec, profile bool) chunkResult {
	lo := spec.start - spec.warm
	winBytes := (spec.end - lo) * emu.TraceRecBytes
	reserveChunkBytes(winBytes)
	defer releaseChunkBytes(winBytes)

	eng := ooo.NewEngine(cfg, tr.StreamAt(lo, spec.end))
	eng.WarmData(kernels.CtxAddr, ctxBytes)
	eng.WarmCode(codeLen)
	eng.SetWarmup(uint64(spec.warm))
	eng.SetMetrics(Metrics())
	var prof *ooo.Profile
	if profile {
		prof = eng.EnableProfile(codeLen)
	}
	st, err := eng.Run()
	if err != nil {
		return chunkResult{err: err}
	}
	di, dc := eng.WarmupDiscarded()
	if reg := Metrics(); reg != nil {
		reg.Histogram("chunk.warmup_discard_insts").Observe(int64(di))
		reg.Histogram("chunk.warmup_discard_cycles").Observe(int64(dc))
	}
	return chunkResult{st: st, prof: prof, discI: di, discC: dc}
}

// TimeKernelChunked times one cipher-kernel session like TimeKernel, but
// splits the replay into opt.Chunks simulated-time chunks run on parallel
// workers drawn from the shared worker budget. Sessions whose trace
// cannot be retained whole (oversized) fall back to the serial path. The
// stitched Stats carry exact Instructions and seam-bounded Cycles; see
// the file comment for the error semantics.
func TimeKernelChunked(cipher string, feat isa.Feature, cfg ooo.Config, sessionBytes int, seed int64, opt ChunkOptions) (*ooo.Stats, *ChunkReport, error) {
	st, _, rep, err := timeChunked(cipher, feat, cfg, sessionBytes, seed, opt, false)
	return st, rep, err
}

// ProfileKernelChunked is TimeKernelChunked with per-PC profiling: each
// chunk profiles its measured epoch and the per-PC counters are stitched
// by summation, preserving Profile.Total() == Stats.Stalls.
func ProfileKernelChunked(cipher string, feat isa.Feature, cfg ooo.Config, sessionBytes int, seed int64, opt ChunkOptions) (*ProfiledRun, *ChunkReport, error) {
	st, prof, rep, err := timeChunked(cipher, feat, cfg, sessionBytes, seed, opt, true)
	if err != nil {
		return nil, rep, err
	}
	k, err := kernels.Get(cipher)
	if err != nil {
		return nil, rep, err
	}
	return &ProfiledRun{Stats: st, Profile: prof, Prog: k.Build(feat)}, rep, nil
}

func timeChunked(cipher string, feat isa.Feature, cfg ooo.Config, sessionBytes int, seed int64, opt ChunkOptions, profile bool) (*ooo.Stats, *ooo.Profile, *ChunkReport, error) {
	kern, err := kernels.Get(cipher)
	if err != nil {
		return nil, nil, nil, err
	}
	tr, codeLen, err := traces.traceFor(traceKey{cipher: cipher, feat: feat, session: sessionBytes, seed: seed, mode: modeEncrypt})
	if err != nil {
		return nil, nil, nil, err
	}

	n := 0
	if tr != nil {
		n = len(tr.Recs)
	}
	c := opt.Chunks
	if c > n {
		c = n
	}
	if tr == nil || c <= 1 {
		// Serial fallback: oversized trace, or nothing to parallelize.
		if reg := Metrics(); reg != nil {
			reg.Counter("chunk.serial_fallbacks").Inc()
		}
		var st *ooo.Stats
		var prof *ooo.Profile
		if profile {
			pr, perr := ProfileKernel(cipher, feat, cfg, sessionBytes, seed)
			if perr != nil {
				return nil, nil, nil, perr
			}
			st, prof = pr.Stats, pr.Profile
		} else {
			st, err = TimeKernel(cipher, feat, cfg, sessionBytes, seed)
			if err != nil {
				return nil, nil, nil, err
			}
		}
		return st, prof, &ChunkReport{Chunks: 1, Workers: 1, TotalInsts: st.Instructions, Serial: true}, nil
	}

	w := opt.WarmupInsts
	switch {
	case w == 0:
		w = DefaultChunkWarmup
	case w < 0:
		w = 0
	}
	specs := chunkSpecs(n, c, w)

	// Worker count: an explicit override spawns exactly that many; the
	// auto path takes what the shared budget has free (the calling
	// goroutine always counts as one worker, so zero free tokens means an
	// inline serial loop — correct under a saturating parallel sweep).
	workers := 1
	acquired := 0
	if opt.Workers > 0 {
		workers = opt.Workers
	} else {
		acquired = TryAcquireWorkers(c - 1)
		workers = acquired + 1
	}
	if workers > c {
		workers = c
	}
	defer ReleaseWorkers(acquired)

	if reg := Metrics(); reg != nil {
		reg.Counter("chunk.runs").Inc()
		reg.Counter("chunk.chunks").Add(int64(c))
	}
	tl := CurrentTimeline()
	parent := metrics.NoSpan
	if tl != nil {
		parent = tl.Begin("chunked", "chunked "+cfg.Name+" "+cipher+"/"+feat.String())
	}
	defer tl.End(parent)

	results := make([]chunkResult, c)
	var next int64 = -1
	work := func() {
		for {
			i := int(atomic.AddInt64(&next, 1))
			if i >= c {
				return
			}
			// Chunk boundary: a cancelled run stops claiming chunks. The
			// chunk already replaying on each worker finishes; this one
			// reports the cancellation instead of starting.
			if err := Cancelled(); err != nil {
				results[i] = chunkResult{err: err}
				return
			}
			sp := metrics.NoSpan
			if tl != nil {
				sp = tl.BeginOn(parent, "chunk", "chunk "+cfg.Name)
			}
			results[i] = runWindow(tr, codeLen, kern.CtxBytes, cfg, specs[i], profile)
			tl.End(sp)
		}
	}
	var wg sync.WaitGroup
	for g := 1; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer tl.ReleaseTrack()
			work()
		}()
	}
	work()
	wg.Wait()

	// Stitch.
	total := &ooo.Stats{Config: cfg.Name}
	var prof *ooo.Profile
	if profile {
		prof = &ooo.Profile{Config: cfg.Name, PCs: make([]ooo.PCProfile, codeLen)}
	}
	rep := &ChunkReport{Chunks: c, Workers: workers, WarmupInsts: w, TotalInsts: uint64(n)}
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return nil, nil, rep, r.err
		}
		total.Accumulate(r.st)
		rep.DiscardedInsts += r.discI
		rep.DiscardedCycles += r.discC
		if profile {
			for pc := range r.prof.PCs {
				p, q := &prof.PCs[pc], &r.prof.PCs[pc]
				p.Retired += q.Retired
				p.ExecCycles += q.ExecCycles
				for ci := range p.Slots {
					p.Slots[ci] += q.Slots[ci]
				}
			}
		}
	}
	return total, prof, rep, nil
}
