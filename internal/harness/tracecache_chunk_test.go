package harness

import (
	"testing"

	"cryptoarch/internal/isa"
)

// TestChunkReservationEvicts pins the S-curve of the shared byte budget:
// in-flight chunk-window reservations count against the same LRU budget as
// retained traces, so reservation pressure squeezes retained traces out
// instead of silently doubling the cache footprint.
func TestChunkReservationEvicts(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	k := traceKey{cipher: "blowfish", feat: isa.FeatRot, session: 256, seed: 3, mode: modeEncrypt}
	tr, _, err := traces.traceFor(k)
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("trace not retained")
	}
	prev := traceBudgetBytes
	defer func() { traceBudgetBytes = prev }()
	traceBudgetBytes = tr.Bytes() + 64

	// A reservation bigger than the remaining slack must evict the trace.
	reserveChunkBytes(128)
	traces.mu.Lock()
	_, present := traces.entries[k]
	bytes := traces.bytes
	traces.mu.Unlock()
	if present {
		t.Fatal("retained trace survived reservation pressure")
	}
	if bytes != 128 {
		t.Fatalf("cache holds %d bytes after eviction, want the 128-byte reservation", bytes)
	}

	releaseChunkBytes(128)
	releaseChunkBytes(1 << 30) // over-release floors at zero
	traces.mu.Lock()
	bytes = traces.bytes
	traces.mu.Unlock()
	if bytes != 0 {
		t.Fatalf("cache holds %d bytes after release, want 0", bytes)
	}

	// The evicted key re-records transparently on the next request.
	tr2, _, err := traces.traceFor(k)
	if err != nil || tr2 == nil {
		t.Fatalf("re-record after eviction failed: %v", err)
	}
}
