package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cryptoarch/internal/check"
	"cryptoarch/internal/emu"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
	"cryptoarch/internal/metrics"
	"cryptoarch/internal/ooo"
	"cryptoarch/internal/store"
)

// This file implements record-once/replay-many: the dynamic instruction
// stream of a session is fully determined by (cipher, feat, sessionBytes,
// seed, mode), yet the sweep times it on up to five machine models. The
// cache records the functional emulation once into a packed emu.Trace and
// hands every subsequent run a ReplayStream, so a cell's models share one
// emulation. Entries never go stale — the key determines the trace bit for
// bit — so the only invalidation is capacity (LRU) and the explicit
// ResetTraceCache used by benchmarks.

// traceMode distinguishes the three program shapes a key can describe.
type traceMode uint8

const (
	modeEncrypt traceMode = iota
	modeDecrypt
	modeSetup // sessionBytes ignored (key setup only)
)

type traceKey struct {
	cipher  string
	feat    isa.Feature
	session int
	seed    int64
	mode    traceMode
}

// traceEntry is a singleflight slot: the first goroutine to arrive records
// under once; everyone else waits and replays.
type traceEntry struct {
	once sync.Once

	tr      *emu.Trace // complete trace; nil if oversized or errored
	sum     uint64     // FNV-1a checksum of tr.Recs at record time
	codeLen int        // static code length (for I-cache warming)
	err     error

	// Oversized traces (beyond maxTraceInsts) are not retained: the
	// recording run keeps its machine and hands out a one-shot
	// replay-prefix-then-go-live stream; later arrivals re-emulate live.
	resume ooo.Stream

	// fromStore marks an entry faulted in from the persistent store: the
	// recording goroutine paid a disk load, not a functional emulation, so
	// hit/miss classification counts it as a hit.
	fromStore bool

	lastUse     uint64 // cache clock at last touch (LRU)
	sinceVerify int    // traceFor uses since the last checksum verification
}

// maxTraceInsts caps the records retained per trace (16 B each: 48 MB).
// Fig6's 64 KB sessions reach ~15M instructions for 3DES; retaining
// those would blow the budget for traces that are replayed by at most
// one extra model anyway.
const maxTraceInsts = 3 << 20

// traceBudgetBytes bounds total retained trace memory across the cache —
// retained traces plus the live chunk-window copies the chunked-replay
// orchestrator reserves (reserveChunkBytes). A variable so tests can
// shrink it to exercise eviction pressure.
var traceBudgetBytes = 192 << 20

// recBufs pools full-capacity record buffers. Recording appends up to
// maxTraceInsts records; growing a fresh slice there each time costs a
// doubling series of large copies (hundreds of MB of memmove across a
// sweep), so recordings borrow a pre-sized buffer and the retained trace
// keeps only an exact-size copy.
var recBufs = make(chan []emu.TraceRec, 4)

func getRecBuf() []emu.TraceRec {
	select {
	case b := <-recBufs:
		return b[:0]
	default:
		return make([]emu.TraceRec, 0, maxTraceInsts)
	}
}

func putRecBuf(b []emu.TraceRec) {
	if cap(b) < maxTraceInsts {
		return
	}
	select {
	case recBufs <- b:
	default:
	}
}

// releasingStream returns its borrowed record buffer to the pool once the
// stream is drained (the engine always runs streams to completion).
type releasingStream struct {
	s   ooo.Stream
	buf []emu.TraceRec
}

func (r *releasingStream) Next() (*emu.Rec, bool) {
	rec, ok := r.s.Next()
	if !ok && r.buf != nil {
		putRecBuf(r.buf)
		r.buf = nil
	}
	return rec, ok
}

// Err passes a terminal machine fault of the wrapped stream through to the
// timing engine.
func (r *releasingStream) Err() error {
	if f, ok := r.s.(interface{ Err() error }); ok {
		return f.Err()
	}
	return nil
}

// TraceCacheStats counts cache traffic for benchmark and sweep-progress
// reporting. Hits/Misses classify every stream request: a hit is served
// entirely from previously recorded state; a miss pays functional
// emulation (it recorded the trace itself, or fell back to live
// execution). The remaining counters break the traffic down by mechanism.
//
// The counters live on the telemetry registry (tracecache.* names); this
// struct is the stable JSON view ReadTraceCacheStats assembles from them,
// so simbench and asplos2000 -json output keeps its field names. With the
// registry disabled (SetMetrics(nil)) the counts read zero.
type TraceCacheStats struct {
	Hits          int `json:"hits"`           // requests served from a recorded trace
	Misses        int `json:"misses"`         // requests that paid functional emulation
	Records       int `json:"records"`        // full traces recorded
	Replays       int `json:"replays"`        // runs served by a cached trace
	Resumes       int `json:"resumes"`        // oversized records streamed out once
	LiveFallbacks int `json:"live_fallbacks"` // runs that re-emulated live
	Evictions     int `json:"evictions"`      // traces dropped by the LRU budget
	// ChecksumEvictions counts retained traces whose FNV-1a checksum no
	// longer matched the record-time sum when a replay was requested.
	// Each such trace is dropped and re-recorded once; a second mismatch
	// fails the request. Nonzero means memory corruption (or a stray
	// write through a stale slice) was caught before it skewed a run.
	ChecksumEvictions int           `json:"checksum_evictions"`
	RecordTime        time.Duration `json:"record_time_ns"` // wall time spent in functional recording
}

type traceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*traceEntry
	bytes   int // retained trace bytes
	clock   uint64
}

var traces = traceCache{entries: make(map[traceKey]*traceEntry)}

// tcCounters holds the registry handles of the trace-cache counters,
// rebound whenever SetMetrics swaps the registry. All fields are nil when
// telemetry is disabled; every update site then no-ops.
type tcCounters struct {
	hits, misses, records, replays, resumes *metrics.Counter
	liveFallbacks, evictions, checksumEv    *metrics.Counter
	recordNS                                *metrics.Counter
}

var tcPtr atomic.Pointer[tcCounters]

func rebindTraceCounters(r *metrics.Registry) {
	tcPtr.Store(&tcCounters{
		hits:          r.Counter("tracecache.hits"),
		misses:        r.Counter("tracecache.misses"),
		records:       r.Counter("tracecache.records"),
		replays:       r.Counter("tracecache.replays"),
		resumes:       r.Counter("tracecache.resumes"),
		liveFallbacks: r.Counter("tracecache.live_fallbacks"),
		evictions:     r.Counter("tracecache.evictions"),
		checksumEv:    r.Counter("tracecache.checksum_evictions"),
		recordNS:      r.Counter("tracecache.record_ns"),
	})
}

// tcCtr returns the current counter handles (never nil; the handles inside
// are nil when telemetry is off).
func tcCtr() *tcCounters { return tcPtr.Load() }

func (c *tcCounters) reset() {
	for _, ctr := range []*metrics.Counter{
		c.hits, c.misses, c.records, c.replays, c.resumes,
		c.liveFallbacks, c.evictions, c.checksumEv, c.recordNS,
	} {
		ctr.Reset()
	}
}

// ResetTraceCache drops all cached traces and zeroes the statistics —
// both the trace-cache counters and the persistent-store counters, so
// cold/warm benchmark passes and worker-count equivalence loops start from
// a clean count. The persistent store itself (if installed) keeps its
// entries: dropping the in-memory cache must not forget what is on disk.
func ResetTraceCache() {
	traces.mu.Lock()
	defer traces.mu.Unlock()
	traces.entries = make(map[traceKey]*traceEntry)
	traces.bytes = 0
	traces.clock = 0
	tcCtr().reset()
	store.ResetCounters()
}

// ReadTraceCacheStats returns a snapshot of the cache counters.
func ReadTraceCacheStats() TraceCacheStats {
	c := tcCtr()
	return TraceCacheStats{
		Hits:              int(c.hits.Value()),
		Misses:            int(c.misses.Value()),
		Records:           int(c.records.Value()),
		Replays:           int(c.replays.Value()),
		Resumes:           int(c.resumes.Value()),
		LiveFallbacks:     int(c.liveFallbacks.Value()),
		Evictions:         int(c.evictions.Value()),
		ChecksumEvictions: int(c.checksumEv.Value()),
		RecordTime:        time.Duration(c.recordNS.Value()),
	}
}

// machineFor builds the functional machine a key describes.
func machineFor(k traceKey) (*emu.Machine, error) {
	kern, err := kernels.Get(k.cipher)
	if err != nil {
		return nil, err
	}
	if k.mode == modeSetup {
		key, iv := setupKeyIV(kern, k.seed)
		m, _, err := kernels.NewSetupRun(kern, k.feat, key, iv)
		return m, err
	}
	w, err := NewWorkload(k.cipher, k.session, k.seed)
	if err != nil {
		return nil, err
	}
	if k.mode == modeDecrypt {
		ct, err := goldenCiphertext(w)
		if err != nil {
			return nil, err
		}
		m, _, err := kernels.NewDecRun(kern, k.feat, w.Key, w.IV, ct)
		return m, err
	}
	m, _, err := kernels.NewRun(kern, k.feat, w.Key, w.IV, w.Plain)
	return m, err
}

// recordMaxInsts overrides the instruction budget of recording machines
// (0 = the emulator's default guard). Tests lower it to exercise the
// budget-fault path without minutes of emulation.
var recordMaxInsts uint64

// record fills e for the key (singleflight body): first by faulting a
// complete trace in from the persistent store, then — on a store miss —
// by running the functional emulation, write-through persisting the
// result.
func (e *traceEntry) record(k traceKey) {
	tl := CurrentTimeline()
	if tr, sum, codeLen, ok := loadTraceFromStore(k); ok {
		sp := metrics.NoSpan
		if tl != nil {
			sp = tl.Begin("storeload", "store load "+k.cipher+"/"+k.feat.String())
		}
		e.tr, e.sum, e.codeLen = tr, sum, codeLen
		e.fromStore = true
		traces.mu.Lock()
		traces.bytes += tr.Bytes()
		traces.evictLocked()
		traces.mu.Unlock()
		tl.End(sp)
		return
	}
	sp := metrics.NoSpan
	if tl != nil {
		sp = tl.Begin("record", "record "+k.cipher+"/"+k.feat.String())
	}
	defer tl.End(sp)
	start := time.Now()
	m, err := machineFor(k)
	if err != nil {
		e.err = err
		return
	}
	if recordMaxInsts != 0 {
		m.MaxInsts = recordMaxInsts
	}
	e.codeLen = len(m.Prog.Code)
	tr, complete := emu.Record(m, maxTraceInsts, getRecBuf())
	elapsed := time.Since(start)

	traces.mu.Lock()
	tcCtr().recordNS.Add(elapsed.Nanoseconds())
	if !complete {
		if ferr := m.Err(); ferr != nil {
			// The machine faulted (instruction budget, runaway PC): the
			// prefix is not a session, so fail the key instead of caching
			// or resuming a truncated stream.
			putRecBuf(tr.Recs)
			e.err = fmt.Errorf("harness: recording %s: %w", k.cipher, ferr)
			traces.mu.Unlock()
			return
		}
		// Too large to retain: the recorded prefix plus the still-running
		// machine serve exactly one stream (which returns the borrowed
		// buffer when drained), then the entry marks the key as live-only.
		// Oversized traces are never persisted either — the resume path
		// stays live-only, warm or cold.
		e.resume = &releasingStream{s: tr.Resume(m), buf: tr.Recs}
		traces.mu.Unlock()
		return
	}
	// Retain an exact-size copy; the oversized pooled buffer goes back.
	recs := make([]emu.TraceRec, len(tr.Recs))
	copy(recs, tr.Recs)
	putRecBuf(tr.Recs)
	tr = &emu.Trace{Prog: tr.Prog, Recs: recs}
	tcCtr().records.Inc()
	e.tr = tr
	e.sum = tr.Checksum()
	traces.bytes += tr.Bytes()
	traces.evictLocked()
	traces.mu.Unlock()
	saveTraceToStore(k, tr)
}

// evictLocked enforces the byte budget, dropping least-recently-used
// complete traces. Streams already handed out keep their trace alive; the
// cache just forgets it.
func (c *traceCache) evictLocked() {
	for c.bytes > traceBudgetBytes {
		var victim traceKey
		var ve *traceEntry
		for k, e := range c.entries {
			if e.tr == nil {
				continue
			}
			if ve == nil || e.lastUse < ve.lastUse {
				victim, ve = k, e
			}
		}
		if ve == nil {
			return
		}
		c.bytes -= ve.tr.Bytes()
		delete(c.entries, victim)
		tcCtr().evictions.Inc()
	}
}

// stream returns an ooo.Stream delivering the key's committed-path
// instruction stream, plus the static code length for I-cache warming.
// Cached keys replay without re-running the emulator.
func (c *traceCache) stream(k traceKey) (ooo.Stream, int, error) {
	return c.streamChecked(k, false)
}

// streamChecked is stream with the retry-once state of the checksum
// recovery path made explicit.
func (c *traceCache) streamChecked(k traceKey, retried bool) (ooo.Stream, int, error) {
	c.mu.Lock()
	e := c.entries[k]
	if e == nil {
		e = &traceEntry{}
		c.entries[k] = e
	}
	c.clock++
	e.lastUse = c.clock
	c.mu.Unlock()

	recorded := false
	e.once.Do(func() { recorded = true; e.record(k) })
	if e.err != nil {
		return nil, 0, e.err
	}

	c.mu.Lock()
	// Hit/miss classification: a request that triggered the recording (or
	// re-emulates live below) paid the functional emulation — a miss; any
	// other request rides previously recorded state — a hit.
	if tr := e.tr; tr != nil {
		sum := e.sum
		c.mu.Unlock()
		// Re-verify the record-time checksum (outside the lock — the trace
		// is immutable by contract, this is exactly the check that catches
		// someone breaking that contract). On mismatch drop the entry and
		// re-record once; a second mismatch means the corruption is not in
		// the retained bytes and the request fails loudly.
		if tr.Checksum() != sum {
			c.mu.Lock()
			tcCtr().checksumEv.Inc()
			if c.entries[k] == e {
				delete(c.entries, k)
				c.bytes -= tr.Bytes()
			}
			c.mu.Unlock()
			if retried {
				return nil, 0, check.Violationf("cached-trace", 0,
					"trace %s/%v corrupted again after re-record (sum %#x, want %#x)",
					k.cipher, k.feat, tr.Checksum(), sum)
			}
			return c.streamChecked(k, true)
		}
		ctr := tcCtr()
		ctr.replays.Inc()
		// A store fault-in counts as a hit even for the goroutine that
		// triggered it: no functional emulation was paid.
		if recorded && !e.fromStore {
			ctr.misses.Inc()
		} else {
			ctr.hits.Inc()
		}
		return tr.Stream(), e.codeLen, nil
	}
	if s := e.resume; s != nil {
		e.resume = nil // single-use
		ctr := tcCtr()
		ctr.resumes.Inc()
		if recorded {
			ctr.misses.Inc()
		} else {
			ctr.hits.Inc()
		}
		c.mu.Unlock()
		return s, e.codeLen, nil
	}
	ctr := tcCtr()
	ctr.liveFallbacks.Inc()
	ctr.misses.Inc()
	c.mu.Unlock()

	m, err := machineFor(k)
	if err != nil {
		return nil, 0, err
	}
	return ooo.MachineStream{M: m}, len(m.Prog.Code), nil
}

// traceFor returns the key's complete retained trace (recording it on
// first request), or nil with no error when the key cannot be held as a
// complete trace — oversized sessions and live-only keys — in which case
// the caller must fall back to the serial stream path. Hit/miss traffic
// is only counted when a trace is returned; the fallback path counts
// itself when it calls stream.
func (c *traceCache) traceFor(k traceKey) (*emu.Trace, int, error) {
	return c.traceForChecked(k, false)
}

// traceForChecked is traceFor with the retry-once state of the checksum
// recovery path made explicit (the same protocol as streamChecked).
func (c *traceCache) traceForChecked(k traceKey, retried bool) (*emu.Trace, int, error) {
	c.mu.Lock()
	e := c.entries[k]
	if e == nil {
		e = &traceEntry{}
		c.entries[k] = e
	}
	c.clock++
	e.lastUse = c.clock
	c.mu.Unlock()

	recorded := false
	e.once.Do(func() { recorded = true; e.record(k) })
	if e.err != nil {
		return nil, 0, e.err
	}

	c.mu.Lock()
	tr := e.tr
	codeLen := e.codeLen
	sum := e.sum
	// Amortized integrity check: the chunk and sampling orchestrators call
	// traceFor once per cell run, and hashing a multi-MB slab every time
	// would dominate a sampled run that simulates only a few percent of it.
	// Verify on the first use and every traceVerifyEvery-th use thereafter;
	// the serial stream path keeps verifying every request.
	e.sinceVerify++
	verify := e.sinceVerify == 1 || e.sinceVerify > traceVerifyEvery
	if e.sinceVerify > traceVerifyEvery {
		e.sinceVerify = 1
	}
	c.mu.Unlock()
	if tr == nil {
		// Oversized or live-only: a recording triggered here still paid the
		// emulation, but its one-shot resume stream is left for the serial
		// fallback, which does its own accounting.
		return nil, codeLen, nil
	}
	if verify && tr.Checksum() != sum {
		c.mu.Lock()
		tcCtr().checksumEv.Inc()
		if c.entries[k] == e {
			delete(c.entries, k)
			c.bytes -= tr.Bytes()
		}
		c.mu.Unlock()
		if retried {
			return nil, 0, check.Violationf("cached-trace", 0,
				"trace %s/%v corrupted again after re-record (sum %#x, want %#x)",
				k.cipher, k.feat, tr.Checksum(), sum)
		}
		return c.traceForChecked(k, true)
	}
	ctr := tcCtr()
	ctr.replays.Inc()
	if recorded && !e.fromStore {
		ctr.misses.Inc()
	} else {
		ctr.hits.Inc()
	}
	return tr, codeLen, nil
}

// traceVerifyEvery is the re-verification period of traceFor's amortized
// checksum check.
const traceVerifyEvery = 64

// reserveChunkBytes accounts a chunk warmup-window copy against the trace
// cache's byte budget: the copies are trace memory that lives exactly as
// long as a chunk worker runs, so they squeeze retained traces out under
// pressure instead of silently doubling the footprint.
func reserveChunkBytes(n int) {
	if n <= 0 {
		return
	}
	traces.mu.Lock()
	traces.bytes += n
	traces.evictLocked()
	traces.mu.Unlock()
}

// releaseChunkBytes returns a chunk reservation made by reserveChunkBytes.
func releaseChunkBytes(n int) {
	if n <= 0 {
		return
	}
	traces.mu.Lock()
	traces.bytes -= n
	if traces.bytes < 0 {
		traces.bytes = 0
	}
	traces.mu.Unlock()
}

// StreamKernel returns the committed-path instruction stream of an
// encryption session, served from the trace cache when possible, plus the
// program's static instruction count. Callers that only inspect the
// stream (e.g. the op-mix measurement) share the same recorded emulation
// the timing runs replay. Replayed records carry Val == 0;
// value-prediction experiments must keep using a live machine.
func StreamKernel(cipher string, feat isa.Feature, sessionBytes int, seed int64) (ooo.Stream, int, error) {
	return traces.stream(traceKey{cipher: cipher, feat: feat, session: sessionBytes, seed: seed, mode: modeEncrypt})
}

// setupKeyIV derives the deterministic key/IV TimeSetup uses.
func setupKeyIV(k *kernels.Kernel, seed int64) (key, iv []byte) {
	rng := rand.New(rand.NewSource(seed))
	key = make([]byte, k.KeyBytes)
	rng.Read(key)
	iv = make([]byte, max(k.BlockBytes, 8))
	rng.Read(iv)
	return key, iv
}
