// Package store is the persistent content-addressed result store: an
// on-disk, two-tier cache (packed traces and finished cell results) under
// .simstore/ that survives process exit, so a warm sweep re-simulates only
// the cells the current diff invalidated and loads the rest in
// milliseconds.
//
// Entries are addressed by FNV-1a content-hash keys over their complete
// identity (key.go) — the emulator and engine versions, the kernel program
// bytes, the session parameters, the machine configuration. Identity lives
// entirely in the key: the store never updates an entry in place, and a
// change to any identity field derives a different key, so staleness is
// structurally impossible; the only failure modes left are capacity (LRU
// eviction against a byte budget) and corruption (checksums verified on
// every load; corrupt entries are deleted, counted, and reported as
// misses so the caller re-records exactly once — the same discipline as
// the trace cache's ChecksumEvictions).
//
// Writes are atomic (temp file + rename into place), so a crashed or
// concurrent writer can never leave a half-written entry under a live key;
// at worst a truncated temp file leaks and is swept at the next Open.
// Traffic counters ride on the shared metrics registry (store.* names) and
// reach simbench JSON and asplos2000 -json via ReadStats.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cryptoarch/internal/metrics"
)

// SchemaVersion identifies the on-disk entry format and key schema. It is
// hashed into every key and stamped into MANIFEST.json; bumping it makes
// every old entry unreachable and makes Open refuse old directories with
// ErrStale rather than silently mixing formats.
const SchemaVersion = 1

// ErrStale marks a store directory whose manifest disagrees with this
// binary's schema (or a populated directory with no manifest at all).
// Callers decide policy: asplos2000 refuses -write against a stale store
// and otherwise warns and runs storeless.
var ErrStale = errors.New("store: directory schema is stale")

// Tier selects one of the store's two namespaces.
type Tier int

const (
	// TierTrace holds packed emu.TraceRec payloads: loading one skips
	// functional re-emulation.
	TierTrace Tier = iota
	// TierResult holds finished cell results (ooo.Stats + report
	// fragments): loading one skips simulation entirely.
	TierResult
)

// dir returns the tier's subdirectory name.
func (t Tier) dir() string {
	if t == TierResult {
		return "result"
	}
	return "trace"
}

// String names the tier for diagnostics.
func (t Tier) String() string { return t.dir() }

// Entry file layout: a 24-byte header followed by the payload.
const (
	entryMagic  = "simstor1"
	headerBytes = 24 // magic(8) | payload len LE64 | FNV-1a sum LE64
)

// checksum is the payload integrity hash: FNV-1a 64-bit, the repo-wide
// standard. For trace-tier entries the payload encoding is chosen so this
// equals emu.ChecksumRecs of the decoded records (pinned by a harness
// test), so one hash serves both file integrity and trace identity.
func checksum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// manifest is the MANIFEST.json shape.
type manifest struct {
	SchemaVersion int `json:"schema_version"`
}

// manifestFile is the manifest's file name inside the store directory.
const manifestFile = "MANIFEST.json"

// entry is the in-memory index of one on-disk entry.
type entry struct {
	size    int64  // file size including header
	lastUse uint64 // store clock at last touch (LRU)
}

// Store is a handle on one store directory. All methods are safe for
// concurrent use and are no-ops (reporting misses without counting) on a
// nil *Store, so call sites need no "is the store on" branches.
type Store struct {
	mu      sync.Mutex
	root    string
	budget  int64
	bytes   int64
	clock   uint64
	entries map[string]*entry // rel path "tier/key" -> entry

	fs     FS          // filesystem seam (osFS in production, FaultFS in chaos tests)
	retry  retryPolicy // transient-error backoff
	tmpSeq atomic.Uint64

	// degraded flips once on a persistent I/O failure: from then on every
	// Get misses and every Put is dropped, so the sweep recomputes instead
	// of fighting a broken disk. degradeErr keeps the failure that tripped
	// it for Stats and diagnostics.
	degraded   atomic.Bool
	degradeErr atomic.Pointer[error]
}

// Open opens (creating if needed) the store directory with the given byte
// budget and returns a handle. A populated directory whose manifest is
// missing or names a different schema returns ErrStale (wrapped) — the
// caller chooses between refusing and running storeless; Open never
// deletes a stale directory. Existing entries are indexed in file-mtime
// order so LRU eviction order survives across processes.
func Open(dir string, budget int64) (*Store, error) {
	return OpenFS(dir, budget, osFS{})
}

// OpenFS is Open on an explicit filesystem implementation — the chaos
// tests' entry point for injecting I/O faults under every store code
// path.
func OpenFS(dir string, budget int64, fsys FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if budget <= 0 {
		return nil, fmt.Errorf("store: non-positive byte budget %d", budget)
	}
	if fsys == nil {
		fsys = osFS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{root: dir, budget: budget, entries: make(map[string]*entry), fs: fsys, retry: defaultRetry()}
	if err := s.checkManifest(); err != nil {
		return nil, err
	}
	type scanned struct {
		rel   string
		size  int64
		mtime time.Time
	}
	var found []scanned
	for _, t := range []Tier{TierTrace, TierResult} {
		td := filepath.Join(dir, t.dir())
		if err := fsys.MkdirAll(td, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		des, err := fsys.ReadDir(td)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		for _, de := range des {
			if !de.Type().IsRegular() {
				continue
			}
			info, err := de.Info()
			if err != nil {
				continue
			}
			found = append(found, scanned{
				rel:   t.dir() + "/" + de.Name(),
				size:  info.Size(),
				mtime: info.ModTime(),
			})
		}
	}
	// Sweep temp files a crashed writer may have left in the root. A live
	// writer's temps are never here: mid-run write and rename failures
	// remove their temp immediately (writeFileAtomic), so this sweep only
	// ever sees the residue of a process that died between write and
	// rename.
	if des, err := fsys.ReadDir(dir); err == nil {
		for _, de := range des {
			if de.Type().IsRegular() && strings.HasPrefix(de.Name(), "put-") {
				fsys.Remove(filepath.Join(dir, de.Name()))
			}
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, f := range found {
		s.clock++
		s.entries[f.rel] = &entry{size: f.size, lastUse: s.clock}
		s.bytes += f.size
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// checkManifest validates or creates MANIFEST.json. A missing manifest is
// only acceptable in an unpopulated directory (a fresh store); anything
// else is ErrStale.
func (s *Store) checkManifest() error {
	path := filepath.Join(s.root, manifestFile)
	b, err := s.fs.ReadFile(path)
	switch {
	case err == nil:
		var m manifest
		if json.Unmarshal(b, &m) != nil || m.SchemaVersion != SchemaVersion {
			return fmt.Errorf("%w: %s has schema %s, want %d",
				ErrStale, path, manifestSchema(b), SchemaVersion)
		}
		return nil
	case os.IsNotExist(err):
		for _, t := range []Tier{TierTrace, TierResult} {
			des, derr := s.fs.ReadDir(filepath.Join(s.root, t.dir()))
			if derr == nil && len(des) > 0 {
				return fmt.Errorf("%w: %s is populated but has no %s",
					ErrStale, s.root, manifestFile)
			}
		}
		mb, _ := json.Marshal(manifest{SchemaVersion: SchemaVersion})
		return s.writeFileAtomic(path, append(mb, '\n'))
	default:
		return fmt.Errorf("store: %w", err)
	}
}

// manifestSchema renders the schema version of raw manifest bytes for the
// ErrStale message ("?" when unparseable).
func manifestSchema(b []byte) string {
	var m manifest
	if json.Unmarshal(b, &m) != nil {
		return "?"
	}
	return fmt.Sprintf("%d", m.SchemaVersion)
}

// Root returns the store directory ("" on a nil store).
func (s *Store) Root() string {
	if s == nil {
		return ""
	}
	return s.root
}

// EntryPath returns the file path an entry lives at (whether or not it
// exists). Corruption tests use it to truncate and bit-flip entries.
func (s *Store) EntryPath(t Tier, key string) string {
	if s == nil {
		return ""
	}
	return filepath.Join(s.root, t.dir(), key)
}

// BytesUsed returns the current accounted size of the store.
func (s *Store) BytesUsed() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Get loads an entry's payload, verifying the header and FNV-1a checksum.
// A missing entry is a plain miss. A corrupted or truncated entry is
// deleted from disk, counted on the corrupt counter, and reported as a
// miss — the caller re-records and Puts, so corruption costs exactly one
// re-computation. The returned sum is the payload checksum from the
// verified header (for trace entries, equal to emu.ChecksumRecs of the
// decoded records).
func (s *Store) Get(t Tier, key string) (payload []byte, sum uint64, ok bool) {
	if s == nil || s.degraded.Load() {
		return nil, 0, false
	}
	c := ctr()
	start := time.Now()
	path := s.EntryPath(t, key)
	var data []byte
	err := s.retry.do(func() error {
		var e error
		data, e = s.fs.ReadFile(path)
		return e
	})
	if err != nil {
		c.missOf(t).Inc()
		if !errors.Is(err, fs.ErrNotExist) {
			// A read that failed after retries (or deterministically) is a
			// broken disk, not a cold cache: degrade rather than pay the
			// retry tax on every future key.
			s.degrade(err)
		}
		return nil, 0, false
	}
	if len(data) < headerBytes ||
		string(data[:8]) != entryMagic ||
		binary.LittleEndian.Uint64(data[8:16]) != uint64(len(data)-headerBytes) {
		s.dropCorrupt(t, key, path)
		return nil, 0, false
	}
	payload = data[headerBytes:]
	sum = binary.LittleEndian.Uint64(data[16:24])
	if checksum(payload) != sum {
		s.dropCorrupt(t, key, path)
		return nil, 0, false
	}
	c.loadNS.Add(time.Since(start).Nanoseconds())
	c.hitOf(t).Inc()
	s.mu.Lock()
	s.clock++
	rel := t.dir() + "/" + key
	if e := s.entries[rel]; e != nil {
		e.lastUse = s.clock
	} else {
		// Written by another process since Open; adopt it.
		s.entries[rel] = &entry{size: int64(len(data)), lastUse: s.clock}
		s.bytes += int64(len(data))
		s.evictLocked()
	}
	s.mu.Unlock()
	// Touch the file so cross-process LRU order tracks use, not creation.
	// Best-effort: a failed touch only skews cross-process LRU recency.
	now := time.Now()
	s.fs.Chtimes(path, now, now)
	return payload, sum, true
}

// degrade flips the store into its no-op shell, counting the transition
// once and keeping the triggering error. Concurrent failures race
// benignly: the first to flip wins the counter, every loser's error is
// equivalent evidence.
func (s *Store) degrade(err error) {
	if s.degraded.CompareAndSwap(false, true) {
		s.degradeErr.Store(&err)
		ctr().degraded.Inc()
	}
}

// Degraded reports whether the store has given up on its disk, and the
// persistent I/O failure that made it. A degraded store stays safe to
// call — every operation is a cheap miss/no-op — so callers only need
// this for reporting.
func (s *Store) Degraded() (bool, error) {
	if s == nil || !s.degraded.Load() {
		return false, nil
	}
	if p := s.degradeErr.Load(); p != nil {
		return true, *p
	}
	return true, nil
}

// dropCorrupt deletes a failed-verification entry and counts it. The miss
// counter advances too: the caller pays a re-computation either way, and
// hit+miss must keep summing to requests.
func (s *Store) dropCorrupt(t Tier, key, path string) {
	c := ctr()
	c.corrupt.Inc()
	c.missOf(t).Inc()
	s.fs.Remove(path)
	s.mu.Lock()
	rel := t.dir() + "/" + key
	if e := s.entries[rel]; e != nil {
		s.bytes -= e.size
		delete(s.entries, rel)
	}
	s.mu.Unlock()
}

// Put writes an entry atomically: header + payload into a temp file in the
// store root, fsync'd order not required (a torn write fails the checksum
// and self-heals as a corrupt miss), then renamed into place. Payloads
// that alone exceed the byte budget are silently not stored. Overwriting
// an existing key is allowed and idempotent — content addressing means the
// bytes are identical anyway. Transient write/rename failures are retried
// with backoff; a persistent one degrades the store (future Puts become
// free no-ops) and returns the error for counting.
func (s *Store) Put(t Tier, key string, payload []byte) error {
	if s == nil || s.degraded.Load() {
		return nil
	}
	if int64(len(payload))+headerBytes > s.budget {
		return nil
	}
	c := ctr()
	start := time.Now()
	buf := make([]byte, headerBytes+len(payload))
	copy(buf, entryMagic)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint64(buf[16:24], checksum(payload))
	copy(buf[headerBytes:], payload)
	if err := s.writeFileAtomic(s.EntryPath(t, key), buf); err != nil {
		s.degrade(err)
		return fmt.Errorf("store: %w", err)
	}
	size := int64(headerBytes + len(payload))
	s.mu.Lock()
	s.clock++
	rel := t.dir() + "/" + key
	if e := s.entries[rel]; e != nil {
		s.bytes -= e.size
	}
	s.entries[rel] = &entry{size: size, lastUse: s.clock}
	s.bytes += size
	s.evictLocked()
	s.mu.Unlock()
	c.writes.Inc()
	c.writeNS.Add(time.Since(start).Nanoseconds())
	return nil
}

// tempName returns a fresh temp path in the store root. The "put-" prefix
// is the crash-sweep contract with Open; pid + sequence keeps concurrent
// processes and goroutines from colliding.
func (s *Store) tempName() string {
	return filepath.Join(s.root, fmt.Sprintf("put-%d-%d", os.Getpid(), s.tmpSeq.Add(1)))
}

// writeFileAtomic writes bytes via temp + rename, retrying transient
// failures with backoff. Every failed attempt removes its temp file
// immediately — a mid-run write or rename error must not leave residue
// for the next Open to sweep (TestWriteFailureLeavesNoTempResidue).
func (s *Store) writeFileAtomic(path string, b []byte) error {
	return s.retry.do(func() error {
		tmp := s.tempName()
		if err := s.fs.WriteFile(tmp, b, 0o644); err != nil {
			s.fs.Remove(tmp)
			return err
		}
		if err := s.fs.Rename(tmp, path); err != nil {
			s.fs.Remove(tmp)
			return err
		}
		return nil
	})
}

// evictLocked enforces the byte budget by deleting least-recently-used
// entries (both tiers compete for the same budget). Caller holds s.mu.
func (s *Store) evictLocked() {
	for s.bytes > s.budget && len(s.entries) > 0 {
		var victim string
		var ve *entry
		for rel, e := range s.entries {
			if ve == nil || e.lastUse < ve.lastUse {
				victim, ve = rel, e
			}
		}
		s.bytes -= ve.size
		delete(s.entries, victim)
		s.fs.Remove(filepath.Join(s.root, filepath.FromSlash(victim)))
		ctr().evictions.Inc()
	}
}

// counters holds the registry handles of the store counters, rebound
// whenever the harness swaps the telemetry registry. All handles are nil
// when telemetry is disabled; every update site then no-ops.
type counters struct {
	traceHits, traceMisses   *metrics.Counter
	resultHits, resultMisses *metrics.Counter
	writes, evictions        *metrics.Counter
	corrupt                  *metrics.Counter
	retries, degraded        *metrics.Counter
	loadNS, writeNS          *metrics.Counter
}

var ctrPtr atomic.Pointer[counters]

func init() { Rebind(nil) }

// Rebind points the store counters at a registry (nil disables them). The
// harness calls this from SetMetrics so store traffic lands on the same
// registry as everything else.
func Rebind(r *metrics.Registry) {
	ctrPtr.Store(&counters{
		traceHits:    r.Counter("store.trace_hits"),
		traceMisses:  r.Counter("store.trace_misses"),
		resultHits:   r.Counter("store.result_hits"),
		resultMisses: r.Counter("store.result_misses"),
		writes:       r.Counter("store.writes"),
		evictions:    r.Counter("store.evictions"),
		corrupt:      r.Counter("store.corrupt"),
		retries:      r.Counter("store.retries"),
		degraded:     r.Counter("store.degraded"),
		loadNS:       r.Counter("store.load_ns"),
		writeNS:      r.Counter("store.write_ns"),
	})
}

// ctr returns the current counter handles (never nil; the handles inside
// are nil when telemetry is off).
func ctr() *counters { return ctrPtr.Load() }

func (c *counters) hitOf(t Tier) *metrics.Counter {
	if t == TierResult {
		return c.resultHits
	}
	return c.traceHits
}

func (c *counters) missOf(t Tier) *metrics.Counter {
	if t == TierResult {
		return c.resultMisses
	}
	return c.traceMisses
}

// ResetCounters zeroes the store counters in place (handles stay valid).
// experiments.ResetCache and the benchmarks use it so hit/miss state does
// not leak across timed passes or worker-count configurations.
func ResetCounters() {
	c := ctr()
	for _, k := range []*metrics.Counter{
		c.traceHits, c.traceMisses, c.resultHits, c.resultMisses,
		c.writes, c.evictions, c.corrupt, c.retries, c.degraded,
		c.loadNS, c.writeNS,
	} {
		k.Reset()
	}
}

// Stats is the stable JSON view of the store counters, assembled from the
// registry the same way TraceCacheStats is.
type Stats struct {
	TraceHits    int           `json:"trace_hits"`
	TraceMisses  int           `json:"trace_misses"`
	ResultHits   int           `json:"result_hits"`
	ResultMisses int           `json:"result_misses"`
	Writes       int           `json:"writes"`
	Evictions    int           `json:"evictions"`
	Corrupt      int           `json:"corrupt"`
	Retries      int           `json:"retries"`
	Degraded     int           `json:"degraded"`
	LoadTime     time.Duration `json:"load_time_ns"`
	WriteTime    time.Duration `json:"write_time_ns"`
}

// ReadStats returns a snapshot of the store counters.
func ReadStats() Stats {
	c := ctr()
	return Stats{
		TraceHits:    int(c.traceHits.Value()),
		TraceMisses:  int(c.traceMisses.Value()),
		ResultHits:   int(c.resultHits.Value()),
		ResultMisses: int(c.resultMisses.Value()),
		Writes:       int(c.writes.Value()),
		Evictions:    int(c.evictions.Value()),
		Corrupt:      int(c.corrupt.Value()),
		Retries:      int(c.retries.Value()),
		Degraded:     int(c.degraded.Value()),
		LoadTime:     time.Duration(c.loadNS.Value()),
		WriteTime:    time.Duration(c.writeNS.Value()),
	}
}
