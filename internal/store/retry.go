package store

import (
	"errors"
	"io/fs"
	"syscall"
	"time"
)

// Error taxonomy for store I/O, mirroring DESIGN §14's supervision model.
// Every filesystem failure the store sees falls in exactly one class:
//
//   - miss: fs.ErrNotExist on a read. Not an error at all — the entry was
//     never written (or was evicted). Counted as an ordinary miss.
//   - deterministic: the operation will fail the same way every time —
//     permission denied, read-only filesystem, disk full. Retrying wastes
//     wall clock; the store degrades immediately.
//   - transient: everything else (EIO, EINTR, EAGAIN, a racing unlink, an
//     overloaded network filesystem). Retried with capped exponential
//     backoff; exhausting the retries reclassifies the failure as
//     persistent and the store degrades.
//
// "Degrades" means the store flips to a no-op shell: every Get is a miss,
// every Put is dropped, and the sweep recomputes instead — graceful
// degradation, never a hard failure. The flip is counted on the metrics
// registry (store.degraded) and reported once on stderr-bound Stats so an
// operator can see a run silently lost its accelerator.

// deterministicFS reports whether an I/O error is in the
// fail-the-same-way-forever class, where retrying cannot help.
func deterministicFS(err error) bool {
	return errors.Is(err, fs.ErrPermission) ||
		errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, syscall.EROFS) ||
		errors.Is(err, syscall.EDQUOT)
}

// retryPolicy is the store's capped exponential backoff: attempt, then
// sleep base, 2*base, 4*base ... capped at max, for at most attempts
// total tries. The zero value is invalid; use defaultRetry.
type retryPolicy struct {
	attempts int
	base     time.Duration
	max      time.Duration
	sleep    func(time.Duration) // swapped by tests to avoid real waiting
}

// defaultRetry: 4 attempts, 1ms/2ms/4ms between them. A transient blip
// (NFS hiccup, racing eviction) clears well inside that; anything that
// survives 7ms of patience is treated as persistent.
func defaultRetry() retryPolicy {
	return retryPolicy{attempts: 4, base: time.Millisecond, max: 50 * time.Millisecond, sleep: time.Sleep}
}

// do runs op under the policy. A nil or not-exist return passes through
// immediately (not-exist is a miss, not a fault). Deterministic errors
// are returned on first sight; transient ones are retried with backoff,
// each retry counted on the store.retries counter. The returned error is
// the last attempt's.
func (p retryPolicy) do(op func() error) error {
	delay := p.base
	var err error
	for i := 0; i < p.attempts; i++ {
		err = op()
		if err == nil || errors.Is(err, fs.ErrNotExist) || deterministicFS(err) {
			return err
		}
		if i == p.attempts-1 {
			break
		}
		ctr().retries.Inc()
		p.sleep(delay)
		delay *= 2
		if delay > p.max {
			delay = p.max
		}
	}
	return err
}
