package store

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strconv"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/metrics"
)

// Key derivation. Every store entry is addressed by the FNV-1a content
// hash of the complete identity of what it holds — the same discipline
// (and the same metrics.HashKey primitive) as the run-ledger keys. Nothing
// in the store is ever "updated": a change to any identity field derives a
// different key, so a stale entry can only ever be missed, never returned.

// TraceIdentity is everything that determines a recorded trace bit for
// bit: the functional emulator generation, the kernel program bytes (via
// ProgramDigest), and the session parameters. Two processes that derive
// equal keys are guaranteed — by construction, and pinned by the harness
// fault-in equivalence tests — to record byte-identical traces.
type TraceIdentity struct {
	EmuVersion string // emu.Version: functional-emulation semantics
	Cipher     string
	Feat       string // feature level (norot/rot/opt)
	ProgDigest string // ProgramDigest of the assembled kernel
	Session    int    // session bytes (0 for setup programs)
	Seed       int64
	Mode       string // encrypt | decrypt | setup
}

// Key derives the trace-tier store key.
func (id TraceIdentity) Key() string {
	return metrics.HashKey("trace", strconv.Itoa(SchemaVersion), id.EmuVersion,
		id.Cipher, id.Feat, id.ProgDigest,
		strconv.Itoa(id.Session), strconv.FormatInt(id.Seed, 10), id.Mode)
}

// ResultIdentity is everything that determines a finished cell result: the
// trace identity fields plus the timing-engine generation and the full
// machine configuration (every knob, not just the model name — a config
// edit that kept its name must still miss).
type ResultIdentity struct {
	EngineVersion string // ooo.EngineVersion: timing-model semantics
	EmuVersion    string // emu.Version: functional-emulation semantics
	Kind          string // cell kind (kernel/setup/decrypt/count/mix/valuepred/handshake)
	Cipher        string
	Feat          string
	ProgDigest    string
	Session       int
	Seed          int64
	Config        string // full rendering of the machine config fields
}

// Key derives the result-tier store key.
func (id ResultIdentity) Key() string {
	return metrics.HashKey("result", strconv.Itoa(SchemaVersion),
		id.EngineVersion, id.EmuVersion, id.Kind, id.Cipher, id.Feat, id.ProgDigest,
		strconv.Itoa(id.Session), strconv.FormatInt(id.Seed, 10), id.Config)
}

// ProgramDigest returns the FNV-1a content hash (16 hex digits) of an
// assembled program: every field of every instruction plus the read-only
// data segment. Any kernel edit — an opcode, a register, a literal, a
// selector, a rodata table byte — changes the digest and therefore every
// store key derived from it. The program name and labels are deliberately
// excluded: they are debug metadata that does not affect execution.
func ProgramDigest(p *isa.Program) string {
	h := fnv.New64a()
	var w [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		h.Write(w[:])
	}
	put(uint64(len(p.Code)))
	for i := range p.Code {
		in := &p.Code[i]
		put(uint64(in.Op) | uint64(in.Ra)<<8 | uint64(in.Rb)<<16 | uint64(in.Rc)<<24)
		put(uint64(in.Lit))
		var flags uint64
		if in.UseLit {
			flags |= 1
		}
		if in.Aliased {
			flags |= 2
		}
		put(flags | uint64(in.Sel1)<<8 | uint64(in.Sel2)<<16 | uint64(in.Class)<<24)
	}
	put(uint64(len(p.Rodata)))
	h.Write(p.Rodata)
	return fmt.Sprintf("%016x", h.Sum64())
}
