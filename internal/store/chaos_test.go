package store

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"cryptoarch/internal/check"
	"cryptoarch/internal/metrics"
)

// Chaos tests: every filesystem fault class the check.FaultFS injector can
// plant, mapped to the mechanism that must detect or absorb it. The
// contract under test is graceful degradation — no fault class may fail a
// simulation run; each is either retried past (transient), healed by the
// checksum discipline (torn write), or absorbed by flipping the store into
// its storeless no-op shell (persistent), all visible on the metrics
// registry.

// openChaos opens a store whose filesystem is wrapped in a fault injector.
// Backoff sleeps are captured instead of slept so retry tests are instant.
func openChaos(t *testing.T) (*Store, *check.FaultFS, *check.Injector) {
	t.Helper()
	Rebind(metrics.NewRegistry())
	t.Cleanup(func() { Rebind(nil) })
	in := check.NewInjector(42)
	ffs := in.NewFaultFS(OsFS())
	s, err := OpenFS(t.TempDir(), 1<<20, ffs)
	if err != nil {
		t.Fatal(err)
	}
	s.retry.sleep = func(time.Duration) {} // no real backoff waits in tests
	return s, ffs, in
}

func TestChaosReadTransientRetries(t *testing.T) {
	s, ffs, in := openChaos(t)
	payload := []byte("retry me")
	if err := s.Put(TierResult, "k1", payload); err != nil {
		t.Fatal(err)
	}
	// Two transient read failures, then the disk recovers: the retry loop
	// must absorb both and still deliver a hit.
	ffs.Plan(check.FaultFSRead, 0, 2, syscall.EIO)
	got, _, ok := s.Get(TierResult, "k1")
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get after transient read faults: ok=%v got=%q", ok, got)
	}
	st := ReadStats()
	if st.Retries != 2 {
		t.Fatalf("retries = %d, want 2", st.Retries)
	}
	if st.Degraded != 0 {
		t.Fatalf("store degraded on a transient fault: %+v", st)
	}
	if n := len(in.Injected()); n != 2 {
		t.Fatalf("injector logged %d faults, want 2", n)
	}
}

func TestChaosReadPersistentDegrades(t *testing.T) {
	s, ffs, _ := openChaos(t)
	if err := s.Put(TierResult, "k1", []byte("soon unreachable")); err != nil {
		t.Fatal(err)
	}
	// The disk never recovers: retries exhaust, the store degrades, and
	// every later operation is a cheap storeless no-op.
	ffs.Plan(check.FaultFSRead, 0, -1, syscall.EIO)
	if _, _, ok := s.Get(TierResult, "k1"); ok {
		t.Fatal("Get succeeded through a permanently failing disk")
	}
	st := ReadStats()
	if st.Degraded != 1 {
		t.Fatalf("degraded = %d, want 1 (%+v)", st.Degraded, st)
	}
	if st.Retries == 0 {
		t.Fatal("persistent transient-class fault should have burned retries first")
	}
	if deg, err := s.Degraded(); !deg || !errors.Is(err, syscall.EIO) {
		t.Fatalf("Degraded() = %v, %v; want true, EIO", deg, err)
	}
	// Degraded shell: misses and dropped writes, no panic, no error.
	if _, _, ok := s.Get(TierResult, "k1"); ok {
		t.Fatal("degraded Get hit")
	}
	if err := s.Put(TierResult, "k2", []byte("dropped")); err != nil {
		t.Fatalf("degraded Put errored: %v", err)
	}
}

func TestChaosWriteErrorRetriesThenDegrades(t *testing.T) {
	s, ffs, _ := openChaos(t)
	ffs.Plan(check.FaultFSWrite, 0, -1, syscall.EIO)
	err := s.Put(TierResult, "k1", []byte("never lands"))
	if err == nil {
		t.Fatal("Put through a failing disk reported success")
	}
	st := ReadStats()
	if st.Retries != 3 {
		t.Fatalf("retries = %d, want 3 (4 attempts)", st.Retries)
	}
	if st.Degraded != 1 {
		t.Fatalf("degraded = %d, want 1", st.Degraded)
	}
	if st.Writes != 0 {
		t.Fatalf("writes = %d, want 0", st.Writes)
	}
}

// TestChaosWriteFailureLeavesNoTempResidue is the temp-file-leak gate: a
// mid-run write or rename failure must remove its temp file immediately,
// not leave it for the next Open's crash sweep.
func TestChaosWriteFailureLeavesNoTempResidue(t *testing.T) {
	assertNoTemps := func(t *testing.T, s *Store) {
		t.Helper()
		matches, err := filepath.Glob(filepath.Join(s.Root(), "put-*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 0 {
			t.Fatalf("temp residue after failed Put: %v", matches)
		}
	}
	t.Run("rename", func(t *testing.T) {
		s, ffs, _ := openChaos(t)
		ffs.Plan(check.FaultFSRename, 0, -1, syscall.EIO)
		if err := s.Put(TierResult, "k1", []byte("payload")); err == nil {
			t.Fatal("Put with failing rename reported success")
		}
		assertNoTemps(t, s)
	})
	t.Run("write", func(t *testing.T) {
		s, ffs, _ := openChaos(t)
		ffs.Plan(check.FaultFSWrite, 0, -1, syscall.EIO)
		if err := s.Put(TierResult, "k1", []byte("payload")); err == nil {
			t.Fatal("Put with failing write reported success")
		}
		assertNoTemps(t, s)
	})
}

func TestChaosTornWriteHealsOnLoad(t *testing.T) {
	s, ffs, in := openChaos(t)
	payload := []byte("this payload will be torn in half by the injector")
	ffs.Plan(check.FaultFSTorn, 0, 1, nil)
	if err := s.Put(TierResult, "k1", payload); err != nil {
		t.Fatalf("torn write must report success (that is the fault): %v", err)
	}
	// The torn entry is on disk under a live key; the next load must catch
	// it via the header/length check, delete it and report a miss.
	if _, _, ok := s.Get(TierResult, "k1"); ok {
		t.Fatal("Get returned a torn entry")
	}
	st := ReadStats()
	if st.Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", st.Corrupt)
	}
	if st.Degraded != 0 {
		t.Fatalf("torn write degraded the store: %+v", st)
	}
	// Re-record once: a clean Put under the same key must land and hit.
	if err := s.Put(TierResult, "k1", payload); err != nil {
		t.Fatal(err)
	}
	if got, _, ok := s.Get(TierResult, "k1"); !ok || string(got) != string(payload) {
		t.Fatalf("healed entry: ok=%v got=%q", ok, got)
	}
	if got := in.Injected(); len(got) != 1 || got[0] != check.FaultFSTorn {
		t.Fatalf("injected log = %v", got)
	}
}

func TestChaosENOSPCDegradesWithoutRetry(t *testing.T) {
	s, ffs, _ := openChaos(t)
	ffs.Plan(check.FaultFSFull, 0, -1, nil)
	err := s.Put(TierResult, "k1", []byte("no space"))
	if err == nil {
		t.Fatal("Put on a full disk reported success")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC in chain", err)
	}
	st := ReadStats()
	if st.Retries != 0 {
		t.Fatalf("retries = %d, want 0 — ENOSPC is deterministic, retrying is waste", st.Retries)
	}
	if st.Degraded != 1 {
		t.Fatalf("degraded = %d, want 1", st.Degraded)
	}
	// The degraded store must keep absorbing traffic silently.
	if err := s.Put(TierResult, "k2", []byte("dropped")); err != nil {
		t.Fatalf("degraded Put errored: %v", err)
	}
}

// TestChaosFaultClassCoverage walks every FS fault class and asserts the
// injector fired it — the same no-silently-undetectable-class discipline
// as the engine's fault-injection tests.
func TestChaosFaultClassCoverage(t *testing.T) {
	classes := []check.FaultClass{
		check.FaultFSRead, check.FaultFSWrite, check.FaultFSRename,
		check.FaultFSTorn, check.FaultFSFull,
	}
	for _, class := range classes {
		t.Run(string(class), func(t *testing.T) {
			s, ffs, in := openChaos(t)
			if class == check.FaultFSRead {
				if err := s.Put(TierResult, "k1", []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			ffs.Plan(class, 0, 1, nil)
			switch class {
			case check.FaultFSRead:
				s.Get(TierResult, "k1")
			default:
				s.Put(TierResult, "k1", []byte("probe payload"))
			}
			fired := false
			for _, got := range in.Injected() {
				if got == class {
					fired = true
				}
			}
			if !fired {
				t.Fatalf("fault class %s never fired (log %v)", class, in.Injected())
			}
		})
	}
}
