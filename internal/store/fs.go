package store

import (
	"os"
	"time"
)

// FS is the filesystem surface the store runs on. Production uses osFS
// (the real filesystem); the chaos tests substitute check.FaultFS, which
// wraps a real FS and injects read/write/rename errors, torn writes and
// ENOSPC at deterministic points — the interface is the seam that makes
// every store fault class testable without root privileges or a failing
// disk. The method set is deliberately the store's exact needs, nothing
// more, so a fault injector has to model only operations that matter.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	// WriteFile creates (or truncates) name with the given bytes. The
	// store only ever targets fresh temp names, so an implementation may
	// assume the file is new.
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Chtimes(name string, atime, mtime time.Time) error
}

// osFS is the production FS: thin pass-throughs to package os.
type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}

// OsFS returns the production filesystem implementation (the one Open
// uses). Exposed so tests can wrap it in a fault injector and hand the
// result to OpenFS.
func OsFS() FS { return osFS{} }
