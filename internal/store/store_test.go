package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/metrics"
)

// withCounters installs a live scratch registry for the duration of a test
// so the store counters can be asserted, restoring the disabled default.
func withCounters(t *testing.T) {
	t.Helper()
	Rebind(metrics.NewRegistry())
	t.Cleanup(func() { Rebind(nil) })
}

func openTemp(t *testing.T, budget int64) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), budget)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	withCounters(t)
	s := openTemp(t, 1<<20)
	payload := []byte("the quick brown fox jumps over the lazy dog")
	if err := s.Put(TierTrace, "aaaa", payload); err != nil {
		t.Fatal(err)
	}
	got, sum, ok := s.Get(TierTrace, "aaaa")
	if !ok {
		t.Fatal("Get missed a just-Put entry")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mangled: %q", got)
	}
	if sum != checksum(payload) {
		t.Fatalf("sum %#x, want %#x", sum, checksum(payload))
	}
	// The tiers are separate namespaces.
	if _, _, ok := s.Get(TierResult, "aaaa"); ok {
		t.Fatal("result tier returned a trace-tier entry")
	}
	st := ReadStats()
	if st.TraceHits != 1 || st.ResultMisses != 1 || st.Writes != 1 {
		t.Fatalf("stats %+v: want 1 trace hit, 1 result miss, 1 write", st)
	}
}

func TestGetMissOnAbsent(t *testing.T) {
	withCounters(t)
	s := openTemp(t, 1<<20)
	if _, _, ok := s.Get(TierTrace, "nope"); ok {
		t.Fatal("Get hit an absent key")
	}
	if st := ReadStats(); st.TraceMisses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats %+v: want exactly 1 clean trace miss", st)
	}
}

func TestNilStoreIsDisabled(t *testing.T) {
	var s *Store
	if _, _, ok := s.Get(TierTrace, "k"); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put(TierTrace, "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if s.Root() != "" || s.Len() != 0 || s.BytesUsed() != 0 {
		t.Fatal("nil store reported state")
	}
}

// TestCorruptionBitFlip pins the corruption protocol: a bit-flipped entry
// is detected by the checksum, deleted, counted, and reported as a miss;
// the caller's re-record (one Put) fully heals it.
func TestCorruptionBitFlip(t *testing.T) {
	withCounters(t)
	s := openTemp(t, 1<<20)
	payload := []byte("some result bytes worth protecting")
	if err := s.Put(TierResult, "bbbb", payload); err != nil {
		t.Fatal(err)
	}
	path := s.EntryPath(TierResult, "bbbb")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerBytes+3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get(TierResult, "bbbb"); ok {
		t.Fatal("Get returned a corrupted entry")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupted entry not deleted from disk")
	}
	st := ReadStats()
	if st.Corrupt != 1 || st.ResultMisses != 1 {
		t.Fatalf("stats %+v: want corrupt=1 and the corrupt read counted as a miss", st)
	}
	// Re-record once: the next Put+Get cycle is clean.
	if err := s.Put(TierResult, "bbbb", payload); err != nil {
		t.Fatal(err)
	}
	if got, _, ok := s.Get(TierResult, "bbbb"); !ok || string(got) != string(payload) {
		t.Fatal("re-recorded entry did not read back")
	}
	if st := ReadStats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter moved on the healed entry: %+v", st)
	}
}

// TestCorruptionTruncate covers the torn-write/truncation shapes: shorter
// than the header, and header intact but payload cut.
func TestCorruptionTruncate(t *testing.T) {
	withCounters(t)
	s := openTemp(t, 1<<20)
	payload := []byte("0123456789abcdef0123456789abcdef")
	for i, cut := range []int{headerBytes - 8, headerBytes + len(payload)/2} {
		key := string(rune('a'+i)) + "trunc"
		if err := s.Put(TierTrace, key, payload); err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(s.EntryPath(TierTrace, key), int64(cut)); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := s.Get(TierTrace, key); ok {
			t.Fatalf("cut=%d: Get returned a truncated entry", cut)
		}
	}
	if st := ReadStats(); st.Corrupt != 2 {
		t.Fatalf("stats %+v: want 2 corrupt entries", st)
	}
}

// TestEviction pins the LRU byte budget: the least-recently-used entry is
// deleted (memory and disk) when a Put overflows the budget, and a
// Get refreshes recency.
func TestEviction(t *testing.T) {
	withCounters(t)
	// Budget fits two entries of 100 payload bytes (+24 header) but not
	// three.
	s := openTemp(t, 2*(100+headerBytes)+10)
	pay := make([]byte, 100)
	for _, k := range []string{"k1", "k2"} {
		if err := s.Put(TierTrace, k, pay); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k1 so k2 becomes the LRU victim.
	if _, _, ok := s.Get(TierTrace, "k1"); !ok {
		t.Fatal("k1 missing before eviction")
	}
	if err := s.Put(TierTrace, "k3", pay); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get(TierTrace, "k2"); ok {
		t.Fatal("LRU entry k2 survived an over-budget Put")
	}
	if _, _, ok := s.Get(TierTrace, "k1"); !ok {
		t.Fatal("recently-used k1 was evicted")
	}
	if _, _, ok := s.Get(TierTrace, "k3"); !ok {
		t.Fatal("just-written k3 was evicted")
	}
	if st := ReadStats(); st.Evictions != 1 {
		t.Fatalf("stats %+v: want exactly 1 eviction", st)
	}
	if s.Len() != 2 {
		t.Fatalf("store holds %d entries, want 2", s.Len())
	}
	// Entries that alone exceed the budget are not stored at all.
	if err := s.Put(TierTrace, "huge", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get(TierTrace, "huge"); ok {
		t.Fatal("over-budget payload was stored")
	}
}

// TestReopenPersists pins persistence across handles (the process-restart
// story): a second Open indexes what the first wrote.
func TestReopenPersists(t *testing.T) {
	withCounters(t)
	dir := t.TempDir()
	s1, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(TierResult, "persist", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, ok := s2.Get(TierResult, "persist"); !ok || string(got) != "payload" {
		t.Fatal("reopened store missed an entry the first handle wrote")
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store indexed %d entries, want 1", s2.Len())
	}
}

// TestStaleManifest pins ErrStale on both stale shapes: a manifest naming
// another schema, and a populated directory with no manifest at all. An
// empty no-manifest directory is a fresh store, not an error.
func TestStaleManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte(`{"schema_version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 1<<20); !errors.Is(err, ErrStale) {
		t.Fatalf("wrong-schema manifest: got %v, want ErrStale", err)
	}

	dir2 := t.TempDir()
	s, err := Open(dir2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(TierTrace, "x", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir2, manifestFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir2, 1<<20); !errors.Is(err, ErrStale) {
		t.Fatalf("populated dir without manifest: got %v, want ErrStale", err)
	}

	if _, err := Open(t.TempDir(), 1<<20); err != nil {
		t.Fatalf("fresh empty dir: %v", err)
	}
}

// TestTraceKeySensitivity pins that every TraceIdentity field reaches the
// key: flipping any one field must change it.
func TestTraceKeySensitivity(t *testing.T) {
	base := TraceIdentity{
		EmuVersion: "emu-v1", Cipher: "blowfish", Feat: "rot",
		ProgDigest: "00112233aabbccdd", Session: 4096, Seed: 12345, Mode: "encrypt",
	}
	mutants := map[string]TraceIdentity{
		"EmuVersion": func(i TraceIdentity) TraceIdentity { i.EmuVersion = "emu-v2"; return i }(base),
		"Cipher":     func(i TraceIdentity) TraceIdentity { i.Cipher = "rc4"; return i }(base),
		"Feat":       func(i TraceIdentity) TraceIdentity { i.Feat = "opt"; return i }(base),
		"ProgDigest": func(i TraceIdentity) TraceIdentity { i.ProgDigest = "ffffffffffffffff"; return i }(base),
		"Session":    func(i TraceIdentity) TraceIdentity { i.Session = 1024; return i }(base),
		"Seed":       func(i TraceIdentity) TraceIdentity { i.Seed = 54321; return i }(base),
		"Mode":       func(i TraceIdentity) TraceIdentity { i.Mode = "decrypt"; return i }(base),
	}
	for field, m := range mutants {
		if m.Key() == base.Key() {
			t.Errorf("changing %s did not change the trace key", field)
		}
	}
	if base.Key() != base.Key() {
		t.Error("key derivation is not deterministic")
	}
	if len(base.Key()) != 16 || strings.ToLower(base.Key()) != base.Key() {
		t.Errorf("key %q is not 16 lowercase hex digits", base.Key())
	}
}

// TestResultKeySensitivity does the same for ResultIdentity — in
// particular the engine version and the config rendering, the two fields
// the invalidation story leans on hardest.
func TestResultKeySensitivity(t *testing.T) {
	base := ResultIdentity{
		EngineVersion: "ooo-v1", EmuVersion: "emu-v1", Kind: "kernel",
		Cipher: "blowfish", Feat: "rot", ProgDigest: "00112233aabbccdd",
		Session: 4096, Seed: 12345, Config: "{Name:4W IssueWidth:4}",
	}
	mutants := map[string]ResultIdentity{
		"EngineVersion": func(i ResultIdentity) ResultIdentity { i.EngineVersion = "ooo-v2"; return i }(base),
		"EmuVersion":    func(i ResultIdentity) ResultIdentity { i.EmuVersion = "emu-v2"; return i }(base),
		"Kind":          func(i ResultIdentity) ResultIdentity { i.Kind = "decrypt"; return i }(base),
		"Cipher":        func(i ResultIdentity) ResultIdentity { i.Cipher = "idea"; return i }(base),
		"Feat":          func(i ResultIdentity) ResultIdentity { i.Feat = "norot"; return i }(base),
		"ProgDigest":    func(i ResultIdentity) ResultIdentity { i.ProgDigest = "ffffffffffffffff"; return i }(base),
		"Session":       func(i ResultIdentity) ResultIdentity { i.Session = 65536; return i }(base),
		"Seed":          func(i ResultIdentity) ResultIdentity { i.Seed = 99; return i }(base),
		"Config":        func(i ResultIdentity) ResultIdentity { i.Config = "{Name:4W IssueWidth:8}"; return i }(base),
	}
	for field, m := range mutants {
		if m.Key() == base.Key() {
			t.Errorf("changing %s did not change the result key", field)
		}
	}
	// The two tiers can never collide even on identical field values.
	tr := TraceIdentity{EmuVersion: base.EmuVersion, Cipher: base.Cipher, Feat: base.Feat,
		ProgDigest: base.ProgDigest, Session: base.Session, Seed: base.Seed, Mode: base.Kind}
	if tr.Key() == base.Key() {
		t.Error("trace and result keys collided on identical fields")
	}
}

// TestProgramDigestSensitivity pins that a kernel edit — any instruction
// field or a rodata byte — changes the program digest, which is what makes
// "kernel bytes changed" provably miss.
func TestProgramDigestSensitivity(t *testing.T) {
	mk := func() *isa.Program {
		return &isa.Program{
			Name: "p",
			Code: []isa.Inst{
				{Op: 1, Ra: 2, Rb: 3, Rc: 4, Lit: 99, UseLit: true, Sel1: 1, Sel2: 2, Class: 3},
				{Op: 5, Ra: 6, Rb: 7, Rc: 8},
			},
			Rodata: []byte{0xde, 0xad, 0xbe, 0xef},
		}
	}
	base := ProgramDigest(mk())
	if ProgramDigest(mk()) != base {
		t.Fatal("digest not deterministic")
	}
	edits := map[string]func(*isa.Program){
		"Op":      func(p *isa.Program) { p.Code[0].Op++ },
		"Ra":      func(p *isa.Program) { p.Code[0].Ra++ },
		"Rb":      func(p *isa.Program) { p.Code[0].Rb++ },
		"Rc":      func(p *isa.Program) { p.Code[0].Rc++ },
		"Lit":     func(p *isa.Program) { p.Code[0].Lit++ },
		"UseLit":  func(p *isa.Program) { p.Code[0].UseLit = false },
		"Aliased": func(p *isa.Program) { p.Code[1].Aliased = true },
		"Sel1":    func(p *isa.Program) { p.Code[0].Sel1++ },
		"Sel2":    func(p *isa.Program) { p.Code[0].Sel2++ },
		"Class":   func(p *isa.Program) { p.Code[0].Class++ },
		"Rodata":  func(p *isa.Program) { p.Rodata[2] ^= 1 },
		"AddInst": func(p *isa.Program) { p.Code = append(p.Code, isa.Inst{}) },
		"DropRod": func(p *isa.Program) { p.Rodata = p.Rodata[:3] },
	}
	for name, edit := range edits {
		p := mk()
		edit(p)
		if ProgramDigest(p) == base {
			t.Errorf("editing %s did not change the program digest", name)
		}
	}
	// Debug metadata is excluded deliberately.
	p := mk()
	p.Name = "renamed"
	if ProgramDigest(p) != base {
		t.Error("program name changed the digest (it is debug metadata)")
	}
}
