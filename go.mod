module cryptoarch

go 1.22
