// Package cryptoarch is the public API of this reproduction of
// "Architectural Support for Fast Symmetric-Key Cryptography"
// (Burke, McDonald, Austin; ASPLOS 2000).
//
// It exposes three layers:
//
//   - the cipher library: from-scratch implementations of the paper's
//     eight symmetric ciphers with CBC chaining (NewCipher, Encrypt...);
//   - the AXP64 toolchain: an Alpha-like ISA with the paper's
//     cryptographic extensions, an assembler builder, a functional
//     emulator, and hand-written cipher kernels (Kernel, RunKernel);
//   - the microarchitecture laboratory: the cycle-level out-of-order
//     timing model with the paper's machine configurations
//     (Time, Machines) and bottleneck-analysis knobs.
//
// The experiment drivers under cmd/ regenerate every table and figure of
// the paper from these pieces; see DESIGN.md and EXPERIMENTS.md.
package cryptoarch

import (
	"fmt"

	"cryptoarch/internal/ciphers"
	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// Block is a keyed block cipher; Stream is a keyed stream cipher (RC4).
type (
	Block  = ciphers.Block
	Stream = ciphers.Stream
)

// CipherNames returns the eight supported cipher names:
// 3des, blowfish, idea, mars, rc4, rc6, rijndael, twofish.
func CipherNames() []string { return ciphers.Names() }

// CipherInfo describes a cipher's paper configuration (Table 1).
type CipherInfo struct {
	Name      string
	KeyBits   int
	BlockBits int
	Rounds    int
	Stream    bool
	KeyBytes  int
}

// Info returns the Table 1 configuration of a cipher.
func Info(name string) (CipherInfo, error) {
	c, err := ciphers.Lookup(name)
	if err != nil {
		return CipherInfo{}, err
	}
	return CipherInfo{
		Name:      c.Info.Name,
		KeyBits:   c.Info.KeyBits,
		BlockBits: c.Info.BlockBits,
		Rounds:    c.Info.Rounds,
		Stream:    c.Info.Stream,
		KeyBytes:  c.KeyBytes(),
	}, nil
}

// NewCipher returns a keyed block cipher by name. RC4 is a stream cipher;
// use NewStream for it.
func NewCipher(name string, key []byte) (Block, error) {
	c, err := ciphers.Lookup(name)
	if err != nil {
		return nil, err
	}
	if c.Info.Stream {
		return nil, fmt.Errorf("cryptoarch: %s is a stream cipher; use NewStream", name)
	}
	return c.NewBlock(key)
}

// NewStream returns a keyed stream cipher by name (rc4).
func NewStream(name string, key []byte) (Stream, error) {
	c, err := ciphers.Lookup(name)
	if err != nil {
		return nil, err
	}
	if !c.Info.Stream {
		return nil, fmt.Errorf("cryptoarch: %s is a block cipher; use NewCipher", name)
	}
	return c.NewStream(key)
}

// EncryptCBC encrypts src in chaining-block-cipher mode, updating iv in
// place so sessions can continue across calls. DecryptCBC reverses it.
func EncryptCBC(b Block, iv, dst, src []byte) { ciphers.CBCEncrypt(b, iv, dst, src) }

// DecryptCBC is the inverse of EncryptCBC.
func DecryptCBC(b Block, iv, dst, src []byte) { ciphers.CBCDecrypt(b, iv, dst, src) }

// ISA selects the instruction-set level a kernel is assembled for.
type ISA = isa.Feature

// The paper's three code versions.
var (
	ISABase     = isa.FeatNoRot // baseline without rotate instructions
	ISARotate   = isa.FeatRot   // baseline plus ROL/ROR (normalization target)
	ISAExtended = isa.FeatOpt   // full crypto extensions
)

// Machine is a microarchitecture configuration of the timing model.
type Machine = ooo.Config

// The paper's Table 2 machine models.
var (
	FourWide      = ooo.FourWide      // ~Alpha 21264 baseline
	FourWidePlus  = ooo.FourWidePlus  // + SBox caches, + rotator units
	EightWidePlus = ooo.EightWidePlus // double execution bandwidth
	Dataflow      = ooo.Dataflow      // upper bound
)

// Stats summarizes one timing run.
type Stats = ooo.Stats

// Time encrypts sessionBytes of a deterministic pseudorandom session with
// the named cipher's AXP64 kernel at the given ISA level on a machine
// model, returning cycle-accurate statistics. The kernel output is the
// same ciphertext the golden Go cipher produces (validated in the test
// suite).
func Time(cipher string, level ISA, m Machine, sessionBytes int) (*Stats, error) {
	return harness.TimeKernel(cipher, level, m, sessionBytes, 1)
}

// TimeDecrypt is Time for the decryption direction: golden-encrypted
// ciphertext is unchained by the cipher's AXP64 decryption kernel.
func TimeDecrypt(cipher string, level ISA, m Machine, sessionBytes int) (*Stats, error) {
	return harness.TimeDecrypt(cipher, level, m, sessionBytes, 1)
}

// InstructionCount runs the kernel on the functional emulator alone and
// returns the dynamic instruction count (the paper's 1-CPI machine).
func InstructionCount(cipher string, level ISA, sessionBytes int) (uint64, error) {
	return harness.CountKernel(cipher, level, sessionBytes, 1)
}
