// Command pipestats runs one cipher kernel session on a machine model and
// prints the commit-slot stall attribution: where every one of the run's
// Cycles x IssueWidth commit slots went — retired work, front-end supply,
// branch recovery, issue width, a saturated functional-unit or port pool,
// alias waits, or cache/TLB misses. This is the single-run counterpart of
// the paper's Figure 5 bottleneck study.
//
// It can also emit structured pipeline event traces: -trace writes one
// JSON object per instruction per stage; -konata writes a Kanata-format
// log loadable in the Konata pipeline visualizer.
//
// Usage:
//
//	go run ./cmd/pipestats -cipher rc4 -variant rot -model 4W
//	go run ./cmd/pipestats -cipher all -variant opt -model 8W+ -json
//	go run ./cmd/pipestats -cipher rijndael -variant opt -model 4W+ \
//	    -bytes 512 -trace out.jsonl -konata out.log
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cryptoarch/internal/experiments"
	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

func main() {
	cipher := flag.String("cipher", "rc4", "cipher name, comma-separated list, or \"all\"")
	variant := flag.String("variant", "rot", "kernel variant: norot, rot, opt")
	model := flag.String("model", "4W", "machine model: 4W, 4W+, 8W+, DF, or DF+<bottleneck>")
	sessionBytes := flag.Int("bytes", experiments.SessionBytes, "session length in bytes")
	tracePath := flag.String("trace", "", "write a JSONL pipeline event trace to this file")
	konataPath := flag.String("konata", "", "write a Konata (Kanata-format) pipeline trace to this file")
	asJSON := flag.Bool("json", false, "emit each report as JSON")
	md := flag.Bool("md", false, "emit markdown tables")
	flag.Parse()

	feat, err := isa.ParseFeature(*variant)
	if err != nil {
		fatal(err)
	}
	cfg, err := ooo.ModelByName(*model)
	if err != nil {
		fatal(err)
	}
	suite := []string{*cipher}
	if *cipher == "all" {
		suite = experiments.Ciphers
	} else if strings.Contains(*cipher, ",") {
		suite = strings.Split(*cipher, ",")
	}

	tracing := *tracePath != "" || *konataPath != ""
	if tracing && len(suite) != 1 {
		fatal(fmt.Errorf("tracing interleaves runs: -trace/-konata need exactly one cipher, got %d", len(suite)))
	}
	var obs harness.RunObserver
	var flushers []interface{ Flush() error }
	if tracing {
		var sinks []ooo.Tracer
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			t := ooo.NewJSONLTracer(f)
			sinks, flushers = append(sinks, t), append(flushers, t)
		}
		if *konataPath != "" {
			f, err := os.Create(*konataPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			t := ooo.NewKonataTracer(f)
			sinks, flushers = append(sinks, t), append(flushers, t)
		}
		tr := sinks[0]
		if len(sinks) > 1 {
			tr = ooo.Tee(sinks...)
		}
		obs = harness.TracerObserver(tr)
	}

	for i, name := range suite {
		r, _, err := experiments.PipeStats(name, feat, cfg, *sessionBytes, obs)
		if err != nil {
			fatal(err)
		}
		if i > 0 && !*asJSON {
			fmt.Println()
		}
		if err := experiments.Emit(os.Stdout, r, *md, *asJSON); err != nil {
			fatal(err)
		}
	}
	for _, f := range flushers {
		if err := f.Flush(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
