// Command simprof runs one cipher×variant×model cell through the timing
// simulator with the per-PC cycle profiler enabled and renders the
// result: an annotated disassembly with a hot-PC table (default), a JSON
// report (-json), folded stacks for flamegraph.pl (-fold), or a gzipped
// pprof protobuf (-pprof FILE) that `go tool pprof` opens like any CPU
// profile. The instruction stream goes through the trace cache, so
// profiling a cell that has already been timed replays for free — and a
// replayed profile is bit-identical to a live one.
//
//	go run ./cmd/simprof -cipher blowfish -opt -model 4w+ -fold | flamegraph.pl > bf.svg
//	go run ./cmd/simprof -cipher rijndael -model 4w -pprof aes.pb.gz && go tool pprof -top aes.pb.gz
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cryptoarch/internal/experiments"
	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
	"cryptoarch/internal/profview"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simprof:", err)
	os.Exit(1)
}

func main() {
	cipher := flag.String("cipher", "blowfish", "cipher kernel to profile (3des, blowfish, idea, mars, rc4, rc6, rijndael, twofish)")
	variant := flag.String("variant", "rot", "ISA variant: norot, rot or opt")
	norot := flag.Bool("norot", false, "shorthand for -variant norot")
	rot := flag.Bool("rot", false, "shorthand for -variant rot")
	opt := flag.Bool("opt", false, "shorthand for -variant opt")
	model := flag.String("model", "4W", "machine model: 4W, 4W+, 8W+, DF or DF+<bottleneck> (case-insensitive)")
	bytes := flag.Int("bytes", experiments.SessionBytes, "session length in bytes")
	seed := flag.Int64("seed", experiments.DefaultSeed, "workload seed")
	top := flag.Int("top", 10, "hot PCs listed in the text and JSON views")
	asJSON := flag.Bool("json", false, "emit the profile report as JSON")
	fold := flag.Bool("fold", false, "emit folded stacks (pipe into flamegraph.pl)")
	pprofOut := flag.String("pprof", "", "write a gzipped pprof profile to this file")
	flag.Parse()

	switch {
	case *norot:
		*variant = "norot"
	case *rot:
		*variant = "rot"
	case *opt:
		*variant = "opt"
	}
	feat, err := isa.ParseFeature(*variant)
	if err != nil {
		fail(err)
	}
	cfg, err := ooo.ModelByNameFold(*model)
	if err != nil {
		fail(err)
	}

	pr, err := harness.ProfileKernel(*cipher, feat, cfg, *bytes, *seed)
	if err != nil {
		fail(err)
	}
	src := &profview.Source{
		Root:  fmt.Sprintf("%s/%s/%s", *cipher, feat, cfg.Name),
		Prog:  pr.Prog,
		Prof:  pr.Profile,
		Stats: pr.Stats,
	}

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fail(err)
		}
		if err := profview.WritePprof(f, src); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "wrote", *pprofOut)
		if *asJSON || *fold {
			// fall through to also emit the requested stdout view
		} else {
			return
		}
	}
	switch {
	case *fold:
		profview.Folded(os.Stdout, src)
	case *asJSON:
		b, err := json.MarshalIndent(profview.BuildReport(src, *top), "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Println(string(b))
	default:
		profview.Text(os.Stdout, src, *top)
	}
}
