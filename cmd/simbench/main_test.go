package main

import (
	"runtime"
	"testing"

	"cryptoarch/internal/metrics"
	"cryptoarch/internal/ooo"
)

// ledgerWith appends n records with the given per-model sim-MIPS values
// (allocs/bytes held constant) to a fresh ledger in a temp dir and
// returns the dir.
func ledgerWith(t *testing.T, mips ...float64) string {
	t.Helper()
	dir := t.TempDir()
	l, err := metrics.OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range mips {
		rec := metrics.LedgerRecord{
			TimeUnix:      1,
			GoVersion:     runtime.Version(),
			GOMAXPROCS:    runtime.GOMAXPROCS(0),
			Workload:      "test workload",
			Config:        benchConfigID,
			EngineVersion: ooo.EngineVersion,
			Models: []metrics.LedgerModel{
				{Model: "4W", SimMIPS: v, AllocsPerRun: 1000, BytesPerRun: 400000},
			},
		}
		if err := l.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestHistoryFlagsInjectedRegression pins the acceptance gate: a ledger
// whose newest record shows a large sim-MIPS drop makes -history exit
// non-zero, while a steady history passes.
func TestHistoryFlagsInjectedRegression(t *testing.T) {
	if code := runHistory(ledgerWith(t, 8.0, 8.2, 7.9, 3.0), 5, 0.30); code == 0 {
		t.Fatal("runHistory returned 0 on a 60% sim-MIPS regression, want non-zero")
	}
	if code := runHistory(ledgerWith(t, 8.0, 8.2, 7.9, 8.1), 5, 0.30); code != 0 {
		t.Fatalf("runHistory returned %d on a steady history, want 0", code)
	}
}

// TestHistoryEmptyLedger pins that -history on a missing or empty ledger
// is an error (there is nothing to compare), not a silent pass.
func TestHistoryEmptyLedger(t *testing.T) {
	if code := runHistory(t.TempDir(), 5, 0.30); code == 0 {
		t.Fatal("runHistory returned 0 on an empty ledger, want non-zero")
	}
}

// TestHistoryDFNotGated pins the DF exclusion: the infinite-window model
// is reported but never fails the gate, matching checkBaseline.
func TestHistoryDFNotGated(t *testing.T) {
	dir := t.TempDir()
	l, err := metrics.OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{9.0, 9.1, 2.0} { // DF regresses, 4W steady
		rec := metrics.LedgerRecord{
			TimeUnix:      1,
			GoVersion:     runtime.Version(),
			GOMAXPROCS:    runtime.GOMAXPROCS(0),
			Workload:      "test workload",
			Config:        benchConfigID,
			EngineVersion: ooo.EngineVersion,
			Models: []metrics.LedgerModel{
				{Model: "4W", SimMIPS: 8.0, AllocsPerRun: 1000, BytesPerRun: 400000},
				{Model: "DF", SimMIPS: v, AllocsPerRun: 1700, BytesPerRun: 700000},
			},
		}
		if err := l.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if code := runHistory(dir, 5, 0.30); code != 0 {
		t.Fatalf("runHistory returned %d on a DF-only regression, want 0 (DF is not gated)", code)
	}
}
