// Command simbench measures the simulator's own speed — simulated MIPS
// per machine model, steady-state allocation rate, trace record/replay
// cost, persistent-store cold vs warm trace acquisition, time-parallel
// chunked replay and interval sampling (speed and accuracy vs the serial
// golden run), and the serial vs parallel wall time of the full
// experiment sweep — and writes the result as machine-readable JSON
// (BENCH_PR8.json by default) so performance trajectories can be compared
// across commits.
// Every run also appends one record to a persistent ledger
// (.simledger/ledger.jsonl); -history reads the ledger back, compares the
// newest run against a rolling baseline of earlier comparable runs, and
// exits non-zero on a regression. With -check it also compares the fresh
// measurement against a committed baseline file and fails on a large
// regression.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cryptoarch/internal/experiments"
	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/metrics"
	"cryptoarch/internal/ooo"
	"cryptoarch/internal/store"
)

// benchWorkload is the fixed measurement target (the bench_test.go
// workload): blowfish, rotate ISA, 4KB CBC session.
const (
	benchCipher  = "blowfish"
	benchSession = 4096
)

// resultSchemaVersion stamps the simbench JSON output; bump on field
// renames or meaning changes. Version 2 added ipc and stall_shares to the
// per-model block (the simulated workload's shape, so regressions can be
// attributed, not just detected).
const resultSchemaVersion = 2

// benchConfigID names the benchmark procedure in the ledger key: what was
// measured and how. Bump it if the measured model set or methodology
// changes, so old ledger records stop being compared against new ones.
const benchConfigID = "replay-bench 4W,4W+,8W+,DF"

// modelBench is one model's simulation-speed measurement. SecPerRun (and
// the derived SimMIPS) time a warm-trace-cache run — the cost every model
// after the first pays per cell — keeping the PR2 field names; the
// one-time functional-recording cost is reported separately at the top
// level as trace_record_seconds.
type modelBench struct {
	Model        string  `json:"model"`
	Instructions uint64  `json:"simulated_instructions"`
	Cycles       uint64  `json:"simulated_cycles"`
	SecPerRun    float64 `json:"seconds_per_run"`
	SimMIPS      float64 `json:"simulated_mips"`
	AllocsPerRun int64   `json:"allocs_per_run"`
	BytesPerRun  int64   `json:"bytes_per_run"`
	// IPC and StallShares describe the simulated workload itself (from the
	// warm-up run's commit-slot accounting); shares are absent on models
	// with no slot budget (DF).
	IPC         float64            `json:"ipc,omitempty"`
	StallShares map[string]float64 `json:"stall_shares,omitempty"`
}

type result struct {
	SchemaVersion      int          `json:"schema_version"`
	GoVersion          string       `json:"go_version"`
	GOMAXPROCS         int          `json:"gomaxprocs"`
	Workload           string       `json:"workload"`
	EngineVersion      string       `json:"engine_version"`
	LedgerKey          string       `json:"ledger_key,omitempty"`
	TraceRecordSeconds float64      `json:"trace_record_seconds"`
	Models             []modelBench `json:"models"`
	// ChunkedBench/SampledBench measure the approximate replay modes
	// against the serial models above (same workload, same trace).
	ChunkedBench []chunkBench  `json:"chunked_bench,omitempty"`
	SampledBench []sampleBench `json:"sampled_bench,omitempty"`
	// StoreBench measures the persistent store's trace tier: cold
	// (record + write-through persist) vs warm (fault-in from disk)
	// acquisition of the bench trace.
	StoreBench *storeBench `json:"store_bench,omitempty"`
	// TraceCache snapshots the harness cache counters after the per-model
	// benchmark loop: hit/miss traffic of the replay path under test.
	TraceCache           harness.TraceCacheStats `json:"trace_cache"`
	SweepCells           int                     `json:"sweep_cells"`
	SweepSerialSeconds   float64                 `json:"sweep_serial_seconds"`
	SweepParallelSeconds float64                 `json:"sweep_parallel_seconds"`
	SweepWorkers         int                     `json:"sweep_workers"`
	// Metrics snapshots the process telemetry registry (sweep scheduler,
	// trace cache, engine run totals, Go runtime) at exit.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// benchRecord times the one-off functional recording of the bench
// workload's trace (averaged over a few cold recordings).
func benchRecord() (float64, error) {
	const rounds = 5
	var total time.Duration
	for i := 0; i < rounds; i++ {
		harness.ResetTraceCache()
		if _, _, err := harness.StreamKernel(benchCipher, isa.FeatRot, benchSession, experiments.DefaultSeed); err != nil {
			return 0, err
		}
		total += harness.ReadTraceCacheStats().RecordTime
	}
	harness.ResetTraceCache()
	return total.Seconds() / rounds, nil
}

func benchModel(cfg ooo.Config) (modelBench, error) {
	// Warm the trace cache so the loop below measures pure replay+engine.
	st, err := harness.TimeKernel(benchCipher, isa.FeatRot, cfg, benchSession, experiments.DefaultSeed)
	if err != nil {
		return modelBench{}, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := harness.TimeKernel(benchCipher, isa.FeatRot, cfg, benchSession, experiments.DefaultSeed); err != nil {
				b.Fatal(err)
			}
		}
	})
	sec := r.T.Seconds() / float64(r.N)
	mb := modelBench{
		Model:        cfg.Name,
		Instructions: st.Instructions,
		Cycles:       st.Cycles,
		SecPerRun:    sec,
		SimMIPS:      float64(st.Instructions) / sec / 1e6,
		AllocsPerRun: r.AllocsPerOp(),
		BytesPerRun:  r.AllocedBytesPerOp(),
		StallShares:  st.Stalls.Shares(),
	}
	if st.Cycles > 0 {
		mb.IPC = float64(st.Instructions) / float64(st.Cycles)
	}
	return mb, nil
}

// chunkBench is one model's time-parallel chunked-replay measurement:
// wall speed at an explicit worker override, plus the accuracy of the
// stitched cycle count against the serial golden run. On a single-CPU
// host the workers serialize and SpeedupVsSerial hovers near (or below)
// 1; the field is honest wall clock, not an extrapolation.
type chunkBench struct {
	Model           string  `json:"model"`
	Chunks          int     `json:"chunks"`
	Workers         int     `json:"workers"`
	Instructions    uint64  `json:"simulated_instructions"`
	SecPerRun       float64 `json:"seconds_per_run"`
	SimMIPS         float64 `json:"simulated_mips"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// IdealSpeedup is the simulated-work ratio serial/slowest-chunk — the
	// wall-clock speedup the same run reaches once every chunk worker has
	// its own core.
	IdealSpeedup   float64 `json:"ideal_speedup"`
	CycleRelErr    float64 `json:"cycle_rel_err"`
	DiscardedInsts uint64  `json:"discarded_insts"`
}

// sampleBench is one model's interval-sampling measurement. SimMIPS rates
// the instructions actually simulated (measured windows plus warmup);
// EffectiveSimMIPS rates the instructions the extrapolation represents —
// the throughput a sweep cell experiences.
type sampleBench struct {
	Model            string  `json:"model"`
	Intervals        int     `json:"intervals"`
	IntervalInsts    int     `json:"interval_insts"`
	WarmupInsts      int     `json:"warmup_insts"`
	Coverage         float64 `json:"coverage"`
	SecPerRun        float64 `json:"seconds_per_run"`
	SimMIPS          float64 `json:"simulated_mips"`
	EffectiveSimMIPS float64 `json:"effective_simulated_mips"`
	SpeedupVsSerial  float64 `json:"speedup_vs_serial"`
	CycleRelErr      float64 `json:"cycle_rel_err"`
	ReportedErrBound float64 `json:"reported_err_bound"`
}

func relErr(got, want uint64) float64 {
	d := float64(got) - float64(want)
	if d < 0 {
		d = -d
	}
	return d / float64(want)
}

// benchChunked measures chunked replay for one model against its serial
// measurement (which also warmed the trace cache).
func benchChunked(cfg ooo.Config, serial modelBench, chunks, workers int) (chunkBench, error) {
	opt := harness.ChunkOptions{Chunks: chunks, Workers: workers}
	st, rep, err := harness.TimeKernelChunked(benchCipher, isa.FeatRot, cfg, benchSession, experiments.DefaultSeed, opt)
	if err != nil {
		return chunkBench{}, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := harness.TimeKernelChunked(benchCipher, isa.FeatRot, cfg, benchSession, experiments.DefaultSeed, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	sec := r.T.Seconds() / float64(r.N)
	slowestChunk := st.Instructions/uint64(rep.Chunks) + uint64(rep.WarmupInsts)
	return chunkBench{
		Model:           cfg.Name,
		Chunks:          rep.Chunks,
		Workers:         rep.Workers,
		Instructions:    st.Instructions,
		SecPerRun:       sec,
		SimMIPS:         float64(st.Instructions) / sec / 1e6,
		SpeedupVsSerial: serial.SecPerRun / sec,
		IdealSpeedup:    float64(st.Instructions) / float64(slowestChunk),
		CycleRelErr:     relErr(st.Cycles, serial.Cycles),
		DiscardedInsts:  rep.DiscardedInsts,
	}, nil
}

// benchSampled measures interval sampling for one model against its
// serial measurement.
func benchSampled(cfg ooo.Config, serial modelBench, intervals int) (sampleBench, error) {
	// L=4096 keeps the per-window drain bias (the dominant error term, ~1/L)
	// a few percent; K=4 of them cover ~9% of the bench session.
	opt := harness.SampleOptions{Intervals: intervals, IntervalInsts: 4096, WarmupInsts: 2048}
	st, rep, err := harness.TimeKernelSampled(benchCipher, isa.FeatRot, cfg, benchSession, experiments.DefaultSeed, opt)
	if err != nil {
		return sampleBench{}, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := harness.TimeKernelSampled(benchCipher, isa.FeatRot, cfg, benchSession, experiments.DefaultSeed, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	sec := r.T.Seconds() / float64(r.N)
	simulated := rep.SampledInsts + uint64(rep.Intervals*rep.WarmupInsts)
	return sampleBench{
		Model:            cfg.Name,
		Intervals:        rep.Intervals,
		IntervalInsts:    rep.IntervalInsts,
		WarmupInsts:      rep.WarmupInsts,
		Coverage:         rep.Coverage,
		SecPerRun:        sec,
		SimMIPS:          float64(simulated) / sec / 1e6,
		EffectiveSimMIPS: float64(rep.TotalInsts) / sec / 1e6,
		SpeedupVsSerial:  serial.SecPerRun / sec,
		CycleRelErr:      relErr(st.Cycles, serial.Cycles),
		ReportedErrBound: rep.RelErrBound,
	}, nil
}

// storeBench is the persistent-store trace-tier measurement: per-round, a
// fresh store directory is populated cold (functional recording +
// write-through persist), the in-memory cache is dropped, and the same
// trace is acquired warm (disk fault-in: read + checksum + decode +
// validate). The cold/warm ratio is the incremental-sweep payoff per
// trace.
type storeBench struct {
	ColdSeconds float64 `json:"store_cold_seconds"`
	WarmSeconds float64 `json:"store_warm_seconds"`
	Speedup     float64 `json:"speedup_cold_over_warm"`
	// Stats snapshots the store counters of the final warm round (one
	// trace hit, zero misses, if the store behaved).
	Stats store.Stats `json:"stats"`
}

// benchStore runs the store cold/warm measurement in throwaway temp
// directories; the process-wide store installed by -store-dir (if any) is
// restored afterwards.
func benchStore() (*storeBench, error) {
	const rounds = 5
	prev := harness.CurrentStore()
	defer func() {
		harness.SetStore(prev)
		harness.ResetTraceCache()
	}()
	var cold, warm time.Duration
	var stats store.Stats
	for i := 0; i < rounds; i++ {
		dir, err := os.MkdirTemp("", "simstore-bench-*")
		if err != nil {
			return nil, err
		}
		s, err := store.Open(dir, 1<<30)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		harness.SetStore(s)
		harness.ResetTraceCache()
		start := time.Now()
		if _, _, err := harness.StreamKernel(benchCipher, isa.FeatRot, benchSession, experiments.DefaultSeed); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		cold += time.Since(start)
		harness.ResetTraceCache() // drop memory, keep disk
		start = time.Now()
		if _, _, err := harness.StreamKernel(benchCipher, isa.FeatRot, benchSession, experiments.DefaultSeed); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		warm += time.Since(start)
		stats = store.ReadStats()
		os.RemoveAll(dir)
	}
	sb := &storeBench{
		ColdSeconds: cold.Seconds() / rounds,
		WarmSeconds: warm.Seconds() / rounds,
		Stats:       stats,
	}
	if sb.WarmSeconds > 0 {
		sb.Speedup = sb.ColdSeconds / sb.WarmSeconds
	}
	return sb, nil
}

func timedSweep(ctx context.Context, workers int) (float64, *experiments.SweepOutcome) {
	experiments.ResetCache() // drops cell results and recorded traces
	prev := experiments.SetParallelism(workers)
	defer experiments.SetParallelism(prev)
	runtime.GC() // level the heap between passes so the second isn't charged the first's garbage
	start := time.Now()
	out := experiments.SweepObservedCtx(ctx, experiments.AllCells(), nil)
	return time.Since(start).Seconds(), out
}

// attributionLines renders the per-cause stall-share movement between two
// measurements of the same model — the differential view of *what the
// simulated workload was doing* on each side of a regression — or the
// honest reason no attribution is available (pre-v2 records carry no
// shares; fabricating a breakdown would be worse than silence).
func attributionLines(base, next map[string]float64) []string {
	deltas := metrics.AttributeShares(base, next)
	if deltas == nil {
		return []string{"    no stall shares recorded on one side (pre-v2 record) — re-run to capture attribution"}
	}
	var lines []string
	for _, d := range deltas {
		if d.Delta == 0 {
			continue
		}
		lines = append(lines, fmt.Sprintf("    %-9s %5.1f%% → %5.1f%%  (%+.1f pts of slot budget)",
			d.Cause, 100*d.Base, 100*d.Next, 100*d.Delta))
	}
	if len(lines) == 0 {
		return []string{"    stall shares identical — the workload's shape is unchanged; the slowdown is simulator overhead"}
	}
	return lines
}

// checkBaseline compares fresh finite-model sim-MIPS against a committed
// baseline file and reports every model that dropped below half, with the
// per-cause stall-share attribution for each regressing model (which
// bottleneck grew between the two measurements) rather than a bare ratio.
func checkBaseline(fresh []modelBench, path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base result
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	baseModels := map[string]modelBench{}
	for _, m := range base.Models {
		baseModels[m.Model] = m
	}
	var bad []string
	for _, m := range fresh {
		if m.Model == "DF" {
			continue // infinite-window model: not part of the smoke gate
		}
		want, ok := baseModels[m.Model]
		if !ok || want.SimMIPS <= 0 {
			continue
		}
		if m.SimMIPS < 0.5*want.SimMIPS {
			bad = append(bad, fmt.Sprintf("%s: %.2f sim-MIPS < 50%% of baseline %.2f — stall-share attribution:", m.Model, m.SimMIPS, want.SimMIPS))
			bad = append(bad, attributionLines(want.StallShares, m.StallShares)...)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("bench regression vs %s:\n  %s", path, strings.Join(bad, "\n  "))
	}
	return nil
}

// checkAccuracy gates the approximate replay modes on the accuracy they
// just measured against the serial golden run: chunked stitched cycles
// within 5%, sampled extrapolated cycles within 15%. These are the same
// bounds the harness tests enforce; failing here means the modes drifted
// on the real bench workload.
func checkAccuracy(chunked []chunkBench, sampled []sampleBench) error {
	var bad []string
	for _, c := range chunked {
		if c.CycleRelErr > 0.05 {
			bad = append(bad, fmt.Sprintf("chunked %s: cycle error %.4f > 0.05", c.Model, c.CycleRelErr))
		}
	}
	for _, s := range sampled {
		if s.CycleRelErr > 0.15 {
			bad = append(bad, fmt.Sprintf("sampled %s: cycle error %.4f > 0.15", s.Model, s.CycleRelErr))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("approximate-mode accuracy gate failed:\n  %v", bad)
	}
	return nil
}

// printTrends renders the trend table and returns the gated models that
// regressed (deduplicated, in table order), so the caller can attribute
// each one. DF (the infinite-window model) is excluded from gating like
// everywhere else in the repo's perf tripwires, but still printed.
func printTrends(trends []metrics.Trend) (regressed []string) {
	seen := map[string]bool{}
	fmt.Fprintf(os.Stderr, "%-4s %-11s %12s %12s %8s %s\n", "model", "metric", "baseline", "latest", "change", "verdict")
	for _, t := range trends {
		if t.Samples == 0 {
			fmt.Fprintf(os.Stderr, "%-4s %-11s %12s %12.2f %8s no history yet\n", t.Model, t.Metric, "-", t.Latest, "-")
			continue
		}
		verdict := "ok"
		if t.Regressed {
			verdict = "REGRESSED"
			if t.Model != "DF" {
				if !seen[t.Model] {
					seen[t.Model] = true
					regressed = append(regressed, t.Model)
				}
			} else {
				verdict = "REGRESSED (DF: not gated)"
			}
		}
		fmt.Fprintf(os.Stderr, "%-4s %-11s %12.2f %12.2f %+7.1f%% %s (%d samples)\n",
			t.Model, t.Metric, t.Baseline, t.Latest, 100*t.Change, verdict, t.Samples)
	}
	return regressed
}

// ledgerShares finds one model's stall-share map within a ledger record
// (nil when the model is absent or the record predates shares).
func ledgerShares(rec metrics.LedgerRecord, model string) map[string]float64 {
	for _, m := range rec.Models {
		if m.Model == model {
			return m.StallShares
		}
	}
	return nil
}

// printHistoryAttribution explains each regressed model of the newest
// ledger record against the most recent earlier comparable (same-key)
// record: per-cause stall-share deltas, so a -history trip names the
// bottleneck that moved instead of leaving a bare ratio.
func printHistoryAttribution(recs []metrics.LedgerRecord, regressed []string) {
	latest := recs[len(recs)-1]
	var prev *metrics.LedgerRecord
	for i := len(recs) - 2; i >= 0; i-- {
		if recs[i].Key == latest.Key {
			prev = &recs[i]
			break
		}
	}
	for _, model := range regressed {
		fmt.Fprintf(os.Stderr, "attribution %s (vs previous comparable record):\n", model)
		if prev == nil {
			fmt.Fprintln(os.Stderr, "    no earlier comparable record to attribute against")
			continue
		}
		for _, line := range attributionLines(ledgerShares(*prev, model), ledgerShares(latest, model)) {
			fmt.Fprintln(os.Stderr, line)
		}
	}
}

// runHistory implements -history: compare the newest ledger record
// against the rolling baseline of earlier comparable records. Exits via
// return code: 0 clean, 1 regression or unusable ledger.
func runHistory(dir string, window int, tol float64) int {
	l, err := metrics.OpenLedger(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		return 1
	}
	recs, skipped, err := l.Read()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		return 1
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "simbench: skipped %d corrupted ledger line(s) in %s\n", skipped, l.Path())
	}
	if len(recs) == 0 {
		fmt.Fprintf(os.Stderr, "simbench: %s is empty — run simbench first to record history\n", l.Path())
		return 1
	}
	latest := recs[len(recs)-1]
	fmt.Fprintf(os.Stderr, "ledger %s: %d record(s); latest key %s (%s, %s)\n",
		l.Path(), len(recs), latest.Key, latest.GoVersion, latest.EngineVersion)
	if regressed := printTrends(metrics.Trends(recs, window, tol)); len(regressed) > 0 {
		printHistoryAttribution(recs, regressed)
		fmt.Fprintln(os.Stderr, "simbench: performance regressed vs rolling baseline")
		return 1
	}
	return 0
}

func main() { os.Exit(run()) }

func run() int {
	out := flag.String("o", "BENCH_PR8.json", "output file (\"-\" for stdout)")
	skipSweep := flag.Bool("nosweep", false, "skip the full-suite sweep timing (much faster)")
	chunks := flag.Int("chunks", 8, "chunk count for the chunked-replay benchmark (0 disables)")
	chunkWorkers := flag.Int("chunkworkers", 8, "explicit worker override for the chunked-replay benchmark")
	sample := flag.Int("sample", 4, "interval count for the sampling benchmark (0 disables)")
	storeDir := flag.String("store-dir", "", "install a persistent store for the whole run (\"\" = none; the store micro-benchmark uses its own temp stores either way)")
	storeBudget := flag.Int64("store-budget", 2<<30, "persistent store byte budget (LRU-evicted)")
	noStore := flag.Bool("no-store", false, "skip the store cold/warm micro-benchmark and ignore -store-dir")
	traceBudget := flag.Int("trace-budget", 0, "in-memory trace-cache byte budget (0 = keep the default, 192 MiB)")
	check := flag.String("check", "", "baseline JSON to compare against; exit non-zero if finite-model sim-MIPS drops below 50%")
	ledgerDir := flag.String("ledger", ".simledger", "run-ledger directory (\"\" disables the ledger)")
	history := flag.Bool("history", false, "don't benchmark; compare the newest ledger record against its rolling baseline and exit non-zero on regression")
	window := flag.Int("window", 5, "rolling-baseline window for -history (earlier comparable runs averaged)")
	tol := flag.Float64("tol", 0.30, "relative tolerance for -history (0.30 = flag a >30% move in the bad direction)")
	metricsAddr := flag.String("metrics-addr", "", "serve read-only telemetry over HTTP on this address (e.g. 127.0.0.1:8088; empty = off): /metrics is the live registry snapshot, /progress the current benchmark phase")
	ckptPath := flag.String("checkpoint", "sweep.ckpt", "sweep checkpoint file, written when the sweep phase is interrupted")
	resume := flag.Bool("resume", false, "validate the checkpoint against this grid and tree before benchmarking (with -store-dir, completed sweep cells warm-hit the store)")
	flag.Parse()

	if *history {
		return runHistory(*ledgerDir, *window, *tol)
	}

	harness.SetTraceBudget(*traceBudget)

	// First SIGINT/SIGTERM cancels the run: the current phase winds down at
	// its cooperative boundaries and the process exits 130 through the
	// normal defers (metrics endpoint drained, checkpoint written if the
	// sweep was interrupted). A second signal force-exits 131. No partial
	// benchmark record is ever appended to the ledger: an interrupted
	// measurement would poison the trend baselines.
	ctx, stopSignals := harness.NotifyInterrupt(context.Background(), func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "simbench: %v again — forced exit, skipping cleanup\n", sig)
		os.Exit(harness.ExitForced)
	})
	defer stopSignals()

	// Read-only HTTP observability, off by default: the live metrics
	// registry plus which benchmark phase is running (a full simbench run
	// takes minutes; /progress answers "where is it" without interrupting).
	// The endpoint drains and releases its port on every exit path.
	var phaseMu sync.Mutex
	phaseNow := "startup"
	setPhase := func(p string) {
		phaseMu.Lock()
		phaseNow = p
		phaseMu.Unlock()
	}
	if *metricsAddr != "" {
		msrv, err := metrics.StartMetrics(*metricsAddr, harness.Metrics(), func() any {
			phaseMu.Lock()
			defer phaseMu.Unlock()
			return map[string]string{"phase": phaseNow}
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return harness.ExitError
		}
		fmt.Fprintf(os.Stderr, "metrics: read-only telemetry on http://%s (/metrics, /progress)\n", msrv.Addr())
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			msrv.Shutdown(sctx)
		}()
	}
	if *storeDir != "" && !*noStore {
		s, err := store.Open(*storeDir, *storeBudget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return harness.ExitError
		}
		harness.SetStore(s)
	}

	// -resume: same identity discipline as asplos2000 — the checkpoint must
	// match this grid under this tree, or the flag refuses. The benchmark
	// then runs normally; with a persistent store installed, the sweep
	// phase's completed cells warm-hit it.
	if *resume {
		cp, err := experiments.LoadCheckpoint(*ckptPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: -resume: %v\n", err)
			return harness.ExitUsage
		}
		if err := cp.Matches(experiments.AllCells()); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: -resume: %v\n", err)
			return harness.ExitUsage
		}
		fmt.Fprintf(os.Stderr, "resume: checkpoint %s matches grid (%d done, %d outstanding of %d)\n",
			cp.GridKey, cp.Done, len(cp.Outstanding), cp.Total)
	}

	// interrupted reports (once per phase boundary) whether the run context
	// was cancelled; phases after a cancellation never start.
	interrupted := func() bool { return ctx.Err() != nil }

	res := result{
		SchemaVersion: resultSchemaVersion,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workload:      "blowfish/rot/4096B CBC session, seed 12345",
		EngineVersion: ooo.EngineVersion,
	}
	setPhase("trace-record")
	rec, err := benchRecord()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		return harness.ExitError
	}
	res.TraceRecordSeconds = rec
	fmt.Fprintf(os.Stderr, "trace record %8.1f ms (one-time per cell)\n", 1e3*rec)
	for _, cfg := range []ooo.Config{ooo.FourWide, ooo.FourWidePlus, ooo.EightWidePlus, ooo.Dataflow} {
		if interrupted() {
			break
		}
		setPhase("model " + cfg.Name)
		mb, err := benchModel(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return harness.ExitError
		}
		fmt.Fprintf(os.Stderr, "%-4s %8.1f ms/run (replay)  %6.2f sim-MIPS  %5d allocs/run\n",
			mb.Model, 1e3*mb.SecPerRun, mb.SimMIPS, mb.AllocsPerRun)
		res.Models = append(res.Models, mb)
	}
	for _, cfg := range []ooo.Config{ooo.FourWide, ooo.EightWidePlus} {
		if interrupted() {
			break
		}
		setPhase("approx-modes " + cfg.Name)
		var serial modelBench
		for _, m := range res.Models {
			if m.Model == cfg.Name {
				serial = m
			}
		}
		if *chunks > 1 {
			cb, err := benchChunked(cfg, serial, *chunks, *chunkWorkers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "simbench:", err)
				return harness.ExitError
			}
			fmt.Fprintf(os.Stderr, "%-4s %8.1f ms/run (chunked x%d/%dw)  %6.2f sim-MIPS  %.2fx vs serial  cycle err %.4f\n",
				cb.Model, 1e3*cb.SecPerRun, cb.Chunks, cb.Workers, cb.SimMIPS, cb.SpeedupVsSerial, cb.CycleRelErr)
			res.ChunkedBench = append(res.ChunkedBench, cb)
		}
		if *sample > 1 {
			sb, err := benchSampled(cfg, serial, *sample)
			if err != nil {
				fmt.Fprintln(os.Stderr, "simbench:", err)
				return harness.ExitError
			}
			fmt.Fprintf(os.Stderr, "%-4s %8.1f ms/run (sampled K=%d)  %6.2f eff-MIPS  %.2fx vs serial  cycle err %.4f (bound %.4f)\n",
				sb.Model, 1e3*sb.SecPerRun, sb.Intervals, sb.EffectiveSimMIPS, sb.SpeedupVsSerial, sb.CycleRelErr, sb.ReportedErrBound)
			res.SampledBench = append(res.SampledBench, sb)
		}
	}
	res.TraceCache = harness.ReadTraceCacheStats()
	fmt.Fprintf(os.Stderr, "trace cache: %d hits, %d misses (%d records, %d replays, %d live)\n",
		res.TraceCache.Hits, res.TraceCache.Misses, res.TraceCache.Records,
		res.TraceCache.Replays, res.TraceCache.LiveFallbacks)
	if !*noStore && !interrupted() {
		setPhase("store")
		sb, err := benchStore()
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return harness.ExitError
		}
		fmt.Fprintf(os.Stderr, "store: cold %8.1f ms (record+persist), warm %8.1f ms (fault-in)  %.1fx\n",
			1e3*sb.ColdSeconds, 1e3*sb.WarmSeconds, sb.Speedup)
		res.StoreBench = sb
	}
	if !*skipSweep && !interrupted() {
		res.SweepCells = len(experiments.AllCells())
		res.SweepWorkers = runtime.GOMAXPROCS(0)
		setPhase("sweep serial")
		serialSec, serialOut := timedSweep(ctx, 1)
		res.SweepSerialSeconds = serialSec
		var parallelOut *experiments.SweepOutcome
		if serialOut.Cancelled == nil {
			setPhase("sweep parallel")
			res.SweepParallelSeconds, parallelOut = timedSweep(ctx, res.SweepWorkers)
		}
		experiments.ResetCache()
		// An interrupted sweep phase leaves a checkpoint: the grid identity
		// plus what completed, so a -store-dir run can resume warm.
		for _, out := range []*experiments.SweepOutcome{serialOut, parallelOut} {
			if out != nil && out.Cancelled != nil {
				cp := experiments.NewCheckpoint(experiments.AllCells(), out, "interrupt")
				if err := experiments.WriteCheckpoint(*ckptPath, cp); err != nil {
					fmt.Fprintf(os.Stderr, "simbench: checkpoint: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "checkpoint: wrote %s (%d done of %d)\n", *ckptPath, cp.Done, cp.Total)
				}
				break
			}
		}
		if !interrupted() {
			fmt.Fprintf(os.Stderr, "sweep %d cells: serial %.1fs, %d workers %.1fs\n",
				res.SweepCells, res.SweepSerialSeconds, res.SweepWorkers, res.SweepParallelSeconds)
		}
	}
	// An interrupted run appends nothing and writes nothing: partial
	// measurements must not join the ledger's trend baselines or overwrite
	// a complete result file.
	if interrupted() {
		fmt.Fprintf(os.Stderr, "simbench: interrupted (%v); no result written, no ledger record appended\n", ctx.Err())
		return harness.ExitInterrupt
	}
	setPhase("finalize")
	if *ledgerDir != "" {
		l, err := metrics.OpenLedger(*ledgerDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return harness.ExitError
		}
		rec := metrics.LedgerRecord{
			TimeUnix:      time.Now().Unix(),
			GoVersion:     res.GoVersion,
			GOMAXPROCS:    res.GOMAXPROCS,
			Workload:      res.Workload,
			Config:        benchConfigID,
			EngineVersion: res.EngineVersion,
		}
		for _, m := range res.Models {
			rec.Models = append(rec.Models, metrics.LedgerModel{
				Model: m.Model, SimMIPS: m.SimMIPS,
				AllocsPerRun: m.AllocsPerRun, BytesPerRun: m.BytesPerRun,
				Cycles: m.Cycles, Instructions: m.Instructions,
				IPC: m.IPC, StallShares: m.StallShares,
			})
		}
		// The approximate modes ride the same ledger under derived model
		// names, so -history tracks their trajectories too: chunked by
		// replay throughput, sampled by effective (represented) throughput.
		for _, c := range res.ChunkedBench {
			rec.Models = append(rec.Models, metrics.LedgerModel{
				Model: c.Model + "/c" + fmt.Sprint(c.Chunks), SimMIPS: c.SimMIPS,
			})
		}
		for _, s := range res.SampledBench {
			rec.Models = append(rec.Models, metrics.LedgerModel{
				Model: s.Model + "/s" + fmt.Sprint(s.Intervals), SimMIPS: s.EffectiveSimMIPS,
			})
		}
		if err := l.Append(&rec); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return harness.ExitError
		}
		res.LedgerKey = rec.Key
		fmt.Fprintf(os.Stderr, "ledger: appended key %s to %s\n", rec.Key, l.Path())
	}
	reg := harness.Metrics()
	metrics.SampleRuntime(reg)
	res.Metrics = reg.Snapshot()
	if *check != "" {
		if err := checkBaseline(res.Models, *check); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return harness.ExitError
		}
		if err := checkAccuracy(res.ChunkedBench, res.SampledBench); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return harness.ExitError
		}
		fmt.Fprintln(os.Stderr, "baseline check passed:", *check)
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		return harness.ExitError
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
		return harness.ExitOK
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		return harness.ExitError
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
	return harness.ExitOK
}
