// Command simbench measures the simulator's own speed — simulated MIPS
// per machine model, steady-state allocation rate, and the serial vs
// parallel wall time of the full experiment sweep — and writes the result
// as machine-readable JSON (BENCH_PR2.json by default) so performance
// trajectories can be compared across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"cryptoarch/internal/experiments"
	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

// modelBench is one model's simulation-speed measurement: a fixed
// blowfish 4KB CBC session (the bench_test.go workload) timed end to end.
type modelBench struct {
	Model        string  `json:"model"`
	Instructions uint64  `json:"simulated_instructions"`
	Cycles       uint64  `json:"simulated_cycles"`
	SecPerRun    float64 `json:"seconds_per_run"`
	SimMIPS      float64 `json:"simulated_mips"`
	AllocsPerRun int64   `json:"allocs_per_run"`
	BytesPerRun  int64   `json:"bytes_per_run"`
}

type result struct {
	GoVersion            string       `json:"go_version"`
	GOMAXPROCS           int          `json:"gomaxprocs"`
	Workload             string       `json:"workload"`
	Models               []modelBench `json:"models"`
	SweepCells           int          `json:"sweep_cells"`
	SweepSerialSeconds   float64      `json:"sweep_serial_seconds"`
	SweepParallelSeconds float64      `json:"sweep_parallel_seconds"`
	SweepWorkers         int          `json:"sweep_workers"`
}

func benchModel(cfg ooo.Config) (modelBench, error) {
	st, err := harness.TimeKernel("blowfish", isa.FeatRot, cfg, 4096, experiments.DefaultSeed)
	if err != nil {
		return modelBench{}, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := harness.TimeKernel("blowfish", isa.FeatRot, cfg, 4096, experiments.DefaultSeed); err != nil {
				b.Fatal(err)
			}
		}
	})
	sec := r.T.Seconds() / float64(r.N)
	return modelBench{
		Model:        cfg.Name,
		Instructions: st.Instructions,
		Cycles:       st.Cycles,
		SecPerRun:    sec,
		SimMIPS:      float64(st.Instructions) / sec / 1e6,
		AllocsPerRun: r.AllocsPerOp(),
		BytesPerRun:  r.AllocedBytesPerOp(),
	}, nil
}

func timedSweep(workers int) float64 {
	experiments.ResetCache()
	prev := experiments.SetParallelism(workers)
	defer experiments.SetParallelism(prev)
	runtime.GC() // level the heap between passes so the second isn't charged the first's garbage
	start := time.Now()
	experiments.Sweep(experiments.AllCells())
	return time.Since(start).Seconds()
}

func main() {
	out := flag.String("o", "BENCH_PR2.json", "output file (\"-\" for stdout)")
	skipSweep := flag.Bool("nosweep", false, "skip the full-suite sweep timing (much faster)")
	flag.Parse()

	res := result{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload:   "blowfish/rot/4096B CBC session, seed 12345",
	}
	for _, cfg := range []ooo.Config{ooo.FourWide, ooo.FourWidePlus, ooo.EightWidePlus, ooo.Dataflow} {
		mb, err := benchModel(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%-4s %8.1f ms/run  %6.2f sim-MIPS  %5d allocs/run\n",
			mb.Model, 1e3*mb.SecPerRun, mb.SimMIPS, mb.AllocsPerRun)
		res.Models = append(res.Models, mb)
	}
	if !*skipSweep {
		res.SweepCells = len(experiments.AllCells())
		res.SweepWorkers = runtime.GOMAXPROCS(0)
		res.SweepSerialSeconds = timedSweep(1)
		res.SweepParallelSeconds = timedSweep(res.SweepWorkers)
		experiments.ResetCache()
		fmt.Fprintf(os.Stderr, "sweep %d cells: serial %.1fs, %d workers %.1fs\n",
			res.SweepCells, res.SweepSerialSeconds, res.SweepWorkers, res.SweepParallelSeconds)
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
}
