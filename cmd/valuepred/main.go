// Command valuepred regenerates the Section 4.3 value-prediction study from the paper
// "Architectural Support for Fast Symmetric-Key Cryptography" (ASPLOS 2000).
package main

import "cryptoarch/internal/experiments"

func main() { experiments.Main("sec-4.3-valuepred", experiments.ValuePred) }
