// Command simdiff is the differential cycle accountant: it takes two
// runs and attributes the cycle delta between them exactly — per stall
// cause, and per PC when both sides run the same program. The
// attribution is conservative by construction (per-cause slot deltas sum
// exactly to the slot-budget move, inherited from the engine's
// slots == cycles × width invariant); a run pair that violates
// conservation fails the command rather than printing an approximation,
// which is what makes simdiff usable as a CI gate.
//
// Each side is either a live cell spec "cipher/variant[/model]"
// (simulated through the trace cache) or a saved-run JSON file written
// by -save-base/-save-next — so a regression can be attributed against a
// measurement taken before the regressing change existed.
//
//	go run ./cmd/simdiff blowfish/norot blowfish/opt
//	go run ./cmd/simdiff -json rijndael/rot/4W rijndael/rot/8W+
//	go run ./cmd/simdiff -save-base before.json idea/rot/4W idea/rot/4W
//	go run ./cmd/simdiff -listing mars/rot/4W mars/opt/4W   # same-program listing needs equal variants; differing programs render side by side
//	go run ./cmd/simdiff -ledger .simledger                 # attribute the newest ledger record vs its predecessor
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cryptoarch/internal/diff"
	"cryptoarch/internal/experiments"
	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/metrics"
	"cryptoarch/internal/ooo"
	"cryptoarch/internal/profview"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simdiff:", err)
	os.Exit(1)
}

// side is one resolved input: a live profiled cell (spec != nil) or a
// saved run decoded from JSON (pr == nil, no listing available).
type side struct {
	run  *diff.Run
	pr   *harness.ProfiledRun // nil for saved runs
	spec *harness.CellSpec    // nil for saved runs
}

// parseSpec parses "cipher/variant[/model]" into a cell spec.
// defaultModel fills the model when the spec has two fields.
func parseSpec(arg, defaultModel string) (harness.CellSpec, error) {
	parts := strings.Split(arg, "/")
	if len(parts) < 2 || len(parts) > 3 {
		return harness.CellSpec{}, fmt.Errorf("spec %q: want cipher/variant or cipher/variant/model", arg)
	}
	feat, err := isa.ParseFeature(parts[1])
	if err != nil {
		return harness.CellSpec{}, fmt.Errorf("spec %q: %v", arg, err)
	}
	model := defaultModel
	if len(parts) == 3 {
		model = parts[2]
	}
	cfg, err := ooo.ModelByNameFold(model)
	if err != nil {
		return harness.CellSpec{}, fmt.Errorf("spec %q: %v", arg, err)
	}
	if parts[0] == "" {
		return harness.CellSpec{}, fmt.Errorf("spec %q: empty cipher", arg)
	}
	return harness.CellSpec{Cipher: parts[0], Feat: feat, Cfg: cfg}, nil
}

// loadSide resolves one positional argument: a *.json path loads a saved
// run; anything else is a live cell spec simulated through the trace
// cache with per-PC profiling on.
func loadSide(arg, defaultModel string, bytes int, seed int64) (*side, error) {
	if strings.HasSuffix(arg, ".json") {
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		run, err := diff.DecodeRun(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", arg, err)
		}
		return &side{run: run}, nil
	}
	spec, err := parseSpec(arg, defaultModel)
	if err != nil {
		return nil, err
	}
	pr, err := harness.ProfileKernel(spec.Cipher, spec.Feat, spec.Cfg, bytes, seed)
	if err != nil {
		return nil, err
	}
	run, err := harness.DiffRun(spec.Label(), pr, spec)
	if err != nil {
		return nil, err
	}
	return &side{run: run, pr: pr, spec: &spec}, nil
}

// save writes a side's run as interchange JSON for later re-attribution.
func save(path string, s *side) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := diff.EncodeRun(f, s.run); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "saved", s.run.Label, "to", path)
	return nil
}

// runLedger implements -ledger: attribute the newest ledger record
// against the most recent earlier comparable (same-key) record without
// re-running anything, using the per-cause stall shares v2 records carry.
func runLedger(dir, modelFilter string) int {
	l, err := metrics.OpenLedger(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simdiff:", err)
		return 1
	}
	recs, skipped, err := l.Read()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simdiff:", err)
		return 1
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "simdiff: skipped %d corrupted ledger line(s) in %s\n", skipped, l.Path())
	}
	if len(recs) == 0 {
		fmt.Fprintf(os.Stderr, "simdiff: %s is empty — nothing to attribute\n", l.Path())
		return 1
	}
	latest := recs[len(recs)-1]
	var prev *metrics.LedgerRecord
	for i := len(recs) - 2; i >= 0; i-- {
		if recs[i].Key == latest.Key {
			prev = &recs[i]
			break
		}
	}
	if prev == nil {
		fmt.Fprintf(os.Stderr, "simdiff: no earlier record comparable to key %s — nothing to attribute against\n", latest.Key)
		return 1
	}
	fmt.Printf("ledger %s: key %s, record %d vs %d\n", l.Path(), latest.Key, len(recs)-1, len(recs))
	prevModels := map[string]metrics.LedgerModel{}
	for _, m := range prev.Models {
		prevModels[m.Model] = m
	}
	shown := 0
	for _, m := range latest.Models {
		if modelFilter != "" && m.Model != modelFilter {
			continue
		}
		pm, ok := prevModels[m.Model]
		if !ok {
			continue
		}
		shown++
		fmt.Printf("\n%s: %.2f → %.2f sim-MIPS", m.Model, pm.SimMIPS, m.SimMIPS)
		if pm.IPC > 0 && m.IPC > 0 {
			fmt.Printf(", ipc %.3f → %.3f", pm.IPC, m.IPC)
		}
		fmt.Println()
		deltas := metrics.AttributeShares(pm.StallShares, m.StallShares)
		if deltas == nil {
			fmt.Println("  no stall shares recorded on one side (pre-v2 record) — re-run simbench to capture attribution")
			continue
		}
		moved := false
		for _, d := range deltas {
			if d.Delta == 0 {
				continue
			}
			moved = true
			fmt.Printf("  %-9s %5.1f%% → %5.1f%%  (%+.1f pts of slot budget)\n",
				d.Cause, 100*d.Base, 100*d.Next, 100*d.Delta)
		}
		if !moved {
			fmt.Println("  stall shares identical — the workload's shape is unchanged")
		}
	}
	if shown == 0 {
		fmt.Fprintf(os.Stderr, "simdiff: no model matched %q in both records\n", modelFilter)
		return 1
	}
	return 0
}

func main() {
	model := flag.String("model", "4W", "default machine model for specs without one (case-insensitive)")
	bytes := flag.Int("bytes", experiments.SessionBytes, "session length in bytes for live specs")
	seed := flag.Int64("seed", experiments.DefaultSeed, "workload seed for live specs")
	top := flag.Int("top", 8, "per-PC gainers/losers listed in the text and JSON views")
	asJSON := flag.Bool("json", false, "emit the diff report as JSON (conserved/unattributed_slots are the CI gate fields)")
	listing := flag.Bool("listing", false, "render the side-by-side annotated disassembly (live specs only)")
	saveBase := flag.String("save-base", "", "write the base run as interchange JSON to this file")
	saveNext := flag.String("save-next", "", "write the next run as interchange JSON to this file")
	ledgerDir := flag.String("ledger", "", "don't simulate; attribute the newest record of this ledger directory against its predecessor")
	ledgerModel := flag.String("ledger-model", "", "restrict -ledger attribution to one model (e.g. 4W)")
	flag.Parse()

	if *ledgerDir != "" {
		os.Exit(runLedger(*ledgerDir, *ledgerModel))
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: simdiff [flags] BASE NEXT   (cipher/variant[/model] or saved-run .json; see -h)")
		os.Exit(2)
	}

	base, err := loadSide(flag.Arg(0), *model, *bytes, *seed)
	if err != nil {
		fail(err)
	}
	next, err := loadSide(flag.Arg(1), *model, *bytes, *seed)
	if err != nil {
		fail(err)
	}
	if *saveBase != "" {
		if err := save(*saveBase, base); err != nil {
			fail(err)
		}
	}
	if *saveNext != "" {
		if err := save(*saveNext, next); err != nil {
			fail(err)
		}
	}

	// diff.New validates both sides and enforces the conservation law;
	// a violation exits non-zero here, which is the CI gate's teeth.
	rd, err := diff.New(base.run, next.run)
	if err != nil {
		fail(err)
	}

	// Disassembly for the per-PC movers comes from whichever side is
	// live; an aligned diff guarantees both programs are identical.
	var disasm diff.DisasmFunc
	prog := func() *isa.Program {
		if base.pr != nil {
			return base.pr.Prog
		}
		if next.pr != nil {
			return next.pr.Prog
		}
		return nil
	}()
	if prog != nil && rd.Aligned() {
		disasm = func(pc int) string {
			if pc < 0 || pc >= len(prog.Code) {
				return ""
			}
			return isa.Disasm(&prog.Code[pc])
		}
	}

	switch {
	case *listing:
		if base.pr == nil || next.pr == nil {
			fail(fmt.Errorf("-listing needs live cell specs on both sides (saved runs carry no program)"))
		}
		profview.DiffText(os.Stdout, &profview.Source{
			Root: base.run.Label, Prog: base.pr.Prog, Prof: base.pr.Profile, Stats: base.pr.Stats,
		}, &profview.Source{
			Root: next.run.Label, Prog: next.pr.Prog, Prof: next.pr.Profile, Stats: next.pr.Stats,
		}, rd, *top)
	case *asJSON:
		b, err := json.MarshalIndent(diff.BuildReport(rd, *top, disasm), "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Println(string(b))
	default:
		diff.WriteText(os.Stdout, rd, *top, disasm)
	}
}
