package main

import (
	"testing"

	"cryptoarch/internal/isa"
)

// TestParseSpec pins the cell-spec grammar: cipher/variant with the
// default model, an explicit case-insensitive model, and the rejection
// shapes (wrong arity, unknown variant/model, empty cipher).
func TestParseSpec(t *testing.T) {
	s, err := parseSpec("blowfish/rot", "4W")
	if err != nil {
		t.Fatal(err)
	}
	if s.Cipher != "blowfish" || s.Feat != isa.FeatRot || s.Cfg.Name != "4W" {
		t.Fatalf("blowfish/rot = %+v", s)
	}

	s, err = parseSpec("rijndael/opt/8w+", "4W")
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.Name != "8W+" {
		t.Fatalf("model fold: got %q, want 8W+", s.Cfg.Name)
	}
	if s.Label() != "rijndael/opt/8W+" {
		t.Fatalf("label %q", s.Label())
	}

	for _, bad := range []string{"blowfish", "a/b/c/d", "blowfish/mystery", "blowfish/rot/9W", "/rot/4W"} {
		if _, err := parseSpec(bad, "4W"); err == nil {
			t.Errorf("parseSpec(%q) accepted a malformed spec", bad)
		}
	}
}
