// Command fig2ssl regenerates Figure 2 (SSL characterization by session length) from the paper
// "Architectural Support for Fast Symmetric-Key Cryptography" (ASPLOS 2000).
package main

import "cryptoarch/internal/experiments"

func main() { experiments.Main("figure-2", experiments.Fig2) }
