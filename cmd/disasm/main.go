// Command disasm prints the AXP64 assembly listing of a cipher kernel (or
// its key-setup program) at a chosen instruction-set level — useful for
// inspecting exactly what code each experiment measures.
//
// Usage:
//
//	go run ./cmd/disasm -cipher blowfish -isa opt [-setup]
package main

import (
	"flag"
	"fmt"
	"os"

	"cryptoarch/internal/isa"
	"cryptoarch/internal/kernels"
)

func main() {
	cipher := flag.String("cipher", "blowfish", "cipher kernel to disassemble")
	level := flag.String("isa", "rot", "instruction-set level: norot, rot, opt")
	setup := flag.Bool("setup", false, "disassemble the key-setup program")
	flag.Parse()

	feat, err := isa.ParseFeature(*level)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	k, err := kernels.Get(*cipher)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	build := k.Build
	if *setup {
		if k.BuildSetup == nil {
			fmt.Fprintf(os.Stderr, "disasm: %s has no key-setup program\n", k.Name)
			os.Exit(1)
		}
		build = k.BuildSetup
	}
	fmt.Print(isa.Listing(build(feat)))
}
