// Command ablate sweeps one microarchitecture parameter of the 4W+
// machine while running the fully optimized kernels, isolating the
// contribution of each design choice (an extension of the paper's
// Section 6 discussion).
//
// Usage:
//
//	go run ./cmd/ablate -param sbox-caches [-cipher rijndael] [-md]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cryptoarch/internal/experiments"
)

func main() {
	param := flag.String("param", "issue-width",
		"parameter to sweep: "+strings.Join(experiments.AblationNames(), ", "))
	cipher := flag.String("cipher", "", "restrict to one cipher (default: all)")
	md := flag.Bool("md", false, "emit a markdown table")
	flag.Parse()
	r, err := experiments.Ablate(*param, *cipher)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *md {
		fmt.Print(r.Markdown())
	} else {
		fmt.Print(r.Text())
	}
}
