// Command ablate sweeps one microarchitecture parameter of the 4W+
// machine while running the fully optimized kernels, isolating the
// contribution of each design choice (an extension of the paper's
// Section 6 discussion).
//
// Usage:
//
//	go run ./cmd/ablate -param sbox-caches [-cipher rijndael] [-md]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cryptoarch/internal/experiments"
)

func main() {
	param := flag.String("param", "issue-width",
		"parameter to sweep: "+strings.Join(experiments.AblationNames(), ", "))
	cipher := flag.String("cipher", "", "restrict to one cipher (default: all)")
	md := flag.Bool("md", false, "emit a markdown table")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()
	r, err := experiments.Ablate(*param, *cipher)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if err := experiments.Emit(os.Stdout, r, *md, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
