// Command fig10speedup regenerates Figure 10 (optimized kernel speedups) from the paper
// "Architectural Support for Fast Symmetric-Key Cryptography" (ASPLOS 2000).
package main

import "cryptoarch/internal/experiments"

func main() { experiments.Main("figure-10", experiments.Fig10) }
