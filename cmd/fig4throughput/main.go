// Command fig4throughput regenerates Figure 4 (cipher encryption throughput) from the paper
// "Architectural Support for Fast Symmetric-Key Cryptography" (ASPLOS 2000).
package main

import "cryptoarch/internal/experiments"

func main() { experiments.Main("figure-4", experiments.Fig4) }
