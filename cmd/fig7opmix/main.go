// Command fig7opmix regenerates Figure 7 (kernel operation mix) from the paper
// "Architectural Support for Fast Symmetric-Key Cryptography" (ASPLOS 2000).
package main

import "cryptoarch/internal/experiments"

func main() { experiments.Main("figure-7", experiments.Fig7) }
