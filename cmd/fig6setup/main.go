// Command fig6setup regenerates Figure 6 (setup cost vs session length) from the paper
// "Architectural Support for Fast Symmetric-Key Cryptography" (ASPLOS 2000).
package main

import "cryptoarch/internal/experiments"

func main() { experiments.Main("figure-6", experiments.Fig6) }
