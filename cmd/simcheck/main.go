// Command simcheck runs the differential self-check: every cipher kernel,
// at every requested instruction-set level, is executed through the
// functional emulator on randomized sessions and compared byte-for-byte
// against the pure-Go golden ciphers, including decrypt round-trips. It
// exits non-zero on any divergence, so CI (and anyone about to trust a
// sweep) can verify the emulator/kernel stack end to end in seconds.
//
// Usage:
//
//	go run ./cmd/simcheck [-n trials] [-seed N] [-maxbytes N]
//	    [-ciphers a,b,...] [-isa norot,rot,opt] [-nodecrypt]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
)

func main() {
	trials := flag.Int("n", 3, "randomized sessions per cipher x ISA level")
	seed := flag.Int64("seed", 1, "base seed (each cell derives its own)")
	maxBytes := flag.Int("maxbytes", 1024, "session length bound in bytes")
	cipherList := flag.String("ciphers", "", "comma-separated ciphers (default: all)")
	isaList := flag.String("isa", "norot,rot,opt", "comma-separated instruction-set levels")
	noDecrypt := flag.Bool("nodecrypt", false, "skip decrypt round-trips")
	flag.Parse()

	opts := harness.SelfCheckOptions{
		Trials:   *trials,
		Seed:     *seed,
		MaxBytes: *maxBytes,
		Decrypt:  !*noDecrypt,
	}
	if *cipherList != "" {
		opts.Ciphers = strings.Split(*cipherList, ",")
	}
	for _, name := range strings.Split(*isaList, ",") {
		feat, err := isa.ParseFeature(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Feats = append(opts.Feats, feat)
	}

	res, err := harness.SelfCheck(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := res.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("simcheck: %d emulated sessions, all byte-identical to the golden ciphers\n", res.Runs)
}
