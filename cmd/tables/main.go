// Command tables regenerates Table 1 (the cipher suite) and Table 2 (the
// machine models) from the paper "Architectural Support for Fast
// Symmetric-Key Cryptography" (ASPLOS 2000).
package main

import (
	"flag"
	"fmt"
	"os"

	"cryptoarch/internal/experiments"
)

func main() {
	md := flag.Bool("md", false, "emit markdown tables")
	asJSON := flag.Bool("json", false, "emit the reports as JSON")
	flag.Parse()
	for _, run := range []func() (*experiments.Report, error){
		experiments.Table1, experiments.Table2,
	} {
		r, err := run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := experiments.Emit(os.Stdout, r, *md, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
