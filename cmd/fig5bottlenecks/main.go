// Command fig5bottlenecks regenerates Figure 5 (bottleneck analysis) from the paper
// "Architectural Support for Fast Symmetric-Key Cryptography" (ASPLOS 2000).
package main

import "cryptoarch/internal/experiments"

func main() { experiments.Main("figure-5", experiments.Fig5) }
