// Integration tests that codify the paper's headline claims against the
// full stack (golden ciphers -> AXP64 kernels -> timing model), so a
// regression that silently changes an experiment's *shape* fails loudly.
// Sessions are kept at 1KB to bound test time; the claims are ordinal, not
// absolute, so the shorter sessions preserve them.
package cryptoarch_test

import (
	"testing"

	"cryptoarch"
	"cryptoarch/internal/harness"
	"cryptoarch/internal/isa"
	"cryptoarch/internal/ooo"
)

const claimSession = 1024

func timeOn(t *testing.T, cipher string, feat isa.Feature, cfg ooo.Config) uint64 {
	t.Helper()
	st, err := harness.TimeKernel(cipher, feat, cfg, claimSession, 777)
	if err != nil {
		t.Fatal(err)
	}
	return st.Cycles
}

// Section 4.1: 3DES is the slowest cipher, RC4 the fastest, and Rijndael
// the fastest block cipher on the baseline machine.
func TestClaimThroughputOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration claim test")
	}
	cycles := map[string]uint64{}
	for _, c := range cryptoarch.CipherNames() {
		cycles[c] = timeOn(t, c, isa.FeatRot, ooo.FourWide)
	}
	for c, v := range cycles {
		if c != "3des" && v >= cycles["3des"] {
			t.Errorf("%s (%d cycles) should beat 3des (%d)", c, v, cycles["3des"])
		}
		if c != "rc4" && v <= cycles["rc4"] {
			t.Errorf("rc4 (%d) should beat %s (%d)", cycles["rc4"], c, v)
		}
		if c != "rc4" && c != "rijndael" && v <= cycles["rijndael"] {
			t.Errorf("rijndael (%d) should be the fastest block cipher, but %s took %d",
				cycles["rijndael"], c, v)
		}
	}
}

// Section 4.2: branch prediction and memory are not bottlenecks; aliasing
// binds only RC4.
func TestClaimBottleneckStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("integration claim test")
	}
	rel := func(cipher, bottleneck string) float64 {
		cfg, err := ooo.BottleneckConfig(bottleneck)
		if err != nil {
			t.Fatal(err)
		}
		df := timeOn(t, cipher, isa.FeatRot, ooo.Dataflow)
		bn := timeOn(t, cipher, isa.FeatRot, cfg)
		return float64(df) / float64(bn)
	}
	for _, c := range []string{"blowfish", "rijndael", "rc6"} {
		if r := rel(c, "Branch"); r < 0.97 {
			t.Errorf("%s: branch prediction binds (%.2f); the paper says it must not", c, r)
		}
		if r := rel(c, "Mem"); r < 0.95 {
			t.Errorf("%s: memory binds (%.2f); the paper says it must not", c, r)
		}
	}
	if r := rel("rc4", "Alias"); r > 0.8 {
		t.Errorf("rc4: aliasing should bind hard, got %.2f", r)
	}
	if r := rel("blowfish", "Alias"); r < 0.95 {
		t.Errorf("blowfish: aliasing should not bind, got %.2f", r)
	}
}

// Section 6: every cipher speeds up with the extensions; IDEA gains most;
// RC6 gains least (its benefit came with rotates, already in the baseline).
func TestClaimExtensionSpeedups(t *testing.T) {
	if testing.Short() {
		t.Skip("integration claim test")
	}
	speedup := map[string]float64{}
	for _, c := range cryptoarch.CipherNames() {
		base := timeOn(t, c, isa.FeatRot, ooo.FourWide)
		opt := timeOn(t, c, isa.FeatOpt, ooo.FourWide)
		speedup[c] = float64(base) / float64(opt)
		if speedup[c] < 0.99 {
			t.Errorf("%s: extensions slowed the kernel (%.2fx)", c, speedup[c])
		}
	}
	for c, s := range speedup {
		if c != "idea" && s >= speedup["idea"] {
			t.Errorf("idea (%.2fx) should gain most; %s got %.2fx", speedup["idea"], c, s)
		}
		if c != "rc6" && s <= speedup["rc6"] {
			t.Errorf("rc6 (%.2fx) should gain least; %s got %.2fx", speedup["rc6"], c, s)
		}
	}
}

// Section 6 / Figure 10: MARS and RC6 suffer most without rotates.
func TestClaimRotatePenalty(t *testing.T) {
	if testing.Short() {
		t.Skip("integration claim test")
	}
	penalty := func(c string) float64 {
		rot := timeOn(t, c, isa.FeatRot, ooo.FourWide)
		norot := timeOn(t, c, isa.FeatNoRot, ooo.FourWide)
		return float64(norot) / float64(rot)
	}
	mars, rc6 := penalty("mars"), penalty("rc6")
	if mars < 1.1 || rc6 < 1.1 {
		t.Errorf("mars/rc6 must lose clearly without rotates: %.2f / %.2f", mars, rc6)
	}
	// IDEA and Rijndael barely use rotates.
	for _, c := range []string{"idea", "rijndael"} {
		if p := penalty(c); p > 1.05 {
			t.Errorf("%s should be insensitive to rotates, got %.2f", c, p)
		}
	}
}

// Section 4.2 / Figure 6: Blowfish setup (521 cipher invocations) dwarfs
// every other cipher's key schedule.
func TestClaimBlowfishSetupOutlier(t *testing.T) {
	if testing.Short() {
		t.Skip("integration claim test")
	}
	setup := func(c string) uint64 {
		st, err := harness.TimeSetup(c, isa.FeatRot, ooo.FourWide, 777)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	bf := setup("blowfish")
	for _, c := range []string{"3des", "idea", "rc4", "rc6", "rijndael", "mars", "twofish"} {
		if s := setup(c); s*3 > bf {
			t.Errorf("blowfish setup (%d) should dwarf %s (%d)", bf, c, s)
		}
	}
}
